// Quickstart: solve one barotropic elliptic system with the paper's new
// solver (P-CSI + block-EVP) and compare it against POP's production
// ChronGear + diagonal configuration.
//
//   ./quickstart [--solver=pcsi|chrongear|pcg]
//                [--precond=evp|diagonal|identity]
//                [--nx=… --ny=…] [--tol=1e-13]
//
// Walks through the whole public API: grid -> synthetic bathymetry ->
// nine-point stencil -> block decomposition -> BarotropicSolver.
#include <iostream>

#include "src/comm/serial_comm.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/model/ocean_model.hpp"
#include "src/solver/solver_factory.hpp"
#include "src/util/cli.hpp"
#include "src/util/rng.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);

  // 1. A curvilinear grid. pop_1deg_spec(scale) mimics POP's 1-degree
  //    dipole grid; scale 0.25 gives a workstation-sized 80x96.
  grid::GridSpec spec = grid::pop_1deg_spec(0.25);
  spec.nx = cli.get_int("nx", spec.nx);
  spec.ny = cli.get_int("ny", spec.ny);
  grid::CurvilinearGrid g(spec);
  std::cout << "grid: " << spec.describe() << "\n";

  // 2. Synthetic bathymetry: continents, islands, straits, shelves.
  auto depth = grid::synthetic_earth_bathymetry(g, {});
  auto mask = grid::ocean_mask(depth);
  std::cout << "ocean cells: " << grid::count_ocean(mask) << " ("
            << 100.0 * (1.0 - grid::land_fraction(mask)) << "% ocean)\n";

  // 3. The implicit-free-surface operator [phi - div(H grad)] at the
  //    physically consistent time step.
  const double dt = model::recommended_barotropic_dt(g);
  const double theta = 0.6;
  grid::NinePointStencil stencil(g, depth,
                                 1.0 / (9.806 * theta * theta * dt * dt));

  // 4. Block decomposition with land elimination + Hilbert assignment.
  grid::Decomposition decomp(g.nx(), g.ny(), g.periodic_x(), mask, 12, 12,
                             /*nranks=*/1);
  std::cout << "blocks: " << decomp.num_active_blocks() << " active, "
            << decomp.num_land_blocks() << " land-eliminated\n";
  comm::HaloExchanger halo(decomp);
  comm::SerialComm comm;

  // 5. The solver. P-CSI runs Lanczos at construction to bound the
  //    preconditioned spectrum (paper Sec. 3).
  solver::SolverConfig config;
  config.solver = solver::solver_kind_from_string(
      cli.get("solver", "pcsi"));
  config.preconditioner = solver::preconditioner_kind_from_string(
      cli.get("precond", "evp"));
  config.options.rel_tolerance = cli.get_double("tol", 1e-13);
  solver::BarotropicSolver solver(comm, halo, g, depth, stencil, decomp,
                                  config);
  std::cout << "solver: " << solver.description();
  if (solver.lanczos())
    std::cout << "  (lanczos: " << solver.lanczos()->steps
              << " steps, interval [" << solver.lanczos()->bounds.nu << ", "
              << solver.lanczos()->bounds.mu << "])";
  std::cout << "\n";

  // 6. A right-hand side and the solve.
  comm::DistField b(decomp, 0), x(decomp, 0);
  util::Xoshiro256 rng(1);
  for (int lb = 0; lb < b.num_local_blocks(); ++lb) {
    const auto& info = b.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        if (mask(info.i0 + i, info.j0 + j))
          b.at(lb, i, j) = rng.uniform(-1, 1);
  }
  auto stats = solver.solve(comm, b, x);

  std::cout << "converged: " << (stats.converged ? "yes" : "NO") << " in "
            << stats.iterations << " iterations\n"
            << "global reductions: " << stats.costs.allreduces
            << ", halo updates: " << stats.costs.halo_exchanges
            << ", flops (paper count): " << stats.costs.flops << "\n";

  // Compare against the production baseline.
  solver::SolverConfig base;
  base.options.rel_tolerance = config.options.rel_tolerance;
  solver::BarotropicSolver baseline(comm, halo, g, depth, stencil, decomp,
                                    base);
  comm::DistField x2(decomp, 0);
  auto base_stats = baseline.solve(comm, b, x2);
  std::cout << "\nbaseline " << baseline.description() << ": "
            << base_stats.iterations << " iterations, "
            << base_stats.costs.allreduces << " reductions\n"
            << "=> " << solver.description() << " used "
            << (base_stats.costs.allreduces == 0
                    ? 0.0
                    : 100.0 * (1.0 - static_cast<double>(
                                         stats.costs.allreduces) /
                                         base_stats.costs.allreduces))
            << "% fewer global reductions — the property that makes it "
               "scale (paper Sec. 3).\n";
  return stats.converged ? 0 : 1;
}
