// Domain scenario 1: a short mini-POP climate simulation — the workload
// the paper's intro motivates. Runs the full model (nonlinear barotropic
// mode with the implicit free surface + 3D temperature tracer with
// seasonal forcing) and prints monthly diagnostics plus the cumulative
// cost of the barotropic solver.
//
//   ./ocean_simulation [--days=90] [--scale=0.12] [--nz=4]
//                      [--solver=pcsi] [--precond=evp] [--ranks=1]
//                      [--precision=fp64|fp32|mixed]
//                      [--halo-depth=1..4|auto]
//                      [--block-size=NX or NXxNY]
//
// --block-size sets the decomposition's nominal block shape (e.g.
// --block-size=16x8 for rectangular blocks; a single number keeps
// squares). The header prints a decomposition summary: active/land
// blocks, ocean fraction of the swept cells, and the per-rank
// ocean-cell load imbalance the Hilbert assignment achieved.
//
// --precision selects the solver arithmetic: fp64 (default,
// bit-identical legacy path), fp32 (whole solve in float — only viable
// with a loose tolerance), or mixed (fp32 inner sweeps inside an fp64
// iterative-refinement loop converging to the fp64 tolerance; the
// "refine/step" column counts its outer sweeps).
//
// --halo-depth selects the communication-avoiding ghost-zone width
// (DESIGN.md §13): depth k buys k P-CSI sweeps per halo exchange,
// bit-identical to depth 1. "auto" asks the machine-model autotuner;
// pointwise preconditioners only (block EVP falls back to 1 with a
// warning). The header prints the resolved depth as "+ca(k=...)".
//
// With --ranks > 1 the same simulation runs on a team of virtual MPI
// ranks (threads) over the block decomposition — the code path is
// identical to a distributed-memory run.
#include <iomanip>
#include <iostream>
#include <string>

#include "src/comm/serial_comm.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/model/ocean_model.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

using namespace minipop;

namespace {

void run(comm::Communicator& comm, const model::ModelConfig& cfg,
         double days) {
  model::OceanModel model(comm, cfg);
  const bool root = comm.rank() == 0;
  if (root) {
    std::cout << "grid " << model.grid().nx() << "x" << model.grid().ny()
              << ", dt " << model.config().dt << " s, "
              << model.decomposition().num_active_blocks()
              << " ocean blocks on " << comm.size() << " rank(s), solver "
              << model.barotropic().solver().description() << "\n";
    const grid::Decomposition& d = model.decomposition();
    std::cout << "decomposition: " << d.block_nx() << "x" << d.block_ny()
              << " blocks, " << d.num_active_blocks() << " active / "
              << d.num_land_blocks() << " land-eliminated, ocean fraction "
              << std::fixed << std::setprecision(3) << d.ocean_fraction()
              << ", rank ocean-cell imbalance " << std::setprecision(3)
              << d.load_imbalance() << std::defaultfloat << "\n\n";
  }

  util::Table t({"day", "mean T [C]", "mean SSH [m]", "KE [m^5/s^2]",
                 "max |u| [m/s]", "solver iters/step", "refine/step",
                 "solve fails"});
  util::Timer wall;
  long last_iters = 0;
  long last_sweeps = 0;
  long last_steps = 0;
  double next_report = 0.0;
  while (model.time_days() < days) {
    model.step(comm);
    if (model.time_days() >= next_report) {
      const long iters = model.barotropic().total_iterations();
      const long sweeps = model.barotropic().total_refine_sweeps();
      const long steps = model.barotropic().total_solves();
      const double iters_per_step =
          steps > last_steps
              ? static_cast<double>(iters - last_iters) / (steps - last_steps)
              : 0.0;
      const double sweeps_per_step =
          steps > last_steps
              ? static_cast<double>(sweeps - last_sweeps) /
                    (steps - last_steps)
              : 0.0;
      if (root) {
        t.row()
            .add(model.time_days(), 1)
            .add(model.mean_temperature(comm), 3)
            .add(model.mean_ssh(comm), 5)
            .add(model.kinetic_energy(comm), 3)
            .add(model.max_speed(comm), 3)
            .add(iters_per_step, 1)
            .add(sweeps_per_step, 1)
            .add(static_cast<double>(model.barotropic().solver_failures()),
                 0);
      } else {
        // Non-root ranks still participate in the collective diagnostics.
        model.mean_temperature(comm);
        model.mean_ssh(comm);
        model.kinetic_energy(comm);
        model.max_speed(comm);
      }
      last_iters = iters;
      last_sweeps = sweeps;
      last_steps = steps;
      next_report += std::max(1.0, days / 10.0);
    }
  }
  if (root) {
    t.print(std::cout);
    const comm::CostCounters costs = comm.costs().counters();
    std::cout << "\n" << model.step_count() << " steps ("
              << model.time_days() << " simulated days) in "
              << wall.seconds() << " s wall clock; "
              << model.barotropic().total_iterations()
              << " total solver iterations; " << costs.halo_exchanges
              << " halo rounds at depth "
              << model.barotropic().solver().config().options.halo_depth;
    if (model.barotropic().solver_failures() > 0)
      std::cout << "; " << model.barotropic().solver_failures()
                << " solve(s) FAILED (last: "
                << minipop::solver::to_string(
                       model.barotropic().last_failure())
                << ")";
    std::cout << ".\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  model::ModelConfig cfg;
  cfg.grid = grid::pop_1deg_spec(cli.get_double("scale", 0.12));
  cfg.nz = cli.get_int("nz", 4);
  // --block-size=NX or NXxNY (rectangular blocks); legacy --block=N
  // still works when the new flag is absent.
  const std::string bs =
      cli.get("block-size", std::to_string(cli.get_int("block", 12)));
  const auto xpos = bs.find('x');
  cfg.block_size = std::stoi(bs.substr(0, xpos));
  cfg.block_size_y =
      xpos == std::string::npos ? 0 : std::stoi(bs.substr(xpos + 1));
  cfg.solver.solver =
      solver::solver_kind_from_string(cli.get("solver", "pcsi"));
  cfg.solver.preconditioner = solver::preconditioner_kind_from_string(
      cli.get("precond", "evp"));
  cfg.solver.options.precision =
      solver::precision_from_string(cli.get("precision", "fp64"));
  // Reduced-precision sweeps can stall at the fp32 accuracy floor when
  // the tolerance is tighter than fp32 can deliver; arm the stagnation
  // guard so the stall becomes a quick typed kStagnated (cured by the
  // resilience layer's precision escalation) instead of a burned
  // 20000-iteration budget per solve.
  if (cfg.solver.options.precision != solver::Precision::kFp64)
    cfg.solver.options.stagnation_window = 5;
  const std::string hd = cli.get("halo-depth", "1");
  cfg.solver.options.halo_depth =
      hd == "auto" ? solver::kHaloDepthAuto : std::stoi(hd);
  cfg.nranks = cli.get_int("ranks", 1);
  const double days = cli.get_double("days", 90.0);

  if (cfg.nranks == 1) {
    comm::SerialComm comm;
    run(comm, cfg, days);
  } else {
    comm::ThreadTeam team(cfg.nranks);
    team.run([&](comm::Communicator& comm) { run(comm, cfg, days); });
  }
  return 0;
}
