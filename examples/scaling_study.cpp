// Domain scenario 2: a solver scaling study like the paper's Sec. 5 —
// given a target machine and grid, where does ChronGear stop scaling,
// where is the P-CSI crossover, and what configuration should production
// use at each core count?
//
// Combines LIVE iteration counts measured from this repository's solvers
// on a scaled grid with the calibrated machine model (see DESIGN.md for
// why wall times at 16,875 cores come from a model).
//
//   ./scaling_study [--machine=yellowstone|edison] [--grid=0.1deg|1deg]
//                   [--scale=0.05] [--live=1]
#include <iostream>

#include "src/perf/pop_timing_model.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

#include "../bench/bench_common.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::string machine_name = cli.get("machine", "yellowstone");
  const std::string grid_name = cli.get("grid", "0.1deg");
  const bool live = cli.get_bool("live", true);

  const perf::MachineProfile machine = machine_name == "edison"
                                           ? perf::edison_profile()
                                           : perf::yellowstone_profile();
  perf::GridCase grid = grid_name == "1deg" ? perf::pop_1deg_case()
                                            : perf::pop_0p1deg_case();
  perf::IterationModel iters = perf::paper_iteration_model(grid);

  if (live) {
    // Measure the diagonal-preconditioner iteration counts live on a
    // scaled grid and rescale the model's inputs by the observed
    // P-CSI/ChronGear ratio (conditioning transfers across scales; the
    // absolute counts are resolution-dependent, so keep the calibrated
    // cg_diag and move pcsi_diag with the live ratio).
    const double scale = cli.get_double(
        "scale", grid_name == "1deg" ? 0.25 : 0.05);
    std::cout << "measuring live iteration ratio on the scaled grid...\n";
    auto c = bench::make_live_case(grid_name, scale, 12);
    auto cg = bench::measure_iterations(
        c, bench::config_for(perf::Config::kCgDiag, 1e-12));
    auto pcsi = bench::measure_iterations(
        c, bench::config_for(perf::Config::kPcsiDiag, 1e-12));
    const double ratio = pcsi.mean_iterations / cg.mean_iterations;
    std::cout << "live: chrongear " << cg.mean_iterations << " iters, "
              << "pcsi " << pcsi.mean_iterations << " iters (ratio "
              << ratio << ")\n";
    iters.pcsi_diag = iters.cg_diag * ratio;
  }

  perf::PopTimingModel model(machine, grid, iters);

  std::cout << "\nScaling study: " << grid.name << " POP on "
            << machine.name << "\n";
  util::Table t({"cores", "chrongear+diag [s/day]", "pcsi+evp [s/day]",
                 "speedup", "SYPD (pcsi+evp)", "recommended"});
  int crossover = -1;
  for (int p : {128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}) {
    if (p > grid.points / 16) break;  // at least 16 cells per rank
    const double cg =
        model.barotropic_per_day(perf::Config::kCgDiag, p).total();
    const double pe =
        model.barotropic_per_day(perf::Config::kPcsiEvp, p).total();
    if (crossover < 0 && pe < cg) crossover = p;
    t.row()
        .add_int(p)
        .add(cg, 3)
        .add(pe, 3)
        .add(cg / pe, 2)
        .add(model.simulated_years_per_day(perf::Config::kPcsiEvp, p), 2)
        .add(pe < cg ? "pcsi+evp" : "chrongear+diag");
  }
  t.print(std::cout);
  if (crossover > 0)
    std::cout << "\nP-CSI+EVP wins from ~" << crossover
              << " cores upward on this machine/grid.\n";
  return 0;
}
