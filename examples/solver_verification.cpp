// Domain scenario 3: the climate-consistency gate of paper Sec. 6 —
// before a new solver may ship in a CESM release, show that it produces
// an ocean consistent with the reference ensemble. This example runs the
// whole pipeline end to end: build a perturbed reference ensemble, run
// the candidate solver, score it with RMSZ month by month, and emit a
// PASS/FAIL verdict.
//
//   ./solver_verification [--members=10] [--months=3] [--scale=0.08]
//                         [--solver=pcsi] [--precond=evp] [--tol=1e-13]
//
// Try --tol=1e-10 to watch a genuinely inconsistent configuration fail.
#include <iostream>

#include "src/comm/serial_comm.hpp"
#include "src/model/ocean_model.hpp"
#include "src/stats/ensemble.hpp"
#include "src/stats/statistics.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

using namespace minipop;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);

  stats::EnsembleConfig ens;
  ens.model.grid = grid::pop_1deg_spec(cli.get_double("scale", 0.08));
  ens.model.nz = cli.get_int("nz", 3);
  ens.model.block_size = 12;
  ens.model.nranks = 1;
  ens.model.solver.options.rel_tolerance = 1e-13;  // production default
  ens.members = cli.get_int("members", 10);
  ens.months = cli.get_int("months", 3);

  std::cout << "building the reference ensemble (" << ens.members
            << " members x " << ens.months << " months, O(1e-14) initial "
            << "perturbations)" << std::flush;
  auto ensemble = stats::run_ensemble(ens, [](int done, int total) {
    std::cout << "." << std::flush;
    if (done == total) std::cout << "\n";
  });

  // Candidate configuration.
  auto candidate_cfg = ens;
  candidate_cfg.model.solver.solver =
      solver::solver_kind_from_string(cli.get("solver", "pcsi"));
  candidate_cfg.model.solver.preconditioner =
      solver::preconditioner_kind_from_string(cli.get("precond", "evp"));
  candidate_cfg.model.solver.options.rel_tolerance =
      cli.get_double("tol", 1e-13);
  std::cout << "running candidate: "
            << solver::to_string(candidate_cfg.model.solver.solver) << "+"
            << solver::to_string(candidate_cfg.model.solver.preconditioner)
            << " (tol "
            << candidate_cfg.model.solver.options.rel_tolerance << ")\n";
  auto candidate = stats::run_member(candidate_cfg, /*member=*/-1);

  comm::SerialComm comm;
  model::OceanModel probe(comm, ens.model);
  auto mask = grid::ocean_mask(probe.depth());

  // Verdict: the paper accepts a candidate whose RMSZ stays on the order
  // of the ensemble's own spread; flag months scoring beyond 2x the
  // in-ensemble maximum.
  util::Table t({"month", "ensemble RMSZ band", "candidate RMSZ",
                 "verdict"});
  bool pass = true;
  for (int m = 0; m < ens.months; ++m) {
    auto slice = stats::month_slice(ensemble, m);
    auto moments = stats::ensemble_moments(slice);
    auto [lo, hi] = stats::ensemble_rmsz_range(slice, moments, mask);
    const double z = stats::rmsz(candidate[m], moments, mask);
    const bool ok = z <= 2.0 * hi;
    pass = pass && ok;
    std::ostringstream band;
    band.precision(2);
    band << "[" << lo << ", " << hi << "]";
    t.row().add_int(m + 1).add(band.str()).add(z, 2).add(
        ok ? "consistent" : "INCONSISTENT");
  }
  t.print(std::cout);
  std::cout << "\n"
            << (pass ? "PASS: the candidate solver produces an ocean "
                       "climate consistent with the\nreference ensemble "
                       "(paper Sec. 6's criterion for release)."
                     : "FAIL: the candidate is statistically "
                       "distinguishable from the reference\nensemble — "
                       "do not ship it.")
            << "\n";
  return pass ? 0 : 1;
}
