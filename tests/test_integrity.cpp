// Integrity-layer tests (DESIGN.md §12): CRC32C known-answer vectors and
// incremental equivalence, the fault-site name table, the ABFT / drift
// verdict functions, guarded reductions, and the end-to-end properties
// the layer promises — free when off (bitwise-identical solves, zero
// integrity counters), transparent when on and healthy (bitwise-identical
// solves, nonzero check counters, zero failures), and typed detection of
// every injected silent-data-corruption fault. The SDC campaigns (halo
// bit flips behind the CRC, stencil coefficient flips, allreduce
// contribution corruption, recurrence drift) need the fault hooks
// compiled in and run only with -DMINIPOP_FAULTS=ON.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/comm/serial_comm.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/fault/fault_injector.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/solver/batched_decorators.hpp"
#include "src/solver/batched_solver.hpp"
#include "src/solver/chron_gear.hpp"
#include "src/solver/integrity.hpp"
#include "src/solver/lanczos.hpp"
#include "src/solver/mixed_precision.hpp"
#include "src/solver/pcsi.hpp"
#include "src/solver/resilient_solver.hpp"
#include "src/util/crc32c.hpp"
#include "src/util/rng.hpp"

namespace mc = minipop::comm;
namespace mf = minipop::fault;
namespace mg = minipop::grid;
namespace ms = minipop::solver;
namespace mu = minipop::util;

namespace {

// ---------------------------------------------------------------------
// Shared problem + solve harness (same idiom as test_resilience.cpp)
// ---------------------------------------------------------------------

struct Problem {
  std::unique_ptr<mg::CurvilinearGrid> grid;
  mu::Field depth;
  std::unique_ptr<mg::NinePointStencil> stencil;
  std::unique_ptr<mg::Decomposition> decomp;
  mu::Field b_global;
};

Problem make_problem(int nx, int ny, int block, int nranks,
                     std::uint64_t seed = 23) {
  Problem p;
  mg::GridSpec spec;
  spec.kind = mg::GridKind::kUniform;
  spec.nx = nx;
  spec.ny = ny;
  spec.periodic_x = false;
  spec.dx = 1.0e4;
  spec.dy = 1.2e4;
  p.grid = std::make_unique<mg::CurvilinearGrid>(spec);
  p.depth = mg::bowl_bathymetry(*p.grid, 4000.0);
  const double phi = mg::barotropic_phi(600.0);
  p.stencil = std::make_unique<mg::NinePointStencil>(*p.grid, p.depth, phi);
  p.decomp = std::make_unique<mg::Decomposition>(
      nx, ny, /*periodic_x=*/false, p.stencil->mask(), block, block, nranks);
  mu::Xoshiro256 rng(seed);
  p.b_global = mu::Field(nx, ny, 0.0);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      if (p.stencil->mask()(i, j)) p.b_global(i, j) = rng.uniform(-1, 1);
  return p;
}

std::vector<mu::Field> make_rhs(const Problem& p, int nb,
                                std::uint64_t seed0 = 900) {
  std::vector<mu::Field> out;
  for (int m = 0; m < nb; ++m) {
    mu::Xoshiro256 rng(seed0 + static_cast<std::uint64_t>(m));
    mu::Field b(p.decomp->nx_global(), p.decomp->ny_global(), 0.0);
    for (int j = 0; j < b.ny(); ++j)
      for (int i = 0; i < b.nx(); ++i)
        if (p.stencil->mask()(i, j)) b(i, j) = rng.uniform(-1, 1);
    out.push_back(std::move(b));
  }
  return out;
}

void expect_fields_bitwise(const mu::Field& a, const mu::Field& b) {
  ASSERT_EQ(a.nx(), b.nx());
  ASSERT_EQ(a.ny(), b.ny());
  for (int j = 0; j < a.ny(); ++j)
    for (int i = 0; i < a.nx(); ++i)
      ASSERT_EQ(a(i, j), b(i, j)) << "at (" << i << ", " << j << ")";
}

#if MINIPOP_FAULTS
void expect_fields_near(const mu::Field& a, const mu::Field& ref,
                        double rel) {
  ASSERT_EQ(a.nx(), ref.nx());
  ASSERT_EQ(a.ny(), ref.ny());
  double scale = 0.0;
  for (const double v : ref) scale = std::max(scale, std::abs(v));
  for (int j = 0; j < a.ny(); ++j)
    for (int i = 0; i < a.nx(); ++i)
      ASSERT_NEAR(a(i, j), ref(i, j), rel * scale)
          << "at (" << i << ", " << j << ")";
}
#endif  // MINIPOP_FAULTS

void expect_stats_bitwise(const ms::SolveStats& a, const ms::SolveStats& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.relative_residual, b.relative_residual);
  ASSERT_EQ(a.residual_history.size(), b.residual_history.size());
  for (std::size_t k = 0; k < a.residual_history.size(); ++k) {
    EXPECT_EQ(a.residual_history[k].first, b.residual_history[k].first);
    EXPECT_EQ(a.residual_history[k].second, b.residual_history[k].second);
  }
}

ms::EigenBounds lanczos_bounds_serial(const Problem& p) {
  mg::Decomposition d1(p.stencil->nx(), p.stencil->ny(),
                       p.stencil->periodic_x(), p.stencil->mask(),
                       p.stencil->nx(), p.stencil->ny(), 1);
  mc::SerialComm comm;
  mc::HaloExchanger halo(d1);
  ms::DistOperator a(*p.stencil, d1, 0);
  ms::DiagonalPreconditioner m(a);
  ms::LanczosOptions lopt;
  lopt.rel_tolerance = 0.02;
  return ms::estimate_eigenvalue_bounds(comm, halo, a, m, lopt).bounds;
}

using SolverFactory =
    std::function<std::unique_ptr<ms::IterativeSolver>(int rank)>;

struct SolveRun {
  mu::Field x;
  ms::SolveStats stats;
  std::vector<ms::RecoveryEvent> events;
};

SolveRun run_with(const Problem& p, int nranks, const SolverFactory& make,
                  const mu::Field* b_override = nullptr,
                  double recv_timeout_ms = 0.0, bool halo_crc = false) {
  SolveRun out;
  out.x = mu::Field(p.decomp->nx_global(), p.decomp->ny_global(), 0.0);
  std::vector<ms::SolveStats> stats(nranks);
  mc::HaloExchanger halo(*p.decomp);
  halo.set_crc(halo_crc);
  const mu::Field& bg = b_override ? *b_override : p.b_global;
  auto body = [&](mc::Communicator& comm) {
    ms::DistOperator a(*p.stencil, *p.decomp, comm.rank());
    ms::DiagonalPreconditioner m(a);
    std::unique_ptr<ms::IterativeSolver> s = make(comm.rank());
    mc::DistField b(*p.decomp, comm.rank()), x(*p.decomp, comm.rank());
    b.load_global(bg);
    stats[comm.rank()] = s->solve(comm, halo, a, m, b, x);
    x.store_global(out.x);  // disjoint interiors; no race
    if (comm.rank() == 0)
      if (auto* rs = dynamic_cast<ms::ResilientSolver*>(s.get()))
        out.events = rs->events();
  };
  if (nranks == 1) {
    mc::SerialComm comm;
    body(comm);
  } else {
    mc::ThreadTeam team(nranks);
    if (recv_timeout_ms > 0.0) team.set_recv_timeout(recv_timeout_ms);
    team.run(body);
  }
  out.stats = stats[0];
  return out;
}

/// Scalar solver stack: pcsi|cg core, wrapped in the mixed decorator
/// when opt.precision says so.
SolverFactory make_kind(const std::string& kind, const ms::SolverOptions& opt,
                        ms::EigenBounds bounds = {1.0, 2.0}) {
  return [kind, opt, bounds](int) -> std::unique_ptr<ms::IterativeSolver> {
    std::unique_ptr<ms::IterativeSolver> core;
    if (kind == "cg")
      core = std::make_unique<ms::ChronGearSolver>(opt);
    else
      core = std::make_unique<ms::PcsiSolver>(bounds, opt);
    if (opt.precision == ms::Precision::kFp64) return core;
    return std::make_unique<ms::MixedPrecisionSolver>(std::move(core), opt);
  };
}

#if MINIPOP_FAULTS
SolverFactory resilient(const SolverFactory& inner,
                        ms::RecoveryPolicy pol = {}) {
  return [inner, pol](int r) -> std::unique_ptr<ms::IterativeSolver> {
    return std::make_unique<ms::ResilientSolver>(inner(r), pol);
  };
}
#endif  // MINIPOP_FAULTS

// ---------------------------------------------------------------------
// Batched solve harness
// ---------------------------------------------------------------------

using BatchedFactory = std::function<std::unique_ptr<ms::BatchedSolver>()>;

BatchedFactory make_batched(const std::string& kind, bool mixed,
                            ms::SolverOptions opt, ms::EigenBounds bounds) {
  if (mixed) opt.precision = ms::Precision::kMixed;
  return [kind, mixed, opt, bounds]() -> std::unique_ptr<ms::BatchedSolver> {
    std::unique_ptr<ms::BatchedSolver> core;
    if (kind == "pcsi")
      core = std::make_unique<ms::BatchedPcsiSolver>(bounds, opt);
    else
      core = std::make_unique<ms::BatchedChronGearSolver>(opt);
    if (!mixed) return core;
    return std::make_unique<ms::BatchedMixedPrecisionSolver>(std::move(core),
                                                             opt);
  };
}

#if MINIPOP_FAULTS
BatchedFactory resilient_batched(const BatchedFactory& inner) {
  return [inner]() -> std::unique_ptr<ms::BatchedSolver> {
    return std::make_unique<ms::BatchedResilientSolver>(inner());
  };
}
#endif  // MINIPOP_FAULTS

struct BatchRun {
  std::vector<mu::Field> x;  ///< gathered solution per member
  ms::BatchSolveStats stats;
  std::vector<ms::RecoveryEvent> events;
};

BatchRun run_batch(const Problem& p, int nranks,
                   const std::vector<mu::Field>& rhs,
                   const BatchedFactory& make, double recv_timeout_ms = 0.0,
                   bool halo_crc = false) {
  const int nb = static_cast<int>(rhs.size());
  BatchRun out;
  out.x.assign(static_cast<std::size_t>(nb),
               mu::Field(p.decomp->nx_global(), p.decomp->ny_global(), 0.0));
  std::vector<ms::BatchSolveStats> stats(nranks);
  mc::HaloExchanger halo(*p.decomp);
  halo.set_crc(halo_crc);
  auto body = [&](mc::Communicator& comm) {
    const int r = comm.rank();
    ms::DistOperator a(*p.stencil, *p.decomp, r);
    ms::DiagonalPreconditioner m(a);
    std::unique_ptr<ms::BatchedSolver> s = make();
    mc::DistFieldBatch b(*p.decomp, r, nb), x(*p.decomp, r, nb);
    for (int mm = 0; mm < nb; ++mm) {
      mc::DistField plane(*p.decomp, r);
      plane.load_global(rhs[static_cast<std::size_t>(mm)]);
      b.load_member(mm, plane);
    }
    stats[r] = s->solve(comm, halo, a, m, b, x);
    for (int mm = 0; mm < nb; ++mm) {
      mc::DistField plane(*p.decomp, r);
      x.store_member(mm, plane);
      plane.store_global(out.x[static_cast<std::size_t>(mm)]);
    }
    if (r == 0)
      if (auto* rs = dynamic_cast<ms::BatchedResilientSolver*>(s.get()))
        out.events = rs->events();
  };
  if (nranks == 1) {
    mc::SerialComm comm;
    body(comm);
  } else {
    mc::ThreadTeam team(nranks);
    if (recv_timeout_ms > 0.0) team.set_recv_timeout(recv_timeout_ms);
    team.run(body);
  }
  out.stats = stats[0];
  return out;
}

/// IntegrityOptions with every solver-side check on, at a short cadence.
ms::SolverOptions with_integrity(ms::SolverOptions opt) {
  opt.integrity.guarded_reductions = true;
  opt.integrity.abft_interval = 2;
  opt.integrity.true_residual_interval = 2;
  return opt;
}

}  // namespace

// ---------------------------------------------------------------------
// CRC32C: RFC 3720 / iSCSI known-answer vectors + incremental API
// ---------------------------------------------------------------------

TEST(Crc32c, KnownAnswerVectors) {
  // The iSCSI test vectors (RFC 3720 B.4, as 32-bit values).
  EXPECT_EQ(mu::crc32c("123456789", 9), 0xE3069283u);
  unsigned char buf[32];
  std::fill(std::begin(buf), std::end(buf), static_cast<unsigned char>(0));
  EXPECT_EQ(mu::crc32c(buf, sizeof(buf)), 0x8A9136AAu);
  std::fill(std::begin(buf), std::end(buf), static_cast<unsigned char>(0xFF));
  EXPECT_EQ(mu::crc32c(buf, sizeof(buf)), 0x62A8AB43u);
  for (int i = 0; i < 32; ++i) buf[i] = static_cast<unsigned char>(i);
  EXPECT_EQ(mu::crc32c(buf, sizeof(buf)), 0x46DD794Eu);
  for (int i = 0; i < 32; ++i) buf[i] = static_cast<unsigned char>(31 - i);
  EXPECT_EQ(mu::crc32c(buf, sizeof(buf)), 0x113FDB5Cu);
}

TEST(Crc32c, IncrementalEqualsOneShot) {
  std::vector<unsigned char> data(73);
  mu::Xoshiro256 rng(7);
  for (auto& b : data)
    b = static_cast<unsigned char>(rng.uniform(0.0, 256.0));
  const std::uint32_t want = mu::crc32c(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t st = mu::kCrc32cInit;
    st = mu::crc32c_update(st, data.data(), split);
    st = mu::crc32c_update(st, data.data() + split, data.size() - split);
    EXPECT_EQ(mu::crc32c_final(st), want) << "split at " << split;
  }
  // Empty input is the identity of the accumulator.
  EXPECT_EQ(mu::crc32c_update(mu::kCrc32cInit, data.data(), 0),
            mu::kCrc32cInit);
}

TEST(Crc32c, AnySingleBitFlipChangesTheChecksum) {
  // CRC32C detects all single-bit errors; spot-check a payload-sized
  // buffer the way the halo layer uses it (doubles viewed as bytes).
  std::vector<double> payload = {1.0, -2.5, 3.75e10, 0.0, -0.0, 5e-300};
  const std::size_t nbytes = payload.size() * sizeof(double);
  const std::uint32_t clean = mu::crc32c(payload.data(), nbytes);
  auto* bytes = reinterpret_cast<unsigned char*>(payload.data());
  for (std::size_t bit = 0; bit < 8 * nbytes; bit += 13) {
    bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    EXPECT_NE(mu::crc32c(payload.data(), nbytes), clean) << "bit " << bit;
    bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
  }
  EXPECT_EQ(mu::crc32c(payload.data(), nbytes), clean);
}

// ---------------------------------------------------------------------
// Fault-site table and failure-kind vocabulary stay in sync
// ---------------------------------------------------------------------

TEST(FaultSites, NameTableCoversTheIntegritySites) {
  // kNumFaultSites is derived from the name table and static_asserted
  // against the last enumerator; this pins the published names.
  EXPECT_EQ(mf::kNumFaultSites, 8);
  EXPECT_STREQ(mf::to_string(mf::FaultSite::kHaloBitFlip), "halo_bit_flip");
  EXPECT_STREQ(mf::to_string(mf::FaultSite::kCoeffBitFlip),
               "coeff_bit_flip");
  EXPECT_STREQ(mf::to_string(mf::FaultSite::kReductionCorrupt),
               "reduction_corrupt");
}

TEST(FailureKinds, ToStringCoversTheIntegrityKinds) {
  EXPECT_STREQ(ms::to_string(ms::FailureKind::kSilentDrift), "silent_drift");
  EXPECT_STREQ(ms::to_string(ms::FailureKind::kCorruptReduction),
               "corrupt_reduction");
  EXPECT_STREQ(ms::to_string(ms::FailureKind::kCorruptOperator),
               "corrupt_operator");
  EXPECT_STREQ(ms::to_string(ms::FailureKind::kCorruptPayload),
               "corrupt_payload");
  // Severity ordering the recovery agreement relies on: only the
  // communication-state failures demand a resync fence.
  EXPECT_FALSE(ms::needs_resync(ms::FailureKind::kSilentDrift));
  EXPECT_FALSE(ms::needs_resync(ms::FailureKind::kCorruptReduction));
  EXPECT_FALSE(ms::needs_resync(ms::FailureKind::kCorruptOperator));
  EXPECT_TRUE(ms::needs_resync(ms::FailureKind::kCommTimeout));
  EXPECT_TRUE(ms::needs_resync(ms::FailureKind::kCorruptPayload));
}

// ---------------------------------------------------------------------
// Verdict functions
// ---------------------------------------------------------------------

TEST(IntegrityVerdicts, AbftMismatchScalesWithProblemAndRejectsNan) {
  ms::IntegrityOptions integ;
  integ.abft_tolerance = 1e-8;
  // Healthy identity: (sum_b - sum_r) == dot_cx exactly.
  EXPECT_FALSE(ms::abft_mismatch(integ, 10.0, 4.0, 6.0, 1000.0, 25.0));
  // A rounding-scale gap stays under tolerance * (sqrt(N b²) + |dot|).
  EXPECT_FALSE(
      ms::abft_mismatch(integ, 10.0, 4.0, 6.0 + 1e-12, 1000.0, 25.0));
  // A gap far above the scale is a mismatch.
  EXPECT_TRUE(ms::abft_mismatch(integ, 10.0, 4.0, 60.0, 1000.0, 25.0));
  // Non-finite sums (flipped exponent bits breeding inf/NaN) always trip.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(ms::abft_mismatch(integ, nan, 4.0, 6.0, 1000.0, 25.0));
  EXPECT_TRUE(ms::abft_mismatch(integ, 10.0, inf, 6.0, 1000.0, 25.0));
}

TEST(IntegrityVerdicts, DriftMismatchComparesRelativeResiduals) {
  ms::IntegrityOptions integ;
  integ.drift_tolerance = 1e-8;
  EXPECT_FALSE(ms::drift_mismatch(integ, 1e-10, 1e-10));
  EXPECT_FALSE(ms::drift_mismatch(integ, 1e-10 + 1e-20, 1e-10));
  // Recurrence claims convergence, true residual says otherwise.
  EXPECT_TRUE(ms::drift_mismatch(integ, 1e-3, 1e-10));
  EXPECT_TRUE(
      ms::drift_mismatch(integ, std::numeric_limits<double>::quiet_NaN(),
                         1e-10));
}

// ---------------------------------------------------------------------
// Guarded reductions
// ---------------------------------------------------------------------

TEST(GuardedReductionTest, OffIsAPlainReductionWithZeroCounters) {
  mc::SerialComm comm;
  ms::IntegrityOptions integ;  // guard off
  double v[2] = {1.5, -2.0};
  EXPECT_FALSE(
      ms::allreduce_sum_guarded(comm, integ, std::span<double>(v, 2)));
  EXPECT_EQ(v[0], 1.5);
  EXPECT_EQ(v[1], -2.0);
  EXPECT_EQ(comm.costs().counters().integrity_checks, 0u);
}

TEST(GuardedReductionTest, HealthySerialGuardPassesAndCounts) {
  mc::SerialComm comm;
  ms::IntegrityOptions integ;
  integ.guarded_reductions = true;
  double v[3] = {1.5, 0.0, -7.25};
  EXPECT_FALSE(
      ms::allreduce_sum_guarded(comm, integ, std::span<double>(v, 3)));
  EXPECT_EQ(v[0], 1.5);
  EXPECT_EQ(v[1], 0.0);
  EXPECT_EQ(v[2], -7.25);
  EXPECT_EQ(comm.costs().counters().integrity_checks, 1u);
  EXPECT_EQ(comm.costs().counters().integrity_failures, 0u);
}

TEST(GuardedReductionTest, GuardedSumBitwiseEqualsUnguardedAcrossRanks) {
  const int nranks = 4;
  std::vector<double> guarded(2, 0.0), plain(2, 0.0);
  std::vector<int> mismatched(nranks, 0);
  mc::ThreadTeam team(nranks);
  team.run([&](mc::Communicator& comm) {
    // Rank-dependent, rounding-sensitive contributions.
    double a[2] = {0.1 * (comm.rank() + 1), -1.0 / (comm.rank() + 3)};
    double b[2] = {a[0], a[1]};
    ms::IntegrityOptions on;
    on.guarded_reductions = true;
    mismatched[comm.rank()] =
        ms::allreduce_sum_guarded(comm, on, std::span<double>(a, 2)) ? 1 : 0;
    comm.allreduce(std::span<double>(b, 2), mc::ReduceOp::kSum);
    if (comm.rank() == 0) {
      guarded.assign(a, a + 2);
      plain.assign(b, b + 2);
    }
  });
  for (int r = 0; r < nranks; ++r) EXPECT_EQ(mismatched[r], 0);
  // The duplicated halves combine in the same fixed rank order, so the
  // guarded result is bitwise the plain one.
  EXPECT_EQ(guarded[0], plain[0]);
  EXPECT_EQ(guarded[1], plain[1]);
}

// ---------------------------------------------------------------------
// Free when off / transparent when on (clean solves)
// ---------------------------------------------------------------------

TEST(IntegrityOff, DefaultOptionsRecordZeroIntegrityCounters) {
  Problem p = make_problem(24, 20, 8, 1);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  for (const std::string& kind : {std::string("cg"), std::string("pcsi")}) {
    SCOPED_TRACE(kind);
    SolveRun r = run_with(p, 1, make_kind(kind, opt));
    ASSERT_TRUE(r.stats.converged);
    EXPECT_EQ(r.stats.costs.integrity_checks, 0u);
    EXPECT_EQ(r.stats.costs.integrity_failures, 0u);
  }
}

TEST(IntegrityOn, CleanScalarSolveIsBitwiseIdenticalAndCounted) {
  ms::SolverOptions off;
  off.rel_tolerance = 1e-10;
  off.record_residuals = true;
  const ms::SolverOptions on = with_integrity(off);
  for (const std::string& kind : {std::string("cg"), std::string("pcsi")}) {
    for (const int nranks : {1, 4}) {
      SCOPED_TRACE(kind + " nranks=" + std::to_string(nranks));
      Problem p = make_problem(32, 24, 8, nranks);
      const ms::EigenBounds bounds = lanczos_bounds_serial(p);
      SolveRun base = run_with(p, nranks, make_kind(kind, off, bounds));
      SolveRun audited = run_with(p, nranks, make_kind(kind, on, bounds));
      ASSERT_TRUE(base.stats.converged);
      ASSERT_TRUE(audited.stats.converged);
      expect_stats_bitwise(audited.stats, base.stats);
      expect_fields_bitwise(audited.x, base.x);
      EXPECT_GT(audited.stats.costs.integrity_checks, 0u);
      EXPECT_EQ(audited.stats.costs.integrity_failures, 0u);
      EXPECT_EQ(base.stats.costs.integrity_checks, 0u);
    }
  }
}

TEST(IntegrityOn, CleanMixedSolveIsBitwiseIdenticalAndCounted) {
  Problem p = make_problem(32, 24, 8, 1);
  const ms::EigenBounds bounds = lanczos_bounds_serial(p);
  ms::SolverOptions off;
  off.rel_tolerance = 1e-10;
  off.precision = ms::Precision::kMixed;
  const ms::SolverOptions on = with_integrity(off);
  for (const std::string& kind : {std::string("cg"), std::string("pcsi")}) {
    SCOPED_TRACE(kind);
    SolveRun base = run_with(p, 1, make_kind(kind, off, bounds));
    SolveRun audited = run_with(p, 1, make_kind(kind, on, bounds));
    ASSERT_TRUE(base.stats.converged);
    ASSERT_TRUE(audited.stats.converged);
    expect_stats_bitwise(audited.stats, base.stats);
    expect_fields_bitwise(audited.x, base.x);
    EXPECT_GT(audited.stats.costs.integrity_checks, 0u);
    EXPECT_EQ(audited.stats.costs.integrity_failures, 0u);
  }
}

TEST(IntegrityOn, HaloCrcCleanExchangesAreBitwiseIdenticalAndCounted) {
  Problem p = make_problem(32, 24, 8, 4);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.record_residuals = true;
  SolveRun off = run_with(p, 4, make_kind("cg", opt));
  SolveRun on = run_with(p, 4, make_kind("cg", opt), nullptr, 0.0,
                         /*halo_crc=*/true);
  ASSERT_TRUE(off.stats.converged);
  ASSERT_TRUE(on.stats.converged);
  expect_stats_bitwise(on.stats, off.stats);
  expect_fields_bitwise(on.x, off.x);
  // Every received remote payload was CRC-verified, none failed.
  EXPECT_GT(on.stats.costs.integrity_checks, 0u);
  EXPECT_EQ(on.stats.costs.integrity_failures, 0u);
  EXPECT_EQ(off.stats.costs.integrity_checks, 0u);
}

TEST(IntegrityOn, CleanBatchedSolveIsBitwiseIdenticalAndCounted) {
  Problem p = make_problem(32, 24, 8, 1);
  const ms::EigenBounds bounds = lanczos_bounds_serial(p);
  const std::vector<mu::Field> rhs = make_rhs(p, 4);
  ms::SolverOptions off;
  off.rel_tolerance = 1e-10;
  const ms::SolverOptions on = with_integrity(off);
  for (const std::string& kind : {std::string("pcsi"), std::string("cg")}) {
    for (const bool mixed : {false, true}) {
      SCOPED_TRACE(kind + (mixed ? "+mixed" : "+fp64"));
      BatchRun base = run_batch(p, 1, rhs, make_batched(kind, mixed, off,
                                                        bounds));
      BatchRun audited = run_batch(p, 1, rhs, make_batched(kind, mixed, on,
                                                           bounds));
      ASSERT_EQ(base.stats.members.size(), rhs.size());
      ASSERT_EQ(audited.stats.members.size(), rhs.size());
      for (std::size_t m = 0; m < rhs.size(); ++m) {
        ASSERT_TRUE(base.stats.members[m].converged) << "member " << m;
        EXPECT_TRUE(audited.stats.members[m].converged) << "member " << m;
        EXPECT_EQ(audited.stats.members[m].iterations,
                  base.stats.members[m].iterations)
            << "member " << m;
        EXPECT_EQ(audited.stats.members[m].relative_residual,
                  base.stats.members[m].relative_residual)
            << "member " << m;
        expect_fields_bitwise(audited.x[m], base.x[m]);
      }
      EXPECT_GT(audited.stats.costs.integrity_checks, 0u);
      EXPECT_EQ(audited.stats.costs.integrity_failures, 0u);
      EXPECT_EQ(base.stats.costs.integrity_checks, 0u);
    }
  }
}

// ---------------------------------------------------------------------
// SDC campaigns: every injected fault detected, typed, recoverable
// (need the fault hooks compiled in)
// ---------------------------------------------------------------------
#if MINIPOP_FAULTS

namespace {

mf::FaultPlan one_rule(mf::FaultSite site, long trigger, int bit = 51,
                       int rank = -1) {
  mf::FaultRule r;
  r.site = site;
  r.rank = rank;
  r.trigger_event = trigger;
  r.bit = bit;
  mf::FaultPlan plan;
  plan.add(r);
  return plan;
}

/// No member may report convergence with a wrong answer: converged
/// members must match the fault-free reference.
void expect_no_silent_wrong_batch(const BatchRun& run, const BatchRun& clean,
                                  double rel = 1e-6) {
  ASSERT_EQ(run.stats.members.size(), clean.stats.members.size());
  for (std::size_t m = 0; m < run.stats.members.size(); ++m) {
    if (run.stats.members[m].converged)
      expect_fields_near(run.x[m], clean.x[m], rel);
  }
}

int count_member_failures(const ms::BatchSolveStats& stats,
                          ms::FailureKind kind) {
  int n = 0;
  for (const auto& m : stats.members)
    if (!m.converged && m.failure == kind) ++n;
  return n;
}

}  // namespace

TEST(GuardedReductionTest, InjectedContributionCorruptionIsDetected) {
  mc::SerialComm comm;
  ms::IntegrityOptions on;
  on.guarded_reductions = true;
  mf::FaultScope scope(one_rule(mf::FaultSite::kReductionCorrupt, 0));
  double v[3] = {1.0, 2.0, 3.0};
  std::vector<int> bad;
  EXPECT_TRUE(
      ms::allreduce_sum_guarded(comm, on, std::span<double>(v, 3), &bad));
  EXPECT_EQ(scope.injector().fire_count(), 1);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_GE(bad[0], 0);
  EXPECT_LT(bad[0], 3);
  EXPECT_EQ(comm.costs().counters().integrity_failures, 1u);
}

TEST(SdcCampaign, ReductionCorruptTypedAcrossScalarConfigs) {
  Problem p = make_problem(32, 24, 8, 1);
  const ms::EigenBounds bounds = lanczos_bounds_serial(p);
  for (const std::string& kind : {std::string("cg"), std::string("pcsi")}) {
    for (const bool mixed : {false, true}) {
      SCOPED_TRACE(kind + (mixed ? "+mixed" : "+fp64"));
      ms::SolverOptions opt;
      opt.rel_tolerance = 1e-10;
      if (mixed) opt.precision = ms::Precision::kMixed;
      opt.integrity.guarded_reductions = true;
      mf::FaultScope scope(one_rule(mf::FaultSite::kReductionCorrupt, 0));
      SolveRun run = run_with(p, 1, make_kind(kind, opt, bounds));
      EXPECT_EQ(scope.injector().fire_count(), 1);
      EXPECT_FALSE(run.stats.converged);
      EXPECT_EQ(run.stats.failure, ms::FailureKind::kCorruptReduction);
      EXPECT_GE(run.stats.costs.integrity_failures, 1u);
    }
  }
}

TEST(SdcCampaign, CoeffBitFlipTypedAcrossScalarConfigs) {
  Problem p = make_problem(32, 24, 8, 1);
  const ms::EigenBounds bounds = lanczos_bounds_serial(p);
  for (const std::string& kind : {std::string("cg"), std::string("pcsi")}) {
    for (const bool mixed : {false, true}) {
      SCOPED_TRACE(kind + (mixed ? "+mixed" : "+fp64"));
      ms::SolverOptions opt;
      opt.rel_tolerance = 1e-10;
      if (mixed) opt.precision = ms::Precision::kMixed;
      opt.integrity.abft_interval = 1;
      // Exponent-bit flip of one stored stencil coefficient: the next
      // ABFT audit sees a checksum gap orders of magnitude above the
      // tolerance scale. Event ordinals count fp64 operator sweeps.
      mf::FaultScope scope(
          one_rule(mf::FaultSite::kCoeffBitFlip, mixed ? 1 : 2, 62));
      SolveRun run = run_with(p, 1, make_kind(kind, opt, bounds));
      EXPECT_EQ(scope.injector().fire_count(), 1);
      EXPECT_FALSE(run.stats.converged);
      EXPECT_EQ(run.stats.failure, ms::FailureKind::kCorruptOperator);
      EXPECT_GE(run.stats.costs.integrity_failures, 1u);
    }
  }
}

TEST(SdcCampaign, RecurrenceDriftFromCorruptVectorTypedAndRecovered) {
  Problem p = make_problem(32, 24, 8, 1);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.integrity.true_residual_interval = 1;
  SolveRun clean = run_with(p, 1, make_kind("cg", opt));
  ASSERT_TRUE(clean.stats.converged);

  // A finite mid-mantissa flip in a solver vector desynchronizes
  // ChronGear's recurrence residual from b - Ax without tripping the
  // NaN/divergence guards — the canonical SILENT corruption. The
  // persistent recurrence-vs-true gap must be caught by the drift
  // audit, at the accepting check at the latest.
  mf::FaultRule r;
  r.site = mf::FaultSite::kSolverVector;
  r.trigger_event = 6;
  r.bit = 40;
  mf::FaultPlan plan;
  plan.add(r);
  {
    mf::FaultScope scope(plan);
    SolveRun raw = run_with(p, 1, make_kind("cg", opt));
    EXPECT_EQ(scope.injector().fire_count(), 1);
    EXPECT_FALSE(raw.stats.converged);
    EXPECT_EQ(raw.stats.failure, ms::FailureKind::kSilentDrift);
    EXPECT_GE(raw.stats.costs.integrity_failures, 1u);
  }
  {
    // Decorated: restart from the entry checkpoint replays the
    // fault-free solve exactly (the rule is spent after one fire).
    mf::FaultScope scope(plan);
    SolveRun dec = run_with(p, 1, resilient(make_kind("cg", opt)));
    EXPECT_EQ(scope.injector().fire_count(), 1);
    EXPECT_TRUE(dec.stats.converged);
    ASSERT_GE(dec.events.size(), 1u);
    EXPECT_EQ(dec.events[0].failure, ms::FailureKind::kSilentDrift);
    EXPECT_EQ(dec.events[0].action, "restart");
    expect_fields_bitwise(dec.x, clean.x);
  }
}

TEST(SdcCampaign, ReductionCorruptTypedAcrossBatchedConfigs) {
  Problem p = make_problem(32, 24, 8, 1);
  const ms::EigenBounds bounds = lanczos_bounds_serial(p);
  for (const std::string& kind : {std::string("pcsi"), std::string("cg")}) {
    for (const bool mixed : {false, true}) {
      for (const int nb : {1, 4}) {
        SCOPED_TRACE(kind + (mixed ? "+mixed" : "+fp64") + " B=" +
                     std::to_string(nb));
        const std::vector<mu::Field> rhs = make_rhs(p, nb);
        ms::SolverOptions opt;
        opt.rel_tolerance = 1e-10;
        opt.integrity.guarded_reductions = true;
        BatchRun clean =
            run_batch(p, 1, rhs, make_batched(kind, mixed, opt, bounds));
        for (const auto& m : clean.stats.members)
          ASSERT_TRUE(m.converged);
        // Event 0 is the guarded ||b||² setup reduce: the corrupted
        // slot's member must be frozen kCorruptReduction at entry.
        mf::FaultScope scope(one_rule(mf::FaultSite::kReductionCorrupt, 0));
        BatchRun run =
            run_batch(p, 1, rhs, make_batched(kind, mixed, opt, bounds));
        EXPECT_EQ(scope.injector().fire_count(), 1);
        EXPECT_GE(count_member_failures(run.stats,
                                        ms::FailureKind::kCorruptReduction),
                  1);
        expect_no_silent_wrong_batch(run, clean);
        EXPECT_GE(run.stats.costs.integrity_failures, 1u);
      }
    }
  }
}

TEST(SdcCampaign, CoeffBitFlipTypedAcrossBatchedConfigs) {
  Problem p = make_problem(32, 24, 8, 1);
  const ms::EigenBounds bounds = lanczos_bounds_serial(p);
  for (const std::string& kind : {std::string("pcsi"), std::string("cg")}) {
    for (const bool mixed : {false, true}) {
      for (const int nb : {1, 4}) {
        SCOPED_TRACE(kind + (mixed ? "+mixed" : "+fp64") + " B=" +
                     std::to_string(nb));
        const std::vector<mu::Field> rhs = make_rhs(p, nb);
        ms::SolverOptions opt;
        opt.rel_tolerance = 1e-10;
        opt.integrity.abft_interval = 1;
        BatchRun clean =
            run_batch(p, 1, rhs, make_batched(kind, mixed, opt, bounds));
        for (const auto& m : clean.stats.members)
          ASSERT_TRUE(m.converged);
        mf::FaultScope scope(
            one_rule(mf::FaultSite::kCoeffBitFlip, mixed ? 1 : 2, 62));
        BatchRun run =
            run_batch(p, 1, rhs, make_batched(kind, mixed, opt, bounds));
        EXPECT_EQ(scope.injector().fire_count(), 1);
        // The operator is shared: every still-active member fails the
        // ABFT identity at the first audit after the flip.
        EXPECT_GE(count_member_failures(run.stats,
                                        ms::FailureKind::kCorruptOperator),
                  1);
        expect_no_silent_wrong_batch(run, clean);
        EXPECT_GE(run.stats.costs.integrity_failures, 1u);
      }
    }
  }
}

TEST(SdcCampaign, HaloBitFlipBehindCrcRecoveredAcrossBatchedConfigs) {
  Problem p = make_problem(32, 24, 8, 4);
  const ms::EigenBounds bounds = lanczos_bounds_serial(p);
  for (const std::string& kind : {std::string("pcsi"), std::string("cg")}) {
    for (const bool mixed : {false, true}) {
      for (const int nb : {1, 4}) {
        SCOPED_TRACE(kind + (mixed ? "+mixed" : "+fp64") + " B=" +
                     std::to_string(nb));
        const std::vector<mu::Field> rhs = make_rhs(p, nb);
        ms::SolverOptions opt;
        opt.rel_tolerance = 1e-10;
        BatchRun clean = run_batch(p, 4, rhs,
                                   make_batched(kind, mixed, opt, bounds),
                                   0.0, /*halo_crc=*/true);
        for (const auto& m : clean.stats.members)
          ASSERT_TRUE(m.converged);
        // Low mantissa bit of a wire payload, flipped AFTER the CRC was
        // computed: numerically negligible, invisible to every residual
        // check — only the CRC can see it. Detection raises
        // CorruptPayloadError; the resilient decorator resyncs the team
        // and restarts from the entry checkpoint.
        mf::FaultScope scope(
            one_rule(mf::FaultSite::kHaloBitFlip, 4, 0, /*rank=*/1));
        BatchRun run = run_batch(p, 4, rhs,
                                 resilient_batched(make_batched(
                                     kind, mixed, opt, bounds)),
                                 0.0, /*halo_crc=*/true);
        EXPECT_EQ(scope.injector().fire_count(), 1);
        ASSERT_GE(run.events.size(), 1u);
        EXPECT_EQ(run.events[0].failure, ms::FailureKind::kCorruptPayload);
        ASSERT_EQ(run.stats.members.size(), rhs.size());
        for (std::size_t m = 0; m < rhs.size(); ++m) {
          EXPECT_TRUE(run.stats.members[m].converged) << "member " << m;
          expect_fields_bitwise(run.x[m], clean.x[m]);
        }
      }
    }
  }
}

TEST(SdcRecovery, CorruptOperatorRepairedThenReplaysCleanSolve) {
  Problem p = make_problem(32, 24, 8, 1);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.integrity.abft_interval = 1;
  SolveRun clean = run_with(p, 1, make_kind("cg", opt));
  ASSERT_TRUE(clean.stats.converged);

  mf::FaultScope scope(one_rule(mf::FaultSite::kCoeffBitFlip, 2, 62));
  SolveRun dec = run_with(p, 1, resilient(make_kind("cg", opt)));
  EXPECT_EQ(scope.injector().fire_count(), 1);
  EXPECT_TRUE(dec.stats.converged);
  ASSERT_GE(dec.events.size(), 1u);
  // The corruption is persistent state, so restart alone cannot cure
  // it: the first recovery rung re-copies the coefficient planes from
  // the pristine stencil and rebuilds the ABFT column sums.
  EXPECT_EQ(dec.events[0].failure, ms::FailureKind::kCorruptOperator);
  EXPECT_EQ(dec.events[0].action, "repair_operator");
  expect_fields_bitwise(dec.x, clean.x);
}

TEST(SdcRecovery, BatchedCorruptOperatorRepairedThenReplaysCleanSolve) {
  Problem p = make_problem(32, 24, 8, 1);
  const ms::EigenBounds bounds = lanczos_bounds_serial(p);
  const std::vector<mu::Field> rhs = make_rhs(p, 4);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.integrity.abft_interval = 1;
  BatchRun clean =
      run_batch(p, 1, rhs, make_batched("cg", false, opt, bounds));
  for (const auto& m : clean.stats.members) ASSERT_TRUE(m.converged);

  mf::FaultScope scope(one_rule(mf::FaultSite::kCoeffBitFlip, 2, 62));
  BatchRun dec = run_batch(
      p, 1, rhs, resilient_batched(make_batched("cg", false, opt, bounds)));
  EXPECT_EQ(scope.injector().fire_count(), 1);
  ASSERT_GE(dec.events.size(), 1u);
  EXPECT_EQ(dec.events[0].failure, ms::FailureKind::kCorruptOperator);
  EXPECT_EQ(dec.events[0].action, "repair_operator");
  for (std::size_t m = 0; m < rhs.size(); ++m) {
    EXPECT_TRUE(dec.stats.members[m].converged) << "member " << m;
    expect_fields_bitwise(dec.x[m], clean.x[m]);
  }
}

TEST(SdcRecovery, CorruptReductionRestartedThenReplaysCleanSolve) {
  Problem p = make_problem(32, 24, 8, 1);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.integrity.guarded_reductions = true;
  SolveRun clean = run_with(p, 1, make_kind("cg", opt));
  ASSERT_TRUE(clean.stats.converged);

  mf::FaultScope scope(one_rule(mf::FaultSite::kReductionCorrupt, 3));
  SolveRun dec = run_with(p, 1, resilient(make_kind("cg", opt)));
  EXPECT_EQ(scope.injector().fire_count(), 1);
  EXPECT_TRUE(dec.stats.converged);
  ASSERT_GE(dec.events.size(), 1u);
  EXPECT_EQ(dec.events[0].failure, ms::FailureKind::kCorruptReduction);
  EXPECT_EQ(dec.events[0].action, "restart");
  expect_fields_bitwise(dec.x, clean.x);
}

TEST(SdcRecovery, ScalarHaloBitFlipBehindCrcRecovered) {
  Problem p = make_problem(32, 24, 8, 4);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  SolveRun clean =
      run_with(p, 4, make_kind("cg", opt), nullptr, 0.0, /*halo_crc=*/true);
  ASSERT_TRUE(clean.stats.converged);

  const mf::FaultPlan plan =
      one_rule(mf::FaultSite::kHaloBitFlip, 5, 0, /*rank=*/1);
  mf::FaultScope scope(plan);
  SolveRun dec = run_with(p, 4, resilient(make_kind("cg", opt)), nullptr,
                          0.0, /*halo_crc=*/true);
  EXPECT_EQ(scope.injector().fire_count(), 1);
  EXPECT_TRUE(dec.stats.converged);
  ASSERT_GE(dec.events.size(), 1u);
  EXPECT_EQ(dec.events[0].failure, ms::FailureKind::kCorruptPayload);
  expect_fields_bitwise(dec.x, clean.x);
}

TEST(SdcCampaign, HaloBitFlipSiteOnlyArmsOnCrcProtectedSends) {
  // Without the CRC trailer there is no wire checksum to model
  // corruption against: the site never fires, documenting that
  // kHaloBitFlip measures the CRC's detection coverage specifically
  // (kHaloPayload covers pre-CRC memory corruption).
  Problem p = make_problem(32, 24, 8, 4);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  mf::FaultScope scope(
      one_rule(mf::FaultSite::kHaloBitFlip, 0, 0, /*rank=*/1));
  SolveRun run = run_with(p, 4, make_kind("cg", opt));  // crc off
  EXPECT_TRUE(run.stats.converged);
  EXPECT_EQ(scope.injector().fire_count(), 0);
}

#endif  // MINIPOP_FAULTS
