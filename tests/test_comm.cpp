#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/comm/dist_field.hpp"
#include "src/comm/halo.hpp"
#include "src/comm/serial_comm.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/util/error.hpp"

namespace mc = minipop::comm;
namespace mg = minipop::grid;
namespace mu = minipop::util;

TEST(SerialComm, AllreduceIsIdentityButCounted) {
  mc::SerialComm comm;
  double v[2] = {3.0, 4.0};
  comm.allreduce(std::span<double>(v, 2), mc::ReduceOp::kSum);
  EXPECT_EQ(v[0], 3.0);
  EXPECT_EQ(v[1], 4.0);
  EXPECT_EQ(comm.costs().counters().allreduces, 1u);
  EXPECT_EQ(comm.costs().counters().allreduce_doubles, 2u);
}

TEST(SerialComm, SendRecvThrow) {
  mc::SerialComm comm;
  double v = 0;
  EXPECT_THROW(comm.send(0, 0, std::span<const double>(&v, 1)), mu::Error);
  EXPECT_THROW(comm.recv(0, 0, std::span<double>(&v, 1)), mu::Error);
}

TEST(ThreadTeam, AllreduceSumAcrossRanks) {
  const int p = 6;
  mc::ThreadTeam team(p);
  std::vector<double> results(p);
  team.run([&](mc::Communicator& comm) {
    double v = comm.rank() + 1.0;
    comm.allreduce(std::span<double>(&v, 1), mc::ReduceOp::kSum);
    results[comm.rank()] = v;
  });
  for (int r = 0; r < p; ++r) EXPECT_DOUBLE_EQ(results[r], 21.0);
}

TEST(ThreadTeam, AllreduceMaxMin) {
  const int p = 4;
  mc::ThreadTeam team(p);
  std::vector<double> mx(p), mn(p);
  team.run([&](mc::Communicator& comm) {
    double v[2] = {static_cast<double>(comm.rank()),
                   static_cast<double>(-comm.rank())};
    comm.allreduce(std::span<double>(v, 1), mc::ReduceOp::kMax);
    comm.allreduce(std::span<double>(v + 1, 1), mc::ReduceOp::kMin);
    mx[comm.rank()] = v[0];
    mn[comm.rank()] = v[1];
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_DOUBLE_EQ(mx[r], 3.0);
    EXPECT_DOUBLE_EQ(mn[r], -3.0);
  }
}

TEST(ThreadTeam, AllreduceDeterministicUnderArrivalJitter) {
  // Values chosen so floating-point summation order matters.
  const int p = 5;
  std::vector<double> vals = {1e16, 1.0, -1e16, 3.0, 7.0};
  double reference = 0;
  {
    mc::ThreadTeam team(p);
    std::vector<double> out(p);
    team.run([&](mc::Communicator& comm) {
      double v = vals[comm.rank()];
      comm.allreduce(std::span<double>(&v, 1), mc::ReduceOp::kSum);
      out[comm.rank()] = v;
    });
    reference = out[0];
  }
  for (int trial = 0; trial < 5; ++trial) {
    mc::ThreadTeam team(p);
    std::vector<double> out(p);
    team.run([&](mc::Communicator& comm) {
      // Randomize arrival order.
      std::this_thread::sleep_for(
          std::chrono::microseconds((comm.rank() * 7919 + trial * 104729) %
                                    500));
      double v = vals[comm.rank()];
      comm.allreduce(std::span<double>(&v, 1), mc::ReduceOp::kSum);
      out[comm.rank()] = v;
    });
    for (int r = 0; r < p; ++r)
      EXPECT_EQ(out[r], reference) << "trial " << trial << " rank " << r;
  }
}

TEST(ThreadTeam, SendRecvPointToPoint) {
  mc::ThreadTeam team(3);
  std::vector<double> got(3, -1);
  team.run([&](mc::Communicator& comm) {
    const int r = comm.rank();
    double out = 100.0 + r;
    comm.send((r + 1) % 3, 5, std::span<const double>(&out, 1));
    double in = 0;
    comm.recv((r + 2) % 3, 5, std::span<double>(&in, 1));
    got[r] = in;
  });
  EXPECT_DOUBLE_EQ(got[0], 102.0);
  EXPECT_DOUBLE_EQ(got[1], 100.0);
  EXPECT_DOUBLE_EQ(got[2], 101.0);
}

TEST(ThreadTeam, MultipleMessagesSameChannelPreserveOrder) {
  mc::ThreadTeam team(2);
  std::vector<double> got;
  team.run([&](mc::Communicator& comm) {
    if (comm.rank() == 0) {
      for (int k = 0; k < 4; ++k) {
        double v = k;
        comm.send(1, 9, std::span<const double>(&v, 1));
      }
    } else {
      got.resize(4);
      for (int k = 0; k < 4; ++k)
        comm.recv(0, 9, std::span<double>(&got[k], 1));
    }
  });
  for (int k = 0; k < 4; ++k) EXPECT_DOUBLE_EQ(got[k], k);
}

TEST(ThreadTeam, BarrierSynchronizes) {
  const int p = 4;
  mc::ThreadTeam team(p);
  std::atomic<int> before{0};
  std::vector<int> seen(p, -1);
  team.run([&](mc::Communicator& comm) {
    before.fetch_add(1);
    comm.barrier();
    seen[comm.rank()] = before.load();
  });
  for (int r = 0; r < p; ++r) EXPECT_EQ(seen[r], p);
}

TEST(ThreadTeam, ExceptionPropagatesToCaller) {
  mc::ThreadTeam team(2);
  EXPECT_THROW(team.run([&](mc::Communicator& comm) {
    if (comm.rank() == 1) MINIPOP_REQUIRE(false, "boom");
  }),
               mu::Error);
}

TEST(ThreadTeam, FailingRankPoisonsBlockedPeersInsteadOfDeadlocking) {
  // Rank 1 throws while the others sit in collectives that can never
  // complete; run() must return promptly with the ORIGINAL error.
  mc::ThreadTeam team(3);
  try {
    team.run([&](mc::Communicator& comm) {
      if (comm.rank() == 1) MINIPOP_REQUIRE(false, "original failure");
      double v = 1.0;
      comm.allreduce(std::span<double>(&v, 1), mc::ReduceOp::kSum);
    });
    FAIL() << "should have thrown";
  } catch (const mu::Error& e) {
    EXPECT_NE(std::string(e.what()).find("original failure"),
              std::string::npos)
        << "got secondary error instead: " << e.what();
  }
  // Blocked receives abort the same way.
  mc::ThreadTeam team2(2);
  EXPECT_THROW(team2.run([&](mc::Communicator& comm) {
    if (comm.rank() == 1) MINIPOP_REQUIRE(false, "recv poison");
    double v;
    comm.recv(1, 0, std::span<double>(&v, 1));  // never sent
  }),
               mu::Error);
  // And the team is reusable after a poisoned run.
  std::vector<double> out(2);
  team2.run([&](mc::Communicator& comm) {
    double v = comm.rank() + 1.0;
    comm.allreduce(std::span<double>(&v, 1), mc::ReduceOp::kSum);
    out[comm.rank()] = v;
  });
  EXPECT_DOUBLE_EQ(out[0], 3.0);
}

TEST(ThreadTeam, CostCountersPerRank) {
  mc::ThreadTeam team(2);
  team.run([&](mc::Communicator& comm) {
    double v = 1;
    comm.allreduce(std::span<double>(&v, 1), mc::ReduceOp::kSum);
    if (comm.rank() == 0) {
      double d[3] = {1, 2, 3};
      comm.send(1, 0, std::span<const double>(d, 3));
    } else {
      double d[3];
      comm.recv(0, 0, std::span<double>(d, 3));
    }
    comm.costs().add_flops(10);
  });
  EXPECT_EQ(team.costs(0).allreduces, 1u);
  EXPECT_EQ(team.costs(0).p2p_messages, 1u);
  EXPECT_EQ(team.costs(0).p2p_bytes, 24u);
  EXPECT_EQ(team.costs(1).p2p_messages, 0u);
  EXPECT_EQ(team.total_costs().flops, 20u);
}

// --- DistField / halo exchange ------------------------------------------

namespace {

/// Global test pattern with unique values.
double pattern(int i, int j) { return 1 + i + 1000.0 * j; }

/// Validate every halo cell of every local block of `field` against the
/// global pattern (0 where the halo leaves the domain or enters an
/// eliminated block).
void check_halos(const mg::Decomposition& d, const mc::DistField& field) {
  const int h = field.halo();
  for (int lb = 0; lb < field.num_local_blocks(); ++lb) {
    const auto& b = field.info(lb);
    for (int j = -h; j < b.ny + h; ++j) {
      for (int i = -h; i < b.nx + h; ++i) {
        const bool interior =
            (i >= 0 && i < b.nx && j >= 0 && j < b.ny);
        if (interior) continue;
        int gi = b.i0 + i;
        const int gj = b.j0 + j;
        double expected = 0.0;
        if (gj >= 0 && gj < d.ny_global()) {
          if (d.periodic_x())
            gi = (gi % d.nx_global() + d.nx_global()) % d.nx_global();
          if (gi >= 0 && gi < d.nx_global()) {
            const int nbi = gi / d.block_nx();
            const int nbj = gj / d.block_ny();
            if (d.block_id_at(nbi, nbj) >= 0) expected = pattern(gi, gj);
          }
        }
        ASSERT_DOUBLE_EQ(field.at(lb, i, j), expected)
            << "block (" << b.bi << "," << b.bj << ") halo cell (" << i
            << "," << j << ")";
      }
    }
  }
}

void run_halo_case(int nx, int ny, bool periodic, int bnx, int bny,
                   int nranks, int halo,
                   const mu::MaskArray* mask_in = nullptr) {
  mu::MaskArray mask = mask_in ? *mask_in : mu::MaskArray(nx, ny, 1);
  mg::Decomposition d(nx, ny, periodic, mask, bnx, bny, nranks);
  mu::Field global(nx, ny);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) global(i, j) = pattern(i, j);

  mc::HaloExchanger hx(d);
  if (nranks == 1) {
    mc::SerialComm comm;
    mc::DistField f(d, 0, halo);
    f.load_global(global);
    hx.exchange(comm, f);
    check_halos(d, f);
  } else {
    mc::ThreadTeam team(nranks);
    team.run([&](mc::Communicator& comm) {
      mc::DistField f(d, comm.rank(), halo);
      f.load_global(global);
      hx.exchange(comm, f);
      check_halos(d, f);
    });
  }
}

}  // namespace

TEST(DistField, LoadStoreRoundTrip) {
  mu::MaskArray mask(12, 8, 1);
  mg::Decomposition d(12, 8, false, mask, 4, 4, 2);
  mu::Field global(12, 8);
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < 12; ++i) global(i, j) = pattern(i, j);
  mu::Field out(12, 8, -1.0);
  for (int r = 0; r < 2; ++r) {
    mc::DistField f(d, r, 2);
    f.load_global(global);
    f.store_global(out);
  }
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < 12; ++i) EXPECT_DOUBLE_EQ(out(i, j), pattern(i, j));
}

TEST(DistField, LocalIndexLookup) {
  mu::MaskArray mask(8, 8, 1);
  mg::Decomposition d(8, 8, false, mask, 4, 4, 2);
  mc::DistField f(d, 0, 1);
  int found = 0;
  for (int id = 0; id < d.num_active_blocks(); ++id) {
    int lb = f.local_index(id);
    if (d.block(id).owner == 0) {
      EXPECT_GE(lb, 0);
      EXPECT_EQ(f.info(lb).id, id);
      ++found;
    } else {
      EXPECT_EQ(lb, -1);
    }
  }
  EXPECT_EQ(found, f.num_local_blocks());
}

TEST(Halo, SerialSingleRankClosedDomain) {
  run_halo_case(12, 9, false, 4, 3, 1, 2);
}

TEST(Halo, SerialPeriodicWrap) { run_halo_case(12, 9, true, 4, 3, 1, 2); }

TEST(Halo, SinglePeriodicBlockWrapsOntoItself) {
  run_halo_case(10, 6, true, 10, 6, 1, 2);
}

TEST(Halo, MultiRankClosed) { run_halo_case(16, 12, false, 4, 4, 4, 2); }

TEST(Halo, MultiRankPeriodic) { run_halo_case(16, 12, true, 4, 4, 5, 2); }

TEST(Halo, HaloWidthOne) { run_halo_case(16, 12, true, 4, 4, 3, 1); }

TEST(Halo, RaggedBlocks) { run_halo_case(14, 10, true, 4, 4, 3, 2); }

// Round-trips for the row-wise memcpy pack/unpack. Full-domain-width
// blocks make the N/S regions whole padded-row strips (the widest
// contiguous copies); the multi-rank periodic cases cover wrap seams and
// corner regions at both supported halo widths.
TEST(Halo, FullWidthRowStripsSerial) {
  run_halo_case(24, 12, false, 24, 3, 1, 2);
}

TEST(Halo, FullWidthRowStripsMultiRank) {
  run_halo_case(24, 12, false, 24, 3, 4, 2);
}

TEST(Halo, FullWidthRowStripsPeriodicHaloOne) {
  run_halo_case(24, 12, true, 24, 3, 4, 1);
}

TEST(Halo, OddBlocksMultiRankPeriodicHaloOne) {
  run_halo_case(21, 11, true, 7, 4, 3, 1);
}

TEST(Halo, OddBlocksMaskedMultiRankPeriodic) {
  mu::MaskArray mask(21, 11, 1);
  for (int j = 0; j < 11; ++j)
    for (int i = 0; i < 21; ++i)
      if ((i * 7 + j * 3) % 5 == 0) mask(i, j) = 0;
  run_halo_case(21, 11, true, 7, 4, 3, 2, &mask);
}

TEST(Halo, EliminatedLandBlockZeroFills) {
  mu::MaskArray mask(12, 12, 1);
  for (int j = 4; j < 8; ++j)
    for (int i = 4; i < 8; ++i) mask(i, j) = 0;  // center block all land
  run_halo_case(12, 12, false, 4, 4, 4, 2, &mask);
}

TEST(Halo, BytesSentAccounting) {
  mu::MaskArray mask(8, 8, 1);
  mg::Decomposition d(8, 8, false, mask, 4, 4, 2);
  mc::HaloExchanger hx(d);
  mc::ThreadTeam team(2);
  std::vector<std::uint64_t> predicted(2);
  team.run([&](mc::Communicator& comm) {
    mc::DistField f(d, comm.rank(), 2);
    predicted[comm.rank()] = hx.bytes_sent_per_exchange(f);
    hx.exchange(comm, f);
  });
  EXPECT_EQ(team.costs(0).p2p_bytes, predicted[0]);
  EXPECT_EQ(team.costs(1).p2p_bytes, predicted[1]);
  EXPECT_GT(predicted[0], 0u);
  EXPECT_EQ(team.costs(0).halo_exchanges, 1u);
}
