// Counter-parity audit of the batched execution core (DESIGN.md §11):
// a B-member batched solve of B IDENTICAL systems runs the same
// lockstep iterations as one scalar solve, so its CostTracker counts
// must relate to the scalar solve's counts exactly —
//
//   halo_exchanges       equal      (one aggregated round per sweep)
//   p2p_messages         equal      (aggregation: same message count)
//   halo_member_updates  B x scalar (B planes refreshed per round)
//   p2p_bytes            B x scalar (B planes' payload per message)
//   allreduces           equal      (vector reductions, not B scalar ones)
//   allreduce_doubles    B x scalar (width-B payloads)
//
// The audit runs on the composed decorator stacks too (mixed precision,
// resilience, overlap), which is what pins down that the decorators
// batch their own communication (agreement reductions, refinement
// norms) instead of falling back to member-by-member traffic.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/comm/thread_comm.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/solver/solver_factory.hpp"
#include "src/util/rng.hpp"

namespace mc = minipop::comm;
namespace mg = minipop::grid;
namespace ms = minipop::solver;
namespace mu = minipop::util;

namespace {

/// Bowl bathymetry with an island, split across 4 ranks so the p2p
/// counters are live.
struct ParityProblem {
  std::unique_ptr<mg::CurvilinearGrid> grid;
  mu::Field depth;
  std::unique_ptr<mg::NinePointStencil> stencil;
  std::unique_ptr<mg::Decomposition> decomp;
  std::unique_ptr<mc::HaloExchanger> halo;

  ParityProblem(int nx = 20, int ny = 16) {
    mg::GridSpec spec;
    spec.kind = mg::GridKind::kUniform;
    spec.nx = nx;
    spec.ny = ny;
    spec.periodic_x = false;
    spec.dx = 1.0e4;
    spec.dy = 1.2e4;
    grid = std::make_unique<mg::CurvilinearGrid>(spec);
    depth = mg::bowl_bathymetry(*grid, 4000.0);
    depth(10, 8) = 0.0;  // island
    depth(11, 8) = 0.0;
    stencil = std::make_unique<mg::NinePointStencil>(*grid, depth, 1e-6);
    decomp = std::make_unique<mg::Decomposition>(nx, ny, false,
                                                 stencil->mask(), 10, 8, 4);
    halo = std::make_unique<mc::HaloExchanger>(*decomp);
  }

  mu::Field random_rhs(std::uint64_t seed) const {
    mu::Xoshiro256 rng(seed);
    mu::Field b(grid->nx(), grid->ny(), 0.0);
    for (int j = 0; j < grid->ny(); ++j)
      for (int i = 0; i < grid->nx(); ++i)
        if (stencil->mask()(i, j)) b(i, j) = rng.uniform(-1, 1);
    return b;
  }
};

struct ParityCase {
  const char* label;
  ms::SolverKind solver;
  ms::Precision precision;
  bool resilient;
  bool overlap;
};

class CostParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(CostParityTest, BatchedCountsAreExactlyBTimesScalar) {
  const ParityCase pc = GetParam();
  ParityProblem p;
  const int nranks = 4;
  const int nb = 4;
  const mu::Field rhs = p.random_rhs(7100);

  ms::SolverConfig cfg;
  cfg.solver = pc.solver;
  cfg.preconditioner = ms::PreconditionerKind::kDiagonal;
  cfg.options.rel_tolerance = 1e-10;
  cfg.options.precision = pc.precision;
  cfg.resilient = pc.resilient;
  cfg.overlap = pc.overlap;
  cfg.lanczos.rel_tolerance = 0.02;

  std::vector<mc::CostCounters> scalar_costs(nranks), batch_costs(nranks);
  std::vector<int> scalar_iters(nranks), batch_iters(nranks);

  mc::ThreadTeam team(nranks);
  team.run([&](mc::Communicator& comm) {
    const int r = comm.rank();
    ms::BarotropicSolver solver(comm, *p.halo, *p.grid, p.depth,
                                *p.stencil, *p.decomp, cfg);
    ASSERT_TRUE(solver.has_batched_path()) << pc.label;

    // One scalar solve of the reference system.
    mc::DistField b(*p.decomp, r), x(*p.decomp, r);
    b.load_global(rhs);
    auto snap = comm.costs().counters();
    const auto sstats = solver.solve(comm, b, x);
    scalar_costs[r] = comm.costs().since(snap);
    scalar_iters[r] = sstats.iterations;
    ASSERT_TRUE(sstats.converged) << pc.label;

    // One batched solve of nb copies of the SAME system: the members
    // are bit-identical, so they converge at the same lockstep sweep —
    // no early freezes, no retirement, pure aggregation.
    std::vector<mc::DistField> bb, xb;
    std::vector<const mc::DistField*> bs;
    std::vector<mc::DistField*> xs;
    for (int m = 0; m < nb; ++m) {
      bb.emplace_back(*p.decomp, r);
      xb.emplace_back(*p.decomp, r);
      bb.back().load_global(rhs);
    }
    for (int m = 0; m < nb; ++m) {
      bs.push_back(&bb[m]);
      xs.push_back(&xb[m]);
    }
    snap = comm.costs().counters();
    const auto bstats = solver.solve_batch(comm, bs, xs);
    batch_costs[r] = comm.costs().since(snap);
    batch_iters[r] = bstats.iterations;
    for (int m = 0; m < nb; ++m)
      ASSERT_TRUE(bstats.members[m].converged)
          << pc.label << " member " << m;
  });

  const auto B = static_cast<std::uint64_t>(nb);
  for (int r = 0; r < nranks; ++r) {
    SCOPED_TRACE(std::string(pc.label) + " rank " + std::to_string(r));
    // Identical members -> identical lockstep trajectory.
    EXPECT_EQ(batch_iters[r], scalar_iters[r]);
    // Halo bookkeeping: same rounds and messages, B-fold payload.
    EXPECT_EQ(batch_costs[r].halo_exchanges,
              scalar_costs[r].halo_exchanges);
    EXPECT_EQ(batch_costs[r].halo_member_updates,
              B * scalar_costs[r].halo_member_updates);
    EXPECT_EQ(batch_costs[r].p2p_messages, scalar_costs[r].p2p_messages);
    EXPECT_EQ(batch_costs[r].p2p_bytes, B * scalar_costs[r].p2p_bytes);
    // Reductions: vectorized, never demuxed into B scalar rounds.
    EXPECT_EQ(batch_costs[r].allreduces, scalar_costs[r].allreduces);
    EXPECT_EQ(batch_costs[r].allreduce_doubles,
              B * scalar_costs[r].allreduce_doubles);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CostParityTest,
    ::testing::Values(
        ParityCase{"pcsi_fp64", ms::SolverKind::kPcsi,
                   ms::Precision::kFp64, false, false},
        ParityCase{"chrongear_fp64", ms::SolverKind::kChronGear,
                   ms::Precision::kFp64, false, false},
        ParityCase{"pcsi_fp64_resilient", ms::SolverKind::kPcsi,
                   ms::Precision::kFp64, true, false},
        ParityCase{"pcsi_mixed", ms::SolverKind::kPcsi,
                   ms::Precision::kMixed, false, false},
        ParityCase{"pcsi_composed", ms::SolverKind::kPcsi,
                   ms::Precision::kMixed, true, true},
        ParityCase{"chrongear_composed", ms::SolverKind::kChronGear,
                   ms::Precision::kMixed, true, true}),
    [](const auto& info) { return std::string(info.param.label); });

}  // namespace
