// Communication-avoiding stencil engine (DESIGN.md §13): depth-k ghost
// zones, grouped deep exchanges, multi-sweep P-CSI.
//
// The load-bearing assertion is BITWISE identity: a depth-k solve must
// produce, member for member and iteration for iteration, exactly the
// bits of k-times-as-many depth-1 exchanges — across serial and 4-rank
// teams, scalar and batched (B=4), fp64/fp32/mixed precision, and every
// supported depth. Around it: counter audits (halo rounds and messages
// ~k× down, redundant ghost flops accounted), grouped-exchange
// equivalence, deep-rim exchange truth vs the global pattern, the
// narrow-block width clamp, Hilbert determinism, and the depth
// autotuner's model.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/comm/dist_field.hpp"
#include "src/comm/halo.hpp"
#include "src/comm/serial_comm.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/perf/cost_equations.hpp"
#include "src/solver/solver_factory.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace mc = minipop::comm;
namespace mg = minipop::grid;
namespace mp = minipop::perf;
namespace ms = minipop::solver;
namespace mu = minipop::util;

namespace {

/// Bowl bathymetry with an island; block grid fine enough that depth-4
/// rims still fit every active block (max_halo_width() >= 4).
struct CaProblem {
  std::unique_ptr<mg::CurvilinearGrid> grid;
  mu::Field depth;
  std::unique_ptr<mg::NinePointStencil> stencil;
  std::unique_ptr<mg::Decomposition> decomp;
  std::unique_ptr<mc::HaloExchanger> halo;

  explicit CaProblem(int nx = 24, int ny = 20, bool periodic_x = false,
                     int nranks = 4, int block_nx = 12, int block_ny = 10) {
    mg::GridSpec spec;
    spec.kind = mg::GridKind::kUniform;
    spec.nx = nx;
    spec.ny = ny;
    spec.periodic_x = periodic_x;
    spec.dx = 1.0e4;
    spec.dy = 1.2e4;
    grid = std::make_unique<mg::CurvilinearGrid>(spec);
    depth = mg::bowl_bathymetry(*grid, 4000.0);
    depth(12, 9) = 0.0;  // island
    depth(13, 9) = 0.0;
    stencil = std::make_unique<mg::NinePointStencil>(*grid, depth, 1e-6);
    decomp = std::make_unique<mg::Decomposition>(nx, ny, periodic_x,
                                                 stencil->mask(), block_nx,
                                                 block_ny, nranks);
    halo = std::make_unique<mc::HaloExchanger>(*decomp);
  }

  mu::Field random_rhs(std::uint64_t seed) const {
    mu::Xoshiro256 rng(seed);
    mu::Field b(grid->nx(), grid->ny(), 0.0);
    for (int j = 0; j < grid->ny(); ++j)
      for (int i = 0; i < grid->nx(); ++i)
        if (stencil->mask()(i, j)) b(i, j) = rng.uniform(-1, 1);
    return b;
  }
};

struct SolveOutcome {
  mu::Field x;
  int iterations = 0;
  double relative_residual = 0.0;
  std::vector<std::pair<int, double>> history;
  mc::CostCounters costs;  ///< rank 0's per-solve deltas
};

/// One scalar solve at the given depth, on `nranks` ranks; returns the
/// gathered solution and rank-0 stats.
SolveOutcome run_scalar(const CaProblem& p, int nranks,
                        ms::Precision precision,
                        ms::PreconditionerKind precond, int halo_depth,
                        double rel_tol) {
  ms::SolverConfig cfg;
  cfg.solver = ms::SolverKind::kPcsi;
  cfg.preconditioner = precond;
  cfg.options.rel_tolerance = rel_tol;
  cfg.options.precision = precision;
  cfg.options.record_residuals = true;
  cfg.options.halo_depth = halo_depth;
  cfg.resilient = false;
  cfg.lanczos.rel_tolerance = 0.02;

  const mu::Field rhs = p.random_rhs(4242);
  SolveOutcome out;
  out.x = mu::Field(p.grid->nx(), p.grid->ny(), 0.0);

  auto body = [&](mc::Communicator& comm) {
    ms::BarotropicSolver solver(comm, *p.halo, *p.grid, p.depth, *p.stencil,
                                *p.decomp, cfg);
    mc::DistField b(*p.decomp, comm.rank()), x(*p.decomp, comm.rank());
    b.load_global(rhs);
    const ms::SolveStats stats = solver.solve(comm, b, x);
    ASSERT_TRUE(stats.converged);
    x.store_global(out.x);
    if (comm.rank() == 0) {
      out.iterations = stats.iterations;
      out.relative_residual = stats.relative_residual;
      out.history = stats.residual_history;
      out.costs = stats.costs;
    }
  };
  if (nranks == 1) {
    mc::SerialComm comm;
    body(comm);
  } else {
    mc::ThreadTeam team(nranks);
    team.run(body);
  }
  return out;
}

void expect_same_bits(const mu::Field& a, const mu::Field& b,
                      const mu::MaskArray& mask) {
  ASSERT_EQ(a.nx(), b.nx());
  ASSERT_EQ(a.ny(), b.ny());
  for (int j = 0; j < a.ny(); ++j)
    for (int i = 0; i < a.nx(); ++i)
      if (mask(i, j)) {
        ASSERT_EQ(a(i, j), b(i, j)) << "cell (" << i << "," << j << ")";
      }
}

struct IdentityCase {
  const char* label;
  int nranks;
  ms::Precision precision;
  ms::PreconditionerKind precond;
  int depth;
  double rel_tol;
};

class CommAvoidIdentityTest : public ::testing::TestWithParam<IdentityCase> {
};

TEST_P(CommAvoidIdentityTest, DepthKSolveIsBitwiseDepth1) {
  const IdentityCase c = GetParam();
  CaProblem p(24, 20, false, c.nranks);
  ASSERT_GE(p.decomp->max_halo_width(), 4);

  const SolveOutcome base =
      run_scalar(p, c.nranks, c.precision, c.precond, 1, c.rel_tol);
  const SolveOutcome ca =
      run_scalar(p, c.nranks, c.precision, c.precond, c.depth, c.rel_tol);

  EXPECT_EQ(ca.iterations, base.iterations);
  EXPECT_EQ(ca.relative_residual, base.relative_residual);
  ASSERT_EQ(ca.history.size(), base.history.size());
  for (std::size_t i = 0; i < base.history.size(); ++i) {
    EXPECT_EQ(ca.history[i].first, base.history[i].first) << "check " << i;
    EXPECT_EQ(ca.history[i].second, base.history[i].second) << "check " << i;
  }
  expect_same_bits(ca.x, base.x, p.stencil->mask());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CommAvoidIdentityTest,
    ::testing::Values(
        IdentityCase{"serial_fp64_d2", 1, ms::Precision::kFp64,
                     ms::PreconditionerKind::kDiagonal, 2, 1e-10},
        IdentityCase{"serial_fp64_d4", 1, ms::Precision::kFp64,
                     ms::PreconditionerKind::kDiagonal, 4, 1e-10},
        IdentityCase{"ranks4_fp64_d2", 4, ms::Precision::kFp64,
                     ms::PreconditionerKind::kDiagonal, 2, 1e-10},
        IdentityCase{"ranks4_fp64_d3", 4, ms::Precision::kFp64,
                     ms::PreconditionerKind::kDiagonal, 3, 1e-10},
        IdentityCase{"ranks4_fp64_d4", 4, ms::Precision::kFp64,
                     ms::PreconditionerKind::kDiagonal, 4, 1e-10},
        IdentityCase{"ranks4_identity_d3", 4, ms::Precision::kFp64,
                     ms::PreconditionerKind::kIdentity, 3, 1e-8},
        IdentityCase{"serial_fp32_d2", 1, ms::Precision::kFp32,
                     ms::PreconditionerKind::kDiagonal, 2, 1e-5},
        IdentityCase{"ranks4_fp32_d2", 4, ms::Precision::kFp32,
                     ms::PreconditionerKind::kDiagonal, 2, 1e-5},
        IdentityCase{"ranks4_fp32_d4", 4, ms::Precision::kFp32,
                     ms::PreconditionerKind::kDiagonal, 4, 1e-5},
        IdentityCase{"ranks4_mixed_d2", 4, ms::Precision::kMixed,
                     ms::PreconditionerKind::kDiagonal, 2, 1e-10},
        IdentityCase{"ranks4_mixed_d3", 4, ms::Precision::kMixed,
                     ms::PreconditionerKind::kDiagonal, 3, 1e-10}),
    [](const auto& info) { return std::string(info.param.label); });

// --- batched bitwise identity --------------------------------------------

struct BatchOutcome {
  std::vector<mu::Field> xs;
  std::vector<int> iters;
  std::vector<double> rel;
  mc::CostCounters costs;
};

BatchOutcome run_batched(const CaProblem& p, int nranks, int nb,
                         ms::Precision precision, int halo_depth,
                         double rel_tol) {
  ms::SolverConfig cfg;
  cfg.solver = ms::SolverKind::kPcsi;
  cfg.preconditioner = ms::PreconditionerKind::kDiagonal;
  cfg.options.rel_tolerance = rel_tol;
  cfg.options.precision = precision;
  cfg.options.halo_depth = halo_depth;
  cfg.resilient = false;
  cfg.lanczos.rel_tolerance = 0.02;

  std::vector<mu::Field> rhs;
  for (int m = 0; m < nb; ++m) rhs.push_back(p.random_rhs(9000 + m));

  BatchOutcome out;
  out.xs.assign(nb, mu::Field(p.grid->nx(), p.grid->ny(), 0.0));
  out.iters.assign(nb, 0);
  out.rel.assign(nb, 0.0);

  mc::ThreadTeam team(nranks);
  team.run([&](mc::Communicator& comm) {
    const int r = comm.rank();
    ms::BarotropicSolver solver(comm, *p.halo, *p.grid, p.depth, *p.stencil,
                                *p.decomp, cfg);
    std::vector<mc::DistField> bb, xb;
    std::vector<const mc::DistField*> bs;
    std::vector<mc::DistField*> xs;
    for (int m = 0; m < nb; ++m) {
      bb.emplace_back(*p.decomp, r);
      xb.emplace_back(*p.decomp, r);
      bb.back().load_global(rhs[m]);
    }
    for (int m = 0; m < nb; ++m) {
      bs.push_back(&bb[m]);
      xs.push_back(&xb[m]);
    }
    const ms::BatchSolveStats stats = solver.solve_batch(comm, bs, xs);
    for (int m = 0; m < nb; ++m) {
      ASSERT_TRUE(stats.members[m].converged) << "member " << m;
      xb[m].store_global(out.xs[m]);
      if (r == 0) {
        out.iters[m] = stats.members[m].iterations;
        out.rel[m] = stats.members[m].relative_residual;
      }
    }
    if (r == 0) out.costs = stats.costs;
  });
  return out;
}

TEST(CommAvoidBatched, DepthKBatchIsBitwiseDepth1Fp64) {
  CaProblem p;
  for (int depth : {2, 4}) {
    SCOPED_TRACE("depth " + std::to_string(depth));
    const BatchOutcome base =
        run_batched(p, 4, 4, ms::Precision::kFp64, 1, 1e-10);
    const BatchOutcome ca =
        run_batched(p, 4, 4, ms::Precision::kFp64, depth, 1e-10);
    for (int m = 0; m < 4; ++m) {
      SCOPED_TRACE("member " + std::to_string(m));
      EXPECT_EQ(ca.iters[m], base.iters[m]);
      EXPECT_EQ(ca.rel[m], base.rel[m]);
      expect_same_bits(ca.xs[m], base.xs[m], p.stencil->mask());
    }
  }
}

TEST(CommAvoidBatched, DepthKBatchIsBitwiseDepth1Fp32) {
  CaProblem p;
  const BatchOutcome base =
      run_batched(p, 4, 4, ms::Precision::kFp32, 1, 1e-5);
  const BatchOutcome ca =
      run_batched(p, 4, 4, ms::Precision::kFp32, 2, 1e-5);
  for (int m = 0; m < 4; ++m) {
    SCOPED_TRACE("member " + std::to_string(m));
    EXPECT_EQ(ca.iters[m], base.iters[m]);
    EXPECT_EQ(ca.rel[m], base.rel[m]);
    expect_same_bits(ca.xs[m], base.xs[m], p.stencil->mask());
  }
}

TEST(CommAvoidBatched, SingleMemberBatchMatchesScalar) {
  CaProblem p;
  const SolveOutcome scalar =
      run_scalar(p, 4, ms::Precision::kFp64,
                 ms::PreconditionerKind::kDiagonal, 3, 1e-10);
  // B = 1 batch with the same RHS seed the scalar helper uses.
  ms::SolverConfig cfg;
  cfg.solver = ms::SolverKind::kPcsi;
  cfg.preconditioner = ms::PreconditionerKind::kDiagonal;
  cfg.options.rel_tolerance = 1e-10;
  cfg.options.halo_depth = 3;
  cfg.resilient = false;
  cfg.lanczos.rel_tolerance = 0.02;
  const mu::Field rhs = p.random_rhs(4242);
  mu::Field xg(p.grid->nx(), p.grid->ny(), 0.0);
  int iters = 0;
  mc::ThreadTeam team(4);
  team.run([&](mc::Communicator& comm) {
    ms::BarotropicSolver solver(comm, *p.halo, *p.grid, p.depth, *p.stencil,
                                *p.decomp, cfg);
    mc::DistField b(*p.decomp, comm.rank()), x(*p.decomp, comm.rank());
    b.load_global(rhs);
    const mc::DistField* bs[1] = {&b};
    mc::DistField* xs[1] = {&x};
    const auto stats = solver.solve_batch(comm, bs, xs);
    ASSERT_TRUE(stats.members[0].converged);
    x.store_global(xg);
    if (comm.rank() == 0) iters = stats.members[0].iterations;
  });
  EXPECT_EQ(iters, scalar.iterations);
  expect_same_bits(xg, scalar.x, p.stencil->mask());
}

// --- cost-counter audit ---------------------------------------------------

/// Fixed-iteration solves (tolerance unreachable is NOT used — instead a
/// tolerance small enough that the run exhausts well over 100 iterations
/// before converging would be flaky; we pin the schedule by comparing
/// converged runs, which by the identity tests take the SAME iteration
/// count at every depth).
TEST(CommAvoidCosts, HaloRoundsAndMessagesDropByAboutK) {
  CaProblem p;
  const SolveOutcome d1 = run_scalar(p, 4, ms::Precision::kFp64,
                                     ms::PreconditionerKind::kDiagonal, 1,
                                     1e-10);
  const SolveOutcome d2 = run_scalar(p, 4, ms::Precision::kFp64,
                                     ms::PreconditionerKind::kDiagonal, 2,
                                     1e-10);
  const SolveOutcome d4 = run_scalar(p, 4, ms::Precision::kFp64,
                                     ms::PreconditionerKind::kDiagonal, 4,
                                     1e-10);
  ASSERT_EQ(d2.iterations, d1.iterations);
  ASSERT_EQ(d4.iterations, d1.iterations);
  ASSERT_GE(d1.iterations, 40) << "problem too easy to audit rounds";

  // Depth 1 never pays redundant ghost flops; depth k > 1 always does,
  // and the counter rides CostCounters::since() into SolveStats.
  EXPECT_EQ(d1.costs.redundant_flops, 0u);
  EXPECT_GT(d2.costs.redundant_flops, 0u);
  EXPECT_GT(d4.costs.redundant_flops, d2.costs.redundant_flops);
  // Redundant flops are a subset of flops: totals grow with depth.
  EXPECT_GT(d2.costs.flops, d1.costs.flops);
  EXPECT_GE(d2.costs.flops - d1.costs.flops, d2.costs.redundant_flops / 2);

  const auto ratio = [](std::uint64_t base, std::uint64_t ca) {
    return static_cast<double>(base) / static_cast<double>(ca);
  };
  // Exchange rounds: ~2x fewer at depth 2, more at depth 4 (the group
  // schedule aligns with checks, so the asymptote is min(k, check_freq)).
  EXPECT_GE(ratio(d1.costs.halo_exchanges, d2.costs.halo_exchanges), 1.8);
  EXPECT_GE(ratio(d1.costs.halo_exchanges, d4.costs.halo_exchanges),
            ratio(d1.costs.halo_exchanges, d2.costs.halo_exchanges));
  // Messages track rounds (one message per block-neighbor per round).
  EXPECT_GE(ratio(d1.costs.p2p_messages, d2.costs.p2p_messages), 1.8);
}

// --- grouped exchange equivalence -----------------------------------------

TEST(ExchangeGroup, MatchesSingleExchangesBitwiseWithOneThirdMessages) {
  const int nx = 18, ny = 12, hw = 3;
  mu::MaskArray mask(nx, ny, 1);
  mg::Decomposition d(nx, ny, true, mask, 6, 6, 4);
  mc::HaloExchanger hx(d);

  mu::Field g1(nx, ny), g2(nx, ny), g3(nx, ny);
  mu::Xoshiro256 rng(77);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      g1(i, j) = rng.uniform(-1, 1);
      g2(i, j) = rng.uniform(-1, 1);
      g3(i, j) = rng.uniform(-1, 1);
    }

  std::vector<mc::CostCounters> single_costs(4), group_costs(4);
  mc::ThreadTeam team(4);
  team.run([&](mc::Communicator& comm) {
    const int r = comm.rank();
    mc::DistField a1(d, r, hw), a2(d, r, hw), a3(d, r, hw);
    mc::DistField b1(d, r, hw), b2(d, r, hw), b3(d, r, hw);
    a1.load_global(g1); b1.load_global(g1);
    a2.load_global(g2); b2.load_global(g2);
    a3.load_global(g3); b3.load_global(g3);

    auto snap = comm.costs().counters();
    hx.exchange(comm, a1);
    hx.exchange(comm, a2);
    hx.exchange(comm, a3);
    single_costs[r] = comm.costs().since(snap);

    snap = comm.costs().counters();
    const mc::FieldSet sets[3] = {mc::FieldSet(b1), mc::FieldSet(b2),
                                  mc::FieldSet(b3)};
    hx.exchange_group<double>(
        comm, std::span<const mc::FieldSet>(sets, 3));
    group_costs[r] = comm.costs().since(snap);

    // Every plane, halos included, bitwise equal to its own exchange.
    const mc::DistField* as[3] = {&a1, &a2, &a3};
    const mc::DistField* bs[3] = {&b1, &b2, &b3};
    for (int f = 0; f < 3; ++f)
      for (int lb = 0; lb < a1.num_local_blocks(); ++lb) {
        const auto& info = a1.info(lb);
        for (int j = -hw; j < info.ny + hw; ++j)
          for (int i = -hw; i < info.nx + hw; ++i)
            ASSERT_EQ(as[f]->at(lb, i, j), bs[f]->at(lb, i, j))
                << "field " << f << " block " << lb << " cell (" << i
                << "," << j << ")";
      }
  });

  for (int r = 0; r < 4; ++r) {
    SCOPED_TRACE("rank " + std::to_string(r));
    // One round and one message per (block, neighbor) for the whole
    // group vs three of each for the separate exchanges; same bytes.
    EXPECT_EQ(3 * group_costs[r].p2p_messages, single_costs[r].p2p_messages);
    EXPECT_EQ(group_costs[r].halo_exchanges, 1u);
    EXPECT_EQ(single_costs[r].halo_exchanges, 3u);
    EXPECT_EQ(group_costs[r].halo_member_updates,
              single_costs[r].halo_member_updates);
  }
}

// --- deep-rim exchange truth ----------------------------------------------

double pattern(int i, int j) { return 1 + i + 1000.0 * j; }

void check_deep_halo(int nx, int ny, bool periodic, int nranks, int hw) {
  mu::MaskArray mask(nx, ny, 1);
  mg::Decomposition d(nx, ny, periodic, mask, 6, 6, nranks);
  ASSERT_GE(d.max_halo_width(), hw);
  mu::Field global(nx, ny);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) global(i, j) = pattern(i, j);

  mc::HaloExchanger hx(d);
  mc::ThreadTeam team(nranks);
  team.run([&](mc::Communicator& comm) {
    mc::DistField f(d, comm.rank(), hw);
    f.load_global(global);
    hx.exchange(comm, f);
    for (int lb = 0; lb < f.num_local_blocks(); ++lb) {
      const auto& b = f.info(lb);
      for (int j = -hw; j < b.ny + hw; ++j)
        for (int i = -hw; i < b.nx + hw; ++i) {
          if (i >= 0 && i < b.nx && j >= 0 && j < b.ny) continue;
          int gi = b.i0 + i;
          const int gj = b.j0 + j;
          double expected = 0.0;
          if (gj >= 0 && gj < ny) {
            if (periodic) gi = (gi % nx + nx) % nx;
            if (gi >= 0 && gi < nx) expected = pattern(gi, gj);
          }
          ASSERT_EQ(f.at(lb, i, j), expected)
              << "block " << lb << " halo cell (" << i << "," << j << ")";
        }
    }
  });
}

TEST(DeepHalo, Width3ClosedMultiRank) { check_deep_halo(18, 12, false, 4, 3); }
TEST(DeepHalo, Width3PeriodicMultiRank) { check_deep_halo(18, 12, true, 4, 3); }
TEST(DeepHalo, Width4PeriodicMultiRank) { check_deep_halo(24, 18, true, 4, 4); }

// --- narrow-block validation (satellite: clamp/reject wide rims) ----------

TEST(HaloDepthValidation, NarrowBlockBoundsTheRim) {
  // nx = 15 with 6-wide blocks leaves a 3-wide remainder column: the
  // widest exchangeable rim is 3.
  mu::MaskArray mask(15, 12, 1);
  mg::Decomposition d(15, 12, false, mask, 6, 6, 1);
  EXPECT_EQ(d.max_halo_width(), 3);
  EXPECT_NO_THROW(d.validate_halo(3));
  EXPECT_THROW(d.validate_halo(4), mu::Error);
  EXPECT_NO_THROW(mc::DistField(d, 0, 3));
  EXPECT_THROW(mc::DistField(d, 0, 4), mu::Error);
  EXPECT_THROW(mc::DistFieldBatch(d, 0, 2, 4), mu::Error);
}

TEST(HaloDepthValidation, FactoryClampsDepthToNarrowestBlock) {
  // Same narrow-remainder decomposition through the facade: a requested
  // depth of 4 resolves to the widest supported rim, 3.
  CaProblem p(15, 12, false, 1, 6, 6);
  ASSERT_EQ(p.decomp->max_halo_width(), 3);
  ms::SolverConfig cfg;
  cfg.solver = ms::SolverKind::kPcsi;
  cfg.preconditioner = ms::PreconditionerKind::kDiagonal;
  cfg.options.halo_depth = 4;
  cfg.resilient = false;
  cfg.lanczos.rel_tolerance = 0.02;
  mc::SerialComm comm;
  ms::BarotropicSolver solver(comm, *p.halo, *p.grid, p.depth, *p.stencil,
                              *p.decomp, cfg);
  EXPECT_EQ(solver.config().options.halo_depth, 3);
}

TEST(HaloDepthValidation, BlockEvpFallsBackToDepth1) {
  CaProblem p(24, 20, false, 1);
  ms::SolverConfig cfg;
  cfg.solver = ms::SolverKind::kPcsi;
  cfg.preconditioner = ms::PreconditionerKind::kBlockEvp;
  cfg.options.halo_depth = 3;
  cfg.resilient = false;
  cfg.lanczos.rel_tolerance = 0.02;
  mc::SerialComm comm;
  ms::BarotropicSolver solver(comm, *p.halo, *p.grid, p.depth, *p.stencil,
                              *p.decomp, cfg);
  EXPECT_EQ(solver.config().options.halo_depth, 1);
}

TEST(HaloDepthValidation, AutoResolvesToConcreteDepth) {
  CaProblem p(24, 20, false, 1);
  ms::SolverConfig cfg;
  cfg.solver = ms::SolverKind::kPcsi;
  cfg.preconditioner = ms::PreconditionerKind::kDiagonal;
  cfg.options.halo_depth = ms::kHaloDepthAuto;
  cfg.resilient = false;
  cfg.lanczos.rel_tolerance = 0.02;
  mc::SerialComm comm;
  ms::BarotropicSolver solver(comm, *p.halo, *p.grid, p.depth, *p.stencil,
                              *p.decomp, cfg);
  const int hd = solver.config().options.halo_depth;
  EXPECT_GE(hd, 1);
  EXPECT_LE(hd, ms::kMaxHaloDepth);
}

// --- Hilbert / decomposition determinism ----------------------------------

TEST(DecompositionDeterminism, RepeatedConstructionIsIdentical) {
  CaProblem base;
  for (int nranks : {1, 2, 4}) {
    SCOPED_TRACE("nranks " + std::to_string(nranks));
    std::unique_ptr<mg::Decomposition> first;
    for (int run = 0; run < 3; ++run) {
      auto d = std::make_unique<mg::Decomposition>(
          24, 20, false, base.stencil->mask(), 12, 10, nranks);
      if (!first) {
        first = std::move(d);
        continue;
      }
      ASSERT_EQ(d->num_active_blocks(), first->num_active_blocks());
      for (int id = 0; id < d->num_active_blocks(); ++id) {
        const auto& a = d->block(id);
        const auto& b = first->block(id);
        EXPECT_EQ(a.owner, b.owner) << "block " << id << " run " << run;
        EXPECT_EQ(a.i0, b.i0);
        EXPECT_EQ(a.j0, b.j0);
        EXPECT_EQ(a.nx, b.nx);
        EXPECT_EQ(a.ny, b.ny);
      }
      for (int r = 0; r < nranks; ++r)
        EXPECT_EQ(d->blocks_of_rank(r), first->blocks_of_rank(r))
            << "rank " << r << " run " << run;
    }
  }
}

// --- depth autotuner model -------------------------------------------------

TEST(DepthAutotuner, DepthOneIsExactlyTheBaselineModel) {
  const mp::MachineProfile m = mp::yellowstone_profile();
  for (int p : {1024, 4096, 16384}) {
    const auto base =
        mp::iteration_costs(m, mp::Config::kPcsiDiag, 3600L * 2400, p, 10);
    const auto ca = mp::comm_avoid_iteration_costs(
        m, mp::Config::kPcsiDiag, 3600L * 2400, p, 10, 1);
    EXPECT_EQ(ca.computation, base.computation) << "p=" << p;
    EXPECT_EQ(ca.halo, base.halo) << "p=" << p;
    EXPECT_EQ(ca.reduction, base.reduction) << "p=" << p;
  }
}

TEST(DepthAutotuner, LatencyBoundPicksDeepRimsComputeBoundPicksOne) {
  // Latency-dominated regime: tiny subdomains, expensive messages.
  mp::MachineProfile lat = mp::yellowstone_profile();
  lat.alpha_p2p = 1e-3;  // pathological wire latency
  EXPECT_GT(mp::choose_halo_depth(lat, mp::Config::kPcsiDiag, 3600L * 2400,
                                  16384, 10),
            1);
  // Compute-dominated regime: few ranks, huge subdomains — redundant
  // perimeter flops swamp any latency saving.
  mp::MachineProfile slow = mp::yellowstone_profile();
  slow.theta = 1e-6;  // pathologically slow cores
  EXPECT_EQ(mp::choose_halo_depth(slow, mp::Config::kPcsiDiag, 3600L * 2400,
                                  4, 10),
            1);
  // Non-P-CSI configs have no comm-avoiding schedule.
  EXPECT_EQ(mp::choose_halo_depth(lat, mp::Config::kCgDiag, 3600L * 2400,
                                  16384, 10),
            1);
}

TEST(DepthAutotuner, DepthRespectsMaxBound) {
  mp::MachineProfile lat = mp::yellowstone_profile();
  lat.alpha_p2p = 1.0;  // latency so dominant the argmin saturates
  for (int max_depth : {1, 2, 3, 4}) {
    const int k = mp::choose_halo_depth(lat, mp::Config::kPcsiDiag,
                                        3600L * 2400, 16384, 10, max_depth);
    EXPECT_GE(k, 1);
    EXPECT_LE(k, max_depth);
  }
}

}  // namespace
