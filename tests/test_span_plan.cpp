// Land-span execution plans (DESIGN.md §14): structural properties of
// BlockSpans on adversarial randomized masks, and the bitwise-identity
// contract of the span kernels against their masked twins — scalar and
// B=4 batches, fp64 and fp32, halo depths 1 and 2, through the actual
// DistOperator / preconditioner / field-ops plumbing and through full
// solver runs (P-CSI, ChronGear, and the depth-2 comm-avoiding
// schedule) with span execution toggled on and off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/comm/serial_comm.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/solver/chron_gear.hpp"
#include "src/solver/field_ops.hpp"
#include "src/solver/kernels.hpp"
#include "src/solver/lanczos.hpp"
#include "src/solver/pcsi.hpp"
#include "src/solver/preconditioner.hpp"
#include "src/solver/span_plan.hpp"
#include "src/util/rng.hpp"

namespace mc = minipop::comm;
namespace mg = minipop::grid;
namespace ms = minipop::solver;
namespace mu = minipop::util;

namespace {

// -------------------------------------------------------------------
// Adversarial mask generator: random ocean/land plus every feature the
// run-length encoder has to survive — an all-land row crossing active
// blocks, a full-ocean row, isolated 1-cell spans, and (via the odd
// grid/block sizes the tests pick) narrow ragged edge blocks.
// -------------------------------------------------------------------

mu::MaskArray feature_mask(int nx, int ny, std::uint64_t seed,
                           double p_ocean) {
  mu::Xoshiro256 rng(seed);
  mu::MaskArray m(nx, ny, 0);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      m(i, j) = rng.uniform() < p_ocean ? 1 : 0;
  // Full-ocean row, and an all-land row crossing every active block of
  // its block row.
  for (int i = 0; i < nx; ++i) {
    m(i, ny / 2) = 1;
    if (ny > 4) m(i, ny / 3) = 0;
  }
  // Isolated 1-cell spans: ocean cells with land on both x-neighbors.
  if (ny > 2) {
    for (int i = 0; i < nx; ++i) m(i, 1) = 0;
    for (int i = 1; i + 1 < nx; i += 4) m(i, 1) = 1;
  }
  // Keep at least one ocean cell so the decomposition has active blocks.
  m(nx / 2, ny / 2) = 1;
  return m;
}

long count_mask(const mu::MaskArray& m) {
  long n = 0;
  for (unsigned char v : m) n += v;
  return n;
}

// A full problem (grid/stencil/decomposition) whose ocean geometry IS a
// feature mask: depth is positive exactly on the mask's ocean cells.
struct Problem {
  std::unique_ptr<mg::CurvilinearGrid> grid;
  mu::Field depth;
  std::unique_ptr<mg::NinePointStencil> stencil;
  std::unique_ptr<mg::Decomposition> decomp;
  mu::Field b_global;
};

Problem make_problem(int nx, int ny, int block, int nranks,
                     std::uint64_t seed) {
  Problem p;
  mg::GridSpec spec;
  spec.kind = mg::GridKind::kUniform;
  spec.nx = nx;
  spec.ny = ny;
  spec.periodic_x = false;
  spec.dx = 1.0e4;
  spec.dy = 1.2e4;
  p.grid = std::make_unique<mg::CurvilinearGrid>(spec);
  const mu::MaskArray m = feature_mask(nx, ny, seed, 0.6);
  p.depth = mu::Field(nx, ny, 0.0);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      if (m(i, j)) p.depth(i, j) = 3000.0 + 100.0 * ((i + j) % 7);
  p.stencil = std::make_unique<mg::NinePointStencil>(
      *p.grid, p.depth, mg::barotropic_phi(600.0));
  p.decomp = std::make_unique<mg::Decomposition>(
      nx, ny, false, p.stencil->mask(), block, block, nranks);
  mu::Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ULL);
  p.b_global = mu::Field(nx, ny, 0.0);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      if (p.stencil->mask()(i, j)) p.b_global(i, j) = rng.uniform(-1, 1);
  return p;
}

ms::EigenBounds lanczos_bounds_serial(const Problem& p) {
  mg::Decomposition d1(p.stencil->nx(), p.stencil->ny(),
                       p.stencil->periodic_x(), p.stencil->mask(),
                       p.stencil->nx(), p.stencil->ny(), 1);
  mc::SerialComm comm;
  mc::HaloExchanger halo(d1);
  ms::DistOperator a(*p.stencil, d1, 0);
  ms::DiagonalPreconditioner m(a);
  ms::LanczosOptions lopt;
  lopt.rel_tolerance = 0.02;
  return ms::estimate_eigenvalue_bounds(comm, halo, a, m, lopt).bounds;
}

}  // namespace

// -------------------------------------------------------------------
// Structure: the run-length encoding reconstructs the mask exactly,
// validate() accepts it, and clipped() equals a from-scratch build of
// the window.
// -------------------------------------------------------------------

TEST(SpanPlan, StructureReconstructsRandomFeatureMasks) {
  const std::pair<int, int> shapes[] = {{19, 13}, {1, 7}, {8, 1}, {23, 17}};
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (auto [nx, ny] : shapes) {
      const double p = 0.15 * static_cast<double>(seed);
      const mu::MaskArray m = feature_mask(nx, ny, seed, p);
      ms::BlockSpans bs(m.data(), m.nx(), nx, ny);
      bs.validate(m.data(), m.nx());
      EXPECT_EQ(bs.active_points(), count_mask(m));
      EXPECT_EQ(bs.full(), count_mask(m) == static_cast<long>(nx) * ny);
      // Reconstruct the mask from the spans.
      mu::MaskArray rec(nx, ny, 0);
      const int* ro = bs.row_offset();
      for (int j = 0; j < ny; ++j)
        for (int s = ro[j]; s < ro[j + 1]; ++s)
          for (int i = 0; i < bs.spans()[s].len; ++i)
            rec(bs.spans()[s].i0 + i, j) = 1;
      for (int j = 0; j < ny; ++j)
        for (int i = 0; i < nx; ++i)
          ASSERT_EQ(rec(i, j), m(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

TEST(SpanPlan, ClippedMatchesDirectWindowBuild) {
  const int nx = 21, ny = 15;
  for (std::uint64_t seed = 7; seed <= 9; ++seed) {
    const mu::MaskArray m = feature_mask(nx, ny, seed, 0.5);
    ms::BlockSpans full(m.data(), m.nx(), nx, ny);
    mu::Xoshiro256 rng(seed);
    for (int trial = 0; trial < 12; ++trial) {
      const int i0 = static_cast<int>(rng.below(nx));
      const int j0 = static_cast<int>(rng.below(ny));
      const int ni = 1 + static_cast<int>(rng.below(nx - i0));
      const int nj = 1 + static_cast<int>(rng.below(ny - j0));
      const ms::BlockSpans clip = full.clipped(i0, j0, ni, nj);
      // Window-origin pointer into the parent mask: the clipped plan
      // must validate against it and equal a from-scratch build.
      const unsigned char* w = m.data() + j0 * m.nx() + i0;
      clip.validate(w, m.nx());
      ms::BlockSpans direct(w, m.nx(), ni, nj);
      ASSERT_EQ(clip.num_spans(), direct.num_spans());
      EXPECT_EQ(clip.active_points(), direct.active_points());
      for (int j = 0; j <= nj; ++j)
        ASSERT_EQ(clip.row_offset()[j], direct.row_offset()[j]);
      for (int s = 0; s < clip.num_spans(); ++s) {
        EXPECT_EQ(clip.spans()[s].i0, direct.spans()[s].i0);
        EXPECT_EQ(clip.spans()[s].len, direct.spans()[s].len);
      }
    }
  }
}

// -------------------------------------------------------------------
// Kernel-level bitwise identity on raw planes: span kernels vs their
// masked twins, fp64/fp32 x scalar/B=4, on the adversarial masks.
// Reductions and gap-zero kernels must agree everywhere; pure-skip
// updates must agree at ocean cells and leave land untouched.
// -------------------------------------------------------------------

namespace {

template <typename T>
void kernel_identity_case(std::uint64_t seed, double p_ocean) {
  const int nx = 19, ny = 11, nb = 4;
  const mu::MaskArray m = feature_mask(nx, ny, seed, p_ocean);
  const ms::BlockSpans bs(m.data(), m.nx(), nx, ny);
  const int* ro = bs.row_offset();
  const ms::kernels::Span* sp = bs.spans();

  mu::Xoshiro256 rng(seed * 31 + 7);
  const std::ptrdiff_t st = nx * nb;  // batched plane stride
  auto rand_plane = [&](bool land_zero) {
    std::vector<T> v(static_cast<std::size_t>(nx) * ny * nb);
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i)
        for (int mm = 0; mm < nb; ++mm)
          v[j * st + i * nb + mm] =
              (land_zero && !m(i, j)) ? T(0)
                                      : static_cast<T>(rng.uniform(-1, 1));
    return v;
  };

  // --- reductions: dot, sum, dot_shared, dot3 -----------------------
  const std::vector<T> a = rand_plane(false), b = rand_plane(false),
                       z = rand_plane(false);
  std::vector<double> cshared(static_cast<std::size_t>(nx) * ny);
  for (double& v : cshared) v = rng.uniform(-1, 1);

  {  // scalar forms on densely packed member-0 planes
    std::vector<T> a1(static_cast<std::size_t>(nx) * ny), b1(a1.size()),
        z1(a1.size());
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        a1[j * nx + i] = a[j * st + i * nb];
        b1[j * nx + i] = b[j * st + i * nb];
        z1[j * nx + i] = z[j * st + i * nb];
      }
    const double seed_sum = 0.3125;  // exercise sum0 continuation
    EXPECT_EQ(ms::kernels::masked_dot(m.data(), m.nx(), nx, ny, a1.data(),
                                      nx, b1.data(), nx, seed_sum),
              ms::kernels::dot_span(ro, sp, ny, a1.data(), nx, b1.data(),
                                    nx, seed_sum));
    EXPECT_EQ(ms::kernels::masked_sum(m.data(), m.nx(), nx, ny, a1.data(),
                                      nx, seed_sum),
              ms::kernels::sum_span(ro, sp, ny, a1.data(), nx, seed_sum));
    EXPECT_EQ(
        ms::kernels::dot_shared(m.data(), m.nx(), nx, ny, cshared.data(),
                                nx, a1.data(), nx, seed_sum),
        ms::kernels::dot_shared_span(ro, sp, ny, cshared.data(), nx,
                                     a1.data(), nx, seed_sum));
    double ref3[3] = {0.5, -0.25, 0.125}, got3[3] = {0.5, -0.25, 0.125};
    ms::kernels::masked_dot3(m.data(), m.nx(), nx, ny, a1.data(), nx,
                             b1.data(), nx, z1.data(), nx, true, ref3);
    ms::kernels::dot3_span(ro, sp, ny, a1.data(), nx, b1.data(), nx,
                           z1.data(), nx, true, got3);
    for (int k = 0; k < 3; ++k) EXPECT_EQ(ref3[k], got3[k]);
  }
  {  // batched reductions
    std::vector<double> ref(nb, 0.75), got(nb, 0.75);
    ms::kernels::dot_batch(m.data(), m.nx(), nb, nx, ny, a.data(), st,
                           b.data(), st, ref.data());
    ms::kernels::dot_span_batch(ro, sp, nb, ny, a.data(), st, b.data(), st,
                                got.data());
    for (int mm = 0; mm < nb; ++mm) EXPECT_EQ(ref[mm], got[mm]);
    std::vector<double> ref3(3 * nb, 0.5), got3(3 * nb, 0.5);
    ms::kernels::dot3_batch(m.data(), m.nx(), nb, nx, ny, a.data(), st,
                            b.data(), st, z.data(), st, true, ref3.data());
    ms::kernels::dot3_span_batch(ro, sp, nb, ny, a.data(), st, b.data(),
                                 st, z.data(), st, true, got3.data());
    for (int k = 0; k < 3 * nb; ++k) EXPECT_EQ(ref3[k], got3[k]);
    std::vector<double> refs(nb, -0.5), gots(nb, -0.5);
    ms::kernels::masked_sum_batch(m.data(), m.nx(), nb, nx, ny, a.data(),
                                  st, refs.data());
    ms::kernels::sum_span_batch(ro, sp, nb, ny, a.data(), st, gots.data());
    for (int mm = 0; mm < nb; ++mm) EXPECT_EQ(refs[mm], gots[mm]);
  }

  // --- gap-zero kernels: identical planes everywhere ----------------
  {
    std::vector<T> inv(static_cast<std::size_t>(nx) * ny, T(0));
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i)
        if (m(i, j)) inv[j * nx + i] = static_cast<T>(rng.uniform(1, 2));
    const std::vector<T> in = rand_plane(false);
    std::vector<T> ref(in.size(), T(7)), got(in.size(), T(7));
    ms::kernels::diag_apply_batch(inv.data(), nx, nb, nx, ny, in.data(),
                                  st, ref.data(), st);
    ms::kernels::diag_apply_span_batch(inv.data(), nx, ro, sp, nb, nx, ny,
                                       in.data(), st, got.data(), st);
    EXPECT_EQ(ref, got);

    std::fill(ref.begin(), ref.end(), T(7));
    std::fill(got.begin(), got.end(), T(7));
    ms::kernels::masked_copy_batch(m.data(), m.nx(), nb, nx, ny, in.data(),
                                   st, ref.data(), st);
    ms::kernels::masked_copy_span_batch(ro, sp, nb, nx, ny, in.data(), st,
                                        got.data(), st);
    EXPECT_EQ(ref, got);

    std::vector<T> x_ref = rand_plane(false);
    std::vector<T> x_got = x_ref;
    ms::kernels::mask_zero_batch(m.data(), m.nx(), nb, nx, ny,
                                 x_ref.data(), st);
    ms::kernels::mask_zero_span_batch(ro, sp, nb, nx, ny, x_got.data(), st);
    EXPECT_EQ(x_ref, x_got);
  }

  // --- pure-skip updates: ocean cells bit-equal, land untouched -----
  {
    const std::vector<unsigned char> active(nb, 1);
    std::vector<T> ca(nb), cb(nb), cc(nb);
    for (int mm = 0; mm < nb; ++mm) {
      ca[mm] = static_cast<T>(rng.uniform(-2, 2));
      cb[mm] = static_cast<T>(rng.uniform(-2, 2));
      cc[mm] = static_cast<T>(rng.uniform(-2, 2));
    }
    const std::vector<T> x = rand_plane(false);
    std::vector<T> y_ref = rand_plane(false);
    std::vector<T> y_got = y_ref, z_ref = rand_plane(false);
    std::vector<T> z_got = z_ref;
    const std::vector<T> y0 = y_ref, z0 = z_ref;
    ms::kernels::lincomb_axpy_batch(nb, nx, ny, ca.data(), x.data(), st,
                                    cb.data(), y_ref.data(), st, cc.data(),
                                    z_ref.data(), st, active.data());
    ms::kernels::lincomb_axpy_span_batch(ro, sp, nb, ny, ca.data(),
                                         x.data(), st, cb.data(),
                                         y_got.data(), st, cc.data(),
                                         z_got.data(), st, active.data());
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i)
        for (int mm = 0; mm < nb; ++mm) {
          const std::size_t k = j * st + i * nb + mm;
          if (m(i, j)) {
            ASSERT_EQ(y_ref[k], y_got[k]);
            ASSERT_EQ(z_ref[k], z_got[k]);
          } else {  // span path must not have touched land
            ASSERT_EQ(y_got[k], y0[k]);
            ASSERT_EQ(z_got[k], z0[k]);
          }
        }
  }
}

}  // namespace

TEST(SpanPlan, KernelsBitwiseIdenticalFp64) {
  for (std::uint64_t seed = 11; seed <= 13; ++seed)
    kernel_identity_case<double>(seed,
                                 0.2 * static_cast<double>(seed - 10));
}

TEST(SpanPlan, KernelsBitwiseIdenticalFp32) {
  for (std::uint64_t seed = 21; seed <= 23; ++seed)
    kernel_identity_case<float>(seed,
                                0.25 * static_cast<double>(seed - 20));
}

// -------------------------------------------------------------------
// Operator-level identity: the same sweeps with span execution on vs
// off, fp64 and fp32, scalar and B=4 batches, field halos 1 and 2.
// Pure-skip outputs compare bitwise at ocean cells; gap-zero outputs
// and reduced scalars compare bitwise outright.
// -------------------------------------------------------------------

namespace {

template <typename FieldT>
void expect_ocean_bitwise(const mu::MaskArray& m, const FieldT& a,
                          const FieldT& b) {
  for (int lb = 0; lb < a.num_local_blocks(); ++lb) {
    const auto& info = a.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        if (m(info.i0 + i, info.j0 + j)) {
          ASSERT_EQ(a.at(lb, i, j), b.at(lb, i, j))
              << "block " << lb << " (" << i << "," << j << ")";
        }
  }
}

template <typename FieldT>
void expect_full_bitwise(const FieldT& a, const FieldT& b) {
  for (int lb = 0; lb < a.num_local_blocks(); ++lb) {
    const auto& info = a.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        ASSERT_EQ(a.at(lb, i, j), b.at(lb, i, j))
            << "block " << lb << " (" << i << "," << j << ")";
  }
}

template <typename T>
void operator_identity_case(int halo_width, std::uint64_t seed) {
  const int nx = 26, ny = 18;
  Problem p = make_problem(nx, ny, 7, 1, seed);
  const mu::MaskArray& m = p.stencil->mask();
  mc::SerialComm comm;
  mc::HaloExchanger halo(*p.decomp);
  ms::DistOperator op_span(*p.stencil, *p.decomp, 0);
  ms::DistOperator op_mask(*p.stencil, *p.decomp, 0);
  op_span.set_use_spans(true);
  op_mask.set_use_spans(false);
  ASSERT_NE(op_span.span_plan(), nullptr);
  ASSERT_EQ(op_mask.span_plan(), nullptr);

  using Field = mc::DistFieldT<T>;
  Field x(*p.decomp, 0, halo_width), b(*p.decomp, 0, halo_width);
  mu::Field xg(nx, ny, 0.0);
  mu::Xoshiro256 rng(seed + 99);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      if (m(i, j)) xg(i, j) = rng.uniform(-1, 1);
  x.load_global(xg);
  b.load_global(p.b_global);

  // apply (pure skip: ocean cells bit-equal)
  Field y_s(*p.decomp, 0, halo_width), y_m(*p.decomp, 0, halo_width);
  Field xs_copy = x, xm_copy = x;
  op_span.apply(comm, halo, xs_copy, y_s);
  op_mask.apply(comm, halo, xm_copy, y_m);
  expect_ocean_bitwise(m, y_s, y_m);

  // fused residual + norm² — residual leaves land at +0.0 on both
  // paths (land r = 0 - (+0.0) masked, untouched zero span), so the
  // planes compare bitwise at EVERY cell, and the reduced norm too.
  Field r_s(*p.decomp, 0, halo_width), r_m(*p.decomp, 0, halo_width);
  xs_copy = x;
  xm_copy = x;
  const double n_s =
      op_span.residual_local_norm2(comm, halo, b, xs_copy, r_s);
  const double n_m =
      op_mask.residual_local_norm2(comm, halo, b, xm_copy, r_m);
  EXPECT_EQ(n_s, n_m);
  expect_full_bitwise(r_s, r_m);

  // reductions
  EXPECT_EQ(op_span.local_dot(comm, r_s, y_s),
            op_mask.local_dot(comm, r_m, y_m));
  double d3_s[3], d3_m[3];
  op_span.local_dot3(comm, r_s, y_s, b, true, d3_s);
  op_mask.local_dot3(comm, r_m, y_m, b, true, d3_m);
  for (int k = 0; k < 3; ++k) EXPECT_EQ(d3_s[k], d3_m[k]);

  // preconditioners (gap-zero: full bitwise equality at every cell)
  ms::DiagonalPreconditioner md_s(op_span), md_m(op_mask);
  ms::IdentityPreconditioner mi_s(op_span), mi_m(op_mask);
  Field z_s(*p.decomp, 0, halo_width), z_m(*p.decomp, 0, halo_width);
  md_s.apply(comm, r_s, z_s);
  md_m.apply(comm, r_m, z_m);
  expect_full_bitwise(z_s, z_m);
  mi_s.apply(comm, r_s, z_s);
  mi_m.apply(comm, r_m, z_m);
  expect_full_bitwise(z_s, z_m);

  // field ops with and without the plan
  Field u_s = r_s, u_m = r_m;
  ms::lincomb(comm, 1.25, y_s, -0.5, u_s, op_span.span_plan());
  ms::lincomb(comm, 1.25, y_m, -0.5, u_m, op_mask.span_plan());
  expect_ocean_bitwise(m, u_s, u_m);
  ms::axpy(comm, -0.75, y_s, u_s, op_span.span_plan());
  ms::axpy(comm, -0.75, y_m, u_m, op_mask.span_plan());
  expect_ocean_bitwise(m, u_s, u_m);
  ms::lincomb_axpy(comm, 0.5, y_s, 1.5, u_s, 2.0, z_s,
                   op_span.span_plan());
  ms::lincomb_axpy(comm, 0.5, y_m, 1.5, u_m, 2.0, z_m,
                   op_mask.span_plan());
  expect_ocean_bitwise(m, u_s, u_m);
  expect_ocean_bitwise(m, z_s, z_m);
  ms::scale(comm, -1.125, u_s, op_span.span_plan());
  ms::scale(comm, -1.125, u_m, op_mask.span_plan());
  expect_ocean_bitwise(m, u_s, u_m);

  // mask_interior re-establishes the land-zero invariant on both
  // paths, after which the planes must agree everywhere.
  op_span.mask_interior(u_s);
  op_mask.mask_interior(u_m);
  expect_full_bitwise(u_s, u_m);

  // --- B = 4 batch sweeps -------------------------------------------
  const int nb = 4;
  using Batch = mc::DistFieldBatchT<T>;
  Batch xb(*p.decomp, 0, nb, halo_width), bb(*p.decomp, 0, nb, halo_width);
  for (int mm = 0; mm < nb; ++mm) {
    mu::Field gx(nx, ny, 0.0), gb(nx, ny, 0.0);
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i)
        if (m(i, j)) {
          gx(i, j) = rng.uniform(-1, 1);
          gb(i, j) = rng.uniform(-1, 1);
        }
    Field tmp(*p.decomp, 0, halo_width);
    tmp.load_global(gx);
    xb.load_member(mm, tmp);
    tmp.load_global(gb);
    bb.load_member(mm, tmp);
  }
  Batch yb_s(*p.decomp, 0, nb, halo_width),
      yb_m(*p.decomp, 0, nb, halo_width);
  Batch xb_s = xb, xb_m = xb;
  op_span.apply_batch(comm, halo, xb_s, yb_s);
  op_mask.apply_batch(comm, halo, xb_m, yb_m);
  for (int lb = 0; lb < yb_s.num_local_blocks(); ++lb) {
    const auto& info = yb_s.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        if (m(info.i0 + i, info.j0 + j)) {
          for (int mm = 0; mm < nb; ++mm)
            ASSERT_EQ(yb_s.at(lb, i, j, mm), yb_m.at(lb, i, j, mm));
        }
  }
  Batch rb_s(*p.decomp, 0, nb, halo_width),
      rb_m(*p.decomp, 0, nb, halo_width);
  std::vector<double> sums_s(nb), sums_m(nb);
  xb_s = xb;
  xb_m = xb;
  op_span.residual_local_norm2_batch(comm, halo, bb, xb_s, rb_s,
                                     sums_s.data());
  op_mask.residual_local_norm2_batch(comm, halo, bb, xb_m, rb_m,
                                     sums_m.data());
  for (int mm = 0; mm < nb; ++mm) EXPECT_EQ(sums_s[mm], sums_m[mm]);
  op_span.local_dot_batch(comm, rb_s, yb_s, sums_s.data());
  op_mask.local_dot_batch(comm, rb_m, yb_m, sums_m.data());
  for (int mm = 0; mm < nb; ++mm) EXPECT_EQ(sums_s[mm], sums_m[mm]);
  std::vector<double> d3b_s(3 * nb), d3b_m(3 * nb);
  op_span.local_dot3_batch(comm, rb_s, yb_s, bb, true, d3b_s.data());
  op_mask.local_dot3_batch(comm, rb_m, yb_m, bb, true, d3b_m.data());
  for (int k = 0; k < 3 * nb; ++k) EXPECT_EQ(d3b_s[k], d3b_m[k]);
}

}  // namespace

TEST(SpanPlan, OperatorBitwiseIdenticalFp64Halo1) {
  operator_identity_case<double>(1, 41);
}
TEST(SpanPlan, OperatorBitwiseIdenticalFp64Halo2) {
  operator_identity_case<double>(2, 42);
}
TEST(SpanPlan, OperatorBitwiseIdenticalFp32Halo1) {
  operator_identity_case<float>(1, 43);
}
TEST(SpanPlan, OperatorBitwiseIdenticalFp32Halo2) {
  operator_identity_case<float>(2, 44);
}

// -------------------------------------------------------------------
// Solver-level identity: full P-CSI / ChronGear solves (including the
// depth-2 comm-avoiding schedule, whose extension sweeps run their own
// per-depth span plans) with span execution on vs off are bitwise
// identical in iterates, residuals, and iteration counts — serial and
// on 4 virtual ranks.
// -------------------------------------------------------------------

namespace {

struct SolveOut {
  mu::Field x;
  ms::SolveStats stats;
};

SolveOut run_once(const Problem& p, int nranks, bool use_spans,
                  const std::string& kind, int halo_depth,
                  ms::EigenBounds bounds) {
  SolveOut out;
  out.x = mu::Field(p.decomp->nx_global(), p.decomp->ny_global(), 0.0);
  std::vector<ms::SolveStats> stats(nranks);
  mc::HaloExchanger halo(*p.decomp);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.max_iterations = 2000;
  opt.record_residuals = true;
  opt.halo_depth = halo_depth;

  auto body = [&](mc::Communicator& comm) {
    ms::DistOperator a(*p.stencil, *p.decomp, comm.rank());
    a.set_use_spans(use_spans);
    ms::DiagonalPreconditioner m(a);
    std::unique_ptr<ms::IterativeSolver> s;
    if (kind == "pcsi")
      s = std::make_unique<ms::PcsiSolver>(bounds, opt);
    else
      s = std::make_unique<ms::ChronGearSolver>(opt);
    mc::DistField b(*p.decomp, comm.rank()), x(*p.decomp, comm.rank());
    b.load_global(p.b_global);
    stats[comm.rank()] = s->solve(comm, halo, a, m, b, x);
    x.store_global(out.x);  // disjoint interiors; no race
  };
  if (nranks == 1) {
    mc::SerialComm comm;
    body(comm);
  } else {
    mc::ThreadTeam team(nranks);
    team.run(body);
  }
  out.stats = stats[0];
  return out;
}

void solver_identity_case(int nranks, const std::string& kind,
                          int halo_depth) {
  Problem p = make_problem(30, 22, 6, nranks, 77);
  const ms::EigenBounds bounds = lanczos_bounds_serial(p);
  const SolveOut s = run_once(p, nranks, true, kind, halo_depth, bounds);
  const SolveOut d = run_once(p, nranks, false, kind, halo_depth, bounds);
  EXPECT_TRUE(s.stats.converged);
  EXPECT_EQ(s.stats.iterations, d.stats.iterations);
  EXPECT_EQ(s.stats.converged, d.stats.converged);
  EXPECT_EQ(s.stats.relative_residual, d.stats.relative_residual);
  ASSERT_EQ(s.stats.residual_history.size(),
            d.stats.residual_history.size());
  for (std::size_t k = 0; k < s.stats.residual_history.size(); ++k) {
    EXPECT_EQ(s.stats.residual_history[k].first,
              d.stats.residual_history[k].first);
    EXPECT_EQ(s.stats.residual_history[k].second,
              d.stats.residual_history[k].second);
  }
  for (int j = 0; j < p.decomp->ny_global(); ++j)
    for (int i = 0; i < p.decomp->nx_global(); ++i)
      ASSERT_EQ(s.x(i, j), d.x(i, j)) << "(" << i << "," << j << ")";
}

}  // namespace

TEST(SpanPlan, PcsiSolveBitwiseSerial) { solver_identity_case(1, "pcsi", 1); }
TEST(SpanPlan, PcsiSolveBitwiseFourRanks) {
  solver_identity_case(4, "pcsi", 1);
}
TEST(SpanPlan, PcsiCommAvoidDepth2SolveBitwise) {
  solver_identity_case(1, "pcsi", 2);
}
TEST(SpanPlan, ChronGearSolveBitwiseSerial) {
  solver_identity_case(1, "cg", 1);
}
