// Resilience-layer tests: the ConvergenceGuard failure taxonomy, the
// solvers' typed failure returns (NaN, breakdown, zero RHS), the
// ResilientSolver recovery chain (restart → re-estimate bounds →
// fall back → give up), ThreadComm receive timeouts with the resync
// fence, and the deterministic fault injector. Full-solve fault
// campaigns (hooks live in the comm/solver layers) run only when the
// build compiles them in (-DMINIPOP_FAULTS=ON); the injector's own unit
// tests drive its methods directly and run in every build.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/comm/serial_comm.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/fault/fault_injector.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/solver/chron_gear.hpp"
#include "src/solver/lanczos.hpp"
#include "src/solver/pcg.hpp"
#include "src/solver/pcsi.hpp"
#include "src/solver/pipelined_cg.hpp"
#include "src/solver/resilient_solver.hpp"
#include "src/util/rng.hpp"

namespace mc = minipop::comm;
namespace mf = minipop::fault;
namespace mg = minipop::grid;
namespace ms = minipop::solver;
namespace mu = minipop::util;

namespace {

struct Problem {
  std::unique_ptr<mg::CurvilinearGrid> grid;
  mu::Field depth;
  std::unique_ptr<mg::NinePointStencil> stencil;
  std::unique_ptr<mg::Decomposition> decomp;
  mu::Field b_global;
};

Problem make_problem(int nx, int ny, int block, int nranks,
                     std::uint64_t seed = 11) {
  Problem p;
  mg::GridSpec spec;
  spec.kind = mg::GridKind::kUniform;
  spec.nx = nx;
  spec.ny = ny;
  spec.periodic_x = false;
  spec.dx = 1.0e4;
  spec.dy = 1.2e4;
  p.grid = std::make_unique<mg::CurvilinearGrid>(spec);
  p.depth = mg::bowl_bathymetry(*p.grid, 4000.0);
  const double phi = mg::barotropic_phi(600.0);
  p.stencil = std::make_unique<mg::NinePointStencil>(*p.grid, p.depth, phi);
  p.decomp = std::make_unique<mg::Decomposition>(
      nx, ny, /*periodic_x=*/false, p.stencil->mask(), block, block, nranks);
  mu::Xoshiro256 rng(seed);
  p.b_global = mu::Field(nx, ny, 0.0);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      if (p.stencil->mask()(i, j)) p.b_global(i, j) = rng.uniform(-1, 1);
  return p;
}

void expect_fields_bitwise(const mu::Field& a, const mu::Field& b) {
  ASSERT_EQ(a.nx(), b.nx());
  ASSERT_EQ(a.ny(), b.ny());
  for (int j = 0; j < a.ny(); ++j)
    for (int i = 0; i < a.nx(); ++i)
      ASSERT_EQ(a(i, j), b(i, j)) << "at (" << i << ", " << j << ")";
}

#if MINIPOP_FAULTS
void expect_fields_near(const mu::Field& a, const mu::Field& ref,
                        double rel) {
  ASSERT_EQ(a.nx(), ref.nx());
  ASSERT_EQ(a.ny(), ref.ny());
  double scale = 0.0;
  for (const double v : ref) scale = std::max(scale, std::abs(v));
  for (int j = 0; j < a.ny(); ++j)
    for (int i = 0; i < a.nx(); ++i)
      ASSERT_NEAR(a(i, j), ref(i, j), rel * scale)
          << "at (" << i << ", " << j << ")";
}
#endif  // MINIPOP_FAULTS

void expect_stats_bitwise(const ms::SolveStats& a, const ms::SolveStats& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.relative_residual, b.relative_residual);
  ASSERT_EQ(a.residual_history.size(), b.residual_history.size());
  for (std::size_t k = 0; k < a.residual_history.size(); ++k) {
    EXPECT_EQ(a.residual_history[k].first, b.residual_history[k].first);
    EXPECT_EQ(a.residual_history[k].second, b.residual_history[k].second);
  }
}

ms::EigenBounds lanczos_bounds_serial(const Problem& p) {
  mg::Decomposition d1(p.stencil->nx(), p.stencil->ny(),
                       p.stencil->periodic_x(), p.stencil->mask(),
                       p.stencil->nx(), p.stencil->ny(), 1);
  mc::SerialComm comm;
  mc::HaloExchanger halo(d1);
  ms::DistOperator a(*p.stencil, d1, 0);
  ms::DiagonalPreconditioner m(a);
  ms::LanczosOptions lopt;
  lopt.rel_tolerance = 0.02;
  return ms::estimate_eigenvalue_bounds(comm, halo, a, m, lopt).bounds;
}

using SolverFactory =
    std::function<std::unique_ptr<ms::IterativeSolver>(int rank)>;

/// One solve with a diagonal preconditioner over `nranks` virtual ranks
/// (1 = SerialComm). Returns the gathered solution, rank-0 stats, and —
/// when the factory produced a ResilientSolver — rank 0's recovery log.
struct SolveRun {
  mu::Field x;
  ms::SolveStats stats;
  std::vector<ms::RecoveryEvent> events;
};

SolveRun run_with(const Problem& p, int nranks, const SolverFactory& make,
             const mu::Field* b_override = nullptr,
             double recv_timeout_ms = 0.0) {
  SolveRun out;
  out.x = mu::Field(p.decomp->nx_global(), p.decomp->ny_global(), 0.0);
  std::vector<ms::SolveStats> stats(nranks);
  mc::HaloExchanger halo(*p.decomp);
  const mu::Field& bg = b_override ? *b_override : p.b_global;
  auto body = [&](mc::Communicator& comm) {
    ms::DistOperator a(*p.stencil, *p.decomp, comm.rank());
    ms::DiagonalPreconditioner m(a);
    std::unique_ptr<ms::IterativeSolver> s = make(comm.rank());
    mc::DistField b(*p.decomp, comm.rank()), x(*p.decomp, comm.rank());
    b.load_global(bg);
    stats[comm.rank()] = s->solve(comm, halo, a, m, b, x);
    x.store_global(out.x);  // disjoint interiors; no race
    if (comm.rank() == 0)
      if (auto* rs = dynamic_cast<ms::ResilientSolver*>(s.get()))
        out.events = rs->events();
  };
  if (nranks == 1) {
    mc::SerialComm comm;
    body(comm);
  } else {
    mc::ThreadTeam team(nranks);
    if (recv_timeout_ms > 0.0) team.set_recv_timeout(recv_timeout_ms);
    team.run(body);
  }
  out.stats = stats[0];
  return out;
}

SolverFactory make_kind(const std::string& kind, const ms::SolverOptions& opt,
                        ms::EigenBounds bounds = {1.0, 2.0}) {
  return [kind, opt, bounds](int) -> std::unique_ptr<ms::IterativeSolver> {
    if (kind == "cg") return std::make_unique<ms::ChronGearSolver>(opt);
    if (kind == "pcg") return std::make_unique<ms::PcgSolver>(opt);
    if (kind == "pipecg")
      return std::make_unique<ms::PipelinedCgSolver>(opt);
    return std::make_unique<ms::PcsiSolver>(bounds, opt);
  };
}

const std::vector<std::string> kAllKinds = {"cg", "pcg", "pcsi", "pipecg"};

}  // namespace

// ---------------------------------------------------------------------
// ConvergenceGuard + FailureKind taxonomy
// ---------------------------------------------------------------------

TEST(ConvergenceGuardTest, FlagsNan) {
  ms::SolverOptions opt;
  ms::ConvergenceGuard g(opt);
  EXPECT_EQ(g.check(0.5), ms::FailureKind::kNone);
  EXPECT_EQ(g.check(std::numeric_limits<double>::quiet_NaN()),
            ms::FailureKind::kNanDetected);
  EXPECT_EQ(g.check(std::numeric_limits<double>::infinity()),
            ms::FailureKind::kNanDetected);
}

TEST(ConvergenceGuardTest, FlagsDivergenceRelativeToFirstCheck) {
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-12;
  opt.divergence_factor = 10.0;
  ms::ConvergenceGuard g(opt);
  EXPECT_EQ(g.check(1.0), ms::FailureKind::kNone);  // first_ = 1
  EXPECT_EQ(g.check(9.0), ms::FailureKind::kNone);
  EXPECT_EQ(g.check(11.0), ms::FailureKind::kDiverged);
}

TEST(ConvergenceGuardTest, DivergenceNeverTripsBelowTolerance) {
  // A residual already at the target is never "divergence", no matter
  // how small the first checked value was.
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-2;
  opt.divergence_factor = 10.0;
  ms::ConvergenceGuard g(opt);
  EXPECT_EQ(g.check(1e-20), ms::FailureKind::kNone);
  EXPECT_EQ(g.check(1e-3), ms::FailureKind::kNone);
}

TEST(ConvergenceGuardTest, FlagsStagnationAfterWindow) {
  ms::SolverOptions opt;
  opt.stagnation_window = 3;
  opt.stagnation_decrease = 1e-3;
  ms::ConvergenceGuard g(opt);
  EXPECT_EQ(g.check(1.0), ms::FailureKind::kNone);     // best = 1
  EXPECT_EQ(g.check(1.0), ms::FailureKind::kNone);     // stalled 1
  EXPECT_EQ(g.check(0.9999), ms::FailureKind::kNone);  // stalled 2
  EXPECT_EQ(g.check(1.0), ms::FailureKind::kStagnated);
}

TEST(ConvergenceGuardTest, ProgressResetsStagnationWindow) {
  ms::SolverOptions opt;
  opt.stagnation_window = 2;
  ms::ConvergenceGuard g(opt);
  EXPECT_EQ(g.check(1.0), ms::FailureKind::kNone);
  EXPECT_EQ(g.check(1.0), ms::FailureKind::kNone);  // stalled 1
  EXPECT_EQ(g.check(0.5), ms::FailureKind::kNone);  // progress: reset
  EXPECT_EQ(g.check(0.5), ms::FailureKind::kNone);  // stalled 1 again
  EXPECT_EQ(g.check(0.5), ms::FailureKind::kStagnated);
}

TEST(ConvergenceGuardTest, DisabledStagnationNeverTrips) {
  ms::SolverOptions opt;  // stagnation_window = 0 (default): disabled
  ms::ConvergenceGuard g(opt);
  for (int k = 0; k < 100; ++k)
    EXPECT_EQ(g.check(1.0), ms::FailureKind::kNone);
}

TEST(FailureKinds, ToStringCoversEveryKind) {
  EXPECT_STREQ(ms::to_string(ms::FailureKind::kNone), "none");
  EXPECT_STREQ(ms::to_string(ms::FailureKind::kMaxIters), "max_iters");
  EXPECT_STREQ(ms::to_string(ms::FailureKind::kStagnated), "stagnated");
  EXPECT_STREQ(ms::to_string(ms::FailureKind::kDiverged), "diverged");
  EXPECT_STREQ(ms::to_string(ms::FailureKind::kBreakdown), "breakdown");
  EXPECT_STREQ(ms::to_string(ms::FailureKind::kNanDetected),
               "nan_detected");
  EXPECT_STREQ(ms::to_string(ms::FailureKind::kCommTimeout),
               "comm_timeout");
}

// ---------------------------------------------------------------------
// Typed failure returns from the solvers themselves
// ---------------------------------------------------------------------

TEST(Detection, ZeroRhsReturnsConvergedZeroForEverySolver) {
  Problem p = make_problem(24, 20, 8, 1);
  const mu::Field zero(24, 20, 0.0);
  ms::SolverOptions opt;
  for (const std::string& kind : kAllKinds) {
    for (const bool overlap : {false, true}) {
      SCOPED_TRACE(kind + (overlap ? "+overlap" : ""));
      ms::SolverOptions o = opt;
      o.overlap = overlap;
      SolveRun r = run_with(p, 1, make_kind(kind, o), &zero);
      EXPECT_TRUE(r.stats.converged);
      EXPECT_EQ(r.stats.iterations, 0);
      EXPECT_EQ(r.stats.failure, ms::FailureKind::kNone);
      for (const double v : r.x) EXPECT_EQ(v, 0.0);
    }
  }
}

TEST(Detection, NanRhsDetectedWithinOneCheckWindow) {
  Problem p = make_problem(24, 20, 8, 1);
  mu::Field bad = p.b_global;
  bool planted = false;
  for (int j = 0; j < bad.ny() && !planted; ++j)
    for (int i = 0; i < bad.nx() && !planted; ++i)
      if (p.stencil->mask()(i, j)) {
        bad(i, j) = std::numeric_limits<double>::quiet_NaN();
        planted = true;
      }
  ASSERT_TRUE(planted);
  ms::SolverOptions opt;
  for (const std::string& kind : kAllKinds) {
    for (const bool overlap : {false, true}) {
      SCOPED_TRACE(kind + (overlap ? "+overlap" : ""));
      ms::SolverOptions o = opt;
      o.overlap = overlap;
      SolveRun r = run_with(p, 1, make_kind(kind, o), &bad);
      EXPECT_FALSE(r.stats.converged);
      EXPECT_EQ(r.stats.failure, ms::FailureKind::kNanDetected);
      // Detected no later than the first check window — never a full
      // max_iterations run on poisoned data.
      EXPECT_LE(r.stats.iterations, o.check_frequency);
    }
  }
}

TEST(Detection, NanRhsDetectedOnEveryRankOfATeam) {
  Problem p = make_problem(32, 24, 8, 4);
  mu::Field bad = p.b_global;
  bool planted = false;
  // Plant the NaN in the LAST masked cell so a non-owning rank must
  // learn about it through the reduction, not from local data.
  for (int j = bad.ny() - 1; j >= 0 && !planted; --j)
    for (int i = bad.nx() - 1; i >= 0 && !planted; --i)
      if (p.stencil->mask()(i, j)) {
        bad(i, j) = std::numeric_limits<double>::quiet_NaN();
        planted = true;
      }
  ASSERT_TRUE(planted);
  ms::SolverOptions opt;
  for (const std::string& kind : {std::string("cg"), std::string("pcsi")}) {
    SCOPED_TRACE(kind);
    SolveRun r = run_with(p, 4, make_kind(kind, opt));
    (void)r;  // baseline sanity: the fault-free problem converges
    SolveRun f = run_with(p, 4, make_kind(kind, opt), &bad);
    EXPECT_FALSE(f.stats.converged);
    EXPECT_EQ(f.stats.failure, ms::FailureKind::kNanDetected);
    EXPECT_LE(f.stats.iterations, opt.check_frequency);
  }
}

// ---------------------------------------------------------------------
// ResilientSolver: decorator transparency + recovery chain
// ---------------------------------------------------------------------

TEST(Resilient, FaultFreeDecoratedSolveIsBitwiseIdentical) {
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.record_residuals = true;
  for (const std::string& kind : {std::string("cg"), std::string("pcsi")}) {
    for (const int nranks : {1, 4}) {
      SCOPED_TRACE(kind + " nranks=" + std::to_string(nranks));
      Problem p = make_problem(32, 24, 8, nranks);
      const ms::EigenBounds bounds = lanczos_bounds_serial(p);
      SolveRun raw = run_with(p, nranks, make_kind(kind, opt, bounds));
      SolveRun dec = run_with(
          p, nranks,
          [&](int) -> std::unique_ptr<ms::IterativeSolver> {
            return std::make_unique<ms::ResilientSolver>(
                make_kind(kind, opt, bounds)(0));
          });
      ASSERT_TRUE(raw.stats.converged);
      expect_stats_bitwise(dec.stats, raw.stats);
      expect_fields_bitwise(dec.x, raw.x);
      EXPECT_TRUE(dec.events.empty());
    }
  }
}

namespace {

/// Options under which P-CSI with a wildly wrong eigenvalue interval
/// diverges and is flagged quickly.
ms::SolverOptions fast_guard_options() {
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.check_frequency = 5;
  opt.divergence_factor = 1e4;
  return opt;
}

/// An interval far below the diagonally preconditioned spectrum: the
/// Chebyshev contraction turns into amplification and the residual
/// grows by orders of magnitude per iteration.
const ms::EigenBounds kBadBounds = {0.01, 0.02};

}  // namespace

TEST(Resilient, PcsiBadBoundsReestimatedViaLanczos) {
  Problem p = make_problem(32, 24, 8, 1);
  const ms::SolverOptions opt = fast_guard_options();
  SolveRun dec = run_with(p, 1, [&](int) -> std::unique_ptr<ms::IterativeSolver> {
    return std::make_unique<ms::ResilientSolver>(
        std::make_unique<ms::PcsiSolver>(kBadBounds, opt));
  });
  EXPECT_TRUE(dec.stats.converged);
  ASSERT_EQ(dec.events.size(), 1u);
  EXPECT_EQ(dec.events[0].action, "reestimate_bounds");
  EXPECT_EQ(dec.events[0].solver, "pcsi");
  EXPECT_EQ(dec.events[0].failure, ms::FailureKind::kDiverged);
  EXPECT_LE(dec.stats.relative_residual, opt.rel_tolerance);
}

TEST(Resilient, RestartThenFallbackWhenPrimaryKeepsFailing) {
  Problem p = make_problem(32, 24, 8, 1);
  const ms::SolverOptions opt = fast_guard_options();
  // Without re-estimation a deterministic solver fails identically on
  // restart, so the chain must walk: restart → fallback → ChronGear.
  ms::RecoveryPolicy pol;
  pol.max_restarts = 1;
  pol.reestimate_bounds = false;
  SolveRun dec = run_with(p, 1, [&](int) -> std::unique_ptr<ms::IterativeSolver> {
    auto rs = std::make_unique<ms::ResilientSolver>(
        std::make_unique<ms::PcsiSolver>(kBadBounds, opt), pol);
    rs->add_fallback(std::make_unique<ms::ChronGearSolver>(opt));
    return rs;
  });
  EXPECT_TRUE(dec.stats.converged);
  ASSERT_EQ(dec.events.size(), 2u);
  EXPECT_EQ(dec.events[0].action, "restart");
  EXPECT_EQ(dec.events[0].solver, "pcsi");
  EXPECT_EQ(dec.events[0].attempt, 0);
  EXPECT_EQ(dec.events[1].action, "fallback");
  EXPECT_EQ(dec.events[1].solver, "pcsi");
  EXPECT_EQ(dec.events[1].attempt, 1);
  // The fallback restarts from the sanitized entry checkpoint, so its
  // answer is bitwise the plain ChronGear answer from the same start.
  SolveRun raw = run_with(p, 1, make_kind("cg", opt));
  ASSERT_TRUE(raw.stats.converged);
  expect_fields_bitwise(dec.x, raw.x);
}

TEST(Resilient, GiveUpReturnsTypedFailure) {
  Problem p = make_problem(32, 24, 8, 1);
  const ms::SolverOptions opt = fast_guard_options();
  ms::RecoveryPolicy pol;
  pol.max_restarts = 0;
  pol.reestimate_bounds = false;
  SolveRun dec = run_with(p, 1, [&](int) -> std::unique_ptr<ms::IterativeSolver> {
    return std::make_unique<ms::ResilientSolver>(
        std::make_unique<ms::PcsiSolver>(kBadBounds, opt), pol);
  });
  EXPECT_FALSE(dec.stats.converged);
  EXPECT_EQ(dec.stats.failure, ms::FailureKind::kDiverged);
  ASSERT_EQ(dec.events.size(), 1u);
  EXPECT_EQ(dec.events[0].action, "give_up");
}

TEST(Resilient, NameWrapsPrimary) {
  ms::ResilientSolver rs(
      std::make_unique<ms::ChronGearSolver>(ms::SolverOptions{}));
  EXPECT_EQ(rs.name(), "resilient(chrongear)");
}

// ---------------------------------------------------------------------
// ThreadComm receive timeouts + the resync fence
// ---------------------------------------------------------------------

TEST(Timeouts, LateSendWithinTimeoutDelivers) {
  mc::ThreadTeam team(2);
  team.set_recv_timeout(4000.0, 4);
  std::vector<double> got(1, 0.0);
  team.run([&](mc::Communicator& comm) {
    if (comm.rank() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      double v = 42.5;
      comm.isend(0, 3, std::span<const double>(&v, 1)).wait();
    } else {
      double v = 0.0;
      comm.irecv(1, 3, std::span<double>(&v, 1)).wait();
      got[0] = v;
    }
  });
  EXPECT_EQ(got[0], 42.5);
}

TEST(Timeouts, MissingMessageThrowsAndResyncRestoresTeam) {
  mc::ThreadTeam team(2);
  team.set_recv_timeout(150.0, 3);
  std::vector<int> caught(2, 0);
  std::vector<double> sum(2, 0.0);
  team.run([&](mc::Communicator& comm) {
    if (comm.rank() == 0) {
      // Nobody ever sends on (src=1, tag=7): must throw, not hang.
      double v = 0.0;
      try {
        comm.irecv(1, 7, std::span<double>(&v, 1)).wait();
      } catch (const mc::CommTimeoutError&) {
        caught[0] = 1;
      }
    } else {
      // The other rank is pushed out of its blocking call by the
      // team-wide timeout flag instead of deadlocking in the barrier.
      try {
        comm.barrier();
      } catch (const mc::CommTimeoutError&) {
        caught[1] = 1;
      }
    }
    comm.resync();
    // After the fence the team is fully usable again.
    double s = comm.rank() + 1.0;
    comm.iallreduce(std::span<double>(&s, 1), mc::ReduceOp::kSum).wait();
    sum[comm.rank()] = s;
  });
  EXPECT_EQ(caught[0], 1);
  EXPECT_EQ(caught[1], 1);
  EXPECT_EQ(sum[0], 3.0);
  EXPECT_EQ(sum[1], 3.0);
}

TEST(Timeouts, ZeroTimeoutMeansInfiniteWait) {
  // total_ms <= 0 restores the default blocking wait; a prompt sender
  // must still be received normally.
  mc::ThreadTeam team(2);
  team.set_recv_timeout(150.0, 3);
  team.set_recv_timeout(0.0);
  std::vector<double> got(1, 0.0);
  team.run([&](mc::Communicator& comm) {
    if (comm.rank() == 1) {
      double v = -7.25;
      comm.isend(0, 9, std::span<const double>(&v, 1)).wait();
    } else {
      double v = 0.0;
      comm.irecv(1, 9, std::span<double>(&v, 1)).wait();
      got[0] = v;
    }
  });
  EXPECT_EQ(got[0], -7.25);
}

TEST(Timeouts, SerialResyncIsANoOp) {
  mc::SerialComm comm;
  comm.resync();  // must not throw
  double v = 4.0;
  comm.iallreduce(std::span<double>(&v, 1), mc::ReduceOp::kSum).wait();
  EXPECT_EQ(v, 4.0);
}

// ---------------------------------------------------------------------
// FaultInjector unit tests (direct-drive; run in every build)
// ---------------------------------------------------------------------

namespace {

/// A 4x4 all-wet tile for driving the solver-vector site directly.
struct Tile {
  std::vector<double> data = std::vector<double>(16, 1.0);
  std::vector<unsigned char> mask = std::vector<unsigned char>(16, 1);
};

void drive_solver_vector(mf::FaultInjector& inj, Tile& t, int rank = 0) {
  inj.solver_vector(rank, t.data.data(), 4, 4, 4, t.mask.data(), 4);
}

}  // namespace

TEST(FaultInjector, ScheduledRuleFiresAtExactEvent) {
  mf::FaultRule r;
  r.site = mf::FaultSite::kSolverVector;
  r.trigger_event = 2;
  r.make_nan = true;
  mf::FaultPlan plan;
  plan.add(r);
  mf::FaultInjector inj(plan);
  Tile t;
  drive_solver_vector(inj, t);  // event 0
  drive_solver_vector(inj, t);  // event 1
  EXPECT_EQ(inj.fire_count(), 0);
  for (const double v : t.data) EXPECT_EQ(v, 1.0);
  drive_solver_vector(inj, t);  // event 2: fires
  ASSERT_EQ(inj.fire_count(), 1);
  int nans = 0;
  for (const double v : t.data) nans += std::isnan(v) ? 1 : 0;
  EXPECT_EQ(nans, 1);
  const auto fired = inj.fired();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].site, mf::FaultSite::kSolverVector);
  EXPECT_EQ(fired[0].rank, 0);
  EXPECT_EQ(fired[0].event, 2);
  EXPECT_EQ(inj.events(mf::FaultSite::kSolverVector, 0), 3);
  // max_fires = 1 (default): the rule is spent.
  drive_solver_vector(inj, t);
  EXPECT_EQ(inj.fire_count(), 1);
}

TEST(FaultInjector, RankFilterKeepsOtherRanksClean) {
  mf::FaultRule r;
  r.site = mf::FaultSite::kSolverVector;
  r.rank = 1;
  r.trigger_event = 0;
  r.make_nan = true;
  mf::FaultPlan plan;
  plan.add(r);
  mf::FaultInjector inj(plan);
  Tile t0, t1;
  drive_solver_vector(inj, t0, /*rank=*/0);
  for (const double v : t0.data) EXPECT_EQ(v, 1.0);
  drive_solver_vector(inj, t1, /*rank=*/1);
  int nans = 0;
  for (const double v : t1.data) nans += std::isnan(v) ? 1 : 0;
  EXPECT_EQ(nans, 1);
}

TEST(FaultInjector, MaskRestrictsCorruptionToOceanCells) {
  mf::FaultRule r;
  r.site = mf::FaultSite::kSolverVector;
  r.trigger_event = 0;
  r.max_fires = 0;  // unlimited
  r.make_nan = true;
  r.entries = 4;
  mf::FaultPlan plan;
  plan.add(r);
  mf::FaultInjector inj(plan);
  Tile t;
  // Only cell (1, 2) is wet.
  std::fill(t.mask.begin(), t.mask.end(), 0);
  t.mask[2 * 4 + 1] = 1;
  drive_solver_vector(inj, t);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 4; ++i) {
      const double v = t.data[j * 4 + i];
      if (i == 1 && j == 2)
        EXPECT_TRUE(std::isnan(v));
      else
        EXPECT_EQ(v, 1.0) << "dry cell (" << i << ", " << j << ") touched";
    }
}

TEST(FaultInjector, BitFlipChangesExactlyOneHaloEntry) {
  mf::FaultRule r;
  r.site = mf::FaultSite::kHaloPayload;
  r.trigger_event = 0;
  r.bit = 51;
  mf::FaultPlan plan;
  plan.add(r);
  mf::FaultInjector inj(plan);
  std::vector<double> buf(12, 1.0);
  inj.halo_payload(0, buf.data(), buf.size());
  int changed = 0;
  for (const double v : buf)
    if (v != 1.0) ++changed;
  EXPECT_EQ(changed, 1);
  EXPECT_EQ(inj.fire_count(), 1);
}

TEST(FaultInjector, MailboxDecisionCarriesActionAndDelay) {
  mf::FaultRule r;
  r.site = mf::FaultSite::kMailbox;
  r.rank = 3;
  r.trigger_event = 1;
  r.mailbox = mf::MailboxAction::kDelay;
  r.delay_ms = 7.5;
  mf::FaultPlan plan;
  plan.add(r);
  mf::FaultInjector inj(plan);
  EXPECT_FALSE(inj.mailbox(3).fired);  // event 0
  const mf::MailboxDecision d = inj.mailbox(3);  // event 1: fires
  EXPECT_TRUE(d.fired);
  EXPECT_EQ(d.action, mf::MailboxAction::kDelay);
  EXPECT_EQ(d.delay_ms, 7.5);
  EXPECT_FALSE(inj.mailbox(3).fired);  // spent
}

TEST(FaultInjector, EigenBoundsScaledInPlace) {
  mf::FaultRule r;
  r.site = mf::FaultSite::kEigenBounds;
  r.trigger_event = 0;
  r.nu_scale = -1.0;
  r.mu_scale = 2.0;
  mf::FaultPlan plan;
  plan.add(r);
  mf::FaultInjector inj(plan);
  double nu = 1.0, mu = 2.0;
  inj.eigen_bounds(0, &nu, &mu);
  EXPECT_EQ(nu, -1.0);
  EXPECT_EQ(mu, 4.0);
  inj.eigen_bounds(0, &nu, &mu);  // spent: untouched
  EXPECT_EQ(nu, -1.0);
  EXPECT_EQ(mu, 4.0);
}

TEST(FaultInjector, RankStallSleepsForConfiguredTime) {
  mf::FaultRule r;
  r.site = mf::FaultSite::kRankStall;
  r.trigger_event = 0;
  r.delay_ms = 30.0;
  mf::FaultPlan plan;
  plan.add(r);
  mf::FaultInjector inj(plan);
  const auto t0 = std::chrono::steady_clock::now();
  inj.rank_stall(0);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed_ms, 25.0);
}

TEST(FaultInjector, ProbabilisticPlanReplaysIdentically) {
  mf::FaultRule r;
  r.site = mf::FaultSite::kSolverVector;
  r.probability = 0.3;
  r.max_fires = 0;  // unlimited
  r.bit = 12;
  mf::FaultPlan plan;
  plan.seed = 99;
  plan.add(r);

  auto campaign = [&plan]() {
    mf::FaultInjector inj(plan);
    Tile t;
    for (int e = 0; e < 100; ++e) drive_solver_vector(inj, t);
    return std::make_pair(inj.fired(), t.data);
  };
  const auto [fired_a, data_a] = campaign();
  const auto [fired_b, data_b] = campaign();
  EXPECT_GT(fired_a.size(), 0u);
  ASSERT_EQ(fired_a.size(), fired_b.size());
  for (std::size_t k = 0; k < fired_a.size(); ++k) {
    EXPECT_EQ(fired_a[k].site, fired_b[k].site);
    EXPECT_EQ(fired_a[k].rank, fired_b[k].rank);
    EXPECT_EQ(fired_a[k].event, fired_b[k].event);
  }
  // Same faults, same bits: the corrupted tiles are bitwise identical.
  for (std::size_t k = 0; k < data_a.size(); ++k)
    EXPECT_EQ(data_a[k], data_b[k]);
}

TEST(FaultInjector, InstallAndScopeLifetime) {
  EXPECT_EQ(mf::FaultInjector::active(), nullptr);
  {
    mf::FaultScope scope{mf::FaultPlan{}};
    EXPECT_EQ(mf::FaultInjector::active(), &scope.injector());
  }
  EXPECT_EQ(mf::FaultInjector::active(), nullptr);
}

// ---------------------------------------------------------------------
// Full-solve fault campaigns (need the hooks compiled in)
// ---------------------------------------------------------------------
#if MINIPOP_FAULTS

TEST(FaultCampaign, SolverVectorNanDetectedAndRecovered) {
  Problem p = make_problem(32, 24, 8, 1);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  mf::FaultRule r;
  r.site = mf::FaultSite::kSolverVector;
  r.make_nan = true;
  r.trigger_event = 6;
  mf::FaultPlan plan;
  plan.add(r);

  SolveRun clean = run_with(p, 1, make_kind("cg", opt));
  ASSERT_TRUE(clean.stats.converged);

  {
    // Raw solver: the NaN is detected the same iteration it lands (it
    // poisons the fused rho/sigma reduction), never silently returned.
    mf::FaultScope scope(plan);
    SolveRun raw = run_with(p, 1, make_kind("cg", opt));
    EXPECT_EQ(scope.injector().fire_count(), 1);
    EXPECT_FALSE(raw.stats.converged);
    EXPECT_EQ(raw.stats.failure, ms::FailureKind::kNanDetected);
    EXPECT_LT(raw.stats.iterations, clean.stats.iterations);
  }
  {
    // Decorated: one restart from the entry checkpoint replays the
    // fault-free solve exactly (the rule is spent after one fire).
    mf::FaultScope scope(plan);
    SolveRun dec = run_with(p, 1, [&](int) {
      return std::unique_ptr<ms::IterativeSolver>(
          std::make_unique<ms::ResilientSolver>(make_kind("cg", opt)(0)));
    });
    EXPECT_TRUE(dec.stats.converged);
    ASSERT_GE(dec.events.size(), 1u);
    EXPECT_EQ(dec.events[0].failure, ms::FailureKind::kNanDetected);
    EXPECT_EQ(dec.events[0].action, "restart");
    expect_fields_bitwise(dec.x, clean.x);
  }
}

TEST(FaultCampaign, HaloBitFlipRecoversToFaultFreeAnswer) {
  Problem p = make_problem(32, 24, 8, 4);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  const ms::EigenBounds bounds = lanczos_bounds_serial(p);
  SolveRun clean = run_with(p, 4, make_kind("pcsi", opt, bounds));
  ASSERT_TRUE(clean.stats.converged);

  // Flip the top exponent bit of one entry of a packed halo send: the
  // payload lands in a stencil sweep and either overflows to inf/NaN
  // (detected, restarted) or perturbs the iterate (P-CSI's true-residual
  // check forces extra iterations). Both paths must end at the
  // fault-free answer because convergence is judged on b - Ax itself.
  mf::FaultRule r;
  r.site = mf::FaultSite::kHaloPayload;
  r.rank = 1;
  r.trigger_event = 6;
  r.bit = 62;
  mf::FaultPlan plan;
  plan.add(r);
  mf::FaultScope scope(plan);
  SolveRun dec = run_with(p, 4, [&](int) {
    return std::unique_ptr<ms::IterativeSolver>(
        std::make_unique<ms::ResilientSolver>(
            make_kind("pcsi", opt, bounds)(0)));
  });
  EXPECT_EQ(scope.injector().fire_count(), 1);
  EXPECT_TRUE(dec.stats.converged);
  EXPECT_LE(dec.stats.relative_residual, opt.rel_tolerance);
  expect_fields_near(dec.x, clean.x, 1e-4);
}

TEST(FaultCampaign, DroppedMessageTimesOutThenRecovers) {
  Problem p = make_problem(32, 24, 8, 4);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  SolveRun clean = run_with(p, 4, make_kind("cg", opt));
  ASSERT_TRUE(clean.stats.converged);

  mf::FaultRule r;
  r.site = mf::FaultSite::kMailbox;
  r.rank = 1;
  r.trigger_event = 6;
  r.mailbox = mf::MailboxAction::kDrop;
  mf::FaultPlan plan;
  plan.add(r);
  mf::FaultScope scope(plan);
  SolveRun dec = run_with(
      p, 4,
      [&](int) {
        return std::unique_ptr<ms::IterativeSolver>(
            std::make_unique<ms::ResilientSolver>(make_kind("cg", opt)(0)));
      },
      nullptr, /*recv_timeout_ms=*/500.0);
  EXPECT_EQ(scope.injector().fire_count(), 1);
  EXPECT_TRUE(dec.stats.converged);
  ASSERT_GE(dec.events.size(), 1u);
  EXPECT_EQ(dec.events[0].failure, ms::FailureKind::kCommTimeout);
  // Post-resync restart from the entry checkpoint replays the fault-free
  // solve bit for bit.
  expect_fields_bitwise(dec.x, clean.x);
}

TEST(FaultCampaign, DelayedMessageUnderTimeoutIsHarmless) {
  Problem p = make_problem(32, 24, 8, 4);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.record_residuals = true;
  SolveRun clean = run_with(p, 4, make_kind("cg", opt));
  ASSERT_TRUE(clean.stats.converged);

  mf::FaultRule r;
  r.site = mf::FaultSite::kMailbox;
  r.rank = 2;
  r.trigger_event = 5;
  r.mailbox = mf::MailboxAction::kDelay;
  r.delay_ms = 25.0;
  mf::FaultPlan plan;
  plan.add(r);
  mf::FaultScope scope(plan);
  SolveRun late = run_with(p, 4, make_kind("cg", opt), nullptr,
                      /*recv_timeout_ms=*/5000.0);
  EXPECT_EQ(scope.injector().fire_count(), 1);
  // A late delivery changes only timing, never data or iteration counts.
  expect_stats_bitwise(late.stats, clean.stats);
  expect_fields_bitwise(late.x, clean.x);
}

TEST(FaultCampaign, DuplicatedMessageNeverHangsOrLiesAboutConvergence) {
  Problem p = make_problem(32, 24, 8, 4);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.max_iterations = 2000;
  mf::FaultRule r;
  r.site = mf::FaultSite::kMailbox;
  r.rank = 0;
  r.trigger_event = 5;
  r.mailbox = mf::MailboxAction::kDuplicate;
  mf::FaultPlan plan;
  plan.add(r);
  mf::FaultScope scope(plan);
  // The stale duplicate shifts a channel's queue by one message for the
  // rest of the run: the contract is "recover or return a typed
  // failure", and above all: terminate.
  SolveRun dec = run_with(
      p, 4,
      [&](int) {
        return std::unique_ptr<ms::IterativeSolver>(
            std::make_unique<ms::ResilientSolver>(make_kind("cg", opt)(0)));
      },
      nullptr, /*recv_timeout_ms=*/1000.0);
  EXPECT_EQ(scope.injector().fire_count(), 1);
  if (dec.stats.converged)
    EXPECT_LE(dec.stats.relative_residual, opt.rel_tolerance);
  else
    EXPECT_NE(dec.stats.failure, ms::FailureKind::kNone);
}

TEST(FaultCampaign, RankStallOnlyDelaysTheSolve) {
  Problem p = make_problem(32, 24, 8, 4);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.record_residuals = true;
  SolveRun clean = run_with(p, 4, make_kind("cg", opt));
  ASSERT_TRUE(clean.stats.converged);

  mf::FaultRule r;
  r.site = mf::FaultSite::kRankStall;
  r.rank = 2;
  r.trigger_event = 3;
  r.delay_ms = 40.0;
  mf::FaultPlan plan;
  plan.add(r);
  mf::FaultScope scope(plan);
  SolveRun stalled = run_with(p, 4, make_kind("cg", opt));
  EXPECT_EQ(scope.injector().fire_count(), 1);
  expect_stats_bitwise(stalled.stats, clean.stats);
  expect_fields_bitwise(stalled.x, clean.x);
}

TEST(FaultCampaign, CorruptedEigenBoundsReestimatedAndRecovered) {
  Problem p = make_problem(32, 24, 8, 1);
  const ms::SolverOptions opt = fast_guard_options();
  const ms::EigenBounds bounds = lanczos_bounds_serial(p);
  SolveRun clean = run_with(p, 1, make_kind("pcsi", opt, bounds));
  ASSERT_TRUE(clean.stats.converged);

  // Scale the interval three orders of magnitude below the spectrum at
  // the first solve entry — a stale/corrupted Lanczos estimate.
  mf::FaultRule r;
  r.site = mf::FaultSite::kEigenBounds;
  r.trigger_event = 0;
  r.nu_scale = 1e-3;
  r.mu_scale = 1e-3;
  mf::FaultPlan plan;
  plan.add(r);
  mf::FaultScope scope(plan);
  SolveRun dec = run_with(p, 1, [&](int) {
    return std::unique_ptr<ms::IterativeSolver>(
        std::make_unique<ms::ResilientSolver>(
            make_kind("pcsi", opt, bounds)(0)));
  });
  EXPECT_EQ(scope.injector().fire_count(), 1);
  EXPECT_TRUE(dec.stats.converged);
  ASSERT_GE(dec.events.size(), 1u);
  EXPECT_EQ(dec.events[0].action, "reestimate_bounds");
  expect_fields_near(dec.x, clean.x, 1e-4);
}

TEST(FaultCampaign, EmptyPlanInstalledIsBitwiseIdentical) {
  Problem p = make_problem(32, 24, 8, 4);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.record_residuals = true;
  SolveRun clean = run_with(p, 4, make_kind("cg", opt));
  mf::FaultScope scope{mf::FaultPlan{}};
  SolveRun scoped = run_with(p, 4, make_kind("cg", opt));
  EXPECT_EQ(scope.injector().fire_count(), 0);
  expect_stats_bitwise(scoped.stats, clean.stats);
  expect_fields_bitwise(scoped.x, clean.x);
}

#endif  // MINIPOP_FAULTS
