// Equivalence tests for the raw-pointer hot-path kernels
// (src/solver/kernels.*) against naive reference loops, plus the fused
// DistOperator/field_ops entry points built on them, plus a regression
// pinning the solver iteration counts and residuals on the seed problem.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/comm/serial_comm.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/solver/chron_gear.hpp"
#include "src/solver/dist_operator.hpp"
#include "src/solver/field_ops.hpp"
#include "src/solver/kernels.hpp"
#include "src/solver/lanczos.hpp"
#include "src/solver/pcsi.hpp"
#include "src/util/rng.hpp"

namespace mc = minipop::comm;
namespace mg = minipop::grid;
namespace ms = minipop::solver;
namespace mu = minipop::util;
namespace mk = minipop::solver::kernels;

namespace {

/// One interior nx*ny array with an h-wide halo ring, randomly filled
/// everywhere (halo included, so the stencil reads non-trivial values).
struct Padded {
  int nx = 0, ny = 0, h = 0;
  std::ptrdiff_t pitch = 0;
  std::vector<double> v;

  Padded(int nx_, int ny_, int h_, mu::Xoshiro256& rng)
      : nx(nx_), ny(ny_), h(h_), pitch(nx_ + 2 * h_) {
    v.resize(static_cast<std::size_t>(pitch) * (ny + 2 * h));
    for (auto& x : v) x = rng.uniform(-1, 1);
  }
  double* interior() { return v.data() + static_cast<std::ptrdiff_t>(h) * pitch + h; }
  const double* interior() const {
    return v.data() + static_cast<std::ptrdiff_t>(h) * pitch + h;
  }
};

struct Coeffs {
  int nx = 0, ny = 0;
  std::vector<double> c[9];

  Coeffs(int nx_, int ny_, mu::Xoshiro256& rng) : nx(nx_), ny(ny_) {
    for (auto& d : c) {
      d.resize(static_cast<std::size_t>(nx) * ny);
      for (auto& x : d) x = rng.uniform(-1, 1);
    }
  }
  mk::Stencil9 view() const {
    return mk::Stencil9{c[0].data(), c[1].data(), c[2].data(), c[3].data(),
                        c[4].data(), c[5].data(), c[6].data(), c[7].data(),
                        c[8].data(), nx};
  }
};

std::vector<unsigned char> random_mask(int nx, int ny, mu::Xoshiro256& rng) {
  std::vector<unsigned char> m(static_cast<std::size_t>(nx) * ny);
  for (auto& b : m) b = rng.uniform(0, 1) < 0.8 ? 1 : 0;
  return m;
}

// Naive seed-style loops the kernels must reproduce. Plain 2D index
// arithmetic, branchy masking, one running accumulator — exactly how the
// pre-kernel implementation was written.
namespace reference {

double point9(const Coeffs& c, const Padded& x, int i, int j) {
  const std::ptrdiff_t p = x.pitch;
  const double* xd = x.interior();
  const std::size_t k = static_cast<std::size_t>(j) * c.nx + i;
  return c.c[0][k] * xd[j * p + i] + c.c[1][k] * xd[j * p + i + 1] +
         c.c[2][k] * xd[j * p + i - 1] + c.c[3][k] * xd[(j + 1) * p + i] +
         c.c[4][k] * xd[(j - 1) * p + i] +
         c.c[5][k] * xd[(j + 1) * p + i + 1] +
         c.c[6][k] * xd[(j + 1) * p + i - 1] +
         c.c[7][k] * xd[(j - 1) * p + i + 1] +
         c.c[8][k] * xd[(j - 1) * p + i - 1];
}

void apply9(const Coeffs& c, const Padded& x, Padded& y) {
  for (int j = 0; j < c.ny; ++j)
    for (int i = 0; i < c.nx; ++i)
      y.interior()[j * y.pitch + i] = point9(c, x, i, j);
}

void residual9(const Coeffs& c, const Padded& b, const Padded& x,
               Padded& r) {
  for (int j = 0; j < c.ny; ++j)
    for (int i = 0; i < c.nx; ++i)
      r.interior()[j * r.pitch + i] =
          b.interior()[j * b.pitch + i] - point9(c, x, i, j);
}

double masked_dot(const std::vector<unsigned char>& m, int nx, int ny,
                  const Padded& a, const Padded& b, double sum = 0.0) {
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      if (m[static_cast<std::size_t>(j) * nx + i])
        sum += a.interior()[j * a.pitch + i] * b.interior()[j * b.pitch + i];
  return sum;
}

void lincomb(double a, const Padded& x, double b, Padded& y) {
  for (int j = 0; j < y.ny; ++j)
    for (int i = 0; i < y.nx; ++i) {
      double& yv = y.interior()[j * y.pitch + i];
      yv = a * x.interior()[j * x.pitch + i] + b * yv;
    }
}

void axpy(double a, const Padded& x, Padded& y) {
  for (int j = 0; j < y.ny; ++j)
    for (int i = 0; i < y.nx; ++i)
      y.interior()[j * y.pitch + i] += a * x.interior()[j * x.pitch + i];
}

}  // namespace reference

bool same_interior(const Padded& a, const Padded& b) {
  for (int j = 0; j < a.ny; ++j)
    for (int i = 0; i < a.nx; ++i)
      if (std::memcmp(&a.interior()[j * a.pitch + i],
                      &b.interior()[j * b.pitch + i], sizeof(double)) != 0)
        return false;
  return true;
}

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

struct Case {
  int nx, ny, h;
};

// Odd and even interior shapes (including vector-width non-multiples and
// a single-digit nx that defeats any vector body) at both halo widths.
const Case kCases[] = {{7, 5, 1},  {7, 5, 2},   {16, 16, 1}, {33, 17, 2},
                       {64, 48, 1}, {5, 64, 2}, {31, 1, 1},  {1, 9, 2}};

TEST(Kernels, Apply9MatchesReferenceBitwise) {
  for (const auto& tc : kCases) {
    mu::Xoshiro256 rng(11 + tc.nx * 100 + tc.ny + tc.h);
    Coeffs c(tc.nx, tc.ny, rng);
    Padded x(tc.nx, tc.ny, tc.h, rng), y(tc.nx, tc.ny, tc.h, rng),
        yref(tc.nx, tc.ny, tc.h, rng);
    mk::apply9(c.view(), tc.nx, tc.ny, x.interior(), x.pitch, y.interior(),
               y.pitch);
    reference::apply9(c, x, yref);
    EXPECT_TRUE(same_interior(y, yref))
        << "nx=" << tc.nx << " ny=" << tc.ny << " h=" << tc.h;
  }
}

TEST(Kernels, Residual9MatchesReferenceBitwise) {
  for (const auto& tc : kCases) {
    mu::Xoshiro256 rng(23 + tc.nx * 100 + tc.ny + tc.h);
    Coeffs c(tc.nx, tc.ny, rng);
    Padded b(tc.nx, tc.ny, tc.h, rng), x(tc.nx, tc.ny, tc.h, rng),
        r(tc.nx, tc.ny, tc.h, rng), rref(tc.nx, tc.ny, tc.h, rng);
    mk::residual9(c.view(), tc.nx, tc.ny, b.interior(), b.pitch,
                  x.interior(), x.pitch, r.interior(), r.pitch);
    reference::residual9(c, b, x, rref);
    EXPECT_TRUE(same_interior(r, rref))
        << "nx=" << tc.nx << " ny=" << tc.ny << " h=" << tc.h;
  }
}

TEST(Kernels, ResidualNorm2FusesResidualAndDot) {
  for (const auto& tc : kCases) {
    mu::Xoshiro256 rng(37 + tc.nx * 100 + tc.ny + tc.h);
    Coeffs c(tc.nx, tc.ny, rng);
    auto m = random_mask(tc.nx, tc.ny, rng);
    Padded b(tc.nx, tc.ny, tc.h, rng), x(tc.nx, tc.ny, tc.h, rng),
        r(tc.nx, tc.ny, tc.h, rng), rref(tc.nx, tc.ny, tc.h, rng);
    const double start = 3.25;  // continues an accumulator mid-stream
    const double n2 = mk::residual_norm2_9(
        c.view(), m.data(), tc.nx, tc.nx, tc.ny, b.interior(), b.pitch,
        x.interior(), x.pitch, r.interior(), r.pitch, start);
    reference::residual9(c, b, x, rref);
    const double n2ref =
        reference::masked_dot(m, tc.nx, tc.ny, rref, rref, start);
    EXPECT_TRUE(same_interior(r, rref));
    ASSERT_NE(n2ref, start);  // mask never kills every cell at 80% ocean
    EXPECT_NEAR(n2, n2ref, 1e-14 * std::abs(n2ref));
  }
}

TEST(Kernels, MaskedDotMatchesReference) {
  for (const auto& tc : kCases) {
    mu::Xoshiro256 rng(41 + tc.nx * 100 + tc.ny + tc.h);
    auto m = random_mask(tc.nx, tc.ny, rng);
    Padded a(tc.nx, tc.ny, tc.h, rng), b(tc.nx, tc.ny, tc.h, rng);
    const double start = -1.5;
    const double got = mk::masked_dot(m.data(), tc.nx, tc.nx, tc.ny,
                                      a.interior(), a.pitch, b.interior(),
                                      b.pitch, start);
    const double want = reference::masked_dot(m, tc.nx, tc.ny, a, b, start);
    EXPECT_NEAR(got, want, 1e-14 * std::max(1.0, std::abs(want)));
  }
}

TEST(Kernels, MaskedDot3MatchesThreeMaskedDots) {
  for (const auto& tc : kCases) {
    for (bool with_norm : {false, true}) {
      mu::Xoshiro256 rng(53 + tc.nx * 100 + tc.ny + tc.h + with_norm);
      auto m = random_mask(tc.nx, tc.ny, rng);
      Padded r(tc.nx, tc.ny, tc.h, rng), rp(tc.nx, tc.ny, tc.h, rng),
          z(tc.nx, tc.ny, tc.h, rng);
      double out[3] = {0.5, -0.25, 1.0};  // continues prior partial sums
      const double d0 = mk::masked_dot(m.data(), tc.nx, tc.nx, tc.ny,
                                       r.interior(), r.pitch, rp.interior(),
                                       rp.pitch, out[0]);
      const double d1 = mk::masked_dot(m.data(), tc.nx, tc.nx, tc.ny,
                                       z.interior(), z.pitch, rp.interior(),
                                       rp.pitch, out[1]);
      const double d2 =
          with_norm
              ? mk::masked_dot(m.data(), tc.nx, tc.nx, tc.ny, r.interior(),
                               r.pitch, r.interior(), r.pitch, out[2])
              : out[2];
      mk::masked_dot3(m.data(), tc.nx, tc.nx, tc.ny, r.interior(), r.pitch,
                      rp.interior(), rp.pitch, z.interior(), z.pitch,
                      with_norm, out);
      // Fusing the sweeps must not change any accumulator's add order.
      EXPECT_TRUE(bitwise_equal(out[0], d0));
      EXPECT_TRUE(bitwise_equal(out[1], d1));
      EXPECT_TRUE(bitwise_equal(out[2], d2));
    }
  }
}

TEST(Kernels, LincombAxpyFusedMatchesUnfusedBitwise) {
  for (const auto& tc : kCases) {
    mu::Xoshiro256 rng(67 + tc.nx * 100 + tc.ny + tc.h);
    Padded x(tc.nx, tc.ny, tc.h, rng), y(tc.nx, tc.ny, tc.h, rng),
        z(tc.nx, tc.ny, tc.h, rng);
    Padded yref = y, zref = z;
    const double a = 0.7, b = -1.3, cc = 0.31;
    mk::lincomb_axpy(tc.nx, tc.ny, a, x.interior(), x.pitch, b,
                     y.interior(), y.pitch, cc, z.interior(), z.pitch);
    reference::lincomb(a, x, b, yref);
    reference::axpy(cc, yref, zref);
    EXPECT_TRUE(same_interior(y, yref));
    EXPECT_TRUE(same_interior(z, zref));
  }
}

TEST(Kernels, LincombAndAxpyAndScaleMatchReference) {
  for (const auto& tc : kCases) {
    mu::Xoshiro256 rng(71 + tc.nx * 100 + tc.ny + tc.h);
    Padded x(tc.nx, tc.ny, tc.h, rng), y(tc.nx, tc.ny, tc.h, rng);
    Padded yref = y;
    mk::lincomb(tc.nx, tc.ny, 1.25, x.interior(), x.pitch, -0.5,
                y.interior(), y.pitch);
    reference::lincomb(1.25, x, -0.5, yref);
    EXPECT_TRUE(same_interior(y, yref));

    mk::axpy(tc.nx, tc.ny, -2.0, x.interior(), x.pitch, y.interior(),
             y.pitch);
    reference::axpy(-2.0, x, yref);
    EXPECT_TRUE(same_interior(y, yref));

    Padded s = y, sref = y;
    mk::scale(tc.nx, tc.ny, 0.125, s.interior(), s.pitch);
    for (int j = 0; j < tc.ny; ++j)
      for (int i = 0; i < tc.nx; ++i)
        sref.interior()[j * sref.pitch + i] *= 0.125;
    EXPECT_TRUE(same_interior(s, sref));
  }
}

TEST(Kernels, CopyFillMaskZeroTouchInteriorOnly) {
  mu::Xoshiro256 rng(83);
  const int nx = 13, ny = 7, h = 2;
  Padded x(nx, ny, h, rng), y(nx, ny, h, rng);
  const Padded y_before = y;
  mk::copy(nx, ny, x.interior(), x.pitch, y.interior(), y.pitch);
  EXPECT_TRUE(same_interior(y, x));
  // Halo ring untouched by the row-wise memcpy.
  for (std::size_t k = 0; k < y.v.size(); ++k) {
    const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(k) / y.pitch - h;
    const std::ptrdiff_t i = static_cast<std::ptrdiff_t>(k) % y.pitch - h;
    if (i < 0 || i >= nx || j < 0 || j >= ny) {
      EXPECT_EQ(y.v[k], y_before.v[k]) << "halo touched at " << k;
    }
  }

  mk::fill(nx, ny, 7.5, y.interior(), y.pitch);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      EXPECT_EQ(y.interior()[j * y.pitch + i], 7.5);

  auto m = random_mask(nx, ny, rng);
  mk::mask_zero(m.data(), nx, nx, ny, y.interior(), y.pitch);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      EXPECT_EQ(y.interior()[j * y.pitch + i],
                m[static_cast<std::size_t>(j) * nx + i] ? 7.5 : 0.0);
}

// ---------------------------------------------------------------------
// Float instantiation: same evaluation order at float precision, with
// every reduction accumulating in double (widen-then-multiply). Both are
// contractual, so the comparisons against naive fp32 scalar loops are
// exact — bitwise for the fields, bitwise for the double accumulators —
// not ULP-bounded.

struct PaddedF {
  int nx = 0, ny = 0, h = 0;
  std::ptrdiff_t pitch = 0;
  std::vector<float> v;

  PaddedF(int nx_, int ny_, int h_, mu::Xoshiro256& rng)
      : nx(nx_), ny(ny_), h(h_), pitch(nx_ + 2 * h_) {
    v.resize(static_cast<std::size_t>(pitch) * (ny + 2 * h));
    for (auto& x : v) x = static_cast<float>(rng.uniform(-1, 1));
  }
  float* interior() {
    return v.data() + static_cast<std::ptrdiff_t>(h) * pitch + h;
  }
  const float* interior() const {
    return v.data() + static_cast<std::ptrdiff_t>(h) * pitch + h;
  }
};

struct CoeffsF {
  int nx = 0, ny = 0;
  std::vector<float> c[9];

  CoeffsF(int nx_, int ny_, mu::Xoshiro256& rng) : nx(nx_), ny(ny_) {
    for (auto& d : c) {
      d.resize(static_cast<std::size_t>(nx) * ny);
      for (auto& x : d) x = static_cast<float>(rng.uniform(-1, 1));
    }
  }
  mk::Stencil9f view() const {
    return mk::Stencil9f{c[0].data(), c[1].data(), c[2].data(), c[3].data(),
                         c[4].data(), c[5].data(), c[6].data(), c[7].data(),
                         c[8].data(), nx};
  }
};

namespace reference32 {

float point9(const CoeffsF& c, const PaddedF& x, int i, int j) {
  const std::ptrdiff_t p = x.pitch;
  const float* xd = x.interior();
  const std::size_t k = static_cast<std::size_t>(j) * c.nx + i;
  return c.c[0][k] * xd[j * p + i] + c.c[1][k] * xd[j * p + i + 1] +
         c.c[2][k] * xd[j * p + i - 1] + c.c[3][k] * xd[(j + 1) * p + i] +
         c.c[4][k] * xd[(j - 1) * p + i] +
         c.c[5][k] * xd[(j + 1) * p + i + 1] +
         c.c[6][k] * xd[(j + 1) * p + i - 1] +
         c.c[7][k] * xd[(j - 1) * p + i + 1] +
         c.c[8][k] * xd[(j - 1) * p + i - 1];
}

void residual9(const CoeffsF& c, const PaddedF& b, const PaddedF& x,
               PaddedF& r) {
  for (int j = 0; j < c.ny; ++j)
    for (int i = 0; i < c.nx; ++i)
      r.interior()[j * r.pitch + i] =
          b.interior()[j * b.pitch + i] - point9(c, x, i, j);
}

/// Double accumulator, operands widened BEFORE the multiply — the
/// reduction contract of every float kernel.
double masked_dot(const std::vector<unsigned char>& m, int nx, int ny,
                  const PaddedF& a, const PaddedF& b, double sum = 0.0) {
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      if (m[static_cast<std::size_t>(j) * nx + i])
        sum += static_cast<double>(a.interior()[j * a.pitch + i]) *
               static_cast<double>(b.interior()[j * b.pitch + i]);
  return sum;
}

void lincomb(float a, const PaddedF& x, float b, PaddedF& y) {
  for (int j = 0; j < y.ny; ++j)
    for (int i = 0; i < y.nx; ++i) {
      float& yv = y.interior()[j * y.pitch + i];
      yv = a * x.interior()[j * x.pitch + i] + b * yv;
    }
}

void axpy(float a, const PaddedF& x, PaddedF& y) {
  for (int j = 0; j < y.ny; ++j)
    for (int i = 0; i < y.nx; ++i)
      y.interior()[j * y.pitch + i] += a * x.interior()[j * x.pitch + i];
}

}  // namespace reference32

bool same_interior_f(const PaddedF& a, const PaddedF& b) {
  for (int j = 0; j < a.ny; ++j)
    for (int i = 0; i < a.nx; ++i)
      if (std::memcmp(&a.interior()[j * a.pitch + i],
                      &b.interior()[j * b.pitch + i], sizeof(float)) != 0)
        return false;
  return true;
}

TEST(KernelsFp32, Apply9AndResidual9MatchNaiveFp32Bitwise) {
  for (const auto& tc : kCases) {
    mu::Xoshiro256 rng(101 + tc.nx * 100 + tc.ny + tc.h);
    CoeffsF c(tc.nx, tc.ny, rng);
    PaddedF b(tc.nx, tc.ny, tc.h, rng), x(tc.nx, tc.ny, tc.h, rng),
        y(tc.nx, tc.ny, tc.h, rng), yref(tc.nx, tc.ny, tc.h, rng),
        r(tc.nx, tc.ny, tc.h, rng), rref(tc.nx, tc.ny, tc.h, rng);
    mk::apply9(c.view(), tc.nx, tc.ny, x.interior(), x.pitch, y.interior(),
               y.pitch);
    for (int j = 0; j < tc.ny; ++j)
      for (int i = 0; i < tc.nx; ++i)
        yref.interior()[j * yref.pitch + i] = reference32::point9(c, x, i, j);
    EXPECT_TRUE(same_interior_f(y, yref))
        << "nx=" << tc.nx << " ny=" << tc.ny << " h=" << tc.h;

    mk::residual9(c.view(), tc.nx, tc.ny, b.interior(), b.pitch,
                  x.interior(), x.pitch, r.interior(), r.pitch);
    reference32::residual9(c, b, x, rref);
    EXPECT_TRUE(same_interior_f(r, rref))
        << "nx=" << tc.nx << " ny=" << tc.ny << " h=" << tc.h;
  }
}

TEST(KernelsFp32, ReductionsAccumulateInDoubleExactly) {
  for (const auto& tc : kCases) {
    mu::Xoshiro256 rng(113 + tc.nx * 100 + tc.ny + tc.h);
    CoeffsF c(tc.nx, tc.ny, rng);
    auto m = random_mask(tc.nx, tc.ny, rng);
    PaddedF a(tc.nx, tc.ny, tc.h, rng), b(tc.nx, tc.ny, tc.h, rng),
        x(tc.nx, tc.ny, tc.h, rng), r(tc.nx, tc.ny, tc.h, rng),
        rref(tc.nx, tc.ny, tc.h, rng);
    const double start = 0.375;  // continues an accumulator mid-stream

    const double got = mk::masked_dot(m.data(), tc.nx, tc.nx, tc.ny,
                                      a.interior(), a.pitch, b.interior(),
                                      b.pitch, start);
    EXPECT_TRUE(bitwise_equal(
        got, reference32::masked_dot(m, tc.nx, tc.ny, a, b, start)));

    // Fused residual + norm²: the residual elements are fp32, their
    // squares accumulate in double.
    const double n2 = mk::residual_norm2_9(
        c.view(), m.data(), tc.nx, tc.nx, tc.ny, b.interior(), b.pitch,
        x.interior(), x.pitch, r.interior(), r.pitch, start);
    reference32::residual9(c, b, x, rref);
    EXPECT_TRUE(same_interior_f(r, rref));
    EXPECT_TRUE(bitwise_equal(
        n2, reference32::masked_dot(m, tc.nx, tc.ny, rref, rref, start)));

    double out[3] = {0.5, -0.25, 1.0};
    const double d0 = mk::masked_dot(m.data(), tc.nx, tc.nx, tc.ny,
                                     r.interior(), r.pitch, a.interior(),
                                     a.pitch, out[0]);
    const double d1 = mk::masked_dot(m.data(), tc.nx, tc.nx, tc.ny,
                                     b.interior(), b.pitch, a.interior(),
                                     a.pitch, out[1]);
    const double d2 = mk::masked_dot(m.data(), tc.nx, tc.nx, tc.ny,
                                     r.interior(), r.pitch, r.interior(),
                                     r.pitch, out[2]);
    mk::masked_dot3(m.data(), tc.nx, tc.nx, tc.ny, r.interior(), r.pitch,
                    a.interior(), a.pitch, b.interior(), b.pitch, true, out);
    EXPECT_TRUE(bitwise_equal(out[0], d0));
    EXPECT_TRUE(bitwise_equal(out[1], d1));
    EXPECT_TRUE(bitwise_equal(out[2], d2));
  }
}

TEST(KernelsFp32, VectorUpdatesMatchNaiveFp32Bitwise) {
  for (const auto& tc : kCases) {
    mu::Xoshiro256 rng(127 + tc.nx * 100 + tc.ny + tc.h);
    PaddedF x(tc.nx, tc.ny, tc.h, rng), y(tc.nx, tc.ny, tc.h, rng),
        z(tc.nx, tc.ny, tc.h, rng);
    PaddedF yref = y, zref = z;
    const float a = 0.7f, b = -1.3f, cc = 0.31f;
    mk::lincomb_axpy(tc.nx, tc.ny, a, x.interior(), x.pitch, b,
                     y.interior(), y.pitch, cc, z.interior(), z.pitch);
    reference32::lincomb(a, x, b, yref);
    reference32::axpy(cc, yref, zref);
    EXPECT_TRUE(same_interior_f(y, yref));
    EXPECT_TRUE(same_interior_f(z, zref));

    mk::lincomb(tc.nx, tc.ny, 1.25f, x.interior(), x.pitch, -0.5f,
                y.interior(), y.pitch);
    reference32::lincomb(1.25f, x, -0.5f, yref);
    EXPECT_TRUE(same_interior_f(y, yref));

    mk::axpy(tc.nx, tc.ny, -2.0f, x.interior(), x.pitch, y.interior(),
             y.pitch);
    reference32::axpy(-2.0f, x, yref);
    EXPECT_TRUE(same_interior_f(y, yref));
  }
}

TEST(KernelsFp32, ConvertIsPerElementStaticCast) {
  mu::Xoshiro256 rng(131);
  const int nx = 13, ny = 7, h = 2;
  Padded x64(nx, ny, h, rng);
  PaddedF y32(nx, ny, h, rng);
  mk::convert<float, double>(nx, ny, x64.interior(), x64.pitch,
                             y32.interior(), y32.pitch);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      EXPECT_EQ(y32.interior()[j * y32.pitch + i],
                static_cast<float>(x64.interior()[j * x64.pitch + i]));

  // Promoting back is exact (every float is a double), so demote-promote
  // equals a single fp32 rounding.
  Padded z64(nx, ny, h, rng);
  mk::convert<double, float>(nx, ny, y32.interior(), y32.pitch,
                             z64.interior(), z64.pitch);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      EXPECT_EQ(z64.interior()[j * z64.pitch + i],
                static_cast<double>(y32.interior()[j * y32.pitch + i]));
}

// ---------------------------------------------------------------------
// DistOperator / field_ops level: the fused entry points must agree with
// their unfused compositions bitwise on a real masked multi-block
// decomposition (the association of the across-block accumulation is
// part of the contract).

struct OpProblem {
  std::unique_ptr<mg::CurvilinearGrid> grid;
  mu::Field depth;
  std::unique_ptr<mg::NinePointStencil> stencil;
  std::unique_ptr<mg::Decomposition> decomp;
};

OpProblem make_op_problem(int nx, int ny, int block) {
  OpProblem p;
  mg::GridSpec spec;
  spec.kind = mg::GridKind::kUniform;
  spec.nx = nx;
  spec.ny = ny;
  spec.periodic_x = false;
  spec.dx = 1.0e4;
  spec.dy = 1.2e4;
  p.grid = std::make_unique<mg::CurvilinearGrid>(spec);
  p.depth = mg::bowl_bathymetry(*p.grid, 4000.0);
  p.stencil = std::make_unique<mg::NinePointStencil>(
      *p.grid, p.depth, mg::barotropic_phi(600.0));
  p.decomp = std::make_unique<mg::Decomposition>(
      nx, ny, false, p.stencil->mask(), block, block, 1);
  return p;
}

void load_random(const mg::NinePointStencil& st, mc::DistField& f,
                 mu::Xoshiro256& rng) {
  mu::Field g(st.nx(), st.ny(), 0.0);
  for (int j = 0; j < st.ny(); ++j)
    for (int i = 0; i < st.nx(); ++i)
      if (st.mask()(i, j)) g(i, j) = rng.uniform(-1, 1);
  f.load_global(g);
}

TEST(DistOperatorFused, ResidualNorm2EqualsResidualThenDot) {
  auto p = make_op_problem(24, 20, 8);  // 3x3 blocks — association matters
  mc::SerialComm comm;
  mc::HaloExchanger halo(*p.decomp);
  ms::DistOperator a(*p.stencil, *p.decomp, 0);
  mu::Xoshiro256 rng(7);
  mc::DistField b(*p.decomp, 0), x(*p.decomp, 0), r1(*p.decomp, 0),
      r2(*p.decomp, 0);
  load_random(*p.stencil, b, rng);
  load_random(*p.stencil, x, rng);

  a.residual(comm, halo, b, x, r1);
  const double n_unfused = a.local_dot(comm, r1, r1);
  const double n_fused = a.residual_local_norm2(comm, halo, b, x, r2);
  EXPECT_TRUE(bitwise_equal(n_fused, n_unfused));
  for (int lb = 0; lb < a.num_local_blocks(); ++lb) {
    const auto& info = r1.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        ASSERT_TRUE(bitwise_equal(r1.at(lb, i, j), r2.at(lb, i, j)));
  }
}

TEST(DistOperatorFused, LocalDot3EqualsThreeLocalDots) {
  auto p = make_op_problem(24, 20, 8);
  mc::SerialComm comm;
  ms::DistOperator a(*p.stencil, *p.decomp, 0);
  mu::Xoshiro256 rng(9);
  mc::DistField r(*p.decomp, 0), rp(*p.decomp, 0), z(*p.decomp, 0);
  load_random(*p.stencil, r, rng);
  load_random(*p.stencil, rp, rng);
  load_random(*p.stencil, z, rng);

  for (bool with_norm : {false, true}) {
    double out[3];
    a.local_dot3(comm, r, rp, z, with_norm, out);
    EXPECT_TRUE(bitwise_equal(out[0], a.local_dot(comm, r, rp)));
    EXPECT_TRUE(bitwise_equal(out[1], a.local_dot(comm, z, rp)));
    if (with_norm)
      EXPECT_TRUE(bitwise_equal(out[2], a.local_dot(comm, r, r)));
    else
      EXPECT_EQ(out[2], 0.0);
  }
}

TEST(DistOperatorFused, LocalDotCarriesOneAccumulatorAcrossBlocks) {
  // Regression: summing per-block partials and then adding them is a
  // different FP association than the seed's single running accumulator.
  auto p = make_op_problem(24, 20, 8);
  mc::SerialComm comm;
  ms::DistOperator a(*p.stencil, *p.decomp, 0);
  ASSERT_GT(a.num_local_blocks(), 1);
  mu::Xoshiro256 rng(13);
  mc::DistField u(*p.decomp, 0), v(*p.decomp, 0);
  load_random(*p.stencil, u, rng);
  load_random(*p.stencil, v, rng);

  double want = 0.0;
  for (int lb = 0; lb < a.num_local_blocks(); ++lb) {
    const auto& info = u.info(lb);
    const auto& mask = a.block_mask(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        if (mask(i, j)) want += u.at(lb, i, j) * v.at(lb, i, j);
  }
  EXPECT_TRUE(bitwise_equal(a.local_dot(comm, u, v), want));
}

TEST(FieldOpsFused, LincombAxpyEqualsLincombThenAxpy) {
  auto p = make_op_problem(24, 20, 8);
  mc::SerialComm comm;
  ms::DistOperator a(*p.stencil, *p.decomp, 0);
  mu::Xoshiro256 rng(17);
  mc::DistField x(*p.decomp, 0), y1(*p.decomp, 0), z1(*p.decomp, 0);
  load_random(*p.stencil, x, rng);
  load_random(*p.stencil, y1, rng);
  load_random(*p.stencil, z1, rng);
  mc::DistField y2 = y1, z2 = z1;

  ms::lincomb(comm, 0.9, x, -0.4, y1);
  ms::axpy(comm, 1.7, y1, z1);
  ms::lincomb_axpy(comm, 0.9, x, -0.4, y2, 1.7, z2);
  for (int lb = 0; lb < a.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i) {
        ASSERT_TRUE(bitwise_equal(y1.at(lb, i, j), y2.at(lb, i, j)));
        ASSERT_TRUE(bitwise_equal(z1.at(lb, i, j), z2.at(lb, i, j)));
      }
  }
}

// ---------------------------------------------------------------------
// Solver regression on the seed test problem: the kernel rewrite must
// not change a single iteration or the converged residuals.

TEST(KernelRegression, SolverIterationCountsUnchangedOnSeedProblem) {
  auto p = make_op_problem(24, 20, 8);
  mu::Xoshiro256 rng(5);
  mu::Field bg(24, 20, 0.0);
  for (int j = 0; j < 20; ++j)
    for (int i = 0; i < 24; ++i)
      if (p.stencil->mask()(i, j)) bg(i, j) = rng.uniform(-1, 1);

  mc::SerialComm comm;
  mc::HaloExchanger halo(*p.decomp);
  ms::DistOperator a(*p.stencil, *p.decomp, 0);
  ms::DiagonalPreconditioner m(a);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;

  {
    mc::DistField b(*p.decomp, 0), x(*p.decomp, 0);
    b.load_global(bg);
    ms::ChronGearSolver cg(opt);
    auto s = cg.solve(comm, halo, a, m, b, x);
    ASSERT_TRUE(s.converged);
    EXPECT_EQ(s.iterations, 110);  // seed value
    EXPECT_DOUBLE_EQ(s.relative_residual, 5.795712271592336e-12);
  }
  {
    ms::LanczosOptions lopt;
    lopt.rel_tolerance = 0.02;
    const auto bounds =
        ms::estimate_eigenvalue_bounds(comm, halo, a, m, lopt).bounds;
    EXPECT_DOUBLE_EQ(bounds.nu, 0.0080900175145003188);  // seed value
    EXPECT_DOUBLE_EQ(bounds.mu, 2.4667253749083407);

    mc::DistField b(*p.decomp, 0), x(*p.decomp, 0);
    b.load_global(bg);
    ms::PcsiSolver pcsi(bounds, opt);
    auto s = pcsi.solve(comm, halo, a, m, b, x);
    ASSERT_TRUE(s.converged);
    EXPECT_EQ(s.iterations, 210);  // seed value
    EXPECT_DOUBLE_EQ(s.relative_residual, 6.9164185356193306e-11);
  }
}

}  // namespace
