#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/comm/serial_comm.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/linalg/dense.hpp"
#include "src/solver/chron_gear.hpp"
#include "src/solver/field_ops.hpp"
#include "src/solver/lanczos.hpp"
#include "src/solver/pcg.hpp"
#include "src/solver/pcsi.hpp"
#include "src/util/rng.hpp"

namespace mc = minipop::comm;
namespace mg = minipop::grid;
namespace ml = minipop::linalg;
namespace ms = minipop::solver;
namespace mu = minipop::util;

namespace {

struct Problem {
  std::unique_ptr<mg::CurvilinearGrid> grid;
  mu::Field depth;
  std::unique_ptr<mg::NinePointStencil> stencil;
  std::unique_ptr<mg::Decomposition> decomp;
  mu::Field b_global;  ///< masked RHS
  mu::Field x_ref;     ///< dense reference solution
};

/// Small masked test problem with a dense reference solution.
Problem make_problem(int nx, int ny, int block, int nranks,
                     bool periodic = false, std::uint64_t seed = 5) {
  Problem p;
  mg::GridSpec spec;
  spec.kind = mg::GridKind::kUniform;
  spec.nx = nx;
  spec.ny = ny;
  spec.periodic_x = periodic;
  spec.dx = 1.0e4;
  spec.dy = 1.2e4;  // mild anisotropy: all nine coefficients nonzero
  p.grid = std::make_unique<mg::CurvilinearGrid>(spec);
  p.depth = mg::bowl_bathymetry(*p.grid, 4000.0);
  const double phi = mg::barotropic_phi(600.0);
  p.stencil = std::make_unique<mg::NinePointStencil>(*p.grid, p.depth, phi);
  p.decomp = std::make_unique<mg::Decomposition>(
      nx, ny, periodic, p.stencil->mask(), block, block, nranks);

  mu::Xoshiro256 rng(seed);
  p.b_global = mu::Field(nx, ny, 0.0);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      if (p.stencil->mask()(i, j)) p.b_global(i, j) = rng.uniform(-1, 1);

  // Dense reference.
  auto a = p.stencil->to_dense();
  std::vector<double> bv(static_cast<std::size_t>(nx) * ny);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) bv[j * nx + i] = p.b_global(i, j);
  auto xv = ml::cholesky_solve(a, bv);
  p.x_ref = mu::Field(nx, ny);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) p.x_ref(i, j) = xv[j * nx + i];
  return p;
}

/// Run a solver serially on rank 0 of a 1-rank decomposition; return the
/// gathered solution and the stats.
std::pair<mu::Field, ms::SolveStats> solve_serial(
    const Problem& p, ms::IterativeSolver& solver,
    bool diagonal_precond = true) {
  mc::SerialComm comm;
  mc::HaloExchanger halo(*p.decomp);
  ms::DistOperator a(*p.stencil, *p.decomp, 0);
  std::unique_ptr<ms::Preconditioner> m;
  if (diagonal_precond)
    m = std::make_unique<ms::DiagonalPreconditioner>(a);
  else
    m = std::make_unique<ms::IdentityPreconditioner>(a);
  mc::DistField b(*p.decomp, 0), x(*p.decomp, 0);
  b.load_global(p.b_global);
  auto stats = solver.solve(comm, halo, a, *m, b, x);
  mu::Field out(p.decomp->nx_global(), p.decomp->ny_global(), 0.0);
  x.store_global(out);
  return {out, stats};
}

double max_abs_err(const mu::Field& a, const mu::Field& b) {
  double m = 0;
  for (int j = 0; j < a.ny(); ++j)
    for (int i = 0; i < a.nx(); ++i)
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

double max_abs(const mu::Field& a) {
  double m = 0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

ms::EigenBounds lanczos_bounds_serial(const Problem& p,
                                      bool diagonal_precond = true) {
  // Build a private 1-rank decomposition: p.decomp may be multi-rank.
  mg::Decomposition d1(p.stencil->nx(), p.stencil->ny(),
                       p.stencil->periodic_x(), p.stencil->mask(),
                       p.stencil->nx(), p.stencil->ny(), 1);
  mc::SerialComm comm;
  mc::HaloExchanger halo(d1);
  ms::DistOperator a(*p.stencil, d1, 0);
  std::unique_ptr<ms::Preconditioner> m;
  if (diagonal_precond)
    m = std::make_unique<ms::DiagonalPreconditioner>(a);
  else
    m = std::make_unique<ms::IdentityPreconditioner>(a);
  ms::LanczosOptions lopt;
  lopt.rel_tolerance = 0.02;  // tight bounds for near-optimal Chebyshev
  return ms::estimate_eigenvalue_bounds(comm, halo, a, *m, lopt).bounds;
}

}  // namespace

TEST(Pcg, MatchesDenseSolution) {
  auto p = make_problem(14, 12, 14, 1);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-12;
  ms::PcgSolver solver(opt);
  auto [x, stats] = solve_serial(p, solver);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(max_abs_err(x, p.x_ref), 1e-8 * std::max(1.0, max_abs(p.x_ref)));
}

TEST(ChronGear, MatchesDenseSolution) {
  auto p = make_problem(14, 12, 14, 1);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-12;
  ms::ChronGearSolver solver(opt);
  auto [x, stats] = solve_serial(p, solver);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(max_abs_err(x, p.x_ref), 1e-8 * std::max(1.0, max_abs(p.x_ref)));
}

TEST(ChronGear, IterationCountTracksPcg) {
  // ChronGear is a rearranged PCG: same Krylov space, so the iteration
  // counts must agree up to the convergence-check granularity.
  auto p = make_problem(20, 16, 20, 1);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  ms::PcgSolver pcg(opt);
  ms::ChronGearSolver cg(opt);
  auto [x1, s1] = solve_serial(p, pcg);
  auto [x2, s2] = solve_serial(p, cg);
  EXPECT_TRUE(s1.converged);
  EXPECT_TRUE(s2.converged);
  EXPECT_NEAR(s1.iterations, s2.iterations, opt.check_frequency);
}

TEST(ChronGear, OneReductionPerIteration) {
  auto p = make_problem(20, 16, 20, 1);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  ms::ChronGearSolver solver(opt);
  auto [x, stats] = solve_serial(p, solver);
  ASSERT_TRUE(stats.converged);
  // iterations + initial ||b|| reduction.
  EXPECT_EQ(stats.costs.allreduces,
            static_cast<std::uint64_t>(stats.iterations) + 1);
  // One halo exchange (inside the matvec) per iteration + initial residual.
  EXPECT_EQ(stats.costs.halo_exchanges,
            static_cast<std::uint64_t>(stats.iterations) + 1);
}

TEST(Pcg, TwoReductionsPerIteration) {
  auto p = make_problem(20, 16, 20, 1);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  ms::PcgSolver solver(opt);
  auto [x, stats] = solve_serial(p, solver);
  ASSERT_TRUE(stats.converged);
  // 2 per full iteration; the final (converged) iteration stops after the
  // first reduction; +1 for the initial ||b||.
  EXPECT_EQ(stats.costs.allreduces,
            2 * static_cast<std::uint64_t>(stats.iterations));
}

TEST(Pcsi, ConvergesWithLanczosBounds) {
  auto p = make_problem(16, 14, 16, 1);
  auto bounds = lanczos_bounds_serial(p);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-11;
  ms::PcsiSolver solver(bounds, opt);
  auto [x, stats] = solve_serial(p, solver);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(max_abs_err(x, p.x_ref), 1e-7 * std::max(1.0, max_abs(p.x_ref)));
}

TEST(Pcsi, NeedsMoreIterationsThanChronGearButFewerReductions) {
  // The paper's central trade-off: K_pcsi > K_cg, but P-CSI's reduction
  // count is ~K/check_frequency instead of ~K.
  auto p = make_problem(24, 20, 24, 1);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  ms::ChronGearSolver cg(opt);
  auto [xc, sc] = solve_serial(p, cg);
  auto bounds = lanczos_bounds_serial(p);
  ms::PcsiSolver pcsi(bounds, opt);
  auto [xp, sp] = solve_serial(p, pcsi);
  ASSERT_TRUE(sc.converged);
  ASSERT_TRUE(sp.converged);
  EXPECT_GT(sp.iterations, sc.iterations);
  EXPECT_LT(sp.costs.allreduces, sc.costs.allreduces / 2);
  // Both reach the same solution.
  EXPECT_LT(max_abs_err(xp, xc), 1e-6 * std::max(1.0, max_abs(xc)));
}

TEST(Pcsi, RejectsInvalidBounds) {
  EXPECT_THROW(ms::PcsiSolver(ms::EigenBounds{0.0, 1.0}), mu::Error);
  EXPECT_THROW(ms::PcsiSolver(ms::EigenBounds{2.0, 1.0}), mu::Error);
}

TEST(Solvers, ZeroRhsGivesZeroSolution) {
  auto p = make_problem(12, 10, 12, 1);
  p.b_global.fill(0.0);
  ms::ChronGearSolver solver;
  auto [x, stats] = solve_serial(p, solver);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.iterations, 0);
  EXPECT_EQ(max_abs(x), 0.0);
}

TEST(Solvers, NonConvergenceIsReportedNotThrown) {
  auto p = make_problem(20, 16, 20, 1);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-14;
  opt.max_iterations = 3;
  ms::ChronGearSolver solver(opt);
  auto [x, stats] = solve_serial(p, solver);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.iterations, 3);
  EXPECT_GT(stats.relative_residual, 1e-14);
}

TEST(Solvers, DiagonalPreconditioningReducesIterations) {
  auto p = make_problem(20, 18, 20, 1);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  ms::ChronGearSolver solver(opt);
  auto [xd, sd] = solve_serial(p, solver, /*diagonal=*/true);
  auto [xi, si] = solve_serial(p, solver, /*diagonal=*/false);
  ASSERT_TRUE(sd.converged);
  ASSERT_TRUE(si.converged);
  EXPECT_LE(sd.iterations, si.iterations);
}

TEST(Solvers, WarmStartConvergesFaster) {
  auto p = make_problem(18, 16, 18, 1);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  ms::ChronGearSolver solver(opt);

  mc::SerialComm comm;
  mc::HaloExchanger halo(*p.decomp);
  ms::DistOperator a(*p.stencil, *p.decomp, 0);
  ms::DiagonalPreconditioner m(a);
  mc::DistField b(*p.decomp, 0), x(*p.decomp, 0);
  b.load_global(p.b_global);
  auto cold = solver.solve(comm, halo, a, m, b, x);
  // x now holds the solution; re-solving from it must converge at the
  // first check.
  auto warm = solver.solve(comm, halo, a, m, b, x);
  ASSERT_TRUE(cold.converged);
  ASSERT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, opt.check_frequency);
}

TEST(Solvers, MultiRankMatchesSerial) {
  const int nranks = 4;
  auto p = make_problem(24, 16, 6, nranks);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-11;

  // Serial reference on a 1-rank decomposition of the same stencil.
  mg::Decomposition d1(24, 16, false, p.stencil->mask(), 24, 16, 1);
  mu::Field x_serial(24, 16, 0.0);
  {
    mc::SerialComm comm;
    mc::HaloExchanger halo(d1);
    ms::DistOperator a(*p.stencil, d1, 0);
    ms::DiagonalPreconditioner m(a);
    mc::DistField b(d1, 0), x(d1, 0);
    b.load_global(p.b_global);
    ms::ChronGearSolver solver(opt);
    auto stats = solver.solve(comm, halo, a, m, b, x);
    ASSERT_TRUE(stats.converged);
    x.store_global(x_serial);
  }

  mu::Field x_parallel(24, 16, 0.0);
  std::vector<int> iters(nranks);
  mc::ThreadTeam team(nranks);
  mc::HaloExchanger halo(*p.decomp);
  team.run([&](mc::Communicator& comm) {
    ms::DistOperator a(*p.stencil, *p.decomp, comm.rank());
    ms::DiagonalPreconditioner m(a);
    mc::DistField b(*p.decomp, comm.rank()), x(*p.decomp, comm.rank());
    b.load_global(p.b_global);
    ms::ChronGearSolver solver(opt);
    auto stats = solver.solve(comm, halo, a, m, b, x);
    EXPECT_TRUE(stats.converged);
    iters[comm.rank()] = stats.iterations;
    x.store_global(x_parallel);  // disjoint interiors; no race
  });
  // All ranks agree on the iteration count (collective convergence).
  for (int r = 1; r < nranks; ++r) EXPECT_EQ(iters[r], iters[0]);
  EXPECT_LT(max_abs_err(x_parallel, x_serial),
            1e-6 * std::max(1.0, max_abs(x_serial)));
}

TEST(Pcsi, MultiRankMatchesSerialWithSameIterations) {
  const int nranks = 3;
  auto p = make_problem(18, 18, 6, nranks, /*periodic=*/true);
  auto bounds = lanczos_bounds_serial(p);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;

  mg::Decomposition d1(18, 18, true, p.stencil->mask(), 18, 18, 1);
  mu::Field x_serial(18, 18, 0.0);
  int serial_iters = 0;
  {
    mc::SerialComm comm;
    mc::HaloExchanger halo(d1);
    ms::DistOperator a(*p.stencil, d1, 0);
    ms::DiagonalPreconditioner m(a);
    mc::DistField b(d1, 0), x(d1, 0);
    b.load_global(p.b_global);
    ms::PcsiSolver solver(bounds, opt);
    auto stats = solver.solve(comm, halo, a, m, b, x);
    ASSERT_TRUE(stats.converged);
    serial_iters = stats.iterations;
    x.store_global(x_serial);
  }

  mu::Field x_parallel(18, 18, 0.0);
  mc::ThreadTeam team(nranks);
  mc::HaloExchanger halo(*p.decomp);
  team.run([&](mc::Communicator& comm) {
    ms::DistOperator a(*p.stencil, *p.decomp, comm.rank());
    ms::DiagonalPreconditioner m(a);
    mc::DistField b(*p.decomp, comm.rank()), x(*p.decomp, comm.rank());
    b.load_global(p.b_global);
    ms::PcsiSolver solver(bounds, opt);
    auto stats = solver.solve(comm, halo, a, m, b, x);
    EXPECT_TRUE(stats.converged);
    // P-CSI iterations are scalar-recurrence-driven: identical across
    // decompositions (no inner products in the iteration itself).
    EXPECT_EQ(stats.iterations, serial_iters);
    x.store_global(x_parallel);
  });
  EXPECT_LT(max_abs_err(x_parallel, x_serial),
            1e-7 * std::max(1.0, max_abs(x_serial)));
}

TEST(Lanczos, BoundsBracketDenseSpectrum) {
  auto p = make_problem(12, 10, 12, 1);
  // Dense spectrum of D^{-1/2} A D^{-1/2} (same as M^{-1}A for diagonal M).
  auto a = p.stencil->to_dense();
  const int n = a.rows();
  ml::DenseMatrix scaled(n, n);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c)
      scaled(r, c) = a(r, c) / std::sqrt(a(r, r) * a(c, c));
  auto eig = ml::symmetric_eigenvalues(scaled);

  mc::SerialComm comm;
  mc::HaloExchanger halo(*p.decomp);
  ms::DistOperator op(*p.stencil, *p.decomp, 0);
  ms::DiagonalPreconditioner m(op);
  ms::LanczosOptions lopt;
  lopt.max_steps = 120;
  lopt.rel_tolerance = 1e-8;
  lopt.safety_margin = 0.0;
  auto res = ms::estimate_eigenvalue_bounds(comm, halo, op, m, lopt);

  // Lanczos converges from inside the spectrum.
  EXPECT_GE(res.raw.nu, eig.front() - 1e-8);
  EXPECT_LE(res.raw.mu, eig.back() + 1e-8);
  // And with this many steps it should be essentially exact.
  EXPECT_NEAR(res.raw.nu, eig.front(), 0.02 * eig.back());
  EXPECT_NEAR(res.raw.mu, eig.back(), 0.02 * eig.back());
}

TEST(Lanczos, PaperToleranceStopsEarly) {
  auto p = make_problem(20, 18, 20, 1);
  mc::SerialComm comm;
  mc::HaloExchanger halo(*p.decomp);
  ms::DistOperator op(*p.stencil, *p.decomp, 0);
  ms::DiagonalPreconditioner m(op);
  ms::LanczosOptions lopt;  // rel_tolerance = 0.15 (paper)
  auto res = ms::estimate_eigenvalue_bounds(comm, halo, op, m, lopt);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.steps, 25);
  EXPECT_GT(res.bounds.mu, res.bounds.nu);
  EXPECT_GT(res.bounds.nu, 0.0);
}

TEST(Lanczos, DeterministicAcrossRankCounts) {
  auto p = make_problem(16, 16, 8, 2);
  ms::LanczosOptions lopt;
  lopt.max_steps = 12;
  lopt.rel_tolerance = -1.0;  // fixed steps

  ms::EigenBounds serial_bounds;
  {
    mg::Decomposition d1(16, 16, false, p.stencil->mask(), 16, 16, 1);
    mc::SerialComm comm;
    mc::HaloExchanger halo(d1);
    ms::DistOperator a(*p.stencil, d1, 0);
    ms::DiagonalPreconditioner m(a);
    serial_bounds = ms::estimate_eigenvalue_bounds(comm, halo, a, m, lopt).raw;
  }
  mc::ThreadTeam team(2);
  mc::HaloExchanger halo(*p.decomp);
  team.run([&](mc::Communicator& comm) {
    ms::DistOperator a(*p.stencil, *p.decomp, comm.rank());
    ms::DiagonalPreconditioner m(a);
    auto res = ms::estimate_eigenvalue_bounds(comm, halo, a, m, lopt);
    // The start vector is a function of the global index, so estimates
    // agree across decompositions up to reduction rounding.
    EXPECT_NEAR(res.raw.nu, serial_bounds.nu, 1e-9);
    EXPECT_NEAR(res.raw.mu, serial_bounds.mu, 1e-9);
  });
}

TEST(FieldOps, LincombAxpyScale) {
  mu::MaskArray mask(8, 8, 1);
  mg::Decomposition d(8, 8, false, mask, 8, 8, 1);
  mc::SerialComm comm;
  mc::DistField x(d, 0), y(d, 0);
  ms::fill_interior(x, 2.0);
  ms::fill_interior(y, 3.0);
  ms::lincomb(comm, 2.0, x, -1.0, y);  // y = 2*2 - 3 = 1
  EXPECT_DOUBLE_EQ(y.at(0, 4, 4), 1.0);
  ms::axpy(comm, 3.0, x, y);  // y = 1 + 6 = 7
  EXPECT_DOUBLE_EQ(y.at(0, 0, 0), 7.0);
  ms::scale(comm, 0.5, y);
  EXPECT_DOUBLE_EQ(y.at(0, 7, 7), 3.5);
  ms::copy_interior(x, y);
  EXPECT_DOUBLE_EQ(y.at(0, 3, 3), 2.0);
  EXPECT_GT(comm.costs().counters().flops, 0u);
}
