#include <gtest/gtest.h>

#include <cmath>

#include "src/comm/serial_comm.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/model/diagnostics.hpp"
#include "src/model/forcing.hpp"
#include "src/model/ocean_model.hpp"

namespace mc = minipop::comm;
namespace mm = minipop::model;
namespace mu = minipop::util;

namespace {

mm::ModelConfig small_config(int nranks = 1) {
  mm::ModelConfig cfg;
  cfg.grid = minipop::grid::pop_1deg_spec(0.1);  // 32 x 38
  cfg.nz = 3;
  cfg.block_size = 16;
  cfg.nranks = nranks;
  cfg.bathymetry.seed = 2015;
  cfg.solver.options.rel_tolerance = 1e-12;
  return cfg;
}

}  // namespace

TEST(Forcing, WindProfileStructure) {
  mm::Forcing f;
  // Easterly trades at the equator, westerlies in mid-latitudes.
  EXPECT_LT(f.wind_stress_x(0.0, 90.0), 0.0);
  EXPECT_GT(f.wind_stress_x(45.0, 90.0), 0.0);
  // Tapered near the pole.
  EXPECT_LT(std::abs(f.wind_stress_x(89.0, 90.0)),
            std::abs(f.wind_stress_x(45.0, 90.0)));
}

TEST(Forcing, SstProfileAndSeason) {
  mm::Forcing f;
  EXPECT_NEAR(f.restoring_sst(0.0, 0.0), f.t_equator, 0.2);
  EXPECT_NEAR(f.restoring_sst(90.0, 0.0), f.t_pole, 0.2);
  // Opposite seasonal phase across hemispheres.
  double north = f.restoring_sst(45.0, 90.0) - f.restoring_sst(45.0, 270.0);
  double south =
      f.restoring_sst(-45.0, 90.0) - f.restoring_sst(-45.0, 270.0);
  EXPECT_GT(north, 0.0);
  EXPECT_LT(south, 0.0);
}

TEST(OceanModel, StepsStablyAndExercisesSolver) {
  mc::SerialComm comm;
  mm::OceanModel model(comm, small_config());
  // dt was auto-selected for a gravity-wave Courant number of ~5.
  EXPECT_GT(model.config().dt, 0.0);
  long total_iters = 0;
  for (int s = 0; s < 72; ++s) {
    auto stats = model.step(comm);
    EXPECT_TRUE(stats.converged);
    total_iters += stats.iterations;
  }
  EXPECT_GT(total_iters, 72);  // solver genuinely iterates
  EXPECT_LT(model.max_speed(comm), 3.0);  // physically sane speeds
  EXPECT_EQ(model.step_count(), 72);
  EXPECT_NEAR(model.time_days(), 72.0 * model.config().dt / 86400.0,
              1e-9);
}

TEST(OceanModel, SshStaysNearZeroMean) {
  mc::SerialComm comm;
  mm::OceanModel model(comm, small_config());
  model.run_days(comm, 2.0);
  // Volume conservation: the free surface may slosh, its mean must not
  // drift far.
  EXPECT_LT(std::abs(model.mean_ssh(comm)), 0.05);
}

TEST(OceanModel, TemperatureStaysPhysical) {
  mc::SerialComm comm;
  mm::OceanModel model(comm, small_config());
  model.run_days(comm, 3.0);
  mu::Array3D<double> t;
  model.gather_temperature(t);
  const auto& cfg = model.config();
  for (double v : std::span<const double>(t.data(), t.size())) {
    EXPECT_GT(v, cfg.t_pole - cfg.t_seasonal - 5.0);
    EXPECT_LT(v, cfg.t_equator + cfg.t_seasonal + 5.0);
  }
  // The flow actually moves: kinetic energy is nonzero.
  EXPECT_GT(model.kinetic_energy(comm), 0.0);
}

TEST(OceanModel, BitwiseDeterministic) {
  mc::SerialComm c1, c2;
  mm::OceanModel m1(c1, small_config());
  mm::OceanModel m2(c2, small_config());
  for (int s = 0; s < 36; ++s) {
    m1.step(c1);
    m2.step(c2);
  }
  mu::Array3D<double> t1, t2;
  m1.gather_temperature(t1);
  m2.gather_temperature(t2);
  for (std::size_t n = 0; n < t1.size(); ++n)
    ASSERT_EQ(t1.data()[n], t2.data()[n]) << "cell " << n;
}

TEST(OceanModel, TinyPerturbationStaysTinyInitially) {
  mc::SerialComm c1, c2;
  mm::OceanModel m1(c1, small_config());
  mm::OceanModel m2(c2, small_config());
  m2.perturb_temperature(1e-14, 42);
  for (int s = 0; s < 10; ++s) {
    m1.step(c1);
    m2.step(c2);
  }
  mu::Array3D<double> t1, t2;
  m1.gather_temperature(t1);
  m2.gather_temperature(t2);
  double max_diff = 0;
  for (std::size_t n = 0; n < t1.size(); ++n)
    max_diff = std::max(max_diff, std::abs(t1.data()[n] - t2.data()[n]));
  EXPECT_GT(max_diff, 0.0);   // the perturbation is there...
  EXPECT_LT(max_diff, 1e-8);  // ...but has not blown up in 10 steps
}

TEST(OceanModel, MultiRankRunsAndAgreesApproximately) {
  auto cfg = small_config(3);
  // Serial reference.
  mc::SerialComm scomm;
  auto scfg = cfg;
  scfg.nranks = 1;
  mm::OceanModel serial(scomm, scfg);
  serial.run_days(scomm, 0.5);
  const double serial_mean = serial.mean_temperature(scomm);
  const double serial_ke = serial.kinetic_energy(scomm);

  mc::ThreadTeam team(3);
  team.run([&](mc::Communicator& comm) {
    mm::OceanModel model(comm, cfg);
    model.run_days(comm, 0.5);
    // Different reduction orders / block layouts: results agree to
    // solver-tolerance level, not bitwise.
    EXPECT_NEAR(model.mean_temperature(comm), serial_mean,
                1e-6 * std::abs(serial_mean));
    EXPECT_NEAR(model.kinetic_energy(comm), serial_ke,
                1e-4 * std::max(1.0, serial_ke));
  });
}

TEST(OceanModel, PcsiAndChronGearProduceConsistentOcean) {
  // Swapping the solver must not change the ocean beyond solver
  // tolerance over a short run — the premise of the paper's §6 analysis.
  auto cfg_cg = small_config();
  auto cfg_pcsi = small_config();
  cfg_pcsi.solver.solver = minipop::solver::SolverKind::kPcsi;
  cfg_pcsi.solver.preconditioner =
      minipop::solver::PreconditionerKind::kBlockEvp;
  mc::SerialComm c1, c2;
  mm::OceanModel m1(c1, cfg_cg);
  mm::OceanModel m2(c2, cfg_pcsi);
  for (int s = 0; s < 72; ++s) {
    m1.step(c1);
    m2.step(c2);
  }
  EXPECT_NEAR(m1.mean_temperature(c1), m2.mean_temperature(c2), 1e-7);
  mu::Field ssh1, ssh2;
  m1.gather_ssh(ssh1);
  m2.gather_ssh(ssh2);
  double max_diff = 0;
  for (int j = 0; j < ssh1.ny(); ++j)
    for (int i = 0; i < ssh1.nx(); ++i)
      max_diff = std::max(max_diff, std::abs(ssh1(i, j) - ssh2(i, j)));
  EXPECT_LT(max_diff, 1e-6);
}

TEST(MonthlyRecorder, AccumulatesCalendarMonths) {
  mc::SerialComm comm;
  auto cfg = small_config();
  mm::OceanModel model(comm, cfg);
  mm::MonthlyTemperatureRecorder rec(model);
  const long steps_per_month = static_cast<long>(
      std::llround(30.0 * 86400.0 / model.config().dt));
  for (long s = 0; s < 2 * steps_per_month + 3; ++s) {
    model.step(comm);
    rec.sample(model);
  }
  EXPECT_EQ(rec.completed_months(), 2);
  const auto& m0 = rec.months()[0];
  EXPECT_EQ(m0.nx(), model.grid().nx());
  EXPECT_EQ(m0.nz(), cfg.nz);
  // Monthly means are physical temperatures on ocean points.
  bool any_nonzero = false;
  for (std::size_t n = 0; n < m0.size(); ++n)
    if (m0.data()[n] != 0.0) any_nonzero = true;
  EXPECT_TRUE(any_nonzero);
}
