// Parameterized property sweeps: every (solver x preconditioner) pair on
// the same masked problem, stencil invariants across grid families,
// halo-exchange correctness across decomposition shapes, EVP exactness
// across tile shapes, and tridiagonal eigenvalues across sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "src/comm/serial_comm.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/evp/evp_solver.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/linalg/dense.hpp"
#include "src/linalg/tridiag_eigen.hpp"
#include "src/solver/solver_factory.hpp"
#include "src/util/rng.hpp"

namespace mc = minipop::comm;
namespace me = minipop::evp;
namespace mg = minipop::grid;
namespace ml = minipop::linalg;
namespace ms = minipop::solver;
namespace mu = minipop::util;

// ---------------------------------------------------------------------
// Every solver x preconditioner combination solves the same masked
// problem to the same answer.
// ---------------------------------------------------------------------

class SolverMatrixTest
    : public ::testing::TestWithParam<
          std::tuple<ms::SolverKind, ms::PreconditionerKind>> {};

TEST_P(SolverMatrixTest, SolvesMaskedAnisotropicProblem) {
  const auto [solver_kind, precond_kind] = GetParam();

  mg::GridSpec spec;
  spec.kind = mg::GridKind::kUniform;
  spec.nx = 22;
  spec.ny = 18;
  spec.periodic_x = false;
  spec.dx = 1.0e4;
  spec.dy = 1.2e4;
  mg::CurvilinearGrid g(spec);
  auto depth = mg::bowl_bathymetry(g, 4000.0);
  depth(11, 9) = 0.0;  // island
  depth(12, 9) = 0.0;
  mg::NinePointStencil st(g, depth, 1e-6);
  mg::Decomposition d(22, 18, false, st.mask(), 11, 9, 1);
  mc::HaloExchanger halo(d);
  mc::SerialComm comm;

  ms::SolverConfig cfg;
  cfg.solver = solver_kind;
  cfg.preconditioner = precond_kind;
  cfg.options.rel_tolerance = 1e-11;
  cfg.evp.max_tile = 9;
  cfg.lanczos.rel_tolerance = 0.02;
  ms::BarotropicSolver solver(comm, halo, g, depth, st, d, cfg);

  mu::Xoshiro256 rng(3);
  mc::DistField b(d, 0), x(d, 0);
  mu::Field b_global(22, 18, 0.0);
  for (int j = 0; j < 18; ++j)
    for (int i = 0; i < 22; ++i)
      if (st.mask()(i, j)) b_global(i, j) = rng.uniform(-1, 1);
  b.load_global(b_global);

  auto stats = solver.solve(comm, b, x);
  ASSERT_TRUE(stats.converged) << solver.description();

  // Dense reference.
  auto a = st.to_dense();
  std::vector<double> bv(22 * 18);
  for (int j = 0; j < 18; ++j)
    for (int i = 0; i < 22; ++i) bv[j * 22 + i] = b_global(i, j);
  auto xv = ml::cholesky_solve(a, bv);
  mu::Field x_global(22, 18, 0.0);
  x.store_global(x_global);
  double scale = 0;
  for (double v : xv) scale = std::max(scale, std::abs(v));
  for (int j = 0; j < 18; ++j)
    for (int i = 0; i < 22; ++i)
      EXPECT_NEAR(x_global(i, j), xv[j * 22 + i], 1e-6 * scale)
          << solver.description() << " at (" << i << "," << j << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, SolverMatrixTest,
    ::testing::Combine(
        ::testing::Values(ms::SolverKind::kPcg, ms::SolverKind::kChronGear,
                          ms::SolverKind::kPcsi,
                          ms::SolverKind::kPipelinedCg),
        ::testing::Values(ms::PreconditionerKind::kIdentity,
                          ms::PreconditionerKind::kDiagonal,
                          ms::PreconditionerKind::kBlockEvp)),
    [](const auto& info) {
      std::string name = ms::to_string(std::get<0>(info.param)) + "_" +
                         ms::to_string(std::get<1>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ---------------------------------------------------------------------
// Stencil invariants across grid families and masks.
// ---------------------------------------------------------------------

class StencilPropertyTest
    : public ::testing::TestWithParam<std::tuple<mg::GridKind, bool, int>> {
 protected:
  void build() {
    const auto [kind, periodic, seed] = GetParam();
    mg::GridSpec spec;
    spec.kind = kind;
    spec.nx = 16;
    spec.ny = 14;
    spec.periodic_x = periodic;
    spec.dx = 9.0e3;
    spec.dy = 1.15e4;
    grid_ = std::make_unique<mg::CurvilinearGrid>(spec);
    // Random masked depth: ~20% land.
    depth_ = mu::Field(16, 14, 0.0);
    mu::Xoshiro256 rng(seed);
    for (int j = 0; j < 14; ++j)
      for (int i = 0; i < 16; ++i)
        depth_(i, j) = rng.uniform() < 0.8 ? rng.uniform(100, 5000) : 0.0;
    stencil_ = std::make_unique<mg::NinePointStencil>(*grid_, depth_,
                                                      2e-7);
  }
  std::unique_ptr<mg::CurvilinearGrid> grid_;
  mu::Field depth_;
  std::unique_ptr<mg::NinePointStencil> stencil_;
};

TEST_P(StencilPropertyTest, SymmetricPositiveDefinite) {
  build();
  auto a = stencil_->to_dense();
  EXPECT_TRUE(a.is_symmetric(1e-9));
  std::vector<double> ones(a.rows(), 1.0);
  EXPECT_NO_THROW(ml::cholesky_solve(a, ones));
}

TEST_P(StencilPropertyTest, RowSumsArePhiArea) {
  build();
  for (int j = 0; j < 14; ++j)
    for (int i = 0; i < 16; ++i) {
      double sum = 0;
      for (int d = 0; d < mg::kNumDirs; ++d)
        sum += stencil_->coeff(static_cast<mg::Dir>(d))(i, j);
      EXPECT_NEAR(sum, stencil_->phi() * grid_->area_t()(i, j),
                  1e-8 * std::max(1.0, stencil_->diagonal()(i, j)));
    }
}

TEST_P(StencilPropertyTest, NoCouplingAcrossCoastlines) {
  build();
  const auto& mask = stencil_->mask();
  for (int j = 0; j < 14; ++j)
    for (int i = 0; i < 16; ++i)
      for (int d = 1; d < mg::kNumDirs; ++d) {
        auto [di, dj] = mg::kDirOffset[d];
        int ii = i + di;
        const int jj = j + dj;
        if (jj < 0 || jj >= 14) continue;
        if (stencil_->periodic_x())
          ii = (ii % 16 + 16) % 16;
        else if (ii < 0 || ii >= 16)
          continue;
        if (mask(i, j) != mask(ii, jj)) {
          EXPECT_EQ(stencil_->coeff(static_cast<mg::Dir>(d))(i, j), 0.0);
        }
      }
}

TEST_P(StencilPropertyTest, ApplyAgreesWithDense) {
  build();
  auto a = stencil_->to_dense();
  mu::Xoshiro256 rng(77);
  mu::Field x(16, 14), y;
  std::vector<double> xv(16 * 14);
  for (int j = 0; j < 14; ++j)
    for (int i = 0; i < 16; ++i) {
      x(i, j) = rng.uniform(-1, 1);
      xv[j * 16 + i] = x(i, j);
    }
  stencil_->apply(x, y);
  auto yv = a.apply(xv);
  for (int j = 0; j < 14; ++j)
    for (int i = 0; i < 16; ++i)
      EXPECT_NEAR(y(i, j), yv[j * 16 + i],
                  1e-7 * std::max(1.0, std::abs(yv[j * 16 + i])));
}

namespace {
std::string grid_kind_name(mg::GridKind k) {
  switch (k) {
    case mg::GridKind::kUniform: return "uniform";
    case mg::GridKind::kLatLon: return "latlon";
    case mg::GridKind::kDisplacedPole: return "dipole";
  }
  return "unknown";
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(
    GridFamilies, StencilPropertyTest,
    ::testing::Combine(::testing::Values(mg::GridKind::kUniform,
                                         mg::GridKind::kLatLon,
                                         mg::GridKind::kDisplacedPole),
                       ::testing::Bool(), ::testing::Values(11, 23)),
    [](const auto& info) {
      return grid_kind_name(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_periodic" : "_closed") +
             "_seed" + std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Halo exchange across decomposition shapes and rank counts.
// ---------------------------------------------------------------------

class HaloPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<std::pair<int, int>, bool, int, int, int>> {};

TEST_P(HaloPropertyTest, HalosMatchGlobalField) {
  const auto [dims, periodic, block, ranks, halo_width] = GetParam();
  const auto [nx, ny] = dims;
  mu::MaskArray mask(nx, ny, 1);
  mg::Decomposition d(nx, ny, periodic, mask, block, block, ranks);
  mu::Field global(nx, ny);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) global(i, j) = 1 + i + 1000.0 * j;
  mc::HaloExchanger hx(d);

  auto check = [&](const mc::DistField& f) {
    for (int lb = 0; lb < f.num_local_blocks(); ++lb) {
      const auto& b = f.info(lb);
      for (int j = -halo_width; j < b.ny + halo_width; ++j)
        for (int i = -halo_width; i < b.nx + halo_width; ++i) {
          if (i >= 0 && i < b.nx && j >= 0 && j < b.ny) continue;
          int gi = b.i0 + i;
          const int gj = b.j0 + j;
          double expected = 0.0;
          if (gj >= 0 && gj < ny) {
            if (periodic) gi = (gi % nx + nx) % nx;
            if (gi >= 0 && gi < nx) expected = global(gi, gj);
          }
          ASSERT_DOUBLE_EQ(f.at(lb, i, j), expected);
        }
    }
  };

  if (ranks == 1) {
    mc::SerialComm comm;
    mc::DistField f(d, 0, halo_width);
    f.load_global(global);
    hx.exchange(comm, f);
    check(f);
  } else {
    mc::ThreadTeam team(ranks);
    team.run([&](mc::Communicator& comm) {
      mc::DistField f(d, comm.rank(), halo_width);
      f.load_global(global);
      hx.exchange(comm, f);
      check(f);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HaloPropertyTest,
    ::testing::Combine(
        ::testing::Values(std::pair{16, 12}, std::pair{15, 10},
                          std::pair{24, 8}),
        ::testing::Bool(), ::testing::Values(4, 6),
        ::testing::Values(1, 3), ::testing::Values(1, 2)),
    [](const auto& info) {
      return "g" + std::to_string(std::get<0>(info.param).first) + "x" +
             std::to_string(std::get<0>(info.param).second) +
             (std::get<1>(info.param) ? "_per" : "_clo") + "_b" +
             std::to_string(std::get<2>(info.param)) + "_r" +
             std::to_string(std::get<3>(info.param)) + "_h" +
             std::to_string(std::get<4>(info.param));
    });

// ---------------------------------------------------------------------
// EVP tile exactness across tile shapes (including rectangles).
// ---------------------------------------------------------------------

class EvpShapeTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(EvpShapeTest, SolvesDirichletTileExactly) {
  const auto [tnx, tny] = GetParam();
  mg::GridSpec spec;
  spec.kind = mg::GridKind::kUniform;
  spec.nx = tnx + 4;
  spec.ny = tny + 4;
  spec.periodic_x = false;
  spec.dx = 1.0e4;
  spec.dy = 1.2e4;
  mg::CurvilinearGrid g(spec);
  auto depth = mg::flat_bathymetry(g, 2600.0);
  mg::NinePointStencil st(g, depth, 1e-6);
  std::array<mu::Field, mg::kNumDirs> coeff;
  for (int d = 0; d < mg::kNumDirs; ++d)
    coeff[d] = st.coeff(static_cast<mg::Dir>(d));

  me::EvpTileSolver evp(coeff, 2, 2, tnx, tny);
  mu::Xoshiro256 rng(9);
  mu::Field x_true(tnx, tny), y, x;
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  evp.apply_operator(x_true, y);
  evp.solve(y, x);
  for (int j = 0; j < tny; ++j)
    for (int i = 0; i < tnx; ++i)
      EXPECT_NEAR(x(i, j), x_true(i, j), 1e-6)
          << tnx << "x" << tny << " at (" << i << "," << j << ")";
}

INSTANTIATE_TEST_SUITE_P(
    TileShapes, EvpShapeTest,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 8}, std::pair{8, 1},
                      std::pair{2, 2}, std::pair{3, 12}, std::pair{12, 3},
                      std::pair{7, 9}, std::pair{12, 12}),
    [](const auto& info) {
      return std::to_string(info.param.first) + "x" +
             std::to_string(info.param.second);
    });

// ---------------------------------------------------------------------
// Tridiagonal eigensolver across sizes.
// ---------------------------------------------------------------------

class TridiagSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(TridiagSizeTest, MatchesAnalyticLaplacianSpectrum) {
  const int n = GetParam();
  ml::Tridiagonal t;
  t.d.assign(n, 2.0);
  t.e.assign(n - 1, -1.0);
  auto ext = ml::tridiag_extreme_eigenvalues(t);
  EXPECT_NEAR(ext.min, 2.0 - 2.0 * std::cos(M_PI / (n + 1)), 1e-9);
  EXPECT_NEAR(ext.max, 2.0 - 2.0 * std::cos(n * M_PI / (n + 1)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TridiagSizeTest,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 55, 144));

// ---------------------------------------------------------------------
// The full ocean model steps stably under every solver configuration.
// ---------------------------------------------------------------------

#include "src/model/ocean_model.hpp"

class ModelSolverSweep
    : public ::testing::TestWithParam<
          std::tuple<ms::SolverKind, ms::PreconditionerKind>> {};

TEST_P(ModelSolverSweep, ShortRunIsStableAndConverges) {
  const auto [solver_kind, precond_kind] = GetParam();
  minipop::model::ModelConfig cfg;
  cfg.grid = mg::pop_1deg_spec(0.08);
  cfg.nz = 2;
  cfg.block_size = 12;
  cfg.nranks = 1;
  cfg.solver.solver = solver_kind;
  cfg.solver.preconditioner = precond_kind;
  // Pipelined CG's attainable accuracy stagnates above POP's production
  // 1e-13 (see pipelined_cg.hpp); run it at its documented limit.
  if (solver_kind == ms::SolverKind::kPipelinedCg)
    cfg.solver.options.rel_tolerance = 1e-10;
  mc::SerialComm comm;
  minipop::model::OceanModel model(comm, cfg);
  for (int s = 0; s < 15; ++s) {
    auto stats = model.step(comm);
    ASSERT_TRUE(stats.converged)
        << ms::to_string(solver_kind) << "+" << ms::to_string(precond_kind)
        << " step " << s;
  }
  EXPECT_LT(model.max_speed(comm), 2.0);
  EXPECT_TRUE(std::isfinite(model.mean_temperature(comm)));
  EXPECT_TRUE(std::isfinite(model.kinetic_energy(comm)));
}

// pipecg+block-evp is deliberately absent: warm-started solves sitting
// near convergence stagnate below pipelined CG's attainable accuracy
// (see pipelined_cg.hpp) — cold-started correctness for that pairing is
// covered by SolverMatrixTest. One more data point for the paper's
// choice of the Chebyshev route over communication-hiding CG variants.
INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, ModelSolverSweep,
    ::testing::Values(
        std::tuple{ms::SolverKind::kPcg,
                   ms::PreconditionerKind::kDiagonal},
        std::tuple{ms::SolverKind::kPcg,
                   ms::PreconditionerKind::kBlockEvp},
        std::tuple{ms::SolverKind::kChronGear,
                   ms::PreconditionerKind::kDiagonal},
        std::tuple{ms::SolverKind::kChronGear,
                   ms::PreconditionerKind::kBlockEvp},
        std::tuple{ms::SolverKind::kPcsi,
                   ms::PreconditionerKind::kDiagonal},
        std::tuple{ms::SolverKind::kPcsi,
                   ms::PreconditionerKind::kBlockEvp},
        std::tuple{ms::SolverKind::kPipelinedCg,
                   ms::PreconditionerKind::kDiagonal}),
    [](const auto& info) {
      std::string name = ms::to_string(std::get<0>(info.param)) + "_" +
                         ms::to_string(std::get<1>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ---------------------------------------------------------------------
// Decomposition invariants across block geometries and rank counts.
// ---------------------------------------------------------------------

class DecompositionSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool, int>> {};

TEST_P(DecompositionSweep, PartitionInvariants) {
  const auto [block, ranks, periodic, seed] = GetParam();
  mg::CurvilinearGrid g(mg::pop_1deg_spec(0.15));
  mg::BathymetryOptions bopt;
  bopt.seed = static_cast<std::uint64_t>(seed);
  auto depth = mg::synthetic_earth_bathymetry(g, bopt);
  auto mask = mg::ocean_mask(depth);
  mg::Decomposition d(g.nx(), g.ny(), periodic, mask, block, block, ranks);

  // Every ocean cell lands in exactly one active block; no active block
  // is all land.
  mu::Array2D<int> covered(g.nx(), g.ny(), 0);
  long ocean_in_blocks = 0;
  for (const auto& b : d.blocks()) {
    EXPECT_GT(b.ocean_cells, 0);
    EXPECT_GE(b.owner, 0);
    EXPECT_LT(b.owner, ranks);
    for (int j = 0; j < b.ny; ++j)
      for (int i = 0; i < b.nx; ++i) {
        covered(b.i0 + i, b.j0 + j) += 1;
        if (mask(b.i0 + i, b.j0 + j)) ++ocean_in_blocks;
      }
  }
  for (int j = 0; j < g.ny(); ++j)
    for (int i = 0; i < g.nx(); ++i) {
      EXPECT_LE(covered(i, j), 1);
      if (mask(i, j)) {
        EXPECT_EQ(covered(i, j), 1);
      }
    }
  EXPECT_EQ(ocean_in_blocks, mg::count_ocean(mask));

  // Neighbor relation is symmetric.
  for (const auto& b : d.blocks()) {
    for (int dir = 1; dir < mg::kNumDirs; ++dir) {
      const int nid = d.neighbor(b.id, static_cast<mg::Dir>(dir));
      if (nid < 0) continue;
      bool back = false;
      for (int rdir = 1; rdir < mg::kNumDirs; ++rdir)
        if (d.neighbor(nid, static_cast<mg::Dir>(rdir)) == b.id)
          back = true;
      EXPECT_TRUE(back) << "asymmetric neighbors " << b.id << " / " << nid;
    }
  }

  // Load balance stays sane for these block/rank combinations.
  EXPECT_LT(d.load_imbalance(), 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, DecompositionSweep,
    ::testing::Combine(::testing::Values(6, 8, 12), ::testing::Values(1, 4),
                       ::testing::Bool(), ::testing::Values(2015, 77)),
    [](const auto& info) {
      return "b" + std::to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_per" : "_clo") + "_s" +
             std::to_string(std::get<3>(info.param));
    });
