// Tests for the extension features: pipelined CG (Ghysels-Vanroose, the
// paper's ref [16] alternative), residual-history recording, and model
// checkpoint/restart.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "src/comm/serial_comm.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/linalg/dense.hpp"
#include "src/model/ocean_model.hpp"
#include "src/solver/chron_gear.hpp"
#include "src/solver/pipelined_cg.hpp"
#include "src/solver/solver_factory.hpp"
#include "src/util/rng.hpp"

namespace mc = minipop::comm;
namespace mg = minipop::grid;
namespace ml = minipop::linalg;
namespace mm = minipop::model;
namespace ms = minipop::solver;
namespace mu = minipop::util;

namespace {

struct SmallProblem {
  std::unique_ptr<mg::CurvilinearGrid> grid;
  mu::Field depth;
  std::unique_ptr<mg::NinePointStencil> stencil;
  std::unique_ptr<mg::Decomposition> decomp;
  mu::Field b_global;
};

SmallProblem make_problem() {
  SmallProblem p;
  mg::GridSpec spec;
  spec.kind = mg::GridKind::kUniform;
  spec.nx = 20;
  spec.ny = 16;
  spec.periodic_x = false;
  spec.dx = 1.0e4;
  spec.dy = 1.2e4;
  p.grid = std::make_unique<mg::CurvilinearGrid>(spec);
  p.depth = mg::bowl_bathymetry(*p.grid, 4000.0);
  p.stencil = std::make_unique<mg::NinePointStencil>(*p.grid, p.depth,
                                                     1e-6);
  p.decomp = std::make_unique<mg::Decomposition>(20, 16, false,
                                                 p.stencil->mask(), 20, 16,
                                                 1);
  p.b_global = mu::Field(20, 16, 0.0);
  mu::Xoshiro256 rng(21);
  for (int j = 0; j < 16; ++j)
    for (int i = 0; i < 20; ++i)
      if (p.stencil->mask()(i, j)) p.b_global(i, j) = rng.uniform(-1, 1);
  return p;
}

}  // namespace

TEST(PipelinedCg, MatchesChronGearSolutionAndIterations) {
  auto p = make_problem();
  mc::SerialComm comm;
  mc::HaloExchanger halo(*p.decomp);
  ms::DistOperator a(*p.stencil, *p.decomp, 0);
  ms::DiagonalPreconditioner m(a);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-11;

  mc::DistField b(*p.decomp, 0), x1(*p.decomp, 0), x2(*p.decomp, 0);
  b.load_global(p.b_global);

  ms::ChronGearSolver cg(opt);
  auto s1 = cg.solve(comm, halo, a, m, b, x1);
  ms::PipelinedCgSolver pipe(opt);
  auto s2 = pipe.solve(comm, halo, a, m, b, x2);

  ASSERT_TRUE(s1.converged);
  ASSERT_TRUE(s2.converged);
  // Same Krylov method, same iteration count up to check granularity.
  EXPECT_NEAR(s1.iterations, s2.iterations, opt.check_frequency);
  mu::Field g1(20, 16, 0.0), g2(20, 16, 0.0);
  x1.store_global(g1);
  x2.store_global(g2);
  for (int j = 0; j < 16; ++j)
    for (int i = 0; i < 20; ++i) EXPECT_NEAR(g1(i, j), g2(i, j), 1e-6);
}

TEST(PipelinedCg, OneFusedReductionPerIteration) {
  auto p = make_problem();
  mc::SerialComm comm;
  mc::HaloExchanger halo(*p.decomp);
  ms::DistOperator a(*p.stencil, *p.decomp, 0);
  ms::DiagonalPreconditioner m(a);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  ms::PipelinedCgSolver pipe(opt);
  mc::DistField b(*p.decomp, 0), x(*p.decomp, 0);
  b.load_global(p.b_global);
  auto stats = pipe.solve(comm, halo, a, m, b, x);
  ASSERT_TRUE(stats.converged);
  // iterations + the initial ||b|| reduction.
  EXPECT_EQ(stats.costs.allreduces,
            static_cast<std::uint64_t>(stats.iterations) + 1);
  // One matvec (A m) per completed iteration; the converging iteration
  // breaks before its matvec; plus the two startup applies (r0, w0) and
  // two extra applies per periodic residual replacement (every 25
  // completed iterations).
  const std::uint64_t replacements = (stats.iterations - 1) / 25;
  EXPECT_EQ(stats.costs.halo_exchanges,
            static_cast<std::uint64_t>(stats.iterations) + 1 +
                2 * replacements);
}

TEST(PipelinedCg, AvailableThroughFactory) {
  EXPECT_EQ(ms::solver_kind_from_string("pipecg"),
            ms::SolverKind::kPipelinedCg);
  EXPECT_EQ(ms::to_string(ms::SolverKind::kPipelinedCg), "pipecg");
}

TEST(ResidualHistory, RecordedAtCheckpointsAndDecreasing) {
  auto p = make_problem();
  mc::SerialComm comm;
  mc::HaloExchanger halo(*p.decomp);
  ms::DistOperator a(*p.stencil, *p.decomp, 0);
  ms::DiagonalPreconditioner m(a);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-11;
  opt.record_residuals = true;
  ms::ChronGearSolver solver(opt);
  mc::DistField b(*p.decomp, 0), x(*p.decomp, 0);
  b.load_global(p.b_global);
  auto stats = solver.solve(comm, halo, a, m, b, x);
  ASSERT_TRUE(stats.converged);
  ASSERT_GE(stats.residual_history.size(), 2u);
  for (std::size_t k = 0; k < stats.residual_history.size(); ++k) {
    EXPECT_EQ(stats.residual_history[k].first,
              static_cast<int>(k + 1) * opt.check_frequency);
  }
  // CG residuals measured every 10 iterations decrease in practice.
  EXPECT_LT(stats.residual_history.back().second,
            stats.residual_history.front().second);
  EXPECT_LE(stats.residual_history.back().second, opt.rel_tolerance);

  // Off by default.
  opt.record_residuals = false;
  ms::ChronGearSolver quiet(opt);
  mc::DistField x2(*p.decomp, 0);
  auto stats2 = quiet.solve(comm, halo, a, m, b, x2);
  EXPECT_TRUE(stats2.residual_history.empty());
}

// --- Checkpoint / restart ------------------------------------------------

namespace {
mm::ModelConfig tiny_model() {
  mm::ModelConfig cfg;
  cfg.grid = minipop::grid::pop_1deg_spec(0.08);
  cfg.nz = 2;
  cfg.block_size = 12;
  cfg.nranks = 1;
  return cfg;
}
}  // namespace

TEST(Checkpoint, RestartReproducesTrajectoryBitwise) {
  mc::SerialComm c1;
  mm::OceanModel m1(c1, tiny_model());
  for (int s = 0; s < 20; ++s) m1.step(c1);
  std::stringstream snapshot;
  m1.save_state(snapshot);
  for (int s = 0; s < 15; ++s) m1.step(c1);
  mu::Array3D<double> t_direct;
  m1.gather_temperature(t_direct);

  mc::SerialComm c2;
  mm::OceanModel m2(c2, tiny_model());
  m2.load_state(c2, snapshot);
  EXPECT_EQ(m2.step_count(), 20);
  for (int s = 0; s < 15; ++s) m2.step(c2);
  mu::Array3D<double> t_restart;
  m2.gather_temperature(t_restart);

  for (std::size_t n = 0; n < t_direct.size(); ++n)
    ASSERT_EQ(t_direct.data()[n], t_restart.data()[n]) << "cell " << n;
  EXPECT_EQ(m1.step_count(), m2.step_count());
}

TEST(Checkpoint, RejectsWrongShape) {
  mc::SerialComm c1;
  mm::OceanModel m1(c1, tiny_model());
  std::stringstream snapshot;
  m1.save_state(snapshot);

  auto other = tiny_model();
  other.nz = 3;  // different vertical levels
  mc::SerialComm c2;
  mm::OceanModel m2(c2, other);
  EXPECT_THROW(m2.load_state(c2, snapshot), mu::Error);
}

TEST(Checkpoint, RejectsGarbage) {
  mc::SerialComm comm;
  mm::OceanModel m(comm, tiny_model());
  std::stringstream garbage("this is not a checkpoint");
  EXPECT_THROW(m.load_state(comm, garbage), mu::Error);
}
