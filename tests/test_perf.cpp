#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/perf/pop_timing_model.hpp"

namespace mp = minipop::perf;

namespace {

mp::PopTimingModel yellowstone_0p1() {
  auto grid = mp::pop_0p1deg_case();
  return mp::PopTimingModel(mp::yellowstone_profile(), grid,
                            mp::paper_iteration_model(grid));
}

mp::PopTimingModel yellowstone_1deg() {
  auto grid = mp::pop_1deg_case();
  return mp::PopTimingModel(mp::yellowstone_profile(), grid,
                            mp::paper_iteration_model(grid));
}

mp::PopTimingModel edison_0p1() {
  auto grid = mp::pop_0p1deg_case();
  return mp::PopTimingModel(mp::edison_profile(), grid,
                            mp::paper_iteration_model(grid));
}

}  // namespace

TEST(CostEquations, PaperOperationCounts) {
  // Eq. 2: 18 ops/pt for cg+diag (15 + 1 + 2 masking); Eq. 3: 13 for
  // pcsi+diag; Eq. 5: 31; Eq. 6: 26.
  EXPECT_DOUBLE_EQ(mp::compute_ops_per_point(mp::Config::kCgDiag) +
                       mp::kMaskOpsPerPoint,
                   18.0);
  EXPECT_DOUBLE_EQ(mp::compute_ops_per_point(mp::Config::kPcsiDiag), 13.0);
  EXPECT_DOUBLE_EQ(mp::compute_ops_per_point(mp::Config::kCgEvp) +
                       mp::kMaskOpsPerPoint,
                   31.0);
  EXPECT_DOUBLE_EQ(mp::compute_ops_per_point(mp::Config::kPcsiEvp), 26.0);
}

TEST(CostEquations, ReductionsPerIteration) {
  EXPECT_DOUBLE_EQ(
      mp::reductions_per_iteration(mp::Config::kCgDiag, 10), 1.0);
  EXPECT_DOUBLE_EQ(
      mp::reductions_per_iteration(mp::Config::kPcsiEvp, 10), 0.1);
}

TEST(CostEquations, ComponentsScaleCorrectly) {
  auto m = mp::yellowstone_profile();
  const long points = 3600L * 2400L;
  auto c1 = mp::iteration_costs(m, mp::Config::kCgDiag, points, 1000, 10);
  auto c2 = mp::iteration_costs(m, mp::Config::kCgDiag, points, 4000, 10);
  // Computation scales ~1/p.
  EXPECT_NEAR(c1.computation / c2.computation, 4.0, 0.01);
  // Halo shrinks but has the 4 alpha floor.
  EXPECT_GT(c1.halo, c2.halo);
  EXPECT_GT(c2.halo, 4.0 * m.alpha_p2p * 0.999);
  // Reduction grows with p once the tree dominates the masking.
  auto c3 = mp::iteration_costs(m, mp::Config::kCgDiag, points, 16000, 10);
  EXPECT_GT(c3.reduction, c2.reduction);
}

TEST(TimingModel, YellowstoneHighResAnchors) {
  // Paper §5.2 anchor numbers at 16,875 Yellowstone cores.
  auto model = yellowstone_0p1();
  const int p = 16875;
  const double cg = model.barotropic_per_day(mp::Config::kCgDiag, p).total();
  const double pcsi_diag =
      model.barotropic_per_day(mp::Config::kPcsiDiag, p).total();
  const double pcsi_evp =
      model.barotropic_per_day(mp::Config::kPcsiEvp, p).total();
  EXPECT_NEAR(cg, 19.0, 5.0);           // paper: 19.0 s/day
  EXPECT_NEAR(pcsi_diag, 4.4, 1.5);     // paper: 4.4 s/day (4.3x)
  EXPECT_NEAR(cg / pcsi_evp, 5.2, 1.5); // paper: 5.2x
  // Simulation rates: 6.2 -> 10.5 simulated years/day (Fig. 8 right).
  EXPECT_NEAR(model.simulated_years_per_day(mp::Config::kCgDiag, p), 6.2,
              1.5);
  EXPECT_NEAR(model.simulated_years_per_day(mp::Config::kPcsiEvp, p), 10.5,
              2.0);
}

TEST(TimingModel, ComponentFractionsMatchFigs1And9) {
  auto model = yellowstone_0p1();
  // Fig. 1: barotropic ~5% at 470 cores, ~50% at 16,875 with cg+diag.
  EXPECT_NEAR(model.barotropic_fraction(mp::Config::kCgDiag, 470), 0.05,
              0.04);
  EXPECT_NEAR(model.barotropic_fraction(mp::Config::kCgDiag, 16875), 0.50,
              0.08);
  // Fig. 9: ~16% with pcsi+evp at 16,875.
  EXPECT_NEAR(model.barotropic_fraction(mp::Config::kPcsiEvp, 16875), 0.16,
              0.06);
}

TEST(TimingModel, ChronGearDegradesWherePcsiStaysFlat) {
  auto model = yellowstone_0p1();
  // Fig. 8: ChronGear performance degrades beyond ~2,700 cores...
  const double cg_2700 =
      model.barotropic_per_day(mp::Config::kCgDiag, 2700).total();
  const double cg_16875 =
      model.barotropic_per_day(mp::Config::kCgDiag, 16875).total();
  EXPECT_GT(cg_16875, cg_2700);
  // ...while P-CSI keeps improving or stays flat.
  const double pcsi_2700 =
      model.barotropic_per_day(mp::Config::kPcsiEvp, 2700).total();
  const double pcsi_16875 =
      model.barotropic_per_day(mp::Config::kPcsiEvp, 16875).total();
  EXPECT_LT(pcsi_16875, pcsi_2700 * 1.1);
}

TEST(TimingModel, ReductionTimeHasInteriorMinimum) {
  // Fig. 10 left: the global-reduction time decreases until ~1,200
  // cores (masking shrinks), then grows (tree + noise).
  auto model = yellowstone_0p1();
  std::vector<int> ps = {470, 1200, 2700, 5400, 16875};
  std::vector<double> red;
  for (int p : ps)
    red.push_back(model.barotropic_per_day(mp::Config::kCgDiag, p).reduction);
  auto min_it = std::min_element(red.begin(), red.end());
  EXPECT_NE(min_it, red.begin());
  EXPECT_NE(min_it, red.end() - 1);
  // Halo time decreases monotonically (Fig. 10 right).
  for (std::size_t k = 1; k < ps.size(); ++k)
    EXPECT_LT(model.barotropic_per_day(mp::Config::kCgDiag, ps[k]).halo,
              model.barotropic_per_day(mp::Config::kCgDiag, ps[k - 1]).halo);
}

TEST(TimingModel, ChronGearWinsAtVerySmallCoreCounts) {
  // Computation dominates at tiny p, and ChronGear needs fewer
  // iterations — the trade-off the paper describes in §3.
  auto model = yellowstone_1deg();
  EXPECT_LT(model.barotropic_per_day(mp::Config::kCgDiag, 4).total(),
            model.barotropic_per_day(mp::Config::kPcsiDiag, 4).total());
}

TEST(TimingModel, Table1ImprovementGrowsWithCores) {
  auto model = yellowstone_1deg();
  // Table 1: pcsi+evp total-time improvement grows with core count and
  // reaches ~16.7% at 768.
  double prev = -1.0;
  for (int p : {48, 96, 192, 384, 768}) {
    const double imp =
        model.improvement_vs_baseline(mp::Config::kPcsiEvp, p);
    EXPECT_GE(imp, prev - 0.02) << "p=" << p;
    prev = imp;
  }
  EXPECT_NEAR(model.improvement_vs_baseline(mp::Config::kPcsiEvp, 768),
              0.167, 0.09);
  EXPECT_DOUBLE_EQ(
      model.improvement_vs_baseline(mp::Config::kCgDiag, 768), 0.0);
}

TEST(TimingModel, EdisonAnchorsAndOrdering) {
  auto model = edison_0p1();
  const int p = 16875;
  const double cg = model.barotropic_per_day(mp::Config::kCgDiag, p).total();
  const double pcsi_evp =
      model.barotropic_per_day(mp::Config::kPcsiEvp, p).total();
  EXPECT_NEAR(cg, 26.2, 7.0);            // paper §5.3
  EXPECT_NEAR(cg / pcsi_evp, 5.6, 1.8);  // paper: 5.6x
  // Edison's reductions are more expensive than Yellowstone's at scale.
  auto ys = yellowstone_0p1();
  EXPECT_GT(cg, ys.barotropic_per_day(mp::Config::kCgDiag, p).total());
}

TEST(TimingModel, IterationModelFollowsFig6Shape) {
  for (const auto& grid : {mp::pop_1deg_case(), mp::pop_0p1deg_case()}) {
    auto it = mp::paper_iteration_model(grid);
    // At moderate core counts (large blocks) EVP cuts iterations to
    // roughly a third (Fig. 6)...
    const int p_small =
        std::max(4, static_cast<int>(grid.points / 20000));
    const double cg_ratio =
        it.of(mp::Config::kCgEvp, grid.points, p_small) / it.cg_diag;
    EXPECT_NEAR(cg_ratio, 1.0 / 3.0, 0.08);
    // ...but the savings fade as blocks shrink at very high core counts
    // (what reconciles Fig. 6 with ChronGear+EVP's modest 1.4x in
    // Fig. 8).
    const int p_large = static_cast<int>(grid.points / 500);
    EXPECT_GT(
        it.of(mp::Config::kCgEvp, grid.points, p_large) / it.cg_diag,
        0.55);
    // P-CSI needs more iterations than ChronGear (paper §3).
    EXPECT_GT(it.pcsi_diag, it.cg_diag);
  }
}

TEST(TimingModel, ConfigNames) {
  EXPECT_EQ(mp::to_string(mp::Config::kPcsiEvp), "pcsi+evp");
  EXPECT_TRUE(mp::is_pcsi(mp::Config::kPcsiDiag));
  EXPECT_FALSE(mp::is_evp(mp::Config::kPcsiDiag));
  EXPECT_TRUE(mp::is_evp(mp::Config::kCgEvp));
}
