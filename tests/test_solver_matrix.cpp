// Full SolverConfig composition matrix over the unified execution core
// (DESIGN.md §11): every solver x precision x resilient x overlap
// combination either composes with batching (P-CSI and ChronGear at any
// precision run the lockstep batched stack; anything at fp64 at least
// solves correctly through solve_batch) or is rejected loudly at
// construction (PCG / pipelined CG with a non-fp64 precision). No
// combination may silently fall back or diverge.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/comm/serial_comm.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/solver/solver_factory.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace mc = minipop::comm;
namespace mg = minipop::grid;
namespace ms = minipop::solver;
namespace mu = minipop::util;

namespace {

/// Small bowl with an island — enough masked structure to make the
/// preconditioners and the Lanczos bounds non-trivial, small enough to
/// sweep ~100 configurations.
struct MatrixProblem {
  std::unique_ptr<mg::CurvilinearGrid> grid;
  mu::Field depth;
  std::unique_ptr<mg::NinePointStencil> stencil;
  std::unique_ptr<mg::Decomposition> decomp;
  std::unique_ptr<mc::HaloExchanger> halo;

  MatrixProblem(int nx = 18, int ny = 14) {
    mg::GridSpec spec;
    spec.kind = mg::GridKind::kUniform;
    spec.nx = nx;
    spec.ny = ny;
    spec.periodic_x = false;
    spec.dx = 1.0e4;
    spec.dy = 1.2e4;
    grid = std::make_unique<mg::CurvilinearGrid>(spec);
    depth = mg::bowl_bathymetry(*grid, 4000.0);
    depth(9, 7) = 0.0;  // island
    depth(10, 7) = 0.0;
    stencil = std::make_unique<mg::NinePointStencil>(*grid, depth, 1e-6);
    decomp = std::make_unique<mg::Decomposition>(nx, ny, false,
                                                 stencil->mask(), 9, 7, 1);
    halo = std::make_unique<mc::HaloExchanger>(*decomp);
  }

  mu::Field random_rhs(std::uint64_t seed) const {
    mu::Xoshiro256 rng(seed);
    mu::Field b(grid->nx(), grid->ny(), 0.0);
    for (int j = 0; j < grid->ny(); ++j)
      for (int i = 0; i < grid->nx(); ++i)
        if (stencil->mask()(i, j)) b(i, j) = rng.uniform(-1, 1);
    return b;
  }
};

bool lockstep_kind(ms::SolverKind k) {
  return k == ms::SolverKind::kPcsi || k == ms::SolverKind::kChronGear;
}

TEST(SolverMatrix, EveryConfigComposesOrRejectsLoudly) {
  MatrixProblem p;
  mc::SerialComm comm;
  const int nb = 4;
  std::vector<mu::Field> rhs;
  for (int m = 0; m < nb; ++m) rhs.push_back(p.random_rhs(9000 + m));

  const ms::SolverKind solvers[] = {
      ms::SolverKind::kPcg, ms::SolverKind::kChronGear,
      ms::SolverKind::kPcsi, ms::SolverKind::kPipelinedCg};
  const ms::Precision precisions[] = {
      ms::Precision::kFp64, ms::Precision::kFp32, ms::Precision::kMixed};

  for (ms::SolverKind kind : solvers) {
    for (ms::Precision prec : precisions) {
      for (int resilient = 0; resilient < 2; ++resilient) {
        for (int overlap = 0; overlap < 2; ++overlap) {
          const bool fp32 = prec == ms::Precision::kFp32;
          ms::SolverConfig cfg;
          cfg.solver = kind;
          cfg.preconditioner = ms::PreconditionerKind::kDiagonal;
          // fp32 round-off floors the residual near 1e-7; ask only for
          // what the storage format can deliver.
          cfg.options.rel_tolerance = fp32 ? 1e-5 : 1e-10;
          cfg.options.precision = prec;
          cfg.resilient = resilient != 0;
          cfg.overlap = overlap != 0;
          cfg.lanczos.rel_tolerance = 0.02;

          SCOPED_TRACE(ms::to_string(kind) + "/" +
                       std::string(ms::to_string(prec)) +
                       (resilient ? "/resilient" : "") +
                       (overlap ? "/overlap" : ""));

          // The one non-composable corner: long-recurrence solvers have
          // no fp32 arithmetic, so a non-fp64 precision must be a
          // construction-time error, not a silent downgrade.
          if (!lockstep_kind(kind) && prec != ms::Precision::kFp64) {
            EXPECT_THROW(ms::BarotropicSolver(comm, *p.halo, *p.grid,
                                              p.depth, *p.stencil,
                                              *p.decomp, cfg),
                         mu::Error);
            continue;
          }

          ms::BarotropicSolver solver(comm, *p.halo, *p.grid, p.depth,
                                      *p.stencil, *p.decomp, cfg);
          // Lockstep solvers keep the fused batched core at EVERY
          // precision and decoration — composing must never cost the
          // aggregation.
          EXPECT_EQ(solver.has_batched_path(), lockstep_kind(kind));
          EXPECT_FALSE(solver.batched().name().empty());

          // B=1: the degenerate batch must converge like a scalar solve.
          const double tol = fp32 ? 1e-4 : 1e-8;
          {
            mc::DistField b(*p.decomp, 0), x(*p.decomp, 0);
            b.load_global(rhs[0]);
            const mc::DistField* bs[1] = {&b};
            mc::DistField* xs[1] = {&x};
            const auto stats = solver.solve_batch(comm, bs, xs);
            ASSERT_EQ(static_cast<int>(stats.members.size()), 1);
            EXPECT_TRUE(stats.members[0].converged);
            EXPECT_LE(stats.members[0].relative_residual, tol);
          }

          // B=4 with distinct right-hand sides: per-member convergence.
          std::vector<mc::DistField> bb, xb;
          std::vector<const mc::DistField*> bs;
          std::vector<mc::DistField*> xs;
          for (int m = 0; m < nb; ++m) {
            bb.emplace_back(*p.decomp, 0);
            xb.emplace_back(*p.decomp, 0);
            bb.back().load_global(rhs[m]);
          }
          for (int m = 0; m < nb; ++m) {
            bs.push_back(&bb[m]);
            xs.push_back(&xb[m]);
          }
          const auto stats = solver.solve_batch(comm, bs, xs);
          ASSERT_EQ(static_cast<int>(stats.members.size()), nb);
          for (int m = 0; m < nb; ++m) {
            EXPECT_TRUE(stats.members[m].converged) << "member " << m;
            EXPECT_LE(stats.members[m].relative_residual, tol)
                << "member " << m;
          }
        }
      }
    }
  }
}

}  // namespace
