// Mixed-precision solver path: the fp32/mixed modes of
// MixedPrecisionSolver, the fp32 halo payload, and the ResilientSolver
// precision-escalation rung that rescues an fp32 solve stagnating at its
// accuracy floor.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "src/comm/serial_comm.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/linalg/dense.hpp"
#include "src/solver/field_ops.hpp"
#include "src/solver/solver_factory.hpp"
#include "src/util/rng.hpp"

namespace mc = minipop::comm;
namespace mg = minipop::grid;
namespace ml = minipop::linalg;
namespace ms = minipop::solver;
namespace mu = minipop::util;

namespace {

/// Bowl bathymetry with an island and a coast-to-island wall pierced by a
/// one-cell strait — the masked topologies POP's production grids throw
/// at the solver.
struct Problem {
  std::unique_ptr<mg::CurvilinearGrid> grid;
  mu::Field depth;
  std::unique_ptr<mg::NinePointStencil> stencil;
  std::unique_ptr<mg::Decomposition> decomp;
  std::unique_ptr<mc::HaloExchanger> halo;
  mu::Field b_global;

  Problem(int nx = 22, int ny = 18) {
    mg::GridSpec spec;
    spec.kind = mg::GridKind::kUniform;
    spec.nx = nx;
    spec.ny = ny;
    spec.periodic_x = false;
    spec.dx = 1.0e4;
    spec.dy = 1.2e4;
    grid = std::make_unique<mg::CurvilinearGrid>(spec);
    depth = mg::bowl_bathymetry(*grid, 4000.0);
    depth(11, 9) = 0.0;  // island
    depth(12, 9) = 0.0;
    for (int j = 0; j < 5; ++j) depth(6, j) = 0.0;  // wall from the coast…
    depth(6, 2) = 120.0;                            // …pierced by a strait
    stencil = std::make_unique<mg::NinePointStencil>(*grid, depth, 1e-6);
    decomp = std::make_unique<mg::Decomposition>(nx, ny, false,
                                                 stencil->mask(), 11, 9, 1);
    halo = std::make_unique<mc::HaloExchanger>(*decomp);

    mu::Xoshiro256 rng(3);
    b_global = mu::Field(nx, ny, 0.0);
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i)
        if (stencil->mask()(i, j)) b_global(i, j) = rng.uniform(-1, 1);
  }
};

}  // namespace

// ---------------------------------------------------------------------
// Property: mixed mode reaches the caller's fp64 tolerance — same
// answer as the dense reference to tolerance-consistent error — on the
// island/strait bathymetry, for every solver that has an fp32 inner
// path, with both preconditioners that have fp32 mirrors.
// ---------------------------------------------------------------------

class MixedPrecisionMatrixTest
    : public ::testing::TestWithParam<
          std::tuple<ms::SolverKind, ms::PreconditionerKind>> {};

TEST_P(MixedPrecisionMatrixTest, MixedReachesFp64ToleranceOnIslandStrait) {
  const auto [solver_kind, precond_kind] = GetParam();
  Problem p;
  mc::SerialComm comm;

  ms::SolverConfig cfg;
  cfg.solver = solver_kind;
  cfg.preconditioner = precond_kind;
  cfg.options.rel_tolerance = 1e-11;
  cfg.options.precision = ms::Precision::kMixed;
  cfg.evp.max_tile = 9;
  cfg.lanczos.rel_tolerance = 0.02;
  ms::BarotropicSolver solver(comm, *p.halo, *p.grid, p.depth, *p.stencil,
                              *p.decomp, cfg);
  ASSERT_NE(solver.mixed(), nullptr);

  mc::DistField b(*p.decomp, 0), x(*p.decomp, 0);
  b.load_global(p.b_global);
  auto stats = solver.solve(comm, b, x);
  ASSERT_TRUE(stats.converged) << solver.description();
  EXPECT_LE(stats.relative_residual, 1e-11);
  // The fp64 outer loop must have gone through fp32 refinement sweeps,
  // not silently escalated to the fp64 twin.
  EXPECT_GE(stats.refine_sweeps, 1) << solver.description();

  auto a = p.stencil->to_dense();
  const int nx = p.grid->nx(), ny = p.grid->ny();
  std::vector<double> bv(static_cast<std::size_t>(nx) * ny);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) bv[j * nx + i] = p.b_global(i, j);
  auto xv = ml::cholesky_solve(a, bv);
  mu::Field x_global(nx, ny, 0.0);
  x.store_global(x_global);
  double scale = 0;
  for (double v : xv) scale = std::max(scale, std::abs(v));
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      EXPECT_NEAR(x_global(i, j), xv[j * nx + i], 1e-6 * scale)
          << solver.description() << " at (" << i << "," << j << ")";
}

INSTANTIATE_TEST_SUITE_P(
    InnerFp32Solvers, MixedPrecisionMatrixTest,
    ::testing::Combine(::testing::Values(ms::SolverKind::kPcsi,
                                         ms::SolverKind::kChronGear),
                       ::testing::Values(ms::PreconditionerKind::kDiagonal,
                                         ms::PreconditionerKind::kBlockEvp)),
    [](const auto& info) {
      std::string name = ms::to_string(std::get<0>(info.param)) + "_" +
                         ms::to_string(std::get<1>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ---------------------------------------------------------------------
// fp32 floor, stagnation guard, and the escalation rung.
// ---------------------------------------------------------------------

// A pure fp32 solve cannot reach 1e-13: round-off floors the relative
// residual near 1e-7 and the ConvergenceGuard's stagnation window turns
// the stall into a typed kStagnated failure instead of burning the whole
// iteration budget.
TEST(PrecisionEscalation, Fp32StagnatesAtTightToleranceWithoutResilience) {
  Problem p;
  mc::SerialComm comm;

  ms::SolverConfig cfg;
  cfg.solver = ms::SolverKind::kPcsi;
  cfg.preconditioner = ms::PreconditionerKind::kDiagonal;
  cfg.options.rel_tolerance = 1e-13;
  cfg.options.precision = ms::Precision::kFp32;
  cfg.options.stagnation_window = 3;
  cfg.lanczos.rel_tolerance = 0.02;
  cfg.resilient = false;
  ms::BarotropicSolver solver(comm, *p.halo, *p.grid, p.depth, *p.stencil,
                              *p.decomp, cfg);

  mc::DistField b(*p.decomp, 0), x(*p.decomp, 0);
  b.load_global(p.b_global);
  auto stats = solver.solve(comm, b, x);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.failure, ms::FailureKind::kStagnated);
  // It stalled at the fp32 floor: far better than nothing, far short of
  // the fp64 tolerance.
  EXPECT_LT(stats.relative_residual, 1e-4);
  EXPECT_GT(stats.relative_residual, 1e-13);
}

// With the ResilientSolver in the loop, the same stagnation is cured by
// the precision-escalation rung: one typed RecoveryEvent, then the fp64
// twin finishes the solve to full tolerance.
TEST(PrecisionEscalation, ResilientEscalatesStagnatedFp32ToFp64) {
  Problem p;
  mc::SerialComm comm;

  ms::SolverConfig cfg;
  cfg.solver = ms::SolverKind::kPcsi;
  cfg.preconditioner = ms::PreconditionerKind::kDiagonal;
  cfg.options.rel_tolerance = 1e-13;
  cfg.options.precision = ms::Precision::kFp32;
  cfg.options.stagnation_window = 3;
  cfg.lanczos.rel_tolerance = 0.02;
  cfg.resilient = true;
  ms::BarotropicSolver solver(comm, *p.halo, *p.grid, p.depth, *p.stencil,
                              *p.decomp, cfg);
  ASSERT_NE(solver.resilient(), nullptr);
  ASSERT_NE(solver.mixed(), nullptr);

  mc::DistField b(*p.decomp, 0), x(*p.decomp, 0);
  b.load_global(p.b_global);
  auto stats = solver.solve(comm, b, x);
  ASSERT_TRUE(stats.converged);
  EXPECT_LE(stats.relative_residual, 1e-13);

  const auto& events = solver.resilient()->events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().action, "escalate_precision");
  EXPECT_EQ(events.front().failure, ms::FailureKind::kStagnated);
  // Escalation alone must suffice — no restart / re-estimate / fallback.
  EXPECT_EQ(events.size(), 1u);

  // The escalation is per-solve: a fresh solve re-enters at the
  // configured fp32 arithmetic, stagnates again, and escalates again —
  // it is not pinned to the fp64 twin by the previous recovery.
  solver.resilient()->clear_events();
  mc::DistField x2(*p.decomp, 0);
  auto stats2 = solver.solve(comm, b, x2);
  ASSERT_TRUE(stats2.converged);
  ASSERT_FALSE(solver.resilient()->events().empty());
  EXPECT_EQ(solver.resilient()->events().front().action,
            "escalate_precision");
}

// ---------------------------------------------------------------------
// Supporting contracts: halo payload and demote/promote round-trips.
// ---------------------------------------------------------------------

TEST(PrecisionFields, Fp32HalvesHaloPayload) {
  // On one rank every halo move is a local copy (zero wire bytes), so
  // count payload on a 4-rank split of the same mask.
  Problem p;
  mg::Decomposition d4(22, 18, false, p.stencil->mask(), 11, 9, 4);
  mc::HaloExchanger halo4(d4);
  mc::DistField f64(d4, 0);
  mc::DistField32 f32(d4, 0);
  const auto b64 = halo4.bytes_sent_per_exchange(f64);
  const auto b32 = halo4.bytes_sent_per_exchange(f32);
  ASSERT_GT(b64, 0u);
  EXPECT_EQ(b32 * 2, b64);
}

TEST(PrecisionFields, DemotePromoteAxpyPromotedAreExactWhereExpected) {
  Problem p;
  mc::SerialComm comm;
  mu::Xoshiro256 rng(17);
  mc::DistField x(*p.decomp, 0), y(*p.decomp, 0);
  mu::Field g(p.grid->nx(), p.grid->ny(), 0.0);
  for (int j = 0; j < p.grid->ny(); ++j)
    for (int i = 0; i < p.grid->nx(); ++i) g(i, j) = rng.uniform(-1, 1);
  x.load_global(g);
  y.load_global(g);

  mc::DistField32 x32(*p.decomp, 0);
  ms::demote(x, x32);
  mc::DistField back(*p.decomp, 0);
  ms::promote(x32, back);
  // Promote is exact, so the round trip is a single fp32 rounding.
  for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
    const auto& info = x.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i) {
        EXPECT_EQ(x32.at(lb, i, j), static_cast<float>(x.at(lb, i, j)));
        EXPECT_EQ(back.at(lb, i, j),
                  static_cast<double>(x32.at(lb, i, j)));
      }
  }

  // axpy_promoted widens each fp32 element before the fp64 fma-free
  // multiply-add, elementwise identical to the scalar expression.
  ms::axpy_promoted(comm, 0.75, x32, y);
  for (int lb = 0; lb < y.num_local_blocks(); ++lb) {
    const auto& info = y.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        EXPECT_EQ(y.at(lb, i, j),
                  x.at(lb, i, j) +
                      0.75 * static_cast<double>(x32.at(lb, i, j)));
  }
}
