#include <gtest/gtest.h>

#include <cmath>

#include "src/grid/bathymetry.hpp"
#include "src/grid/stencil.hpp"
#include "src/linalg/dense.hpp"
#include "src/util/rng.hpp"

namespace mg = minipop::grid;
namespace ml = minipop::linalg;
namespace mu = minipop::util;

namespace {

mg::CurvilinearGrid small_uniform(int nx, int ny, bool periodic = false,
                                  double dx = 1e4, double dy = 1e4) {
  mg::GridSpec spec;
  spec.kind = mg::GridKind::kUniform;
  spec.nx = nx;
  spec.ny = ny;
  spec.periodic_x = periodic;
  spec.dx = dx;
  spec.dy = dy;
  return mg::CurvilinearGrid(spec);
}

constexpr double kPhi = 1e-6;

}  // namespace

TEST(Stencil, DenseMatrixIsSymmetric) {
  auto g = small_uniform(8, 7);
  auto depth = mg::bowl_bathymetry(g, 4000);
  mg::NinePointStencil st(g, depth, kPhi);
  auto a = st.to_dense();
  EXPECT_TRUE(a.is_symmetric(1e-10));
}

TEST(Stencil, DenseMatrixIsPositiveDefinite) {
  auto g = small_uniform(7, 6);
  auto depth = mg::bowl_bathymetry(g, 3000);
  mg::NinePointStencil st(g, depth, kPhi);
  auto a = st.to_dense();
  // Cholesky succeeds iff SPD.
  std::vector<double> b(a.rows(), 1.0);
  EXPECT_NO_THROW(ml::cholesky_solve(a, b));
}

TEST(Stencil, ApplyMatchesDenseMatvec) {
  for (bool periodic : {false, true}) {
    auto g = small_uniform(9, 6, periodic);
    auto depth = mg::flat_bathymetry(g, 2500);
    mg::NinePointStencil st(g, depth, kPhi);
    auto a = st.to_dense();
    mu::Xoshiro256 rng(11);
    mu::Field x(9, 6), y;
    std::vector<double> xv(9 * 6);
    for (int j = 0; j < 6; ++j)
      for (int i = 0; i < 9; ++i) {
        double v = rng.uniform(-1, 1);
        x(i, j) = v;
        xv[j * 9 + i] = v;
      }
    st.apply(x, y);
    auto yv = a.apply(xv);
    for (int j = 0; j < 6; ++j)
      for (int i = 0; i < 9; ++i)
        EXPECT_NEAR(y(i, j), yv[j * 9 + i], 1e-6)
            << "periodic=" << periodic << " at (" << i << "," << j << ")";
  }
}

TEST(Stencil, RowSumsEqualPhiTimesArea) {
  // K annihilates constants, so summing the nine coefficients of any cell
  // must give phi * area (discrete analogue of [nabla.H nabla - phi] 1 =
  // -phi).
  auto g = small_uniform(10, 9, true);
  auto depth = mg::bowl_bathymetry(g, 4000);
  mg::NinePointStencil st(g, depth, kPhi);
  for (int j = 0; j < 9; ++j)
    for (int i = 0; i < 10; ++i) {
      double sum = 0;
      for (int d = 0; d < mg::kNumDirs; ++d)
        sum += st.coeff(static_cast<mg::Dir>(d))(i, j);
      EXPECT_NEAR(sum, kPhi * g.area_t()(i, j),
                  1e-9 * std::abs(st.diagonal()(i, j)))
          << "(" << i << "," << j << ")";
    }
}

TEST(Stencil, OceanLandCouplingIsZero) {
  auto g = small_uniform(12, 10);
  auto depth = mg::bowl_bathymetry(g, 4000);
  // Punch a land hole in the middle.
  depth(6, 5) = 0.0;
  mg::NinePointStencil st(g, depth, kPhi);
  const auto& mask = st.mask();
  for (int j = 0; j < 10; ++j)
    for (int i = 0; i < 12; ++i) {
      for (int d = 1; d < mg::kNumDirs; ++d) {
        auto [di, dj] = mg::kDirOffset[d];
        int ii = i + di, jj = j + dj;
        if (ii < 0 || ii >= 12 || jj < 0 || jj >= 10) continue;
        if (mask(i, j) != mask(ii, jj)) {
          EXPECT_EQ(st.coeff(static_cast<mg::Dir>(d))(i, j), 0.0)
              << "coupling across coast at (" << i << "," << j << ") dir "
              << d;
        }
      }
    }
}

TEST(Stencil, LandRowsAreDecoupledWithPositiveDiagonal) {
  auto g = small_uniform(8, 8);
  auto depth = mg::bowl_bathymetry(g, 4000);
  depth(4, 4) = 0.0;
  mg::NinePointStencil st(g, depth, kPhi);
  EXPECT_GT(st.diagonal()(4, 4), 0.0);
  for (int d = 1; d < mg::kNumDirs; ++d)
    EXPECT_EQ(st.coeff(static_cast<mg::Dir>(d))(4, 4), 0.0);
}

TEST(Stencil, SquareCellsHaveZeroEdgeCoefficients) {
  // The defining property of POP's B-grid operator that the simplified
  // EVP variant exploits: for isotropic cells the E/W/N/S couplings
  // vanish and only the corner couplings remain.
  auto g = small_uniform(8, 8, false, 1e4, 1e4);
  auto depth = mg::flat_bathymetry(g, 3000);
  mg::NinePointStencil st(g, depth, kPhi);
  EXPECT_EQ(st.edge_to_corner_ratio(), 0.0);
  EXPECT_LT(st.coeff(mg::Dir::kNorthEast)(3, 3), 0.0);
}

TEST(Stencil, AnisotropicCellsHaveSmallEdgeCoefficients) {
  // Mildly anisotropic cells: edge coefficients appear but stay below the
  // corner ones (the paper reports roughly one order of magnitude for the
  // production grids).
  auto g = small_uniform(8, 8, false, 1.0e4, 1.3e4);
  auto depth = mg::flat_bathymetry(g, 3000);
  mg::NinePointStencil st(g, depth, kPhi);
  double ratio = st.edge_to_corner_ratio();
  EXPECT_GT(ratio, 0.0);
  EXPECT_LT(ratio, 0.6);
}

TEST(Stencil, PhiHelpers) {
  EXPECT_NEAR(mg::barotropic_phi(100.0), 1.0 / (9.806 * 1e4), 1e-12);
  EXPECT_NEAR(mg::pop_0p1deg_dt_seconds(), 172.8, 1e-9);
  EXPECT_NEAR(mg::pop_1deg_dt_seconds(), 1920.0, 1e-9);
  EXPECT_THROW(mg::barotropic_phi(-1.0), minipop::util::Error);
}

TEST(Stencil, OceanCellCount) {
  auto g = small_uniform(6, 6);
  auto depth = mg::flat_bathymetry(g, 1000);
  depth(0, 0) = 0;
  depth(5, 5) = 0;
  mg::NinePointStencil st(g, depth, kPhi);
  EXPECT_EQ(st.ocean_cells(), 34);
}
