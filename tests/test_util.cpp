#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/util/array2d.hpp"
#include "src/util/array3d.hpp"
#include "src/util/cli.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace mu = minipop::util;

TEST(Array2D, IndexingIsRowMajorWithIFastest) {
  mu::Array2D<double> a(3, 2);
  a(0, 0) = 1;
  a(2, 0) = 3;
  a(0, 1) = 4;
  EXPECT_EQ(a.data()[0], 1);
  EXPECT_EQ(a.data()[2], 3);
  EXPECT_EQ(a.data()[3], 4);
  EXPECT_EQ(a.nx(), 3);
  EXPECT_EQ(a.ny(), 2);
  EXPECT_EQ(a.size(), 6u);
}

TEST(Array2D, FillAndAtOr) {
  mu::Array2D<double> a(4, 4, 7.5);
  for (double v : a) EXPECT_EQ(v, 7.5);
  EXPECT_EQ(a.at_or(-1, 0, -9.0), -9.0);
  EXPECT_EQ(a.at_or(0, 4, -9.0), -9.0);
  EXPECT_EQ(a.at_or(3, 3, -9.0), 7.5);
  a.fill(0.0);
  EXPECT_EQ(a(2, 2), 0.0);
}

TEST(Array2D, EqualityComparesShapeAndContents) {
  mu::Array2D<int> a(2, 2, 1);
  mu::Array2D<int> b(2, 2, 1);
  EXPECT_TRUE(a == b);
  b(1, 1) = 2;
  EXPECT_FALSE(a == b);
  mu::Array2D<int> c(4, 1, 1);
  EXPECT_FALSE(a == c);
}

TEST(Array3D, IndexingOrder) {
  mu::Array3D<double> a(2, 3, 4);
  a(1, 2, 3) = 42.0;
  // (k * ny + j) * nx + i = (3*3+2)*2+1 = 23
  EXPECT_EQ(a.data()[23], 42.0);
  EXPECT_EQ(a.size(), 24u);
}

TEST(Rng, DeterministicFromSeed) {
  mu::Xoshiro256 a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  mu::Xoshiro256 a2(123);
  for (int i = 0; i < 100; ++i)
    if (a2() != c()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRangeAndRoughlyCentered) {
  mu::Xoshiro256 rng(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  mu::Xoshiro256 rng(99);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog",      "--nx=100",   "--tol=1e-6",
                        "--verbose", "positional", "--name=abc"};
  mu::Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("nx", 0), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("tol", 0.0), 1e-6);
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_FALSE(cli.get_bool("quiet"));
  EXPECT_EQ(cli.get("name", ""), "abc");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
  EXPECT_EQ(cli.get_int("missing", -3), -3);
}

TEST(Cli, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--nx=12abc"};
  mu::Cli cli(2, argv);
  EXPECT_THROW(cli.get_int("nx", 0), mu::Error);
}

TEST(Table, FormatsAlignedColumns) {
  mu::Table t({"cores", "time"});
  t.row().add_int(16).add(1.25, 2);
  t.row().add_int(16875).add(0.5, 2);
  std::string s = t.to_string();
  EXPECT_NE(s.find("cores"), std::string::npos);
  EXPECT_NE(s.find("16875"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, PercentFormatting) {
  mu::Table t({"x"});
  t.row().add_pct(0.167);
  EXPECT_NE(t.to_string().find("16.7%"), std::string::npos);
}

TEST(Error, RequireThrowsWithMessage) {
  try {
    MINIPOP_REQUIRE(1 == 2, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const mu::Error& e) {
    std::string w = e.what();
    EXPECT_NE(w.find("1 == 2"), std::string::npos);
    EXPECT_NE(w.find("context 42"), std::string::npos);
  }
}
