// Batched multi-RHS engine: DistFieldBatch round trips, aggregated halo
// exchanges (bitwise vs scalar, message/byte audit), batched dots,
// bit-identity of batched P-CSI/ChronGear solves against the scalar
// solvers, per-member convergence masking, retirement compaction, cost
// aggregation, and the batched ensemble runner.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include "src/comm/serial_comm.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/solver/batched_solver.hpp"
#include "src/solver/field_ops.hpp"
#include "src/solver/solver_factory.hpp"
#include "src/stats/ensemble.hpp"
#include "src/util/rng.hpp"

namespace mc = minipop::comm;
namespace mg = minipop::grid;
namespace ms = minipop::solver;
namespace mst = minipop::stats;
namespace mu = minipop::util;

namespace {

/// Bowl bathymetry with an island and a coast-to-island wall pierced by
/// a one-cell strait (same masked topology as the precision tests).
struct Problem {
  std::unique_ptr<mg::CurvilinearGrid> grid;
  mu::Field depth;
  std::unique_ptr<mg::NinePointStencil> stencil;
  std::unique_ptr<mg::Decomposition> decomp;   // serial
  std::unique_ptr<mg::Decomposition> decomp4;  // 4-rank split
  std::unique_ptr<mc::HaloExchanger> halo;
  std::unique_ptr<mc::HaloExchanger> halo4;

  Problem(int nx = 22, int ny = 18) {
    mg::GridSpec spec;
    spec.kind = mg::GridKind::kUniform;
    spec.nx = nx;
    spec.ny = ny;
    spec.periodic_x = false;
    spec.dx = 1.0e4;
    spec.dy = 1.2e4;
    grid = std::make_unique<mg::CurvilinearGrid>(spec);
    depth = mg::bowl_bathymetry(*grid, 4000.0);
    depth(11, 9) = 0.0;  // island
    depth(12, 9) = 0.0;
    for (int j = 0; j < 5; ++j) depth(6, j) = 0.0;  // wall from the coast…
    depth(6, 2) = 120.0;                            // …pierced by a strait
    stencil = std::make_unique<mg::NinePointStencil>(*grid, depth, 1e-6);
    decomp = std::make_unique<mg::Decomposition>(nx, ny, false,
                                                 stencil->mask(), 11, 9, 1);
    decomp4 = std::make_unique<mg::Decomposition>(nx, ny, false,
                                                  stencil->mask(), 11, 9, 4);
    halo = std::make_unique<mc::HaloExchanger>(*decomp);
    halo4 = std::make_unique<mc::HaloExchanger>(*decomp4);
  }

  mu::Field random_rhs(std::uint64_t seed) const {
    mu::Xoshiro256 rng(seed);
    mu::Field b(grid->nx(), grid->ny(), 0.0);
    for (int j = 0; j < grid->ny(); ++j)
      for (int i = 0; i < grid->nx(); ++i)
        if (stencil->mask()(i, j)) b(i, j) = rng.uniform(-1, 1);
    return b;
  }
};

ms::SolverConfig batch_config(ms::SolverKind kind) {
  ms::SolverConfig cfg;
  cfg.solver = kind;
  cfg.preconditioner = ms::PreconditionerKind::kDiagonal;
  cfg.options.rel_tolerance = 1e-12;
  cfg.resilient = false;
  cfg.lanczos.rel_tolerance = 0.02;
  return cfg;
}

void expect_fields_equal(const mu::Field& a, const mu::Field& b,
                         const char* what) {
  ASSERT_EQ(a.nx(), b.nx());
  ASSERT_EQ(a.ny(), b.ny());
  for (int j = 0; j < a.ny(); ++j)
    for (int i = 0; i < a.nx(); ++i)
      ASSERT_EQ(a(i, j), b(i, j))
          << what << " differs at (" << i << "," << j << ")";
}

}  // namespace

// ---------------------------------------------------------------------
// DistFieldBatch container
// ---------------------------------------------------------------------

TEST(BatchField, LoadStoreRoundtripIsBitExact) {
  Problem p;
  const int nb = 3;
  mc::DistFieldBatch batch(*p.decomp, 0, nb);

  std::vector<mc::DistField> planes;
  for (int m = 0; m < nb; ++m) {
    planes.emplace_back(*p.decomp, 0);
    planes.back().load_global(p.random_rhs(100 + m));
    // Distinct halo garbage per member: the roundtrip must carry the
    // FULL padded plane, not just the interior.
    for (int lb = 0; lb < planes.back().num_local_blocks(); ++lb)
      planes.back().data(lb)(0, 0) = 1000.0 + m;
    ASSERT_TRUE(batch.member_compatible(planes.back()));
    batch.load_member(m, planes.back());
  }
  for (int m = 0; m < nb; ++m) {
    mc::DistField out(*p.decomp, 0);
    batch.store_member(m, out);
    for (int lb = 0; lb < out.num_local_blocks(); ++lb) {
      const auto& got = out.data(lb);
      const auto& want = planes[m].data(lb);
      for (int j = 0; j < got.ny(); ++j)
        for (int i = 0; i < got.nx(); ++i)
          ASSERT_EQ(got(i, j), want(i, j)) << "member " << m;
    }
  }

  // Compaction-style migration between different batch widths.
  mc::DistFieldBatch narrow(*p.decomp, 0, 1);
  narrow.copy_member_from(0, batch, 2);
  mc::DistField out(*p.decomp, 0);
  narrow.store_member(0, out);
  for (int lb = 0; lb < out.num_local_blocks(); ++lb) {
    const auto& got = out.data(lb);
    const auto& want = planes[2].data(lb);
    for (int j = 0; j < got.ny(); ++j)
      for (int i = 0; i < got.nx(); ++i) ASSERT_EQ(got(i, j), want(i, j));
  }
}

// ---------------------------------------------------------------------
// Aggregated halo exchange
// ---------------------------------------------------------------------

// One batched exchange must deliver exactly the planes B scalar
// exchanges deliver, in ONE message per neighbor per direction (B×
// fewer messages, B× bigger payloads), and the CostTracker audit must
// show 1 halo round carrying B member updates.
TEST(BatchHalo, MatchesScalarBitwiseWithAggregatedMessages) {
  Problem p;
  const int nb = 3;
  const int nranks = 4;

  std::vector<mc::CostCounters> scalar_costs(nranks), batch_costs(nranks);
  std::vector<int> plane_mismatches(nranks, 0);
  std::vector<std::uint64_t> bytes_scalar(nranks), bytes_batch(nranks);

  mc::ThreadTeam team(nranks);
  team.run([&](mc::Communicator& comm) {
    const int r = comm.rank();
    std::vector<mc::DistField> planes;
    mc::DistFieldBatch batch(*p.decomp4, r, nb);
    for (int m = 0; m < nb; ++m) {
      planes.emplace_back(*p.decomp4, r);
      planes.back().load_global(p.random_rhs(200 + m));
      batch.load_member(m, planes.back());
    }
    bytes_scalar[r] = p.halo4->bytes_sent_per_exchange(planes[0]);
    bytes_batch[r] = p.halo4->bytes_sent_per_exchange(batch);

    // Scalar reference: one exchange per member.
    auto snap = comm.costs().counters();
    for (auto& f : planes) p.halo4->exchange(comm, f);
    scalar_costs[r] = comm.costs().since(snap);

    // Batched: one aggregated exchange for all members.
    snap = comm.costs().counters();
    p.halo4->exchange(comm, batch);
    batch_costs[r] = comm.costs().since(snap);

    for (int m = 0; m < nb; ++m) {
      mc::DistField out(*p.decomp4, r);
      batch.store_member(m, out);
      for (int lb = 0; lb < out.num_local_blocks(); ++lb) {
        const auto& got = out.data(lb);
        const auto& want = planes[m].data(lb);
        for (int j = 0; j < got.ny(); ++j)
          for (int i = 0; i < got.nx(); ++i)
            if (got(i, j) != want(i, j)) ++plane_mismatches[r];
      }
    }
  });

  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(plane_mismatches[r], 0) << "rank " << r;
    // Aggregation factor audit: nb scalar rounds of 1 member vs 1
    // batched round of nb members.
    EXPECT_EQ(scalar_costs[r].halo_exchanges, static_cast<unsigned>(nb));
    EXPECT_EQ(scalar_costs[r].halo_member_updates,
              static_cast<unsigned>(nb));
    EXPECT_EQ(batch_costs[r].halo_exchanges, 1u);
    EXPECT_EQ(batch_costs[r].halo_member_updates,
              static_cast<unsigned>(nb));
    // B× fewer messages, same total bytes.
    EXPECT_EQ(scalar_costs[r].p2p_messages,
              static_cast<std::uint64_t>(nb) * batch_costs[r].p2p_messages);
    EXPECT_EQ(scalar_costs[r].p2p_bytes, batch_costs[r].p2p_bytes);
    EXPECT_EQ(bytes_batch[r], static_cast<std::uint64_t>(nb) *
                                  bytes_scalar[r]);
  }
}

// ---------------------------------------------------------------------
// Batched reductions
// ---------------------------------------------------------------------

// dot_batch and dot3_batch must reproduce the scalar masked dots bit
// for bit per member (they share the accumulation-order contract).
TEST(BatchDots, MatchScalarDotsBitwise) {
  Problem p;
  mc::SerialComm comm;
  const int nb = 4;
  ms::DistOperator a(*p.stencil, *p.decomp, 0);

  std::vector<mc::DistField> ra, rb, rz;
  mc::DistFieldBatch ba(*p.decomp, 0, nb), bb(*p.decomp, 0, nb),
      bz(*p.decomp, 0, nb);
  for (int m = 0; m < nb; ++m) {
    ra.emplace_back(*p.decomp, 0);
    rb.emplace_back(*p.decomp, 0);
    rz.emplace_back(*p.decomp, 0);
    ra.back().load_global(p.random_rhs(300 + m));
    rb.back().load_global(p.random_rhs(400 + m));
    rz.back().load_global(p.random_rhs(500 + m));
    ba.load_member(m, ra.back());
    bb.load_member(m, rb.back());
    bz.load_member(m, rz.back());
  }

  std::vector<double> sums(nb);
  a.local_dot_batch(comm, ba, bb, sums.data());
  for (int m = 0; m < nb; ++m)
    EXPECT_EQ(sums[m], a.local_dot(comm, ra[m], rb[m])) << "member " << m;

  for (const bool with_norm : {false, true}) {
    std::vector<double> out(3 * nb, -1.0);
    a.local_dot3_batch(comm, ba, bb, bz, with_norm, out.data());
    for (int m = 0; m < nb; ++m) {
      double ref[3];
      a.local_dot3(comm, ra[m], rb[m], rz[m], with_norm, ref);
      EXPECT_EQ(out[m], ref[0]) << "rho, member " << m;
      EXPECT_EQ(out[nb + m], ref[1]) << "delta, member " << m;
      EXPECT_EQ(out[2 * nb + m], ref[2])
          << "norm(with_norm=" << with_norm << "), member " << m;
    }
  }
}

// ---------------------------------------------------------------------
// Bit-identity of the batched solvers
// ---------------------------------------------------------------------

class BatchedSolveIdentityTest
    : public ::testing::TestWithParam<std::tuple<ms::SolverKind, int>> {};

// B=1 batched solves and every member of a B=4 batched solve must be
// bit-identical to the scalar solver: same iteration counts, same
// relative residuals, same solution bits — serial and on 4 ThreadComm
// ranks. The batch also has to aggregate: far fewer halo rounds and
// reductions than the 4 sequential solves.
TEST_P(BatchedSolveIdentityTest, MembersMatchScalarSolveBitwise) {
  const auto [kind, nranks] = GetParam();
  Problem p;
  const int nb = 4;
  const auto& decomp = (nranks == 1) ? *p.decomp : *p.decomp4;
  const auto& halo = (nranks == 1) ? *p.halo : *p.halo4;

  std::vector<mu::Field> rhs;
  for (int m = 0; m < nb; ++m) rhs.push_back(p.random_rhs(600 + m));

  std::vector<mu::Field> x_scalar(nb), x_b1(nb), x_b4(nb);
  for (int m = 0; m < nb; ++m) {
    x_scalar[m] = mu::Field(p.grid->nx(), p.grid->ny(), 0.0);
    x_b1[m] = mu::Field(p.grid->nx(), p.grid->ny(), 0.0);
    x_b4[m] = mu::Field(p.grid->nx(), p.grid->ny(), 0.0);
  }
  std::vector<ms::SolveStats> scalar_stats(nb);
  ms::BatchSolveStats b1_stats[4];  // per member, from B=1 solves
  ms::BatchSolveStats b4_stats;
  std::vector<mc::CostCounters> scalar_costs(nranks), batch_costs(nranks);

  auto body = [&](mc::Communicator& comm) {
    const int r = comm.rank();
    ms::BarotropicSolver solver(comm, halo, *p.grid, p.depth, *p.stencil,
                                decomp, batch_config(kind));
    ASSERT_TRUE(solver.has_batched_path());

    // Scalar references.
    auto snap = comm.costs().counters();
    for (int m = 0; m < nb; ++m) {
      mc::DistField b(decomp, r), x(decomp, r);
      b.load_global(rhs[m]);
      const auto stats = solver.solve(comm, b, x);
      x.store_global(x_scalar[m]);  // disjoint interiors; no race
      if (r == 0) scalar_stats[m] = stats;
    }
    scalar_costs[r] = comm.costs().since(snap);

    // B=1 batched solves.
    for (int m = 0; m < nb; ++m) {
      mc::DistField b(decomp, r), x(decomp, r);
      b.load_global(rhs[m]);
      const mc::DistField* bs[1] = {&b};
      mc::DistField* xs[1] = {&x};
      const auto stats = solver.solve_batch(comm, bs, xs);
      x.store_global(x_b1[m]);
      if (r == 0) b1_stats[m] = stats;
    }

    // One B=4 batched solve.
    std::vector<mc::DistField> b4, x4;
    std::vector<const mc::DistField*> bs;
    std::vector<mc::DistField*> xs;
    for (int m = 0; m < nb; ++m) {
      b4.emplace_back(decomp, r);
      x4.emplace_back(decomp, r);
      b4.back().load_global(rhs[m]);
    }
    for (int m = 0; m < nb; ++m) {
      bs.push_back(&b4[m]);
      xs.push_back(&x4[m]);
    }
    snap = comm.costs().counters();
    const auto stats = solver.solve_batch(comm, bs, xs);
    batch_costs[r] = comm.costs().since(snap);
    for (int m = 0; m < nb; ++m) x4[m].store_global(x_b4[m]);
    if (r == 0) b4_stats = stats;
  };

  if (nranks == 1) {
    mc::SerialComm comm;
    body(comm);
  } else {
    mc::ThreadTeam team(nranks);
    team.run(body);
  }

  ASSERT_EQ(static_cast<int>(b4_stats.members.size()), nb);
  for (int m = 0; m < nb; ++m) {
    ASSERT_TRUE(scalar_stats[m].converged) << "member " << m;
    // B=1 member vs scalar.
    EXPECT_EQ(b1_stats[m].members[0].iterations,
              scalar_stats[m].iterations);
    EXPECT_TRUE(b1_stats[m].members[0].converged);
    EXPECT_EQ(b1_stats[m].members[0].relative_residual,
              scalar_stats[m].relative_residual);
    expect_fields_equal(x_b1[m], x_scalar[m], "B=1 batched solution");
    // B=4 member vs scalar.
    EXPECT_EQ(b4_stats.members[m].iterations, scalar_stats[m].iterations)
        << "member " << m;
    EXPECT_TRUE(b4_stats.members[m].converged) << "member " << m;
    EXPECT_EQ(b4_stats.members[m].relative_residual,
              scalar_stats[m].relative_residual)
        << "member " << m;
    expect_fields_equal(x_b4[m], x_scalar[m], "B=4 batched solution");
  }
  // Aggregation: the batch runs max(iterations) lockstep sweeps but
  // shares every halo round and reduction, so it must use well under
  // half of the 4 sequential solves' counts (ideally ~1/4).
  for (int r = 0; r < nranks; ++r) {
    EXPECT_LT(2 * batch_costs[r].halo_exchanges,
              scalar_costs[r].halo_exchanges)
        << "rank " << r;
    EXPECT_LT(2 * batch_costs[r].allreduces, scalar_costs[r].allreduces)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SolversAndRanks, BatchedSolveIdentityTest,
    ::testing::Combine(::testing::Values(ms::SolverKind::kPcsi,
                                         ms::SolverKind::kChronGear),
                       ::testing::Values(1, 4)),
    [](const auto& info) {
      return ms::to_string(std::get<0>(info.param)) + "_ranks" +
             std::to_string(std::get<1>(info.param));
    });

// A zero right-hand side resolves a member immediately (x = 0,
// converged, 0 iterations) without disturbing its batch mates.
TEST(BatchedSolve, ZeroRhsMemberResolvesImmediately) {
  Problem p;
  mc::SerialComm comm;
  ms::BarotropicSolver solver(comm, *p.halo, *p.grid, p.depth, *p.stencil,
                              *p.decomp,
                              batch_config(ms::SolverKind::kChronGear));

  mc::DistField b0(*p.decomp, 0), x0(*p.decomp, 0);
  mc::DistField b1(*p.decomp, 0), x1(*p.decomp, 0);
  b1.load_global(p.random_rhs(700));
  // Start member 0's x nonzero to prove the zero-RHS path resets it.
  x0.fill(3.5);

  mc::DistField b_ref(*p.decomp, 0), x_ref(*p.decomp, 0);
  b_ref.load_global(p.random_rhs(700));
  const auto ref = solver.solve(comm, b_ref, x_ref);

  const mc::DistField* bs[2] = {&b0, &b1};
  mc::DistField* xs[2] = {&x0, &x1};
  const auto stats = solver.solve_batch(comm, bs, xs);

  EXPECT_TRUE(stats.members[0].converged);
  EXPECT_EQ(stats.members[0].iterations, 0);
  for (int lb = 0; lb < x0.num_local_blocks(); ++lb) {
    const auto& info = x0.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        ASSERT_EQ(x0.at(lb, i, j), 0.0);
  }
  EXPECT_TRUE(stats.members[1].converged);
  EXPECT_EQ(stats.members[1].iterations, ref.iterations);
  EXPECT_EQ(stats.members[1].relative_residual, ref.relative_residual);
}

// ---------------------------------------------------------------------
// Per-member convergence masking
// ---------------------------------------------------------------------

// An easy member (warm-started at the solution) freezes at its first
// convergence check while a hard (cold) member keeps iterating; the
// frozen member's solution must not be perturbed by the extra lockstep
// iterations — it stays bit-identical to its own scalar solve — and the
// hard member still reaches tolerance.
TEST(BatchedSolve, EasyMemberFreezesUnperturbedWhileHardMemberIterates) {
  Problem p;
  mc::SerialComm comm;
  auto cfg = batch_config(ms::SolverKind::kPcsi);
  cfg.options.check_frequency = 1;  // freeze at the earliest opportunity
  ms::BarotropicSolver solver(comm, *p.halo, *p.grid, p.depth, *p.stencil,
                              *p.decomp, cfg);

  const mu::Field rhs_easy = p.random_rhs(800);
  const mu::Field rhs_hard = p.random_rhs(801);

  // Solve the easy system once to get a warm start, then re-solve from
  // it: the scalar reference for "already converged at entry".
  mc::DistField be(*p.decomp, 0), warm(*p.decomp, 0);
  be.load_global(rhs_easy);
  (void)solver.solve(comm, be, warm);
  mc::DistField x_easy_ref(*p.decomp, 0);
  ms::copy_interior(warm, x_easy_ref);
  p.halo->exchange(comm, x_easy_ref);
  const auto easy_ref = solver.solve(comm, be, x_easy_ref);

  mc::DistField bh(*p.decomp, 0), x_hard_ref(*p.decomp, 0);
  bh.load_global(rhs_hard);
  const auto hard_ref = solver.solve(comm, bh, x_hard_ref);

  // The batched twin: member 0 warm, member 1 cold.
  mc::DistField x_easy(*p.decomp, 0), x_hard(*p.decomp, 0);
  ms::copy_interior(warm, x_easy);
  p.halo->exchange(comm, x_easy);
  const mc::DistField* bs[2] = {&be, &bh};
  mc::DistField* xs[2] = {&x_easy, &x_hard};
  const auto stats = solver.solve_batch(comm, bs, xs);

  EXPECT_TRUE(stats.members[0].converged);
  EXPECT_TRUE(stats.members[1].converged);
  EXPECT_EQ(stats.members[0].iterations, easy_ref.iterations);
  EXPECT_EQ(stats.members[1].iterations, hard_ref.iterations);
  EXPECT_LT(stats.members[0].iterations, stats.members[1].iterations);
  EXPECT_LE(stats.members[1].relative_residual, 1e-12);

  // The frozen member's bits match its scalar solve exactly even though
  // the batch kept sweeping for the hard member.
  for (int lb = 0; lb < x_easy.num_local_blocks(); ++lb) {
    const auto& info = x_easy.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i) {
        ASSERT_EQ(x_easy.at(lb, i, j), x_easy_ref.at(lb, i, j));
        ASSERT_EQ(x_hard.at(lb, i, j), x_hard_ref.at(lb, i, j));
      }
  }
}

// ---------------------------------------------------------------------
// Retirement compaction
// ---------------------------------------------------------------------

// Retirement (lane compaction when enough members froze) is pure data
// movement: forced compaction (fraction 1.0) and disabled retirement
// (fraction 0.0) must produce identical bits, iteration counts and
// residuals; the forced run must actually compact.
TEST(BatchedSolve, RetirementCompactionIsBitNeutral) {
  Problem p;
  const int nb = 4;
  std::vector<mu::Field> rhs;
  for (int m = 0; m < nb; ++m) rhs.push_back(p.random_rhs(900 + m));

  auto run = [&](double fraction, ms::BatchSolveStats& stats_out) {
    mc::SerialComm comm;
    auto cfg = batch_config(ms::SolverKind::kChronGear);
    cfg.options.check_frequency = 1;
    cfg.options.batch_retire_fraction = fraction;
    ms::BarotropicSolver solver(comm, *p.halo, *p.grid, p.depth,
                                *p.stencil, *p.decomp, cfg);
    // Warm-start half the batch so members freeze at different checks.
    std::vector<mc::DistField> b, x;
    for (int m = 0; m < nb; ++m) {
      b.emplace_back(*p.decomp, 0);
      x.emplace_back(*p.decomp, 0);
      b.back().load_global(rhs[m]);
    }
    for (int m = 0; m < 2; ++m) {
      mc::DistField bw(*p.decomp, 0);
      bw.load_global(rhs[m]);
      (void)solver.solve(comm, bw, x[m]);
    }
    std::vector<const mc::DistField*> bs;
    std::vector<mc::DistField*> xs;
    for (int m = 0; m < nb; ++m) {
      bs.push_back(&b[m]);
      xs.push_back(&x[m]);
    }
    stats_out = solver.solve_batch(comm, bs, xs);
    std::vector<mu::Field> out(nb);
    for (int m = 0; m < nb; ++m) {
      out[m] = mu::Field(p.grid->nx(), p.grid->ny(), 0.0);
      x[m].store_global(out[m]);
    }
    return out;
  };

  ms::BatchSolveStats forced, disabled;
  const auto x_forced = run(1.0, forced);
  const auto x_disabled = run(0.0, disabled);

  EXPECT_GE(forced.retirements, 1);
  EXPECT_EQ(disabled.retirements, 0);
  for (int m = 0; m < nb; ++m) {
    EXPECT_EQ(forced.members[m].iterations, disabled.members[m].iterations)
        << "member " << m;
    EXPECT_EQ(forced.members[m].converged, disabled.members[m].converged);
    EXPECT_EQ(forced.members[m].relative_residual,
              disabled.members[m].relative_residual)
        << "member " << m;
    expect_fields_equal(x_forced[m], x_disabled[m], "retired solution");
  }
  // With retirement the tail iterations run on a narrower batch, so the
  // forced run must refresh fewer member planes in total.
  EXPECT_LT(forced.costs.halo_member_updates,
            disabled.costs.halo_member_updates);
  EXPECT_EQ(disabled.costs.halo_member_updates,
            static_cast<std::uint64_t>(nb) *
                disabled.costs.halo_exchanges);
}

// ---------------------------------------------------------------------
// Batched ensemble runner
// ---------------------------------------------------------------------

namespace {
mst::EnsembleConfig tiny_ensemble_config() {
  mst::EnsembleConfig cfg;
  cfg.model.grid = mg::pop_1deg_spec(0.06);  // 19 x 23
  cfg.model.nz = 2;
  cfg.model.block_size = 12;
  cfg.model.nranks = 1;
  cfg.months = 1;
  cfg.members = 3;
  return cfg;
}
}  // namespace

// Batched member groups must reproduce the sequential ensemble bit for
// bit: the batched fp64 solves are bit-exact per member and the
// resilience decorator they bypass is bitwise-neutral in fault-free
// runs.
TEST(EnsembleBatch, BatchedMembersMatchSequentialBitwise) {
  auto cfg = tiny_ensemble_config();
  const auto seq = mst::run_ensemble(cfg);
  cfg.batch = 2;  // groups of 2 + a remainder group of 1
  int calls = 0;
  const auto bat = mst::run_ensemble(
      cfg, [&](int done, int total) {
        ++calls;
        EXPECT_LE(done, total);
      });
  EXPECT_EQ(calls, cfg.members);
  ASSERT_EQ(bat.size(), seq.size());
  for (std::size_t m = 0; m < seq.size(); ++m) {
    ASSERT_EQ(bat[m].size(), seq[m].size());
    for (std::size_t t = 0; t < seq[m].size(); ++t) {
      const auto a = bat[m][t].flat();
      const auto b = seq[m][t].flat();
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t q = 0; q < a.size(); ++q)
        ASSERT_EQ(a[q], b[q]) << "member " << m << " month " << t;
    }
  }
}

// The nranks constraint on ensemble members is now per-mode: batch > 1
// requires serial members, and threaded members (nranks > 1) agree with
// their serial twin to round-off (reductions reassociate across
// decompositions, so bitwise equality is NOT expected).
TEST(EnsembleThreaded, ThreadedMemberMatchesSerialToRoundoff) {
  auto cfg = tiny_ensemble_config();
  const auto serial = mst::run_member(cfg, 0);
  cfg.model.nranks = 2;
  const auto threaded = mst::run_member(cfg, 0);

  ASSERT_EQ(threaded.size(), serial.size());
  double max_abs = 0.0, max_diff = 0.0;
  for (std::size_t t = 0; t < serial.size(); ++t) {
    const auto a = threaded[t].flat();
    const auto b = serial[t].flat();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
      max_abs = std::max(max_abs, std::abs(b[q]));
      max_diff = std::max(max_diff, std::abs(a[q] - b[q]));
    }
  }
  EXPECT_GT(max_abs, 0.0);
  EXPECT_LE(max_diff, 1e-6 * (1.0 + max_abs));

  // Batched groups stay serial-only; asking for both must fail loudly.
  cfg.batch = 2;
  EXPECT_THROW(mst::run_ensemble(cfg), mu::Error);
}
