#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/ensemble.hpp"
#include "src/stats/statistics.hpp"
#include "src/util/rng.hpp"

namespace ms = minipop::stats;
namespace mu = minipop::util;

namespace {

mu::Array3D<double> constant_field(int nx, int ny, int nz, double v) {
  return mu::Array3D<double>(nx, ny, nz, v);
}

}  // namespace

TEST(Rmse, ZeroForIdenticalFields) {
  auto a = constant_field(4, 3, 2, 1.5);
  mu::MaskArray mask(4, 3, 1);
  EXPECT_DOUBLE_EQ(ms::rmse(a, a, mask), 0.0);
}

TEST(Rmse, KnownDifference) {
  auto a = constant_field(4, 3, 2, 1.0);
  auto b = constant_field(4, 3, 2, 3.0);
  mu::MaskArray mask(4, 3, 1);
  EXPECT_DOUBLE_EQ(ms::rmse(a, b, mask), 2.0);
}

TEST(Rmse, MaskExcludesLand) {
  auto a = constant_field(2, 2, 1, 0.0);
  auto b = a;
  b(0, 0, 0) = 100.0;  // difference only on the land cell
  mu::MaskArray mask(2, 2, 1);
  mask(0, 0) = 0;
  EXPECT_DOUBLE_EQ(ms::rmse(a, b, mask), 0.0);
  mu::MaskArray all_land(2, 2, 0);
  EXPECT_THROW(ms::rmse(a, b, all_land), mu::Error);
}

TEST(EnsembleMoments, HandComputed) {
  std::vector<mu::Array3D<double>> members;
  members.push_back(constant_field(2, 1, 1, 1.0));
  members.push_back(constant_field(2, 1, 1, 3.0));
  members.push_back(constant_field(2, 1, 1, 5.0));
  auto mom = ms::ensemble_moments(members);
  EXPECT_EQ(mom.members, 3);
  EXPECT_DOUBLE_EQ(mom.mean(0, 0, 0), 3.0);
  EXPECT_DOUBLE_EQ(mom.stddev(1, 0, 0), 2.0);  // sqrt(((-2)^2+0+2^2)/2)
  EXPECT_THROW(
      ms::ensemble_moments(std::vector<mu::Array3D<double>>(
          1, constant_field(2, 1, 1, 0.0))),
      mu::Error);
}

TEST(Rmsz, MeanScoresZeroAndOneSigmaScoresOne) {
  mu::Xoshiro256 rng(5);
  std::vector<mu::Array3D<double>> members;
  for (int m = 0; m < 20; ++m) {
    mu::Array3D<double> f(3, 3, 2);
    for (std::size_t n = 0; n < f.size(); ++n)
      f.data()[n] = 10.0 + rng.normal();
    members.push_back(std::move(f));
  }
  auto mom = ms::ensemble_moments(members);
  mu::MaskArray mask(3, 3, 1);
  EXPECT_NEAR(ms::rmsz(mom.mean, mom, mask), 0.0, 1e-12);
  auto shifted = mom.mean;
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 3; ++j)
      for (int i = 0; i < 3; ++i)
        shifted(i, j, k) += mom.stddev(i, j, k);
  EXPECT_NEAR(ms::rmsz(shifted, mom, mask), 1.0, 1e-12);
}

TEST(Rmsz, MembersScoreOrderOne) {
  mu::Xoshiro256 rng(17);
  std::vector<mu::Array3D<double>> members;
  for (int m = 0; m < 30; ++m) {
    mu::Array3D<double> f(4, 4, 1);
    for (std::size_t n = 0; n < f.size(); ++n) f.data()[n] = rng.normal();
    members.push_back(std::move(f));
  }
  auto mom = ms::ensemble_moments(members);
  mu::MaskArray mask(4, 4, 1);
  auto [lo, hi] = ms::ensemble_rmsz_range(members, mom, mask);
  EXPECT_GT(lo, 0.3);
  EXPECT_LT(hi, 2.5);
  // An outlier far outside the spread scores far above the band.
  auto outlier = mom.mean;
  for (std::size_t n = 0; n < outlier.size(); ++n)
    outlier.data()[n] += 10.0 * mom.stddev.data()[n];
  EXPECT_GT(ms::rmsz(outlier, mom, mask), hi);
}

TEST(Rmsz, SkipsZeroVarianceCells) {
  std::vector<mu::Array3D<double>> members;
  for (int m = 0; m < 5; ++m) {
    auto f = constant_field(2, 1, 1, 1.0);
    f(1, 0, 0) = m;  // variability only in cell 1
    members.push_back(std::move(f));
  }
  auto mom = ms::ensemble_moments(members);
  mu::MaskArray mask(2, 1, 1);
  auto x = constant_field(2, 1, 1, 1.0);
  x(0, 0, 0) = 99.0;  // huge deviation in the zero-variance cell
  x(1, 0, 0) = mom.mean(1, 0, 0);
  // The zero-variance cell is skipped, so the score stays 0.
  EXPECT_NEAR(ms::rmsz(x, mom, mask), 0.0, 1e-12);
}

// --- Ensemble runner over the real model --------------------------------

namespace {
ms::EnsembleConfig tiny_ensemble_config() {
  ms::EnsembleConfig cfg;
  cfg.model.grid = minipop::grid::pop_1deg_spec(0.06);  // 19 x 23
  cfg.model.nz = 2;
  cfg.model.block_size = 12;
  cfg.model.nranks = 1;
  cfg.months = 1;
  cfg.members = 3;
  return cfg;
}
}  // namespace

TEST(EnsembleRunner, ProducesMonthlySeries) {
  auto cfg = tiny_ensemble_config();
  int calls = 0;
  auto ens = ms::run_ensemble(
      cfg, [&](int done, int total) {
        ++calls;
        EXPECT_LE(done, total);
      });
  EXPECT_EQ(static_cast<int>(ens.size()), cfg.members);
  EXPECT_EQ(calls, cfg.members);
  for (const auto& member : ens)
    EXPECT_EQ(static_cast<int>(member.size()), cfg.months);

  auto slice = ms::month_slice(ens, 0);
  EXPECT_EQ(static_cast<int>(slice.size()), cfg.members);
  EXPECT_THROW(ms::month_slice(ens, 5), mu::Error);
}

TEST(EnsembleRunner, PerturbationSeparatesMembers) {
  auto cfg = tiny_ensemble_config();
  cfg.perturbation = 1e-10;  // larger so one month is enough to see it
  auto m0 = ms::run_member(cfg, 0);
  auto m1 = ms::run_member(cfg, 1);
  auto base = ms::run_member(cfg, -1);
  auto base2 = ms::run_member(cfg, -1);
  // Unperturbed runs are bitwise identical.
  for (std::size_t n = 0; n < base[0].size(); ++n)
    ASSERT_EQ(base[0].data()[n], base2[0].data()[n]);
  // Perturbed members differ from the base and from each other.
  double d01 = 0, d0b = 0;
  for (std::size_t n = 0; n < base[0].size(); ++n) {
    d01 = std::max(d01, std::abs(m0[0].data()[n] - m1[0].data()[n]));
    d0b = std::max(d0b, std::abs(m0[0].data()[n] - base[0].data()[n]));
  }
  EXPECT_GT(d01, 0.0);
  EXPECT_GT(d0b, 0.0);
}
