#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/linalg/dense.hpp"
#include "src/linalg/tridiag_eigen.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace ml = minipop::linalg;

namespace {

/// Random SPD matrix A = R^T R + n I.
ml::DenseMatrix random_spd(int n, std::uint64_t seed) {
  minipop::util::Xoshiro256 rng(seed);
  ml::DenseMatrix r(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) r(i, j) = rng.uniform(-1, 1);
  ml::DenseMatrix a = r.transposed().multiply(r);
  for (int i = 0; i < n; ++i) a(i, i) += n;
  return a;
}

}  // namespace

TEST(DenseMatrix, MultiplyAndTranspose) {
  ml::DenseMatrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  ml::DenseMatrix at = a.transposed();
  EXPECT_EQ(at.rows(), 3);
  EXPECT_EQ(at(2, 1), 6);
  ml::DenseMatrix aat = a.multiply(at);
  EXPECT_DOUBLE_EQ(aat(0, 0), 14);
  EXPECT_DOUBLE_EQ(aat(0, 1), 32);
  EXPECT_DOUBLE_EQ(aat(1, 1), 77);
  EXPECT_TRUE(aat.is_symmetric());
}

TEST(Lu, SolvesKnownSystem) {
  ml::DenseMatrix a(3, 3);
  a(0, 0) = 2; a(0, 1) = 1; a(0, 2) = 1;
  a(1, 0) = 1; a(1, 1) = 3; a(1, 2) = 2;
  a(2, 0) = 1; a(2, 1) = 0; a(2, 2) = 0;
  // x = (1, 2, 3): b = A x.
  std::vector<double> x{1, 2, 3};
  auto b = a.apply(x);
  ml::LuFactorization lu(a);
  auto got = lu.solve(b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(got[i], x[i], 1e-12);
}

TEST(Lu, RandomRoundTripManySizes) {
  for (int n : {1, 2, 5, 17, 40}) {
    auto a = random_spd(n, 1000 + n);
    minipop::util::Xoshiro256 rng(n);
    std::vector<double> x(n);
    for (auto& v : x) v = rng.uniform(-5, 5);
    auto b = a.apply(x);
    ml::LuFactorization lu(a);
    auto got = lu.solve(b);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(got[i], x[i], 1e-9) << "n=" << n;
  }
}

TEST(Lu, InverseTimesMatrixIsIdentity) {
  auto a = random_spd(12, 77);
  ml::LuFactorization lu(a);
  auto inv = lu.inverse();
  auto prod = a.multiply(inv);
  EXPECT_LT(prod.max_abs_diff(ml::DenseMatrix::identity(12)), 1e-9);
}

TEST(Lu, ThrowsOnSingular) {
  ml::DenseMatrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(ml::LuFactorization lu(a), minipop::util::Error);
}

TEST(Lu, PivotingHandlesZeroLeadingDiagonal) {
  ml::DenseMatrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  ml::LuFactorization lu(a);
  auto x = lu.solve({3.0, 4.0});
  EXPECT_NEAR(x[0], 4.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(Cholesky, MatchesLuOnSpd) {
  auto a = random_spd(15, 5);
  minipop::util::Xoshiro256 rng(6);
  std::vector<double> b(15);
  for (auto& v : b) v = rng.uniform(-1, 1);
  auto x1 = ml::cholesky_solve(a, b);
  auto x2 = ml::LuFactorization(a).solve(b);
  for (int i = 0; i < 15; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-10);
}

TEST(Cholesky, ThrowsOnIndefinite) {
  ml::DenseMatrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_THROW(ml::cholesky_solve(a, {1.0, 1.0}), minipop::util::Error);
}

TEST(JacobiEigen, DiagonalMatrix) {
  ml::DenseMatrix a(3, 3);
  a(0, 0) = 3; a(1, 1) = 1; a(2, 2) = 2;
  auto eig = ml::symmetric_eigenvalues(a);
  EXPECT_NEAR(eig[0], 1, 1e-10);
  EXPECT_NEAR(eig[1], 2, 1e-10);
  EXPECT_NEAR(eig[2], 3, 1e-10);
}

TEST(JacobiEigen, Known2x2) {
  ml::DenseMatrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 2;
  auto eig = ml::symmetric_eigenvalues(a);
  EXPECT_NEAR(eig[0], 1, 1e-12);
  EXPECT_NEAR(eig[1], 3, 1e-12);
}

// --- Tridiagonal eigenvalues -------------------------------------------

namespace {
/// 1D Laplacian tridiagonal: d = 2, e = -1; eigenvalues are
/// 2 - 2 cos(k pi / (n+1)), k = 1..n.
ml::Tridiagonal laplacian_tridiag(int n) {
  ml::Tridiagonal t;
  t.d.assign(n, 2.0);
  t.e.assign(n - 1, -1.0);
  return t;
}
}  // namespace

TEST(TridiagEigen, LaplacianEigenvaluesExact) {
  const int n = 20;
  auto t = laplacian_tridiag(n);
  auto eig = ml::tridiag_all_eigenvalues(t);
  for (int k = 1; k <= n; ++k) {
    double expected = 2.0 - 2.0 * std::cos(k * M_PI / (n + 1));
    EXPECT_NEAR(eig[k - 1], expected, 1e-9) << "k=" << k;
  }
}

TEST(TridiagEigen, ExtremeMatchesFullSpectrumEnds) {
  auto t = laplacian_tridiag(33);
  auto all = ml::tridiag_all_eigenvalues(t);
  auto ext = ml::tridiag_extreme_eigenvalues(t);
  EXPECT_NEAR(ext.min, all.front(), 1e-9);
  EXPECT_NEAR(ext.max, all.back(), 1e-9);
}

TEST(TridiagEigen, SturmCountsArePartitioned) {
  auto t = laplacian_tridiag(10);
  EXPECT_EQ(ml::sturm_count(t, -1.0), 0);
  EXPECT_EQ(ml::sturm_count(t, 5.0), 10);
  // Eigenvalue 2 - 2cos(5 pi / 11) splits 4 below / rest above at 2.0?
  // Laplacian spectrum is symmetric about 2: exactly 5 eigenvalues < 2.
  EXPECT_EQ(ml::sturm_count(t, 2.0), 5);
}

TEST(TridiagEigen, SingleElement) {
  ml::Tridiagonal t;
  t.d = {4.2};
  auto ext = ml::tridiag_extreme_eigenvalues(t);
  EXPECT_NEAR(ext.min, 4.2, 1e-12);
  EXPECT_NEAR(ext.max, 4.2, 1e-12);
}

TEST(TridiagEigen, AgreesWithJacobiOnRandomTridiag) {
  const int n = 12;
  minipop::util::Xoshiro256 rng(31);
  ml::Tridiagonal t;
  t.d.resize(n);
  t.e.resize(n - 1);
  for (auto& v : t.d) v = rng.uniform(1, 3);
  for (auto& v : t.e) v = rng.uniform(-1, 1);
  ml::DenseMatrix a(n, n);
  for (int i = 0; i < n; ++i) {
    a(i, i) = t.d[i];
    if (i + 1 < n) {
      a(i, i + 1) = t.e[i];
      a(i + 1, i) = t.e[i];
    }
  }
  auto dense_eig = ml::symmetric_eigenvalues(a);
  auto tri_eig = ml::tridiag_all_eigenvalues(t);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(tri_eig[i], dense_eig[i], 1e-8);
}
