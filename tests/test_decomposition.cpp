#include <gtest/gtest.h>

#include <set>

#include "src/grid/bathymetry.hpp"
#include "src/grid/curvilinear_grid.hpp"
#include "src/grid/decomposition.hpp"
#include "src/util/error.hpp"

namespace mg = minipop::grid;
namespace mu = minipop::util;

namespace {
mu::MaskArray all_ocean(int nx, int ny) { return mu::MaskArray(nx, ny, 1); }
}  // namespace

TEST(Decomposition, BasicBlockGridAndSizes) {
  auto mask = all_ocean(20, 12);
  mg::Decomposition d(20, 12, false, mask, 5, 4, 4);
  EXPECT_EQ(d.mbx(), 4);
  EXPECT_EQ(d.mby(), 3);
  EXPECT_EQ(d.num_active_blocks(), 12);
  EXPECT_EQ(d.num_land_blocks(), 0);
  for (const auto& b : d.blocks()) {
    EXPECT_EQ(b.nx, 5);
    EXPECT_EQ(b.ny, 4);
    EXPECT_EQ(b.ocean_cells, 20);
  }
}

TEST(Decomposition, RaggedEdgeBlocks) {
  auto mask = all_ocean(11, 7);
  mg::Decomposition d(11, 7, false, mask, 4, 3, 1);
  EXPECT_EQ(d.mbx(), 3);
  EXPECT_EQ(d.mby(), 3);
  // Right-most column blocks are 3 wide; top row blocks are 1 tall.
  int id = d.block_id_at(2, 0);
  ASSERT_GE(id, 0);
  EXPECT_EQ(d.block(id).nx, 3);
  id = d.block_id_at(0, 2);
  ASSERT_GE(id, 0);
  EXPECT_EQ(d.block(id).ny, 1);
}

TEST(Decomposition, EveryOceanCellInExactlyOneBlock) {
  auto mask = all_ocean(17, 13);
  mg::Decomposition d(17, 13, false, mask, 5, 5, 3);
  mu::Array2D<int> covered(17, 13, 0);
  for (const auto& b : d.blocks())
    for (int j = 0; j < b.ny; ++j)
      for (int i = 0; i < b.nx; ++i) covered(b.i0 + i, b.j0 + j) += 1;
  for (int v : covered) EXPECT_EQ(v, 1);
}

TEST(Decomposition, LandBlockElimination) {
  // Left half is land.
  mu::MaskArray mask(16, 8, 0);
  for (int j = 0; j < 8; ++j)
    for (int i = 8; i < 16; ++i) mask(i, j) = 1;
  mg::Decomposition d(16, 8, false, mask, 4, 4, 2);
  EXPECT_EQ(d.num_active_blocks(), 4);
  EXPECT_EQ(d.num_land_blocks(), 4);
  EXPECT_EQ(d.block_id_at(0, 0), -1);
  EXPECT_EQ(d.block_id_at(1, 1), -1);
  EXPECT_GE(d.block_id_at(2, 0), 0);
}

TEST(Decomposition, OwnersPartitionBlocks) {
  auto mask = all_ocean(24, 24);
  const int nranks = 5;
  mg::Decomposition d(24, 24, true, mask, 4, 4, nranks);
  std::set<int> seen;
  long count = 0;
  for (int r = 0; r < nranks; ++r) {
    for (int id : d.blocks_of_rank(r)) {
      EXPECT_EQ(d.block(id).owner, r);
      EXPECT_TRUE(seen.insert(id).second) << "block assigned twice";
      ++count;
    }
    EXPECT_FALSE(d.blocks_of_rank(r).empty());
  }
  EXPECT_EQ(count, d.num_active_blocks());
}

TEST(Decomposition, LoadBalanceReasonable) {
  mg::CurvilinearGrid g(mg::pop_1deg_spec(0.2));
  auto depth = mg::synthetic_earth_bathymetry(g, {});
  auto mask = mg::ocean_mask(depth);
  mg::Decomposition d(g.nx(), g.ny(), true, mask, 8, 8, 8);
  EXPECT_LT(d.load_imbalance(), 1.5);
  EXPECT_GE(d.load_imbalance(), 1.0);
  EXPECT_GT(d.num_land_blocks(), 0);  // synthetic earth has land blocks
}

// Regression pin for the strong-scaling configuration: the Hilbert
// ocean-cell-weighted assignment must keep the 4-rank imbalance on the
// synthetic-earth bathymetry within 10% of perfect, and the accessors
// the land-span cost accounting relies on must agree with the mask.
TEST(Decomposition, StrongScalingImbalancePinnedAtFourRanks) {
  mg::CurvilinearGrid g(mg::pop_1deg_spec(0.3));
  auto depth = mg::synthetic_earth_bathymetry(g, {});
  auto mask = mg::ocean_mask(depth);
  mg::Decomposition d(g.nx(), g.ny(), true, mask, 8, 8, 4);
  EXPECT_GE(d.load_imbalance(), 1.0);
  EXPECT_LE(d.load_imbalance(), 1.10);

  // ocean_fraction() is ocean cells / swept cells over ACTIVE blocks:
  // land-block elimination already removed the all-land blocks, so the
  // active-region fraction must be at least the whole-grid fraction,
  // and both census halves must match a direct mask count.
  long ocean = 0, swept = 0;
  for (const auto& b : d.blocks()) {
    long o = 0;
    for (int j = 0; j < b.ny; ++j)
      for (int i = 0; i < b.nx; ++i)
        if (mask(b.i0 + i, b.j0 + j)) ++o;
    EXPECT_EQ(o, b.ocean_cells);
    ocean += o;
    swept += static_cast<long>(b.nx) * b.ny;
  }
  EXPECT_GT(d.num_land_blocks(), 0);
  EXPECT_DOUBLE_EQ(d.ocean_fraction(),
                   static_cast<double>(ocean) / swept);
  EXPECT_GE(d.ocean_fraction(), 1.0 - mg::land_fraction(mask));
  EXPECT_LT(d.ocean_fraction(), 1.0);
}

TEST(Decomposition, NeighborsNonPeriodic) {
  auto mask = all_ocean(12, 12);
  mg::Decomposition d(12, 12, false, mask, 4, 4, 1);
  int center = d.block_id_at(1, 1);
  ASSERT_GE(center, 0);
  EXPECT_EQ(d.neighbor(center, mg::Dir::kEast), d.block_id_at(2, 1));
  EXPECT_EQ(d.neighbor(center, mg::Dir::kNorthWest), d.block_id_at(0, 2));
  int corner = d.block_id_at(0, 0);
  EXPECT_EQ(d.neighbor(corner, mg::Dir::kWest), -1);
  EXPECT_EQ(d.neighbor(corner, mg::Dir::kSouth), -1);
  EXPECT_EQ(d.neighbor(corner, mg::Dir::kSouthWest), -1);
}

TEST(Decomposition, NeighborsPeriodicWrap) {
  auto mask = all_ocean(12, 8);
  mg::Decomposition d(12, 8, true, mask, 4, 4, 1);
  int west_edge = d.block_id_at(0, 0);
  int east_edge = d.block_id_at(2, 0);
  ASSERT_GE(west_edge, 0);
  ASSERT_GE(east_edge, 0);
  EXPECT_EQ(d.neighbor(west_edge, mg::Dir::kWest), east_edge);
  EXPECT_EQ(d.neighbor(east_edge, mg::Dir::kEast), west_edge);
  // y never wraps.
  EXPECT_EQ(d.neighbor(west_edge, mg::Dir::kSouth), -1);
}

TEST(Decomposition, NeighborThroughLandBlockIsMinusOne) {
  mu::MaskArray mask(12, 4, 1);
  // Middle block (1,0) all land.
  for (int j = 0; j < 4; ++j)
    for (int i = 4; i < 8; ++i) mask(i, j) = 0;
  mg::Decomposition d(12, 4, false, mask, 4, 4, 2);
  int left = d.block_id_at(0, 0);
  ASSERT_GE(left, 0);
  EXPECT_EQ(d.neighbor(left, mg::Dir::kEast), -1);
}

TEST(Decomposition, RejectsTooManyRanks) {
  auto mask = all_ocean(8, 8);
  EXPECT_THROW(mg::Decomposition(8, 8, false, mask, 4, 4, 5),
               mu::Error);
}

TEST(Decomposition, SingleBlockSingleRank) {
  auto mask = all_ocean(10, 10);
  mg::Decomposition d(10, 10, true, mask, 10, 10, 1);
  EXPECT_EQ(d.num_active_blocks(), 1);
  // Periodic with one block: the block is its own E/W neighbor.
  EXPECT_EQ(d.neighbor(0, mg::Dir::kEast), 0);
  EXPECT_EQ(d.neighbor(0, mg::Dir::kWest), 0);
  EXPECT_EQ(d.neighbor(0, mg::Dir::kNorth), -1);
}
