#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/comm/serial_comm.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/evp/block_evp_preconditioner.hpp"
#include "src/evp/evp_solver.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/linalg/dense.hpp"
#include "src/solver/chron_gear.hpp"
#include "src/solver/field_ops.hpp"
#include "src/solver/solver_factory.hpp"
#include "src/util/rng.hpp"

namespace mc = minipop::comm;
namespace me = minipop::evp;
namespace mg = minipop::grid;
namespace ml = minipop::linalg;
namespace ms = minipop::solver;
namespace mu = minipop::util;

namespace {

constexpr double kPhi = 1e-6;

mg::CurvilinearGrid uniform_grid(int nx, int ny, double dx = 1e4,
                                 double dy = 1.15e4) {
  mg::GridSpec spec;
  spec.kind = mg::GridKind::kUniform;
  spec.nx = nx;
  spec.ny = ny;
  spec.periodic_x = false;
  spec.dx = dx;
  spec.dy = dy;
  return mg::CurvilinearGrid(spec);
}

/// Whole-grid coefficient copy in block layout.
std::array<mu::Field, mg::kNumDirs> coeff_copy(
    const mg::NinePointStencil& st) {
  std::array<mu::Field, mg::kNumDirs> c;
  for (int d = 0; d < mg::kNumDirs; ++d)
    c[d] = st.coeff(static_cast<mg::Dir>(d));
  return c;
}

mu::Field random_field(int nx, int ny, std::uint64_t seed) {
  mu::Xoshiro256 rng(seed);
  mu::Field f(nx, ny);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) f(i, j) = rng.uniform(-1, 1);
  return f;
}

double solve_error_for_tile_size(int n) {
  auto g = uniform_grid(n, n);
  auto depth = mg::flat_bathymetry(g, 3500);
  mg::NinePointStencil st(g, depth, kPhi);
  me::EvpOptions opt;
  opt.validate_accuracy = -1;  // instability is the subject here
  me::EvpTileSolver evp(coeff_copy(st), 0, 0, n, n, opt);

  // Dense reference: the whole-grid tile of a non-periodic grid IS the
  // full operator.
  auto a = st.to_dense();
  auto y = random_field(n, n, 99 + n);
  std::vector<double> yv(static_cast<std::size_t>(n) * n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) yv[j * n + i] = y(i, j);
  auto xv = ml::cholesky_solve(a, yv);

  mu::Field x;
  evp.solve(y, x);
  double err = 0, scale = 0;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) {
      err = std::max(err, std::abs(x(i, j) - xv[j * n + i]));
      scale = std::max(scale, std::abs(xv[j * n + i]));
    }
  return err / scale;
}

}  // namespace

TEST(EvpTileSolver, ExactOnSmallTiles) {
  // Paper §4.3: EVP solves with ~1e-8 round-off up to 12x12 in double
  // precision.
  EXPECT_LT(solve_error_for_tile_size(6), 1e-10);
  EXPECT_LT(solve_error_for_tile_size(12), 1e-7);
}

TEST(EvpTileSolver, RoundoffGrowsWithTileSize) {
  double e12 = solve_error_for_tile_size(12);
  double e24 = solve_error_for_tile_size(24);
  EXPECT_GT(e24, e12);
}

TEST(EvpTileSolver, SubTileSolveMatchesDenseDirichletProblem) {
  // A tile strictly inside a larger block: B is the operator restricted
  // to the tile with zero Dirichlet outside.
  const int N = 16;
  auto g = uniform_grid(N, N);
  auto depth = mg::flat_bathymetry(g, 2800);
  mg::NinePointStencil st(g, depth, kPhi);
  const int i0 = 3, j0 = 4, tn = 8;
  me::EvpTileSolver evp(coeff_copy(st), i0, j0, tn, tn);

  // Dense tile matrix from apply_operator columns.
  const int n2 = tn * tn;
  ml::DenseMatrix b(n2, n2);
  mu::Field e(tn, tn), col;
  for (int c = 0; c < n2; ++c) {
    e.fill(0.0);
    e(c % tn, c / tn) = 1.0;
    evp.apply_operator(e, col);
    for (int r = 0; r < n2; ++r) b(r, c) = col(r % tn, r / tn);
  }
  auto y = random_field(tn, tn, 4242);
  std::vector<double> yv(n2);
  for (int r = 0; r < n2; ++r) yv[r] = y(r % tn, r / tn);
  auto xv = ml::cholesky_solve(b, yv);

  mu::Field x;
  evp.solve(y, x);
  for (int r = 0; r < n2; ++r)
    EXPECT_NEAR(x(r % tn, r / tn), xv[r], 1e-8 * (1 + std::abs(xv[r])));
}

TEST(EvpTileSolver, ApplyOperatorMatchesStencilInterior) {
  const int N = 10;
  auto g = uniform_grid(N, N);
  auto depth = mg::flat_bathymetry(g, 1800);
  mg::NinePointStencil st(g, depth, kPhi);
  me::EvpTileSolver evp(coeff_copy(st), 0, 0, N, N);
  auto x = random_field(N, N, 7);
  mu::Field y_evp, y_st;
  evp.apply_operator(x, y_evp);
  st.apply(x, y_st);
  for (int j = 0; j < N; ++j)
    for (int i = 0; i < N; ++i)
      EXPECT_NEAR(y_evp(i, j), y_st(i, j),
                  1e-9 * (1 + std::abs(y_st(i, j))));
}

TEST(EvpTileSolver, SimplifiedSolvesSimplifiedOperatorExactly) {
  const int N = 10;
  auto g = uniform_grid(N, N);
  auto depth = mg::flat_bathymetry(g, 2000);
  mg::NinePointStencil st(g, depth, kPhi);
  me::EvpOptions opt;
  opt.simplified = true;
  me::EvpTileSolver evp(coeff_copy(st), 0, 0, N, N, opt);
  auto x_true = random_field(N, N, 13);
  mu::Field y;
  evp.apply_operator(x_true, y);  // y = B_simplified x_true
  mu::Field x;
  evp.solve(y, x);
  for (int j = 0; j < N; ++j)
    for (int i = 0; i < N; ++i)
      EXPECT_NEAR(x(i, j), x_true(i, j), 1e-7 * (1 + std::abs(x_true(i, j))));
}

TEST(EvpTileSolver, SolveFlopsMatchPaperCounts) {
  const int N = 12;
  auto g = uniform_grid(N, N);
  auto depth = mg::flat_bathymetry(g, 2000);
  mg::NinePointStencil st(g, depth, kPhi);
  me::EvpTileSolver full(coeff_copy(st), 0, 0, N, N);
  me::EvpOptions sopt;
  sopt.simplified = true;
  me::EvpTileSolver simp(coeff_copy(st), 0, 0, N, N, sopt);
  // Full ~ 22 n^2, simplified ~ 14 n^2 (paper §4.2/4.3).
  EXPECT_NEAR(static_cast<double>(full.solve_flops()), 22.0 * N * N,
              2.0 * N * N);
  EXPECT_NEAR(static_cast<double>(simp.solve_flops()), 14.0 * N * N,
              2.0 * N * N);
  EXPECT_LT(simp.solve_flops(), full.solve_flops());
}

TEST(EvpTileSolver, DegenerateOneRowTile) {
  const int N = 8;
  auto g = uniform_grid(N, 4);
  auto depth = mg::flat_bathymetry(g, 2000);
  mg::NinePointStencil st(g, depth, kPhi);
  me::EvpTileSolver evp(coeff_copy(st), 0, 1, N, 1);
  auto x_true = random_field(N, 1, 3);
  mu::Field y;
  evp.apply_operator(x_true, y);
  mu::Field x;
  evp.solve(y, x);
  for (int i = 0; i < N; ++i)
    EXPECT_NEAR(x(i, 0), x_true(i, 0), 1e-8 * (1 + std::abs(x_true(i, 0))));
}

TEST(EvpTileSolver, ThrowsOnZeroPivotFromLand) {
  const int N = 8;
  auto g = uniform_grid(N, N);
  auto depth = mg::flat_bathymetry(g, 2000);
  depth(4, 4) = 0.0;  // unregularized land kills the NE pivot nearby
  mg::NinePointStencil st(g, depth, kPhi);
  EXPECT_THROW(me::EvpTileSolver(coeff_copy(st), 0, 0, N, N), mu::Error);
}

TEST(RegularizeLandDepth, FillsLandKeepsOcean) {
  mu::Field depth(4, 3, 0.0);
  depth(1, 1) = 5000;
  depth(2, 1) = 300;
  auto reg = me::regularize_land_depth(depth, 0.02);
  EXPECT_DOUBLE_EQ(reg(1, 1), 5000);
  EXPECT_DOUBLE_EQ(reg(2, 1), 300);
  EXPECT_DOUBLE_EQ(reg(0, 0), 100);  // 0.02 * 5000
  EXPECT_THROW(me::regularize_land_depth(depth, 0.0), mu::Error);
  mu::Field all_land(2, 2, 0.0);
  EXPECT_THROW(me::regularize_land_depth(all_land, 0.02), mu::Error);
}

// --- Block-EVP preconditioner -------------------------------------------

namespace {

struct EvpProblem {
  std::unique_ptr<mg::CurvilinearGrid> grid;
  mu::Field depth;
  std::unique_ptr<mg::NinePointStencil> stencil;
  std::unique_ptr<mg::Decomposition> decomp;
  mu::Field b_global;
};

EvpProblem make_masked_problem(int nx, int ny, int block, int nranks) {
  EvpProblem p;
  p.grid = std::make_unique<mg::CurvilinearGrid>(uniform_grid(nx, ny));
  p.depth = mg::bowl_bathymetry(*p.grid, 4200.0);
  p.depth(nx / 2, ny / 2) = 0.0;  // island
  p.stencil = std::make_unique<mg::NinePointStencil>(*p.grid, p.depth, kPhi);
  p.decomp = std::make_unique<mg::Decomposition>(
      nx, ny, false, p.stencil->mask(), block, block, nranks);
  p.b_global = mu::Field(nx, ny, 0.0);
  mu::Xoshiro256 rng(17);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      if (p.stencil->mask()(i, j)) p.b_global(i, j) = rng.uniform(-1, 1);
  return p;
}

}  // namespace

TEST(BlockEvp, ExactInverseOnAllOceanSingleBlock) {
  // With no land and one whole-grid tile, M == A, so A(M^{-1} v) == v.
  const int N = 12;
  auto g = uniform_grid(N, N);
  auto depth = mg::flat_bathymetry(g, 3000);
  mg::NinePointStencil st(g, depth, kPhi);
  mg::Decomposition d(N, N, false, st.mask(), N, N, 1);
  mc::SerialComm comm;
  ms::DistOperator op(st, d, 0);
  me::BlockEvpOptions opt;
  opt.max_tile = 0;        // whole block
  opt.simplified = false;  // exact nine-point solve
  me::BlockEvpPreconditioner m(op, g, depth, opt);
  EXPECT_EQ(m.num_tiles(), 1);

  mc::DistField v(d, 0), mv(d, 0);
  v.load_global(random_field(N, N, 23));
  m.apply(comm, v, mv);
  mu::Field mv_global(N, N);
  mv.store_global(mv_global);
  mu::Field back;
  st.apply(mv_global, back);
  for (int j = 0; j < N; ++j)
    for (int i = 0; i < N; ++i)
      EXPECT_NEAR(back(i, j), v.at(0, i, j), 1e-6);
}

TEST(BlockEvp, InverseIsSymmetric) {
  const int N = 10;
  auto g = uniform_grid(N, N);
  auto depth = mg::flat_bathymetry(g, 3000);
  mg::NinePointStencil st(g, depth, kPhi);
  mg::Decomposition d(N, N, false, st.mask(), N, N, 1);
  mc::SerialComm comm;
  ms::DistOperator op(st, d, 0);
  me::BlockEvpOptions opt;
  opt.max_tile = 0;
  opt.simplified = false;
  me::BlockEvpPreconditioner m(op, g, depth, opt);

  mc::DistField x(d, 0), y(d, 0), mx(d, 0), my(d, 0);
  x.load_global(random_field(N, N, 1));
  y.load_global(random_field(N, N, 2));
  m.apply(comm, x, mx);
  m.apply(comm, y, my);
  const double a = op.local_dot(comm, y, mx);
  const double b = op.local_dot(comm, x, my);
  EXPECT_NEAR(a, b, 1e-9 * std::abs(a));
}

TEST(BlockEvp, TilesCoverBlocksOnce) {
  auto p = make_masked_problem(24, 20, 24, 1);
  mc::SerialComm comm;
  ms::DistOperator op(*p.stencil, *p.decomp, 0);
  me::BlockEvpOptions opt;
  opt.max_tile = 7;  // forces subdivision with remainders
  me::BlockEvpPreconditioner m(op, *p.grid, p.depth, opt);
  // 24 -> tiles of <=7 : 4 tiles; 20 -> 3 tiles; single block.
  EXPECT_EQ(m.num_tiles(), 12);

  // Applying to a constant-one field touches every ocean cell exactly
  // once (no overlap, full cover): result must be nonzero on ocean.
  mc::DistField v(*p.decomp, 0), mv(*p.decomp, 0);
  ms::fill_interior(v, 1.0);
  m.apply(comm, v, mv);
  mu::Field out(24, 20, 0.0);
  mv.store_global(out);
  long nonzero = 0, ocean = 0;
  for (int j = 0; j < 20; ++j)
    for (int i = 0; i < 24; ++i)
      if (p.stencil->mask()(i, j)) {
        ++ocean;
        if (out(i, j) != 0.0) ++nonzero;
      }
  EXPECT_EQ(nonzero, ocean);

  // Land cells stay zero.
  for (int j = 0; j < 20; ++j)
    for (int i = 0; i < 24; ++i)
      if (!p.stencil->mask()(i, j)) {
        EXPECT_EQ(out(i, j), 0.0);
      }
}

TEST(BlockEvp, ReducesChronGearIterationsVsDiagonal) {
  // The headline convergence result (paper Fig. 6): block-EVP cuts the
  // iteration count to roughly a third of diagonal preconditioning.
  auto p = make_masked_problem(40, 36, 10, 1);
  mc::SerialComm comm;
  mc::HaloExchanger halo(*p.decomp);
  ms::DistOperator op(*p.stencil, *p.decomp, 0);
  ms::SolverOptions sopt;
  sopt.rel_tolerance = 1e-11;
  ms::ChronGearSolver solver(sopt);

  ms::DiagonalPreconditioner diag(op);
  mc::DistField b(*p.decomp, 0), x(*p.decomp, 0);
  b.load_global(p.b_global);
  auto s_diag = solver.solve(comm, halo, op, diag, b, x);

  me::BlockEvpOptions eopt;
  eopt.max_tile = 0;  // tile = process block (10x10), paper configuration
  me::BlockEvpPreconditioner evp(op, *p.grid, p.depth, eopt);
  mc::DistField x2(*p.decomp, 0);
  auto s_evp = solver.solve(comm, halo, op, evp, b, x2);

  ASSERT_TRUE(s_diag.converged);
  ASSERT_TRUE(s_evp.converged);
  EXPECT_LT(s_evp.iterations, s_diag.iterations);
  EXPECT_LT(s_evp.iterations, 0.6 * s_diag.iterations);

  // Both converge to the same solution.
  mu::Field xa(40, 36, 0.0), xb(40, 36, 0.0);
  x.store_global(xa);
  x2.store_global(xb);
  for (int j = 0; j < 36; ++j)
    for (int i = 0; i < 40; ++i) EXPECT_NEAR(xa(i, j), xb(i, j), 1e-5);
}

TEST(BarotropicSolver, AllConfigurationsConverge) {
  auto p = make_masked_problem(30, 24, 10, 1);
  mc::SerialComm comm;
  mc::HaloExchanger halo(*p.decomp);
  for (auto solver_kind : {ms::SolverKind::kPcg, ms::SolverKind::kChronGear,
                           ms::SolverKind::kPcsi}) {
    for (auto precond_kind :
         {ms::PreconditionerKind::kIdentity,
          ms::PreconditionerKind::kDiagonal,
          ms::PreconditionerKind::kBlockEvp}) {
      ms::SolverConfig cfg;
      cfg.solver = solver_kind;
      cfg.preconditioner = precond_kind;
      cfg.options.rel_tolerance = 1e-10;
      cfg.evp.max_tile = 10;
      cfg.lanczos.rel_tolerance = 0.02;
      ms::BarotropicSolver bs(comm, halo, *p.grid, p.depth, *p.stencil,
                              *p.decomp, cfg);
      mc::DistField b(*p.decomp, 0), x(*p.decomp, 0);
      b.load_global(p.b_global);
      auto stats = bs.solve(comm, b, x);
      EXPECT_TRUE(stats.converged) << bs.description();
      if (solver_kind == ms::SolverKind::kPcsi)
        EXPECT_TRUE(bs.lanczos().has_value());
      else
        EXPECT_FALSE(bs.lanczos().has_value());
    }
  }
}

TEST(BarotropicSolver, MultiRankEvpMatchesSerial) {
  const int nranks = 4;
  auto p = make_masked_problem(24, 24, 6, nranks);
  ms::SolverConfig cfg;
  cfg.solver = ms::SolverKind::kChronGear;
  cfg.preconditioner = ms::PreconditionerKind::kBlockEvp;
  cfg.options.rel_tolerance = 1e-11;
  cfg.evp.max_tile = 0;  // tile = 6x6 process blocks

  // Serial reference with the SAME tiling (6x6) so M is identical.
  mg::Decomposition d1(24, 24, false, p.stencil->mask(), 24, 24, 1);
  mu::Field x_serial(24, 24, 0.0);
  {
    ms::SolverConfig cfg1 = cfg;
    cfg1.evp.max_tile = 6;
    mc::SerialComm comm;
    mc::HaloExchanger halo(d1);
    ms::BarotropicSolver bs(comm, halo, *p.grid, p.depth, *p.stencil, d1,
                            cfg1);
    mc::DistField b(d1, 0), x(d1, 0);
    b.load_global(p.b_global);
    auto stats = bs.solve(comm, b, x);
    ASSERT_TRUE(stats.converged);
    x.store_global(x_serial);
  }

  mu::Field x_par(24, 24, 0.0);
  mc::ThreadTeam team(nranks);
  mc::HaloExchanger halo(*p.decomp);
  team.run([&](mc::Communicator& comm) {
    ms::BarotropicSolver bs(comm, halo, *p.grid, p.depth, *p.stencil,
                            *p.decomp, cfg);
    mc::DistField b(*p.decomp, comm.rank()), x(*p.decomp, comm.rank());
    b.load_global(p.b_global);
    auto stats = bs.solve(comm, b, x);
    EXPECT_TRUE(stats.converged);
    x.store_global(x_par);
  });
  for (int j = 0; j < 24; ++j)
    for (int i = 0; i < 24; ++i)
      EXPECT_NEAR(x_par(i, j), x_serial(i, j), 1e-5);
}

TEST(SolverFactory, StringParsing) {
  EXPECT_EQ(ms::solver_kind_from_string("pcsi"), ms::SolverKind::kPcsi);
  EXPECT_EQ(ms::solver_kind_from_string("chrongear"),
            ms::SolverKind::kChronGear);
  EXPECT_EQ(ms::preconditioner_kind_from_string("evp"),
            ms::PreconditionerKind::kBlockEvp);
  EXPECT_THROW(ms::solver_kind_from_string("magic"), mu::Error);
  EXPECT_THROW(ms::preconditioner_kind_from_string("amg"), mu::Error);
  EXPECT_EQ(ms::to_string(ms::SolverKind::kPcsi), "pcsi");
  EXPECT_EQ(ms::to_string(ms::PreconditionerKind::kBlockEvp), "block-evp");
}
