#include <gtest/gtest.h>

#include <cmath>

#include "src/grid/bathymetry.hpp"
#include "src/grid/curvilinear_grid.hpp"
#include "src/grid/hilbert.hpp"

namespace mg = minipop::grid;

TEST(CurvilinearGrid, UniformMetrics) {
  mg::GridSpec spec;
  spec.kind = mg::GridKind::kUniform;
  spec.nx = 10;
  spec.ny = 8;
  spec.periodic_x = false;
  spec.dx = 1000;
  spec.dy = 2000;
  mg::CurvilinearGrid g(spec);
  EXPECT_DOUBLE_EQ(g.dxt()(3, 3), 1000);
  EXPECT_DOUBLE_EQ(g.dyt()(3, 3), 2000);
  EXPECT_DOUBLE_EQ(g.area_t()(0, 0), 2e6);
  EXPECT_DOUBLE_EQ(g.total_area(), 10 * 8 * 2e6);
  EXPECT_EQ(g.nxc(), 9);
  EXPECT_EQ(g.nyc(), 7);
  EXPECT_NEAR(g.max_aspect_ratio(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(g.dxu()(0, 0), 1000);
}

TEST(CurvilinearGrid, LatLonDxShrinksTowardPoles) {
  mg::GridSpec spec;
  spec.kind = mg::GridKind::kLatLon;
  spec.nx = 36;
  spec.ny = 24;
  spec.lat_min = -60;
  spec.lat_max = 60;
  mg::CurvilinearGrid g(spec);
  // dx at the equator-most row should exceed dx at the top row.
  EXPECT_GT(g.dxt()(0, 12), g.dxt()(0, 23));
  // dy is constant along latitude for the plain lat-lon grid.
  EXPECT_NEAR(g.dyt()(0, 0), g.dyt()(20, 15), 1e-9);
  EXPECT_EQ(g.nxc(), 36);  // periodic by default
}

TEST(CurvilinearGrid, LatLonAreaApproximatesSphericalBand) {
  mg::GridSpec spec;
  spec.kind = mg::GridKind::kLatLon;
  spec.nx = 360;
  spec.ny = 180;
  spec.lat_min = -30;
  spec.lat_max = 30;
  mg::CurvilinearGrid g(spec);
  // Band area = 2 pi R^2 (sin(30) - sin(-30)) = 2 pi R^2.
  const double expected = 2 * M_PI * spec.radius * spec.radius;
  EXPECT_NEAR(g.total_area() / expected, 1.0, 0.01);
}

TEST(CurvilinearGrid, DisplacedPoleVariesDxAlongLongitude) {
  mg::GridSpec spec = mg::pop_1deg_spec(0.25);
  mg::CurvilinearGrid g(spec);
  // In the stretched northern region dx should vary with i.
  int j = g.ny() - 5;
  double mn = 1e300, mx = 0;
  for (int i = 0; i < g.nx(); ++i) {
    mn = std::min(mn, g.dxt()(i, j));
    mx = std::max(mx, g.dxt()(i, j));
  }
  EXPECT_GT(mx / mn, 1.1);
}

TEST(CurvilinearGrid, PresetSizes) {
  EXPECT_EQ(mg::pop_1deg_spec(1.0).nx, 320);
  EXPECT_EQ(mg::pop_1deg_spec(1.0).ny, 384);
  EXPECT_EQ(mg::pop_0p1deg_spec(1.0).nx, 3600);
  EXPECT_EQ(mg::pop_0p1deg_spec(1.0).ny, 2400);
  EXPECT_EQ(mg::pop_0p1deg_spec(0.1).nx, 360);
}

TEST(Bathymetry, FlatAndBowl) {
  mg::GridSpec spec;
  spec.kind = mg::GridKind::kUniform;
  spec.nx = 16;
  spec.ny = 16;
  spec.periodic_x = false;
  mg::CurvilinearGrid g(spec);
  auto flat = mg::flat_bathymetry(g, 4000);
  EXPECT_DOUBLE_EQ(flat(8, 8), 4000);
  auto mask = mg::ocean_mask(flat);
  EXPECT_EQ(mg::count_ocean(mask), 16 * 16);

  auto bowl = mg::bowl_bathymetry(g, 5000);
  EXPECT_GT(bowl(8, 8), bowl(2, 2));  // deeper in the center
  EXPECT_DOUBLE_EQ(bowl(0, 0), 0.0);  // land rim
}

TEST(Bathymetry, SyntheticEarthHitsLandFraction) {
  mg::CurvilinearGrid g(mg::pop_1deg_spec(0.3));
  mg::BathymetryOptions opt;
  opt.land_fraction = 0.25;
  auto depth = mg::synthetic_earth_bathymetry(g, opt);
  auto mask = mg::ocean_mask(depth);
  // Islands/straits/polar caps perturb the target a bit.
  EXPECT_NEAR(mg::land_fraction(mask), 0.25, 0.08);
}

TEST(Bathymetry, DeterministicAndSeedSensitive) {
  mg::CurvilinearGrid g(mg::pop_1deg_spec(0.15));
  mg::BathymetryOptions opt;
  opt.seed = 42;
  auto d1 = mg::synthetic_earth_bathymetry(g, opt);
  auto d2 = mg::synthetic_earth_bathymetry(g, opt);
  EXPECT_TRUE(d1 == d2);
  opt.seed = 43;
  auto d3 = mg::synthetic_earth_bathymetry(g, opt);
  EXPECT_FALSE(d1 == d3);
}

TEST(Bathymetry, PolarRowsAreLand) {
  mg::CurvilinearGrid g(mg::pop_1deg_spec(0.2));
  auto depth = mg::synthetic_earth_bathymetry(g, {});
  for (int i = 0; i < g.nx(); ++i) {
    EXPECT_DOUBLE_EQ(depth(i, 0), 0.0);
    EXPECT_DOUBLE_EQ(depth(i, g.ny() - 1), 0.0);
  }
}

TEST(Bathymetry, DepthsWithinConfiguredRange) {
  mg::CurvilinearGrid g(mg::pop_1deg_spec(0.2));
  mg::BathymetryOptions opt;
  opt.shelf_depth = 120;
  opt.max_depth = 5000;
  auto depth = mg::synthetic_earth_bathymetry(g, opt);
  for (double d : depth) {
    if (d > 0) {
      EXPECT_GE(d, opt.shelf_depth);
      EXPECT_LE(d, opt.max_depth);
    }
  }
}

TEST(Hilbert, RoundTripAndLocality) {
  const int order = 4;  // 16 x 16
  const int n = 1 << order;
  // Bijection check.
  std::vector<int> seen(n * n, 0);
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) {
      auto d = mg::hilbert_d(order, x, y);
      ASSERT_LT(d, static_cast<std::uint64_t>(n) * n);
      seen[d] += 1;
      std::uint32_t rx, ry;
      mg::hilbert_xy(order, d, &rx, &ry);
      EXPECT_EQ(rx, static_cast<std::uint32_t>(x));
      EXPECT_EQ(ry, static_cast<std::uint32_t>(y));
    }
  for (int v : seen) EXPECT_EQ(v, 1);
  // Consecutive curve positions are grid neighbors (locality).
  std::uint32_t px, py;
  mg::hilbert_xy(order, 0, &px, &py);
  for (std::uint64_t d = 1; d < static_cast<std::uint64_t>(n) * n; ++d) {
    std::uint32_t x, y;
    mg::hilbert_xy(order, d, &x, &y);
    int dist = std::abs(static_cast<int>(x) - static_cast<int>(px)) +
               std::abs(static_cast<int>(y) - static_cast<int>(py));
    EXPECT_EQ(dist, 1) << "jump at d=" << d;
    px = x;
    py = y;
  }
}

TEST(Hilbert, OrderFor) {
  EXPECT_EQ(mg::hilbert_order_for(1), 0);
  EXPECT_EQ(mg::hilbert_order_for(2), 1);
  EXPECT_EQ(mg::hilbert_order_for(3), 2);
  EXPECT_EQ(mg::hilbert_order_for(16), 4);
  EXPECT_EQ(mg::hilbert_order_for(17), 5);
}
