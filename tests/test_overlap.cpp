// Split-phase communication engine tests: Request semantics, split
// halo exchanges (including several in flight at once and tag-epoch
// wrap-around), the MINIPOP_BOUNDS_CHECK tag-reuse audit, and the
// engine's core contract — overlapped solvers are bitwise identical to
// the blocking path in iterates, iteration counts and residuals.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/comm/serial_comm.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/evp/block_evp_preconditioner.hpp"
#include "src/grid/bathymetry.hpp"
#include "src/grid/decomposition.hpp"
#include "src/grid/stencil.hpp"
#include "src/perf/pop_timing_model.hpp"
#include "src/solver/chron_gear.hpp"
#include "src/solver/lanczos.hpp"
#include "src/solver/pcsi.hpp"
#include "src/solver/pipelined_cg.hpp"
#include "src/util/rng.hpp"

namespace mc = minipop::comm;
namespace me = minipop::evp;
namespace mg = minipop::grid;
namespace mp = minipop::perf;
namespace ms = minipop::solver;
namespace mu = minipop::util;

namespace {

struct Problem {
  std::unique_ptr<mg::CurvilinearGrid> grid;
  mu::Field depth;
  std::unique_ptr<mg::NinePointStencil> stencil;
  std::unique_ptr<mg::Decomposition> decomp;
  mu::Field b_global;
};

Problem make_problem(int nx, int ny, int block, int nranks,
                     bool periodic = false, std::uint64_t seed = 11) {
  Problem p;
  mg::GridSpec spec;
  spec.kind = mg::GridKind::kUniform;
  spec.nx = nx;
  spec.ny = ny;
  spec.periodic_x = periodic;
  spec.dx = 1.0e4;
  spec.dy = 1.2e4;
  p.grid = std::make_unique<mg::CurvilinearGrid>(spec);
  p.depth = mg::bowl_bathymetry(*p.grid, 4000.0);
  const double phi = mg::barotropic_phi(600.0);
  p.stencil = std::make_unique<mg::NinePointStencil>(*p.grid, p.depth, phi);
  p.decomp = std::make_unique<mg::Decomposition>(
      nx, ny, periodic, p.stencil->mask(), block, block, nranks);
  mu::Xoshiro256 rng(seed);
  p.b_global = mu::Field(nx, ny, 0.0);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      if (p.stencil->mask()(i, j)) p.b_global(i, j) = rng.uniform(-1, 1);
  return p;
}

mu::Field random_global(int nx, int ny, std::uint64_t seed) {
  mu::Field f(nx, ny, 0.0);
  mu::Xoshiro256 rng(seed);
  for (double& v : f) v = rng.uniform(-1, 1);
  return f;
}

void expect_fields_bitwise(const mu::Field& a, const mu::Field& b) {
  ASSERT_EQ(a.nx(), b.nx());
  ASSERT_EQ(a.ny(), b.ny());
  for (int j = 0; j < a.ny(); ++j)
    for (int i = 0; i < a.nx(); ++i)
      ASSERT_EQ(a(i, j), b(i, j)) << "at (" << i << ", " << j << ")";
}

void expect_stats_bitwise(const ms::SolveStats& a, const ms::SolveStats& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.relative_residual, b.relative_residual);
  ASSERT_EQ(a.residual_history.size(), b.residual_history.size());
  for (std::size_t k = 0; k < a.residual_history.size(); ++k) {
    EXPECT_EQ(a.residual_history[k].first, b.residual_history[k].first);
    EXPECT_EQ(a.residual_history[k].second, b.residual_history[k].second);
  }
}

ms::EigenBounds lanczos_bounds_serial(const Problem& p, bool evp) {
  mg::Decomposition d1(p.stencil->nx(), p.stencil->ny(),
                       p.stencil->periodic_x(), p.stencil->mask(),
                       p.stencil->nx(), p.stencil->ny(), 1);
  mc::SerialComm comm;
  mc::HaloExchanger halo(d1);
  ms::DistOperator a(*p.stencil, d1, 0);
  std::unique_ptr<ms::Preconditioner> m;
  if (evp)
    m = std::make_unique<me::BlockEvpPreconditioner>(a, *p.grid, p.depth,
                                                     me::BlockEvpOptions{});
  else
    m = std::make_unique<ms::DiagonalPreconditioner>(a);
  ms::LanczosOptions lopt;
  lopt.rel_tolerance = 0.02;
  return ms::estimate_eigenvalue_bounds(comm, halo, a, *m, lopt).bounds;
}

/// One solver run on the problem's decomposition over `nranks` virtual
/// ranks (1 = SerialComm). Returns the gathered solution, rank-0 stats,
/// and per-rank iteration counts.
struct Run {
  mu::Field x;
  ms::SolveStats stats;
  std::vector<int> iters;
};

Run run_solver(const Problem& p, int nranks, const ms::SolverOptions& opt,
               const std::string& kind, bool evp_precond,
               ms::EigenBounds bounds = {1.0, 2.0}) {
  Run out;
  out.x = mu::Field(p.decomp->nx_global(), p.decomp->ny_global(), 0.0);
  out.iters.resize(nranks);
  std::vector<ms::SolveStats> stats(nranks);
  mc::HaloExchanger halo(*p.decomp);

  auto body = [&](mc::Communicator& comm) {
    ms::DistOperator a(*p.stencil, *p.decomp, comm.rank());
    std::unique_ptr<ms::Preconditioner> m;
    if (evp_precond)
      m = std::make_unique<me::BlockEvpPreconditioner>(
          a, *p.grid, p.depth, me::BlockEvpOptions{});
    else
      m = std::make_unique<ms::DiagonalPreconditioner>(a);
    std::unique_ptr<ms::IterativeSolver> s;
    if (kind == "cg")
      s = std::make_unique<ms::ChronGearSolver>(opt);
    else if (kind == "pcsi")
      s = std::make_unique<ms::PcsiSolver>(bounds, opt);
    else
      s = std::make_unique<ms::PipelinedCgSolver>(opt);
    mc::DistField b(*p.decomp, comm.rank()), x(*p.decomp, comm.rank());
    b.load_global(p.b_global);
    stats[comm.rank()] = s->solve(comm, halo, a, *m, b, x);
    x.store_global(out.x);  // disjoint interiors; no race
  };

  if (nranks == 1) {
    mc::SerialComm comm;
    body(comm);
  } else {
    mc::ThreadTeam team(nranks);
    team.run(body);
  }
  out.stats = stats[0];
  for (int r = 0; r < nranks; ++r) out.iters[r] = stats[r].iterations;
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
// Request semantics
// ---------------------------------------------------------------------

TEST(Requests, SerialAllreduceCompletesImmediately) {
  mc::SerialComm comm;
  double v[2] = {3.0, -1.5};
  mc::Request r = comm.iallreduce(std::span<double>(v, 2),
                                  mc::ReduceOp::kSum);
  EXPECT_TRUE(r.done());
  EXPECT_TRUE(r.test());
  r.wait();  // idempotent
  EXPECT_EQ(v[0], 3.0);  // size-1 reduction is the identity
  EXPECT_EQ(v[1], -1.5);
  EXPECT_EQ(comm.costs().counters().allreduces, 1u);
}

TEST(Requests, SerialPointToPointRejected) {
  mc::SerialComm comm;
  double v[1] = {0.0};
  EXPECT_THROW(comm.isend(0, 0, std::span<const double>(v, 1)),
               mu::Error);
  EXPECT_THROW(comm.irecv(0, 0, std::span<double>(v, 1)), mu::Error);
}

TEST(Requests, ThreadAllreduceFixedOrderDeterministic) {
  const int nranks = 4;
  // Values chosen so that summation order changes the rounded result.
  std::vector<double> contrib = {1.0e16, 1.0, -1.0e16, 1.0};
  double expected = contrib[0];
  for (int r = 1; r < nranks; ++r) expected += contrib[r];

  std::vector<double> got(nranks);
  mc::ThreadTeam team(nranks);
  team.run([&](mc::Communicator& comm) {
    double v = contrib[comm.rank()];
    comm.iallreduce(std::span<double>(&v, 1), mc::ReduceOp::kSum).wait();
    got[comm.rank()] = v;
  });
  for (int r = 0; r < nranks; ++r) EXPECT_EQ(got[r], expected);
}

TEST(Requests, MultipleOutstandingReductionsCompleteOutOfOrder) {
  const int nranks = 3;
  std::vector<double> sum1(nranks), sum2(nranks), maxv(nranks);
  mc::ThreadTeam team(nranks);
  team.run([&](mc::Communicator& comm) {
    const int r = comm.rank();
    double a = 1.0 + r;         // sum = 6
    double b[2] = {10.0 * r, static_cast<double>(r)};  // sum = {30, 3}
    mc::Request ra =
        comm.iallreduce(std::span<double>(&a, 1), mc::ReduceOp::kSum);
    mc::Request rb =
        comm.iallreduce(std::span<double>(b, 2), mc::ReduceOp::kMax);
    rb.wait();  // complete in reverse post order
    ra.wait();
    sum1[r] = a;
    sum2[r] = b[0];
    maxv[r] = b[1];
  });
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(sum1[r], 6.0);
    EXPECT_EQ(sum2[r], 20.0);  // max of {0, 10, 20}
    EXPECT_EQ(maxv[r], 2.0);
  }
}

TEST(Requests, SendRecvLifecycle) {
  mc::ThreadTeam team(2);
  team.run([&](mc::Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> msg = {1.0, 2.0, 3.0};
      mc::Request s =
          comm.isend(1, 42, std::span<const double>(msg.data(), 3));
      EXPECT_TRUE(s.done());  // eager: complete at post time
      msg.assign(3, -9.0);    // buffer reusable immediately
    } else {
      std::vector<double> buf(3, 0.0);
      mc::Request r =
          comm.irecv(0, 42, std::span<double>(buf.data(), 3));
      r.wait();
      EXPECT_TRUE(r.done());
      EXPECT_EQ(buf[0], 1.0);
      EXPECT_EQ(buf[1], 2.0);
      EXPECT_EQ(buf[2], 3.0);
    }
  });
}

TEST(Requests, PostedTimeCoversExposedTime) {
  const int nranks = 3;
  mc::ThreadTeam team(nranks);
  team.run([&](mc::Communicator& comm) {
    for (int round = 0; round < 5; ++round) {
      double v = comm.rank() + round;
      comm.iallreduce(std::span<double>(&v, 1), mc::ReduceOp::kSum)
          .wait();
    }
  });
  for (int r = 0; r < nranks; ++r) {
    const auto& c = team.costs(r);
    EXPECT_EQ(c.requests, 5u);
    EXPECT_GE(c.posted_comm_seconds, c.exposed_comm_seconds);
    EXPECT_GE(c.exposed_comm_seconds, 0.0);
    EXPECT_GE(c.hidden_comm_seconds(), 0.0);
  }
}

// ---------------------------------------------------------------------
// Split-phase halo exchange
// ---------------------------------------------------------------------

TEST(SplitHalo, MatchesBlockingAtWidthsOneAndTwo) {
  for (int h : {1, 2}) {
    const int nranks = 4;
    auto p = make_problem(24, 16, 6, nranks, /*periodic=*/true);
    const auto global = random_global(24, 16, 77 + h);
    mc::HaloExchanger halo(*p.decomp);
    mc::ThreadTeam team(nranks);
    team.run([&](mc::Communicator& comm) {
      mc::DistField blocking(*p.decomp, comm.rank(), h);
      mc::DistField split(*p.decomp, comm.rank(), h);
      blocking.load_global(global);
      split.load_global(global);

      halo.exchange(comm, blocking);
      mc::HaloHandle inflight = halo.begin(comm, split);
      EXPECT_TRUE(inflight.active());
      inflight.finish();
      EXPECT_FALSE(inflight.active());

      for (int lb = 0; lb < blocking.num_local_blocks(); ++lb)
        expect_fields_bitwise(blocking.data(lb), split.data(lb));
    });
  }
}

TEST(SplitHalo, TwoInFlightExchangesFinishOutOfOrder) {
  const int nranks = 4;
  auto p = make_problem(24, 16, 6, nranks);
  const auto g1 = random_global(24, 16, 101);
  const auto g2 = random_global(24, 16, 202);
  mc::HaloExchanger halo(*p.decomp);
  mc::ThreadTeam team(nranks);
  team.run([&](mc::Communicator& comm) {
    mc::DistField ref1(*p.decomp, comm.rank()), ref2(*p.decomp,
                                                     comm.rank());
    mc::DistField f1(*p.decomp, comm.rank()), f2(*p.decomp, comm.rank());
    ref1.load_global(g1);
    ref2.load_global(g2);
    f1.load_global(g1);
    f2.load_global(g2);
    halo.exchange(comm, ref1);
    halo.exchange(comm, ref2);

    // Two exchanges in flight at once; the tag epochs keep their
    // messages apart even when completed in reverse order.
    mc::HaloHandle h1 = halo.begin(comm, f1);
    mc::HaloHandle h2 = halo.begin(comm, f2);
    h2.finish();
    h1.finish();

    for (int lb = 0; lb < f1.num_local_blocks(); ++lb) {
      expect_fields_bitwise(ref1.data(lb), f1.data(lb));
      expect_fields_bitwise(ref2.data(lb), f2.data(lb));
    }
  });
}

TEST(SplitHalo, EpochWindowWrapsAcrossManyExchanges) {
  const int nranks = 3;
  auto p = make_problem(18, 18, 6, nranks, /*periodic=*/true);
  const auto global = random_global(18, 18, 5);
  mc::HaloExchanger halo(*p.decomp);
  mc::ThreadTeam team(nranks);
  team.run([&](mc::Communicator& comm) {
    mc::DistField ref(*p.decomp, comm.rank());
    mc::DistField f(*p.decomp, comm.rank());
    ref.load_global(global);
    f.load_global(global);
    halo.exchange(comm, ref);
    // 3x the epoch window: each begin() draws a fresh epoch and the
    // counter wraps multiple times with exchanges completing in between.
    for (int k = 0; k < 3 * mc::Communicator::kTagEpochWindow; ++k) {
      mc::HaloHandle h = halo.begin(comm, f);
      h.finish();
    }
    for (int lb = 0; lb < f.num_local_blocks(); ++lb)
      expect_fields_bitwise(ref.data(lb), f.data(lb));
  });
}

TEST(SplitHalo, AbandonedHandleFinishesInDestructor) {
  const int nranks = 2;
  auto p = make_problem(12, 12, 6, nranks);
  const auto global = random_global(12, 12, 9);
  mc::HaloExchanger halo(*p.decomp);
  mc::ThreadTeam team(nranks);
  team.run([&](mc::Communicator& comm) {
    mc::DistField ref(*p.decomp, comm.rank());
    mc::DistField f(*p.decomp, comm.rank());
    ref.load_global(global);
    f.load_global(global);
    halo.exchange(comm, ref);
    {
      mc::HaloHandle h = halo.begin(comm, f);
      // dropped without finish(): destructor completes the exchange
    }
    for (int lb = 0; lb < f.num_local_blocks(); ++lb)
      expect_fields_bitwise(ref.data(lb), f.data(lb));
  });
}

#if MINIPOP_BOUNDS_CHECK
TEST(TagAudit, DetectsRecvPostedOnBusyChannel) {
  mc::ThreadTeam team(2);
  bool caught = false;
  try {
    team.run([&](mc::Communicator& comm) {
      if (comm.rank() != 1) return;
      std::vector<double> a(3, 0.0), b(3, 0.0);
      mc::Request r1 = comm.irecv(0, 7, std::span<double>(a.data(), 3));
      // Same (src, tag) while r1 is still outstanding: the audit must
      // fire — this is exactly what a reused tag epoch would look like.
      mc::Request r2 = comm.irecv(0, 7, std::span<double>(b.data(), 3));
      r2.wait();  // unreachable
    });
  } catch (const mu::Error& e) {
    caught = true;
    EXPECT_NE(std::string(e.what()).find("tag-epoch audit"),
              std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(caught);
}
#endif

// ---------------------------------------------------------------------
// Overlapped operator sweeps
// ---------------------------------------------------------------------

TEST(OverlapOperator, SweepsBitwiseIdenticalIncludingThinBlocks) {
  // block=6: regular interior/rim split; block=2: nx,ny <= 2 forces the
  // all-rim path (no interior).
  for (int block : {6, 2}) {
    const int nranks = 3;
    auto p = make_problem(18, 16, block, nranks, /*periodic=*/true);
    const auto global = random_global(18, 16, 31 + block);
    mc::HaloExchanger halo(*p.decomp);
    mc::ThreadTeam team(nranks);
    team.run([&](mc::Communicator& comm) {
      ms::DistOperator a(*p.stencil, *p.decomp, comm.rank());
      mc::DistField x(*p.decomp, comm.rank()), b(*p.decomp, comm.rank());
      mc::DistField y1(*p.decomp, comm.rank()), y2(*p.decomp, comm.rank());
      mc::DistField r1(*p.decomp, comm.rank()), r2(*p.decomp, comm.rank());
      x.load_global(global);
      b.load_global(p.b_global);

      a.apply(comm, halo, x, y1);
      a.apply_overlapped(comm, halo, x, y2);
      a.residual(comm, halo, b, x, r1);
      a.residual_overlapped(comm, halo, b, x, r2);
      const double n1 = a.residual_local_norm2(comm, halo, b, x, r1);
      const double n2 =
          a.residual_local_norm2_overlapped(comm, halo, b, x, r2);

      EXPECT_EQ(n1, n2);
      for (int lb = 0; lb < x.num_local_blocks(); ++lb) {
        expect_fields_bitwise(y1.data(lb), y2.data(lb));
        expect_fields_bitwise(r1.data(lb), r2.data(lb));
      }
    });
  }
}

// ---------------------------------------------------------------------
// Overlapped solvers: the bitwise-identity contract
// ---------------------------------------------------------------------

TEST(OverlapSolvers, ChronGearBitwiseIdenticalSerialAndMultiRank) {
  for (int nranks : {1, 4}) {
    for (bool evp : {false, true}) {
      auto p = make_problem(24, 16, 6, nranks);
      ms::SolverOptions opt;
      opt.rel_tolerance = 1e-11;
      opt.record_residuals = true;
      auto blocking = run_solver(p, nranks, opt, "cg", evp);
      opt.overlap = true;
      auto overlapped = run_solver(p, nranks, opt, "cg", evp);
      ASSERT_TRUE(blocking.stats.converged);
      expect_stats_bitwise(blocking.stats, overlapped.stats);
      expect_fields_bitwise(blocking.x, overlapped.x);
      for (int r = 0; r < nranks; ++r)
        EXPECT_EQ(blocking.iters[r], overlapped.iters[r]);
    }
  }
}

TEST(OverlapSolvers, PcsiBitwiseIdenticalSerialAndMultiRank) {
  for (int nranks : {1, 3}) {
    for (bool evp : {false, true}) {
      auto p = make_problem(18, 18, 6, nranks, /*periodic=*/true);
      const auto bounds = lanczos_bounds_serial(p, evp);
      ms::SolverOptions opt;
      opt.rel_tolerance = 1e-10;
      opt.record_residuals = true;
      auto blocking = run_solver(p, nranks, opt, "pcsi", evp, bounds);
      opt.overlap = true;
      auto overlapped = run_solver(p, nranks, opt, "pcsi", evp, bounds);
      ASSERT_TRUE(blocking.stats.converged);
      expect_stats_bitwise(blocking.stats, overlapped.stats);
      expect_fields_bitwise(blocking.x, overlapped.x);
      for (int r = 0; r < nranks; ++r)
        EXPECT_EQ(blocking.iters[r], overlapped.iters[r]);
    }
  }
}

TEST(OverlapSolvers, PipelinedCgBitwiseIdentical) {
  for (int nranks : {1, 4}) {
    auto p = make_problem(24, 16, 6, nranks);
    ms::SolverOptions opt;
    opt.rel_tolerance = 1e-11;
    opt.record_residuals = true;
    auto blocking = run_solver(p, nranks, opt, "pipecg", false);
    opt.overlap = true;
    auto overlapped = run_solver(p, nranks, opt, "pipecg", false);
    ASSERT_TRUE(blocking.stats.converged);
    expect_stats_bitwise(blocking.stats, overlapped.stats);
    expect_fields_bitwise(blocking.x, overlapped.x);
  }
}

TEST(OverlapSolvers, ChronGearCheckFrequencyOne) {
  // check_frequency == 1 exercises the pre-loop norm posting in the
  // overlapped ChronGear (the first check's reduction has no previous
  // iteration to hide behind).
  auto p = make_problem(18, 14, 6, 2);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.check_frequency = 1;
  opt.record_residuals = true;
  auto blocking = run_solver(p, 2, opt, "cg", false);
  opt.overlap = true;
  auto overlapped = run_solver(p, 2, opt, "cg", false);
  ASSERT_TRUE(blocking.stats.converged);
  expect_stats_bitwise(blocking.stats, overlapped.stats);
  expect_fields_bitwise(blocking.x, overlapped.x);
}

TEST(OverlapSolvers, NoRedundantHaloExchanges) {
  // The split-phase engine must change WHEN halo updates happen, never
  // HOW MANY: one per operator sweep in both modes, for both solvers.
  auto p = make_problem(24, 16, 6, 1);
  const auto bounds = lanczos_bounds_serial(p, false);
  for (const std::string kind : {"cg", "pcsi"}) {
    ms::SolverOptions opt;
    opt.rel_tolerance = 1e-10;
    auto blocking = run_solver(p, 1, opt, kind, false, bounds);
    opt.overlap = true;
    auto overlapped = run_solver(p, 1, opt, kind, false, bounds);
    ASSERT_TRUE(blocking.stats.converged) << kind;
    EXPECT_EQ(blocking.stats.costs.halo_exchanges,
              overlapped.stats.costs.halo_exchanges)
        << kind;
  }
}

// ---------------------------------------------------------------------
// Halo freshness attestation
// ---------------------------------------------------------------------

TEST(HaloFreshness, FreshInputSkipsExactlyOneExchange) {
  auto p = make_problem(24, 16, 6, 1);
  const auto x0_global = random_global(24, 16, 55);
  for (bool overlap : {false, true}) {
    ms::SolverOptions opt;
    opt.rel_tolerance = 1e-10;
    opt.overlap = overlap;
    ms::ChronGearSolver solver(opt);

    auto solve_with = [&](mc::HaloFreshness fresh, bool pre_exchange) {
      mc::SerialComm comm;
      mc::HaloExchanger halo(*p.decomp);
      ms::DistOperator a(*p.stencil, *p.decomp, 0);
      ms::DiagonalPreconditioner m(a);
      mc::DistField b(*p.decomp, 0), x(*p.decomp, 0);
      b.load_global(p.b_global);
      x.load_global(x0_global);
      if (pre_exchange) halo.exchange(comm, x);
      const auto snapshot = comm.costs().counters();
      auto stats = solver.solve(comm, halo, a, m, b, x, fresh);
      mu::Field out(24, 16, 0.0);
      x.store_global(out);
      return std::make_tuple(std::move(out), stats,
                             comm.costs().since(snapshot).halo_exchanges);
    };

    // Stale path exchanges x itself; fresh path trusts the caller's
    // pre-exchange. Same values either way -> bitwise-identical solve,
    // exactly one halo exchange fewer inside it.
    auto [x_stale, s_stale, h_stale] =
        solve_with(mc::HaloFreshness::kStale, true);
    auto [x_fresh, s_fresh, h_fresh] =
        solve_with(mc::HaloFreshness::kFresh, true);
    ASSERT_TRUE(s_stale.converged);
    expect_stats_bitwise(s_stale, s_fresh);
    expect_fields_bitwise(x_stale, x_fresh);
    EXPECT_EQ(h_stale, h_fresh + 1);
  }
}

// ---------------------------------------------------------------------
// Posted/exposed accounting
// ---------------------------------------------------------------------

TEST(OverlapAccounting, DerivedQuantities) {
  mc::CostCounters c;
  c.posted_comm_seconds = 2.0;
  c.exposed_comm_seconds = 0.5;
  c.requests = 7;
  const auto a = mp::overlap_accounting(c);
  EXPECT_EQ(a.posted_seconds, 2.0);
  EXPECT_EQ(a.exposed_seconds, 0.5);
  EXPECT_EQ(a.requests, 7u);
  EXPECT_EQ(a.hidden_seconds(), 1.5);
  EXPECT_EQ(a.hidden_fraction(), 0.75);

  const auto zero = mp::overlap_accounting(mc::CostCounters{});
  EXPECT_EQ(zero.hidden_fraction(), 0.0);
}

TEST(OverlapAccounting, SolveRecordsPostedAndExposed) {
  const int nranks = 4;
  auto p = make_problem(24, 16, 6, nranks);
  ms::SolverOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.overlap = true;
  auto run = run_solver(p, nranks, opt, "cg", false);
  ASSERT_TRUE(run.stats.converged);
  const auto a = mp::overlap_accounting(run.stats.costs);
  EXPECT_GT(a.requests, 0u);
  EXPECT_GT(a.posted_seconds, 0.0);
  EXPECT_GE(a.posted_seconds, a.exposed_seconds);
  EXPECT_GE(a.exposed_seconds, 0.0);
}
