// Ensemble runner for the paper's §6 methodology: many mini-POP runs
// that are identical except for an O(1e-14) perturbation of the initial
// temperature; the spread of their monthly temperature fields is the
// baseline natural variability against which a modified solver (or a
// loosened tolerance) is judged via RMSZ.
#pragma once

#include <functional>
#include <vector>

#include "src/model/config.hpp"
#include "src/util/array3d.hpp"

namespace minipop::stats {

struct EnsembleConfig {
  /// Per-member model configuration. nranks == 1 runs each member
  /// serially (the paper's setup); nranks > 1 runs each member on a
  /// ThreadComm team of that many ranks. A threaded member computes the
  /// same physics but is NOT bitwise identical to its serial twin: the
  /// solver's global reductions combine partial sums in decomposition
  /// order, so a different rank count reassociates the floating-point
  /// sums (round-off-level differences, same as real MPI).
  model::ModelConfig model;
  int members = 40;           ///< paper: 40
  int months = 12;            ///< paper: 12-month runs
  double perturbation = 1e-14;
  std::uint64_t seed0 = 1000;
  /// Solve this many members' elliptic systems as one batched multi-RHS
  /// solve per time step (Fig-13 workload batching; DESIGN.md §10-§11).
  /// 1 = scalar solves (the historical path). Requires nranks == 1:
  /// batching composes members ACROSS models on one rank, while
  /// nranks > 1 splits one model across ranks — combining the two would
  /// need per-rank model groups, which nothing here needs yet. The
  /// batched stack carries the full decorator chain (mixed precision,
  /// resilience with per-member recovery, overlap), so any SolverConfig
  /// composes with batch > 1. Fp64 batched members are bitwise
  /// identical to batch == 1 members: P-CSI/ChronGear batched solves
  /// are bit-exact per member and the resilience decorator is
  /// bitwise-neutral in fault-free runs.
  int batch = 1;
};

/// Monthly mean temperature fields of one run, oldest month first.
using MonthlySeries = std::vector<util::Array3D<double>>;

/// Run one (optionally perturbed) simulation and return its monthly
/// series. `member` < 0 means unperturbed. With config.model.nranks > 1
/// the member runs on a ThreadComm team and the per-rank partial
/// monthly means (each rank records its owned cells, zeros elsewhere)
/// are summed into the full field.
MonthlySeries run_member(const EnsembleConfig& config, int member);

/// Run the whole ensemble (members 0..members-1). `progress` (may be
/// null) is called after each member completes. With config.batch > 1
/// members advance in lockstep groups whose elliptic solves are batched
/// into multi-RHS solves (one aggregated halo message per neighbor and
/// one vector allreduce per reduction point for the whole group).
std::vector<MonthlySeries> run_ensemble(
    const EnsembleConfig& config,
    const std::function<void(int done, int total)>& progress = nullptr);

/// Extract the fields of month `m` (0-based) from every member.
std::vector<util::Array3D<double>> month_slice(
    const std::vector<MonthlySeries>& ensemble, int month);

}  // namespace minipop::stats
