// Ensemble runner for the paper's §6 methodology: many serial mini-POP
// runs that are identical except for an O(1e-14) perturbation of the
// initial temperature; the spread of their monthly temperature fields is
// the baseline natural variability against which a modified solver (or a
// loosened tolerance) is judged via RMSZ.
#pragma once

#include <functional>
#include <vector>

#include "src/model/config.hpp"
#include "src/util/array3d.hpp"

namespace minipop::stats {

struct EnsembleConfig {
  model::ModelConfig model;   ///< must have nranks == 1 (serial members)
  int members = 40;           ///< paper: 40
  int months = 12;            ///< paper: 12-month runs
  double perturbation = 1e-14;
  std::uint64_t seed0 = 1000;
};

/// Monthly mean temperature fields of one run, oldest month first.
using MonthlySeries = std::vector<util::Array3D<double>>;

/// Run one (optionally perturbed) simulation and return its monthly
/// series. `member` < 0 means unperturbed.
MonthlySeries run_member(const EnsembleConfig& config, int member);

/// Run the whole ensemble (members 0..members-1). `progress` (may be
/// null) is called after each member completes.
std::vector<MonthlySeries> run_ensemble(
    const EnsembleConfig& config,
    const std::function<void(int done, int total)>& progress = nullptr);

/// Extract the fields of month `m` (0-based) from every member.
std::vector<util::Array3D<double>> month_slice(
    const std::vector<MonthlySeries>& ensemble, int month);

}  // namespace minipop::stats
