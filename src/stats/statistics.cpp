#include "src/stats/statistics.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace minipop::stats {

namespace {
void require_shape(const util::Array3D<double>& a,
                   const util::Array3D<double>& b) {
  MINIPOP_REQUIRE(a.nx() == b.nx() && a.ny() == b.ny() && a.nz() == b.nz(),
                  "field shape mismatch " << a.nx() << "x" << a.ny() << "x"
                                          << a.nz() << " vs " << b.nx()
                                          << "x" << b.ny() << "x" << b.nz());
}
}  // namespace

double rmse(const util::Array3D<double>& a, const util::Array3D<double>& b,
            const util::MaskArray& mask) {
  require_shape(a, b);
  MINIPOP_REQUIRE(mask.nx() == a.nx() && mask.ny() == a.ny(),
                  "mask shape mismatch");
  double sum = 0.0;
  long count = 0;
  for (int k = 0; k < a.nz(); ++k)
    for (int j = 0; j < a.ny(); ++j)
      for (int i = 0; i < a.nx(); ++i) {
        if (!mask(i, j)) continue;
        const double d = a(i, j, k) - b(i, j, k);
        sum += d * d;
        ++count;
      }
  MINIPOP_REQUIRE(count > 0, "no ocean cells under mask");
  return std::sqrt(sum / count);
}

EnsembleMoments ensemble_moments(
    const std::vector<util::Array3D<double>>& members) {
  MINIPOP_REQUIRE(members.size() >= 2, "ensemble needs >= 2 members");
  for (std::size_t m = 1; m < members.size(); ++m)
    require_shape(members[0], members[m]);

  const auto& first = members[0];
  EnsembleMoments out;
  out.members = static_cast<int>(members.size());
  out.mean = util::Array3D<double>(first.nx(), first.ny(), first.nz(), 0.0);
  out.stddev =
      util::Array3D<double>(first.nx(), first.ny(), first.nz(), 0.0);

  const double inv_n = 1.0 / out.members;
  for (const auto& m : members)
    for (std::size_t n = 0; n < m.size(); ++n)
      out.mean.data()[n] += m.data()[n] * inv_n;
  for (const auto& m : members)
    for (std::size_t n = 0; n < m.size(); ++n) {
      const double d = m.data()[n] - out.mean.data()[n];
      out.stddev.data()[n] += d * d;
    }
  const double inv_n1 = 1.0 / (out.members - 1);
  for (std::size_t n = 0; n < out.stddev.size(); ++n)
    out.stddev.data()[n] = std::sqrt(out.stddev.data()[n] * inv_n1);
  return out;
}

double rmsz(const util::Array3D<double>& x, const EnsembleMoments& moments,
            const util::MaskArray& mask, double min_stddev) {
  require_shape(x, moments.mean);
  double sum = 0.0;
  long count = 0;
  for (int k = 0; k < x.nz(); ++k)
    for (int j = 0; j < x.ny(); ++j)
      for (int i = 0; i < x.nx(); ++i) {
        if (!mask(i, j)) continue;
        const double sigma = moments.stddev(i, j, k);
        if (sigma < min_stddev) continue;
        const double z = (x(i, j, k) - moments.mean(i, j, k)) / sigma;
        sum += z * z;
        ++count;
      }
  MINIPOP_REQUIRE(count > 0,
                  "no cells with ensemble variability above min_stddev");
  return std::sqrt(sum / count);
}

std::pair<double, double> ensemble_rmsz_range(
    const std::vector<util::Array3D<double>>& members,
    const EnsembleMoments& moments, const util::MaskArray& mask) {
  double lo = 1e300, hi = -1e300;
  for (const auto& m : members) {
    const double z = rmsz(m, moments, mask);
    lo = std::min(lo, z);
    hi = std::max(hi, z);
  }
  return {lo, hi};
}

}  // namespace minipop::stats
