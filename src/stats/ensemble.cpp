#include "src/stats/ensemble.hpp"

#include <algorithm>
#include <memory>

#include "src/comm/serial_comm.hpp"
#include "src/comm/thread_comm.hpp"
#include "src/model/diagnostics.hpp"
#include "src/model/ocean_model.hpp"
#include "src/util/error.hpp"

namespace minipop::stats {

namespace {

MonthlySeries run_member_on(comm::Communicator& comm,
                            const EnsembleConfig& config, int member) {
  model::OceanModel model(comm, config.model);
  if (member >= 0) {
    // The perturbation is seeded per GLOBAL cell, so it is identical
    // for every decomposition and rank count.
    model.perturb_temperature(
        config.perturbation,
        config.seed0 + static_cast<std::uint64_t>(member));
  }
  model::MonthlyTemperatureRecorder recorder(model);
  while (recorder.completed_months() < config.months) {
    model.step(comm);
    recorder.sample(model);
  }
  return recorder.months();
}

}  // namespace

MonthlySeries run_member(const EnsembleConfig& config, int member) {
  MINIPOP_REQUIRE(config.months >= 1, "months=" << config.months);
  const int nranks = config.model.nranks;
  MINIPOP_REQUIRE(nranks >= 1, "nranks=" << nranks);

  if (nranks == 1) {
    comm::SerialComm comm;
    return run_member_on(comm, config, member);
  }

  // Threaded member: each rank steps its share of the decomposition and
  // records its OWNED cells (gather_temperature leaves unowned cells at
  // zero), so the per-rank partial series sum elementwise — exactly,
  // zeros against values — into the full monthly means.
  comm::ThreadTeam team(nranks);
  std::vector<MonthlySeries> partial(nranks);
  team.run([&](comm::Communicator& comm) {
    partial[comm.rank()] = run_member_on(comm, config, member);
  });

  MonthlySeries out = std::move(partial[0]);
  for (int r = 1; r < nranks; ++r) {
    MINIPOP_REQUIRE(partial[r].size() == out.size(),
                    "rank " << r << " recorded " << partial[r].size()
                            << " months, rank 0 " << out.size());
    for (std::size_t t = 0; t < out.size(); ++t) {
      auto dst = out[t].flat();
      const auto src = partial[r][t].flat();
      for (std::size_t q = 0; q < dst.size(); ++q) dst[q] += src[q];
    }
  }
  return out;
}

std::vector<MonthlySeries> run_ensemble(
    const EnsembleConfig& config,
    const std::function<void(int, int)>& progress) {
  MINIPOP_REQUIRE(config.members >= 2, "members=" << config.members);
  MINIPOP_REQUIRE(config.batch >= 1, "batch=" << config.batch);

  if (config.batch == 1) {
    std::vector<MonthlySeries> out;
    out.reserve(config.members);
    for (int m = 0; m < config.members; ++m) {
      out.push_back(run_member(config, m));
      if (progress) progress(m + 1, config.members);
    }
    return out;
  }

  // Batched groups: the members of a group advance in lockstep, and
  // each time step's elliptic solves run as ONE multi-RHS batched solve
  // — one aggregated halo message per neighbor and one vector allreduce
  // per reduction point for the whole group (DESIGN.md §10).
  MINIPOP_REQUIRE(config.model.nranks == 1,
                  "batched ensemble members run serially (batch > 1 "
                  "requires nranks == 1; see EnsembleConfig::batch)");
  MINIPOP_REQUIRE(config.months >= 1, "months=" << config.months);

  std::vector<MonthlySeries> out(config.members);
  int done = 0;
  for (int g = 0; g < config.members; g += config.batch) {
    const int n = std::min(config.batch, config.members - g);
    comm::SerialComm comm;
    std::vector<std::unique_ptr<model::OceanModel>> models;
    std::vector<std::unique_ptr<model::MonthlyTemperatureRecorder>>
        recorders;
    models.reserve(n);
    recorders.reserve(n);
    for (int t = 0; t < n; ++t) {
      models.push_back(
          std::make_unique<model::OceanModel>(comm, config.model));
      models.back()->perturb_temperature(
          config.perturbation,
          config.seed0 + static_cast<std::uint64_t>(g + t));
      recorders.push_back(
          std::make_unique<model::MonthlyTemperatureRecorder>(
              *models.back()));
    }

    // Every member's operator is identical (same grid, bathymetry and
    // solver configuration); member 0's solver carries the batch.
    auto& solver = models[0]->barotropic().solver();
    std::vector<const comm::DistField*> bs(n);
    std::vector<comm::DistField*> xs(n);
    while (recorders[0]->completed_months() < config.months) {
      for (int t = 0; t < n; ++t) {
        models[t]->step_begin(comm);
        bs[t] = &models[t]->barotropic().rhs();
        xs[t] = &models[t]->barotropic().eta();
      }
      // step_begin leaves each member's eta halo fresh, and the batch
      // loads full padded planes, so the freshness attestation carries.
      const solver::BatchSolveStats batch_stats = solver.solve_batch(
          comm, bs, xs, comm::HaloFreshness::kFresh);
      for (int t = 0; t < n; ++t) {
        const solver::BatchMemberStats& ms = batch_stats.members[t];
        solver::SolveStats s;
        s.iterations = ms.iterations;
        s.converged = ms.converged;
        s.relative_residual = ms.relative_residual;
        s.failure = ms.failure;
        // Refinement sweeps are lockstep across the batch: every still-
        // active member participates in each batched inner solve, so
        // the batch-wide count is each member's sweep count too.
        s.refine_sweeps = batch_stats.refine_sweeps;
        // Communication costs are joint across the batch and stay in
        // batch_stats.costs; per-member costs have no meaning here.
        models[t]->step_finish(comm, s);
        recorders[t]->sample(*models[t]);
      }
    }

    for (int t = 0; t < n; ++t) {
      out[g + t] = recorders[t]->months();
      if (progress) progress(++done, config.members);
    }
  }
  return out;
}

std::vector<util::Array3D<double>> month_slice(
    const std::vector<MonthlySeries>& ensemble, int month) {
  std::vector<util::Array3D<double>> out;
  out.reserve(ensemble.size());
  for (const auto& member : ensemble) {
    MINIPOP_REQUIRE(month >= 0 && month < static_cast<int>(member.size()),
                    "month " << month << " not recorded");
    out.push_back(member[month]);
  }
  return out;
}

}  // namespace minipop::stats
