#include "src/stats/ensemble.hpp"

#include "src/comm/serial_comm.hpp"
#include "src/model/diagnostics.hpp"
#include "src/util/error.hpp"

namespace minipop::stats {

MonthlySeries run_member(const EnsembleConfig& config, int member) {
  MINIPOP_REQUIRE(config.model.nranks == 1,
                  "ensemble members run serially (nranks must be 1)");
  MINIPOP_REQUIRE(config.months >= 1, "months=" << config.months);
  comm::SerialComm comm;
  model::OceanModel model(comm, config.model);
  if (member >= 0) {
    model.perturb_temperature(config.perturbation,
                              config.seed0 + static_cast<std::uint64_t>(member));
  }
  model::MonthlyTemperatureRecorder recorder(model);
  while (recorder.completed_months() < config.months) {
    model.step(comm);
    recorder.sample(model);
  }
  return recorder.months();
}

std::vector<MonthlySeries> run_ensemble(
    const EnsembleConfig& config,
    const std::function<void(int, int)>& progress) {
  MINIPOP_REQUIRE(config.members >= 2, "members=" << config.members);
  std::vector<MonthlySeries> out;
  out.reserve(config.members);
  for (int m = 0; m < config.members; ++m) {
    out.push_back(run_member(config, m));
    if (progress) progress(m + 1, config.members);
  }
  return out;
}

std::vector<util::Array3D<double>> month_slice(
    const std::vector<MonthlySeries>& ensemble, int month) {
  std::vector<util::Array3D<double>> out;
  out.reserve(ensemble.size());
  for (const auto& member : ensemble) {
    MINIPOP_REQUIRE(month >= 0 && month < static_cast<int>(member.size()),
                    "month " << month << " not recorded");
    out.push_back(member[month]);
  }
  return out;
}

}  // namespace minipop::stats
