// Statistical measures for solver-consistency evaluation (paper §6):
// the simple RMSE test POP used for port verification (insufficient —
// Fig. 12) and the ensemble-based RMSZ score that replaces it (Fig. 13,
// after Baker et al. [2]).
#pragma once

#include <utility>
#include <vector>

#include "src/util/array2d.hpp"
#include "src/util/array3d.hpp"

namespace minipop::stats {

/// Root-mean-square difference over ocean cells (the 2D mask applies to
/// every vertical level).
double rmse(const util::Array3D<double>& a, const util::Array3D<double>& b,
            const util::MaskArray& mask);

/// Per-point ensemble mean and standard deviation (unbiased, N-1).
struct EnsembleMoments {
  util::Array3D<double> mean;
  util::Array3D<double> stddev;
  int members = 0;
};

EnsembleMoments ensemble_moments(
    const std::vector<util::Array3D<double>>& members);

/// Root-mean-square Z-score of field x against the ensemble (paper §6):
///   RMSZ = sqrt( mean_j ( (x_j - mu_j) / sigma_j )^2 )
/// over ocean cells; cells with sigma below `min_stddev` are skipped
/// (no variability to normalize by).
double rmsz(const util::Array3D<double>& x, const EnsembleMoments& moments,
            const util::MaskArray& mask, double min_stddev = 1e-14);

/// RMSZ of each member against the ensemble moments — the "yellow band"
/// of paper Fig. 13. Returns (min, max).
std::pair<double, double> ensemble_rmsz_range(
    const std::vector<util::Array3D<double>>& members,
    const EnsembleMoments& moments, const util::MaskArray& mask);

}  // namespace minipop::stats
