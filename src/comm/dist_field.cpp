#include "src/comm/dist_field.hpp"

#include "src/util/error.hpp"

namespace minipop::comm {

DistField::DistField(const grid::Decomposition& decomp, int rank, int halo)
    : decomp_(&decomp), rank_(rank), halo_(halo) {
  MINIPOP_REQUIRE(halo >= 1, "halo=" << halo);
  MINIPOP_REQUIRE(rank >= 0 && rank < decomp.nranks(), "rank=" << rank);
  block_ids_ = decomp.blocks_of_rank(rank);
  data_.reserve(block_ids_.size());
  for (std::size_t lb = 0; lb < block_ids_.size(); ++lb) {
    const auto& b = decomp.block(block_ids_[lb]);
    MINIPOP_REQUIRE(b.nx >= halo && b.ny >= halo,
                    "block " << b.nx << "x" << b.ny
                             << " smaller than halo " << halo);
    data_.emplace_back(b.nx + 2 * halo, b.ny + 2 * halo, 0.0);
    local_of_global_[block_ids_[lb]] = static_cast<int>(lb);
  }
}

const grid::BlockInfo& DistField::info(int lb) const {
  return decomp_->block(block_ids_.at(lb));
}

int DistField::local_index(int global_block_id) const {
  auto it = local_of_global_.find(global_block_id);
  return it == local_of_global_.end() ? -1 : it->second;
}

void DistField::fill(double v) {
  for (auto& f : data_) f.fill(v);
}

void DistField::load_global(const util::Field& global) {
  MINIPOP_REQUIRE(global.nx() == decomp_->nx_global() &&
                      global.ny() == decomp_->ny_global(),
                  "global field shape mismatch");
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& b = info(lb);
    for (int j = 0; j < b.ny; ++j)
      for (int i = 0; i < b.nx; ++i)
        at(lb, i, j) = global(b.i0 + i, b.j0 + j);
  }
}

void DistField::store_global(util::Field& global) const {
  MINIPOP_REQUIRE(global.nx() == decomp_->nx_global() &&
                      global.ny() == decomp_->ny_global(),
                  "global field shape mismatch");
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& b = info(lb);
    for (int j = 0; j < b.ny; ++j)
      for (int i = 0; i < b.nx; ++i)
        global(b.i0 + i, b.j0 + j) = at(lb, i, j);
  }
}

bool DistField::compatible_with(const DistField& other) const {
  return decomp_ == other.decomp_ && rank_ == other.rank_ &&
         halo_ == other.halo_;
}

}  // namespace minipop::comm
