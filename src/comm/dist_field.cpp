#include "src/comm/dist_field.hpp"

#include "src/util/error.hpp"

namespace minipop::comm {

template <typename T>
DistFieldT<T>::DistFieldT(const grid::Decomposition& decomp, int rank,
                          int halo)
    : decomp_(&decomp), rank_(rank), halo_(halo) {
  MINIPOP_REQUIRE(halo >= 1, "halo=" << halo);
  MINIPOP_REQUIRE(rank >= 0 && rank < decomp.nranks(), "rank=" << rank);
  // Every active block bounds the usable width, not just locally owned
  // ones: the exchange reads full-width rims of all neighbours.
  decomp.validate_halo(halo);
  block_ids_ = decomp.blocks_of_rank(rank);
  data_.reserve(block_ids_.size());
  for (std::size_t lb = 0; lb < block_ids_.size(); ++lb) {
    const auto& b = decomp.block(block_ids_[lb]);
    data_.emplace_back(b.nx + 2 * halo, b.ny + 2 * halo, T(0));
    local_of_global_[block_ids_[lb]] = static_cast<int>(lb);
  }
}

template <typename T>
const grid::BlockInfo& DistFieldT<T>::info(int lb) const {
  return decomp_->block(block_ids_.at(lb));
}

template <typename T>
int DistFieldT<T>::local_index(int global_block_id) const {
  auto it = local_of_global_.find(global_block_id);
  return it == local_of_global_.end() ? -1 : it->second;
}

template <typename T>
void DistFieldT<T>::fill(T v) {
  for (auto& f : data_) f.fill(v);
}

template <typename T>
void DistFieldT<T>::load_global(const util::Field& global) {
  MINIPOP_REQUIRE(global.nx() == decomp_->nx_global() &&
                      global.ny() == decomp_->ny_global(),
                  "global field shape mismatch");
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& b = info(lb);
    for (int j = 0; j < b.ny; ++j)
      for (int i = 0; i < b.nx; ++i)
        at(lb, i, j) = static_cast<T>(global(b.i0 + i, b.j0 + j));
  }
}

template <typename T>
void DistFieldT<T>::store_global(util::Field& global) const {
  MINIPOP_REQUIRE(global.nx() == decomp_->nx_global() &&
                      global.ny() == decomp_->ny_global(),
                  "global field shape mismatch");
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& b = info(lb);
    for (int j = 0; j < b.ny; ++j)
      for (int i = 0; i < b.nx; ++i)
        global(b.i0 + i, b.j0 + j) = at(lb, i, j);
  }
}

template class DistFieldT<double>;
template class DistFieldT<float>;

}  // namespace minipop::comm
