// Rank-local storage for a distributed 2D field: the blocks this rank
// owns, each padded with a halo of configurable width (POP keeps two
// halo layers; see paper §2.2).
//
// Interior cell (i, j) of local block lb lives at data(lb)(i + h, j + h).
#pragma once

#include <unordered_map>
#include <vector>

#include "src/grid/decomposition.hpp"
#include "src/util/array2d.hpp"

namespace minipop::comm {

class DistField {
 public:
  /// Default POP halo width.
  static constexpr int kDefaultHalo = 2;

  DistField(const grid::Decomposition& decomp, int rank,
            int halo = kDefaultHalo);

  const grid::Decomposition& decomposition() const { return *decomp_; }
  int rank() const { return rank_; }
  int halo() const { return halo_; }
  int num_local_blocks() const { return static_cast<int>(data_.size()); }

  const grid::BlockInfo& info(int lb) const;
  util::Field& data(int lb) { return data_[lb]; }
  const util::Field& data(int lb) const { return data_[lb]; }

  /// Interior access (i, j in block-local interior coordinates).
  double& at(int lb, int i, int j) {
    return data_[lb](i + halo_, j + halo_);
  }
  double at(int lb, int i, int j) const {
    return data_[lb](i + halo_, j + halo_);
  }

  /// Raw pointer to interior cell (0, 0) of local block lb; rows are
  /// `stride(lb)` elements apart. This is the kernel-layer entry point.
  double* interior(int lb) {
    util::Field& f = data_[lb];
    return f.data() + static_cast<std::ptrdiff_t>(halo_) * f.nx() + halo_;
  }
  const double* interior(int lb) const {
    const util::Field& f = data_[lb];
    return f.data() + static_cast<std::ptrdiff_t>(halo_) * f.nx() + halo_;
  }
  /// Padded row pitch of local block lb, in elements.
  std::ptrdiff_t stride(int lb) const { return data_[lb].nx(); }

  /// Local index of a globally-identified block, or -1 if not owned.
  int local_index(int global_block_id) const;

  void fill(double v);

  /// Copy interiors from a full-domain field (halos untouched).
  void load_global(const util::Field& global);

  /// Write interiors of the owned blocks into a full-domain field.
  void store_global(util::Field& global) const;

  /// Shape compatibility (same decomposition object, rank, halo).
  bool compatible_with(const DistField& other) const;

 private:
  const grid::Decomposition* decomp_;
  int rank_;
  int halo_;
  std::vector<int> block_ids_;  ///< global id of each local block
  std::vector<util::Field> data_;
  std::unordered_map<int, int> local_of_global_;
};

}  // namespace minipop::comm
