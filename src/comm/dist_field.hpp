// Rank-local storage for a distributed 2D field: the blocks this rank
// owns, each padded with a halo of configurable width (POP keeps two
// halo layers; see paper §2.2).
//
// Interior cell (i, j) of local block lb lives at data(lb)(i + h, j + h).
//
// The container is templated on the storage scalar: DistField (double)
// is the model/solver state everywhere precision matters, DistField32
// (float) is the half-traffic mirror the mixed-precision inner solves
// run on. Global-domain load/store always speaks double — the global
// Field is the fp64 source of truth; a float DistField converts at the
// boundary.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/grid/decomposition.hpp"
#include "src/util/array2d.hpp"

namespace minipop::comm {

template <typename T>
class DistFieldT {
 public:
  /// Default POP halo width.
  static constexpr int kDefaultHalo = 2;

  DistFieldT(const grid::Decomposition& decomp, int rank,
             int halo = kDefaultHalo);

  const grid::Decomposition& decomposition() const { return *decomp_; }
  int rank() const { return rank_; }
  int halo() const { return halo_; }
  int num_local_blocks() const { return static_cast<int>(data_.size()); }

  const grid::BlockInfo& info(int lb) const;
  util::Array2D<T>& data(int lb) { return data_[lb]; }
  const util::Array2D<T>& data(int lb) const { return data_[lb]; }

  /// Interior access (i, j in block-local interior coordinates).
  T& at(int lb, int i, int j) { return data_[lb](i + halo_, j + halo_); }
  T at(int lb, int i, int j) const {
    return data_[lb](i + halo_, j + halo_);
  }

  /// Raw pointer to interior cell (0, 0) of local block lb; rows are
  /// `stride(lb)` elements apart. This is the kernel-layer entry point.
  T* interior(int lb) {
    util::Array2D<T>& f = data_[lb];
    return f.data() + static_cast<std::ptrdiff_t>(halo_) * f.nx() + halo_;
  }
  const T* interior(int lb) const {
    const util::Array2D<T>& f = data_[lb];
    return f.data() + static_cast<std::ptrdiff_t>(halo_) * f.nx() + halo_;
  }
  /// Padded row pitch of local block lb, in elements.
  std::ptrdiff_t stride(int lb) const { return data_[lb].nx(); }

  /// Local index of a globally-identified block, or -1 if not owned.
  int local_index(int global_block_id) const;

  void fill(T v);

  /// Copy interiors from a full-domain (double) field, converting to T
  /// (halos untouched).
  void load_global(const util::Field& global);

  /// Write interiors of the owned blocks into a full-domain (double)
  /// field.
  void store_global(util::Field& global) const;

  /// Shape compatibility (same decomposition object, rank, halo) — the
  /// element types may differ, so a float mirror can be checked against
  /// its double source.
  template <typename U>
  bool compatible_with(const DistFieldT<U>& other) const {
    return decomp_ == other.decomp_ && rank_ == other.rank_ &&
           halo_ == other.halo_;
  }

 private:
  template <typename U>
  friend class DistFieldT;

  const grid::Decomposition* decomp_;
  int rank_;
  int halo_;
  std::vector<int> block_ids_;  ///< global id of each local block
  std::vector<util::Array2D<T>> data_;
  std::unordered_map<int, int> local_of_global_;
};

extern template class DistFieldT<double>;
extern template class DistFieldT<float>;

using DistField = DistFieldT<double>;
using DistField32 = DistFieldT<float>;

}  // namespace minipop::comm
