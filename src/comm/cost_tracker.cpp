#include "src/comm/cost_tracker.hpp"

namespace minipop::comm {

CostCounters CostTracker::since(const CostCounters& snapshot) const {
  CostCounters d;
  d.flops = c_.flops - snapshot.flops;
  d.redundant_flops = c_.redundant_flops - snapshot.redundant_flops;
  d.p2p_messages = c_.p2p_messages - snapshot.p2p_messages;
  d.p2p_bytes = c_.p2p_bytes - snapshot.p2p_bytes;
  d.halo_exchanges = c_.halo_exchanges - snapshot.halo_exchanges;
  d.halo_member_updates =
      c_.halo_member_updates - snapshot.halo_member_updates;
  d.allreduces = c_.allreduces - snapshot.allreduces;
  d.allreduce_doubles = c_.allreduce_doubles - snapshot.allreduce_doubles;
  d.requests = c_.requests - snapshot.requests;
  d.active_points = c_.active_points - snapshot.active_points;
  d.swept_points = c_.swept_points - snapshot.swept_points;
  d.integrity_checks = c_.integrity_checks - snapshot.integrity_checks;
  d.integrity_failures =
      c_.integrity_failures - snapshot.integrity_failures;
  d.posted_comm_seconds =
      c_.posted_comm_seconds - snapshot.posted_comm_seconds;
  d.exposed_comm_seconds =
      c_.exposed_comm_seconds - snapshot.exposed_comm_seconds;
  return d;
}

}  // namespace minipop::comm
