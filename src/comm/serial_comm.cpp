#include "src/comm/serial_comm.hpp"

#include "src/util/error.hpp"

namespace minipop::comm {

void SerialComm::allreduce(std::span<double> values, ReduceOp /*op*/) {
  // One rank: the local values are already the reduction, but the event
  // still counts (POP performs the MPI_Allreduce regardless of size).
  costs_.add_allreduce(values.size());
}

void SerialComm::send(int /*dest*/, int /*tag*/,
                      std::span<const double> /*data*/) {
  MINIPOP_REQUIRE(false, "SerialComm has no peers to send to");
}

void SerialComm::recv(int /*src*/, int /*tag*/, std::span<double> /*data*/) {
  MINIPOP_REQUIRE(false, "SerialComm has no peers to receive from");
}

}  // namespace minipop::comm
