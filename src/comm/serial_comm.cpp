#include "src/comm/serial_comm.hpp"

#include "src/util/error.hpp"

namespace minipop::comm {

Request SerialComm::iallreduce(std::span<double> values, ReduceOp /*op*/) {
  // One rank: the local values are already the reduction, but the event
  // still counts (POP performs the MPI_Allreduce regardless of size).
  // Complete at post time, so the default-constructed Request is done
  // and contributes no in-flight time.
  costs_.add_allreduce(values.size());
  return Request{};
}

Request SerialComm::isend_bytes(int /*dest*/, int /*tag*/,
                                std::span<const std::byte> /*data*/) {
  MINIPOP_REQUIRE(false, "SerialComm has no peers to send to");
  return Request{};
}

Request SerialComm::irecv_bytes(int /*src*/, int /*tag*/,
                                std::span<std::byte> /*data*/) {
  MINIPOP_REQUIRE(false, "SerialComm has no peers to receive from");
  return Request{};
}

}  // namespace minipop::comm
