#include "src/comm/thread_comm.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "src/fault/fault_injector.hpp"
#include "src/util/error.hpp"

namespace minipop::comm {

// ---------------------------------------------------------------------------
// Request states

/// Future for one rank's view of an in-flight reduction round.
class ThreadReduceRequest final : public RequestState {
 public:
  ThreadReduceRequest(ThreadTeam* team,
                      std::shared_ptr<ThreadTeam::ReduceRound> round,
                      std::span<double> out)
      : team_(team), round_(std::move(round)), out_(out) {}

  bool poll() override { return team_->reduce_poll(*round_, out_); }
  void block() override { team_->reduce_block(*round_, out_); }

 private:
  ThreadTeam* team_;
  std::shared_ptr<ThreadTeam::ReduceRound> round_;
  std::span<double> out_;
};

/// Mailbox future for one posted receive.
class ThreadRecvRequest final : public RequestState {
 public:
  ThreadRecvRequest(ThreadTeam* team, ThreadTeam::ChannelKey key,
                    std::span<std::byte> out)
      : team_(team), key_(key), out_(out) {}

  bool poll() override { return team_->recv_poll(key_, out_); }
  void block() override { team_->recv_block(key_, out_); }

 private:
  ThreadTeam* team_;
  ThreadTeam::ChannelKey key_;
  std::span<std::byte> out_;
};

// ---------------------------------------------------------------------------
// ThreadComm

int ThreadComm::size() const { return team_->nranks(); }

Request ThreadComm::iallreduce(std::span<double> values, ReduceOp op) {
  fault::hook_rank_stall(rank_);
  costs_.add_allreduce(values.size());
  auto round = team_->post_allreduce(rank_, values, op);
  return Request(
      std::make_unique<ThreadReduceRequest>(team_, std::move(round), values),
      &costs_);
}

Request ThreadComm::isend_bytes(int dest, int tag,
                                std::span<const std::byte> data) {
  costs_.add_message(data.size());
  team_->post_send(rank_, dest, tag, data);
  // Eager protocol: the message is buffered at post time, so the send is
  // already complete and contributes no in-flight request time.
  return Request{};
}

Request ThreadComm::irecv_bytes(int src, int tag,
                                std::span<std::byte> data) {
  const ThreadTeam::ChannelKey key{src, rank_, tag};
  team_->post_recv(key);
  return Request(std::make_unique<ThreadRecvRequest>(team_, key, data),
                 &costs_);
}

void ThreadComm::barrier() { team_->do_barrier(); }

void ThreadComm::declare_desync() { team_->declare_timeout(); }

void ThreadComm::resync() {
  team_->do_resync();
  // The fence wiped all queued messages, so rewinding every rank's
  // epoch counter is safe — and necessary: ranks abort a timed-out
  // exchange after different numbers of epoch draws, so the counters
  // no longer agree and post-recovery exchanges would mismatch tags.
  reset_tag_epoch();
}

// ---------------------------------------------------------------------------
// ThreadTeam

ThreadTeam::ThreadTeam(int nranks) : nranks_(nranks) {
  MINIPOP_REQUIRE(nranks >= 1, "nranks=" << nranks);
  comms_.reserve(nranks);
  for (int r = 0; r < nranks; ++r)
    comms_.push_back(std::unique_ptr<ThreadComm>(new ThreadComm(this, r)));
}

ThreadTeam::~ThreadTeam() = default;

void ThreadTeam::run(const std::function<void(Communicator&)>& fn) {
  // Fresh counters and message/reduction state per run.
  for (auto& c : comms_) c->costs().reset();
  mailboxes_.clear();
  reduce_rounds_.clear();
  reduce_posts_.assign(nranks_, 0);
  barrier_arrived_ = 0;
  poisoned_ = false;
  timed_out_ = false;
  resync_arrived_ = 0;
#if MINIPOP_BOUNDS_CHECK
  outstanding_recvs_.clear();
#endif

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(nranks_);
  threads.reserve(nranks_);
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(*comms_[r]);
      } catch (...) {
        errors[r] = std::current_exception();
        // Unblock peers that may be waiting on this rank forever: mark
        // the team poisoned so every blocked rendezvous aborts.
        poison();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Drain fault-delayed deliveries: no timer thread may outlive the run.
  std::vector<std::thread> delayed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    delayed.swap(delayed_threads_);
  }
  for (auto& t : delayed) t.join();
  // Prefer the original failure over secondary "team poisoned" aborts.
  std::exception_ptr poison_error;
  for (auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const TeamPoisonedError&) {
      poison_error = e;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  if (poison_error) std::rethrow_exception(poison_error);
}

void ThreadTeam::poison() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

void ThreadTeam::throw_if_poisoned() const {
  if (poisoned_)
    throw TeamPoisonedError("virtual-MPI team aborted: a peer rank failed");
}

void ThreadTeam::throw_if_timed_out() const {
  if (timed_out_)
    throw CommTimeoutError(
        "virtual-MPI team out of sync after a receive timeout; "
        "Communicator::resync() required");
}

void ThreadTeam::declare_timeout() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    timed_out_ = true;
  }
  // Every blocking wait's predicate re-checks timed_out_ on wake, so
  // this is enough to abort peers stuck on data the declarer will never
  // provide; they throw CommTimeoutError and meet us in do_resync().
  cv_.notify_all();
}

void ThreadTeam::set_recv_timeout(double total_ms, int retries) {
  MINIPOP_REQUIRE(retries >= 1 && retries < 31, "retries " << retries);
  std::lock_guard<std::mutex> lock(mu_);
  recv_timeout_ms_ = total_ms;
  recv_retries_ = retries;
}

void ThreadTeam::do_resync() {
  std::unique_lock<std::mutex> lock(mu_);
  throw_if_poisoned();
  const std::uint64_t my_generation = resync_generation_;
  if (++resync_arrived_ == nranks_) {
    // Last arriver wipes the failed communication epoch: queued and
    // in-flight messages, reduction rounds and ordinals, the barrier
    // count and the timeout flag. Outstanding requests from before the
    // fence are dead; abandoning them is safe (Request's destructor
    // never blocks).
    mailboxes_.clear();
    reduce_rounds_.clear();
    std::fill(reduce_posts_.begin(), reduce_posts_.end(), 0);
    barrier_arrived_ = 0;
    timed_out_ = false;
#if MINIPOP_BOUNDS_CHECK
    outstanding_recvs_.clear();
#endif
    resync_arrived_ = 0;
    ++resync_generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] {
      return poisoned_ || resync_generation_ != my_generation;
    });
    throw_if_poisoned();
  }
}

const CostCounters& ThreadTeam::costs(int r) const {
  MINIPOP_REQUIRE(r >= 0 && r < nranks_, "rank " << r);
  return comms_[r]->costs().counters();
}

CostCounters ThreadTeam::total_costs() const {
  CostCounters total;
  for (const auto& c : comms_) total += c->costs().counters();
  return total;
}

std::size_t ThreadTeam::ChannelKeyHash::operator()(
    const ChannelKey& k) const {
  std::uint64_t h = static_cast<std::uint32_t>(k.src);
  h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint32_t>(k.dest);
  h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint32_t>(k.tag);
  h ^= h >> 32;
  return static_cast<std::size_t>(h);
}

// ---------------------------------------------------------------------------
// Reductions

std::shared_ptr<ThreadTeam::ReduceRound> ThreadTeam::post_allreduce(
    int rank, std::span<double> values, ReduceOp op) {
  std::unique_lock<std::mutex> lock(mu_);
  throw_if_poisoned();
  throw_if_timed_out();
  const std::uint64_t ordinal = reduce_posts_[rank]++;
  auto [it, inserted] = reduce_rounds_.try_emplace(ordinal);
  if (inserted) {
    it->second = std::make_shared<ReduceRound>();
    it->second->op = op;
    it->second->slots.resize(nranks_);
  }
  std::shared_ptr<ReduceRound> round = it->second;
  MINIPOP_REQUIRE(round->op == op,
                  "allreduce op mismatch across ranks at collective #"
                      << ordinal);
  round->slots[rank].assign(values.begin(), values.end());
  if (++round->arrived == nranks_) {
    // Last arriver combines in fixed rank order — deterministic result.
    round->result = round->slots[0];
    for (int r = 1; r < nranks_; ++r) {
      MINIPOP_REQUIRE(round->slots[r].size() == round->result.size(),
                      "allreduce size mismatch at rank " << r);
      for (std::size_t k = 0; k < round->result.size(); ++k) {
        switch (round->op) {
          case ReduceOp::kSum: round->result[k] += round->slots[r][k]; break;
          case ReduceOp::kMax:
            round->result[k] =
                std::max(round->result[k], round->slots[r][k]);
            break;
          case ReduceOp::kMin:
            round->result[k] =
                std::min(round->result[k], round->slots[r][k]);
            break;
        }
      }
    }
    round->done = true;
    // Every rank has posted by now, so nothing routes to this ordinal
    // again; requests keep the round alive through their shared_ptr.
    reduce_rounds_.erase(ordinal);
    lock.unlock();
    cv_.notify_all();
  }
  return round;
}

bool ThreadTeam::reduce_poll(ReduceRound& round, std::span<double> out) {
  std::lock_guard<std::mutex> lock(mu_);
  throw_if_poisoned();
  if (!round.done) {
    throw_if_timed_out();
    return false;
  }
  std::copy(round.result.begin(), round.result.end(), out.begin());
  return true;
}

void ThreadTeam::reduce_block(ReduceRound& round, std::span<double> out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return poisoned_ || timed_out_ || round.done; });
  throw_if_poisoned();
  // A completed round is still good data even if a peer timed out
  // elsewhere; only an incomplete one can never finish.
  if (!round.done) throw_if_timed_out();
  std::copy(round.result.begin(), round.result.end(), out.begin());
}

// ---------------------------------------------------------------------------
// Point-to-point

void ThreadTeam::post_send(int src, int dest, int tag,
                           std::span<const std::byte> data) {
  MINIPOP_REQUIRE(dest >= 0 && dest < nranks_, "send to rank " << dest);
  MINIPOP_REQUIRE(tag >= 0, "tag " << tag);
  const ChannelKey key{src, dest, tag};
  const fault::MailboxDecision fate = fault::hook_mailbox(src);
  {
    std::lock_guard<std::mutex> lock(mu_);
    throw_if_timed_out();
    if (fate.fired && fate.action == fault::MailboxAction::kDrop) return;
    if (fate.fired && fate.action == fault::MailboxAction::kDelay) {
      // Deliver from a timer thread. The message is stamped with the
      // current resync generation: if a resync intervenes before it
      // matures, delivery is dropped — a late message must not leak into
      // a fresh epoch whose tags it could accidentally match.
      const std::uint64_t generation = resync_generation_;
      Message msg{std::vector<std::byte>(data.begin(), data.end())};
      delayed_threads_.emplace_back(
          [this, key, generation, delay_ms = fate.delay_ms,
           msg = std::move(msg)]() mutable {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(delay_ms));
            {
              std::lock_guard<std::mutex> inner(mu_);
              if (poisoned_ || resync_generation_ != generation) return;
              mailboxes_[key].push_back(std::move(msg));
            }
            cv_.notify_all();
          });
      return;
    }
    const int copies =
        (fate.fired && fate.action == fault::MailboxAction::kDuplicate) ? 2
                                                                        : 1;
    for (int c = 0; c < copies; ++c)
      mailboxes_[key].push_back(
          Message{std::vector<std::byte>(data.begin(), data.end())});
  }
  cv_.notify_all();
}

void ThreadTeam::post_recv(const ChannelKey& key) {
  MINIPOP_REQUIRE(key.src >= 0 && key.src < nranks_,
                  "recv from rank " << key.src);
  MINIPOP_REQUIRE(key.tag >= 0, "tag " << key.tag);
  std::lock_guard<std::mutex> lock(mu_);
  throw_if_poisoned();
  throw_if_timed_out();
#if MINIPOP_BOUNDS_CHECK
  const int outstanding = ++outstanding_recvs_[key];
  MINIPOP_REQUIRE(outstanding == 1,
                  "tag-epoch audit: recv posted on channel (src="
                      << key.src << " dest=" << key.dest
                      << " tag=" << key.tag << ") while "
                      << (outstanding - 1)
                      << " matching recv(s) are still outstanding — a tag "
                         "epoch was reused before its exchange finished");
#endif
}

bool ThreadTeam::try_take_locked(const ChannelKey& key,
                                 std::span<std::byte> out) {
  auto it = mailboxes_.find(key);
  if (it == mailboxes_.end() || it->second.empty()) return false;
  Message msg = std::move(it->second.front());
  it->second.pop_front();
  MINIPOP_REQUIRE(msg.data.size() == out.size(),
                  "recv size " << out.size() << " bytes != sent "
                               << msg.data.size() << " (src=" << key.src
                               << " tag=" << key.tag << ")");
#if MINIPOP_BOUNDS_CHECK
  auto oit = outstanding_recvs_.find(key);
  if (oit != outstanding_recvs_.end() && --oit->second <= 0)
    outstanding_recvs_.erase(oit);
#endif
  std::copy(msg.data.begin(), msg.data.end(), out.begin());
  return true;
}

bool ThreadTeam::recv_poll(const ChannelKey& key, std::span<std::byte> out) {
  std::lock_guard<std::mutex> lock(mu_);
  throw_if_poisoned();
  if (try_take_locked(key, out)) return true;
  throw_if_timed_out();
  return false;
}

void ThreadTeam::recv_block(const ChannelKey& key,
                            std::span<std::byte> out) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto ready = [&] {
    if (poisoned_ || timed_out_) return true;
    auto it = mailboxes_.find(key);
    return it != mailboxes_.end() && !it->second.empty();
  };
  if (recv_timeout_ms_ <= 0.0) {
    cv_.wait(lock, ready);
  } else {
    // Retry ladder with exponential backoff: attempt i waits slice*2^i,
    // the attempts summing to recv_timeout_ms_.
    const int attempts = recv_retries_;
    const double slice = recv_timeout_ms_ / ((1u << attempts) - 1);
    bool satisfied = ready();
    for (int a = 0; a < attempts && !satisfied; ++a)
      satisfied = cv_.wait_for(
          lock,
          std::chrono::duration<double, std::milli>(slice * (1u << a)),
          ready);
    if (!satisfied) {
      // First observer of the timeout: flag the team so every peer
      // unwinds to the resync fence instead of waiting on collectives
      // this rank will never join.
      timed_out_ = true;
      lock.unlock();
      cv_.notify_all();
      throw CommTimeoutError("recv timed out after " +
                             std::to_string(recv_timeout_ms_) +
                             " ms (src=" + std::to_string(key.src) +
                             " tag=" + std::to_string(key.tag) + ")");
    }
  }
  throw_if_poisoned();
  if (!try_take_locked(key, out)) {
    throw_if_timed_out();
    MINIPOP_REQUIRE(false, "recv woke without a matching message (src="
                               << key.src << " tag=" << key.tag << ")");
  }
}

// ---------------------------------------------------------------------------
// Barrier

void ThreadTeam::do_barrier() {
  std::unique_lock<std::mutex> lock(mu_);
  throw_if_poisoned();
  throw_if_timed_out();
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_arrived_ == nranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] {
      return poisoned_ || timed_out_ ||
             barrier_generation_ != my_generation;
    });
    throw_if_poisoned();
    if (barrier_generation_ == my_generation) throw_if_timed_out();
  }
}

}  // namespace minipop::comm
