#include "src/comm/thread_comm.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "src/util/error.hpp"

namespace minipop::comm {

// ---------------------------------------------------------------------------
// Request states

/// Future for one rank's view of an in-flight reduction round.
class ThreadReduceRequest final : public RequestState {
 public:
  ThreadReduceRequest(ThreadTeam* team,
                      std::shared_ptr<ThreadTeam::ReduceRound> round,
                      std::span<double> out)
      : team_(team), round_(std::move(round)), out_(out) {}

  bool poll() override { return team_->reduce_poll(*round_, out_); }
  void block() override { team_->reduce_block(*round_, out_); }

 private:
  ThreadTeam* team_;
  std::shared_ptr<ThreadTeam::ReduceRound> round_;
  std::span<double> out_;
};

/// Mailbox future for one posted receive.
class ThreadRecvRequest final : public RequestState {
 public:
  ThreadRecvRequest(ThreadTeam* team, ThreadTeam::ChannelKey key,
                    std::span<double> out)
      : team_(team), key_(key), out_(out) {}

  bool poll() override { return team_->recv_poll(key_, out_); }
  void block() override { team_->recv_block(key_, out_); }

 private:
  ThreadTeam* team_;
  ThreadTeam::ChannelKey key_;
  std::span<double> out_;
};

// ---------------------------------------------------------------------------
// ThreadComm

int ThreadComm::size() const { return team_->nranks(); }

Request ThreadComm::iallreduce(std::span<double> values, ReduceOp op) {
  costs_.add_allreduce(values.size());
  auto round = team_->post_allreduce(rank_, values, op);
  return Request(
      std::make_unique<ThreadReduceRequest>(team_, std::move(round), values),
      &costs_);
}

Request ThreadComm::isend(int dest, int tag, std::span<const double> data) {
  costs_.add_message(data.size() * sizeof(double));
  team_->post_send(rank_, dest, tag, data);
  // Eager protocol: the message is buffered at post time, so the send is
  // already complete and contributes no in-flight request time.
  return Request{};
}

Request ThreadComm::irecv(int src, int tag, std::span<double> data) {
  const ThreadTeam::ChannelKey key{src, rank_, tag};
  team_->post_recv(key);
  return Request(std::make_unique<ThreadRecvRequest>(team_, key, data),
                 &costs_);
}

void ThreadComm::barrier() { team_->do_barrier(); }

// ---------------------------------------------------------------------------
// ThreadTeam

ThreadTeam::ThreadTeam(int nranks) : nranks_(nranks) {
  MINIPOP_REQUIRE(nranks >= 1, "nranks=" << nranks);
  comms_.reserve(nranks);
  for (int r = 0; r < nranks; ++r)
    comms_.push_back(std::unique_ptr<ThreadComm>(new ThreadComm(this, r)));
}

ThreadTeam::~ThreadTeam() = default;

void ThreadTeam::run(const std::function<void(Communicator&)>& fn) {
  // Fresh counters and message/reduction state per run.
  for (auto& c : comms_) c->costs().reset();
  mailboxes_.clear();
  reduce_rounds_.clear();
  reduce_posts_.assign(nranks_, 0);
  barrier_arrived_ = 0;
  poisoned_ = false;
#if MINIPOP_BOUNDS_CHECK
  outstanding_recvs_.clear();
#endif

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(nranks_);
  threads.reserve(nranks_);
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(*comms_[r]);
      } catch (...) {
        errors[r] = std::current_exception();
        // Unblock peers that may be waiting on this rank forever: mark
        // the team poisoned so every blocked rendezvous aborts.
        poison();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Prefer the original failure over secondary "team poisoned" aborts.
  std::exception_ptr poison_error;
  for (auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const TeamPoisonedError&) {
      poison_error = e;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  if (poison_error) std::rethrow_exception(poison_error);
}

void ThreadTeam::poison() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

void ThreadTeam::throw_if_poisoned() const {
  if (poisoned_)
    throw TeamPoisonedError("virtual-MPI team aborted: a peer rank failed");
}

const CostCounters& ThreadTeam::costs(int r) const {
  MINIPOP_REQUIRE(r >= 0 && r < nranks_, "rank " << r);
  return comms_[r]->costs().counters();
}

CostCounters ThreadTeam::total_costs() const {
  CostCounters total;
  for (const auto& c : comms_) total += c->costs().counters();
  return total;
}

std::size_t ThreadTeam::ChannelKeyHash::operator()(
    const ChannelKey& k) const {
  std::uint64_t h = static_cast<std::uint32_t>(k.src);
  h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint32_t>(k.dest);
  h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint32_t>(k.tag);
  h ^= h >> 32;
  return static_cast<std::size_t>(h);
}

// ---------------------------------------------------------------------------
// Reductions

std::shared_ptr<ThreadTeam::ReduceRound> ThreadTeam::post_allreduce(
    int rank, std::span<double> values, ReduceOp op) {
  std::unique_lock<std::mutex> lock(mu_);
  throw_if_poisoned();
  const std::uint64_t ordinal = reduce_posts_[rank]++;
  auto [it, inserted] = reduce_rounds_.try_emplace(ordinal);
  if (inserted) {
    it->second = std::make_shared<ReduceRound>();
    it->second->op = op;
    it->second->slots.resize(nranks_);
  }
  std::shared_ptr<ReduceRound> round = it->second;
  MINIPOP_REQUIRE(round->op == op,
                  "allreduce op mismatch across ranks at collective #"
                      << ordinal);
  round->slots[rank].assign(values.begin(), values.end());
  if (++round->arrived == nranks_) {
    // Last arriver combines in fixed rank order — deterministic result.
    round->result = round->slots[0];
    for (int r = 1; r < nranks_; ++r) {
      MINIPOP_REQUIRE(round->slots[r].size() == round->result.size(),
                      "allreduce size mismatch at rank " << r);
      for (std::size_t k = 0; k < round->result.size(); ++k) {
        switch (round->op) {
          case ReduceOp::kSum: round->result[k] += round->slots[r][k]; break;
          case ReduceOp::kMax:
            round->result[k] =
                std::max(round->result[k], round->slots[r][k]);
            break;
          case ReduceOp::kMin:
            round->result[k] =
                std::min(round->result[k], round->slots[r][k]);
            break;
        }
      }
    }
    round->done = true;
    // Every rank has posted by now, so nothing routes to this ordinal
    // again; requests keep the round alive through their shared_ptr.
    reduce_rounds_.erase(ordinal);
    lock.unlock();
    cv_.notify_all();
  }
  return round;
}

bool ThreadTeam::reduce_poll(ReduceRound& round, std::span<double> out) {
  std::lock_guard<std::mutex> lock(mu_);
  throw_if_poisoned();
  if (!round.done) return false;
  std::copy(round.result.begin(), round.result.end(), out.begin());
  return true;
}

void ThreadTeam::reduce_block(ReduceRound& round, std::span<double> out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return poisoned_ || round.done; });
  throw_if_poisoned();
  std::copy(round.result.begin(), round.result.end(), out.begin());
}

// ---------------------------------------------------------------------------
// Point-to-point

void ThreadTeam::post_send(int src, int dest, int tag,
                           std::span<const double> data) {
  MINIPOP_REQUIRE(dest >= 0 && dest < nranks_, "send to rank " << dest);
  MINIPOP_REQUIRE(tag >= 0, "tag " << tag);
  {
    std::lock_guard<std::mutex> lock(mu_);
    mailboxes_[ChannelKey{src, dest, tag}].push_back(
        Message{std::vector<double>(data.begin(), data.end())});
  }
  cv_.notify_all();
}

void ThreadTeam::post_recv(const ChannelKey& key) {
  MINIPOP_REQUIRE(key.src >= 0 && key.src < nranks_,
                  "recv from rank " << key.src);
  MINIPOP_REQUIRE(key.tag >= 0, "tag " << key.tag);
  std::lock_guard<std::mutex> lock(mu_);
  throw_if_poisoned();
#if MINIPOP_BOUNDS_CHECK
  const int outstanding = ++outstanding_recvs_[key];
  MINIPOP_REQUIRE(outstanding == 1,
                  "tag-epoch audit: recv posted on channel (src="
                      << key.src << " dest=" << key.dest
                      << " tag=" << key.tag << ") while "
                      << (outstanding - 1)
                      << " matching recv(s) are still outstanding — a tag "
                         "epoch was reused before its exchange finished");
#endif
}

bool ThreadTeam::try_take_locked(const ChannelKey& key,
                                 std::span<double> out) {
  auto it = mailboxes_.find(key);
  if (it == mailboxes_.end() || it->second.empty()) return false;
  Message msg = std::move(it->second.front());
  it->second.pop_front();
  MINIPOP_REQUIRE(msg.data.size() == out.size(),
                  "recv size " << out.size() << " != sent "
                               << msg.data.size() << " (src=" << key.src
                               << " tag=" << key.tag << ")");
#if MINIPOP_BOUNDS_CHECK
  auto oit = outstanding_recvs_.find(key);
  if (oit != outstanding_recvs_.end() && --oit->second <= 0)
    outstanding_recvs_.erase(oit);
#endif
  std::copy(msg.data.begin(), msg.data.end(), out.begin());
  return true;
}

bool ThreadTeam::recv_poll(const ChannelKey& key, std::span<double> out) {
  std::lock_guard<std::mutex> lock(mu_);
  throw_if_poisoned();
  return try_take_locked(key, out);
}

void ThreadTeam::recv_block(const ChannelKey& key, std::span<double> out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    if (poisoned_) return true;
    auto it = mailboxes_.find(key);
    return it != mailboxes_.end() && !it->second.empty();
  });
  throw_if_poisoned();
  const bool taken = try_take_locked(key, out);
  MINIPOP_REQUIRE(taken, "recv woke without a matching message (src="
                             << key.src << " tag=" << key.tag << ")");
}

// ---------------------------------------------------------------------------
// Barrier

void ThreadTeam::do_barrier() {
  std::unique_lock<std::mutex> lock(mu_);
  throw_if_poisoned();
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_arrived_ == nranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] {
      return poisoned_ || barrier_generation_ != my_generation;
    });
    throw_if_poisoned();
  }
}

}  // namespace minipop::comm
