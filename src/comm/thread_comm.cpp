#include "src/comm/thread_comm.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "src/util/error.hpp"

namespace minipop::comm {

int ThreadComm::size() const { return team_->nranks(); }

void ThreadComm::allreduce(std::span<double> values, ReduceOp op) {
  costs_.add_allreduce(values.size());
  team_->do_allreduce(rank_, values, op);
}

void ThreadComm::send(int dest, int tag, std::span<const double> data) {
  costs_.add_message(data.size() * sizeof(double));
  team_->do_send(rank_, dest, tag, data);
}

void ThreadComm::recv(int src, int tag, std::span<double> data) {
  team_->do_recv(rank_, src, tag, data);
}

void ThreadComm::barrier() { team_->do_barrier(); }

ThreadTeam::ThreadTeam(int nranks) : nranks_(nranks), slots_(nranks) {
  MINIPOP_REQUIRE(nranks >= 1, "nranks=" << nranks);
  comms_.reserve(nranks);
  for (int r = 0; r < nranks; ++r)
    comms_.push_back(std::unique_ptr<ThreadComm>(new ThreadComm(this, r)));
}

ThreadTeam::~ThreadTeam() = default;

void ThreadTeam::run(const std::function<void(Communicator&)>& fn) {
  // Fresh counters and mailboxes per run.
  for (auto& c : comms_) c->costs().reset();
  mailboxes_.clear();
  reduce_arrived_ = 0;
  barrier_arrived_ = 0;
  poisoned_ = false;

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(nranks_);
  threads.reserve(nranks_);
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(*comms_[r]);
      } catch (...) {
        errors[r] = std::current_exception();
        // Unblock peers that may be waiting on this rank forever: mark
        // the team poisoned so every blocked rendezvous aborts.
        poison();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Prefer the original failure over secondary "team poisoned" aborts.
  std::exception_ptr poison_error;
  for (auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const TeamPoisonedError&) {
      poison_error = e;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  if (poison_error) std::rethrow_exception(poison_error);
}

void ThreadTeam::poison() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

void ThreadTeam::throw_if_poisoned() const {
  if (poisoned_)
    throw TeamPoisonedError(
        "virtual-MPI team aborted: a peer rank failed");
}

const CostCounters& ThreadTeam::costs(int r) const {
  MINIPOP_REQUIRE(r >= 0 && r < nranks_, "rank " << r);
  return comms_[r]->costs().counters();
}

CostCounters ThreadTeam::total_costs() const {
  CostCounters total;
  for (const auto& c : comms_) total += c->costs().counters();
  return total;
}

std::uint64_t ThreadTeam::mailbox_key(int src, int dest, int tag) {
  MINIPOP_REQUIRE(tag >= 0 && tag < (1 << 24), "tag " << tag);
  return (static_cast<std::uint64_t>(src) << 44) |
         (static_cast<std::uint64_t>(dest) << 24) |
         static_cast<std::uint64_t>(tag);
}

void ThreadTeam::do_allreduce(int rank, std::span<double> values,
                              ReduceOp op) {
  std::unique_lock<std::mutex> lock(mu_);
  throw_if_poisoned();
  const std::uint64_t my_generation = reduce_generation_;
  slots_[rank].assign(values.begin(), values.end());
  if (++reduce_arrived_ == nranks_) {
    // Last arriver combines in fixed rank order — deterministic result.
    reduce_result_ = slots_[0];
    for (int r = 1; r < nranks_; ++r) {
      MINIPOP_REQUIRE(slots_[r].size() == reduce_result_.size(),
                      "allreduce size mismatch at rank " << r);
      for (std::size_t k = 0; k < reduce_result_.size(); ++k) {
        switch (op) {
          case ReduceOp::kSum: reduce_result_[k] += slots_[r][k]; break;
          case ReduceOp::kMax:
            reduce_result_[k] = std::max(reduce_result_[k], slots_[r][k]);
            break;
          case ReduceOp::kMin:
            reduce_result_[k] = std::min(reduce_result_[k], slots_[r][k]);
            break;
        }
      }
    }
    reduce_arrived_ = 0;
    ++reduce_generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] {
      return poisoned_ || reduce_generation_ != my_generation;
    });
    throw_if_poisoned();
  }
  std::copy(reduce_result_.begin(), reduce_result_.end(), values.begin());
}

void ThreadTeam::do_send(int src, int dest, int tag,
                         std::span<const double> data) {
  MINIPOP_REQUIRE(dest >= 0 && dest < nranks_, "send to rank " << dest);
  {
    std::lock_guard<std::mutex> lock(mu_);
    mailboxes_[mailbox_key(src, dest, tag)].push_back(
        Message{std::vector<double>(data.begin(), data.end())});
  }
  cv_.notify_all();
}

void ThreadTeam::do_recv(int dest, int src, int tag, std::span<double> data) {
  MINIPOP_REQUIRE(src >= 0 && src < nranks_, "recv from rank " << src);
  const std::uint64_t key = mailbox_key(src, dest, tag);
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    if (poisoned_) return true;
    auto it = mailboxes_.find(key);
    return it != mailboxes_.end() && !it->second.empty();
  });
  throw_if_poisoned();
  auto& queue = mailboxes_[key];
  Message msg = std::move(queue.front());
  queue.pop_front();
  MINIPOP_REQUIRE(msg.data.size() == data.size(),
                  "recv size " << data.size() << " != sent "
                               << msg.data.size() << " (src=" << src
                               << " tag=" << tag << ")");
  std::copy(msg.data.begin(), msg.data.end(), data.begin());
}

void ThreadTeam::do_barrier() {
  std::unique_lock<std::mutex> lock(mu_);
  throw_if_poisoned();
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_arrived_ == nranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] {
      return poisoned_ || barrier_generation_ != my_generation;
    });
    throw_if_poisoned();
  }
}

}  // namespace minipop::comm
