// Single-rank communicator: reductions are identities (and complete at
// post time), point-to-point is an error (a single rank has no peers;
// same-rank halo copies bypass the communicator entirely).
#pragma once

#include "src/comm/communicator.hpp"

namespace minipop::comm {

class SerialComm final : public Communicator {
 public:
  int rank() const override { return 0; }
  int size() const override { return 1; }

  Request iallreduce(std::span<double> values, ReduceOp op) override;
  Request isend(int dest, int tag, std::span<const double> data) override;
  Request irecv(int src, int tag, std::span<double> data) override;
  void barrier() override {}
};

}  // namespace minipop::comm
