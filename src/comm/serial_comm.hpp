// Single-rank communicator: reductions are identities (and complete at
// post time), point-to-point is an error (a single rank has no peers;
// same-rank halo copies bypass the communicator entirely).
#pragma once

#include "src/comm/communicator.hpp"

namespace minipop::comm {

class SerialComm final : public Communicator {
 public:
  int rank() const override { return 0; }
  int size() const override { return 1; }

  Request iallreduce(std::span<double> values, ReduceOp op) override;
  Request isend_bytes(int dest, int tag,
                      std::span<const std::byte> data) override;
  Request irecv_bytes(int src, int tag, std::span<std::byte> data) override;
  void barrier() override {}
};

}  // namespace minipop::comm
