// Single-rank communicator: reductions are identities, point-to-point is
// an error (a single rank has no peers; same-rank halo copies bypass the
// communicator entirely).
#pragma once

#include "src/comm/communicator.hpp"

namespace minipop::comm {

class SerialComm final : public Communicator {
 public:
  int rank() const override { return 0; }
  int size() const override { return 1; }

  void allreduce(std::span<double> values, ReduceOp op) override;
  void send(int dest, int tag, std::span<const double> data) override;
  void recv(int src, int tag, std::span<double> data) override;
  void barrier() override {}
};

}  // namespace minipop::comm
