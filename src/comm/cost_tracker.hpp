// Per-rank accounting of the three cost classes the paper's performance
// model distinguishes (§2.2): computation (flops), boundary updates
// (point-to-point messages and bytes), and global reductions. Solvers and
// kernels record into the tracker of their communicator; the perf module
// converts counts into modeled wall time for a given machine profile.
#pragma once

#include <cstdint>

namespace minipop::comm {

struct CostCounters {
  std::uint64_t flops = 0;
  /// Subset of `flops` spent recomputing ghost points that another rank
  /// also computes — the price of depth-k communication-avoiding sweeps
  /// (flops already includes them; this is not an additional total).
  std::uint64_t redundant_flops = 0;
  std::uint64_t p2p_messages = 0;
  std::uint64_t p2p_bytes = 0;
  std::uint64_t halo_exchanges = 0;  ///< full-field halo update rounds
  /// Field planes refreshed across all halo rounds: a scalar exchange
  /// adds 1, an aggregated nb-member batch exchange adds nb (it moves nb
  /// planes' worth of bytes in the same message count as one plane).
  /// halo_member_updates / halo_exchanges is the mean aggregation factor.
  std::uint64_t halo_member_updates = 0;
  std::uint64_t allreduces = 0;      ///< global reduction rounds
  std::uint64_t allreduce_doubles = 0;
  std::uint64_t requests = 0;  ///< split-phase ops that were in flight

  /// Land-aware sweep accounting (DESIGN.md §14): every kernel sweep
  /// records the ocean cells of the swept region (`active_points`) and
  /// the region's full padded area (`swept_points`), identically on the
  /// masked and span execution paths — the pair describes the *region*,
  /// not the instructions retired, so counter parity between the two
  /// paths is preserved. active_points / swept_points is the ocean
  /// fraction the perf model uses to price flops and bandwidth.
  std::uint64_t active_points = 0;
  std::uint64_t swept_points = 0;

  /// Integrity-layer verifications performed (halo CRC validations,
  /// ABFT operator checksums, guarded-reduction cross-checks,
  /// true-residual audits) and how many of them detected corruption.
  /// Both stay exactly zero when every IntegrityOptions knob is off —
  /// the "free when disabled" tests pin that down.
  std::uint64_t integrity_checks = 0;
  std::uint64_t integrity_failures = 0;

  /// Wall time requests spent in flight (post -> observed completion).
  /// This is the communication the split-phase engine *could* hide.
  double posted_comm_seconds = 0.0;
  /// Wall time actually blocked inside Request::wait(). This is the
  /// communication that was *exposed* — not hidden behind computation.
  /// Always <= posted_comm_seconds (the blocked interval is a suffix of
  /// the in-flight interval of each request).
  double exposed_comm_seconds = 0.0;

  double hidden_comm_seconds() const {
    return posted_comm_seconds - exposed_comm_seconds;
  }

  CostCounters& operator+=(const CostCounters& o) {
    flops += o.flops;
    redundant_flops += o.redundant_flops;
    p2p_messages += o.p2p_messages;
    p2p_bytes += o.p2p_bytes;
    halo_exchanges += o.halo_exchanges;
    halo_member_updates += o.halo_member_updates;
    allreduces += o.allreduces;
    allreduce_doubles += o.allreduce_doubles;
    requests += o.requests;
    active_points += o.active_points;
    swept_points += o.swept_points;
    integrity_checks += o.integrity_checks;
    integrity_failures += o.integrity_failures;
    posted_comm_seconds += o.posted_comm_seconds;
    exposed_comm_seconds += o.exposed_comm_seconds;
    return *this;
  }
};

class CostTracker {
 public:
  void add_flops(std::uint64_t n) { c_.flops += n; }
  void add_redundant_flops(std::uint64_t n) { c_.redundant_flops += n; }
  void add_message(std::uint64_t bytes) {
    ++c_.p2p_messages;
    c_.p2p_bytes += bytes;
  }
  void add_halo_exchange(int members = 1) {
    ++c_.halo_exchanges;
    c_.halo_member_updates += static_cast<std::uint64_t>(members);
  }
  void add_allreduce(std::uint64_t doubles) {
    ++c_.allreduces;
    c_.allreduce_doubles += doubles;
  }
  void add_request() { ++c_.requests; }
  void add_points(std::uint64_t active, std::uint64_t swept) {
    c_.active_points += active;
    c_.swept_points += swept;
  }
  void add_integrity_check(bool failed = false) {
    ++c_.integrity_checks;
    if (failed) ++c_.integrity_failures;
  }
  void add_posted_seconds(double s) { c_.posted_comm_seconds += s; }
  void add_exposed_seconds(double s) { c_.exposed_comm_seconds += s; }

  const CostCounters& counters() const { return c_; }
  void reset() { c_ = CostCounters{}; }

  /// Difference since a snapshot; convenient for per-solve accounting.
  CostCounters since(const CostCounters& snapshot) const;

 private:
  CostCounters c_;
};

}  // namespace minipop::comm
