// Halo (boundary) exchange for distributed fields — the
// "update_halo" step of Algorithms 1 and 2.
//
// Each block exchanges with its eight neighbors: four edge strips of
// width `halo` and four halo x halo corner patches. Neighbors owned by
// the same rank are copied directly; remote neighbors go through the
// communicator's buffered point-to-point. Missing neighbors (domain edge
// or land-eliminated blocks) zero-fill the halo, which is consistent
// because the stencil carries identically zero coefficients across
// coastlines.
//
// The exchange is split-phase: begin() packs the strips, posts all sends
// and receives, and performs the local copies/zero fills, returning a
// HaloHandle that owns the in-flight state; finish() waits for the
// receives and unpacks. Computation that does not read the halo (the
// interior of the 9-point sweep) can run between the two. The blocking
// exchange() is begin() + finish(). Each begin() draws a fresh tag epoch
// from the communicator, so up to Communicator::kTagEpochWindow
// exchanges can be outstanding at once without their messages colliding.
//
// The exchange is generic over the field's element type: an fp32 field
// packs fp32 strips and moves HALF the wire bytes of an fp64 exchange
// through the identical byte-addressed point-to-point path — the same
// tags, the same message count, the same overlap structure.
#pragma once

#include <vector>

#include "src/comm/communicator.hpp"
#include "src/comm/dist_field.hpp"
#include "src/comm/dist_field_batch.hpp"

namespace minipop::comm {

class HaloExchanger;

/// Caller's statement about the halo state of an input field. Operators
/// exchange a kStale input's halo before sweeping; kFresh skips the
/// exchange because the caller just refreshed it (e.g. the model leaves
/// eta's halo fresh right before the elliptic solve) — passing kFresh
/// for a halo that is actually stale silently computes with old
/// boundary values, so only assert it where an exchange provably just
/// happened with no interior writes in between.
enum class HaloFreshness { kStale, kFresh };

namespace detail {
/// Rectangular region in block-interior coordinates: [i0, i0+ni) x
/// [j0, j0+nj) (indices may be negative or >= block size for halo
/// regions).
struct HaloRegion {
  int i0, j0, ni, nj;
};
}  // namespace detail

/// One in-flight split-phase halo exchange. Owns the posted receive
/// requests and their landing buffers; finish() completes them in post
/// order (matching the blocking exchange) and unpacks into the field's
/// halo. The field and communicator must outlive the handle. finish()
/// must be called exactly once per begin(); the destructor finishes a
/// still-active handle as a safety net (swallowing errors, since it may
/// run while unwinding a poisoned team).
template <typename T>
class HaloHandleT {
 public:
  HaloHandleT() = default;
  HaloHandleT(HaloHandleT&&) noexcept = default;
  HaloHandleT& operator=(HaloHandleT&&) noexcept = default;
  HaloHandleT(const HaloHandleT&) = delete;
  HaloHandleT& operator=(const HaloHandleT&) = delete;
  ~HaloHandleT();

  bool active() const { return field_ != nullptr; }

  /// Wait for all receives, unpack the halo, and count the exchange.
  /// No-op on an inactive handle.
  void finish();

 private:
  friend class HaloExchanger;

  struct PendingRecv {
    // `request` must be declared after `buf`: an abandoned Request's
    // destructor performs one non-blocking test, which can still deliver
    // a matured message into the landing span — so the request has to
    // die (reverse declaration order) while the buffer it targets is
    // alive. With the opposite order, unwinding a timed-out exchange
    // writes into freed memory.
    std::vector<T> buf;
    int lb = 0;
    detail::HaloRegion dst{};
    Request request;
  };

  Communicator* comm_ = nullptr;
  DistFieldT<T>* field_ = nullptr;
  std::vector<PendingRecv> recvs_;
};

extern template class HaloHandleT<double>;
extern template class HaloHandleT<float>;

using HaloHandle = HaloHandleT<double>;
using HaloHandle32 = HaloHandleT<float>;

/// In-flight split-phase halo exchange of an nb-member batch. The
/// member-interleaved layout makes a region row ni * nb contiguous
/// doubles, so one message per (block, neighbor) carries ALL members:
/// the same message count as a scalar exchange with nb x the payload.
/// finish() counts one exchange round refreshing nb member planes
/// (CostTracker::add_halo_exchange(nb)).
class BatchHaloHandle {
 public:
  BatchHaloHandle() = default;
  BatchHaloHandle(BatchHaloHandle&&) noexcept = default;
  BatchHaloHandle& operator=(BatchHaloHandle&&) noexcept = default;
  BatchHaloHandle(const BatchHaloHandle&) = delete;
  BatchHaloHandle& operator=(const BatchHaloHandle&) = delete;
  ~BatchHaloHandle();

  bool active() const { return field_ != nullptr; }

  /// Wait for all receives, unpack the halo, and count the exchange.
  /// No-op on an inactive handle.
  void finish();

 private:
  friend class HaloExchanger;

  struct PendingRecv {
    // `request` must die while `buf` is alive — see HaloHandleT.
    std::vector<double> buf;
    int lb = 0;
    detail::HaloRegion dst{};
    Request request;
  };

  Communicator* comm_ = nullptr;
  DistFieldBatch* field_ = nullptr;
  std::vector<PendingRecv> recvs_;
};

class HaloExchanger {
 public:
  explicit HaloExchanger(const grid::Decomposition& decomp);

  /// Update all halos of `field` (owned by the calling rank). Collective:
  /// every rank of the communicator must call with its own field.
  /// Equivalent to begin() immediately followed by finish().
  template <typename T>
  void exchange(Communicator& comm, DistFieldT<T>& field) const;

  /// Split-phase: pack and post all sends/receives, do the local copies
  /// and zero fills, and return the in-flight handle. The halo cells of
  /// `field` are in an unspecified state until finish(); the owned
  /// interior may be read freely (but not written) in between.
  template <typename T>
  HaloHandleT<T> begin(Communicator& comm, DistFieldT<T>& field) const;

  /// Aggregated batch exchange: one message per (block, neighbor)
  /// carries all nb members. Same tag space, traversal order, and
  /// overlap structure as the scalar exchange. The fault-injection halo
  /// payload hook is NOT armed on this path — fault sites target the
  /// scalar resilient solve, which batching bypasses (DESIGN.md §10).
  void exchange(Communicator& comm, DistFieldBatch& field) const;
  BatchHaloHandle begin(Communicator& comm, DistFieldBatch& field) const;

  /// Bytes this rank sends per exchange of `field` (for cost reporting).
  /// Scales with sizeof(T): an fp32 field reports half the fp64 bytes.
  template <typename T>
  std::uint64_t bytes_sent_per_exchange(const DistFieldT<T>& field) const;

  /// Batch payload: nb x the scalar fp64 bytes, in the same messages.
  std::uint64_t bytes_sent_per_exchange(const DistFieldBatch& field) const;

 private:
  const grid::Decomposition* decomp_;
};

#define MINIPOP_HALO_EXTERN(T)                                             \
  extern template void HaloExchanger::exchange<T>(Communicator&,           \
                                                  DistFieldT<T>&) const;   \
  extern template HaloHandleT<T> HaloExchanger::begin<T>(                  \
      Communicator&, DistFieldT<T>&) const;                                \
  extern template std::uint64_t HaloExchanger::bytes_sent_per_exchange<T>( \
      const DistFieldT<T>&) const;
MINIPOP_HALO_EXTERN(double)
MINIPOP_HALO_EXTERN(float)
#undef MINIPOP_HALO_EXTERN

}  // namespace minipop::comm
