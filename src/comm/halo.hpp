// Halo (boundary) exchange for distributed fields — the
// "update_halo" step of Algorithms 1 and 2.
//
// Each block exchanges with its eight neighbors: four edge strips of
// width `halo` and four halo x halo corner patches. Neighbors owned by
// the same rank are copied directly; remote neighbors go through the
// communicator's buffered point-to-point. Missing neighbors (domain edge
// or land-eliminated blocks) zero-fill the halo, which is consistent
// because the stencil carries identically zero coefficients across
// coastlines.
#pragma once

#include "src/comm/communicator.hpp"
#include "src/comm/dist_field.hpp"

namespace minipop::comm {

class HaloExchanger {
 public:
  explicit HaloExchanger(const grid::Decomposition& decomp);

  /// Update all halos of `field` (owned by the calling rank). Collective:
  /// every rank of the communicator must call with its own field.
  void exchange(Communicator& comm, DistField& field) const;

  /// Bytes this rank sends per exchange of `field` (for cost reporting).
  std::uint64_t bytes_sent_per_exchange(const DistField& field) const;

 private:
  const grid::Decomposition* decomp_;
};

}  // namespace minipop::comm
