// Halo (boundary) exchange for distributed fields — the
// "update_halo" step of Algorithms 1 and 2.
//
// Each block exchanges with its eight neighbors: four edge strips of
// width `halo` and four halo x halo corner patches. Neighbors owned by
// the same rank are copied directly; remote neighbors go through the
// communicator's buffered point-to-point. Missing neighbors (domain edge
// or land-eliminated blocks) zero-fill the halo, which is consistent
// because the stencil carries identically zero coefficients across
// coastlines.
//
// The exchange is split-phase: begin() packs the strips, posts all sends
// and receives, and performs the local copies/zero fills, returning a
// HaloHandle that owns the in-flight state; finish() waits for the
// receives and unpacks. Computation that does not read the halo (the
// interior of the 9-point sweep) can run between the two. The blocking
// exchange() is begin() + finish(). Each begin() draws a fresh tag epoch
// from the communicator, so up to Communicator::kTagEpochWindow
// exchanges can be outstanding at once without their messages colliding.
//
// There is ONE exchange engine, written against the FieldSet view: a
// scalar field is a width-1 set, an nb-member batch a width-nb set
// whose member-interleaved layout makes a region row ni * nb contiguous
// elements — so one message per (block, neighbor) carries ALL members,
// the same message count as a scalar exchange with nb x the payload.
// The engine is also generic over the element type: an fp32 set packs
// fp32 strips and moves HALF the wire bytes of an fp64 exchange through
// the identical byte-addressed point-to-point path — the same tags, the
// same message count, the same overlap structure. finish() counts one
// exchange round refreshing nb member planes
// (CostTracker::add_halo_exchange(nb)).
#pragma once

#include <span>
#include <vector>

#include "src/comm/communicator.hpp"
#include "src/comm/dist_field.hpp"
#include "src/comm/dist_field_batch.hpp"
#include "src/comm/field_set.hpp"

namespace minipop::comm {

class HaloExchanger;

/// Caller's statement about the halo state of an input field. Operators
/// exchange a kStale input's halo before sweeping; kFresh skips the
/// exchange because the caller just refreshed it (e.g. the model leaves
/// eta's halo fresh right before the elliptic solve) — passing kFresh
/// for a halo that is actually stale silently computes with old
/// boundary values, so only assert it where an exchange provably just
/// happened with no interior writes in between.
enum class HaloFreshness { kStale, kFresh };

namespace detail {
/// Rectangular region in block-interior coordinates: [i0, i0+ni) x
/// [j0, j0+nj) (indices may be negative or >= block size for halo
/// regions).
struct HaloRegion {
  int i0, j0, ni, nj;
};
}  // namespace detail

/// One in-flight split-phase halo exchange of a FieldSet (scalar field
/// or batch). Owns the posted receive requests and their landing
/// buffers; finish() completes them in post order (matching the
/// blocking exchange) and unpacks into the set's halo. The backing
/// container and communicator must outlive the handle. finish() must be
/// called exactly once per begin(); the destructor finishes a
/// still-active handle as a safety net (swallowing errors, since it may
/// run while unwinding a poisoned team).
template <typename T>
class HaloHandleT {
 public:
  HaloHandleT() = default;
  HaloHandleT(HaloHandleT&&) noexcept = default;
  HaloHandleT& operator=(HaloHandleT&&) noexcept = default;
  HaloHandleT(const HaloHandleT&) = delete;
  HaloHandleT& operator=(const HaloHandleT&) = delete;
  ~HaloHandleT();

  bool active() const { return fs_.valid(); }

  /// Wait for all receives, unpack the halo, and count the exchange
  /// (one round refreshing nb member planes). No-op on an inactive
  /// handle.
  void finish();

 private:
  friend class HaloExchanger;

  struct PendingRecv {
    // `request` must be declared after `buf`: an abandoned Request's
    // destructor performs one non-blocking test, which can still deliver
    // a matured message into the landing span — so the request has to
    // die (reverse declaration order) while the buffer it targets is
    // alive. With the opposite order, unwinding a timed-out exchange
    // writes into freed memory.
    std::vector<T> buf;
    int lb = 0;
    detail::HaloRegion dst{};
    Request request;
  };

  Communicator* comm_ = nullptr;
  FieldSetT<T> fs_;
  std::vector<PendingRecv> recvs_;
  /// Copied from the exchanger at begin(): each pending buffer carries a
  /// one-element CRC32C trailer to verify before unpacking.
  bool crc_ = false;
};

extern template class HaloHandleT<double>;
extern template class HaloHandleT<float>;

using HaloHandle = HaloHandleT<double>;
using HaloHandle32 = HaloHandleT<float>;
/// The batch exchange rides the unified handle; kept as named aliases
/// for readability at batched call sites.
using BatchHaloHandle = HaloHandleT<double>;
using BatchHaloHandle32 = HaloHandleT<float>;

class HaloExchanger {
 public:
  explicit HaloExchanger(const grid::Decomposition& decomp);

  /// Update all halos of `fs` (owned by the calling rank). Collective:
  /// every rank of the communicator must call with its own set.
  /// Equivalent to begin_set() immediately followed by finish().
  template <typename T>
  void exchange_set(Communicator& comm, const FieldSetT<T>& fs) const;

  /// Split-phase over a FieldSet: pack and post all sends/receives, do
  /// the local copies and zero fills, and return the in-flight handle.
  /// The halo cells of the set are in an unspecified state until
  /// finish(); the owned interior may be read freely (but not written)
  /// in between. One message per (block, neighbor) carries all nb()
  /// members. The fault-injection halo payload hook arms only on
  /// scalar-backed fp64 sets — fault sites target the scalar resilient
  /// solve; batch members recover through per-member sub-batches
  /// (DESIGN.md §10, §11).
  template <typename T>
  HaloHandleT<T> begin_set(Communicator& comm,
                           const FieldSetT<T>& fs) const;

  /// Aggregated deep-halo exchange of several same-shape sets (the
  /// communication-avoiding solvers' once-per-group refresh of
  /// {x, dx, r}): ONE message per (block, neighbor) concatenates the
  /// per-set rims back to back, so a group of N sets costs the same
  /// message count — and one exchange round — as a single set. All sets
  /// must share decomposition, rank, halo width and batch width; each
  /// set's rims are bitwise identical to what its own exchange_set()
  /// would deliver. With CRC enabled, one trailer covers the whole
  /// concatenated payload; the fault payload hook arms on scalar-backed
  /// fp64 groups exactly like the single-set path. Blocking.
  template <typename T>
  void exchange_group(Communicator& comm,
                      std::span<const FieldSetT<T>> sets) const;

  /// Convenience wrappers forwarding to the FieldSet engine.
  template <typename T>
  void exchange(Communicator& comm, DistFieldT<T>& field) const {
    exchange_set<T>(comm, FieldSetT<T>(field));
  }
  template <typename T>
  HaloHandleT<T> begin(Communicator& comm, DistFieldT<T>& field) const {
    return begin_set<T>(comm, FieldSetT<T>(field));
  }
  template <typename T>
  void exchange(Communicator& comm, DistFieldBatchT<T>& field) const {
    exchange_set<T>(comm, FieldSetT<T>(field));
  }
  template <typename T>
  HaloHandleT<T> begin(Communicator& comm,
                       DistFieldBatchT<T>& field) const {
    return begin_set<T>(comm, FieldSetT<T>(field));
  }

  /// Bytes this rank sends per exchange of `field` (for cost
  /// reporting). Scales with sizeof(T) and the batch width: an fp32
  /// field reports half the fp64 bytes; a batch reports nb x the
  /// scalar bytes, carried in the same messages.
  template <typename T>
  std::uint64_t bytes_sent_per_exchange(const DistFieldT<T>& field) const;
  template <typename T>
  std::uint64_t bytes_sent_per_exchange(
      const DistFieldBatchT<T>& field) const;

  /// Enable CRC32C protection of every remote halo message: the sender
  /// appends a one-element trailer carrying the CRC of the payload
  /// bytes, and finish() verifies it before unpacking. A mismatch
  /// declares the team desynchronized and throws CorruptPayloadError
  /// (the sends are eager-buffered — there is nothing live to
  /// retransmit — so recovery restarts from a checkpoint after the
  /// collective resync). Local copies and zero fills are not checked:
  /// they never leave the rank's memory. Must be set identically on
  /// every rank BEFORE any exchange; wired from
  /// IntegrityOptions::halo_crc at model construction. OFF (default)
  /// is byte-identical to the pre-integrity wire format.
  void set_crc(bool on) { crc_enabled_ = on; }
  bool crc() const { return crc_enabled_; }

 private:
  const grid::Decomposition* decomp_;
  bool crc_enabled_ = false;
};

#define MINIPOP_HALO_EXTERN(T)                                             \
  extern template void HaloExchanger::exchange_set<T>(                     \
      Communicator&, const FieldSetT<T>&) const;                           \
  extern template void HaloExchanger::exchange_group<T>(                   \
      Communicator&, std::span<const FieldSetT<T>>) const;                 \
  extern template HaloHandleT<T> HaloExchanger::begin_set<T>(              \
      Communicator&, const FieldSetT<T>&) const;                           \
  extern template std::uint64_t HaloExchanger::bytes_sent_per_exchange<T>( \
      const DistFieldT<T>&) const;                                         \
  extern template std::uint64_t HaloExchanger::bytes_sent_per_exchange<T>( \
      const DistFieldBatchT<T>&) const;
MINIPOP_HALO_EXTERN(double)
MINIPOP_HALO_EXTERN(float)
#undef MINIPOP_HALO_EXTERN

}  // namespace minipop::comm
