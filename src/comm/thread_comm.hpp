// Threaded virtual-MPI backend: a ThreadTeam runs N ranks as threads
// sharing mailboxes for point-to-point messages and reduction "rounds"
// for deterministic global reductions.
//
// Semantics mirror the subset of MPI the solvers need:
//   * isend() is buffered/eager (never blocks, complete at post time) —
//     like MPI's eager protocol that §5 of the paper tunes via
//     MP_EAGER_LIMIT;
//   * irecv() posts a mailbox future matching (src, tag) that completes
//     when the message arrives;
//   * iallreduce() posts a full-team rendezvous round whose combination
//     order is fixed (rank 0, 1, ..., p-1) regardless of arrival order,
//     so results are bitwise reproducible for a given rank count,
//     exactly like a fixed-topology MPI reduction tree. Ranks contribute
//     at post time; requests complete once every rank has posted.
//     Collectives are matched by call ordinal, so every rank must post
//     its reductions in the same order — but several may be in flight
//     at once.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/comm/communicator.hpp"
#include "src/util/error.hpp"

namespace minipop::comm {

/// Thrown in ranks blocked on a rendezvous when another rank of the team
/// failed: the collective can never complete, so waiting peers abort
/// instead of deadlocking. ThreadTeam::run() rethrows the *original*
/// failure, not this secondary one.
class TeamPoisonedError : public util::Error {
 public:
  using util::Error::Error;
};

class ThreadTeam;
class ThreadReduceRequest;
class ThreadRecvRequest;

/// Communicator handed to each rank function by ThreadTeam::run().
class ThreadComm final : public Communicator {
 public:
  int rank() const override { return rank_; }
  int size() const override;

  Request iallreduce(std::span<double> values, ReduceOp op) override;
  Request isend_bytes(int dest, int tag,
                      std::span<const std::byte> data) override;
  Request irecv_bytes(int src, int tag, std::span<std::byte> data) override;
  void barrier() override;
  void resync() override;
  void declare_desync() override;

 private:
  friend class ThreadTeam;
  ThreadComm(ThreadTeam* team, int rank) : team_(team), rank_(rank) {}
  ThreadTeam* team_;
  int rank_;
};

/// Owns the shared state for one team of virtual ranks.
class ThreadTeam {
 public:
  explicit ThreadTeam(int nranks);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  int nranks() const { return nranks_; }

  /// Bound blocking receives: a recv_block that finds no message within
  /// `total_ms` throws CommTimeoutError instead of waiting forever. The
  /// wait is split into `retries` attempts with exponentially growing
  /// slices (slice, 2*slice, 4*slice, ... summing to total_ms) — the
  /// retry/backoff ladder an MPI progress loop would use. Once one rank
  /// times out the whole team is flagged: every blocked or newly posted
  /// operation on any rank throws CommTimeoutError until resync() runs
  /// collectively. total_ms <= 0 restores the default infinite wait.
  void set_recv_timeout(double total_ms, int retries = 4);

  /// Run fn(comm) on every rank concurrently; returns when all finish.
  /// If any rank throws, the first exception is rethrown here after all
  /// threads have been joined.
  void run(const std::function<void(Communicator&)>& fn);

  /// Cost counters of rank r recorded during the last run().
  const CostCounters& costs(int r) const;

  /// Sum of all ranks' counters.
  CostCounters total_costs() const;

 private:
  friend class ThreadComm;
  friend class ThreadReduceRequest;
  friend class ThreadRecvRequest;

  // Mailbox payloads are raw bytes: the team relays whatever element
  // type the sender packed (fp64 state halos, fp32 mixed-precision
  // halos) without reinterpretation; sizes are checked in bytes.
  struct Message {
    std::vector<std::byte> data;
  };

  /// Point-to-point channel identity. A plain struct key (not a packed
  /// integer) so epoch-widened tags get the full non-negative int range.
  struct ChannelKey {
    int src;
    int dest;
    int tag;
    bool operator==(const ChannelKey&) const = default;
  };
  struct ChannelKeyHash {
    std::size_t operator()(const ChannelKey& k) const;
  };

  /// One in-flight deterministic reduction. Every rank deposits its
  /// contribution at post time; the last arriver combines in fixed rank
  /// order 0..p-1 and marks the round done. Requests hold a shared_ptr,
  /// so the team's routing map drops the round as soon as it completes.
  struct ReduceRound {
    ReduceOp op{};
    std::vector<std::vector<double>> slots;
    int arrived = 0;
    bool done = false;
    std::vector<double> result;
  };

  std::shared_ptr<ReduceRound> post_allreduce(int rank,
                                              std::span<double> values,
                                              ReduceOp op);
  bool reduce_poll(ReduceRound& round, std::span<double> out);
  void reduce_block(ReduceRound& round, std::span<double> out);

  void post_send(int src, int dest, int tag,
                 std::span<const std::byte> data);
  void post_recv(const ChannelKey& key);
  bool recv_poll(const ChannelKey& key, std::span<std::byte> out);
  void recv_block(const ChannelKey& key, std::span<std::byte> out);
  bool try_take_locked(const ChannelKey& key, std::span<std::byte> out);

  void do_barrier();
  void do_resync();

  /// Set when any rank throws: blocked peers wake up and abort instead
  /// of deadlocking in a rendezvous that can never complete.
  bool poisoned_ = false;
  void poison();
  void throw_if_poisoned() const;

  /// Set when any rank's receive timed out: the team's collective state
  /// is out of sync (ordinals, mailboxes), so every rank aborts its
  /// current operation and must rendezvous in do_resync(). Unlike
  /// poisoning this is recoverable.
  bool timed_out_ = false;
  void throw_if_timed_out() const;
  /// Raise timed_out_ from a rank that detected corruption (not a
  /// timeout) and is about to throw: peers blocked in recv/reduce/
  /// barrier waits wake via cv_ and abort with CommTimeoutError, then
  /// the whole team meets in do_resync() exactly as after a timeout.
  void declare_timeout();
  double recv_timeout_ms_ = 0.0;  ///< <= 0: wait forever (default)
  int recv_retries_ = 4;

  int nranks_;
  std::vector<std::unique_ptr<ThreadComm>> comms_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<ChannelKey, std::deque<Message>, ChannelKeyHash>
      mailboxes_;

  // Reduction rounds routed by global call ordinal: per-rank post
  // counters stay in sync because collectives are posted in the same
  // order on every rank.
  std::unordered_map<std::uint64_t, std::shared_ptr<ReduceRound>>
      reduce_rounds_;
  std::vector<std::uint64_t> reduce_posts_;

  // Barrier state.
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Resync rendezvous state. The generation also stamps fault-delayed
  // deliveries: a delayed message posted before a resync is dropped when
  // it finally matures, so it cannot collide with a reused tag epoch.
  int resync_arrived_ = 0;
  std::uint64_t resync_generation_ = 0;

  // Timer threads carrying fault-delayed mailbox deliveries; joined at
  // the end of run() so no delivery outlives its team run.
  std::vector<std::thread> delayed_threads_;

#if MINIPOP_BOUNDS_CHECK
  // Tag-epoch audit: number of posted-but-uncompleted recvs per channel.
  // Posting a second recv on a channel that already has one outstanding
  // means a tag (epoch) was reused while the previous exchange was still
  // in flight — the failure the tag-epoch window exists to prevent.
  std::unordered_map<ChannelKey, int, ChannelKeyHash> outstanding_recvs_;
#endif
};

}  // namespace minipop::comm
