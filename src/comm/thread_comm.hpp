// Threaded virtual-MPI backend: a ThreadTeam runs N ranks as threads
// sharing a mailbox for point-to-point messages and a slot array for
// deterministic global reductions.
//
// Semantics mirror the subset of MPI the solvers need:
//   * send() is buffered/eager (never blocks) — like MPI's eager protocol
//     that §5 of the paper tunes via MP_EAGER_LIMIT;
//   * recv() blocks until a matching (src, tag) message arrives;
//   * allreduce() is a full-team rendezvous whose combination order is
//     fixed (rank 0, 1, ..., p-1), so results are bitwise reproducible for
//     a given rank count, exactly like a fixed-topology MPI reduction
//     tree.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/comm/communicator.hpp"
#include "src/util/error.hpp"

namespace minipop::comm {

/// Thrown in ranks blocked on a rendezvous when another rank of the team
/// failed: the collective can never complete, so waiting peers abort
/// instead of deadlocking. ThreadTeam::run() rethrows the *original*
/// failure, not this secondary one.
class TeamPoisonedError : public util::Error {
 public:
  using util::Error::Error;
};

class ThreadTeam;

/// Communicator handed to each rank function by ThreadTeam::run().
class ThreadComm final : public Communicator {
 public:
  int rank() const override { return rank_; }
  int size() const override;

  void allreduce(std::span<double> values, ReduceOp op) override;
  void send(int dest, int tag, std::span<const double> data) override;
  void recv(int src, int tag, std::span<double> data) override;
  void barrier() override;

 private:
  friend class ThreadTeam;
  ThreadComm(ThreadTeam* team, int rank) : team_(team), rank_(rank) {}
  ThreadTeam* team_;
  int rank_;
};

/// Owns the shared state for one team of virtual ranks.
class ThreadTeam {
 public:
  explicit ThreadTeam(int nranks);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  int nranks() const { return nranks_; }

  /// Run fn(comm) on every rank concurrently; returns when all finish.
  /// If any rank throws, the first exception is rethrown here after all
  /// threads have been joined.
  void run(const std::function<void(Communicator&)>& fn);

  /// Cost counters of rank r recorded during the last run().
  const CostCounters& costs(int r) const;

  /// Sum of all ranks' counters.
  CostCounters total_costs() const;

 private:
  friend class ThreadComm;

  struct Message {
    std::vector<double> data;
  };

  static std::uint64_t mailbox_key(int src, int dest, int tag);

  void do_allreduce(int rank, std::span<double> values, ReduceOp op);
  void do_send(int src, int dest, int tag, std::span<const double> data);
  void do_recv(int dest, int src, int tag, std::span<double> data);
  void do_barrier();

  int nranks_;
  std::vector<std::unique_ptr<ThreadComm>> comms_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::uint64_t, std::deque<Message>> mailboxes_;

  /// Set when any rank throws: blocked peers wake up and abort instead
  /// of deadlocking in a rendezvous that can never complete.
  bool poisoned_ = false;
  void poison();
  void throw_if_poisoned() const;

  // Allreduce rendezvous state.
  std::vector<std::vector<double>> slots_;
  int reduce_arrived_ = 0;
  std::uint64_t reduce_generation_ = 0;
  std::vector<double> reduce_result_;

  // Barrier state.
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

}  // namespace minipop::comm
