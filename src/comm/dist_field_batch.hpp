// Rank-local storage for a batch of B distributed 2D fields that share
// one grid/decomposition — the multi-RHS counterpart of DistField.
//
// Layout is member-fastest interleaved structure-of-arrays: per local
// block the padded plane is an Array2D<T> of logical shape
// ((nx + 2h) * nb, ny + 2h), and element (i, j) of member m lives at
// data(lb)((i + h) * nb + m, j + h). Consecutive members of one cell
// are adjacent in memory, so a batched kernel loads each 9-point
// coefficient once per cell and reuses it across all nb members, and a
// halo row becomes ni * nb contiguous elements that pack into ONE
// message per neighbor per exchange regardless of nb.
//
// Batches are templated on the storage scalar exactly like DistFieldT:
// DistFieldBatch (double) carries the fp64 lockstep solves and
// DistFieldBatch32 (float) carries the fp32 inner sweeps of the batched
// mixed-precision path — aggregated fp32 halos move half the bytes of
// their fp64 counterparts in the same message count.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/grid/decomposition.hpp"
#include "src/util/array2d.hpp"

namespace minipop::comm {

template <typename T>
class DistFieldT;
using DistField = DistFieldT<double>;
using DistField32 = DistFieldT<float>;

template <typename T>
class DistFieldBatchT {
 public:
  /// Default POP halo width (matches DistField::kDefaultHalo).
  static constexpr int kDefaultHalo = 2;

  DistFieldBatchT(const grid::Decomposition& decomp, int rank, int nb,
                  int halo = kDefaultHalo);

  const grid::Decomposition& decomposition() const { return *decomp_; }
  int rank() const { return rank_; }
  int halo() const { return halo_; }
  int nb() const { return nb_; }
  int num_local_blocks() const { return static_cast<int>(data_.size()); }

  const grid::BlockInfo& info(int lb) const;
  util::Array2D<T>& data(int lb) { return data_[lb]; }
  const util::Array2D<T>& data(int lb) const { return data_[lb]; }

  /// Interior access (i, j in block-local interior coordinates, m the
  /// member index).
  T& at(int lb, int i, int j, int m) {
    return data_[lb]((i + halo_) * nb_ + m, j + halo_);
  }
  T at(int lb, int i, int j, int m) const {
    return data_[lb]((i + halo_) * nb_ + m, j + halo_);
  }

  /// Raw pointer to member 0 of interior cell (0, 0) of local block lb;
  /// rows are `stride(lb)` elements apart, cell columns nb() elements
  /// apart. This is the batched-kernel entry point.
  T* interior(int lb) {
    util::Array2D<T>& f = data_[lb];
    return f.data() + static_cast<std::ptrdiff_t>(halo_) * f.nx() +
           static_cast<std::ptrdiff_t>(halo_) * nb_;
  }
  const T* interior(int lb) const {
    const util::Array2D<T>& f = data_[lb];
    return f.data() + static_cast<std::ptrdiff_t>(halo_) * f.nx() +
           static_cast<std::ptrdiff_t>(halo_) * nb_;
  }
  /// Padded row pitch of local block lb, in elements (already includes
  /// the nb-fold widening).
  std::ptrdiff_t stride(int lb) const { return data_[lb].nx(); }

  /// Local index of a globally-identified block, or -1 if not owned.
  int local_index(int global_block_id) const;

  void fill(T v);

  /// True when `f` describes the same block set with the same halo, so
  /// its plane can be loaded into / stored out of a member slot. The
  /// check is structural (block ids, origins, shapes), not pointer
  /// identity, so fields built on different-but-identical Decomposition
  /// objects (one per ensemble member) interoperate.
  bool member_compatible(const DistFieldT<T>& f) const;

  /// Copy the FULL padded plane (interior + halos) of `f` into member
  /// slot m, so halo freshness carries over into the batch.
  void load_member(int m, const DistFieldT<T>& f);

  /// Copy member slot m's full padded plane back into `f`.
  void store_member(int m, DistFieldT<T>& f) const;

  /// Copy the full padded plane of `src`'s member `src_m` into this
  /// batch's member `m` (used by convergence-retirement compaction and
  /// by the per-member recovery sub-batches of the resilient decorator).
  void copy_member_from(int m, const DistFieldBatchT<T>& src, int src_m);

  /// Interior-only variant of copy_member_from that tolerates a
  /// different halo width (the comm-avoiding solvers migrate members
  /// between caller batches and deep-halo working batches). Halo cells
  /// of member m are left untouched.
  void copy_member_interior_from(int m, const DistFieldBatchT<T>& src,
                                 int src_m);

  /// Shape compatibility: same decomposition object, rank, halo, and
  /// batch width. Templated across element types so the mixed-precision
  /// boundary (fp64 batch vs its fp32 mirror) can be validated too.
  template <typename U>
  bool compatible_with(const DistFieldBatchT<U>& other) const {
    return decomp_ == &other.decomposition() && rank_ == other.rank() &&
           halo_ == other.halo() && nb_ == other.nb();
  }

 private:
  const grid::Decomposition* decomp_;
  int rank_;
  int halo_;
  int nb_;
  std::vector<int> block_ids_;  ///< global id of each local block
  std::vector<util::Array2D<T>> data_;
  std::unordered_map<int, int> local_of_global_;
};

using DistFieldBatch = DistFieldBatchT<double>;
using DistFieldBatch32 = DistFieldBatchT<float>;

extern template class DistFieldBatchT<double>;
extern template class DistFieldBatchT<float>;

}  // namespace minipop::comm
