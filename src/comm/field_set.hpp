// FieldSet: one non-owning view over the two distributed containers —
// a scalar DistFieldT<T> (one member plane) or a DistFieldBatchT<T>
// (nb member-interleaved planes) — so the halo exchanger, the distri-
// buted operator, and the preconditioners speak ONE surface instead of
// triplicating scalar/fp32/batch overloads.
//
// The view erases the container difference behind the batch layout
// contract: element (i, j, m) lives at
//   data(lb)((i + halo) * nb() + m, j + halo)
// with nb() == 1 for a scalar backing, where the formula degenerates to
// the classic padded-plane addressing. Width-aware consumers (packers,
// kernels) written against nb() therefore reproduce the scalar path
// byte-for-byte at nb() == 1.
//
// scalar_backed() survives the erasure deliberately: the fault-
// injection halo hook arms only on scalar fp64 exchanges (fault sites
// target the scalar resilient solve; batch members recover through the
// per-member sub-batch path instead), so the exchanger needs to know
// which backing it is exchanging even though the data path is shared.
//
// The view holds a pointer to the backing container; the container must
// outlive every FieldSet over it. Copying the view is copying the
// pointer.
#pragma once

#include <cstddef>

#include "src/comm/dist_field.hpp"
#include "src/comm/dist_field_batch.hpp"

namespace minipop::comm {

template <typename T>
class FieldSetT {
 public:
  FieldSetT() = default;
  /// View of a scalar field: one member, nb() == 1.
  FieldSetT(DistFieldT<T>& f) : scalar_(&f) {}  // NOLINT(runtime/explicit)
  /// View of a batch: nb() members per cell, member-fastest.
  FieldSetT(DistFieldBatchT<T>& f) : batch_(&f) {}  // NOLINT

  bool valid() const { return scalar_ != nullptr || batch_ != nullptr; }
  /// True when the backing container is a scalar DistFieldT (the
  /// fault-hook arming condition, together with T == double).
  bool scalar_backed() const { return scalar_ != nullptr; }

  const grid::Decomposition& decomposition() const {
    return scalar_ ? scalar_->decomposition() : batch_->decomposition();
  }
  int rank() const { return scalar_ ? scalar_->rank() : batch_->rank(); }
  int halo() const { return scalar_ ? scalar_->halo() : batch_->halo(); }
  /// Members per cell: 1 for a scalar backing, the batch width else.
  int nb() const { return scalar_ ? 1 : batch_->nb(); }
  int num_local_blocks() const {
    return scalar_ ? scalar_->num_local_blocks()
                   : batch_->num_local_blocks();
  }
  const grid::BlockInfo& info(int lb) const {
    return scalar_ ? scalar_->info(lb) : batch_->info(lb);
  }
  util::Array2D<T>& data(int lb) const {
    return scalar_ ? scalar_->data(lb) : batch_->data(lb);
  }
  int local_index(int global_block_id) const {
    return scalar_ ? scalar_->local_index(global_block_id)
                   : batch_->local_index(global_block_id);
  }

  /// Raw pointer to member 0 of interior cell (0, 0) of local block lb
  /// — the kernel entry point. Rows are stride(lb) elements apart, cell
  /// columns nb() elements apart.
  T* interior(int lb) const {
    return scalar_ ? scalar_->interior(lb) : batch_->interior(lb);
  }
  /// Padded row pitch in elements (includes the nb-fold widening).
  std::ptrdiff_t stride(int lb) const {
    return scalar_ ? scalar_->stride(lb) : batch_->stride(lb);
  }

 private:
  DistFieldT<T>* scalar_ = nullptr;
  DistFieldBatchT<T>* batch_ = nullptr;
};

using FieldSet = FieldSetT<double>;
using FieldSet32 = FieldSetT<float>;

}  // namespace minipop::comm
