#include "src/comm/communicator.hpp"

namespace minipop::comm {

double Communicator::allreduce_sum(double v) {
  allreduce(std::span<double>(&v, 1), ReduceOp::kSum);
  return v;
}

void Communicator::allreduce_sum2(double* a, double* b) {
  double buf[2] = {*a, *b};
  allreduce(std::span<double>(buf, 2), ReduceOp::kSum);
  *a = buf[0];
  *b = buf[1];
}

}  // namespace minipop::comm
