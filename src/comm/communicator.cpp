#include "src/comm/communicator.hpp"

#include <exception>

namespace minipop::comm {

namespace {
double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

Request::Request(std::unique_ptr<RequestState> state, CostTracker* costs)
    : state_(std::move(state)),
      costs_(costs),
      posted_(std::chrono::steady_clock::now()) {
  if (state_ != nullptr && costs_ != nullptr) costs_->add_request();
}

Request& Request::operator=(Request&& o) noexcept {
  if (this != &o) {
    // Assigning over an in-flight request would silently abandon it;
    // callers must complete (or move from) a request before reusing the
    // handle. A violation is a bug, not a runtime condition, so fail
    // loudly rather than risk a lost message.
    if (!done()) std::terminate();
    state_ = std::move(o.state_);
    costs_ = o.costs_;
    posted_ = o.posted_;
  }
  return *this;
}

Request::~Request() {
  if (done()) return;
  // Abandonment path (see header): one non-blocking attempt, never
  // block. Swallow backend errors — destructors run during poisoned-team
  // unwinding.
  try {
    test();
  } catch (...) {
  }
  state_.reset();
}

void Request::record_completion(double exposed_seconds) {
  if (costs_ != nullptr) {
    costs_->add_posted_seconds(
        seconds_between(posted_, std::chrono::steady_clock::now()));
    costs_->add_exposed_seconds(exposed_seconds);
  }
  state_.reset();
}

bool Request::test() {
  if (done()) return true;
  if (!state_->poll()) return false;
  record_completion(0.0);
  return true;
}

void Request::wait() {
  if (done()) return;
  const auto t0 = std::chrono::steady_clock::now();
  state_->block();
  record_completion(seconds_between(t0, std::chrono::steady_clock::now()));
}

void Communicator::allreduce(std::span<double> values, ReduceOp op) {
  iallreduce(values, op).wait();
}

void Communicator::send(int dest, int tag, std::span<const double> data) {
  isend(dest, tag, data).wait();
}

void Communicator::recv(int src, int tag, std::span<double> data) {
  irecv(src, tag, data).wait();
}

double Communicator::allreduce_sum(double v) {
  allreduce(std::span<double>(&v, 1), ReduceOp::kSum);
  return v;
}

void Communicator::allreduce_sum2(double* a, double* b) {
  double buf[2] = {*a, *b};
  allreduce(std::span<double>(buf, 2), ReduceOp::kSum);
  *a = buf[0];
  *b = buf[1];
}

}  // namespace minipop::comm
