#include "src/comm/halo.hpp"

#include <algorithm>
#include <cstring>
#include <type_traits>
#include <vector>

#include "src/fault/fault_injector.hpp"
#include "src/util/crc32c.hpp"
#include "src/util/error.hpp"

namespace minipop::comm {

namespace {

using grid::Dir;
using detail::HaloRegion;

Dir opposite(Dir d) {
  switch (d) {
    case Dir::kEast: return Dir::kWest;
    case Dir::kWest: return Dir::kEast;
    case Dir::kNorth: return Dir::kSouth;
    case Dir::kSouth: return Dir::kNorth;
    case Dir::kNorthEast: return Dir::kSouthWest;
    case Dir::kNorthWest: return Dir::kSouthEast;
    case Dir::kSouthEast: return Dir::kNorthWest;
    case Dir::kSouthWest: return Dir::kNorthEast;
    case Dir::kCenter: return Dir::kCenter;
  }
  return Dir::kCenter;
}

constexpr Dir kExchangeDirs[8] = {
    Dir::kEast,      Dir::kWest,      Dir::kNorth,     Dir::kSouth,
    Dir::kNorthEast, Dir::kNorthWest, Dir::kSouthEast, Dir::kSouthWest};

/// Interior strip of (bnx x bny) sent toward direction d.
HaloRegion send_region(Dir d, int bnx, int bny, int h) {
  switch (d) {
    case Dir::kEast: return {bnx - h, 0, h, bny};
    case Dir::kWest: return {0, 0, h, bny};
    case Dir::kNorth: return {0, bny - h, bnx, h};
    case Dir::kSouth: return {0, 0, bnx, h};
    case Dir::kNorthEast: return {bnx - h, bny - h, h, h};
    case Dir::kNorthWest: return {0, bny - h, h, h};
    case Dir::kSouthEast: return {bnx - h, 0, h, h};
    case Dir::kSouthWest: return {0, 0, h, h};
    case Dir::kCenter: break;
  }
  MINIPOP_REQUIRE(false, "send_region(center)");
  return {};
}

/// Halo region (in interior coordinates, so indices may be negative or
/// >= bnx) filled from the neighbor in direction d.
HaloRegion halo_region(Dir d, int bnx, int bny, int h) {
  switch (d) {
    case Dir::kEast: return {bnx, 0, h, bny};
    case Dir::kWest: return {-h, 0, h, bny};
    case Dir::kNorth: return {0, bny, bnx, h};
    case Dir::kSouth: return {0, -h, bnx, h};
    case Dir::kNorthEast: return {bnx, bny, h, h};
    case Dir::kNorthWest: return {-h, bny, h, h};
    case Dir::kSouthEast: return {bnx, -h, h, h};
    case Dir::kSouthWest: return {-h, -h, h, h};
    case Dir::kCenter: break;
  }
  MINIPOP_REQUIRE(false, "halo_region(center)");
  return {};
}

/// Per-exchange message tag: the epoch selects a disjoint tag sub-space
/// so concurrently outstanding exchanges cannot match each other's
/// messages; within an epoch the (source block, direction) pair is
/// unique per exchange.
int message_tag(int epoch, int src_block_id, Dir d) {
  const int local = src_block_id * 9 + static_cast<int>(d);
  MINIPOP_REQUIRE(local < Communicator::kTagEpochStride,
                  "tag overflow for block " << src_block_id);
  return epoch * Communicator::kTagEpochStride + local;
}

// Pack/unpack move whole region rows at once: region coordinates have i
// fast, so row j of a width-w region is `ni * w` contiguous elements in
// the padded array (cell column i of a w-member plane starts at element
// i * w; w == 1 is the classic scalar plane, where these helpers
// degenerate to the original scalar byte-for-byte path). Full-width N/S
// strips (the big messages) move as `nj` memcpys of `ni * w` elements
// each; E/W strips degenerate to short rows, same code path.

/// First element of region row j inside the padded array.
template <typename T>
T* region_row_w(util::Array2D<T>& padded, int h, int w,
                const HaloRegion& r, int j) {
  return padded.data() +
         static_cast<std::ptrdiff_t>(r.j0 + j + h) * padded.nx() +
         static_cast<std::ptrdiff_t>(r.i0 + h) * w;
}
template <typename T>
const T* region_row_w(const util::Array2D<T>& padded, int h, int w,
                      const HaloRegion& r, int j) {
  return padded.data() +
         static_cast<std::ptrdiff_t>(r.j0 + j + h) * padded.nx() +
         static_cast<std::ptrdiff_t>(r.i0 + h) * w;
}

template <typename T>
void pack_w(const util::Array2D<T>& padded, int h, int w,
            const HaloRegion& r, std::vector<T>& out) {
  const std::size_t row = static_cast<std::size_t>(r.ni) * w;
  out.resize(row * r.nj);
  for (int j = 0; j < r.nj; ++j)
    std::memcpy(out.data() + static_cast<std::size_t>(j) * row,
                region_row_w(padded, h, w, r, j), row * sizeof(T));
}

template <typename T>
void unpack_w(util::Array2D<T>& padded, int h, int w, const HaloRegion& r,
              std::span<const T> in) {
  const std::size_t row = static_cast<std::size_t>(r.ni) * w;
  MINIPOP_REQUIRE(in.size() == row * r.nj, "halo unpack size mismatch");
  for (int j = 0; j < r.nj; ++j)
    std::memcpy(region_row_w(padded, h, w, r, j),
                in.data() + static_cast<std::size_t>(j) * row,
                row * sizeof(T));
}

/// pack_w that appends to `out` instead of replacing it — the group
/// exchange concatenates several sets' rims into one message.
template <typename T>
void pack_append_w(const util::Array2D<T>& padded, int h, int w,
                   const HaloRegion& r, std::vector<T>& out) {
  const std::size_t row = static_cast<std::size_t>(r.ni) * w;
  const std::size_t base = out.size();
  out.resize(base + row * r.nj);
  for (int j = 0; j < r.nj; ++j)
    std::memcpy(out.data() + base + static_cast<std::size_t>(j) * row,
                region_row_w(padded, h, w, r, j), row * sizeof(T));
}

template <typename T>
void zero_region_w(util::Array2D<T>& padded, int h, int w,
                   const HaloRegion& r) {
  const std::size_t row = static_cast<std::size_t>(r.ni) * w;
  for (int j = 0; j < r.nj; ++j) {
    T* p = region_row_w(padded, h, w, r, j);
    std::fill(p, p + row, T(0));
  }
}

// CRC trailer: one extra element of T per remote message, carrying the
// CRC32C of the payload bytes in its low four bytes (the rest zero).
// Encoding the checksum as a T keeps the wire format element-typed —
// receivers size buffers in elements — at the cost of four wasted bytes
// per fp64 message.

template <typename T>
T encode_crc(std::uint32_t crc) {
  static_assert(sizeof(T) >= sizeof(std::uint32_t));
  T out{};
  std::memcpy(&out, &crc, sizeof(crc));
  return out;
}

template <typename T>
std::uint32_t decode_crc(const T& trailer) {
  std::uint32_t crc;
  std::memcpy(&crc, &trailer, sizeof(crc));
  return crc;
}

}  // namespace

template <typename T>
HaloHandleT<T>::~HaloHandleT() {
  if (!active()) return;
  try {
    finish();
  } catch (...) {
    // Safety-net finish during unwinding (e.g. a poisoned team): drop
    // whatever could not complete. Requests abandon non-blocking.
  }
}

template <typename T>
void HaloHandleT<T>::finish() {
  if (!active()) return;
  const int w = fs_.nb();
  // Complete in post order — the same receive order as the blocking
  // exchange, so the unpacked halos are bitwise identical to it.
  for (PendingRecv& p : recvs_) {
    p.request.wait();
    std::span<const T> payload(p.buf);
    if (crc_) {
      // Strip and verify the one-element CRC trailer before the payload
      // touches field memory.
      payload = payload.first(payload.size() - 1);
      const std::uint32_t want = decode_crc<T>(p.buf.back());
      const std::uint32_t got =
          util::crc32c(payload.data(), payload.size_bytes());
      comm_->costs().add_integrity_check(got != want);
      if (got != want) {
        // Wake peers blocked on this rank before unwinding, then let
        // the recovery layer resync the team and restart the solve.
        comm_->declare_desync();
        throw CorruptPayloadError(
            "halo payload failed CRC32C verification (silent wire "
            "corruption detected)");
      }
    }
    unpack_w<T>(fs_.data(p.lb), fs_.halo(), w, p.dst, payload);
  }
  comm_->costs().add_halo_exchange(w);
  recvs_.clear();
  fs_ = FieldSetT<T>();
  comm_ = nullptr;
}

HaloExchanger::HaloExchanger(const grid::Decomposition& decomp)
    : decomp_(&decomp) {}

template <typename T>
void HaloExchanger::exchange_set(Communicator& comm,
                                 const FieldSetT<T>& fs) const {
  begin_set<T>(comm, fs).finish();
}

template <typename T>
HaloHandleT<T> HaloExchanger::begin_set(Communicator& comm,
                                        const FieldSetT<T>& fs) const {
  MINIPOP_REQUIRE(fs.valid(), "halo exchange of an empty FieldSet");
  MINIPOP_REQUIRE(&fs.decomposition() == decomp_,
                  "field belongs to a different decomposition");
  const int h = fs.halo();
  const int w = fs.nb();
  const int my_rank = fs.rank();
  const int epoch = comm.next_tag_epoch();
  std::vector<T> buf;

  HaloHandleT<T> handle;
  handle.comm_ = &comm;
  handle.fs_ = fs;
  handle.crc_ = crc_enabled_;

  // Phase 1: post all remote sends (eager, complete at post time) —
  // ONE message per (block, direction) carrying all w members.
  for (int lb = 0; lb < fs.num_local_blocks(); ++lb) {
    const auto& b = fs.info(lb);
    for (Dir d : kExchangeDirs) {
      const int nid = decomp_->neighbor(b.id, d);
      if (nid < 0) continue;
      const int owner = decomp_->block(nid).owner;
      if (owner == my_rank) continue;
      pack_w<T>(fs.data(lb), h, w, send_region(d, b.nx, b.ny, h), buf);
      // The fault sites corrupt scalar fp64 state halos: the fp32
      // mirror path is exercised under the fp64 refinement guard, and
      // batch members recover through per-member sub-batches of the
      // batched resilient decorator rather than through injected wire
      // corruption.
      if constexpr (std::is_same_v<T, double>) {
        if (fs.scalar_backed())
          fault::hook_halo_payload(my_rank, buf.data(), buf.size());
      }
      if (crc_enabled_) {
        // The CRC is taken AFTER hook_halo_payload: that site models
        // memory corruption at pack time, which a wire checksum cannot
        // (and should not) catch. hook_halo_bitflip then fires on the
        // checksummed bytes — wire corruption the verifier must detect.
        const std::size_t payload = buf.size();
        buf.push_back(encode_crc<T>(
            util::crc32c(buf.data(), payload * sizeof(T))));
        fault::hook_halo_bitflip(
            my_rank, reinterpret_cast<unsigned char*>(buf.data()),
            payload * sizeof(T));
      }
      comm.isend(owner, message_tag(epoch, b.id, d),
                 std::span<const T>(buf));
    }
  }

  // Phase 2: post all remote receives (same traversal order as the
  // blocking receive loop, so finish() unpacks in that order).
  for (int lb = 0; lb < fs.num_local_blocks(); ++lb) {
    const auto& b = fs.info(lb);
    for (Dir d : kExchangeDirs) {
      const int nid = decomp_->neighbor(b.id, d);
      if (nid < 0) continue;
      const auto& nbk = decomp_->block(nid);
      if (nbk.owner == my_rank) continue;
      const HaloRegion dst = halo_region(d, b.nx, b.ny, h);
      typename HaloHandleT<T>::PendingRecv p;
      p.buf.resize(static_cast<std::size_t>(dst.ni) * w * dst.nj +
                   (crc_enabled_ ? 1 : 0));
      p.lb = lb;
      p.dst = dst;
      handle.recvs_.push_back(std::move(p));
      typename HaloHandleT<T>::PendingRecv& posted = handle.recvs_.back();
      posted.request =
          comm.irecv(nbk.owner, message_tag(epoch, nid, opposite(d)),
                     std::span<T>(posted.buf));
    }
  }

  // Phase 3: local copies and zero fills (no communication).
  for (int lb = 0; lb < fs.num_local_blocks(); ++lb) {
    const auto& b = fs.info(lb);
    for (Dir d : kExchangeDirs) {
      const int nid = decomp_->neighbor(b.id, d);
      const HaloRegion dst = halo_region(d, b.nx, b.ny, h);
      if (nid < 0) {
        zero_region_w<T>(fs.data(lb), h, w, dst);
        continue;
      }
      const auto& nbk = decomp_->block(nid);
      if (nbk.owner != my_rank) continue;  // remote: posted in phase 2
      const int nlb = fs.local_index(nid);
      MINIPOP_ASSERT(nlb >= 0);
      pack_w<T>(fs.data(nlb), h, w,
                send_region(opposite(d), nbk.nx, nbk.ny, h), buf);
      unpack_w<T>(fs.data(lb), h, w, dst, buf);
    }
  }

  return handle;
}

template <typename T>
void HaloExchanger::exchange_group(Communicator& comm,
                                   std::span<const FieldSetT<T>> sets) const {
  MINIPOP_REQUIRE(!sets.empty(), "halo exchange of an empty group");
  const FieldSetT<T>& fs0 = sets.front();
  MINIPOP_REQUIRE(fs0.valid(), "halo exchange of an empty FieldSet");
  MINIPOP_REQUIRE(&fs0.decomposition() == decomp_,
                  "field belongs to a different decomposition");
  bool all_scalar = true;
  for (const FieldSetT<T>& fs : sets) {
    MINIPOP_REQUIRE(fs.valid() && &fs.decomposition() == decomp_ &&
                        fs.rank() == fs0.rank() && fs.halo() == fs0.halo() &&
                        fs.nb() == fs0.nb(),
                    "group members must share decomposition, rank, halo "
                    "width and batch width");
    all_scalar = all_scalar && fs.scalar_backed();
  }
  const int h = fs0.halo();
  const int w = fs0.nb();
  const int my_rank = fs0.rank();
  const int epoch = comm.next_tag_epoch();
  std::vector<T> buf;

  struct GroupRecv {
    std::vector<T> buf;  // before request: see PendingRecv's ordering note
    int lb = 0;
    HaloRegion dst{};
    Request request;
  };
  std::vector<GroupRecv> recvs;

  // Phase 1: one eager send per (block, direction) concatenating every
  // set's rim back to back (set order = caller order).
  for (int lb = 0; lb < fs0.num_local_blocks(); ++lb) {
    const auto& b = fs0.info(lb);
    for (Dir d : kExchangeDirs) {
      const int nid = decomp_->neighbor(b.id, d);
      if (nid < 0) continue;
      const int owner = decomp_->block(nid).owner;
      if (owner == my_rank) continue;
      const HaloRegion src = send_region(d, b.nx, b.ny, h);
      buf.clear();
      for (const FieldSetT<T>& fs : sets)
        pack_append_w<T>(fs.data(lb), h, w, src, buf);
      if constexpr (std::is_same_v<T, double>) {
        if (all_scalar)
          fault::hook_halo_payload(my_rank, buf.data(), buf.size());
      }
      if (crc_enabled_) {
        const std::size_t payload = buf.size();
        buf.push_back(encode_crc<T>(
            util::crc32c(buf.data(), payload * sizeof(T))));
        fault::hook_halo_bitflip(
            my_rank, reinterpret_cast<unsigned char*>(buf.data()),
            payload * sizeof(T));
      }
      comm.isend(owner, message_tag(epoch, b.id, d),
                 std::span<const T>(buf));
    }
  }

  // Phase 2: one receive per (block, direction), sized for all sets.
  for (int lb = 0; lb < fs0.num_local_blocks(); ++lb) {
    const auto& b = fs0.info(lb);
    for (Dir d : kExchangeDirs) {
      const int nid = decomp_->neighbor(b.id, d);
      if (nid < 0) continue;
      const auto& nbk = decomp_->block(nid);
      if (nbk.owner == my_rank) continue;
      const HaloRegion dst = halo_region(d, b.nx, b.ny, h);
      GroupRecv p;
      p.buf.resize(static_cast<std::size_t>(dst.ni) * w * dst.nj *
                       sets.size() +
                   (crc_enabled_ ? 1 : 0));
      p.lb = lb;
      p.dst = dst;
      recvs.push_back(std::move(p));
      GroupRecv& posted = recvs.back();
      posted.request =
          comm.irecv(nbk.owner, message_tag(epoch, nid, opposite(d)),
                     std::span<T>(posted.buf));
    }
  }

  // Phase 3: local copies and zero fills, per set.
  for (int lb = 0; lb < fs0.num_local_blocks(); ++lb) {
    const auto& b = fs0.info(lb);
    for (Dir d : kExchangeDirs) {
      const int nid = decomp_->neighbor(b.id, d);
      const HaloRegion dst = halo_region(d, b.nx, b.ny, h);
      if (nid < 0) {
        for (const FieldSetT<T>& fs : sets)
          zero_region_w<T>(fs.data(lb), h, w, dst);
        continue;
      }
      const auto& nbk = decomp_->block(nid);
      if (nbk.owner != my_rank) continue;
      const int nlb = fs0.local_index(nid);
      MINIPOP_ASSERT(nlb >= 0);
      const HaloRegion src = send_region(opposite(d), nbk.nx, nbk.ny, h);
      for (const FieldSetT<T>& fs : sets) {
        pack_w<T>(fs.data(nlb), h, w, src, buf);
        unpack_w<T>(fs.data(lb), h, w, dst, buf);
      }
    }
  }

  // Wait in post order and unpack each set's segment.
  for (GroupRecv& p : recvs) {
    p.request.wait();
    std::span<const T> payload(p.buf);
    if (crc_enabled_) {
      payload = payload.first(payload.size() - 1);
      const std::uint32_t want = decode_crc<T>(p.buf.back());
      const std::uint32_t got =
          util::crc32c(payload.data(), payload.size_bytes());
      comm.costs().add_integrity_check(got != want);
      if (got != want) {
        comm.declare_desync();
        throw CorruptPayloadError(
            "halo payload failed CRC32C verification (silent wire "
            "corruption detected)");
      }
    }
    const std::size_t seg =
        static_cast<std::size_t>(p.dst.ni) * w * p.dst.nj;
    for (std::size_t s = 0; s < sets.size(); ++s)
      unpack_w<T>(sets[s].data(p.lb), h, w, p.dst,
                  payload.subspan(s * seg, seg));
  }
  // One round, refreshing all sets' planes: halo latency is paid once
  // for the whole group — the counter the comm-avoiding audits watch.
  comm.costs().add_halo_exchange(w * static_cast<int>(sets.size()));
}

template <typename T>
std::uint64_t HaloExchanger::bytes_sent_per_exchange(
    const DistFieldT<T>& field) const {
  const int h = field.halo();
  const int my_rank = field.rank();
  std::uint64_t bytes = 0;
  for (int lb = 0; lb < field.num_local_blocks(); ++lb) {
    const auto& b = field.info(lb);
    for (Dir d : kExchangeDirs) {
      const int nid = decomp_->neighbor(b.id, d);
      if (nid < 0) continue;
      if (decomp_->block(nid).owner == my_rank) continue;
      const HaloRegion r = send_region(d, b.nx, b.ny, h);
      bytes += static_cast<std::uint64_t>(r.ni) * r.nj * sizeof(T);
      if (crc_enabled_) bytes += sizeof(T);  // CRC trailer element
    }
  }
  return bytes;
}

template <typename T>
std::uint64_t HaloExchanger::bytes_sent_per_exchange(
    const DistFieldBatchT<T>& field) const {
  const int h = field.halo();
  const int my_rank = field.rank();
  std::uint64_t bytes = 0;
  for (int lb = 0; lb < field.num_local_blocks(); ++lb) {
    const auto& b = field.info(lb);
    for (Dir d : kExchangeDirs) {
      const int nid = decomp_->neighbor(b.id, d);
      if (nid < 0) continue;
      if (decomp_->block(nid).owner == my_rank) continue;
      const HaloRegion r = send_region(d, b.nx, b.ny, h);
      bytes += static_cast<std::uint64_t>(r.ni) * field.nb() * r.nj *
               sizeof(T);
      if (crc_enabled_) bytes += sizeof(T);  // CRC trailer element
    }
  }
  return bytes;
}

template class HaloHandleT<double>;
template class HaloHandleT<float>;

#define MINIPOP_HALO_INSTANTIATE(T)                                        \
  template void HaloExchanger::exchange_set<T>(Communicator&,              \
                                               const FieldSetT<T>&) const; \
  template void HaloExchanger::exchange_group<T>(                          \
      Communicator&, std::span<const FieldSetT<T>>) const;                 \
  template HaloHandleT<T> HaloExchanger::begin_set<T>(                     \
      Communicator&, const FieldSetT<T>&) const;                           \
  template std::uint64_t HaloExchanger::bytes_sent_per_exchange<T>(        \
      const DistFieldT<T>&) const;                                         \
  template std::uint64_t HaloExchanger::bytes_sent_per_exchange<T>(        \
      const DistFieldBatchT<T>&) const;
MINIPOP_HALO_INSTANTIATE(double)
MINIPOP_HALO_INSTANTIATE(float)
#undef MINIPOP_HALO_INSTANTIATE

}  // namespace minipop::comm
