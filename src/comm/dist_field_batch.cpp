#include "src/comm/dist_field_batch.hpp"

#include <cstring>

#include "src/comm/dist_field.hpp"
#include "src/util/error.hpp"

namespace minipop::comm {

template <typename T>
DistFieldBatchT<T>::DistFieldBatchT(const grid::Decomposition& decomp,
                                    int rank, int nb, int halo)
    : decomp_(&decomp), rank_(rank), halo_(halo), nb_(nb) {
  MINIPOP_REQUIRE(halo >= 1, "halo=" << halo);
  MINIPOP_REQUIRE(nb >= 1, "nb=" << nb);
  MINIPOP_REQUIRE(rank >= 0 && rank < decomp.nranks(), "rank=" << rank);
  // Same global width check as the scalar field: all active blocks bound
  // the usable halo, not just locally owned ones.
  decomp.validate_halo(halo);
  block_ids_ = decomp.blocks_of_rank(rank);
  data_.reserve(block_ids_.size());
  for (std::size_t lb = 0; lb < block_ids_.size(); ++lb) {
    const auto& b = decomp.block(block_ids_[lb]);
    data_.emplace_back((b.nx + 2 * halo) * nb, b.ny + 2 * halo, T(0));
    local_of_global_[block_ids_[lb]] = static_cast<int>(lb);
  }
}

template <typename T>
const grid::BlockInfo& DistFieldBatchT<T>::info(int lb) const {
  return decomp_->block(block_ids_.at(lb));
}

template <typename T>
int DistFieldBatchT<T>::local_index(int global_block_id) const {
  auto it = local_of_global_.find(global_block_id);
  return it == local_of_global_.end() ? -1 : it->second;
}

template <typename T>
void DistFieldBatchT<T>::fill(T v) {
  for (auto& f : data_) f.fill(v);
}

template <typename T>
bool DistFieldBatchT<T>::member_compatible(const DistFieldT<T>& f) const {
  if (f.halo() != halo_ ||
      f.num_local_blocks() != num_local_blocks())
    return false;
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const auto& a = info(lb);
    const auto& b = f.info(lb);
    if (a.id != b.id || a.i0 != b.i0 || a.j0 != b.j0 || a.nx != b.nx ||
        a.ny != b.ny)
      return false;
  }
  return true;
}

template <typename T>
void DistFieldBatchT<T>::load_member(int m, const DistFieldT<T>& f) {
  MINIPOP_REQUIRE(m >= 0 && m < nb_, "member " << m << " of " << nb_);
  MINIPOP_REQUIRE(member_compatible(f), "incompatible member field");
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    util::Array2D<T>& dst = data_[lb];
    const util::Array2D<T>& src = f.data(lb);
    for (int j = 0; j < src.ny(); ++j)
      for (int i = 0; i < src.nx(); ++i) dst(i * nb_ + m, j) = src(i, j);
  }
}

template <typename T>
void DistFieldBatchT<T>::store_member(int m, DistFieldT<T>& f) const {
  MINIPOP_REQUIRE(m >= 0 && m < nb_, "member " << m << " of " << nb_);
  MINIPOP_REQUIRE(member_compatible(f), "incompatible member field");
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    const util::Array2D<T>& src = data_[lb];
    util::Array2D<T>& dst = f.data(lb);
    for (int j = 0; j < dst.ny(); ++j)
      for (int i = 0; i < dst.nx(); ++i) dst(i, j) = src(i * nb_ + m, j);
  }
}

template <typename T>
void DistFieldBatchT<T>::copy_member_from(int m,
                                          const DistFieldBatchT<T>& src,
                                          int src_m) {
  MINIPOP_REQUIRE(m >= 0 && m < nb_, "member " << m << " of " << nb_);
  MINIPOP_REQUIRE(src_m >= 0 && src_m < src.nb_,
                  "member " << src_m << " of " << src.nb_);
  MINIPOP_REQUIRE(decomp_ == src.decomp_ && rank_ == src.rank_ &&
                      halo_ == src.halo_,
                  "incompatible source batch");
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    util::Array2D<T>& dst = data_[lb];
    const util::Array2D<T>& sp = src.data_[lb];
    const int ncols = dst.nx() / nb_;  // padded cells per row
    for (int j = 0; j < dst.ny(); ++j)
      for (int i = 0; i < ncols; ++i)
        dst(i * nb_ + m, j) = sp(i * src.nb_ + src_m, j);
  }
}

template <typename T>
void DistFieldBatchT<T>::copy_member_interior_from(
    int m, const DistFieldBatchT<T>& src, int src_m) {
  MINIPOP_REQUIRE(m >= 0 && m < nb_, "member " << m << " of " << nb_);
  MINIPOP_REQUIRE(src_m >= 0 && src_m < src.nb_,
                  "member " << src_m << " of " << src.nb_);
  MINIPOP_REQUIRE(decomp_ == src.decomp_ && rank_ == src.rank_,
                  "incompatible source batch");
  for (int lb = 0; lb < num_local_blocks(); ++lb) {
    util::Array2D<T>& dst = data_[lb];
    const util::Array2D<T>& sp = src.data_[lb];
    const auto& b = info(lb);
    for (int j = 0; j < b.ny; ++j)
      for (int i = 0; i < b.nx; ++i)
        dst((i + halo_) * nb_ + m, j + halo_) =
            sp((i + src.halo_) * src.nb_ + src_m, j + src.halo_);
  }
}

template class DistFieldBatchT<double>;
template class DistFieldBatchT<float>;

}  // namespace minipop::comm
