// Virtual-MPI communicator abstraction.
//
// All solver and model code is written rank-locally against this
// interface, exactly as MPI code would be: each rank owns its blocks,
// exchanges halos point-to-point, and participates in fused global
// reductions. Two backends exist:
//   * SerialComm  — size 1, no communication (reference/big-grid path)
//   * ThreadComm  — N ranks as threads with mailbox point-to-point and
//                   deterministic, fixed-order global reductions
// Real-machine wall times are *not* measured here (we are on a
// workstation); the CostTracker records message/reduction/flop counts and
// src/perf converts them to modeled times.
#pragma once

#include <span>

#include "src/comm/cost_tracker.hpp"

namespace minipop::comm {

enum class ReduceOp { kSum, kMax, kMin };

class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Fused in-place reduction of a small vector across all ranks
  /// (MPI_Allreduce). Deterministic: combination order is rank 0..p-1
  /// regardless of arrival order.
  virtual void allreduce(std::span<double> values, ReduceOp op) = 0;

  /// Buffered ("eager") point-to-point send; never blocks.
  virtual void send(int dest, int tag, std::span<const double> data) = 0;

  /// Blocking receive matching (src, tag); data.size() must equal the
  /// sent size.
  virtual void recv(int src, int tag, std::span<double> data) = 0;

  virtual void barrier() = 0;

  CostTracker& costs() { return costs_; }
  const CostTracker& costs() const { return costs_; }

  /// Convenience: fused sum-reduce of one/two scalars.
  double allreduce_sum(double v);
  void allreduce_sum2(double* a, double* b);

 protected:
  CostTracker costs_;
};

}  // namespace minipop::comm
