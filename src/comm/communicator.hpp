// Virtual-MPI communicator abstraction.
//
// All solver and model code is written rank-locally against this
// interface, exactly as MPI code would be: each rank owns its blocks,
// exchanges halos point-to-point, and participates in fused global
// reductions. Two backends exist:
//   * SerialComm  — size 1, no communication (reference/big-grid path)
//   * ThreadComm  — N ranks as threads with mailbox point-to-point and
//                   deterministic, fixed-order global reductions
//
// The primitives are split-phase (MPI_Isend/Irecv/Iallreduce style):
// posting returns a Request handle that is completed with test()/wait().
// The blocking calls are thin wrappers (post + wait). Real-machine wall
// times are *not* modeled here (we are on a workstation); the
// CostTracker records message/reduction/flop counts — plus posted vs
// exposed request time for the overlap engine — and src/perf converts
// counts to modeled times.
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <span>

#include "src/comm/cost_tracker.hpp"
#include "src/util/error.hpp"

namespace minipop::comm {

enum class ReduceOp { kSum, kMax, kMin };

/// A communication wait exceeded its configured timeout (see
/// ThreadComm::set_recv_timeout). Once one rank throws this, the whole
/// team's communication state is suspect: every subsequent blocking call
/// on any rank of the team also throws until Communicator::resync() has
/// been run collectively. Distinct from util::Error subclassing alone so
/// the recovery layer can catch timeouts specifically.
class CommTimeoutError : public util::Error {
 public:
  using util::Error::Error;
};

/// A halo message failed its CRC32C integrity check at unpack. The
/// payload was corrupted between pack and delivery (wire/NIC/memory);
/// the sends are eager-buffered, so the receiver cannot ask for a
/// retransmit of live data — the thrower first calls declare_desync()
/// so the whole team funnels into resync(), then the recovery layer
/// restarts the solve from a checkpoint. Typed so it can be told apart
/// from a timeout (the data arrived — it arrived wrong).
class CorruptPayloadError : public util::Error {
 public:
  using util::Error::Error;
};

/// Backend-side completion state of one in-flight split-phase operation.
/// poll() attempts completion without blocking and returns true once the
/// operation has finished with its results (if any) delivered to the
/// caller's buffers; block() waits for that to happen. After either has
/// reported completion the state is dead and must not be used again.
class RequestState {
 public:
  virtual ~RequestState() = default;
  virtual bool poll() = 0;
  virtual void block() = 0;
};

/// Lightweight handle to one in-flight split-phase operation (the
/// MPI_Request analogue). Movable, not copyable. Completing through
/// test()/wait() records the request's in-flight time as posted
/// communication, and the time actually blocked inside wait() as exposed
/// communication, in the owning communicator's CostTracker.
///
/// A Request destroyed before completion is *abandoned*: the destructor
/// makes one non-blocking completion attempt and then drops the state.
/// Abandonment never blocks (so error-path unwinding cannot deadlock on
/// a peer that died); an abandoned irecv simply leaves any late-arriving
/// message queued, and an abandoned iallreduce keeps the contribution it
/// already made so peers still complete. Deliberate code should always
/// complete its requests.
class Request {
 public:
  Request() = default;  ///< already-complete (used by eager/serial ops)
  Request(std::unique_ptr<RequestState> state, CostTracker* costs);
  Request(Request&&) noexcept = default;
  Request& operator=(Request&& o) noexcept;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;
  ~Request();

  bool done() const { return state_ == nullptr; }

  /// Nonblocking completion attempt; true once complete (idempotent).
  bool test();

  /// Block until complete. No-op if already complete.
  void wait();

 private:
  void record_completion(double exposed_seconds);

  std::unique_ptr<RequestState> state_;
  CostTracker* costs_ = nullptr;
  std::chrono::steady_clock::time_point posted_{};
};

class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Post a fused in-place reduction of a small vector across all ranks
  /// (MPI_Iallreduce). `values` must stay alive until the returned
  /// request completes; on completion it holds the reduced vector.
  /// Deterministic: combination order is rank 0..p-1 regardless of
  /// arrival order. Collective — every rank must post its reductions in
  /// the same order.
  virtual Request iallreduce(std::span<double> values, ReduceOp op) = 0;

  /// Post a buffered ("eager") point-to-point send of raw bytes. The
  /// backends copy `data` at post time, so the returned request is
  /// always already complete and `data` may be reused immediately.
  /// Point-to-point is byte-addressed (MPI_BYTE style) so halo messages
  /// carry whatever element type the field stores — an fp32 halo is
  /// half the wire bytes of an fp64 one with no comm-layer changes.
  virtual Request isend_bytes(int dest, int tag,
                              std::span<const std::byte> data) = 0;

  /// Post a receive matching (src, tag); data.size() must equal the
  /// sent byte count. `data` must stay alive until the request
  /// completes.
  virtual Request irecv_bytes(int src, int tag,
                              std::span<std::byte> data) = 0;

  /// Typed element wrappers over the byte primitives (the historical
  /// API; kept non-virtual so backends implement bytes only).
  Request isend(int dest, int tag, std::span<const double> data) {
    return isend_bytes(dest, tag, std::as_bytes(data));
  }
  Request irecv(int src, int tag, std::span<double> data) {
    return irecv_bytes(src, tag, std::as_writable_bytes(data));
  }
  Request isend(int dest, int tag, std::span<const float> data) {
    return isend_bytes(dest, tag, std::as_bytes(data));
  }
  Request irecv(int src, int tag, std::span<float> data) {
    return irecv_bytes(src, tag, std::as_writable_bytes(data));
  }

  virtual void barrier() = 0;

  /// Collective fence that clears any failed-communication state (pending
  /// mailboxes, reduction ordinals, timeout flags) and returns with every
  /// rank at a common point, ready for fresh collectives. A no-op on
  /// healthy backends with nothing outstanding; after a CommTimeoutError
  /// it is the only way to make the team usable again. Every rank must
  /// call it (ranks that did not observe the timeout themselves are
  /// pushed into it by their next blocking call throwing).
  virtual void resync() {}

  /// Mark the team's communication state failed WITHOUT blocking, so
  /// peers currently waiting on this rank's messages or reductions wake
  /// with a CommTimeoutError and funnel into the collective resync()
  /// fence. Called by a rank that detected corruption locally (e.g. a
  /// halo CRC mismatch) and is about to throw: without the declaration
  /// its peers would block forever on data the thrower will never send.
  /// No-op on backends with no peers.
  virtual void declare_desync() {}

  // Blocking wrappers: post + wait.
  void allreduce(std::span<double> values, ReduceOp op);
  void send(int dest, int tag, std::span<const double> data);
  void recv(int src, int tag, std::span<double> data);

  CostTracker& costs() { return costs_; }
  const CostTracker& costs() const { return costs_; }

  /// Convenience: fused sum-reduce of one/two scalars.
  double allreduce_sum(double v);
  void allreduce_sum2(double* a, double* b);

  /// Tag epochs: disjoint tag sub-spaces for concurrently outstanding
  /// exchanges. Each call returns the next epoch in a cycling window of
  /// kTagEpochWindow epochs; callers build tags as
  /// `epoch * kTagEpochStride + local_tag` with local_tag <
  /// kTagEpochStride. Every rank must call this in the same collective
  /// order (exactly like posting collectives), which keeps the counters
  /// in sync without communication. The window bounds how many epochs
  /// may be in flight at once; reusing an epoch whose messages are still
  /// outstanding is caught by the ThreadComm tag audit under
  /// MINIPOP_BOUNDS_CHECK.
  static constexpr int kTagEpochWindow = 4;
  static constexpr int kTagEpochStride = 1 << 27;
  int next_tag_epoch() {
    const int e = tag_epoch_;
    tag_epoch_ = (tag_epoch_ + 1) % kTagEpochWindow;
    return e;
  }

 protected:
  /// Rewind the epoch counter to its initial value. The counters stay
  /// aligned only because every rank draws epochs in the same collective
  /// order; a timed-out exchange aborts ranks after *different* numbers
  /// of draws, desynchronizing them permanently. resync()
  /// implementations must call this after the fence (once all stale
  /// messages are gone) so post-recovery exchanges match tags again.
  void reset_tag_epoch() { tag_epoch_ = 0; }

  CostTracker costs_;

 private:
  int tag_epoch_ = 0;
};

}  // namespace minipop::comm
