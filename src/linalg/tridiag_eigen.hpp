// Extreme eigenvalues of a symmetric tridiagonal matrix via Sturm-sequence
// bisection. This is the back end of the Lanczos eigenvalue estimation
// that P-CSI needs for its Chebyshev interval [nu, mu] (paper §3).
#pragma once

#include <vector>

namespace minipop::linalg {

/// Symmetric tridiagonal matrix given by its diagonal `d` (size n) and
/// off-diagonal `e` (size n-1).
struct Tridiagonal {
  std::vector<double> d;
  std::vector<double> e;

  int size() const { return static_cast<int>(d.size()); }
};

/// Number of eigenvalues of T strictly less than x (Sturm sequence count).
int sturm_count(const Tridiagonal& t, double x);

/// k-th smallest eigenvalue (k is 0-based) via bisection to `tol`
/// absolute accuracy within a Gershgorin bracket.
double tridiag_eigenvalue(const Tridiagonal& t, int k, double tol = 1e-12);

/// Smallest and largest eigenvalues. Cheap: two bisections.
struct EigenBounds {
  double min;
  double max;
};
EigenBounds tridiag_extreme_eigenvalues(const Tridiagonal& t,
                                        double tol = 1e-12);

/// All eigenvalues, ascending; O(n * bisections). For tests and the
/// Lanczos convergence study (paper Fig. 3).
std::vector<double> tridiag_all_eigenvalues(const Tridiagonal& t,
                                            double tol = 1e-12);

}  // namespace minipop::linalg
