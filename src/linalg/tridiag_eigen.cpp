#include "src/linalg/tridiag_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/error.hpp"

namespace minipop::linalg {

namespace {

/// Gershgorin interval containing all eigenvalues.
std::pair<double, double> gershgorin(const Tridiagonal& t) {
  const int n = t.size();
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    double r = 0.0;
    if (i > 0) r += std::abs(t.e[i - 1]);
    if (i + 1 < n) r += std::abs(t.e[i]);
    lo = std::min(lo, t.d[i] - r);
    hi = std::max(hi, t.d[i] + r);
  }
  return {lo, hi};
}

}  // namespace

int sturm_count(const Tridiagonal& t, double x) {
  const int n = t.size();
  MINIPOP_REQUIRE(n >= 1, "empty tridiagonal");
  MINIPOP_REQUIRE(static_cast<int>(t.e.size()) == n - 1,
                  "off-diagonal size " << t.e.size() << " for n=" << n);
  // Count sign agreements of the sequence q_i = d_i - x - e_{i-1}^2/q_{i-1};
  // the number of negative q_i equals the number of eigenvalues < x.
  int count = 0;
  double q = t.d[0] - x;
  if (q < 0) ++count;
  const double tiny = std::numeric_limits<double>::min();
  for (int i = 1; i < n; ++i) {
    double denom = q;
    if (std::abs(denom) < tiny)
      denom = (denom < 0 ? -tiny : tiny);
    q = t.d[i] - x - t.e[i - 1] * t.e[i - 1] / denom;
    if (q < 0) ++count;
  }
  return count;
}

double tridiag_eigenvalue(const Tridiagonal& t, int k, double tol) {
  const int n = t.size();
  MINIPOP_REQUIRE(k >= 0 && k < n, "eigenvalue index " << k << " for n=" << n);
  auto [lo, hi] = gershgorin(t);
  // Widen slightly so strict inequality counting is safe at the edges.
  double width = std::max(hi - lo, 1.0);
  lo -= 1e-12 * width;
  hi += 1e-12 * width;
  while (hi - lo > tol * std::max(1.0, std::abs(lo) + std::abs(hi))) {
    double mid = 0.5 * (lo + hi);
    if (sturm_count(t, mid) <= k)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

EigenBounds tridiag_extreme_eigenvalues(const Tridiagonal& t, double tol) {
  return EigenBounds{tridiag_eigenvalue(t, 0, tol),
                     tridiag_eigenvalue(t, t.size() - 1, tol)};
}

std::vector<double> tridiag_all_eigenvalues(const Tridiagonal& t, double tol) {
  std::vector<double> eig(t.size());
  for (int k = 0; k < t.size(); ++k) eig[k] = tridiag_eigenvalue(t, k, tol);
  return eig;
}

}  // namespace minipop::linalg
