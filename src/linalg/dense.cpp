#include "src/linalg/dense.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace minipop::linalg {

DenseMatrix::DenseMatrix(int rows, int cols, double fill)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, fill) {
  MINIPOP_REQUIRE(rows >= 0 && cols >= 0, "rows=" << rows << " cols=" << cols);
}

DenseMatrix DenseMatrix::identity(int n) {
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

std::vector<double> DenseMatrix::apply(const std::vector<double>& x) const {
  MINIPOP_REQUIRE(static_cast<int>(x.size()) == cols_,
                  "apply: x.size()=" << x.size() << " cols=" << cols_);
  std::vector<double> y(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (int c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  MINIPOP_REQUIRE(cols_ == other.rows_, "multiply: " << cols_ << " vs "
                                                     << other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (int r = 0; r < rows_; ++r)
    for (int k = 0; k < cols_; ++k) {
      double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (int c = 0; c < other.cols_; ++c) out(r, c) += a * other(k, c);
    }
  return out;
}

double DenseMatrix::max_abs_diff(const DenseMatrix& other) const {
  MINIPOP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                  "shape mismatch");
  double m = 0.0;
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c)
      m = std::max(m, std::abs((*this)(r, c) - other(r, c)));
  return m;
}

bool DenseMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (int r = 0; r < rows_; ++r)
    for (int c = r + 1; c < cols_; ++c) {
      double a = (*this)(r, c);
      double b = (*this)(c, r);
      if (std::abs(a - b) > tol * std::max(1.0, std::abs(a))) return false;
    }
  return true;
}

LuFactorization::LuFactorization(DenseMatrix a)
    : n_(a.rows()), lu_(std::move(a)), perm_(n_) {
  MINIPOP_REQUIRE(lu_.rows() == lu_.cols(), "LU needs a square matrix");
  for (int i = 0; i < n_; ++i) perm_[i] = i;

  for (int col = 0; col < n_; ++col) {
    // Partial pivoting.
    int pivot = col;
    double best = std::abs(lu_(col, col));
    for (int r = col + 1; r < n_; ++r) {
      double v = std::abs(lu_(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    MINIPOP_REQUIRE(best > 0.0, "singular matrix in LU at column " << col);
    if (pivot != col) {
      for (int c = 0; c < n_; ++c) std::swap(lu_(col, c), lu_(pivot, c));
      std::swap(perm_[col], perm_[pivot]);
      sign_ = -sign_;
    }
    double inv_pivot = 1.0 / lu_(col, col);
    for (int r = col + 1; r < n_; ++r) {
      double f = lu_(r, col) * inv_pivot;
      lu_(r, col) = f;
      if (f == 0.0) continue;
      for (int c = col + 1; c < n_; ++c) lu_(r, c) -= f * lu_(col, c);
    }
  }
}

std::vector<double> LuFactorization::solve(const std::vector<double>& b) const {
  MINIPOP_REQUIRE(static_cast<int>(b.size()) == n_,
                  "solve: b.size()=" << b.size() << " n=" << n_);
  std::vector<double> x(n_);
  solve_into(b.data(), x.data());
  return x;
}

void LuFactorization::solve_into(const double* b, double* x) const {
  // Apply permutation, then forward substitution with unit lower factor.
  for (int r = 0; r < n_; ++r) x[r] = b[perm_[r]];
  for (int r = 1; r < n_; ++r) {
    double acc = x[r];
    for (int c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  // Back substitution.
  for (int r = n_ - 1; r >= 0; --r) {
    double acc = x[r];
    for (int c = r + 1; c < n_; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc / lu_(r, r);
  }
}

DenseMatrix LuFactorization::inverse() const {
  DenseMatrix inv(n_, n_);
  std::vector<double> e(n_, 0.0);
  for (int c = 0; c < n_; ++c) {
    e[c] = 1.0;
    auto col = solve(e);
    e[c] = 0.0;
    for (int r = 0; r < n_; ++r) inv(r, c) = col[r];
  }
  return inv;
}

double LuFactorization::abs_determinant() const {
  double d = 1.0;
  for (int i = 0; i < n_; ++i) d *= std::abs(lu_(i, i));
  return d;
}

std::vector<double> cholesky_solve(const DenseMatrix& a,
                                   const std::vector<double>& b) {
  const int n = a.rows();
  MINIPOP_REQUIRE(a.rows() == a.cols(), "cholesky needs a square matrix");
  MINIPOP_REQUIRE(static_cast<int>(b.size()) == n, "rhs size mismatch");
  DenseMatrix l(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c <= r; ++c) {
      double acc = a(r, c);
      for (int k = 0; k < c; ++k) acc -= l(r, k) * l(c, k);
      if (r == c) {
        MINIPOP_REQUIRE(acc > 0.0, "matrix is not SPD (pivot " << acc
                                                               << " at " << r
                                                               << ")");
        l(r, r) = std::sqrt(acc);
      } else {
        l(r, c) = acc / l(c, c);
      }
    }
  }
  std::vector<double> y(n);
  for (int r = 0; r < n; ++r) {
    double acc = b[r];
    for (int c = 0; c < r; ++c) acc -= l(r, c) * y[c];
    y[r] = acc / l(r, r);
  }
  std::vector<double> x(n);
  for (int r = n - 1; r >= 0; --r) {
    double acc = y[r];
    for (int c = r + 1; c < n; ++c) acc -= l(c, r) * x[c];
    x[r] = acc / l(r, r);
  }
  return x;
}

std::vector<double> symmetric_eigenvalues(const DenseMatrix& a, double tol,
                                          int max_sweeps) {
  const int n = a.rows();
  MINIPOP_REQUIRE(a.rows() == a.cols(), "eigenvalues need a square matrix");
  DenseMatrix m = a;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int r = 0; r < n; ++r)
      for (int c = r + 1; c < n; ++c) off += m(r, c) * m(r, c);
    if (std::sqrt(off) < tol) break;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        if (std::abs(m(p, q)) < 1e-300) continue;
        double theta = (m(q, q) - m(p, p)) / (2.0 * m(p, q));
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        for (int k = 0; k < n; ++k) {
          double mkp = m(k, p);
          double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (int k = 0; k < n; ++k) {
          double mpk = m(p, k);
          double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
      }
    }
  }
  std::vector<double> eig(n);
  for (int i = 0; i < n; ++i) eig[i] = m(i, i);
  std::sort(eig.begin(), eig.end());
  return eig;
}

}  // namespace minipop::linalg
