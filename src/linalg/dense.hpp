// Small dense linear algebra: column-count-agnostic row-major matrix,
// LU factorization with partial pivoting, solve and explicit inverse.
//
// Used by the EVP preconditioner for the influence-coefficient matrix W
// (size 2n-5 for an n×n block, so ≲ 50×50 in practice) and by tests as a
// reference solver for the assembled stencil operator on small grids.
#pragma once

#include <cstddef>
#include <vector>

namespace minipop::linalg {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int rows, int cols, double fill = 0.0);

  static DenseMatrix identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int r, int c) { return data_[idx(r, c)]; }
  const double& operator()(int r, int c) const { return data_[idx(r, c)]; }

  DenseMatrix transposed() const;

  /// Matrix-vector product y = A x.
  std::vector<double> apply(const std::vector<double>& x) const;

  /// Matrix-matrix product.
  DenseMatrix multiply(const DenseMatrix& other) const;

  /// Max |a_ij - b_ij|; matrices must be the same shape.
  double max_abs_diff(const DenseMatrix& other) const;

  /// True when |a_ij - a_ji| <= tol * max(1, |a_ij|) for all i,j.
  bool is_symmetric(double tol = 1e-12) const;

 private:
  std::size_t idx(int r, int c) const {
    return static_cast<std::size_t>(r) * cols_ + c;
  }
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting (Doolittle). Throws
/// util::Error on (numerically) singular input.
class LuFactorization {
 public:
  explicit LuFactorization(DenseMatrix a);

  int size() const { return n_; }

  /// Solve A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Allocation-free solve: x = A^-1 b, both length size(). b and x may
  /// not alias. For hot callers (EVP tile corrections) that solve the
  /// same small system thousands of times per sweep.
  void solve_into(const double* b, double* x) const;

  /// Explicit inverse (n solves against unit vectors).
  DenseMatrix inverse() const;

  /// |det(A)| estimate from pivot magnitudes; useful to detect
  /// near-singularity in tests.
  double abs_determinant() const;

 private:
  int n_ = 0;
  DenseMatrix lu_;
  std::vector<int> perm_;
  int sign_ = 1;
};

/// Solve the symmetric positive definite system via Cholesky; reference
/// path used by tests. Throws util::Error if the matrix is not SPD.
std::vector<double> cholesky_solve(const DenseMatrix& a,
                                   const std::vector<double>& b);

/// All eigenvalues of a small symmetric matrix via Jacobi rotations.
/// Reference implementation for validating Lanczos; O(n^3) per sweep.
std::vector<double> symmetric_eigenvalues(const DenseMatrix& a,
                                          double tol = 1e-12,
                                          int max_sweeps = 100);

}  // namespace minipop::linalg
