#include "src/model/forcing.hpp"

#include <cmath>

namespace minipop::model {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

double Forcing::wind_stress_x(double lat_deg, double yearday) const {
  // Easterly trades near the equator, westerlies in mid-latitudes,
  // easterlies near the poles: -cos(3 * lat) profile, tapered at poles.
  const double lat = lat_deg * kPi / 180.0;
  const double profile = -std::cos(3.0 * lat) * std::cos(lat);
  const double season =
      1.0 + seasonal * std::sin(2.0 * kPi * yearday / kDaysPerYear) *
                (lat_deg >= 0 ? 1.0 : -1.0);
  return tau0 * profile * season;
}

double Forcing::restoring_sst(double lat_deg, double yearday) const {
  const double lat = lat_deg * kPi / 180.0;
  const double s2 = std::sin(lat) * std::sin(lat);
  double t = t_equator + (t_pole - t_equator) * s2;
  // Seasonal swing, opposite-phased across hemispheres, weak at equator.
  t += t_seasonal * std::sin(2.0 * kPi * yearday / kDaysPerYear) *
       std::sin(lat);
  return t;
}

}  // namespace minipop::model
