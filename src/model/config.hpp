// Configuration for the mini-POP ocean model.
//
// The model is the substitute for full CESM-POP described in DESIGN.md:
// a nonlinear vertically-integrated (shallow-water) barotropic mode with
// POP's implicit free surface — which produces exactly the elliptic
// system of paper Eq. 1 every time step — plus a 3D temperature tracer
// advected by the barotropic flow with seasonal surface restoring. It
// exists to (a) generate realistic solver workloads and (b) support the
// paper's §6 climate-consistency experiments (Figs. 12/13).
#pragma once

#include <cstdint>

#include "src/grid/bathymetry.hpp"
#include "src/grid/curvilinear_grid.hpp"
#include "src/solver/solver_factory.hpp"

namespace minipop::model {

struct ModelConfig {
  grid::GridSpec grid = grid::pop_1deg_spec(0.25);
  grid::BathymetryOptions bathymetry;

  /// Vertical levels for the temperature tracer.
  int nz = 6;
  /// Layer thickness scale [m] (level k spans roughly dz0 * 2^k).
  double dz0 = 50.0;

  /// Barotropic time step [s]; <= 0 selects recommended_barotropic_dt()
  /// automatically. POP's production steps (1 degree: 45/day; 0.1 degree:
  /// 500/day) both sit at a gravity-wave Courant number of ~5, and the
  /// elliptic operator's conditioning (phi * area vs. the depth terms)
  /// depends on that number — so scaled-down grids must scale dt with dx
  /// to produce paper-like solver behaviour.
  double dt = 0.0;
  /// Implicitness of the free surface (0.5 < theta <= 1).
  double theta = 0.6;
  double gravity = 9.806;
  /// Lateral viscosity [m^2/s] and linear bottom drag [1/s].
  double viscosity = 2.0e4;
  double bottom_drag = 1.0e-6;
  /// Lateral tracer diffusivity [m^2/s].
  double kappa = 1.0e3;

  /// Wind stress amplitude [N/m^2] over rho0*H and its seasonal
  /// modulation amplitude (fraction).
  double wind_tau0 = 0.1;
  double wind_seasonal = 0.3;
  double rho0 = 1026.0;

  /// Surface restoring timescale [days] and meridional SST contrast [C].
  double restore_days = 30.0;
  double t_equator = 28.0;
  double t_pole = -1.0;
  double t_seasonal = 2.0;

  /// Earth rotation [rad/s] for the Coriolis parameter.
  double omega = 7.292e-5;

  /// Barotropic solver configuration (paper's subject).
  solver::SolverConfig solver;

  /// Decomposition: nominal block width (cells); block_size_y = 0 means
  /// square blocks of block_size x block_size.
  int block_size = 24;
  int block_size_y = 0;
  int nranks = 1;

  std::uint64_t seed = 2015;
};

/// Barotropic time step giving a gravity-wave Courant number `courant`
/// at the mean grid spacing (POP's production configurations sit at ~5).
double recommended_barotropic_dt(const grid::CurvilinearGrid& grid,
                                 double gravity = 9.806,
                                 double h_ref = 5500.0,
                                 double courant = 5.0);

}  // namespace minipop::model
