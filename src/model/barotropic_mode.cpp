#include "src/model/barotropic_mode.hpp"

#include <cmath>

#include "src/solver/field_ops.hpp"
#include "src/util/error.hpp"
#include "src/util/log.hpp"

namespace minipop::model {

BarotropicMode::BarotropicMode(comm::Communicator& comm,
                               const comm::HaloExchanger& halo,
                               const grid::CurvilinearGrid& grid,
                               const util::Field& depth,
                               const grid::Decomposition& decomp,
                               const Geometry& geometry,
                               const ModelConfig& config)
    : halo_(&halo),
      geometry_(&geometry),
      cfg_(config),
      phi_(1.0 / (config.gravity * config.theta * config.theta * config.dt *
                  config.dt)),
      u_(decomp, comm.rank()),
      v_(decomp, comm.rank()),
      eta_(decomp, comm.rank()),
      ustar_(decomp, comm.rank()),
      vstar_(decomp, comm.rank()),
      rhs_(decomp, comm.rank()),
      cx_halo_(decomp, comm.rank()),
      cy_halo_(decomp, comm.rank()) {
  MINIPOP_REQUIRE(config.theta > 0.5 && config.theta <= 1.0,
                  "theta=" << config.theta);
  MINIPOP_REQUIRE(config.dt > 0, "dt=" << config.dt);
  forcing_.tau0 = config.wind_tau0;
  forcing_.seasonal = config.wind_seasonal;
  forcing_.t_equator = config.t_equator;
  forcing_.t_pole = config.t_pole;
  forcing_.t_seasonal = config.t_seasonal;

  stencil_ = std::make_unique<grid::NinePointStencil>(grid, depth, phi_);
  solver_ = std::make_unique<solver::BarotropicSolver>(
      comm, halo, grid, depth, *stencil_, decomp, config.solver);

  // Corner flux coefficients (see class comment), halo-filled once.
  for (int lb = 0; lb < cx_halo_.num_local_blocks(); ++lb) {
    const auto& geo = geometry.block(lb);
    const auto& info = cx_halo_.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i) {
        if (!geo.mask_u(i, j)) continue;
        cx_halo_.at(lb, i, j) = 0.5 * geo.hu(i, j) * geo.dyu(i, j);
        cy_halo_.at(lb, i, j) = 0.5 * geo.hu(i, j) * geo.dxu(i, j);
      }
  }
  halo.exchange(comm, cx_halo_);
  halo.exchange(comm, cy_halo_);
}

solver::SolveStats BarotropicMode::step(comm::Communicator& comm,
                                        double yearday) {
  step_begin(comm, yearday);
  // eta's halo was refreshed in step_begin and its interior only read
  // since, so attest freshness: the solver's first residual skips one
  // exchange.
  auto stats =
      solver_->solve(comm, rhs_, eta_, comm::HaloFreshness::kFresh);
  step_finish(comm, stats);
  return stats;
}

void BarotropicMode::step_begin(comm::Communicator& comm, double yearday) {
  const double dt = cfg_.dt;
  const double g = cfg_.gravity;
  const double theta = cfg_.theta;
  const double nu = cfg_.viscosity;
  const double drag = cfg_.bottom_drag;
  const int nb = u_.num_local_blocks();

  // Halos of u_, v_, eta_ are fresh at entry (ctor zeros, step exit
  // exchanges) — but refresh eta to be robust against external edits.
  halo_->exchange(comm, eta_);

  // --- Momentum predictor at corners -----------------------------------
  for (int lb = 0; lb < nb; ++lb) {
    const auto& geo = geometry_->block(lb);
    const auto& info = u_.info(lb);
    for (int j = 0; j < info.ny; ++j) {
      for (int i = 0; i < info.nx; ++i) {
        if (!geo.mask_u(i, j)) {
          ustar_.at(lb, i, j) = 0.0;
          vstar_.at(lb, i, j) = 0.0;
          continue;
        }
        const double dx = geo.dxu(i, j);
        const double dy = geo.dyu(i, j);
        const double uc = u_.at(lb, i, j);
        const double vc = v_.at(lb, i, j);
        const double ue = u_.at(lb, i + 1, j), uw = u_.at(lb, i - 1, j);
        const double un = u_.at(lb, i, j + 1), us = u_.at(lb, i, j - 1);
        const double ve = v_.at(lb, i + 1, j), vw = v_.at(lb, i - 1, j);
        const double vn = v_.at(lb, i, j + 1), vs = v_.at(lb, i, j - 1);

        // First-order upwind advection on the corner lattice (land
        // corners carry zero velocity: no-slip).
        const double dudx = uc > 0 ? (uc - uw) / dx : (ue - uc) / dx;
        const double dudy = vc > 0 ? (uc - us) / dy : (un - uc) / dy;
        const double dvdx = uc > 0 ? (vc - vw) / dx : (ve - vc) / dx;
        const double dvdy = vc > 0 ? (vc - vs) / dy : (vn - vc) / dy;

        // Corner-centered surface slope (the gradient adjoint to the
        // elliptic stencil). All four cells are ocean when mask_u holds.
        const double detadx =
            (eta_.at(lb, i + 1, j) + eta_.at(lb, i + 1, j + 1) -
             eta_.at(lb, i, j) - eta_.at(lb, i, j + 1)) /
            (2.0 * dx);
        const double detady =
            (eta_.at(lb, i, j + 1) + eta_.at(lb, i + 1, j + 1) -
             eta_.at(lb, i, j) - eta_.at(lb, i + 1, j)) /
            (2.0 * dy);

        const double lap_u =
            (ue - 2 * uc + uw) / (dx * dx) + (un - 2 * uc + us) / (dy * dy);
        const double lap_v =
            (ve - 2 * vc + vw) / (dx * dx) + (vn - 2 * vc + vs) / (dy * dy);

        const double wind =
            forcing_.wind_stress_x(geo.lat_u(i, j), yearday) /
            (cfg_.rho0 * geo.hu(i, j));

        const double ru = -(uc * dudx + vc * dudy) -
                          g * (1 - theta) * detadx + nu * lap_u + wind -
                          drag * uc;
        const double rv = -(uc * dvdx + vc * dvdy) -
                          g * (1 - theta) * detady + nu * lap_v - drag * vc;

        // Semi-implicit Coriolis (exact rotation; f dt > 1 here).
        const double fdt = geo.fu(i, j) * dt;
        const double denom = 1.0 + fdt * fdt;
        const double au = uc + dt * ru;
        const double av = vc + dt * rv;
        ustar_.at(lb, i, j) = (au + fdt * av) / denom;
        vstar_.at(lb, i, j) = (av - fdt * au) / denom;
      }
    }
  }

  halo_->exchange(comm, ustar_);
  halo_->exchange(comm, vstar_);

  // --- Elliptic right-hand side at cells --------------------------------
  // S(u)_cell = sum over the cell's 4 corners of (sgx cx u + sgy cy v),
  // which equals -area * div(H u) for the adjoint divergence.
  auto s_cell = [&](int lb, int i, int j, const comm::DistField& uu,
                    const comm::DistField& vv) {
    // corner (i, j): cell is its SW neighbor -> gx -, gy -
    // corner (i-1, j): cell is SE -> gx +, gy -
    // corner (i, j-1): cell is NW -> gx -, gy +
    // corner (i-1, j-1): cell is NE -> gx +, gy +
    return -cx_halo_.at(lb, i, j) * uu.at(lb, i, j) -
           cy_halo_.at(lb, i, j) * vv.at(lb, i, j) +
           cx_halo_.at(lb, i - 1, j) * uu.at(lb, i - 1, j) -
           cy_halo_.at(lb, i - 1, j) * vv.at(lb, i - 1, j) -
           cx_halo_.at(lb, i, j - 1) * uu.at(lb, i, j - 1) +
           cy_halo_.at(lb, i, j - 1) * vv.at(lb, i, j - 1) +
           cx_halo_.at(lb, i - 1, j - 1) * uu.at(lb, i - 1, j - 1) +
           cy_halo_.at(lb, i - 1, j - 1) * vv.at(lb, i - 1, j - 1);
  };
  for (int lb = 0; lb < nb; ++lb) {
    const auto& geo = geometry_->block(lb);
    const auto& info = eta_.info(lb);
    for (int j = 0; j < info.ny; ++j) {
      for (int i = 0; i < info.nx; ++i) {
        if (!geo.mask(i, j)) {
          rhs_.at(lb, i, j) = 0.0;
          continue;
        }
        rhs_.at(lb, i, j) =
            phi_ * geo.area(i, j) * eta_.at(lb, i, j) +
            phi_ * dt *
                (theta * s_cell(lb, i, j, ustar_, vstar_) +
                 (1 - theta) * s_cell(lb, i, j, u_, v_));
      }
    }
  }

}

void BarotropicMode::step_finish(comm::Communicator& comm,
                                 const solver::SolveStats& stats) {
  const double dt = cfg_.dt;
  const double theta = cfg_.theta;
  const int nb = u_.num_local_blocks();

  ++total_solves_;
  total_iterations_ += stats.iterations;
  total_refine_sweeps_ += stats.refine_sweeps;
  if (!stats.converged) {
    // A non-converged free-surface solve must never pass silently: eta
    // is about to feed the velocity correction and the tracer fields.
    ++solver_failures_;
    last_failure_ = stats.failure;
    if (comm.rank() == 0)
      MINIPOP_WARN("barotropic solve " << total_solves_ << " failed ("
                                       << solver::to_string(stats.failure)
                                       << ") after " << stats.iterations
                                       << " iterations, relative residual "
                                       << stats.relative_residual);
  }

  // --- Velocity correction at corners -----------------------------------
  halo_->exchange(comm, eta_);
  for (int lb = 0; lb < nb; ++lb) {
    const auto& geo = geometry_->block(lb);
    const auto& info = u_.info(lb);
    for (int j = 0; j < info.ny; ++j) {
      for (int i = 0; i < info.nx; ++i) {
        if (!geo.mask_u(i, j)) {
          u_.at(lb, i, j) = 0.0;
          v_.at(lb, i, j) = 0.0;
          continue;
        }
        const double detadx =
            (eta_.at(lb, i + 1, j) + eta_.at(lb, i + 1, j + 1) -
             eta_.at(lb, i, j) - eta_.at(lb, i, j + 1)) /
            (2.0 * geo.dxu(i, j));
        const double detady =
            (eta_.at(lb, i, j + 1) + eta_.at(lb, i + 1, j + 1) -
             eta_.at(lb, i, j) - eta_.at(lb, i + 1, j)) /
            (2.0 * geo.dyu(i, j));
        u_.at(lb, i, j) =
            ustar_.at(lb, i, j) - cfg_.gravity * theta * dt * detadx;
        v_.at(lb, i, j) =
            vstar_.at(lb, i, j) - cfg_.gravity * theta * dt * detady;
      }
    }
  }

  // Leave all prognostic halos fresh (the tracer reads u/v halos).
  halo_->exchange(comm, u_);
  halo_->exchange(comm, v_);
}

}  // namespace minipop::model
