// 3D potential temperature tracer — the model's stand-in for POP's
// baroclinic thermodynamics, used by the paper-§6 consistency experiments
// (the paper evaluates the 3D temperature field as its most revealing
// diagnostic).
//
// Each level is advected by the barotropic flow scaled by an analytic
// vertical profile (first-order upwind), mixed laterally (masked
// five-point diffusion, no-flux coasts) and vertically, and the surface
// level is restored to the seasonal SST profile.
#pragma once

#include <cstdint>
#include <vector>

#include "src/model/config.hpp"
#include "src/model/forcing.hpp"
#include "src/model/geometry.hpp"

namespace minipop::model {

class TemperatureTracer {
 public:
  TemperatureTracer(comm::Communicator& comm,
                    const comm::HaloExchanger& halo,
                    const grid::Decomposition& decomp,
                    const Geometry& geometry, const ModelConfig& config);

  int nz() const { return static_cast<int>(levels_.size()); }
  comm::DistField& level(int k) { return levels_.at(k); }
  const comm::DistField& level(int k) const { return levels_.at(k); }
  double layer_thickness(int k) const { return dz_.at(k); }
  /// Fraction of the barotropic velocity felt at level k.
  double velocity_profile(int k) const;

  /// Advance one step with the given barotropic corner (U-point)
  /// velocities (halos must be fresh — the barotropic step leaves them
  /// so). Collective.
  void step(comm::Communicator& comm, const comm::DistField& u,
            const comm::DistField& v, double yearday);

  /// Initialize from the analytic stratified profile at yearday 0.
  void init_profile();

  /// Add a tiny deterministic perturbation (order `epsilon`) to every
  /// ocean cell — the paper's ensemble-generation method (§6, O(1e-14)
  /// perturbations of initial temperature).
  void perturb(double epsilon, std::uint64_t seed);

 private:
  const comm::HaloExchanger* halo_;
  const Geometry* geometry_;
  ModelConfig cfg_;
  Forcing forcing_;
  std::vector<double> dz_;
  std::vector<comm::DistField> levels_;
  std::vector<comm::DistField> scratch_;
  comm::DistField depth_halo_;  ///< depth with valid halos (land lookups)
};

}  // namespace minipop::model
