// OceanModel: the assembled mini-POP — grid, synthetic bathymetry,
// decomposition, barotropic mode (with the configurable elliptic solver)
// and temperature tracer, plus the time manager and diagnostics the
// benchmarks and consistency experiments need.
//
// One OceanModel instance per rank; construction and stepping are
// collective across the communicator.
#pragma once

#include <iosfwd>
#include <memory>

#include "src/model/barotropic_mode.hpp"
#include "src/model/tracer.hpp"
#include "src/util/array3d.hpp"

namespace minipop::model {

class OceanModel {
 public:
  OceanModel(comm::Communicator& comm, const ModelConfig& config);

  /// One barotropic + tracer step. Returns the elliptic solve stats.
  solver::SolveStats step(comm::Communicator& comm);

  /// Split-phase stepping for the batched ensemble runner: step_begin()
  /// assembles the barotropic RHS; the caller solves the elliptic
  /// system — possibly batched with other members' systems — and
  /// step_finish() applies the velocity correction, steps the tracer
  /// and advances the clock. step() == step_begin() + solve +
  /// step_finish(), bit for bit.
  void step_begin(comm::Communicator& comm);
  void step_finish(comm::Communicator& comm,
                   const solver::SolveStats& stats);

  /// Convenience: an integer number of days.
  void run_days(comm::Communicator& comm, double days);

  long step_count() const { return steps_; }
  double time_seconds() const { return steps_ * cfg_.dt; }
  double time_days() const { return time_seconds() / kSecondsPerDay; }
  /// Day within the current model year, [0, 360).
  double yearday() const;

  const ModelConfig& config() const { return cfg_; }
  const grid::CurvilinearGrid& grid() const { return *grid_; }
  const util::Field& depth() const { return depth_; }
  const grid::Decomposition& decomposition() const { return *decomp_; }
  const Geometry& geometry() const { return *geometry_; }
  BarotropicMode& barotropic() { return *barotropic_; }
  TemperatureTracer& tracer() { return *tracer_; }

  // --- diagnostics (collective where a Communicator is passed) ---

  /// Volume-weighted global mean temperature [C].
  double mean_temperature(comm::Communicator& comm) const;
  /// Area-weighted mean sea surface height [m] (conservation check).
  double mean_ssh(comm::Communicator& comm) const;
  /// Total barotropic kinetic energy per unit rho0 [m^5/s^2].
  double kinetic_energy(comm::Communicator& comm) const;
  /// Max |u| (stability check).
  double max_speed(comm::Communicator& comm) const;

  /// Copy this rank's temperature blocks into a global (nx, ny, nz)
  /// array; with one rank this is the full field.
  void gather_temperature(util::Array3D<double>& out) const;
  /// Same for SSH.
  void gather_ssh(util::Field& out) const;

  /// Ensemble-style initial temperature perturbation (paper §6).
  void perturb_temperature(double epsilon, std::uint64_t seed);

  /// Binary checkpoint of the prognostic state (eta, u, v, temperature,
  /// step count). Single-rank runs only (like POP's serial restart
  /// files); restarting reproduces the original trajectory bitwise.
  void save_state(std::ostream& os) const;
  void load_state(comm::Communicator& comm, std::istream& is);

 private:
  ModelConfig cfg_;
  std::unique_ptr<grid::CurvilinearGrid> grid_;
  util::Field depth_;
  std::unique_ptr<grid::Decomposition> decomp_;
  std::unique_ptr<comm::HaloExchanger> halo_;
  std::unique_ptr<Geometry> geometry_;
  std::unique_ptr<BarotropicMode> barotropic_;
  std::unique_ptr<TemperatureTracer> tracer_;
  long steps_ = 0;
};

}  // namespace minipop::model
