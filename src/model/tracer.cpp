#include "src/model/tracer.hpp"

#include <cmath>

#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace minipop::model {

TemperatureTracer::TemperatureTracer(comm::Communicator& comm,
                                     const comm::HaloExchanger& halo,
                                     const grid::Decomposition& decomp,
                                     const Geometry& geometry,
                                     const ModelConfig& config)
    : halo_(&halo),
      geometry_(&geometry),
      cfg_(config),
      depth_halo_(decomp, comm.rank()) {
  MINIPOP_REQUIRE(config.nz >= 1, "nz=" << config.nz);
  forcing_.t_equator = config.t_equator;
  forcing_.t_pole = config.t_pole;
  forcing_.t_seasonal = config.t_seasonal;
  forcing_.tau0 = config.wind_tau0;
  forcing_.seasonal = config.wind_seasonal;

  dz_.resize(config.nz);
  for (int k = 0; k < config.nz; ++k)
    dz_[k] = config.dz0 * std::pow(1.8, k);  // thickening with depth

  levels_.reserve(config.nz);
  scratch_.reserve(config.nz);
  for (int k = 0; k < config.nz; ++k) {
    levels_.emplace_back(decomp, comm.rank());
    scratch_.emplace_back(decomp, comm.rank());
  }
  // Depth with valid halos so land can be recognized across block seams.
  for (int lb = 0; lb < depth_halo_.num_local_blocks(); ++lb) {
    const auto& geo = geometry.block(lb);
    const auto& info = depth_halo_.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        depth_halo_.at(lb, i, j) = geo.depth(i, j);
  }
  halo.exchange(comm, depth_halo_);

  init_profile();
}

double TemperatureTracer::velocity_profile(int k) const {
  // Surface-intensified: ~1.3 at the top tapering toward 0.2 at depth.
  const double frac = nz() > 1 ? static_cast<double>(k) / (nz() - 1) : 0.0;
  return 1.3 - 1.1 * frac * frac;
}

void TemperatureTracer::init_profile() {
  for (int k = 0; k < nz(); ++k) {
    // Depth of the layer center.
    double zc = 0.0;
    for (int kk = 0; kk < k; ++kk) zc += dz_[kk];
    zc += 0.5 * dz_[k];
    const double decay = std::exp(-zc / 800.0);
    for (int lb = 0; lb < levels_[k].num_local_blocks(); ++lb) {
      const auto& geo = geometry_->block(lb);
      const auto& info = levels_[k].info(lb);
      for (int j = 0; j < info.ny; ++j)
        for (int i = 0; i < info.nx; ++i) {
          if (!geo.mask(i, j)) {
            levels_[k].at(lb, i, j) = 0.0;
            continue;
          }
          const double sst = forcing_.restoring_sst(geo.lat(i, j), 0.0);
          const double deep = 2.0;
          levels_[k].at(lb, i, j) = deep + (sst - deep) * decay;
        }
    }
  }
}

void TemperatureTracer::perturb(double epsilon, std::uint64_t seed) {
  for (int k = 0; k < nz(); ++k) {
    auto& t = levels_[k];
    for (int lb = 0; lb < t.num_local_blocks(); ++lb) {
      const auto& geo = geometry_->block(lb);
      const auto& info = t.info(lb);
      for (int j = 0; j < info.ny; ++j)
        for (int i = 0; i < info.nx; ++i) {
          if (!geo.mask(i, j)) continue;
          const std::uint64_t cell =
              (static_cast<std::uint64_t>(k) * info.ny + (info.j0 + j)) *
                  100003ULL +
              static_cast<std::uint64_t>(info.i0 + i);
          util::SplitMix64 sm(seed ^ (cell * 0x9e3779b97f4a7c15ULL + 17));
          const double r =
              2.0 * (static_cast<double>(sm.next() >> 11) * 0x1.0p-53) - 1.0;
          t.at(lb, i, j) += epsilon * r;
        }
    }
  }
}

void TemperatureTracer::step(comm::Communicator& comm,
                             const comm::DistField& u,
                             const comm::DistField& v, double yearday) {
  const double dt = cfg_.dt;
  const double kappa = cfg_.kappa;
  const double restore_rate =
      1.0 / (cfg_.restore_days * kSecondsPerDay);
  const double kappa_v = 1.0e-4;  // vertical mixing [m^2/s]

  for (int k = 0; k < nz(); ++k) halo_->exchange(comm, levels_[k]);

  for (int k = 0; k < nz(); ++k) {
    const double vp = velocity_profile(k);
    auto& t = levels_[k];
    auto& out = scratch_[k];
    for (int lb = 0; lb < t.num_local_blocks(); ++lb) {
      const auto& geo = geometry_->block(lb);
      const auto& info = t.info(lb);
      for (int j = 0; j < info.ny; ++j) {
        for (int i = 0; i < info.nx; ++i) {
          if (!geo.mask(i, j)) {
            out.at(lb, i, j) = 0.0;
            continue;
          }
          const double dx = geo.dx(i, j);
          const double dy = geo.dy(i, j);
          const double tc = t.at(lb, i, j);
          // Cell-centered velocity: average of the 4 surrounding B-grid
          // corners (zero at land corners, damping coastal flow).
          const double uc =
              vp * 0.25 *
              (u.at(lb, i, j) + u.at(lb, i - 1, j) + u.at(lb, i, j - 1) +
               u.at(lb, i - 1, j - 1));
          const double vc =
              vp * 0.25 *
              (v.at(lb, i, j) + v.at(lb, i - 1, j) + v.at(lb, i, j - 1) +
               v.at(lb, i - 1, j - 1));

          // Neighbor values with no-flux land treatment (use center).
          const bool oce = depth_halo_.at(lb, i + 1, j) > 0;
          const bool ocw = depth_halo_.at(lb, i - 1, j) > 0;
          const bool ocn = depth_halo_.at(lb, i, j + 1) > 0;
          const bool ocs = depth_halo_.at(lb, i, j - 1) > 0;
          const double te = oce ? t.at(lb, i + 1, j) : tc;
          const double tw = ocw ? t.at(lb, i - 1, j) : tc;
          const double tn = ocn ? t.at(lb, i, j + 1) : tc;
          const double ts = ocs ? t.at(lb, i, j - 1) : tc;

          // Upwind advection.
          const double dtdx = uc > 0 ? (tc - tw) / dx : (te - tc) / dx;
          const double dtdy = vc > 0 ? (tc - ts) / dy : (tn - tc) / dy;

          // Masked lateral diffusion (no-flux coasts).
          const double lap = (te - 2 * tc + tw) / (dx * dx) +
                             (tn - 2 * tc + ts) / (dy * dy);

          double tendency = -(uc * dtdx + vc * dtdy) + kappa * lap;

          // Vertical mixing (no-flux top/bottom).
          const double dzk = dz_[k];
          if (k > 0) {
            const double up = levels_[k - 1].at(lb, i, j);
            tendency +=
                kappa_v * (up - tc) / (0.5 * (dz_[k - 1] + dzk) * dzk);
          }
          if (k + 1 < nz()) {
            const double dn = levels_[k + 1].at(lb, i, j);
            tendency +=
                kappa_v * (dn - tc) / (0.5 * (dz_[k + 1] + dzk) * dzk);
          }

          // Surface restoring on the top level.
          if (k == 0) {
            const double sst =
                forcing_.restoring_sst(geo.lat(i, j), yearday);
            tendency += restore_rate * (sst - tc);
          }

          out.at(lb, i, j) = tc + dt * tendency;
        }
      }
    }
  }

  for (int k = 0; k < nz(); ++k)
    std::swap(levels_[k], scratch_[k]);
}

}  // namespace minipop::model
