// Monthly diagnostics for the consistency experiments (paper §6): the
// RMSE/RMSZ studies evaluate *monthly* 3D temperature fields, so the
// recorder accumulates a running mean of temperature over each 30-day
// model month and emits the sequence of monthly means.
//
// Designed for single-rank model runs (the ensemble experiments are many
// independent serial runs); gather_temperature covers the whole domain
// only when one rank owns all blocks.
#pragma once

#include <vector>

#include "src/model/ocean_model.hpp"

namespace minipop::model {

class MonthlyTemperatureRecorder {
 public:
  static constexpr double kDaysPerMonth = 30.0;

  explicit MonthlyTemperatureRecorder(const OceanModel& model);

  /// Call once after every model step.
  void sample(const OceanModel& model);

  /// Completed monthly means, oldest first.
  const std::vector<util::Array3D<double>>& months() const {
    return months_;
  }
  int completed_months() const { return static_cast<int>(months_.size()); }

 private:
  int nx_, ny_, nz_;
  long steps_per_month_;
  long samples_in_month_ = 0;
  util::Array3D<double> accum_;
  util::Array3D<double> scratch_;
  std::vector<util::Array3D<double>> months_;
};

}  // namespace minipop::model
