// Rank-local geometry: per-block copies of the metric terms, depth, mask
// and Coriolis parameter the model kernels need, in the same block layout
// as DistField interiors.
#pragma once

#include <vector>

#include "src/grid/bathymetry.hpp"
#include "src/grid/curvilinear_grid.hpp"
#include "src/grid/decomposition.hpp"
#include "src/util/array2d.hpp"

namespace minipop::model {

// T-point (cell) and U-point (corner) geometry. Corner (i, j) sits
// northeast of cell (i, j) — POP's B-grid layout; corner fields share the
// cell block shape, with nonexistent corners (domain edge) masked out.
struct BlockGeometry {
  util::Field dx;     ///< T-cell width [m]
  util::Field dy;     ///< T-cell height [m]
  util::Field area;   ///< T-cell area [m^2]
  util::Field depth;  ///< ocean depth [m], 0 on land
  util::Field f;      ///< Coriolis parameter at T-points [1/s]
  util::Field lat;    ///< latitude [deg] (pseudo-latitude on Uniform grids)
  util::MaskArray mask;

  util::Field dxu;    ///< corner spacing [m]
  util::Field dyu;
  util::Field hu;     ///< corner depth: min of 4 adjacent cells (0=land)
  util::Field fu;     ///< Coriolis at corners [1/s]
  util::Field lat_u;  ///< latitude at corners [deg]
  util::MaskArray mask_u;  ///< 1 where the corner exists and hu > 0
};

class Geometry {
 public:
  Geometry(const grid::CurvilinearGrid& grid, const util::Field& depth,
           const grid::Decomposition& decomp, int rank, double omega);

  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  const BlockGeometry& block(int lb) const { return blocks_[lb]; }

  /// Total ocean area and volume on this rank (reduce for global values).
  double local_ocean_area() const { return local_area_; }
  double local_ocean_volume() const { return local_volume_; }

 private:
  std::vector<BlockGeometry> blocks_;
  double local_area_ = 0.0;
  double local_volume_ = 0.0;
};

}  // namespace minipop::model
