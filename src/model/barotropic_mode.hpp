// Nonlinear barotropic (vertically-integrated) mode with POP's implicit
// free surface on POP's B-grid (paper §1-2; Smith et al. [34]).
//
// Velocities live at cell corners (U-points), the surface height eta at
// cell centers (T-points). The corner gradient G and the cell divergence
// D are exact adjoints, and the elliptic stencil K was assembled as
// K = G^T (H w) G (grid/stencil.hpp), so D H G == K/area *identically* —
// substituting the theta-implicit velocity update
//   u^{n+1} = u* - g theta dt (G eta^{n+1})
// into the theta-weighted continuity equation yields
//   (K + phi area) eta^{n+1} = phi area eta^n
//       + phi dt [theta S(u*) + (1-theta) S(u^n)],
//   phi = 1 / (g theta^2 dt^2),   S(u) = -area div(H u)
// with NO explicit gravity-wave remainder: the free surface is
// unconditionally stable at the Courant-5 barotropic step. (An earlier
// collocated variant left an O(1) short-wave fraction of the gravity
// term explicit and blew up — the adjointness above is load-bearing.)
// This is exactly the elliptic system of paper Eq. 1, solved by the
// configured barotropic solver every time step.
//
// Remaining explicit terms (upwind advection, viscosity, wind, drag) are
// small at this dt; Coriolis uses the exact semi-implicit rotation.
#pragma once

#include <memory>

#include "src/model/config.hpp"
#include "src/model/forcing.hpp"
#include "src/model/geometry.hpp"

namespace minipop::model {

class BarotropicMode {
 public:
  BarotropicMode(comm::Communicator& comm, const comm::HaloExchanger& halo,
                 const grid::CurvilinearGrid& grid, const util::Field& depth,
                 const grid::Decomposition& decomp, const Geometry& geometry,
                 const ModelConfig& config);

  /// Advance one barotropic step at day-of-year `yearday`. Collective.
  /// Returns the elliptic solve statistics. Leaves u/v/eta halos fresh.
  solver::SolveStats step(comm::Communicator& comm, double yearday);

  /// Split-phase stepping for the batched ensemble runner (DESIGN.md
  /// §10-§11): step_begin() runs the momentum predictor and the
  /// elliptic RHS assembly, leaving rhs() ready and eta()'s halo fresh
  /// (the solve may attest HaloFreshness::kFresh); the caller then
  /// solves (K + phi area) eta = rhs — possibly batched across several
  /// members' systems, with the full decorator stack (mixed precision,
  /// per-member resilience, overlap) riding along — and hands the
  /// stats to step_finish() for the failure/refinement accounting and
  /// the velocity correction.
  /// step() == step_begin() + solver.solve() + step_finish(), bit for
  /// bit.
  void step_begin(comm::Communicator& comm, double yearday);
  void step_finish(comm::Communicator& comm,
                   const solver::SolveStats& stats);

  /// The elliptic right-hand side assembled by step_begin(), solved in
  /// place against eta().
  comm::DistField& rhs() { return rhs_; }

  /// Corner (U-point) velocities; corner (i, j) is NE of cell (i, j).
  comm::DistField& u() { return u_; }
  comm::DistField& v() { return v_; }
  comm::DistField& eta() { return eta_; }
  const comm::DistField& u() const { return u_; }
  const comm::DistField& v() const { return v_; }
  const comm::DistField& eta() const { return eta_; }

  const grid::NinePointStencil& stencil() const { return *stencil_; }
  solver::BarotropicSolver& solver() { return *solver_; }

  /// Cumulative elliptic-solver iterations / solves since construction.
  long total_iterations() const { return total_iterations_; }
  long total_solves() const { return total_solves_; }
  /// Cumulative mixed-precision refinement sweeps (0 unless the solver
  /// runs with options.precision == kMixed).
  long total_refine_sweeps() const { return total_refine_sweeps_; }
  /// Solves that ended unconverged (each is warned about on rank 0).
  long solver_failures() const { return solver_failures_; }
  /// FailureKind of the most recent unconverged solve (kNone if none).
  solver::FailureKind last_failure() const { return last_failure_; }

 private:
  const comm::HaloExchanger* halo_;
  const Geometry* geometry_;
  ModelConfig cfg_;
  Forcing forcing_;
  double phi_;

  std::unique_ptr<grid::NinePointStencil> stencil_;
  std::unique_ptr<solver::BarotropicSolver> solver_;

  comm::DistField u_, v_, eta_;
  comm::DistField ustar_, vstar_, rhs_;
  /// Corner flux coefficients with valid halos: cx = hu dyu / 2,
  /// cy = hu dxu / 2 (zero at land / nonexistent corners), so that
  /// S(u)_cell = sum over its 4 corners of (+-cx u +- cy v).
  comm::DistField cx_halo_, cy_halo_;

  long total_iterations_ = 0;
  long total_solves_ = 0;
  long total_refine_sweeps_ = 0;
  long solver_failures_ = 0;
  solver::FailureKind last_failure_ = solver::FailureKind::kNone;
};

}  // namespace minipop::model
