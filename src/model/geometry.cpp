#include "src/model/geometry.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace minipop::model {

namespace {
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
}

Geometry::Geometry(const grid::CurvilinearGrid& grid,
                   const util::Field& depth,
                   const grid::Decomposition& decomp, int rank,
                   double omega) {
  const int nx = grid.nx();
  const int ny = grid.ny();
  const bool periodic = grid.periodic_x();

  // Pseudo-latitude for Uniform (beta-plane) grids.
  auto latitude = [&](int gi, int gj) {
    if (grid.spec().kind == grid::GridKind::kUniform)
      return 45.0 * 2.0 * ((gj + 0.5) / ny - 0.5);
    return grid.lat()(gi, gj);
  };

  const auto& ids = decomp.blocks_of_rank(rank);
  blocks_.reserve(ids.size());
  for (int id : ids) {
    const auto& b = decomp.block(id);
    BlockGeometry g;
    g.dx = util::Field(b.nx, b.ny);
    g.dy = util::Field(b.nx, b.ny);
    g.area = util::Field(b.nx, b.ny);
    g.depth = util::Field(b.nx, b.ny);
    g.f = util::Field(b.nx, b.ny);
    g.lat = util::Field(b.nx, b.ny);
    g.mask = util::MaskArray(b.nx, b.ny);
    g.dxu = util::Field(b.nx, b.ny);
    g.dyu = util::Field(b.nx, b.ny);
    g.hu = util::Field(b.nx, b.ny);
    g.fu = util::Field(b.nx, b.ny);
    g.lat_u = util::Field(b.nx, b.ny);
    g.mask_u = util::MaskArray(b.nx, b.ny);

    for (int j = 0; j < b.ny; ++j) {
      for (int i = 0; i < b.nx; ++i) {
        const int gi = b.i0 + i;
        const int gj = b.j0 + j;
        g.dx(i, j) = grid.dxt()(gi, gj);
        g.dy(i, j) = grid.dyt()(gi, gj);
        g.area(i, j) = grid.area_t()(gi, gj);
        g.depth(i, j) = depth(gi, gj);
        g.mask(i, j) = depth(gi, gj) > 0 ? 1 : 0;
        const double lat = latitude(gi, gj);
        g.lat(i, j) = lat;
        g.f(i, j) = 2.0 * omega * std::sin(lat * kDegToRad);
        if (g.mask(i, j)) {
          local_area_ += g.area(i, j);
          local_volume_ += g.area(i, j) * g.depth(i, j);
        }

        // Corner NE of cell (gi, gj): exists unless on the domain's
        // north edge (or east edge when not periodic).
        const bool corner_exists =
            gj + 1 < ny && (periodic || gi + 1 < nx);
        if (!corner_exists) continue;
        const int gip = (gi + 1) % nx;
        g.dxu(i, j) = grid.dxu()(gi % grid.nxc(), gj);
        g.dyu(i, j) = grid.dyu()(gi % grid.nxc(), gj);
        g.hu(i, j) =
            std::min(std::min(depth(gi, gj), depth(gip, gj)),
                     std::min(depth(gi, gj + 1), depth(gip, gj + 1)));
        g.mask_u(i, j) = g.hu(i, j) > 0 ? 1 : 0;
        const double lat_u = 0.5 * (latitude(gi, gj) + latitude(gi, gj + 1));
        g.lat_u(i, j) = lat_u;
        g.fu(i, j) = 2.0 * omega * std::sin(lat_u * kDegToRad);
      }
    }
    blocks_.push_back(std::move(g));
  }
}

}  // namespace minipop::model
