#include "src/model/diagnostics.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace minipop::model {

MonthlyTemperatureRecorder::MonthlyTemperatureRecorder(
    const OceanModel& model)
    : nx_(model.grid().nx()),
      ny_(model.grid().ny()),
      nz_(model.config().nz),
      accum_(model.grid().nx(), model.grid().ny(), model.config().nz, 0.0),
      scratch_(model.grid().nx(), model.grid().ny(), model.config().nz,
               0.0) {
  steps_per_month_ = static_cast<long>(
      std::llround(kDaysPerMonth * kSecondsPerDay / model.config().dt));
  MINIPOP_REQUIRE(steps_per_month_ >= 1,
                  "time step longer than a month?");
}

void MonthlyTemperatureRecorder::sample(const OceanModel& model) {
  model.gather_temperature(scratch_);
  for (std::size_t n = 0; n < accum_.size(); ++n)
    accum_.data()[n] += scratch_.data()[n];
  if (++samples_in_month_ == steps_per_month_) {
    util::Array3D<double> mean(nx_, ny_, nz_);
    const double inv = 1.0 / static_cast<double>(samples_in_month_);
    for (std::size_t n = 0; n < accum_.size(); ++n)
      mean.data()[n] = accum_.data()[n] * inv;
    months_.push_back(std::move(mean));
    accum_.fill(0.0);
    samples_in_month_ = 0;
  }
}

}  // namespace minipop::model
