// Analytic atmospheric forcing, the stand-in for CESM's data atmosphere
// in the "G_NORMAL_YEAR" compset the paper uses (§5): a steady zonal wind
// pattern (trades / westerlies / polar easterlies) with a seasonal cycle,
// and a restoring sea-surface temperature profile with a seasonal cycle.
#pragma once

namespace minipop::model {

struct Forcing {
  double tau0 = 0.1;          ///< wind stress scale [N/m^2]
  double seasonal = 0.3;      ///< seasonal modulation fraction
  double t_equator = 28.0;    ///< restoring SST at the equator [C]
  double t_pole = -1.0;       ///< restoring SST at the poles [C]
  double t_seasonal = 2.0;    ///< seasonal SST swing [C]

  /// Zonal wind stress [N/m^2] at latitude `lat_deg` on day-of-year
  /// `yearday` (0..365). Classic three-band profile.
  double wind_stress_x(double lat_deg, double yearday) const;

  /// Restoring surface temperature [C].
  double restoring_sst(double lat_deg, double yearday) const;
};

/// Days per model year (360 = twelve 30-day months, the standard
/// climate-model calendar).
inline constexpr double kDaysPerYear = 360.0;
inline constexpr double kSecondsPerDay = 86400.0;

}  // namespace minipop::model
