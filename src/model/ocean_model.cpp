#include "src/model/ocean_model.hpp"

#include <cmath>
#include <istream>
#include <ostream>

#include "src/util/error.hpp"

namespace minipop::model {

double recommended_barotropic_dt(const grid::CurvilinearGrid& grid,
                                 double gravity, double h_ref,
                                 double courant) {
  const double c = std::sqrt(gravity * h_ref);  // gravity wave speed
  const double dx = std::min(grid.mean_dx(), grid.mean_dy());
  return courant * dx / c;
}

OceanModel::OceanModel(comm::Communicator& comm, const ModelConfig& config)
    : cfg_(config) {
  MINIPOP_REQUIRE(comm.size() == config.nranks,
                  "communicator size " << comm.size() << " != config.nranks "
                                       << config.nranks);
  grid_ = std::make_unique<grid::CurvilinearGrid>(config.grid);
  if (cfg_.dt <= 0.0) cfg_.dt = recommended_barotropic_dt(*grid_);
  depth_ = grid::synthetic_earth_bathymetry(*grid_, config.bathymetry);
  auto mask = grid::ocean_mask(depth_);
  decomp_ = std::make_unique<grid::Decomposition>(
      grid_->nx(), grid_->ny(), grid_->periodic_x(), mask,
      config.block_size,
      config.block_size_y > 0 ? config.block_size_y : config.block_size,
      config.nranks);
  halo_ = std::make_unique<comm::HaloExchanger>(*decomp_);
  // CRC-protect every remote halo message when the integrity layer asks
  // for it — set before ANY exchange so the wire format is uniform.
  halo_->set_crc(config.solver.options.integrity.halo_crc);
  geometry_ = std::make_unique<Geometry>(*grid_, depth_, *decomp_,
                                         comm.rank(), config.omega);
  barotropic_ = std::make_unique<BarotropicMode>(
      comm, *halo_, *grid_, depth_, *decomp_, *geometry_, cfg_);
  tracer_ = std::make_unique<TemperatureTracer>(comm, *halo_, *decomp_,
                                                *geometry_, cfg_);
}

double OceanModel::yearday() const {
  return std::fmod(time_days(), kDaysPerYear);
}

solver::SolveStats OceanModel::step(comm::Communicator& comm) {
  auto stats = barotropic_->step(comm, yearday());
  // The barotropic step leaves u/v halos fresh for the tracer.
  tracer_->step(comm, barotropic_->u(), barotropic_->v(), yearday());
  ++steps_;
  return stats;
}

void OceanModel::step_begin(comm::Communicator& comm) {
  barotropic_->step_begin(comm, yearday());
}

void OceanModel::step_finish(comm::Communicator& comm,
                             const solver::SolveStats& stats) {
  barotropic_->step_finish(comm, stats);
  tracer_->step(comm, barotropic_->u(), barotropic_->v(), yearday());
  ++steps_;
}

void OceanModel::run_days(comm::Communicator& comm, double days) {
  const long n = static_cast<long>(std::llround(days * kSecondsPerDay /
                                                cfg_.dt));
  for (long s = 0; s < n; ++s) step(comm);
}

double OceanModel::mean_temperature(comm::Communicator& comm) const {
  double local[2] = {0.0, 0.0};  // volume-weighted sum, volume
  for (int k = 0; k < tracer_->nz(); ++k) {
    const auto& t = tracer_->level(k);
    const double dz = tracer_->layer_thickness(k);
    for (int lb = 0; lb < t.num_local_blocks(); ++lb) {
      const auto& geo = geometry_->block(lb);
      const auto& info = t.info(lb);
      for (int j = 0; j < info.ny; ++j)
        for (int i = 0; i < info.nx; ++i) {
          if (!geo.mask(i, j)) continue;
          const double vol = geo.area(i, j) * dz;
          local[0] += t.at(lb, i, j) * vol;
          local[1] += vol;
        }
    }
  }
  comm.allreduce(std::span<double>(local, 2), comm::ReduceOp::kSum);
  return local[1] > 0 ? local[0] / local[1] : 0.0;
}

double OceanModel::mean_ssh(comm::Communicator& comm) const {
  double local[2] = {0.0, 0.0};
  const auto& eta = barotropic_->eta();
  for (int lb = 0; lb < eta.num_local_blocks(); ++lb) {
    const auto& geo = geometry_->block(lb);
    const auto& info = eta.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i) {
        if (!geo.mask(i, j)) continue;
        local[0] += eta.at(lb, i, j) * geo.area(i, j);
        local[1] += geo.area(i, j);
      }
  }
  comm.allreduce(std::span<double>(local, 2), comm::ReduceOp::kSum);
  return local[1] > 0 ? local[0] / local[1] : 0.0;
}

double OceanModel::kinetic_energy(comm::Communicator& comm) const {
  double ke = 0.0;
  const auto& u = barotropic_->u();
  const auto& v = barotropic_->v();
  for (int lb = 0; lb < u.num_local_blocks(); ++lb) {
    const auto& geo = geometry_->block(lb);
    const auto& info = u.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i) {
        if (!geo.mask_u(i, j)) continue;
        const double uu = u.at(lb, i, j);
        const double vv = v.at(lb, i, j);
        ke += 0.5 * (uu * uu + vv * vv) * geo.dxu(i, j) * geo.dyu(i, j) *
              geo.hu(i, j);
      }
  }
  return comm.allreduce_sum(ke);
}

double OceanModel::max_speed(comm::Communicator& comm) const {
  double m = 0.0;
  const auto& u = barotropic_->u();
  const auto& v = barotropic_->v();
  for (int lb = 0; lb < u.num_local_blocks(); ++lb) {
    const auto& info = u.info(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i)
        m = std::max(m, std::hypot(u.at(lb, i, j), v.at(lb, i, j)));
  }
  comm.allreduce(std::span<double>(&m, 1), comm::ReduceOp::kMax);
  return m;
}

void OceanModel::gather_temperature(util::Array3D<double>& out) const {
  if (out.nx() != grid_->nx() || out.ny() != grid_->ny() ||
      out.nz() != tracer_->nz())
    out = util::Array3D<double>(grid_->nx(), grid_->ny(), tracer_->nz());
  for (int k = 0; k < tracer_->nz(); ++k) {
    const auto& t = tracer_->level(k);
    for (int lb = 0; lb < t.num_local_blocks(); ++lb) {
      const auto& info = t.info(lb);
      for (int j = 0; j < info.ny; ++j)
        for (int i = 0; i < info.nx; ++i)
          out(info.i0 + i, info.j0 + j, k) = t.at(lb, i, j);
    }
  }
}

void OceanModel::gather_ssh(util::Field& out) const {
  if (out.nx() != grid_->nx() || out.ny() != grid_->ny())
    out = util::Field(grid_->nx(), grid_->ny(), 0.0);
  barotropic_->eta().store_global(out);
}

void OceanModel::perturb_temperature(double epsilon, std::uint64_t seed) {
  tracer_->perturb(epsilon, seed);
}

namespace {
constexpr std::uint64_t kCheckpointMagic = 0x4d504f5031ULL;  // "MPOP1"

void write_field(std::ostream& os, const util::Field& f) {
  os.write(reinterpret_cast<const char*>(f.data()),
           static_cast<std::streamsize>(f.size() * sizeof(double)));
}

void read_field(std::istream& is, util::Field& f) {
  is.read(reinterpret_cast<char*>(f.data()),
          static_cast<std::streamsize>(f.size() * sizeof(double)));
}
}  // namespace

void OceanModel::save_state(std::ostream& os) const {
  MINIPOP_REQUIRE(cfg_.nranks == 1,
                  "checkpointing is supported for single-rank runs");
  const std::uint64_t header[5] = {
      kCheckpointMagic, static_cast<std::uint64_t>(grid_->nx()),
      static_cast<std::uint64_t>(grid_->ny()),
      static_cast<std::uint64_t>(tracer_->nz()),
      static_cast<std::uint64_t>(steps_)};
  os.write(reinterpret_cast<const char*>(header), sizeof(header));

  util::Field scratch(grid_->nx(), grid_->ny(), 0.0);
  barotropic_->eta().store_global(scratch);
  write_field(os, scratch);
  barotropic_->u().store_global(scratch);
  write_field(os, scratch);
  barotropic_->v().store_global(scratch);
  write_field(os, scratch);
  for (int k = 0; k < tracer_->nz(); ++k) {
    tracer_->level(k).store_global(scratch);
    write_field(os, scratch);
  }
  MINIPOP_REQUIRE(os.good(), "checkpoint write failed");
}

void OceanModel::load_state(comm::Communicator& comm, std::istream& is) {
  MINIPOP_REQUIRE(cfg_.nranks == 1,
                  "checkpointing is supported for single-rank runs");
  std::uint64_t header[5] = {};
  is.read(reinterpret_cast<char*>(header), sizeof(header));
  MINIPOP_REQUIRE(is.good() && header[0] == kCheckpointMagic,
                  "not a minipop checkpoint");
  MINIPOP_REQUIRE(header[1] == static_cast<std::uint64_t>(grid_->nx()) &&
                      header[2] == static_cast<std::uint64_t>(grid_->ny()) &&
                      header[3] == static_cast<std::uint64_t>(tracer_->nz()),
                  "checkpoint shape " << header[1] << "x" << header[2]
                                      << "x" << header[3]
                                      << " does not match this model");
  steps_ = static_cast<long>(header[4]);

  util::Field scratch(grid_->nx(), grid_->ny(), 0.0);
  read_field(is, scratch);
  barotropic_->eta().load_global(scratch);
  read_field(is, scratch);
  barotropic_->u().load_global(scratch);
  read_field(is, scratch);
  barotropic_->v().load_global(scratch);
  for (int k = 0; k < tracer_->nz(); ++k) {
    read_field(is, scratch);
    tracer_->level(k).load_global(scratch);
  }
  MINIPOP_REQUIRE(is.good(), "checkpoint read failed");

  // Restore the fresh-halo invariant the stepping relies on.
  halo_->exchange(comm, barotropic_->eta());
  halo_->exchange(comm, barotropic_->u());
  halo_->exchange(comm, barotropic_->v());
}

}  // namespace minipop::model
