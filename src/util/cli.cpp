#include "src/util/cli.hpp"

#include <cstdlib>

#include "src/util/error.hpp"

namespace minipop::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      options_[body] = "";  // bare flag
    }
  }
}

std::optional<std::string> Cli::raw(const std::string& name) const {
  auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

bool Cli::has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  auto v = raw(name);
  return v ? *v : fallback;
}

int Cli::get_int(const std::string& name, int fallback) const {
  auto v = raw(name);
  if (!v || v->empty()) return fallback;
  char* end = nullptr;
  long out = std::strtol(v->c_str(), &end, 10);
  MINIPOP_REQUIRE(end && *end == '\0', "--" << name << "=" << *v
                                            << " is not an integer");
  return static_cast<int>(out);
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto v = raw(name);
  if (!v || v->empty()) return fallback;
  char* end = nullptr;
  double out = std::strtod(v->c_str(), &end);
  MINIPOP_REQUIRE(end && *end == '\0', "--" << name << "=" << *v
                                            << " is not a number");
  return out;
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  auto v = raw(name);
  if (!v) return fallback;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes") return true;
  if (*v == "0" || *v == "false" || *v == "no") return false;
  MINIPOP_REQUIRE(false, "--" << name << "=" << *v << " is not a boolean");
  return fallback;
}

}  // namespace minipop::util
