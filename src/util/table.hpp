// Fixed-width table printer used by the benchmark harness to emit
// paper-style rows/series (one table per paper table/figure).
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace minipop::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row. Subsequent add() calls fill it left to right.
  Table& row();
  Table& add(const std::string& v);
  Table& add(double v, int precision = 3);
  Table& add_int(long v);
  /// Add a percentage rendered as e.g. "12.1%".
  Table& add_pct(double fraction, int precision = 1);

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace minipop::util
