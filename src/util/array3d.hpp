// Flat 3D array with i fastest, then j, then k (vertical level):
// element (i, j, k) lives at data[(k * ny + j) * nx + i].
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "src/util/error.hpp"

namespace minipop::util {

template <typename T>
class Array3D {
 public:
  Array3D() = default;
  Array3D(int nx, int ny, int nz, T fill = T{})
      : nx_(nx),
        ny_(ny),
        nz_(nz),
        data_(static_cast<std::size_t>(nx) * ny * nz, fill) {
    MINIPOP_REQUIRE(nx >= 0 && ny >= 0 && nz >= 0,
                    "nx=" << nx << " ny=" << ny << " nz=" << nz);
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::size_t size() const { return data_.size(); }

  T& operator()(int i, int j, int k) {
    MINIPOP_ASSERT(in_bounds(i, j, k));
    return data_[(static_cast<std::size_t>(k) * ny_ + j) * nx_ + i];
  }
  const T& operator()(int i, int j, int k) const {
    MINIPOP_ASSERT(in_bounds(i, j, k));
    return data_[(static_cast<std::size_t>(k) * ny_ + j) * nx_ + i];
  }

  bool in_bounds(int i, int j, int k) const {
    return i >= 0 && i < nx_ && j >= 0 && j < ny_ && k >= 0 && k < nz_;
  }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::span<T> flat() { return std::span<T>(data_); }
  std::span<const T> flat() const { return std::span<const T>(data_); }

 private:
  int nx_ = 0;
  int ny_ = 0;
  int nz_ = 0;
  std::vector<T> data_;
};

}  // namespace minipop::util
