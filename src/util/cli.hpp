// Minimal command-line parsing for benches and examples.
//
// Accepts --key=value and boolean --flag forms (values always use '=' so
// flags never swallow positionals). Unknown arguments are collected so
// callers can reject or forward them (benches forward to
// google-benchmark).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace minipop::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  int get_int(const std::string& name, int fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Positional (non --option) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::optional<std::string> raw(const std::string& name) const;

  std::string program_;
  std::unordered_map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace minipop::util
