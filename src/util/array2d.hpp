// Flat, row-major 2D array. Index convention follows POP: i is the
// fast (x / longitude) index, j the slow (y / latitude) index, so
// element (i, j) lives at data[j * nx + i].
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "src/util/error.hpp"

namespace minipop::util {

template <typename T>
class Array2D {
 public:
  Array2D() = default;
  Array2D(int nx, int ny, T fill = T{})
      : nx_(nx), ny_(ny), data_(static_cast<std::size_t>(nx) * ny, fill) {
    MINIPOP_REQUIRE(nx >= 0 && ny >= 0, "nx=" << nx << " ny=" << ny);
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(int i, int j) {
    MINIPOP_ASSERT(in_bounds(i, j));
    return data_[static_cast<std::size_t>(j) * nx_ + i];
  }
  const T& operator()(int i, int j) const {
    MINIPOP_ASSERT(in_bounds(i, j));
    return data_[static_cast<std::size_t>(j) * nx_ + i];
  }

  /// Bounds-checked access that returns `fallback` outside the domain.
  T at_or(int i, int j, T fallback) const {
    return in_bounds(i, j) ? (*this)(i, j) : fallback;
  }

  bool in_bounds(int i, int j) const {
    return i >= 0 && i < nx_ && j >= 0 && j < ny_;
  }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::span<T> flat() { return std::span<T>(data_); }
  std::span<const T> flat() const { return std::span<const T>(data_); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  friend bool operator==(const Array2D& a, const Array2D& b) {
    return a.nx_ == b.nx_ && a.ny_ == b.ny_ && a.data_ == b.data_;
  }

 private:
  int nx_ = 0;
  int ny_ = 0;
  std::vector<T> data_;
};

using Field = Array2D<double>;
using MaskArray = Array2D<unsigned char>;

}  // namespace minipop::util
