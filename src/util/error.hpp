// Error-handling primitives for minipop.
//
// The library reports contract violations and runtime failures by throwing
// minipop::util::Error (a std::runtime_error). Hot loops use
// MINIPOP_ASSERT, which compiles out in NDEBUG builds; API boundaries use
// MINIPOP_REQUIRE, which is always active.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace minipop::util {

/// Exception type thrown by all minipop components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* expr, const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace minipop::util

/// Always-on precondition check. `msg` is streamed, e.g.
///   MINIPOP_REQUIRE(n > 0, "block size " << n);
#define MINIPOP_REQUIRE(expr, msg)                                        \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream minipop_req_os_;                                 \
      minipop_req_os_ << msg;                                             \
      ::minipop::util::detail::raise(#expr, __FILE__, __LINE__,           \
                                     minipop_req_os_.str());              \
    }                                                                     \
  } while (0)

/// Debug-only assertion for hot paths (per-element bounds checks in the
/// array wrappers). Governed by MINIPOP_BOUNDS_CHECK, which the build
/// sets explicitly (CMake option: ON in Debug, OFF otherwise) so the
/// checks provably compile out of release hot loops; without a build
/// definition it falls back to following NDEBUG. The raw-pointer kernels
/// in solver/kernels.* never carry these checks in any configuration.
#if !defined(MINIPOP_BOUNDS_CHECK)
#if defined(NDEBUG)
#define MINIPOP_BOUNDS_CHECK 0
#else
#define MINIPOP_BOUNDS_CHECK 1
#endif
#endif

#if MINIPOP_BOUNDS_CHECK
#define MINIPOP_ASSERT(expr)                                              \
  do {                                                                    \
    if (!(expr))                                                          \
      ::minipop::util::detail::raise(#expr, __FILE__, __LINE__, "");      \
  } while (0)
#else
#define MINIPOP_ASSERT(expr) ((void)0)
#endif
