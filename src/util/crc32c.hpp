// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
// the iSCSI checksum of RFC 3720. Used by the halo integrity layer to
// detect payload corruption on the wire; chosen over plain CRC32
// because its published test vectors make the implementation auditable
// and its error-detection properties are well characterized for short
// messages. Table-driven, byte at a time: the halo payloads are a few
// KB, so this is far from any bandwidth ceiling that would justify a
// slicing or hardware variant.
//
// Both a one-shot helper and an incremental init/update/final API are
// provided; the incremental form lets a caller fold disjoint spans
// (e.g. payload then trailer metadata) into one checksum and is tested
// to be equivalent to the one-shot form.
#pragma once

#include <cstddef>
#include <cstdint>

namespace minipop::util {

/// Initial CRC32C accumulator state.
inline constexpr std::uint32_t kCrc32cInit = 0xFFFFFFFFu;

/// Fold `n` bytes into an accumulator previously seeded with
/// kCrc32cInit (or the return value of an earlier update).
std::uint32_t crc32c_update(std::uint32_t state, const void* data,
                            std::size_t n);

/// Finalize an accumulator into the published CRC32C value.
inline constexpr std::uint32_t crc32c_final(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC32C of a byte span. crc32c("123456789") == 0xE3069283.
inline std::uint32_t crc32c(const void* data, std::size_t n) {
  return crc32c_final(crc32c_update(kCrc32cInit, data, n));
}

}  // namespace minipop::util
