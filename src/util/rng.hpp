// Deterministic, seedable random number generation.
//
// All stochastic choices in minipop (synthetic bathymetry, ensemble
// perturbations, test fixtures) flow through these generators so that
// every run is reproducible from a single seed.
#pragma once

#include <cmath>
#include <cstdint>

namespace minipop::util {

/// SplitMix64: used to expand a single seed into stream states.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (one value per call; simple and
  /// branch-free enough for our use).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    // Guard against log(0).
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return (*this)() % n; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace minipop::util
