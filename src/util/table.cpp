#include "src/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/util/error.hpp"

namespace minipop::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MINIPOP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& v) {
  MINIPOP_REQUIRE(!rows_.empty(), "call row() before add()");
  rows_.back().push_back(v);
  return *this;
}

Table& Table::add(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return add(os.str());
}

Table& Table::add_int(long v) { return add(std::to_string(v)); }

Table& Table::add_pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << (fraction * 100.0)
     << "%";
  return add(os.str());
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      os << (c == 0 ? "| " : " ") << std::left
         << std::setw(static_cast<int>(widths[c])) << cell << " |";
    }
    os << "\n";
  };

  print_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& r : rows_) print_row(r);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace minipop::util
