// Wall-clock timing helpers.
#pragma once

#include <chrono>

namespace minipop::util {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulating timer for repeated sections (start/stop pairs).
class Stopwatch {
 public:
  void start() { t_.reset(); running_ = true; }
  void stop() {
    if (running_) {
      total_ += t_.seconds();
      ++laps_;
      running_ = false;
    }
  }
  double total_seconds() const { return total_; }
  long laps() const { return laps_; }
  void clear() { total_ = 0; laps_ = 0; running_ = false; }

 private:
  Timer t_;
  double total_ = 0;
  long laps_ = 0;
  bool running_ = false;
};

}  // namespace minipop::util
