// Leveled logging to stderr. Quiet by default (warn+); benches raise the
// level with --verbose. Not thread-safe by design: virtual-MPI worker
// ranks do not log; only rank 0 / the driver thread should.
#pragma once

#include <sstream>
#include <string>

namespace minipop::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

}  // namespace minipop::util

#define MINIPOP_LOG(level, msg)                                      \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::minipop::util::log_level())) {            \
      std::ostringstream minipop_log_os_;                            \
      minipop_log_os_ << msg;                                        \
      ::minipop::util::log_message(level, minipop_log_os_.str());    \
    }                                                                \
  } while (0)

#define MINIPOP_DEBUG(msg) MINIPOP_LOG(::minipop::util::LogLevel::kDebug, msg)
#define MINIPOP_INFO(msg) MINIPOP_LOG(::minipop::util::LogLevel::kInfo, msg)
#define MINIPOP_WARN(msg) MINIPOP_LOG(::minipop::util::LogLevel::kWarn, msg)
#define MINIPOP_ERROR(msg) MINIPOP_LOG(::minipop::util::LogLevel::kError, msg)
