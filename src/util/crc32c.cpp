#include "src/util/crc32c.hpp"

#include <array>

namespace minipop::util {

namespace {

/// 256-entry lookup table for the reflected Castagnoli polynomial,
/// generated at compile time so there is no init-order dependency.
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c_update(std::uint32_t state, const void* data,
                            std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i)
    state = kTable[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  return state;
}

}  // namespace minipop::util
