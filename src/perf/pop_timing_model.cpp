#include "src/perf/pop_timing_model.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace minipop::perf {

OverlapAccounting overlap_accounting(const comm::CostCounters& costs) {
  OverlapAccounting a;
  a.posted_seconds = costs.posted_comm_seconds;
  a.exposed_seconds = costs.exposed_comm_seconds;
  a.requests = costs.requests;
  return a;
}

GridCase pop_0p1deg_case() {
  GridCase g;
  g.name = "0.1deg";
  g.points = 3600L * 2400L;
  g.steps_per_day = 500;  // dt_count = 500 (paper §5.2)
  g.baroclinic_ops_per_point = 24600.0;  // ~62 vertical levels
  g.baroclinic_halos_per_step = 40.0;
  return g;
}

GridCase pop_1deg_case() {
  GridCase g;
  g.name = "1deg";
  g.points = 320L * 384L;
  g.steps_per_day = 45;
  // Calibrated so that Table 1's improvements come out (the 1 degree
  // production case carries extra tracer work, §5.1).
  g.baroclinic_ops_per_point = 31500.0;
  g.baroclinic_halos_per_step = 60.0;
  return g;
}

double IterationModel::of(Config c, long points, int p) const {
  const double diag = is_pcsi(c) ? pcsi_diag : cg_diag;
  if (!is_evp(c)) return diag;
  const double cells_per_rank = static_cast<double>(points) / p;
  const double quality =
      cells_per_rank / (cells_per_rank + evp_half_cells);
  return diag * (1.0 - evp_improvement * quality);
}

IterationModel paper_iteration_model(const GridCase& grid) {
  // Fitted against the paper's timing anchors; see EXPERIMENTS.md.
  if (grid.points > 1000000L) {
    return IterationModel{88.0, 107.0};  // 0.1 degree
  }
  return IterationModel{81.0, 212.0};  // 1 degree (larger aspect ratios)
}

PopTimingModel::PopTimingModel(MachineProfile machine, GridCase grid,
                               IterationModel iterations)
    : machine_(std::move(machine)),
      grid_(std::move(grid)),
      iterations_(iterations) {
  MINIPOP_REQUIRE(iterations.cg_diag > 0 && iterations.pcsi_diag > 0,
                  "iteration counts must be positive");
}

double PopTimingModel::iterations_of(Config c, int p) const {
  return iterations_.of(c, grid_.points, p);
}

IterationCosts PopTimingModel::barotropic_per_day(Config c, int p) const {
  IterationCosts per_iter = iteration_costs(machine_, c, grid_.points, p,
                                            grid_.check_frequency);
  const double iters_per_day = iterations_of(c, p) * grid_.steps_per_day;
  return IterationCosts{per_iter.computation * iters_per_day,
                        per_iter.halo * iters_per_day,
                        per_iter.reduction * iters_per_day};
}

double PopTimingModel::baroclinic_per_day(int p) const {
  const double pts_per_rank = static_cast<double>(grid_.points) / p;
  const double per_step =
      grid_.baroclinic_ops_per_point * pts_per_rank * machine_.theta +
      grid_.baroclinic_halos_per_step *
          (4.0 * machine_.alpha_p2p +
           8.0 * std::sqrt(static_cast<double>(grid_.points)) /
               std::sqrt(p) * 8.0 * machine_.beta);
  return per_step * grid_.steps_per_day;
}

double PopTimingModel::total_per_day(Config c, int p) const {
  return barotropic_per_day(c, p).total() + baroclinic_per_day(p);
}

double PopTimingModel::simulated_years_per_day(Config c, int p) const {
  return 86400.0 / (365.0 * total_per_day(c, p));
}

double PopTimingModel::barotropic_fraction(Config c, int p) const {
  return barotropic_per_day(c, p).total() / total_per_day(c, p);
}

double PopTimingModel::improvement_vs_baseline(Config c, int p) const {
  const double base = total_per_day(Config::kCgDiag, p);
  return (base - total_per_day(c, p)) / base;
}

}  // namespace minipop::perf
