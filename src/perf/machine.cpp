#include "src/perf/machine.hpp"

namespace minipop::perf {

MachineProfile yellowstone_profile() {
  MachineProfile m;
  m.name = "Yellowstone";
  m.theta = 3.0e-9;
  m.alpha_p2p = 6.0e-6;
  m.beta = 1.0 / 13.6e9;
  m.alpha_reduce0 = 12.5e-6;
  m.alpha_reduce_per_rank = 0.85e-9;
  return m;
}

MachineProfile edison_profile() {
  MachineProfile m;
  m.name = "Edison";
  m.theta = 2.8e-9;
  // Effective (contention-inflated) point-to-point latency: the paper
  // reports large run-to-run variability from Dragonfly job placement
  // (§5.3, ref [39]); the raw Aries latency is far lower.
  m.alpha_p2p = 20.0e-6;
  m.beta = 1.0 / 8.0e9;
  m.alpha_reduce0 = 14.0e-6;
  m.alpha_reduce_per_rank = 1.2e-9;
  return m;
}

}  // namespace minipop::perf
