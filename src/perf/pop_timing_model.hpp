// Whole-POP timing model: barotropic solver (from the cost equations and
// iteration counts) + a calibrated baroclinic/rest-of-model cost, giving
// per-simulated-day times, component fractions (Figs. 1/9), communication
// breakdowns (Figs. 2/10), scaling curves (Figs. 7/8/11), total-time
// improvements (Table 1) and simulation rates (Figs. 8/11 right).
#pragma once

#include "src/comm/cost_tracker.hpp"
#include "src/perf/cost_equations.hpp"

namespace minipop::perf {

/// Measured posted-vs-exposed communication split from a solve (the
/// split-phase engine's observables). "Posted" is total request
/// in-flight time (post to observed completion); "exposed" is the part
/// the caller actually blocked on in wait(). Their difference is the
/// communication the overlap hid behind interior compute — the quantity
/// the paper's pipelined variants exist to maximize.
struct OverlapAccounting {
  double posted_seconds = 0.0;
  double exposed_seconds = 0.0;
  std::uint64_t requests = 0;

  double hidden_seconds() const {
    const double h = posted_seconds - exposed_seconds;
    return h > 0.0 ? h : 0.0;
  }
  /// Fraction of posted communication hidden behind compute; 0 when
  /// nothing was posted (e.g. a serial run).
  double hidden_fraction() const {
    return posted_seconds > 0.0 ? hidden_seconds() / posted_seconds : 0.0;
  }
};

/// Extract the overlap split from a CostCounters window (typically
/// SolveStats::costs).
OverlapAccounting overlap_accounting(const comm::CostCounters& costs);

/// A production grid case for the model.
struct GridCase {
  std::string name;
  long points;            ///< total horizontal grid points (N^2)
  int steps_per_day;      ///< barotropic solves per simulated day
  /// Calibrated cost of everything that is not the barotropic solver
  /// (baroclinic dynamics, thermodynamics, coupling), in paper-ops per
  /// horizontal point per step — POP's 3D work dwarfs the 2D solver's.
  double baroclinic_ops_per_point;
  /// Halo exchanges per step outside the solver (baroclinic 3D fields).
  double baroclinic_halos_per_step;
  int check_frequency = 10;
};

GridCase pop_0p1deg_case();  ///< 3600x2400, 500 steps/day (paper §5.2)
GridCase pop_1deg_case();    ///< 320x384, 45 steps/day

/// Average solver iterations per solve.
///
/// Diagonal-preconditioned counts are core-count independent (paper
/// §2.2). The block-EVP counts are NOT: a block-diagonal preconditioner
/// weakens as blocks shrink, so its iteration savings fade at very high
/// core counts. This is what reconciles the paper's Fig. 6 (EVP cuts
/// iterations to ~1/3, measured at moderate block sizes) with its Fig. 8
/// (ChronGear+EVP is only 1.4x faster at 16,875 cores even though both
/// variants pay one reduction per iteration). We model the savings as
///   K_evp(p) = K_diag * (1 - evp_improvement * q(p)),
///   q(p) = cells_per_rank / (cells_per_rank + evp_half_cells),
/// which reproduces both figures; bench_fig06 measures the large-block
/// ratios live from this repository's solvers.
struct IterationModel {
  double cg_diag;
  double pcsi_diag;
  /// Fraction of iterations EVP removes at large blocks (Fig. 6: ~2/3).
  double evp_improvement = 2.0 / 3.0;
  /// Block size (cells/rank) at which EVP delivers half its improvement.
  double evp_half_cells = 250.0;

  double of(Config c, long points, int p) const;
};

/// Defaults calibrated against the paper's timing anchors (Figs. 7, 8,
/// 11, Table 1 — see EXPERIMENTS.md for the fit).
IterationModel paper_iteration_model(const GridCase& grid);

class PopTimingModel {
 public:
  PopTimingModel(MachineProfile machine, GridCase grid,
                 IterationModel iterations);

  const MachineProfile& machine() const { return machine_; }
  const GridCase& grid() const { return grid_; }
  const IterationModel& iterations() const { return iterations_; }

  /// Effective iterations per solve at p ranks.
  double iterations_of(Config c, int p) const;

  /// Barotropic-mode cost for one simulated day on p ranks, split into
  /// the paper's three components.
  IterationCosts barotropic_per_day(Config c, int p) const;

  /// Everything else (baroclinic + coupling) per simulated day.
  double baroclinic_per_day(int p) const;

  double total_per_day(Config c, int p) const;

  /// Core simulation rate in simulated years per wall-clock day
  /// (365-day years, initialization/IO excluded — paper §5.2).
  double simulated_years_per_day(Config c, int p) const;

  /// Fraction of total time spent in the barotropic mode (Figs. 1/9).
  double barotropic_fraction(Config c, int p) const;

  /// Percent improvement of total time vs. the cg+diagonal baseline
  /// (Table 1).
  double improvement_vs_baseline(Config c, int p) const;

 private:
  MachineProfile machine_;
  GridCase grid_;
  IterationModel iterations_;
};

}  // namespace minipop::perf
