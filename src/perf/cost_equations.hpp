// The paper's per-iteration cost equations (Eqs. 2, 3, 5, 6) in
// component form: computation (theta), boundary updates (alpha_p2p,
// beta) and global reductions (tree hops), per solver x preconditioner
// configuration.
#pragma once

#include <string>

#include "src/perf/machine.hpp"

namespace minipop::perf {

/// The four solver configurations the paper evaluates.
enum class Config { kCgDiag, kCgEvp, kPcsiDiag, kPcsiEvp };
inline constexpr Config kAllConfigs[] = {Config::kCgDiag, Config::kCgEvp,
                                         Config::kPcsiDiag,
                                         Config::kPcsiEvp};
std::string to_string(Config c);
bool is_pcsi(Config c);
bool is_evp(Config c);

/// Paper-counted operations per grid point per iteration:
///   ChronGear: 15 + T_p;  P-CSI: 12 + T_p;  T_p: diagonal 1, EVP 14.
/// The ChronGear masking cost (2 ops/pt per reduction) is accounted in
/// the reduction component, matching Eq. 2's total of 18 for cg+diag.
double compute_ops_per_point(Config c);

/// Ops per point spent on the local masking part of a global sum.
inline constexpr double kMaskOpsPerPoint = 2.0;

/// Global reductions per solver iteration (the convergence check rides
/// in ChronGear's fused reduction; P-CSI reduces only when checking).
double reductions_per_iteration(Config c, int check_frequency);

struct IterationCosts {
  double computation;  ///< seconds
  double halo;
  double reduction;
  double total() const { return computation + halo + reduction; }
};

/// Cost of ONE solver iteration on `p` ranks for a grid of `points`
/// total cells (paper's N^2). Halo: 4 messages of (8 sqrt(points) /
/// sqrt(p)) points each iteration (halo width 2, Eq. in §2.2).
IterationCosts iteration_costs(const MachineProfile& m, Config c,
                               long points, int p, int check_frequency);

/// Land-aware variant (DESIGN.md §14): with span execution the sweeps
/// and masked reductions only touch ocean cells, so the computation and
/// reduction-masking terms scale by `ocean_fraction` =
/// active_points / swept_points in (0, 1] (CostCounters supplies the
/// measured ratio). Message latency and halo bytes are unchanged —
/// rims are exchanged dense, land included, and the latency term never
/// depended on point counts. ocean_fraction = 1 is exactly the dense
/// model above.
IterationCosts iteration_costs(const MachineProfile& m, Config c,
                               long points, int p, int check_frequency,
                               double ocean_fraction);

/// Amortized cost of one P-CSI iteration under the depth-k
/// communication-avoiding schedule (DESIGN.md §13): one grouped
/// exchange of the three iteration fields {x, dx, r} with width-k rims
/// buys k iterations, so the per-iteration message latency divides by
/// k, while the shrinking extended-domain sweeps add redundant
/// perimeter flops — stage extension e costs (s+2e)^2 - s^2 ~ 4es+4e^2
/// extra points on an s x s subdomain (s = sqrt(points/p)), averaging
/// ~2sk + O(k^2) redundant points per iteration over a group.
/// k == 1 IS the baseline schedule and returns iteration_costs()
/// exactly (the depth-1 engine does no redundant work and no grouping).
/// Only meaningful for P-CSI configs: ChronGear's per-iteration
/// reduction forces a group boundary every iteration, so is_pcsi(c) is
/// required.
IterationCosts comm_avoid_iteration_costs(const MachineProfile& m, Config c,
                                          long points, int p,
                                          int check_frequency, int k);

/// Land-aware depth-k model: interior AND redundant perimeter flops
/// scale by `ocean_fraction` (the extended sweeps skip ghost-rim land
/// exactly like interior land); the grouped-exchange bytes stay dense.
IterationCosts comm_avoid_iteration_costs(const MachineProfile& m, Config c,
                                          long points, int p,
                                          int check_frequency, int k,
                                          double ocean_fraction);

/// Model-driven ghost-zone depth: the k in [1, max_depth] minimizing
/// comm_avoid_iteration_costs().total(); ties break toward the
/// smaller k (less redundant work, less memory). Non-P-CSI configs
/// return 1 — the comm-avoiding schedule needs a reduction-free
/// iteration body.
int choose_halo_depth(const MachineProfile& m, Config c, long points, int p,
                      int check_frequency, int max_depth = 4);

/// Land-aware depth choice: cheaper ocean-fraction-scaled computation
/// shifts the latency/redundant-flops break-even toward DEEPER ghost
/// zones on land-heavy grids (redundant work is discounted by the same
/// factor the interior is, while the latency saved per skipped exchange
/// is undiminished).
int choose_halo_depth(const MachineProfile& m, Config c, long points, int p,
                      int check_frequency, int max_depth,
                      double ocean_fraction);

}  // namespace minipop::perf
