#include "src/perf/cost_equations.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace minipop::perf {

std::string to_string(Config c) {
  switch (c) {
    case Config::kCgDiag: return "chrongear+diagonal";
    case Config::kCgEvp: return "chrongear+evp";
    case Config::kPcsiDiag: return "pcsi+diagonal";
    case Config::kPcsiEvp: return "pcsi+evp";
  }
  return "?";
}

bool is_pcsi(Config c) {
  return c == Config::kPcsiDiag || c == Config::kPcsiEvp;
}

bool is_evp(Config c) {
  return c == Config::kCgEvp || c == Config::kPcsiEvp;
}

double compute_ops_per_point(Config c) {
  const double solver_ops = is_pcsi(c) ? 12.0 : 15.0;
  const double precond_ops = is_evp(c) ? 14.0 : 1.0;
  return solver_ops + precond_ops;
}

double reductions_per_iteration(Config c, int check_frequency) {
  MINIPOP_REQUIRE(check_frequency >= 1,
                  "check_frequency=" << check_frequency);
  return is_pcsi(c) ? 1.0 / check_frequency : 1.0;
}

IterationCosts iteration_costs(const MachineProfile& m, Config c,
                               long points, int p, int check_frequency) {
  MINIPOP_REQUIRE(points > 0 && p > 0, "points=" << points << " p=" << p);
  IterationCosts out;
  const double pts_per_rank = static_cast<double>(points) / p;
  const double n_linear = std::sqrt(static_cast<double>(points));

  out.computation = compute_ops_per_point(c) * pts_per_rank * m.theta;

  // Boundary update: 4 neighbor messages, 8 N / sqrt(p) points of halo
  // (width-2 halo), 8 bytes per point (paper §2.2).
  const double halo_bytes = 8.0 * n_linear / std::sqrt(p) * 8.0;
  out.halo = 4.0 * m.alpha_p2p + halo_bytes * m.beta;

  // Global reduction: local masking + binomial tree of log2(p) hops.
  const double reductions = reductions_per_iteration(c, check_frequency);
  const double tree = std::log2(std::max(2.0, static_cast<double>(p))) *
                      m.alpha_reduce(p);
  out.reduction =
      reductions * (kMaskOpsPerPoint * pts_per_rank * m.theta + tree);
  return out;
}

}  // namespace minipop::perf
