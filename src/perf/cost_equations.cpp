#include "src/perf/cost_equations.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace minipop::perf {

std::string to_string(Config c) {
  switch (c) {
    case Config::kCgDiag: return "chrongear+diagonal";
    case Config::kCgEvp: return "chrongear+evp";
    case Config::kPcsiDiag: return "pcsi+diagonal";
    case Config::kPcsiEvp: return "pcsi+evp";
  }
  return "?";
}

bool is_pcsi(Config c) {
  return c == Config::kPcsiDiag || c == Config::kPcsiEvp;
}

bool is_evp(Config c) {
  return c == Config::kCgEvp || c == Config::kPcsiEvp;
}

double compute_ops_per_point(Config c) {
  const double solver_ops = is_pcsi(c) ? 12.0 : 15.0;
  const double precond_ops = is_evp(c) ? 14.0 : 1.0;
  return solver_ops + precond_ops;
}

double reductions_per_iteration(Config c, int check_frequency) {
  MINIPOP_REQUIRE(check_frequency >= 1,
                  "check_frequency=" << check_frequency);
  return is_pcsi(c) ? 1.0 / check_frequency : 1.0;
}

IterationCosts iteration_costs(const MachineProfile& m, Config c,
                               long points, int p, int check_frequency) {
  return iteration_costs(m, c, points, p, check_frequency, 1.0);
}

IterationCosts iteration_costs(const MachineProfile& m, Config c,
                               long points, int p, int check_frequency,
                               double ocean_fraction) {
  MINIPOP_REQUIRE(points > 0 && p > 0, "points=" << points << " p=" << p);
  MINIPOP_REQUIRE(ocean_fraction > 0.0 && ocean_fraction <= 1.0,
                  "ocean_fraction=" << ocean_fraction);
  IterationCosts out;
  const double pts_per_rank = static_cast<double>(points) / p;
  const double n_linear = std::sqrt(static_cast<double>(points));

  // Span execution touches only ocean cells; the dense model is the
  // ocean_fraction = 1 limit.
  out.computation =
      compute_ops_per_point(c) * pts_per_rank * ocean_fraction * m.theta;

  // Boundary update: 4 neighbor messages, 8 N / sqrt(p) points of halo
  // (width-2 halo), 8 bytes per point (paper §2.2). Rims move dense —
  // land bytes included — so this term does not scale with land.
  const double halo_bytes = 8.0 * n_linear / std::sqrt(p) * 8.0;
  out.halo = 4.0 * m.alpha_p2p + halo_bytes * m.beta;

  // Global reduction: local masking + binomial tree of log2(p) hops.
  // The masked partial sum reads ocean cells only under spans.
  const double reductions = reductions_per_iteration(c, check_frequency);
  const double tree = std::log2(std::max(2.0, static_cast<double>(p))) *
                      m.alpha_reduce(p);
  out.reduction =
      reductions *
      (kMaskOpsPerPoint * pts_per_rank * ocean_fraction * m.theta + tree);
  return out;
}

IterationCosts comm_avoid_iteration_costs(const MachineProfile& m, Config c,
                                          long points, int p,
                                          int check_frequency, int k) {
  return comm_avoid_iteration_costs(m, c, points, p, check_frequency, k,
                                    1.0);
}

IterationCosts comm_avoid_iteration_costs(const MachineProfile& m, Config c,
                                          long points, int p,
                                          int check_frequency, int k,
                                          double ocean_fraction) {
  MINIPOP_REQUIRE(is_pcsi(c), "comm-avoiding model needs a pcsi config, got "
                                  << to_string(c));
  MINIPOP_REQUIRE(k >= 1, "depth k=" << k);
  if (k == 1)
    return iteration_costs(m, c, points, p, check_frequency, ocean_fraction);

  IterationCosts out =
      iteration_costs(m, c, points, p, check_frequency, ocean_fraction);
  const double s =
      std::sqrt(static_cast<double>(points) / p);  // subdomain edge

  // Redundant perimeter work: iteration j of a k-group preconditions and
  // updates on extension e = k - j + 1 and evaluates the residual on
  // e - 1. Ops split per point: T_p precond + 4 update at e, 10 residual
  // at e - 1 (the remaining ~2 ops/pt of the paper's 12 are the check
  // masking, already in the reduction term and interior-only).
  const double precond_ops = is_evp(c) ? 14.0 : 1.0;
  double redundant = 0.0;
  for (int e = 1; e <= k; ++e) {
    const double extra_e = 4.0 * e * s + 4.0 * e * e;
    const double extra_em1 = 4.0 * (e - 1) * s + 4.0 * (e - 1) * (e - 1);
    redundant += (precond_ops + 4.0) * extra_e + 10.0 * extra_em1;
  }
  // Ghost-rim land is skipped exactly like interior land, so redundant
  // work is discounted by the same ocean fraction.
  out.computation += redundant / k * ocean_fraction * m.theta;

  // One grouped exchange per k iterations: message latency divides by
  // k; the payload carries width-k rims of the THREE iteration fields
  // {x, dx, r} (vs the baseline's one width-2 rim of x per iteration).
  const double group_bytes = 3.0 * 4.0 * k * s * 8.0;
  out.halo = (4.0 * m.alpha_p2p + group_bytes * m.beta) / k;
  return out;
}

int choose_halo_depth(const MachineProfile& m, Config c, long points, int p,
                      int check_frequency, int max_depth) {
  return choose_halo_depth(m, c, points, p, check_frequency, max_depth,
                           1.0);
}

int choose_halo_depth(const MachineProfile& m, Config c, long points, int p,
                      int check_frequency, int max_depth,
                      double ocean_fraction) {
  if (!is_pcsi(c)) return 1;
  MINIPOP_REQUIRE(max_depth >= 1, "max_depth=" << max_depth);
  int best_k = 1;
  double best = comm_avoid_iteration_costs(m, c, points, p, check_frequency,
                                           1, ocean_fraction)
                    .total();
  for (int k = 2; k <= max_depth; ++k) {
    const double t = comm_avoid_iteration_costs(m, c, points, p,
                                                check_frequency, k,
                                                ocean_fraction)
                         .total();
    if (t < best) {
      best = t;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace minipop::perf
