// Machine profiles for the analytic performance model.
//
// We run on a workstation, not on 16,875 cores of Yellowstone — so wall
// times for the scaling figures come from the paper's own alpha-beta-theta
// cost model (Eqs. 2/3/5/6) evaluated with per-machine constants. All
// *algorithmic* quantities (iteration counts, reductions per iteration,
// message counts, flop counts) are measured from the real solvers in this
// repository; only the four machine constants below are calibrated, once
// per machine, against the anchor numbers the paper reports (19.0 s/day
// ChronGear and 3.6 s/day P-CSI+EVP at 16,875 Yellowstone cores; 26.2 and
// 4.7 s/day on Edison; the ~1,200-core reduction-time minimum of Fig. 10).
// EXPERIMENTS.md documents the calibration.
#pragma once

#include <string>

namespace minipop::perf {

struct MachineProfile {
  std::string name;
  /// Seconds per paper-counted operation (memory-bound stencil/vector
  /// ops including model overheads — NOT peak flops).
  double theta;
  /// Point-to-point message latency [s].
  double alpha_p2p;
  /// Transfer time per byte [s] (inverse network bandwidth).
  double beta;
  /// Allreduce cost per binomial-tree hop at small rank counts [s].
  double alpha_reduce0;
  /// Extra per-hop cost per participating rank [s] — OS noise and
  /// network contention make large reductions superlinearly slow
  /// (paper §5.3 and ref [14]); this reproduces the measured growth.
  double alpha_reduce_per_rank;

  /// Effective allreduce per-hop latency at p ranks.
  double alpha_reduce(int p) const {
    return alpha_reduce0 + alpha_reduce_per_rank * p;
  }
};

/// NCAR Yellowstone: 2.6 GHz Sandy Bridge, 13.6 GBps InfiniBand (§5).
MachineProfile yellowstone_profile();

/// NERSC Edison: 2.4 GHz Ivy Bridge, 8 GBps Aries Dragonfly; noticeably
/// higher reduction variability (§5.3).
MachineProfile edison_profile();

}  // namespace minipop::perf
