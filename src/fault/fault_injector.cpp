#include "src/fault/fault_injector.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "src/util/error.hpp"

namespace minipop::fault {

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

double flip_bit(double v, int bit) {
  const std::uint64_t u = std::bit_cast<std::uint64_t>(v) ^
                          (std::uint64_t{1} << (bit & 63));
  return std::bit_cast<double>(u);
}

}  // namespace

void FaultInjector::install(FaultInjector* inj) {
  g_injector.store(inj, std::memory_order_release);
}

FaultInjector* FaultInjector::active() {
  return g_injector.load(std::memory_order_acquire);
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const FaultRule& r : plan_.rules)
    MINIPOP_REQUIRE(r.probability >= 0.0 && r.probability <= 1.0,
                    "fault probability " << r.probability);
  rule_fires_.assign(plan_.rules.size(), 0);
}

FaultInjector::Stream& FaultInjector::stream_locked(FaultSite site,
                                                    int rank) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<int>(site)) << 32) |
      static_cast<std::uint32_t>(rank);
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    // Per-(site, rank) stream seeded from the plan seed alone: the draw
    // sequence is independent of thread interleaving.
    util::SplitMix64 sm(plan_.seed ^ (key * 0x9e3779b97f4a7c15ULL));
    it = streams_.emplace(key, Stream(sm.next())).first;
  }
  return it->second;
}

const FaultRule* FaultInjector::advance(FaultSite site, int rank,
                                        util::Xoshiro256** rng_out) {
  Stream& s = stream_locked(site, rank);
  const long event = s.events++;
  *rng_out = &s.rng;
  for (std::size_t k = 0; k < plan_.rules.size(); ++k) {
    const FaultRule& r = plan_.rules[k];
    if (r.site != site) continue;
    if (r.rank >= 0 && r.rank != rank) continue;
    if (r.max_fires > 0 && rule_fires_[k] >= r.max_fires) continue;
    bool fire;
    if (r.trigger_event >= 0) {
      fire = (event == r.trigger_event);
    } else {
      // Draw once per event per probabilistic rule, whether or not it
      // fires, so the stream stays aligned with the event ordinal.
      fire = (s.rng.uniform() < r.probability);
    }
    if (!fire) continue;
    ++rule_fires_[k];
    fired_.push_back(FiredFault{site, rank, event});
    return &r;
  }
  return nullptr;
}

void FaultInjector::solver_vector(int rank, double* interior,
                                  std::ptrdiff_t stride, int nx, int ny,
                                  const unsigned char* mask,
                                  std::ptrdiff_t mask_stride) {
  std::lock_guard<std::mutex> lock(mu_);
  util::Xoshiro256* rng;
  const FaultRule* r = advance(FaultSite::kSolverVector, rank, &rng);
  if (r == nullptr || nx <= 0 || ny <= 0) return;
  for (int e = 0; e < std::max(1, r->entries); ++e) {
    // Pick an ocean cell; a handful of retries is enough on any grid
    // that is not almost all land, and a miss just weakens the fault.
    int i = 0, j = 0;
    for (int attempt = 0; attempt < 64; ++attempt) {
      i = static_cast<int>(rng->below(static_cast<std::uint64_t>(nx)));
      j = static_cast<int>(rng->below(static_cast<std::uint64_t>(ny)));
      if (mask == nullptr || mask[j * mask_stride + i]) break;
    }
    double& v = interior[j * stride + i];
    v = r->make_nan ? std::numeric_limits<double>::quiet_NaN()
                    : flip_bit(v, r->bit);
  }
}

void FaultInjector::halo_payload(int rank, double* data, std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  util::Xoshiro256* rng;
  const FaultRule* r = advance(FaultSite::kHaloPayload, rank, &rng);
  if (r == nullptr || n == 0) return;
  double& v = data[rng->below(n)];
  v = r->make_nan ? std::numeric_limits<double>::quiet_NaN()
                  : flip_bit(v, r->bit);
}

void FaultInjector::halo_bitflip(int rank, unsigned char* bytes,
                                 std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  util::Xoshiro256* rng;
  const FaultRule* r = advance(FaultSite::kHaloBitFlip, rank, &rng);
  if (r == nullptr || n == 0) return;
  // Byte-granular flip: the CRC layer must catch ANY wire bit, not just
  // flips that land politely inside a double's mantissa.
  bytes[rng->below(n)] ^=
      static_cast<unsigned char>(1u << (static_cast<unsigned>(r->bit) & 7u));
}

void FaultInjector::coeff_bitflip(int rank, double* const planes[9],
                                  std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  util::Xoshiro256* rng;
  const FaultRule* r = advance(FaultSite::kCoeffBitFlip, rank, &rng);
  if (r == nullptr || n == 0) return;
  double& v = planes[rng->below(9)][rng->below(n)];
  v = r->make_nan ? std::numeric_limits<double>::quiet_NaN()
                  : flip_bit(v, r->bit);
}

void FaultInjector::reduction_corrupt(int rank, double* data,
                                      std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  util::Xoshiro256* rng;
  const FaultRule* r = advance(FaultSite::kReductionCorrupt, rank, &rng);
  if (r == nullptr || n == 0) return;
  double& v = data[rng->below(n)];
  v = r->make_nan ? std::numeric_limits<double>::quiet_NaN()
                  : flip_bit(v, r->bit);
}

MailboxDecision FaultInjector::mailbox(int rank) {
  std::lock_guard<std::mutex> lock(mu_);
  util::Xoshiro256* rng;
  const FaultRule* r = advance(FaultSite::kMailbox, rank, &rng);
  if (r == nullptr) return {};
  return MailboxDecision{true, r->mailbox, r->delay_ms};
}

void FaultInjector::rank_stall(int rank) {
  double stall_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    util::Xoshiro256* rng;
    const FaultRule* r = advance(FaultSite::kRankStall, rank, &rng);
    if (r == nullptr) return;
    stall_ms = r->delay_ms;
  }
  // Sleep outside the lock: a stalled rank must not block other hooks.
  if (stall_ms > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        stall_ms));
}

void FaultInjector::eigen_bounds(int rank, double* nu, double* mu) {
  std::lock_guard<std::mutex> lock(mu_);
  util::Xoshiro256* rng;
  const FaultRule* r = advance(FaultSite::kEigenBounds, rank, &rng);
  if (r == nullptr) return;
  *nu *= r->nu_scale;
  *mu *= r->mu_scale;
}

std::vector<FiredFault> FaultInjector::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

long FaultInjector::fire_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<long>(fired_.size());
}

long FaultInjector::events(FaultSite site, int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<int>(site)) << 32) |
      static_cast<std::uint32_t>(rank);
  auto it = streams_.find(key);
  return it == streams_.end() ? 0 : it->second.events;
}

}  // namespace minipop::fault
