// Declarative description of the faults to inject into one run.
//
// A FaultPlan is a list of FaultRules, each naming an injection site and
// either a per-event probability or a scheduled trigger (fire exactly at
// the Nth event of that site on a rank). Event counters and random
// streams are kept per (site, rank), so a plan is deterministic for a
// given seed regardless of thread interleaving — the same plan replays
// the same faults. An empty plan is the runtime no-op; the compile-time
// gate is MINIPOP_FAULTS (see hooks in fault_injector.hpp).
#pragma once

#include <cstdint>
#include <iterator>
#include <vector>

namespace minipop::fault {

enum class FaultSite {
  kSolverVector,  ///< bit-flip / NaN in a solver vector after a stencil sweep
  kHaloPayload,   ///< bit-flip in a packed halo send buffer
  kMailbox,       ///< drop, delay or duplicate a ThreadComm mailbox message
  kRankStall,     ///< stall a rank for a wall-clock time at a collective post
  kEigenBounds,   ///< corrupt the P-CSI eigenvalue interval [nu, mu]
  kHaloBitFlip,   ///< bit-flip a halo payload AFTER its CRC was computed
  kCoeffBitFlip,  ///< bit-flip a stored 9-point stencil coefficient
  kReductionCorrupt,  ///< corrupt this rank's allreduce contribution
};

/// Names in enumerator order. The site count is DERIVED from this table
/// and the static_assert below pins the table to the last enumerator,
/// so adding a site without naming it (or naming one without adding it)
/// fails at compile time.
inline constexpr const char* kFaultSiteNames[] = {
    "solver_vector", "halo_payload",   "mailbox",
    "rank_stall",    "eigen_bounds",   "halo_bit_flip",
    "coeff_bit_flip", "reduction_corrupt",
};
inline constexpr int kNumFaultSites =
    static_cast<int>(std::size(kFaultSiteNames));
static_assert(static_cast<int>(FaultSite::kReductionCorrupt) + 1 ==
                  kNumFaultSites,
              "FaultSite enumerators and kFaultSiteNames are out of sync; "
              "add the new site's name in enumerator order");

constexpr const char* to_string(FaultSite s) {
  return kFaultSiteNames[static_cast<int>(s)];
}

/// What a fired kMailbox fault does to the message.
enum class MailboxAction { kDrop, kDelay, kDuplicate };

struct FaultRule {
  FaultSite site = FaultSite::kSolverVector;

  /// Restrict the rule to one rank; -1 matches every rank.
  int rank = -1;

  /// Per-event firing probability, used when trigger_event < 0.
  double probability = 0.0;

  /// Fire exactly at this per-(site, rank) event ordinal (0-based);
  /// overrides probability when >= 0. Event ordinals count hook calls:
  /// stencil sweeps for kSolverVector, packed sends for kHaloPayload,
  /// posted messages for kMailbox, collective posts for kRankStall,
  /// solver-entry reads of the bounds for kEigenBounds, CRC-protected
  /// sends for kHaloBitFlip, fp64 operator sweeps for kCoeffBitFlip,
  /// and reduction contributions for kReductionCorrupt.
  long trigger_event = -1;

  /// Stop firing after this many hits (<= 0 means unlimited).
  int max_fires = 1;

  // --- action parameters ---
  /// Bit to flip for the bit-flip sites (0 = lsb of the mantissa,
  /// 62 = top exponent bit; 51 flips the mantissa msb, a large silent
  /// value error that stays finite).
  int bit = 51;
  /// kSolverVector: overwrite with a quiet NaN instead of flipping a bit.
  bool make_nan = false;
  /// kSolverVector: corrupt this many distinct entries per fire.
  int entries = 1;
  MailboxAction mailbox = MailboxAction::kDrop;
  /// kMailbox kDelay: deliver this late; kRankStall: stall duration.
  double delay_ms = 0.0;
  /// kEigenBounds: nu *= nu_scale, mu *= mu_scale (a scale pair like
  /// {1, 100} mimics a badly overestimated spectrum, {-1, 1} breaks the
  /// Chebyshev contraction outright).
  double nu_scale = 1.0;
  double mu_scale = 1.0;
};

struct FaultPlan {
  std::uint64_t seed = 12345;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  FaultPlan& add(const FaultRule& r) {
    rules.push_back(r);
    return *this;
  }
};

}  // namespace minipop::fault
