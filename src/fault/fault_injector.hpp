// Deterministic, seeded fault injector plus the hook entry points the
// communication and solver layers call.
//
// The injector is installed process-globally (FaultScope is the RAII
// form); the hooks consult it on every event. Two gates keep the happy
// path free:
//   * compile time — with MINIPOP_FAULTS == 0 every hook is an empty
//     inline function and the call sites compile to nothing;
//   * run time — with no injector installed (or an empty plan) a hook is
//     a single pointer load.
// Determinism: event counters and random streams are per (site, rank),
// derived from the plan seed alone, so the same plan fires the same
// faults at the same events regardless of thread scheduling.
//
// The fault layer depends only on src/util (raw pointers in the hook
// signatures keep it below src/comm in the layering).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/fault/fault_plan.hpp"
#include "src/util/rng.hpp"

#if !defined(MINIPOP_FAULTS)
#define MINIPOP_FAULTS 0
#endif

namespace minipop::fault {

/// One fault that actually fired (for detection-latency accounting).
struct FiredFault {
  FaultSite site;
  int rank;
  long event;  ///< per-(site, rank) event ordinal at which it fired
};

/// Decision returned by the mailbox hook.
struct MailboxDecision {
  bool fired = false;
  MailboxAction action = MailboxAction::kDrop;
  double delay_ms = 0.0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // --- hook bodies (thread-safe) ---

  /// kSolverVector: corrupt entries of a block interior (nx x ny window
  /// of a padded array with row pitch `stride`). `mask` (pitch
  /// mask_stride, nullptr = all wet) restricts corruption to ocean cells
  /// so the fault cannot land on a point the masked reductions ignore.
  void solver_vector(int rank, double* interior, std::ptrdiff_t stride,
                     int nx, int ny, const unsigned char* mask,
                     std::ptrdiff_t mask_stride);

  /// kHaloPayload: bit-flip an entry of a packed halo send buffer.
  void halo_payload(int rank, double* data, std::size_t n);

  /// kHaloBitFlip: flip one bit of a packed halo payload viewed as raw
  /// bytes. The halo engine calls this AFTER computing the payload CRC,
  /// so it models wire/NIC corruption that the CRC check must catch
  /// (hook_halo_payload, by contrast, fires before the CRC and models
  /// memory corruption at pack time).
  void halo_bitflip(int rank, unsigned char* bytes, std::size_t n);

  /// kCoeffBitFlip: bit-flip one entry of one of the nine stored
  /// stencil coefficient planes (`planes` are the nine base pointers,
  /// each `n` doubles long).
  void coeff_bitflip(int rank, double* const planes[9], std::size_t n);

  /// kReductionCorrupt: corrupt one element of this rank's local
  /// allreduce contribution before it is posted.
  void reduction_corrupt(int rank, double* data, std::size_t n);

  /// kMailbox: decide the fate of a message this rank is posting.
  MailboxDecision mailbox(int rank);

  /// kRankStall: sleep the calling rank if a stall rule fires.
  void rank_stall(int rank);

  /// kEigenBounds: corrupt a P-CSI eigenvalue interval in place.
  void eigen_bounds(int rank, double* nu, double* mu);

  // --- introspection ---
  std::vector<FiredFault> fired() const;
  long fire_count() const;
  /// Events seen at a site on a rank so far.
  long events(FaultSite site, int rank) const;

  // --- global installation ---
  static void install(FaultInjector* inj);
  static FaultInjector* active();

 private:
  struct Stream {
    long events = 0;
    util::Xoshiro256 rng;
    explicit Stream(std::uint64_t seed) : rng(seed) {}
  };

  /// Advance the (site, rank) event counter and return the rule that
  /// fires at this event, if any (nullptr otherwise). `rng_out` receives
  /// the stream's generator for drawing action parameters.
  const FaultRule* advance(FaultSite site, int rank,
                           util::Xoshiro256** rng_out);

  Stream& stream_locked(FaultSite site, int rank);

  FaultPlan plan_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Stream> streams_;  // key: site<<32|rank
  std::vector<int> rule_fires_;                        // hits per rule
  std::vector<FiredFault> fired_;
};

/// RAII installer: builds an injector from `plan` and makes it the
/// process-global one for the scope's lifetime.
class FaultScope {
 public:
  explicit FaultScope(FaultPlan plan) : inj_(std::move(plan)) {
    FaultInjector::install(&inj_);
  }
  ~FaultScope() { FaultInjector::install(nullptr); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  FaultInjector& injector() { return inj_; }

 private:
  FaultInjector inj_;
};

// --- hook entry points (the only calls product code makes) -------------

#if MINIPOP_FAULTS

inline void hook_solver_vector(int rank, double* interior,
                               std::ptrdiff_t stride, int nx, int ny,
                               const unsigned char* mask,
                               std::ptrdiff_t mask_stride) {
  if (FaultInjector* inj = FaultInjector::active())
    inj->solver_vector(rank, interior, stride, nx, ny, mask, mask_stride);
}

inline void hook_halo_payload(int rank, double* data, std::size_t n) {
  if (FaultInjector* inj = FaultInjector::active())
    inj->halo_payload(rank, data, n);
}

inline MailboxDecision hook_mailbox(int rank) {
  if (FaultInjector* inj = FaultInjector::active())
    return inj->mailbox(rank);
  return {};
}

inline void hook_rank_stall(int rank) {
  if (FaultInjector* inj = FaultInjector::active()) inj->rank_stall(rank);
}

inline void hook_eigen_bounds(int rank, double* nu, double* mu) {
  if (FaultInjector* inj = FaultInjector::active())
    inj->eigen_bounds(rank, nu, mu);
}

inline void hook_halo_bitflip(int rank, unsigned char* bytes,
                              std::size_t n) {
  if (FaultInjector* inj = FaultInjector::active())
    inj->halo_bitflip(rank, bytes, n);
}

inline void hook_coeff_bitflip(int rank, double* const planes[9],
                               std::size_t n) {
  if (FaultInjector* inj = FaultInjector::active())
    inj->coeff_bitflip(rank, planes, n);
}

inline void hook_reduction_corrupt(int rank, double* data, std::size_t n) {
  if (FaultInjector* inj = FaultInjector::active())
    inj->reduction_corrupt(rank, data, n);
}

#else  // MINIPOP_FAULTS == 0: hooks compile to nothing.

inline void hook_solver_vector(int, double*, std::ptrdiff_t, int, int,
                               const unsigned char*, std::ptrdiff_t) {}
inline void hook_halo_payload(int, double*, std::size_t) {}
inline MailboxDecision hook_mailbox(int) { return {}; }
inline void hook_rank_stall(int) {}
inline void hook_eigen_bounds(int, double*, double*) {}
inline void hook_halo_bitflip(int, unsigned char*, std::size_t) {}
inline void hook_coeff_bitflip(int, double* const*, std::size_t) {}
inline void hook_reduction_corrupt(int, double*, std::size_t) {}

#endif  // MINIPOP_FAULTS

}  // namespace minipop::fault
