// Error Vector Propagation (EVP) direct solver on a small rectangular
// tile (paper §4.2, Algorithm 3, Eq. 4; Roache [31]).
//
// Solves B x = y where B is the nine-point operator restricted to an
// nx x ny tile with zero Dirichlet values outside. The method:
//
//   1. Guess x on the "initial guess" cells e (the south row and west
//      column of the tile).
//   2. March northeastward: the equation at cell (i-1, j-1) is solved for
//      its northeast neighbor (i, j), so all remaining cells follow
//      directly (Eq. 4) — no linear algebra.
//   3. The equations at the north row and east column (set f, as many as
//      |e|) are not consumed by the march; their residuals F depend
//      affinely on the guess: F = F0 + W g. The k x k influence matrix W
//      (k = nx + ny - 1) is formed once by marching unit vectors, and its
//      LU inverse turns the solve into: march, correct the guess by
//      -W^-1 F0, march again.
//
// Marching amplifies round-off exponentially with tile size; the paper
// reports ~1e-8 error at 12 x 12 in double precision, which is why EVP is
// used as a *block* preconditioner on small tiles rather than a global
// solver. bench_ablation_evp_blocksize reproduces the stability curve.
//
// The simplified variant drops the E/W/N/S coefficients, which for POP's
// B-grid operator are an order of magnitude below the corner ones
// (§4.3); this halves the marching cost with little convergence impact.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/grid/stencil.hpp"
#include "src/linalg/dense.hpp"
#include "src/util/array2d.hpp"

namespace minipop::evp {

struct EvpOptions {
  /// Drop E/W/N/S coefficients inside the tile solve (paper §4.3). The
  /// drop only actually happens when the tile's edge coefficients are
  /// genuinely small (max|edge| < simplified_threshold * max|corner|) —
  /// on strongly anisotropic cells the edge couplings are NOT negligible
  /// and dropping them would wreck the preconditioner.
  bool simplified = false;
  double simplified_threshold = 0.3;
  /// Verify at construction that the tile solves to this relative
  /// accuracy on a test problem (catches marching round-off blow-up on
  /// oversized tiles with a clear error). <= 0 disables — used by the
  /// stability-study benches that intentionally build unstable tiles.
  double validate_accuracy = 1e-4;
};

class EvpTileSolver {
 public:
  /// Build from the nine coefficient fields of a block, restricted to the
  /// tile [i0, i0+nx) x [j0, j0+ny) (block-interior coordinates). The
  /// marching pivot is the NE coefficient, which must be nonzero at every
  /// cell except the tile's north row and east column; use a regularized
  /// (land-free) operator to guarantee that.
  EvpTileSolver(const std::array<util::Field, grid::kNumDirs>& block_coeff,
                int i0, int j0, int nx, int ny,
                const EvpOptions& options = {});

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int i0() const { return i0_; }
  int j0() const { return j0_; }
  /// Size of the initial-guess set e (= nx + ny - 1).
  int guess_size() const { return k_; }

  /// Solve B x = y for the tile. y and x are indexed tile-locally
  /// (nx x ny); x is overwritten.
  void solve(const util::Field& y, util::Field& x) const;

  /// Apply the (possibly simplified) tile operator: out = B in, with zero
  /// Dirichlet outside the tile. For tests and residual studies.
  void apply_operator(const util::Field& in, util::Field& out) const;

  /// One marching sweep (the Eq. 4 recurrence) with the current guess
  /// cells of x as input — the hot kernel inside solve(), exposed for
  /// kernel benchmarks (bench_precision) and stability studies. x must
  /// be nx x ny with the south row / west column holding the guess.
  void march_sweep(const util::Field& y, util::Field& x) const {
    march(y, x);
  }
  /// fp32 marching sweep (requires enable_fp32; checked in march32).
  void march_sweep32(const util::Array2D<float>& y,
                     util::Array2D<float>& x) const {
    march32(y, x);
  }

  /// Flops of one solve in the paper's counting (22 per point full,
  /// 14 per point simplified).
  std::uint64_t solve_flops() const;

  /// Flops spent in set-up (preprocessing; paper: O(26 n^3)).
  std::uint64_t setup_flops() const { return setup_flops_; }

  /// Whether the simplified (edge-dropping) operator was actually used
  /// (the request downgrades itself on anisotropic tiles).
  bool simplified() const { return simplified_; }

  /// Relative error of the construction-time self-check solve (the
  /// paper's 1e-8-at-12x12 round-off figure is observable here).
  double measured_accuracy() const { return measured_accuracy_; }

  // -------------------------------------------------------------------
  // fp32 mirror. Marching amplifies round-off from eps of the working
  // type, so fp32 tiles must be markedly smaller than fp64 ones (the
  // 1e-8-at-12x12 figure becomes O(1) garbage in fp32); callers pick a
  // smaller max tile and validate. The fp32 march replaces the NE-pivot
  // division — the latency-bound op on the march's dependent chain —
  // with a multiply by a precomputed reciprocal.

  /// Build the float coefficient copy + reciprocal NE pivots and
  /// self-check the fp32 solve against the double operator. Throws if
  /// the measured relative error exceeds validate_accuracy (> 0).
  void enable_fp32(double validate_accuracy);
  bool fp32_enabled() const { return fp32_; }
  /// Relative error of the fp32 self-check solve (vs. the exact double
  /// tile operator, so it includes coefficient rounding).
  double measured_accuracy32() const { return measured_accuracy32_; }

  /// fp32 solve B x = y (requires enable_fp32). The guess correction
  /// still runs through the double influence-matrix LU — it is O(k)
  /// work, and the slightly mismatched W (built from unrounded
  /// coefficients) is absorbed by the self-checked second march.
  void solve32(const util::Array2D<float>& y, util::Array2D<float>& x) const;

 private:
  void march(const util::Field& y, util::Field& x) const;
  void residual_at_f(const util::Field& x, const util::Field& y,
                     std::vector<double>& f) const;
  void march32(const util::Array2D<float>& y, util::Array2D<float>& x) const;
  void residual_at_f32(const util::Array2D<float>& x,
                       const util::Array2D<float>& y,
                       std::vector<double>& f) const;

  int i0_, j0_, nx_, ny_, k_;
  bool simplified_;
  /// Tile-local coefficients, zero-padded by one ring: coeff_[d] has
  /// shape (nx+2) x (ny+2) with the tile at offset (1, 1).
  std::array<util::Field, grid::kNumDirs> coeff_;
  std::unique_ptr<linalg::LuFactorization> w_lu_;
  /// Scratch for the guess correction (residuals F and correction g) —
  /// solve()/solve32() run thousands of times per preconditioner sweep
  /// and must not allocate.
  mutable std::vector<double> f_, g_;
  std::uint64_t setup_flops_ = 0;
  double measured_accuracy_ = 0.0;
  bool fp32_ = false;
  /// Float mirror of coeff_ (same padding), plus the reciprocal of the
  /// NE pivot the march multiplies by instead of dividing.
  std::array<util::Array2D<float>, grid::kNumDirs> coeff32_;
  util::Array2D<float> recip_ne32_;
  double measured_accuracy32_ = 0.0;
};

}  // namespace minipop::evp
