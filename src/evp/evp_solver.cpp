#include "src/evp/evp_solver.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace minipop::evp {

namespace {
using grid::Dir;
constexpr int D(Dir d) { return static_cast<int>(d); }
}  // namespace

EvpTileSolver::EvpTileSolver(
    const std::array<util::Field, grid::kNumDirs>& block_coeff, int i0,
    int j0, int nx, int ny, const EvpOptions& options)
    : i0_(i0),
      j0_(j0),
      nx_(nx),
      ny_(ny),
      k_(nx + ny - 1),
      simplified_(options.simplified) {
  MINIPOP_REQUIRE(nx >= 1 && ny >= 1, "tile " << nx << "x" << ny);
  const auto& c0 = block_coeff[D(Dir::kCenter)];
  MINIPOP_REQUIRE(i0 >= 0 && j0 >= 0 && i0 + nx <= c0.nx() &&
                      j0 + ny <= c0.ny(),
                  "tile [" << i0 << "," << i0 + nx << ")x[" << j0 << ","
                           << j0 + ny << ") outside block " << c0.nx() << "x"
                           << c0.ny());

  // The simplified variant is only valid where the edge coefficients are
  // genuinely an order smaller than the corner ones (paper §4.3 — true
  // for POP's production grids, not for arbitrarily anisotropic tiles).
  if (simplified_) {
    double max_edge = 0.0, max_corner = 0.0;
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        for (Dir d : {Dir::kEast, Dir::kWest, Dir::kNorth, Dir::kSouth})
          max_edge = std::max(max_edge,
                              std::abs(block_coeff[D(d)](i0 + i, j0 + j)));
        for (Dir d : {Dir::kNorthEast, Dir::kNorthWest, Dir::kSouthEast,
                      Dir::kSouthWest})
          max_corner = std::max(
              max_corner, std::abs(block_coeff[D(d)](i0 + i, j0 + j)));
      }
    if (max_edge > options.simplified_threshold * max_corner)
      simplified_ = false;
  }

  // Copy coefficients, zero-padded by one ring.
  for (int d = 0; d < grid::kNumDirs; ++d) {
    coeff_[d] = util::Field(nx + 2, ny + 2, 0.0);
    const bool is_edge = (d == D(Dir::kEast) || d == D(Dir::kWest) ||
                          d == D(Dir::kNorth) || d == D(Dir::kSouth));
    if (simplified_ && is_edge) continue;  // paper §4.3 variant
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i)
        coeff_[d](i + 1, j + 1) = block_coeff[d](i0 + i, j0 + j);
  }

  // Marching pivot must be nonzero wherever an equation is consumed.
  for (int j = 0; j + 1 < ny; ++j)
    for (int i = 0; i + 1 < nx; ++i)
      MINIPOP_REQUIRE(coeff_[D(Dir::kNorthEast)](i + 1, j + 1) != 0.0,
                      "zero NE pivot at tile cell (" << i << "," << j
                      << ") — EVP needs a regularized (land-free) operator");

  // Preprocessing: influence matrix W by marching unit guesses with zero
  // right-hand side, then its LU factorization (Algorithm 3, steps 1-8).
  const util::Field zero_y(nx, ny, 0.0);
  linalg::DenseMatrix w(k_, k_);
  util::Field x(nx, ny);
  std::vector<double> f(k_);
  for (int m = 0; m < k_; ++m) {
    x.fill(0.0);
    if (m < nx)
      x(m, 0) = 1.0;
    else
      x(0, m - nx + 1) = 1.0;
    march(zero_y, x);
    residual_at_f(x, zero_y, f);
    for (int r = 0; r < k_; ++r) w(r, m) = f[r];
  }
  w_lu_ = std::make_unique<linalg::LuFactorization>(std::move(w));
  f_.resize(k_);
  g_.resize(k_);

  const std::uint64_t pts = static_cast<std::uint64_t>(nx) * ny;
  const std::uint64_t march_ops = (simplified_ ? 5u : 9u) * pts;
  setup_flops_ = static_cast<std::uint64_t>(k_) * march_ops +
                 static_cast<std::uint64_t>(k_) * k_ * k_;

  // Self-check: EVP marching amplifies round-off with tile size; verify
  // the tile is within its stability range (paper: ~1e-8 at 12x12).
  {
    util::Field x_ref(nx, ny), y(nx, ny), x_got;
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i)
        x_ref(i, j) = ((i * 7 + j * 13) % 11 - 5) / 5.0;
    apply_operator(x_ref, y);
    solve(y, x_got);
    double err = 0.0, scale = 0.0;
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        err = std::max(err, std::abs(x_got(i, j) - x_ref(i, j)));
        scale = std::max(scale, std::abs(x_ref(i, j)));
      }
    measured_accuracy_ = scale > 0 ? err / scale : 0.0;
    if (options.validate_accuracy > 0) {
      MINIPOP_REQUIRE(measured_accuracy_ <= options.validate_accuracy,
                      "EVP tile " << nx << "x" << ny
                                  << " is numerically unstable (error "
                                  << measured_accuracy_
                                  << "); use smaller tiles (max_tile <= 12)");
    }
  }
}

void EvpTileSolver::march(const util::Field& y, util::Field& x) const {
  // The guess cells (south row, west column) of x are inputs; everything
  // else is overwritten by the Eq. 4 recurrence.
  const auto& cc = coeff_[D(Dir::kCenter)];
  const auto& ce = coeff_[D(Dir::kEast)];
  const auto& cw = coeff_[D(Dir::kWest)];
  const auto& cn = coeff_[D(Dir::kNorth)];
  const auto& cs = coeff_[D(Dir::kSouth)];
  const auto& cne = coeff_[D(Dir::kNorthEast)];
  const auto& cnw = coeff_[D(Dir::kNorthWest)];
  const auto& cse = coeff_[D(Dir::kSouthEast)];
  const auto& csw = coeff_[D(Dir::kSouthWest)];

  // X(a, b): tile value with zero Dirichlet outside.
  auto X = [&](int a, int b) -> double {
    return (a >= 0 && a < nx_ && b >= 0 && b < ny_) ? x(a, b) : 0.0;
  };
  // Checked form of the recurrence, for cells whose 3x3 read window can
  // leave the tile (the first marching row and column).
  auto step_checked = [&](int a, int b) {
    const int ea = a - 1;
    const int eb = b - 1;
    const int I = ea + 1;  // padded coefficient coordinates
    const int J = eb + 1;
    const double sum =
        cc(I, J) * X(ea, eb) + ce(I, J) * X(ea + 1, eb) +
        cw(I, J) * X(ea - 1, eb) + cn(I, J) * X(ea, eb + 1) +
        cs(I, J) * X(ea, eb - 1) + cnw(I, J) * X(ea - 1, eb + 1) +
        cse(I, J) * X(ea + 1, eb - 1) + csw(I, J) * X(ea - 1, eb - 1);
    x(a, b) = (y(ea, eb) - sum) / cne(I, J);
  };

  // The recurrence at (a, b) reads x(a-2..a, b-2..b): once a, b >= 2
  // every access is in-bounds, so the zero-Dirichlet checks and the
  // per-access index arithmetic are dead weight on the (serial)
  // dependent chain. Peel the checked boundary and hoist row pointers;
  // the expression and FP order are identical to the checked form, so
  // results are bit-for-bit unchanged.
  const std::ptrdiff_t cp = cc.nx();  // padded coefficient pitch
  for (int b = 1; b < ny_; ++b) {
    if (b == 1 || nx_ == 1) {  // 1-wide tiles have no interior column
      for (int a = 1; a < nx_; ++a) step_checked(a, b);
      continue;
    }
    step_checked(1, b);
    const std::ptrdiff_t J = b;  // = eb + 1
    const double* ccJ = cc.data() + J * cp;
    const double* ceJ = ce.data() + J * cp;
    const double* cwJ = cw.data() + J * cp;
    const double* cnJ = cn.data() + J * cp;
    const double* csJ = cs.data() + J * cp;
    const double* cneJ = cne.data() + J * cp;
    const double* cnwJ = cnw.data() + J * cp;
    const double* cseJ = cse.data() + J * cp;
    const double* cswJ = csw.data() + J * cp;
    const double* yb = y.data() + static_cast<std::ptrdiff_t>(b - 1) * nx_;
    double* xb = x.data() + static_cast<std::ptrdiff_t>(b) * nx_;
    const double* xb1 = xb - nx_;      // e-row eb (= tile row b - 1)
    const double* xb2 = xb - 2 * nx_;  // tile row b - 2
    for (int a = 2; a < nx_; ++a) {
      const int ea = a - 1;
      const double sum =
          ccJ[a] * xb1[ea] + ceJ[a] * xb1[ea + 1] + cwJ[a] * xb1[ea - 1] +
          cnJ[a] * xb[ea] + csJ[a] * xb2[ea] + cnwJ[a] * xb[ea - 1] +
          cseJ[a] * xb2[ea + 1] + cswJ[a] * xb2[ea - 1];
      xb[a] = (yb[ea] - sum) / cneJ[a];
    }
  }
}

void EvpTileSolver::apply_operator(const util::Field& in,
                                   util::Field& out) const {
  MINIPOP_REQUIRE(in.nx() == nx_ && in.ny() == ny_, "tile shape mismatch");
  if (out.nx() != nx_ || out.ny() != ny_) out = util::Field(nx_, ny_);
  auto X = [&](int a, int b) -> double {
    return (a >= 0 && a < nx_ && b >= 0 && b < ny_) ? in(a, b) : 0.0;
  };
  for (int b = 0; b < ny_; ++b)
    for (int a = 0; a < nx_; ++a) {
      double acc = 0.0;
      for (int d = 0; d < grid::kNumDirs; ++d) {
        const auto [di, dj] = grid::kDirOffset[d];
        acc += coeff_[d](a + 1, b + 1) * X(a + di, b + dj);
      }
      out(a, b) = acc;
    }
}

void EvpTileSolver::residual_at_f(const util::Field& x, const util::Field& y,
                                  std::vector<double>& f) const {
  f.resize(k_);
  auto X = [&](int a, int b) -> double {
    return (a >= 0 && a < nx_ && b >= 0 && b < ny_) ? x(a, b) : 0.0;
  };
  auto row_residual = [&](int a, int b) -> double {
    double acc = -y(a, b);
    for (int d = 0; d < grid::kNumDirs; ++d) {
      const auto [di, dj] = grid::kDirOffset[d];
      acc += coeff_[d](a + 1, b + 1) * X(a + di, b + dj);
    }
    return acc;
  };
  for (int a = 0; a < nx_; ++a) f[a] = row_residual(a, ny_ - 1);
  for (int b = 0; b + 1 < ny_; ++b) f[nx_ + b] = row_residual(nx_ - 1, b);
}

void EvpTileSolver::solve(const util::Field& y, util::Field& x) const {
  MINIPOP_REQUIRE(y.nx() == nx_ && y.ny() == ny_, "tile rhs shape mismatch");
  if (x.nx() != nx_ || x.ny() != ny_) x = util::Field(nx_, ny_);

  // Algorithm 3, solving phase: march with zero guess, correct the guess
  // by -W^{-1} F, march again.
  x.fill(0.0);
  march(y, x);
  residual_at_f(x, y, f_);
  w_lu_->solve_into(f_.data(), g_.data());
  for (int m = 0; m < k_; ++m) {
    if (m < nx_)
      x(m, 0) = -g_[m];
    else
      x(0, m - nx_ + 1) = -g_[m];
  }
  march(y, x);
}

void EvpTileSolver::enable_fp32(double validate_accuracy) {
  if (fp32_) return;
  for (int d = 0; d < grid::kNumDirs; ++d) {
    const auto& c = coeff_[d];
    coeff32_[d] = util::Array2D<float>(c.nx(), c.ny(), 0.0f);
    for (int j = 0; j < c.ny(); ++j)
      for (int i = 0; i < c.nx(); ++i)
        coeff32_[d](i, j) = static_cast<float>(c(i, j));
  }
  // Reciprocal pivots, computed in double and rounded once. Cells whose
  // equation the march never consumes keep 0 (never read).
  const auto& cne = coeff_[D(Dir::kNorthEast)];
  recip_ne32_ = util::Array2D<float>(cne.nx(), cne.ny(), 0.0f);
  for (int j = 0; j + 1 < ny_; ++j)
    for (int i = 0; i + 1 < nx_; ++i)
      recip_ne32_(i + 1, j + 1) =
          static_cast<float>(1.0 / cne(i + 1, j + 1));
  fp32_ = true;

  // Self-check against the *double* tile operator, so the measured error
  // includes coefficient rounding, not just marching round-off.
  util::Field x_ref(nx_, ny_), y(nx_, ny_);
  for (int j = 0; j < ny_; ++j)
    for (int i = 0; i < nx_; ++i)
      x_ref(i, j) = ((i * 7 + j * 13) % 11 - 5) / 5.0;
  apply_operator(x_ref, y);
  util::Array2D<float> y32(nx_, ny_), x32(nx_, ny_);
  for (int j = 0; j < ny_; ++j)
    for (int i = 0; i < nx_; ++i) y32(i, j) = static_cast<float>(y(i, j));
  solve32(y32, x32);
  double err = 0.0, scale = 0.0;
  for (int j = 0; j < ny_; ++j)
    for (int i = 0; i < nx_; ++i) {
      err = std::max(err,
                     std::abs(static_cast<double>(x32(i, j)) - x_ref(i, j)));
      scale = std::max(scale, std::abs(x_ref(i, j)));
    }
  measured_accuracy32_ = scale > 0 ? err / scale : 0.0;
  if (validate_accuracy > 0) {
    MINIPOP_REQUIRE(measured_accuracy32_ <= validate_accuracy,
                    "EVP tile " << nx_ << "x" << ny_
                                << " is numerically unstable in fp32 (error "
                                << measured_accuracy32_
                                << "); use smaller fp32 tiles");
  }
}

void EvpTileSolver::march32(const util::Array2D<float>& y,
                            util::Array2D<float>& x) const {
  MINIPOP_REQUIRE(fp32_, "march32 before enable_fp32");
  const auto& cc = coeff32_[D(Dir::kCenter)];
  const auto& ce = coeff32_[D(Dir::kEast)];
  const auto& cw = coeff32_[D(Dir::kWest)];
  const auto& cn = coeff32_[D(Dir::kNorth)];
  const auto& cs = coeff32_[D(Dir::kSouth)];
  const auto& cnw = coeff32_[D(Dir::kNorthWest)];
  const auto& cse = coeff32_[D(Dir::kSouthEast)];
  const auto& csw = coeff32_[D(Dir::kSouthWest)];
  const auto& rne = recip_ne32_;

  auto X = [&](int a, int b) -> float {
    return (a >= 0 && a < nx_ && b >= 0 && b < ny_) ? x(a, b) : 0.0f;
  };
  // The fp32 march has no bit-reproducibility contract (its accuracy is
  // gated by the enable_fp32 self-check), so unlike march() it is free
  // to re-associate the sum: the terms reading the row being marched —
  // cnw * x(a-2, b) and cn * x(a-1, b) — go LAST, so the serial
  // recurrence chain is mul + add + sub + mul instead of threading
  // through half the addition tree. march() cannot do this: reordering
  // would change fp64 results bit-wise.
  auto step_checked = [&](int a, int b) {
    const int ea = a - 1;
    const int eb = b - 1;
    const int I = ea + 1;
    const int J = eb + 1;
    const float sum =
        cc(I, J) * X(ea, eb) + ce(I, J) * X(ea + 1, eb) +
        cw(I, J) * X(ea - 1, eb) + cs(I, J) * X(ea, eb - 1) +
        cse(I, J) * X(ea + 1, eb - 1) + csw(I, J) * X(ea - 1, eb - 1) +
        cnw(I, J) * X(ea - 1, eb + 1) + cn(I, J) * X(ea, eb + 1);
    x(a, b) = (y(ea, eb) - sum) * rne(I, J);
  };

  // Same boundary peel + row-pointer hoist as march().
  const std::ptrdiff_t cp = cc.nx();
  for (int b = 1; b < ny_; ++b) {
    if (b == 1 || nx_ == 1) {  // 1-wide tiles have no interior column
      for (int a = 1; a < nx_; ++a) step_checked(a, b);
      continue;
    }
    step_checked(1, b);
    const std::ptrdiff_t J = b;
    const float* ccJ = cc.data() + J * cp;
    const float* ceJ = ce.data() + J * cp;
    const float* cwJ = cw.data() + J * cp;
    const float* cnJ = cn.data() + J * cp;
    const float* csJ = cs.data() + J * cp;
    const float* rneJ = rne.data() + J * cp;
    const float* cnwJ = cnw.data() + J * cp;
    const float* cseJ = cse.data() + J * cp;
    const float* cswJ = csw.data() + J * cp;
    const float* yb = y.data() + static_cast<std::ptrdiff_t>(b - 1) * nx_;
    float* xb = x.data() + static_cast<std::ptrdiff_t>(b) * nx_;
    const float* xb1 = xb - nx_;
    const float* xb2 = xb - 2 * nx_;
    for (int a = 2; a < nx_; ++a) {
      const int ea = a - 1;
      const float sum =
          ccJ[a] * xb1[ea] + ceJ[a] * xb1[ea + 1] + cwJ[a] * xb1[ea - 1] +
          csJ[a] * xb2[ea] + cseJ[a] * xb2[ea + 1] + cswJ[a] * xb2[ea - 1] +
          cnwJ[a] * xb[ea - 1] + cnJ[a] * xb[ea];
      xb[a] = (yb[ea] - sum) * rneJ[a];
    }
  }
}

void EvpTileSolver::residual_at_f32(const util::Array2D<float>& x,
                                    const util::Array2D<float>& y,
                                    std::vector<double>& f) const {
  f.resize(k_);
  auto X = [&](int a, int b) -> double {
    return (a >= 0 && a < nx_ && b >= 0 && b < ny_)
               ? static_cast<double>(x(a, b))
               : 0.0;
  };
  // O(nx + ny) cells only; accumulate in double for the LU correction.
  auto row_residual = [&](int a, int b) -> double {
    double acc = -static_cast<double>(y(a, b));
    for (int d = 0; d < grid::kNumDirs; ++d) {
      const auto [di, dj] = grid::kDirOffset[d];
      acc += static_cast<double>(coeff32_[d](a + 1, b + 1)) * X(a + di, b + dj);
    }
    return acc;
  };
  for (int a = 0; a < nx_; ++a) f[a] = row_residual(a, ny_ - 1);
  for (int b = 0; b + 1 < ny_; ++b) f[nx_ + b] = row_residual(nx_ - 1, b);
}

void EvpTileSolver::solve32(const util::Array2D<float>& y,
                            util::Array2D<float>& x) const {
  MINIPOP_REQUIRE(fp32_, "solve32 before enable_fp32");
  MINIPOP_REQUIRE(y.nx() == nx_ && y.ny() == ny_, "tile rhs shape mismatch");
  if (x.nx() != nx_ || x.ny() != ny_) x = util::Array2D<float>(nx_, ny_);

  x.fill(0.0f);
  march32(y, x);
  residual_at_f32(x, y, f_);
  w_lu_->solve_into(f_.data(), g_.data());
  for (int m = 0; m < k_; ++m) {
    if (m < nx_)
      x(m, 0) = static_cast<float>(-g_[m]);
    else
      x(0, m - nx_ + 1) = static_cast<float>(-g_[m]);
  }
  march32(y, x);
}

std::uint64_t EvpTileSolver::solve_flops() const {
  const std::uint64_t pts = static_cast<std::uint64_t>(nx_) * ny_;
  // Paper counting: two marches + the k x k correction solve, i.e.
  // ~22 n^2 full, ~14 n^2 simplified (§4.2-4.3).
  return 2 * (simplified_ ? 5u : 9u) * pts +
         static_cast<std::uint64_t>(k_) * k_;
}

}  // namespace minipop::evp
