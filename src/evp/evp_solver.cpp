#include "src/evp/evp_solver.hpp"

#include <cmath>

#include "src/util/error.hpp"

namespace minipop::evp {

namespace {
using grid::Dir;
constexpr int D(Dir d) { return static_cast<int>(d); }
}  // namespace

EvpTileSolver::EvpTileSolver(
    const std::array<util::Field, grid::kNumDirs>& block_coeff, int i0,
    int j0, int nx, int ny, const EvpOptions& options)
    : i0_(i0),
      j0_(j0),
      nx_(nx),
      ny_(ny),
      k_(nx + ny - 1),
      simplified_(options.simplified) {
  MINIPOP_REQUIRE(nx >= 1 && ny >= 1, "tile " << nx << "x" << ny);
  const auto& c0 = block_coeff[D(Dir::kCenter)];
  MINIPOP_REQUIRE(i0 >= 0 && j0 >= 0 && i0 + nx <= c0.nx() &&
                      j0 + ny <= c0.ny(),
                  "tile [" << i0 << "," << i0 + nx << ")x[" << j0 << ","
                           << j0 + ny << ") outside block " << c0.nx() << "x"
                           << c0.ny());

  // The simplified variant is only valid where the edge coefficients are
  // genuinely an order smaller than the corner ones (paper §4.3 — true
  // for POP's production grids, not for arbitrarily anisotropic tiles).
  if (simplified_) {
    double max_edge = 0.0, max_corner = 0.0;
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        for (Dir d : {Dir::kEast, Dir::kWest, Dir::kNorth, Dir::kSouth})
          max_edge = std::max(max_edge,
                              std::abs(block_coeff[D(d)](i0 + i, j0 + j)));
        for (Dir d : {Dir::kNorthEast, Dir::kNorthWest, Dir::kSouthEast,
                      Dir::kSouthWest})
          max_corner = std::max(
              max_corner, std::abs(block_coeff[D(d)](i0 + i, j0 + j)));
      }
    if (max_edge > options.simplified_threshold * max_corner)
      simplified_ = false;
  }

  // Copy coefficients, zero-padded by one ring.
  for (int d = 0; d < grid::kNumDirs; ++d) {
    coeff_[d] = util::Field(nx + 2, ny + 2, 0.0);
    const bool is_edge = (d == D(Dir::kEast) || d == D(Dir::kWest) ||
                          d == D(Dir::kNorth) || d == D(Dir::kSouth));
    if (simplified_ && is_edge) continue;  // paper §4.3 variant
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i)
        coeff_[d](i + 1, j + 1) = block_coeff[d](i0 + i, j0 + j);
  }

  // Marching pivot must be nonzero wherever an equation is consumed.
  for (int j = 0; j + 1 < ny; ++j)
    for (int i = 0; i + 1 < nx; ++i)
      MINIPOP_REQUIRE(coeff_[D(Dir::kNorthEast)](i + 1, j + 1) != 0.0,
                      "zero NE pivot at tile cell (" << i << "," << j
                      << ") — EVP needs a regularized (land-free) operator");

  // Preprocessing: influence matrix W by marching unit guesses with zero
  // right-hand side, then its LU factorization (Algorithm 3, steps 1-8).
  const util::Field zero_y(nx, ny, 0.0);
  linalg::DenseMatrix w(k_, k_);
  util::Field x(nx, ny);
  std::vector<double> f(k_);
  for (int m = 0; m < k_; ++m) {
    x.fill(0.0);
    if (m < nx)
      x(m, 0) = 1.0;
    else
      x(0, m - nx + 1) = 1.0;
    march(zero_y, x);
    residual_at_f(x, zero_y, f);
    for (int r = 0; r < k_; ++r) w(r, m) = f[r];
  }
  w_lu_ = std::make_unique<linalg::LuFactorization>(std::move(w));

  const std::uint64_t pts = static_cast<std::uint64_t>(nx) * ny;
  const std::uint64_t march_ops = (simplified_ ? 5u : 9u) * pts;
  setup_flops_ = static_cast<std::uint64_t>(k_) * march_ops +
                 static_cast<std::uint64_t>(k_) * k_ * k_;

  // Self-check: EVP marching amplifies round-off with tile size; verify
  // the tile is within its stability range (paper: ~1e-8 at 12x12).
  {
    util::Field x_ref(nx, ny), y(nx, ny), x_got;
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i)
        x_ref(i, j) = ((i * 7 + j * 13) % 11 - 5) / 5.0;
    apply_operator(x_ref, y);
    solve(y, x_got);
    double err = 0.0, scale = 0.0;
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        err = std::max(err, std::abs(x_got(i, j) - x_ref(i, j)));
        scale = std::max(scale, std::abs(x_ref(i, j)));
      }
    measured_accuracy_ = scale > 0 ? err / scale : 0.0;
    if (options.validate_accuracy > 0) {
      MINIPOP_REQUIRE(measured_accuracy_ <= options.validate_accuracy,
                      "EVP tile " << nx << "x" << ny
                                  << " is numerically unstable (error "
                                  << measured_accuracy_
                                  << "); use smaller tiles (max_tile <= 12)");
    }
  }
}

void EvpTileSolver::march(const util::Field& y, util::Field& x) const {
  // The guess cells (south row, west column) of x are inputs; everything
  // else is overwritten by the Eq. 4 recurrence.
  const auto& cc = coeff_[D(Dir::kCenter)];
  const auto& ce = coeff_[D(Dir::kEast)];
  const auto& cw = coeff_[D(Dir::kWest)];
  const auto& cn = coeff_[D(Dir::kNorth)];
  const auto& cs = coeff_[D(Dir::kSouth)];
  const auto& cne = coeff_[D(Dir::kNorthEast)];
  const auto& cnw = coeff_[D(Dir::kNorthWest)];
  const auto& cse = coeff_[D(Dir::kSouthEast)];
  const auto& csw = coeff_[D(Dir::kSouthWest)];

  // X(a, b): tile value with zero Dirichlet outside.
  auto X = [&](int a, int b) -> double {
    return (a >= 0 && a < nx_ && b >= 0 && b < ny_) ? x(a, b) : 0.0;
  };

  for (int b = 1; b < ny_; ++b) {
    for (int a = 1; a < nx_; ++a) {
      const int ea = a - 1;
      const int eb = b - 1;
      const int I = ea + 1;  // padded coefficient coordinates
      const int J = eb + 1;
      double sum = cc(I, J) * X(ea, eb) + ce(I, J) * X(ea + 1, eb) +
                   cw(I, J) * X(ea - 1, eb) + cn(I, J) * X(ea, eb + 1) +
                   cs(I, J) * X(ea, eb - 1) + cnw(I, J) * X(ea - 1, eb + 1) +
                   cse(I, J) * X(ea + 1, eb - 1) +
                   csw(I, J) * X(ea - 1, eb - 1);
      x(a, b) = (y(ea, eb) - sum) / cne(I, J);
    }
  }
}

void EvpTileSolver::apply_operator(const util::Field& in,
                                   util::Field& out) const {
  MINIPOP_REQUIRE(in.nx() == nx_ && in.ny() == ny_, "tile shape mismatch");
  if (out.nx() != nx_ || out.ny() != ny_) out = util::Field(nx_, ny_);
  auto X = [&](int a, int b) -> double {
    return (a >= 0 && a < nx_ && b >= 0 && b < ny_) ? in(a, b) : 0.0;
  };
  for (int b = 0; b < ny_; ++b)
    for (int a = 0; a < nx_; ++a) {
      double acc = 0.0;
      for (int d = 0; d < grid::kNumDirs; ++d) {
        const auto [di, dj] = grid::kDirOffset[d];
        acc += coeff_[d](a + 1, b + 1) * X(a + di, b + dj);
      }
      out(a, b) = acc;
    }
}

void EvpTileSolver::residual_at_f(const util::Field& x, const util::Field& y,
                                  std::vector<double>& f) const {
  f.resize(k_);
  auto X = [&](int a, int b) -> double {
    return (a >= 0 && a < nx_ && b >= 0 && b < ny_) ? x(a, b) : 0.0;
  };
  auto row_residual = [&](int a, int b) -> double {
    double acc = -y(a, b);
    for (int d = 0; d < grid::kNumDirs; ++d) {
      const auto [di, dj] = grid::kDirOffset[d];
      acc += coeff_[d](a + 1, b + 1) * X(a + di, b + dj);
    }
    return acc;
  };
  for (int a = 0; a < nx_; ++a) f[a] = row_residual(a, ny_ - 1);
  for (int b = 0; b + 1 < ny_; ++b) f[nx_ + b] = row_residual(nx_ - 1, b);
}

void EvpTileSolver::solve(const util::Field& y, util::Field& x) const {
  MINIPOP_REQUIRE(y.nx() == nx_ && y.ny() == ny_, "tile rhs shape mismatch");
  if (x.nx() != nx_ || x.ny() != ny_) x = util::Field(nx_, ny_);

  // Algorithm 3, solving phase: march with zero guess, correct the guess
  // by -W^{-1} F, march again.
  x.fill(0.0);
  march(y, x);
  std::vector<double> f(k_);
  residual_at_f(x, y, f);
  std::vector<double> g = w_lu_->solve(f);
  for (int m = 0; m < k_; ++m) {
    if (m < nx_)
      x(m, 0) = -g[m];
    else
      x(0, m - nx_ + 1) = -g[m];
  }
  march(y, x);
}

std::uint64_t EvpTileSolver::solve_flops() const {
  const std::uint64_t pts = static_cast<std::uint64_t>(nx_) * ny_;
  // Paper counting: two marches + the k x k correction solve, i.e.
  // ~22 n^2 full, ~14 n^2 simplified (§4.2-4.3).
  return 2 * (simplified_ ? 5u : 9u) * pts +
         static_cast<std::uint64_t>(k_) * k_;
}

}  // namespace minipop::evp
