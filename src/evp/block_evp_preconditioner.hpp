// Block-EVP preconditioner (paper §4): M = blockdiag(B~_i), where each
// B~_i is the nine-point operator restricted to a tile and solved
// *exactly* by the EVP marching method. Applying M^-1 is embarrassingly
// parallel (each rank solves only its own tiles) and costs O(n^2) per
// tile — versus O(n^4) for LU — which is what makes it viable per
// iteration.
//
// Land handling: marching cannot cross land (identity rows have no NE
// pivot), so the preconditioner tiles are assembled from a *regularized*
// operator in which land depth is replaced by a small positive epsilon.
// The regularized matrix is SPD, agrees with the true operator on the
// open ocean (the spurious coastal coupling is O(epsilon)), and every
// tile of it is exactly EVP-solvable. The outer Krylov/Chebyshev solver
// still uses the exact masked operator; only M changes, and a
// preconditioner only needs to be a good SPD approximation. Preconditioner
// output is re-masked to keep iterates zero on land.
//
// Tiling: the paper applies EVP to one process block. Marching round-off
// grows with tile size (stable to ~1e-8 at 12x12), so large process
// blocks are subdivided into tiles of at most `max_tile` cells per side —
// a strictly finer block-diagonal preconditioner with the same parallel
// structure. Set max_tile = 0 to force whole-block tiles (the paper's
// configuration at high core counts).
#pragma once

#include <memory>
#include <vector>

#include "src/evp/evp_solver.hpp"
#include "src/solver/preconditioner.hpp"

namespace minipop::evp {

struct BlockEvpOptions {
  /// Maximum tile side; process blocks larger than this are subdivided.
  /// 0 means "never subdivide" (whole-block EVP, as in the paper).
  int max_tile = 12;
  /// Use the simplified (corner-only) marching operator (paper §4.3).
  bool simplified = true;
  /// Land depth replacement as a fraction of the deepest ocean cell.
  double land_epsilon = 0.02;
  /// Required relative accuracy of each tile's marching solve; tiles
  /// failing the self-check subdivide until they meet it. Marching
  /// round-off is also an asymmetry of the effective preconditioner:
  /// Krylov methods that are sensitive to non-SPD preconditioners
  /// (e.g. pipelined CG) need this tightened to ~1e-8.
  double tile_accuracy = 1e-4;
  /// Maximum tile side of the fp32 mirror tiles. Marching amplifies
  /// round-off from eps of the working type, so fp32 tiles must be much
  /// smaller than fp64 ones: 12x12 turns eps32 into O(1) error, 6x6
  /// stays preconditioner-grade. 0 inherits max_tile (NOT recommended).
  int max_tile32 = 6;
  /// Required relative accuracy of the fp32 tile self-check; fp32 tiles
  /// failing it subdivide, like the fp64 path. Looser than
  /// tile_accuracy: the fp32 tiles only precondition fp32 inner sweeps
  /// whose own accuracy floor is ~1e-7.
  double tile_accuracy32 = 5e-3;
};

/// Depth field with land (<= 0) replaced by epsilon_fraction * max depth.
util::Field regularize_land_depth(const util::Field& depth,
                                  double epsilon_fraction);

class BlockEvpPreconditioner final : public solver::Preconditioner {
 public:
  /// `op` is the true (masked) distributed operator; `grid` and `depth`
  /// are the inputs its stencil was assembled from, used to build the
  /// regularized preconditioner stencil with the same phi.
  BlockEvpPreconditioner(const solver::DistOperator& op,
                         const grid::CurvilinearGrid& grid,
                         const util::Field& depth,
                         const BlockEvpOptions& options = {});

  void apply(comm::Communicator& comm, const comm::DistField& in,
             comm::DistField& out) override;

  /// fp32 apply. The fp32 tile set is built lazily on first use (from
  /// the same regularized coefficients, with the smaller max_tile32 and
  /// its own self-check/subdivision), so fp64-only runs pay nothing.
  void apply(comm::Communicator& comm, const comm::DistField32& in,
             comm::DistField32& out) override;

  std::string name() const override {
    return options_.simplified ? "block-evp" : "block-evp-full";
  }

  const BlockEvpOptions& options() const { return options_; }
  int num_tiles() const { return static_cast<int>(tiles_.size()); }
  /// fp32 mirror tiles (0 until the first fp32 apply builds them).
  int num_tiles32() const { return static_cast<int>(tiles32_.size()); }
  /// Tiles that failed the marching accuracy self-check and were split
  /// (strong local anisotropy); purely informational.
  int subdivided_tiles() const { return subdivided_tiles_; }
  /// Tiles actually using the simplified (edge-dropping) marching — the
  /// per-tile anisotropy guard may veto the request.
  int simplified_tiles() const;

  /// Total preprocessing flops across this rank's tiles (paper §4.3
  /// discusses the low setup cost; bench_fig06 reports it).
  std::uint64_t setup_flops() const { return setup_flops_; }

 private:
  struct Tile {
    int local_block;
    std::unique_ptr<EvpTileSolver> solver;
  };

  void build_tiles32();

  const solver::DistOperator* op_;
  BlockEvpOptions options_;
  std::vector<Tile> tiles_;
  std::uint64_t setup_flops_ = 0;
  int subdivided_tiles_ = 0;
  /// Regularized per-block coefficients, kept for the lazy fp32 tile
  /// build (the fp64 tiles consumed them at construction).
  std::vector<std::array<util::Field, grid::kNumDirs>> reg_coeff_;
  std::vector<Tile> tiles32_;
  int subdivided_tiles32_ = 0;
};

}  // namespace minipop::evp
