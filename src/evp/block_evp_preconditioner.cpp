#include "src/evp/block_evp_preconditioner.hpp"

#include <algorithm>
#include <functional>

#include "src/util/error.hpp"

namespace minipop::evp {

util::Field regularize_land_depth(const util::Field& depth,
                                  double epsilon_fraction) {
  MINIPOP_REQUIRE(epsilon_fraction > 0.0 && epsilon_fraction < 1.0,
                  "epsilon_fraction=" << epsilon_fraction);
  double max_depth = 0.0;
  for (double d : depth) max_depth = std::max(max_depth, d);
  MINIPOP_REQUIRE(max_depth > 0.0, "depth field has no ocean");
  const double eps = epsilon_fraction * max_depth;
  util::Field out = depth;
  for (int j = 0; j < out.ny(); ++j)
    for (int i = 0; i < out.nx(); ++i)
      if (out(i, j) <= 0.0) out(i, j) = eps;
  return out;
}

namespace {

/// Split length n into ceil(n / max_tile) near-equal pieces.
std::vector<std::pair<int, int>> split(int n, int max_tile) {
  std::vector<std::pair<int, int>> pieces;
  if (max_tile <= 0 || n <= max_tile) {
    pieces.emplace_back(0, n);
    return pieces;
  }
  const int count = (n + max_tile - 1) / max_tile;
  int start = 0;
  for (int p = 0; p < count; ++p) {
    const int len = (n - start) / (count - p);
    pieces.emplace_back(start, len);
    start += len;
  }
  return pieces;
}

}  // namespace

BlockEvpPreconditioner::BlockEvpPreconditioner(
    const solver::DistOperator& op, const grid::CurvilinearGrid& grid,
    const util::Field& depth, const BlockEvpOptions& options)
    : op_(&op), options_(options) {
  // Regularized stencil: same metric terms and phi, land filled in.
  const util::Field reg_depth =
      regularize_land_depth(depth, options.land_epsilon);
  const grid::NinePointStencil reg_stencil(grid, reg_depth, op.phi());

  const auto& decomp = op.decomposition();
  const auto& ids = decomp.blocks_of_rank(op.rank());
  EvpOptions evp_opt;
  evp_opt.simplified = options.simplified;
  evp_opt.validate_accuracy = options.tile_accuracy;

  reg_coeff_.reserve(ids.size());
  for (int lb = 0; lb < static_cast<int>(ids.size()); ++lb) {
    const auto& b = decomp.block(ids[lb]);
    // Copy the regularized coefficients of this block (kept around so
    // the fp32 tile set can be built lazily later).
    std::array<util::Field, grid::kNumDirs> coeff;
    for (int d = 0; d < grid::kNumDirs; ++d) {
      coeff[d] = util::Field(b.nx, b.ny);
      const auto& global = reg_stencil.coeff(static_cast<grid::Dir>(d));
      for (int j = 0; j < b.ny; ++j)
        for (int i = 0; i < b.nx; ++i)
          coeff[d](i, j) = global(b.i0 + i, b.j0 + j);
    }
    // Marching round-off depends on the local coefficient anisotropy, so
    // a nominally-safe tile can still fail its accuracy self-check (e.g.
    // strongly stretched high-latitude rows). Self-heal by subdividing
    // the offending tile until it is stable.
    const std::function<void(int, int, int, int)> add_tile =
        [&](int ti0, int tj0, int tnx, int tny) {
          try {
            Tile t;
            t.local_block = lb;
            t.solver = std::make_unique<EvpTileSolver>(coeff, ti0, tj0,
                                                       tnx, tny, evp_opt);
            setup_flops_ += t.solver->setup_flops();
            tiles_.push_back(std::move(t));
          } catch (const util::Error&) {
            if (tnx <= 2 && tny <= 2) throw;
            ++subdivided_tiles_;
            if (tnx >= tny) {
              add_tile(ti0, tj0, tnx / 2, tny);
              add_tile(ti0 + tnx / 2, tj0, tnx - tnx / 2, tny);
            } else {
              add_tile(ti0, tj0, tnx, tny / 2);
              add_tile(ti0, tj0 + tny / 2, tnx, tny - tny / 2);
            }
          }
        };
    for (const auto& [ti0, tnx] : split(b.nx, options.max_tile))
      for (const auto& [tj0, tny] : split(b.ny, options.max_tile))
        add_tile(ti0, tj0, tnx, tny);
    reg_coeff_.push_back(std::move(coeff));
  }
}

void BlockEvpPreconditioner::build_tiles32() {
  EvpOptions evp_opt;
  evp_opt.simplified = options_.simplified;
  // The fp64 self-check already ran per fp32 tile candidate at
  // construction below; what gates fp32 use is the fp32 self-check.
  evp_opt.validate_accuracy = options_.tile_accuracy;
  const int max_tile32 =
      options_.max_tile32 > 0 ? options_.max_tile32 : options_.max_tile;

  for (int lb = 0; lb < static_cast<int>(reg_coeff_.size()); ++lb) {
    const auto& coeff = reg_coeff_[lb];
    const std::function<void(int, int, int, int)> add_tile =
        [&](int ti0, int tj0, int tnx, int tny) {
          try {
            Tile t;
            t.local_block = lb;
            t.solver = std::make_unique<EvpTileSolver>(coeff, ti0, tj0,
                                                       tnx, tny, evp_opt);
            t.solver->enable_fp32(options_.tile_accuracy32);
            setup_flops_ += t.solver->setup_flops();
            tiles32_.push_back(std::move(t));
          } catch (const util::Error&) {
            if (tnx <= 2 && tny <= 2) throw;
            ++subdivided_tiles32_;
            if (tnx >= tny) {
              add_tile(ti0, tj0, tnx / 2, tny);
              add_tile(ti0 + tnx / 2, tj0, tnx - tnx / 2, tny);
            } else {
              add_tile(ti0, tj0, tnx, tny / 2);
              add_tile(ti0, tj0 + tny / 2, tnx, tny - tny / 2);
            }
          }
        };
    const int bnx = coeff[0].nx();
    const int bny = coeff[0].ny();
    for (const auto& [ti0, tnx] : split(bnx, max_tile32))
      for (const auto& [tj0, tny] : split(bny, max_tile32))
        add_tile(ti0, tj0, tnx, tny);
  }
}

int BlockEvpPreconditioner::simplified_tiles() const {
  int n = 0;
  for (const auto& t : tiles_)
    if (t.solver->simplified()) ++n;
  return n;
}

// Contract: apply() is block-local and communication-free — it never
// touches `comm` beyond cost accounting and reads no halo points. The
// overlapped solvers rely on this to run it while reductions are in
// flight (split-phase engine); keep it that way.
void BlockEvpPreconditioner::apply(comm::Communicator& comm,
                                   const comm::DistField& in,
                                   comm::DistField& out) {
  MINIPOP_REQUIRE(in.compatible_with(out), "block-EVP field mismatch");
  std::uint64_t flops = 0;
  util::Field y, x;
  for (const auto& t : tiles_) {
    const auto& s = *t.solver;
    if (y.nx() != s.nx() || y.ny() != s.ny()) {
      y = util::Field(s.nx(), s.ny());
      x = util::Field(s.nx(), s.ny());
    }
    // Row-pointer gather/scatter: this runs per tile per iteration, so
    // skip the per-element block lookup of DistField::at.
    const double* in_p = in.interior(t.local_block);
    const std::ptrdiff_t in_s = in.stride(t.local_block);
    for (int j = 0; j < s.ny(); ++j) {
      const double* row = in_p + (s.j0() + j) * in_s + s.i0();
      for (int i = 0; i < s.nx(); ++i) y(i, j) = row[i];
    }
    s.solve(y, x);
    const auto& mask = op_->block_mask(t.local_block);
    double* out_p = out.interior(t.local_block);
    const std::ptrdiff_t out_s = out.stride(t.local_block);
    for (int j = 0; j < s.ny(); ++j) {
      double* row = out_p + (s.j0() + j) * out_s + s.i0();
      const unsigned char* mrow = mask.data() + (s.j0() + j) * mask.nx() +
                                  s.i0();
      for (int i = 0; i < s.nx(); ++i) row[i] = mrow[i] ? x(i, j) : 0.0;
    }
    flops += s.solve_flops();
  }
  comm.costs().add_flops(flops);
}

// Same contract as the fp64 apply: block-local, communication-free.
void BlockEvpPreconditioner::apply(comm::Communicator& comm,
                                   const comm::DistField32& in,
                                   comm::DistField32& out) {
  MINIPOP_REQUIRE(in.compatible_with(out), "block-EVP field mismatch");
  if (tiles32_.empty()) build_tiles32();
  std::uint64_t flops = 0;
  util::Array2D<float> y, x;
  for (const auto& t : tiles32_) {
    const auto& s = *t.solver;
    if (y.nx() != s.nx() || y.ny() != s.ny()) {
      y = util::Array2D<float>(s.nx(), s.ny());
      x = util::Array2D<float>(s.nx(), s.ny());
    }
    const float* in_p = in.interior(t.local_block);
    const std::ptrdiff_t in_s = in.stride(t.local_block);
    for (int j = 0; j < s.ny(); ++j) {
      const float* row = in_p + (s.j0() + j) * in_s + s.i0();
      for (int i = 0; i < s.nx(); ++i) y(i, j) = row[i];
    }
    s.solve32(y, x);
    const auto& mask = op_->block_mask(t.local_block);
    float* out_p = out.interior(t.local_block);
    const std::ptrdiff_t out_s = out.stride(t.local_block);
    for (int j = 0; j < s.ny(); ++j) {
      float* row = out_p + (s.j0() + j) * out_s + s.i0();
      const unsigned char* mrow = mask.data() + (s.j0() + j) * mask.nx() +
                                  s.i0();
      for (int i = 0; i < s.nx(); ++i) row[i] = mrow[i] ? x(i, j) : 0.0f;
    }
    flops += s.solve_flops();
  }
  comm.costs().add_flops(flops);
}

}  // namespace minipop::evp
