#include "src/evp/block_evp_preconditioner.hpp"

#include <algorithm>
#include <functional>

#include "src/util/error.hpp"

namespace minipop::evp {

util::Field regularize_land_depth(const util::Field& depth,
                                  double epsilon_fraction) {
  MINIPOP_REQUIRE(epsilon_fraction > 0.0 && epsilon_fraction < 1.0,
                  "epsilon_fraction=" << epsilon_fraction);
  double max_depth = 0.0;
  for (double d : depth) max_depth = std::max(max_depth, d);
  MINIPOP_REQUIRE(max_depth > 0.0, "depth field has no ocean");
  const double eps = epsilon_fraction * max_depth;
  util::Field out = depth;
  for (int j = 0; j < out.ny(); ++j)
    for (int i = 0; i < out.nx(); ++i)
      if (out(i, j) <= 0.0) out(i, j) = eps;
  return out;
}

namespace {

/// Split length n into ceil(n / max_tile) near-equal pieces.
std::vector<std::pair<int, int>> split(int n, int max_tile) {
  std::vector<std::pair<int, int>> pieces;
  if (max_tile <= 0 || n <= max_tile) {
    pieces.emplace_back(0, n);
    return pieces;
  }
  const int count = (n + max_tile - 1) / max_tile;
  int start = 0;
  for (int p = 0; p < count; ++p) {
    const int len = (n - start) / (count - p);
    pieces.emplace_back(start, len);
    start += len;
  }
  return pieces;
}

}  // namespace

BlockEvpPreconditioner::BlockEvpPreconditioner(
    const solver::DistOperator& op, const grid::CurvilinearGrid& grid,
    const util::Field& depth, const BlockEvpOptions& options)
    : op_(&op), options_(options) {
  // Regularized stencil: same metric terms and phi, land filled in.
  const util::Field reg_depth =
      regularize_land_depth(depth, options.land_epsilon);
  const grid::NinePointStencil reg_stencil(grid, reg_depth, op.phi());

  const auto& decomp = op.decomposition();
  const auto& ids = decomp.blocks_of_rank(op.rank());
  EvpOptions evp_opt;
  evp_opt.simplified = options.simplified;
  evp_opt.validate_accuracy = options.tile_accuracy;

  for (int lb = 0; lb < static_cast<int>(ids.size()); ++lb) {
    const auto& b = decomp.block(ids[lb]);
    // Copy the regularized coefficients of this block.
    std::array<util::Field, grid::kNumDirs> coeff;
    for (int d = 0; d < grid::kNumDirs; ++d) {
      coeff[d] = util::Field(b.nx, b.ny);
      const auto& global = reg_stencil.coeff(static_cast<grid::Dir>(d));
      for (int j = 0; j < b.ny; ++j)
        for (int i = 0; i < b.nx; ++i)
          coeff[d](i, j) = global(b.i0 + i, b.j0 + j);
    }
    // Marching round-off depends on the local coefficient anisotropy, so
    // a nominally-safe tile can still fail its accuracy self-check (e.g.
    // strongly stretched high-latitude rows). Self-heal by subdividing
    // the offending tile until it is stable.
    const std::function<void(int, int, int, int)> add_tile =
        [&](int ti0, int tj0, int tnx, int tny) {
          try {
            Tile t;
            t.local_block = lb;
            t.solver = std::make_unique<EvpTileSolver>(coeff, ti0, tj0,
                                                       tnx, tny, evp_opt);
            setup_flops_ += t.solver->setup_flops();
            tiles_.push_back(std::move(t));
          } catch (const util::Error&) {
            if (tnx <= 2 && tny <= 2) throw;
            ++subdivided_tiles_;
            if (tnx >= tny) {
              add_tile(ti0, tj0, tnx / 2, tny);
              add_tile(ti0 + tnx / 2, tj0, tnx - tnx / 2, tny);
            } else {
              add_tile(ti0, tj0, tnx, tny / 2);
              add_tile(ti0, tj0 + tny / 2, tnx, tny - tny / 2);
            }
          }
        };
    for (const auto& [ti0, tnx] : split(b.nx, options.max_tile))
      for (const auto& [tj0, tny] : split(b.ny, options.max_tile))
        add_tile(ti0, tj0, tnx, tny);
  }
}

int BlockEvpPreconditioner::simplified_tiles() const {
  int n = 0;
  for (const auto& t : tiles_)
    if (t.solver->simplified()) ++n;
  return n;
}

// Contract: apply() is block-local and communication-free — it never
// touches `comm` beyond cost accounting and reads no halo points. The
// overlapped solvers rely on this to run it while reductions are in
// flight (split-phase engine); keep it that way.
void BlockEvpPreconditioner::apply(comm::Communicator& comm,
                                   const comm::DistField& in,
                                   comm::DistField& out) {
  MINIPOP_REQUIRE(in.compatible_with(out), "block-EVP field mismatch");
  std::uint64_t flops = 0;
  util::Field y, x;
  for (const auto& t : tiles_) {
    const auto& s = *t.solver;
    if (y.nx() != s.nx() || y.ny() != s.ny()) {
      y = util::Field(s.nx(), s.ny());
      x = util::Field(s.nx(), s.ny());
    }
    for (int j = 0; j < s.ny(); ++j)
      for (int i = 0; i < s.nx(); ++i)
        y(i, j) = in.at(t.local_block, s.i0() + i, s.j0() + j);
    s.solve(y, x);
    const auto& mask = op_->block_mask(t.local_block);
    for (int j = 0; j < s.ny(); ++j)
      for (int i = 0; i < s.nx(); ++i)
        out.at(t.local_block, s.i0() + i, s.j0() + j) =
            mask(s.i0() + i, s.j0() + j) ? x(i, j) : 0.0;
    flops += s.solve_flops();
  }
  comm.costs().add_flops(flops);
}

}  // namespace minipop::evp
