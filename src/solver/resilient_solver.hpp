// ResilientSolver: detect → recover → fall back decorator around any
// IterativeSolver.
//
// Every attempt ends with a one-scalar agreement allreduce (kMax of the
// FailureKind code) so all ranks reach the same recovery decision — the
// only collective the decorator adds to a fault-free solve. On an agreed
// failure it walks the recovery chain:
//   1. if the primary is a MixedPrecisionSolver running fp32 or mixed
//      sweeps, escalate it to its fp64 twin and retry — a numeric
//      failure of reduced-precision arithmetic (typically kStagnated at
//      the fp32 accuracy floor) is cured by precision, not by a
//      different solver;
//   2. restart the primary from the last lightweight checkpoint of x
//      (a ring of the two most recent solve-entry snapshots);
//   3. if the primary is P-CSI (possibly inside the mixed wrapper) and
//      it diverged/stagnated, re-estimate the eigenvalue interval with
//      Lanczos once, then restart;
//   4. fall back down the solver chain (e.g. P-CSI → ChronGear →
//      diagonal-preconditioned PCG), restarting each from a sanitized
//      checkpoint.
// A CommTimeoutError from any attempt is absorbed: the team is fenced
// with Communicator::resync() and the attempt is treated as a
// kCommTimeout failure, so a dropped or over-delayed message costs one
// restart instead of a hang. Every transition is recorded as a
// RecoveryEvent for tests and bench_resilience.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/solver/iterative_solver.hpp"
#include "src/solver/lanczos.hpp"

namespace minipop::solver {

struct RecoveryPolicy {
  /// Checkpoint restarts of the primary solver before falling back.
  int max_restarts = 2;
  /// Re-run Lanczos (once per solve) when a P-CSI primary diverges or
  /// stagnates — the classic stale-interval failure.
  bool reestimate_bounds = true;
  LanczosOptions lanczos;
  /// Walk the fallback chain after the primary is out of options.
  bool fallback = true;
};

/// One recorded recovery transition.
struct RecoveryEvent {
  FailureKind failure;  ///< what the failed attempt reported
  std::string solver;   ///< solver that failed
  /// escalate_precision | restart | reestimate_bounds | fallback | give_up
  std::string action;
  int attempt;          ///< 0-based attempt ordinal within the solve
  int iterations;       ///< iterations spent in the failed attempt
  /// Members the transition applies to: always 1 for the scalar
  /// decorator; the batched decorator records how many members of the
  /// batch failed together and entered recovery.
  int members = 1;
};

class ResilientSolver final : public IterativeSolver {
 public:
  explicit ResilientSolver(std::unique_ptr<IterativeSolver> primary,
                           RecoveryPolicy policy = {});

  /// Append a fallback stage (tried in order). With
  /// `use_diagonal_precond` the stage runs with a diagonal preconditioner
  /// built from the operator instead of the caller's — the last-resort
  /// configuration that cannot itself be the source of the failure.
  void add_fallback(std::unique_ptr<IterativeSolver> solver,
                    bool use_diagonal_precond = false);

  SolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m, const comm::DistField& b,
      comm::DistField& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) override;

  std::string name() const override;

  /// Recovery transitions recorded over this solver's lifetime.
  const std::vector<RecoveryEvent>& events() const { return events_; }
  void clear_events() { events_.clear(); }

  IterativeSolver& primary() { return *chain_.front().solver; }

 private:
  struct Stage {
    std::unique_ptr<IterativeSolver> solver;
    bool use_diagonal_precond = false;
  };

  /// Push a snapshot of x onto the checkpoint ring (keeps 2).
  void checkpoint(const comm::DistField& x);
  /// Restore x from ring slot `slot` (clamped), zeroing non-finite
  /// entries so a corrupted entry state cannot re-poison the retry.
  void restore(comm::DistField& x, std::size_t slot) const;

  std::vector<Stage> chain_;
  RecoveryPolicy policy_;
  std::vector<RecoveryEvent> events_;
  std::deque<comm::DistField> ring_;  ///< [0] = newest entry snapshot
};

}  // namespace minipop::solver
