// Batched multi-RHS solvers: one lockstep Krylov/Chebyshev iteration
// advancing B independent right-hand sides over the SAME operator and
// decomposition (paper §6 ensemble workload, Fig. 13).
//
// Why batching wins: every iteration's stencil sweep reloads the same
// nine coefficient planes regardless of how many members ride along, the
// halo exchange sends one message per neighbor regardless of payload,
// and the convergence reduction is one allreduce whether it carries 1
// or B partial sums. Batching B members amortizes all three: ~B× fewer
// messages and reductions per solve, coefficients loaded once per cell
// instead of once per cell per member.
//
// Bit-for-bit contract: member m of a batched fp64 solve produces
// EXACTLY the scalar solver's iterates, iteration count, residuals and
// solution bits (see kernels.hpp — batched kernels keep the scalar
// per-point expression and accumulation order, and vector allreduces
// combine element-wise in the same fixed rank order as scalar ones).
// The fp32 batched path holds the same contract against the scalar fp32
// sweeps (run by MixedPrecisionSolver): coefficients are rounded from
// the identical double recurrence once per member, and the fp32 kernels
// accumulate reductions in double exactly like their scalar twins.
//
// Lockstep + masking: members share one iteration loop. A member that
// converges (or trips a guard) at a convergence check FREEZES — its x
// plane stops updating, exactly as if the scalar solver had returned —
// but its lanes keep riding in the batch until retirement
// (SolverOptions::batch_retire_fraction) compacts the survivors into a
// narrower batch. Retirement never changes any member's arithmetic,
// only the lane count. See DESIGN.md §10 for the policy discussion.
//
// SolverOptions::overlap is honored: the split-phase batched sweeps
// hide the aggregated halo exchange behind the interior stencil update
// (bitwise identical to the blocking path, same as the scalar engine).
// The scalar fp64 path's reduction speculation is not replicated —
// the batch already amortizes each reduction over B members.
#pragma once

#include <vector>

#include "src/comm/dist_field_batch.hpp"
#include "src/solver/iterative_solver.hpp"
#include "src/solver/pcsi.hpp"

namespace minipop::solver {

/// Outcome of one member of a batched solve. Mirrors the scalar
/// SolveStats fields that are per-member meaningful.
struct BatchMemberStats {
  /// Lockstep iteration at which this member froze (converged or
  /// failed), or the final iteration count if it ran to the end.
  int iterations = 0;
  bool converged = false;
  double relative_residual = 0.0;
  FailureKind failure = FailureKind::kNone;
};

/// Outcome of a batched solve.
struct BatchSolveStats {
  /// Per-member outcomes, indexed by the member's position in the batch
  /// handed to solve() (stable across retirement compactions).
  std::vector<BatchMemberStats> members;
  /// Total lockstep iterations the batch ran (max over members).
  int iterations = 0;
  /// Number of retirement compactions performed.
  int retirements = 0;
  /// Mixed-precision refinement sweeps (batched fp32 inner solves);
  /// 0 for plain fp64/fp32 batched solves.
  int refine_sweeps = 0;
  /// Per-rank communication/computation deltas during the whole batch
  /// solve (shared across members — halos and reductions are joint).
  comm::CostCounters costs;
};

/// Interface of the batched solvers and their decorators. Semantic
/// difference from the scalar IterativeSolver, by design: a guard
/// failure (divergence/stagnation/NaN) freezes THAT member and the
/// batch keeps iterating the others, where the scalar solver aborts its
/// (single-member) solve — per-member outcomes match, the scalar "whole
/// solve stops" behavior just has no batched analogue.
/// Fault-injection halo/residual hooks are NOT armed on batched
/// exchanges (FieldSet::scalar_backed() gates them); hook_eigen_bounds
/// still applies (see DESIGN.md §10).
class BatchedSolver {
 public:
  virtual ~BatchedSolver() = default;

  /// Solve A x_m = b_m for every member, in place, starting from the
  /// x planes passed in. Collective across the communicator; all ranks
  /// must pass batches over the same decomposition with the same nb.
  virtual BatchSolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m,
      const comm::DistFieldBatch& b, comm::DistFieldBatch& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) = 0;

  /// fp32 storage mirror of solve(): same lockstep loop on fp32 batches
  /// and the fp32 coefficient mirror (half the bytes per point and per
  /// aggregated halo message; reductions still accumulate in double).
  /// This is the inner engine of the batched mixed-precision decorator.
  /// The default errors so a solver without an fp32 batched path fails
  /// loudly rather than silently up-converting.
  virtual BatchSolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m,
      const comm::DistFieldBatch32& b, comm::DistFieldBatch32& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale);

  virtual std::string name() const = 0;
};

/// Lockstep batched P-CSI. The Chebyshev scalar recurrence (omega,
/// gamma, alpha) depends only on the eigenvalue bounds — member
/// independent — so all members genuinely share one iteration schedule;
/// per-member state is just the field planes and the convergence mask.
class BatchedPcsiSolver final : public BatchedSolver {
 public:
  BatchedPcsiSolver(EigenBounds bounds, const SolverOptions& options = {});
  ~BatchedPcsiSolver() override;

  BatchSolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m,
      const comm::DistFieldBatch& b, comm::DistFieldBatch& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) override;

  BatchSolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m,
      const comm::DistFieldBatch32& b, comm::DistFieldBatch32& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) override;

  std::string name() const override { return "batched_pcsi"; }

  const EigenBounds& bounds() const { return bounds_; }
  /// Replace the Chebyshev interval (BatchedResilientSolver's Lanczos
  /// re-estimation reaches through this, like PcsiSolver::set_bounds).
  void set_bounds(EigenBounds bounds);

 private:
  template <typename T>
  BatchSolveStats solve_t(comm::Communicator& comm,
                          const comm::HaloExchanger& halo,
                          const DistOperator& a, Preconditioner& m,
                          const comm::DistFieldBatchT<T>& b,
                          comm::DistFieldBatchT<T>& x,
                          comm::HaloFreshness x_fresh);

  /// Communication-avoiding batched loop (SolverOptions::halo_depth > 1
  /// with a pointwise preconditioner): ONE grouped deep exchange of
  /// {x, dx, r} per group of up to k lockstep iterations, on deep-halo
  /// working copies of the whole batch. Per-member iterates, freeze
  /// decisions and retirement compactions are bitwise identical to the
  /// depth-1 lockstep loop.
  template <typename T>
  BatchSolveStats solve_comm_avoid_t(comm::Communicator& comm,
                                     const comm::HaloExchanger& halo,
                                     const DistOperator& a, Preconditioner& m,
                                     const comm::DistFieldBatchT<T>& b,
                                     comm::DistFieldBatchT<T>& x);

  EigenBounds bounds_;
  SolverOptions opt_;
  /// Cached ghost-zone engine, rebuilt when the operator or resolved
  /// depth changes (shared by the fp64 and fp32 batched paths; the fp32
  /// coefficient mirrors live inside the engine).
  std::unique_ptr<CommAvoidEngine> ca_engine_;
  const DistOperator* ca_engine_op_ = nullptr;
};

/// Lockstep batched ChronGear (s-step preconditioned CG). Per-member
/// scalar state {rho, sigma} with all members' fused {rho, delta, norm}
/// partial sums riding ONE grouped vector allreduce per iteration.
class BatchedChronGearSolver final : public BatchedSolver {
 public:
  explicit BatchedChronGearSolver(const SolverOptions& options = {});

  BatchSolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m,
      const comm::DistFieldBatch& b, comm::DistFieldBatch& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) override;

  BatchSolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m,
      const comm::DistFieldBatch32& b, comm::DistFieldBatch32& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) override;

  std::string name() const override { return "batched_chron_gear"; }

 private:
  template <typename T>
  BatchSolveStats solve_t(comm::Communicator& comm,
                          const comm::HaloExchanger& halo,
                          const DistOperator& a, Preconditioner& m,
                          const comm::DistFieldBatchT<T>& b,
                          comm::DistFieldBatchT<T>& x,
                          comm::HaloFreshness x_fresh);

  SolverOptions opt_;
};

}  // namespace minipop::solver
