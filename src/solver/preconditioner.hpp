// Preconditioner interface and the two baseline preconditioners.
//
// POP's production preconditioner is the simple diagonal scaling
// (paper §4, refs [29, 30]); the paper's contribution — the block-EVP
// preconditioner — lives in src/evp and implements this same interface.
// Preconditioners act block-locally on interiors; they require and
// perform no communication.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/comm/communicator.hpp"
#include "src/comm/dist_field.hpp"
#include "src/solver/dist_operator.hpp"

namespace minipop::solver {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// out = M^{-1} in over block interiors (land cells map to zero).
  virtual void apply(comm::Communicator& comm, const comm::DistField& in,
                     comm::DistField& out) = 0;

  /// fp32 mirror of apply(): same block-local, communication-free
  /// contract on fp32 fields. The built-in preconditioners all implement
  /// it from a lazily-built float copy of their setup data; the default
  /// errors so a preconditioner without an fp32 path fails loudly rather
  /// than silently up-converting.
  virtual void apply(comm::Communicator& comm, const comm::DistField32& in,
                     comm::DistField32& out);

  /// Batched multi-RHS apply: out_m = M^{-1} in_m for every member. The
  /// default demultiplexes through per-member scratch DistFields and the
  /// scalar apply — bit-exact per member and correct for ANY
  /// preconditioner (block-EVP included), just without the fused-lane
  /// bandwidth win. Identity and diagonal override with fused batch
  /// kernels (whose per-member results are bit-identical to the scalar
  /// apply by the kernels.hpp contract).
  virtual void apply_batch(comm::Communicator& comm,
                           const comm::DistFieldBatch& in,
                           comm::DistFieldBatch& out);

  /// fp32 batched apply — the preconditioner step of the batched
  /// mixed-precision inner solve. Default demuxes through the scalar
  /// fp32 apply (so any preconditioner with an fp32 path composes with
  /// batching); identity and diagonal override with the fused fp32
  /// batch kernels.
  virtual void apply_batch(comm::Communicator& comm,
                           const comm::DistFieldBatch32& in,
                           comm::DistFieldBatch32& out);

  virtual std::string name() const = 0;
};

/// M = I (no preconditioning). Turns P-CSI into the plain CSI of [20].
class IdentityPreconditioner final : public Preconditioner {
 public:
  explicit IdentityPreconditioner(const DistOperator& op) : op_(&op) {}
  void apply(comm::Communicator& comm, const comm::DistField& in,
             comm::DistField& out) override;
  void apply(comm::Communicator& comm, const comm::DistField32& in,
             comm::DistField32& out) override;
  void apply_batch(comm::Communicator& comm, const comm::DistFieldBatch& in,
                   comm::DistFieldBatch& out) override;
  void apply_batch(comm::Communicator& comm,
                   const comm::DistFieldBatch32& in,
                   comm::DistFieldBatch32& out) override;
  std::string name() const override { return "identity"; }

 private:
  const DistOperator* op_;
};

/// M = diag(A): POP's default. One op per point per application.
class DiagonalPreconditioner final : public Preconditioner {
 public:
  explicit DiagonalPreconditioner(const DistOperator& op);
  void apply(comm::Communicator& comm, const comm::DistField& in,
             comm::DistField& out) override;
  void apply(comm::Communicator& comm, const comm::DistField32& in,
             comm::DistField32& out) override;
  void apply_batch(comm::Communicator& comm, const comm::DistFieldBatch& in,
                   comm::DistFieldBatch& out) override;
  void apply_batch(comm::Communicator& comm,
                   const comm::DistFieldBatch32& in,
                   comm::DistFieldBatch32& out) override;
  std::string name() const override { return "diagonal"; }

 private:
  void ensure_inv_diag32();

  const DistOperator* op_;
  std::vector<util::Field> inv_diag_;  ///< masked inverse diagonal per block
  /// float mirror of inv_diag_, built on first fp32 apply (each inverse
  /// is rounded from the double one, not recomputed in float).
  std::vector<util::Array2D<float>> inv_diag32_;
};

}  // namespace minipop::solver
