#include "src/solver/lanczos.hpp"

#include <cmath>

#include "src/solver/field_ops.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace minipop::solver {

namespace {

/// Deterministic start vector: pseudo-random per *global* cell index, so
/// the vector (and thus the estimates) is independent of the block layout
/// and rank count.
void fill_random_masked(const DistOperator& a, comm::DistField& v,
                        std::uint64_t seed) {
  for (int lb = 0; lb < a.num_local_blocks(); ++lb) {
    const auto& info = v.info(lb);
    const auto& mask = a.block_mask(lb);
    for (int j = 0; j < info.ny; ++j)
      for (int i = 0; i < info.nx; ++i) {
        if (!mask(i, j)) {
          v.at(lb, i, j) = 0.0;
          continue;
        }
        const std::uint64_t cell =
            static_cast<std::uint64_t>(info.j0 + j) *
                static_cast<std::uint64_t>(a.decomposition().nx_global()) +
            static_cast<std::uint64_t>(info.i0 + i);
        util::SplitMix64 sm(seed ^ (cell * 0x9e3779b97f4a7c15ULL + 1));
        v.at(lb, i, j) =
            2.0 * (static_cast<double>(sm.next() >> 11) * 0x1.0p-53) - 1.0;
      }
  }
}

}  // namespace

LanczosResult estimate_eigenvalue_bounds(comm::Communicator& comm,
                                         const comm::HaloExchanger& halo,
                                         const DistOperator& a,
                                         Preconditioner& m,
                                         const LanczosOptions& options) {
  MINIPOP_REQUIRE(options.max_steps >= 1,
                  "max_steps=" << options.max_steps);
  LanczosResult result;

  const auto& decomp = a.decomposition();
  const int rank = a.rank();
  comm::DistField q(decomp, rank, comm::DistField::kDefaultHalo);
  comm::DistField q_prev(decomp, rank, comm::DistField::kDefaultHalo);
  comm::DistField zq(decomp, rank, comm::DistField::kDefaultHalo);
  comm::DistField w(decomp, rank, comm::DistField::kDefaultHalo);
  comm::DistField zw(decomp, rank, comm::DistField::kDefaultHalo);

  fill_random_masked(a, w, options.seed);
  m.apply(comm, w, zw);
  double beta = std::sqrt(comm.allreduce_sum(a.local_dot(comm, w, zw)));
  MINIPOP_REQUIRE(beta > 0.0, "Lanczos start vector has zero M-norm "
                              "(empty ocean?)");
  copy_interior(w, q);
  scale(comm, 1.0 / beta, q, a.span_plan());
  copy_interior(zw, zq);
  scale(comm, 1.0 / beta, zq, a.span_plan());
  fill_interior(q_prev, 0.0);
  double beta_prev = 0.0;

  double last_min = 0.0, last_max = 0.0;
  for (int step = 1; step <= options.max_steps; ++step) {
    // w = A zq - beta_prev * q_prev.
    a.apply(comm, halo, zq, w);
    if (beta_prev != 0.0) axpy(comm, -beta_prev, q_prev, w, a.span_plan());

    const double alpha = comm.allreduce_sum(a.local_dot(comm, zq, w));
    axpy(comm, -alpha, q, w, a.span_plan());

    m.apply(comm, w, zw);
    double beta2 = comm.allreduce_sum(a.local_dot(comm, w, zw));
    MINIPOP_REQUIRE(beta2 > -1e-6 * std::abs(alpha),
                    "Lanczos found w^T M^-1 w = "
                        << beta2
                        << " < 0: the preconditioner is not SPD "
                           "(broken block solve?)");
    // Clamp tiny negative round-off.
    beta2 = std::max(beta2, 0.0);
    const double beta_new = std::sqrt(beta2);

    result.tridiagonal.d.push_back(alpha);
    result.steps = step;

    auto ext = linalg::tridiag_extreme_eigenvalues(result.tridiagonal);
    const bool have_last = step > 1;
    const bool small_change =
        have_last && options.rel_tolerance > 0.0 &&
        std::abs(ext.min - last_min) <=
            options.rel_tolerance * std::abs(ext.min) &&
        std::abs(ext.max - last_max) <=
            options.rel_tolerance * std::abs(ext.max);
    last_min = ext.min;
    last_max = ext.max;

    if (small_change) {
      result.converged = true;
      break;
    }
    if (beta_new <= 1e-14 * std::abs(alpha)) {
      // Invariant subspace found: estimates are exact.
      result.converged = true;
      break;
    }
    if (step == options.max_steps) break;

    result.tridiagonal.e.push_back(beta_new);
    copy_interior(q, q_prev);
    copy_interior(w, q);
    scale(comm, 1.0 / beta_new, q, a.span_plan());
    copy_interior(zw, zq);
    scale(comm, 1.0 / beta_new, zq, a.span_plan());
    beta_prev = beta_new;
  }

  // Trim e to match d (the loop may exit right after pushing d).
  while (result.tridiagonal.e.size() + 1 >
         result.tridiagonal.d.size())
    result.tridiagonal.e.pop_back();

  auto ext = linalg::tridiag_extreme_eigenvalues(result.tridiagonal);
  result.raw = EigenBounds{ext.min, ext.max};
  MINIPOP_REQUIRE(ext.min > 0.0,
                  "Lanczos produced non-positive smallest eigenvalue "
                      << ext.min << " — operator or preconditioner not SPD?");
  // Lanczos underestimates the spectrum width from inside; widen for a
  // contractive Chebyshev interval.
  const double margin = options.safety_margin;
  result.bounds = EigenBounds{ext.min * (1.0 - margin),
                              ext.max * (1.0 + margin)};
  if (result.bounds.nu <= 0.0) result.bounds.nu = ext.min * 0.5;
  return result;
}

}  // namespace minipop::solver
