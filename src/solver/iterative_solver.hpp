// Common interface, options and statistics for the barotropic solvers.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "src/comm/communicator.hpp"
#include "src/comm/dist_field.hpp"
#include "src/comm/halo.hpp"
#include "src/solver/dist_operator.hpp"
#include "src/solver/preconditioner.hpp"

namespace minipop::solver {

/// Typed outcome of an unsuccessful solve. Ordered by severity so the
/// recovery layer can agree on the worst failure across ranks with a
/// single max-reduction of the numeric value.
enum class FailureKind {
  kNone = 0,         ///< solve converged (or is still healthy)
  kMaxIters = 1,     ///< iteration budget exhausted without convergence
  kStagnated = 2,    ///< residual stopped decreasing for a full window
  kDiverged = 3,     ///< residual grew beyond divergence_factor * initial
  kBreakdown = 4,    ///< short-recurrence breakdown (sigma/rho/delta ~ 0)
  kNanDetected = 5,  ///< non-finite value in a reduced scalar
  // --- silent-data-corruption detections (integrity layer) ---
  kSilentDrift = 6,       ///< recurrence vs true residual drifted apart
  kCorruptReduction = 7,  ///< guarded allreduce halves disagreed
  kCorruptOperator = 8,   ///< ABFT stencil checksum mismatch
  // --- communication-state failures (require a collective resync) ---
  kCommTimeout = 9,     ///< a communication wait timed out (see ThreadComm)
  kCorruptPayload = 10, ///< a halo message failed its CRC check
};

inline const char* to_string(FailureKind k) {
  switch (k) {
    case FailureKind::kNone: return "none";
    case FailureKind::kMaxIters: return "max_iters";
    case FailureKind::kStagnated: return "stagnated";
    case FailureKind::kDiverged: return "diverged";
    case FailureKind::kBreakdown: return "breakdown";
    case FailureKind::kNanDetected: return "nan_detected";
    case FailureKind::kSilentDrift: return "silent_drift";
    case FailureKind::kCorruptReduction: return "corrupt_reduction";
    case FailureKind::kCorruptOperator: return "corrupt_operator";
    case FailureKind::kCommTimeout: return "comm_timeout";
    case FailureKind::kCorruptPayload: return "corrupt_payload";
  }
  return "?";
}

/// Failures at or above kCommTimeout left the communicator's collective
/// state desynchronized (aborted exchanges, wiped mailboxes): recovery
/// must run Communicator::resync() before issuing new collectives.
inline bool needs_resync(FailureKind k) {
  return k >= FailureKind::kCommTimeout;
}

/// Arithmetic of the solver's field sweeps and halos.
enum class Precision {
  kFp64 = 0,  ///< everything double (the bit-identical legacy path)
  kFp32 = 1,  ///< whole solve in float; floors at rel residual ~1e-7
  kMixed = 2, ///< fp32 inner sweeps inside an fp64 refinement outer loop
};

inline const char* to_string(Precision p) {
  switch (p) {
    case Precision::kFp64: return "fp64";
    case Precision::kFp32: return "fp32";
    case Precision::kMixed: return "mixed";
  }
  return "?";
}

/// Runtime knobs of the silent-data-corruption defense layer (DESIGN
/// §12). Everything defaults to OFF; with every knob off the solvers
/// are bitwise identical to a build without the layer and record zero
/// integrity counters (tested). Costs are per check, not per iteration.
struct IntegrityOptions {
  /// CRC32C every halo message payload (computed at pack, verified at
  /// unpack; one extra element per message on the wire). A mismatch
  /// throws CorruptPayloadError -> typed kCorruptPayload recovery.
  /// Consumed by HaloExchanger::set_crc() at model construction.
  bool halo_crc = false;
  /// Duplicate each convergence-check allreduce contribution and
  /// cross-check the two reduced halves bitwise (the fixed-order
  /// reduction makes them exactly equal when healthy). Doubles the
  /// payload of the guarded reductions only; mismatch types the
  /// affected member kCorruptReduction.
  bool guarded_reductions = false;
  /// Verify the ABFT operator checksum sum(b - r) == dot(c, x) with
  /// c = A·1 every `abft_interval` convergence checks (0 = off; ~one
  /// masked dot + one 2-element allreduce per audit). Catches stencil
  /// coefficient / memory corruption as kCorruptOperator.
  int abft_interval = 0;
  /// Relative tolerance of the ABFT identity (scaled by the checksum
  /// magnitude and sqrt(N·||b||²) to stay meaningful near convergence).
  double abft_tolerance = 1e-8;
  /// Recompute the true fp64 residual b - Ax every
  /// `true_residual_interval` convergence checks and compare it to the
  /// recurrence residual (0 = off). Only ChronGear's recurrence can
  /// drift; P-CSI checks the true residual already. Also audits the
  /// accepting convergence check, which is what turns "converged" from
  /// a recurrence claim into a verified statement. One residual sweep
  /// (with halo exchange) + one allreduce per audit.
  int true_residual_interval = 0;
  /// Allowed relative gap |rel_true - rel_recurrence| before the audit
  /// types the solve kSilentDrift.
  double drift_tolerance = 1e-8;

  /// True when any check that the SOLVERS consult is enabled
  /// (halo_crc lives in the halo engine, not the iteration cores).
  bool any_solver_check() const {
    return guarded_reductions || abft_interval > 0 ||
           true_residual_interval > 0;
  }
};

/// SolverOptions::halo_depth sentinel: resolve the depth from the perf
/// model at solver construction (perf::choose_halo_depth).
inline constexpr int kHaloDepthAuto = 0;
/// Widest supported communication-avoiding ghost zone.
inline constexpr int kMaxHaloDepth = 4;

struct SolverOptions {
  /// Convergence: ||r||_2 <= rel_tolerance * ||b||_2 over ocean points.
  double rel_tolerance = 1e-13;
  int max_iterations = 20000;
  /// POP checks convergence every `check_frequency` iterations (paper §5.2
  /// uses 10 for all solvers); the check costs one global reduction.
  int check_frequency = 10;
  /// Record the relative residual at every convergence check into
  /// SolveStats::residual_history (convergence-curve studies).
  bool record_residuals = false;
  /// Use the split-phase engine: halo exchanges hidden behind the
  /// interior stencil sweep, and reductions hidden behind computation
  /// wherever that is possible without changing the arithmetic. Iterates,
  /// iteration counts and residuals are bitwise identical to the
  /// blocking path; CostTracker's posted/exposed seconds show how much
  /// communication was actually hidden.
  bool overlap = false;
  /// Communication-avoiding ghost-zone depth k of the P-CSI cores:
  /// exchange a depth-k halo of {x, dx, r} once (one aggregated message
  /// per neighbour), then run k sweeps on shrinking extended domains with
  /// zero exchanges in between — halo rounds per solve drop ~k x at the
  /// price of redundant rim flops (CostCounters::redundant_flops).
  /// Iterates, residuals and iteration counts are bitwise identical to
  /// k = 1 (the redundant ghost computation executes the same FP ops on
  /// the same values the owner does). 1 = classic per-iteration
  /// exchange; 2..4 = depth-k groups; kHaloDepthAuto (0) picks k from
  /// the perf model (perf::choose_halo_depth). Only P-CSI with the
  /// diagonal/identity preconditioners runs deep; block-EVP needs its
  /// own exchange inside apply and falls back to k = 1 loudly. When
  /// k > 1 is in effect it takes precedence over `overlap` (the grouped
  /// sweeps leave no per-iteration exchange to hide).
  int halo_depth = 1;

  // --- convergence guards (piggybacked on the check_frequency
  // reduction; no extra collectives on the happy path) ---

  /// Declare kDiverged when the checked relative residual exceeds this
  /// multiple of the first checked relative residual. The default is far
  /// above anything a healthy solve produces, so enabling the guard does
  /// not change fault-free iterates.
  double divergence_factor = 1e8;
  /// Declare kStagnated when this many consecutive convergence checks
  /// fail to improve the best relative residual by at least
  /// stagnation_decrease. 0 disables the stagnation guard (default).
  int stagnation_window = 0;
  /// Minimum fractional improvement per check window that counts as
  /// progress for the stagnation guard.
  double stagnation_decrease = 1e-3;

  // --- mixed-precision path (MixedPrecisionSolver) ---

  /// Arithmetic of the inner sweeps. kFp64 leaves every existing solver
  /// untouched; kFp32/kMixed route the solve through the fp32 mirror
  /// sweeps (half the bytes per point and per halo message).
  Precision precision = Precision::kFp64;
  /// Mixed mode: relative tolerance of each fp32 inner solve (against
  /// its own right-hand side, the current fp64 residual). Must sit above
  /// the fp32 accuracy floor (~1e-7) or every sweep runs to stagnation.
  double refine_inner_tolerance = 1e-5;
  /// Mixed mode: iteration cap per fp32 inner solve.
  int refine_max_inner_iterations = 1000;
  /// Mixed mode: cap on refinement sweeps (outer corrections) before the
  /// solve reports failure.
  int refine_max_sweeps = 50;

  // --- batched multi-RHS path (BatchedSolver) ---

  /// Retirement threshold of the batched solvers: when, at a convergence
  /// check, the fraction of still-active members drops to or below this
  /// value, the batch is compacted — frozen members retire (their
  /// solution planes are final) and the survivors migrate into a
  /// narrower batch so subsequent sweeps stop paying for retired lanes.
  /// <= 0 disables retirement (frozen members ride along, masked);
  /// >= 1 compacts at the first check where any member froze. Retirement
  /// never changes any member's arithmetic, only the lane count.
  double batch_retire_fraction = 0.5;

  /// Silent-data-corruption checks (all off by default).
  IntegrityOptions integrity;

  SolverOptions() = default;
};

struct SolveStats {
  int iterations = 0;
  bool converged = false;
  double relative_residual = 0.0;
  /// Why the solve stopped, when converged is false (kNone otherwise).
  FailureKind failure = FailureKind::kNone;
  /// Mixed-precision refinement sweeps (fp32 inner solves); 0 for plain
  /// fp64/fp32 solves.
  int refine_sweeps = 0;
  /// Per-rank communication/computation deltas recorded during the solve.
  comm::CostCounters costs;
  /// (iteration, relative residual) at each convergence check, when
  /// SolverOptions::record_residuals is set.
  std::vector<std::pair<int, double>> residual_history;
};

/// Shared failure-detection state for the solvers' convergence checks.
/// Feed it each *already-reduced* relative residual (so every rank sees
/// the same value and reaches the same verdict — no extra collectives);
/// it watches for NaN/Inf, divergence and stagnation per SolverOptions.
class ConvergenceGuard {
 public:
  explicit ConvergenceGuard(const SolverOptions& options)
      : options_(options) {}

  /// Returns kNone while the solve looks healthy.
  FailureKind check(double relative_residual) {
    if (!std::isfinite(relative_residual)) return FailureKind::kNanDetected;
    if (first_ < 0.0) first_ = relative_residual;
    if (relative_residual > options_.divergence_factor * first_ &&
        relative_residual > options_.rel_tolerance)
      return FailureKind::kDiverged;
    if (options_.stagnation_window > 0) {
      if (best_ < 0.0 ||
          relative_residual < best_ * (1.0 - options_.stagnation_decrease)) {
        best_ = relative_residual;
        stalled_ = 0;
      } else if (++stalled_ >= options_.stagnation_window) {
        return FailureKind::kStagnated;
      }
    }
    return FailureKind::kNone;
  }

  /// NaN screen for intermediate reduced scalars (rho, sigma, delta...).
  static bool finite(double v) { return std::isfinite(v); }

 private:
  const SolverOptions& options_;
  double first_ = -1.0;
  double best_ = -1.0;
  int stalled_ = 0;
};

class IterativeSolver {
 public:
  virtual ~IterativeSolver() = default;

  /// Solve A x = b starting from the x passed in (often the previous time
  /// step's solution in POP). x is updated in place; collective across the
  /// communicator. `x_fresh` attests that x's halo was just refreshed, so
  /// the initial residual needs no boundary update (see HaloFreshness).
  virtual SolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m, const comm::DistField& b,
      comm::DistField& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) = 0;

  virtual std::string name() const = 0;
};

}  // namespace minipop::solver
