// Common interface, options and statistics for the barotropic solvers.
#pragma once

#include <string>
#include <vector>

#include "src/comm/communicator.hpp"
#include "src/comm/dist_field.hpp"
#include "src/comm/halo.hpp"
#include "src/solver/dist_operator.hpp"
#include "src/solver/preconditioner.hpp"

namespace minipop::solver {

struct SolverOptions {
  /// Convergence: ||r||_2 <= rel_tolerance * ||b||_2 over ocean points.
  double rel_tolerance = 1e-13;
  int max_iterations = 20000;
  /// POP checks convergence every `check_frequency` iterations (paper §5.2
  /// uses 10 for all solvers); the check costs one global reduction.
  int check_frequency = 10;
  /// Record the relative residual at every convergence check into
  /// SolveStats::residual_history (convergence-curve studies).
  bool record_residuals = false;
  /// Use the split-phase engine: halo exchanges hidden behind the
  /// interior stencil sweep, and reductions hidden behind computation
  /// wherever that is possible without changing the arithmetic. Iterates,
  /// iteration counts and residuals are bitwise identical to the
  /// blocking path; CostTracker's posted/exposed seconds show how much
  /// communication was actually hidden.
  bool overlap = false;

  SolverOptions() = default;
};

struct SolveStats {
  int iterations = 0;
  bool converged = false;
  double relative_residual = 0.0;
  /// Per-rank communication/computation deltas recorded during the solve.
  comm::CostCounters costs;
  /// (iteration, relative residual) at each convergence check, when
  /// SolverOptions::record_residuals is set.
  std::vector<std::pair<int, double>> residual_history;
};

class IterativeSolver {
 public:
  virtual ~IterativeSolver() = default;

  /// Solve A x = b starting from the x passed in (often the previous time
  /// step's solution in POP). x is updated in place; collective across the
  /// communicator. `x_fresh` attests that x's halo was just refreshed, so
  /// the initial residual needs no boundary update (see HaloFreshness).
  virtual SolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m, const comm::DistField& b,
      comm::DistField& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) = 0;

  virtual std::string name() const = 0;
};

}  // namespace minipop::solver
