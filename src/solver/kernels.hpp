// Hot-path kernels of the barotropic solvers.
//
// Both ChronGear (Alg. 1) and P-CSI (Alg. 2) spend their rank-local time
// in the same few sweeps: the nine-point matvec, the residual update, the
// masked inner products and the vector updates. These are memory-bound
// stencil/streaming loops, so the kernels here are written to (a) touch
// each field exactly once per logical operation — fused residual, fused
// residual+norm², fused triple dot, fused lincomb+axpy — and (b) present
// the compiler with raw, restrict-qualified row pointers so the inner
// loops vectorize without runtime alias checks or per-element index
// arithmetic.
//
// SINGLE EXECUTION CORE. Every public kernel — scalar fp64, scalar fp32,
// and batched — is a thin wrapper over ONE templated core function
// `core::X<T, B>`:
//   * T is the storage scalar (float or double; nothing else links).
//     Element arithmetic runs at storage precision — fp32 storage exists
//     to halve bytes per point, and widening every operand would forfeit
//     half the vector lanes — but every REDUCTION accumulates in double
//     regardless of T: a float accumulator over a 0.1-degree block
//     (~10^5 points) loses ~5 digits to cancellation, which is exactly
//     the failure mode the mixed-precision refinement loop must be able
//     to measure, not suffer.
//   * B is the compile-time member width. B >= 1 fixes the width at
//     compile time (the runtime `nb` argument is ignored); B == 0 means
//     dynamic width taken from `nb`. The B = 1 instantiations collapse
//     the member loop and generate exactly the scalar kernels' code —
//     the scalar API is the B = 1 specialization of the batched core,
//     bit for bit. Batched entry points dispatch nb == 1 to the B = 1
//     instantiation so a width-1 batch runs the scalar code path.
//
// Batched fields are member-fastest interleaved SoA planes: member m of
// interior cell (i, j) lives at base[j*stride + i*nb + m]; nb = 1
// degenerates to the scalar row-major layout. Stencil coefficients and
// the land mask are shared across members and loaded ONCE per cell, then
// reused across the member loop — coefficient bytes are read once per
// point instead of once per point per member, which is the batching
// bandwidth win.
//
// Contracts shared by every kernel:
//   * All pointers address the FIRST INTERIOR element of a block-local
//     row-major array; `*_stride` is the padded row pitch in elements
//     (already widened by nb for batched planes). A padded field's
//     interior pointer is `base + h*pitch + h*nb`.
//   * Distinct array arguments must not alias (they are restrict-
//     qualified); rows of one padded array never overlap because the
//     pitch exceeds the interior width.
//   * For T = double, floating-point evaluation order is IDENTICAL to
//     the naive scalar loops these kernels replace (same per-element
//     expression order, same row-major reduction order), so results are
//     bit-for-bit equal to the pre-kernel implementation and
//     deterministic across runs. The float instantiation keeps the same
//     order at float precision (and double reduction accumulators), so
//     it too is deterministic and matches a naive fp32 scalar loop. For
//     every member m the batched expression and reduction order are
//     IDENTICAL to the scalar kernels, so member m of any batched
//     result equals the scalar kernel run on member m's plane exactly.
//   * Reductions write/continue per-member accumulators in a caller
//     array (sums[m]); update kernels take per-member coefficients and
//     an optional `active` mask of nb bytes — members with
//     active[m] == 0 are not written (their planes stay frozen), which
//     implements per-member convergence masking in the batched solvers.
//     A null `active` means all members are active.
//   * No bounds checks: callers guarantee shapes. (Bounds checking in the
//     object wrappers is governed by MINIPOP_BOUNDS_CHECK; the kernels
//     never had any.)
#pragma once

#include <cstddef>

#if defined(_MSC_VER)
#define MINIPOP_RESTRICT __restrict
#else
#define MINIPOP_RESTRICT __restrict__
#endif

namespace minipop::solver::kernels {

/// Base pointers of one block's nine coefficient arrays (unpadded,
/// bnx-pitch, row-major — the layout DistOperator stores). Order follows
/// grid::Dir. `stride` is the coefficient row pitch (= block nx).
template <typename T>
struct Stencil9T {
  const T* c0;   ///< center
  const T* ce;   ///< east
  const T* cw;   ///< west
  const T* cn;   ///< north
  const T* cs;   ///< south
  const T* cne;  ///< north-east
  const T* cnw;  ///< north-west
  const T* cse;  ///< south-east
  const T* csw;  ///< south-west
  std::ptrdiff_t stride;
};

using Stencil9 = Stencil9T<double>;
using Stencil9f = Stencil9T<float>;

/// One run of contiguous ocean cells inside a block row: interior cells
/// [i0, i0 + len). Span lists are precomputed from the land mask once
/// per operator (solver::BlockSpans in span_plan.hpp) and drive the
/// *_span kernels below, whose inner loops are mask-free and unit-stride.
struct Span {
  int i0 = 0;
  int len = 0;
};

// ---------------------------------------------------------------------
// The unified execution core. Width semantics: effective member count
// w = (B > 0 ? B : nb). All scalar and batched public kernels below are
// wrappers over these; only the four (T, B) combinations
// (double|float) x (1|0) are instantiated.
// ---------------------------------------------------------------------
namespace core {

/// y = A x for all w members. 9*w flops/point.
template <typename T, int B>
void apply9(const Stencil9T<T>& c, int nb, int nx, int ny, const T* x,
            std::ptrdiff_t xs, T* y, std::ptrdiff_t ys);

/// Fused residual r = b - A x in ONE sweep. 10*w flops/point.
template <typename T, int B>
void residual9(const Stencil9T<T>& c, int nb, int nx, int ny, const T* b,
               std::ptrdiff_t bs, const T* x, std::ptrdiff_t xs, T* r,
               std::ptrdiff_t rs);

/// Fused residual + per-member masked norm²: r = b - A x and
/// sums[m] += sum_{mask} r_m². Accumulation CONTINUES from the caller's
/// sums[] (threaded across a rank's blocks). 12*w flops/point.
template <typename T, int B>
void residual_norm2_9(const Stencil9T<T>& c, const unsigned char* mask,
                      std::ptrdiff_t ms, int nb, int nx, int ny, const T* b,
                      std::ptrdiff_t bs, const T* x, std::ptrdiff_t xs,
                      T* r, std::ptrdiff_t rs, double* sums);

/// Per-member masked dots: sums[m] += sum_{mask} a_m * b_m.
template <typename T, int B>
void dot(const unsigned char* mask, std::ptrdiff_t ms, int nb, int nx,
         int ny, const T* a, std::ptrdiff_t as, const T* b,
         std::ptrdiff_t bs, double* sums);

/// Per-member fused ChronGear dots, grouped for ONE vector allreduce:
///   out[m]       += <r_m, rp_m>   (rho)
///   out[w + m]   += <z_m, rp_m>   (delta)
///   out[2w + m]  += <r_m, r_m>    (norm, only if with_norm)
/// At w = 1 the layout coincides with the scalar out[3].
template <typename T, int B>
void dot3(const unsigned char* mask, std::ptrdiff_t ms, int nb, int nx,
          int ny, const T* r, std::ptrdiff_t rs, const T* rp,
          std::ptrdiff_t ps, const T* z, std::ptrdiff_t zs, bool with_norm,
          double* out);

/// Per-member masked sums: sums[m] += sum_{mask} a_m (integrity layer's
/// ABFT checksum sweep). w flops/point.
template <typename T, int B>
void masked_sum(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                int nx, int ny, const T* a, std::ptrdiff_t as,
                double* sums);

/// Per-member dots against ONE shared double plane (width 1, e.g. the
/// ABFT column-sum field): sums[m] += sum_{mask} c * a_m. 2*w
/// flops/point.
template <typename T, int B>
void dot_shared(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                int nx, int ny, const double* c, std::ptrdiff_t cs,
                const T* a, std::ptrdiff_t as, double* sums);

/// y_m = a[m]*x_m + b[m]*y_m for each active m.
template <typename T, int B>
void lincomb(int nb, int nx, int ny, const T* a, const T* x,
             std::ptrdiff_t xs, const T* b, T* y, std::ptrdiff_t ys,
             const unsigned char* active);

/// y_m += a[m]*x_m for each active m.
template <typename T, int B>
void axpy(int nb, int nx, int ny, const T* a, const T* x,
          std::ptrdiff_t xs, T* y, std::ptrdiff_t ys,
          const unsigned char* active);

/// Fused update pair: y_m = a[m]*x_m + b[m]*y_m then z_m += c[m]*y_m.
template <typename T, int B>
void lincomb_axpy(int nb, int nx, int ny, const T* a, const T* x,
                  std::ptrdiff_t xs, const T* b, T* y, std::ptrdiff_t ys,
                  const T* c, T* z, std::ptrdiff_t zs,
                  const unsigned char* active);

/// x_m *= a[m] for each active m.
template <typename T, int B>
void scale(int nb, int nx, int ny, const T* a, T* x, std::ptrdiff_t xs,
           const unsigned char* active);

/// y = x, all members (row-wise memcpy over the widened rows).
template <typename T, int B>
void copy(int nb, int nx, int ny, const T* x, std::ptrdiff_t xs, T* y,
          std::ptrdiff_t ys);

/// x = v, all members.
template <typename T, int B>
void fill(int nb, int nx, int ny, T v, T* x, std::ptrdiff_t xs);

/// x = 0 on land (mask == 0) cells, all members.
template <typename T, int B>
void mask_zero(const unsigned char* mask, std::ptrdiff_t ms, int nb,
               int nx, int ny, T* x, std::ptrdiff_t xs);

/// out_m = inv * in_m (diagonal preconditioner, shared inverse-diagonal
/// plane at storage precision). w flops/point.
template <typename T, int B>
void diag_apply(const T* inv, std::ptrdiff_t is, int nb, int nx, int ny,
                const T* in, std::ptrdiff_t ins, T* out,
                std::ptrdiff_t outs);

/// out_m = mask ? in_m : 0 (identity preconditioner).
template <typename T, int B>
void masked_copy(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                 int nx, int ny, const T* in, std::ptrdiff_t ins, T* out,
                 std::ptrdiff_t outs);

/// Mixed-width refinement update: y64_m += a[m] * (double) x32_m for
/// each active m — the precision boundary of the refinement loop
/// without materializing a promoted copy. 2*w flops/point.
template <int B>
void axpy_promoted(int nb, int nx, int ny, const double* a, const float* x,
                   std::ptrdiff_t xs, double* y, std::ptrdiff_t ys,
                   const unsigned char* active);

}  // namespace core

// ---------------------------------------------------------------------
// Scalar API (the B = 1 specialization of the core). Signatures are
// unchanged from the pre-unification kernels; results are bit-identical.
// ---------------------------------------------------------------------

/// y = A x over an nx*ny interior. x must have valid halo rows/columns
/// around the interior (pitch xs); y is written interior-only.
/// 9 flops/point by the paper's counting convention.
template <typename T>
void apply9(const Stencil9T<T>& c, int nx, int ny, const T* x,
            std::ptrdiff_t xs, T* y, std::ptrdiff_t ys);

/// Fused residual r = b - A x in ONE sweep (the seed code swept twice:
/// apply, then subtract). 10 flops/point.
template <typename T>
void residual9(const Stencil9T<T>& c, int nx, int ny, const T* b,
               std::ptrdiff_t bs, const T* x, std::ptrdiff_t xs, T* r,
               std::ptrdiff_t rs);

/// Fused residual + masked norm²: r = b - A x and return
/// sum0 + sum_{mask} r², all in ONE sweep — the solvers' convergence
/// check at zero extra field passes. Accumulation CONTINUES from `sum0`
/// (one running scalar across a rank's blocks, like the seed loops), so
/// the result matches masked_dot over the same cells bit-for-bit. The
/// accumulator is double for every T (each r element is widened before
/// squaring).
template <typename T>
double residual_norm2_9(const Stencil9T<T>& c, const unsigned char* mask,
                        std::ptrdiff_t ms, int nx, int ny, const T* b,
                        std::ptrdiff_t bs, const T* x, std::ptrdiff_t xs,
                        T* r, std::ptrdiff_t rs, double sum0);

/// Masked inner product sum0 + sum_{mask} a*b, row-major accumulation
/// continuing from `sum0` — callers thread one running accumulator
/// through all local blocks (FP association matters; starting each block
/// at zero and adding partials would perturb the last bits). Operands
/// are widened to double BEFORE the multiply, so for T = float the
/// product itself is exact and only storage rounding remains.
template <typename T>
double masked_dot(const unsigned char* mask, std::ptrdiff_t ms, int nx,
                  int ny, const T* a, std::ptrdiff_t as, const T* b,
                  std::ptrdiff_t bs, double sum0);

/// Fused masked dots of ChronGear steps 7-9 in ONE sweep:
///   out[0] += <r, rp>, out[1] += <z, rp>, and if with_norm
///   out[2] += <r, r>.
/// Each accumulator is double (widen-then-multiply) and its add order
/// matches the equivalent masked_dot call.
template <typename T>
void masked_dot3(const unsigned char* mask, std::ptrdiff_t ms, int nx,
                 int ny, const T* r, std::ptrdiff_t rs, const T* rp,
                 std::ptrdiff_t ps, const T* z, std::ptrdiff_t zs,
                 bool with_norm, double out[3]);

/// Masked sum sum0 + sum_{mask} a, accumulation continuing from `sum0`
/// like masked_dot (one running accumulator across a rank's blocks).
template <typename T>
double masked_sum(const unsigned char* mask, std::ptrdiff_t ms, int nx,
                  int ny, const T* a, std::ptrdiff_t as, double sum0);

/// Masked dot against a shared double plane with its own pitch:
/// sum0 + sum_{mask} c * a. The ABFT audit pairs the operator's
/// unpadded column-sum field with a padded solver field.
template <typename T>
double dot_shared(const unsigned char* mask, std::ptrdiff_t ms, int nx,
                  int ny, const double* c, std::ptrdiff_t cs, const T* a,
                  std::ptrdiff_t as, double sum0);

/// y = a*x + b*y.
template <typename T>
void lincomb(int nx, int ny, T a, const T* x, std::ptrdiff_t xs, T b, T* y,
             std::ptrdiff_t ys);

/// y += a*x.
template <typename T>
void axpy(int nx, int ny, T a, const T* x, std::ptrdiff_t xs, T* y,
          std::ptrdiff_t ys);

/// Fused vector update pair (P-CSI steps 7-8; ChronGear steps 13-16 as
/// two calls): y = a*x + b*y followed by z += c*y, in ONE sweep.
template <typename T>
void lincomb_axpy(int nx, int ny, T a, const T* x, std::ptrdiff_t xs, T b,
                  T* y, std::ptrdiff_t ys, T c, T* z, std::ptrdiff_t zs);

/// x *= a.
template <typename T>
void scale(int nx, int ny, T a, T* x, std::ptrdiff_t xs);

/// y = x (row-wise memcpy).
template <typename T>
void copy(int nx, int ny, const T* x, std::ptrdiff_t xs, T* y,
          std::ptrdiff_t ys);

/// x = v.
template <typename T>
void fill(int nx, int ny, T v, T* x, std::ptrdiff_t xs);

/// x = 0 on land (mask == 0) cells.
template <typename T>
void mask_zero(const unsigned char* mask, std::ptrdiff_t ms, int nx, int ny,
               T* x, std::ptrdiff_t xs);

/// Precision converters: y (dst scalar) = x (src scalar), value-converted
/// per element. Used to demote fp64 residuals into the fp32 inner solve
/// and promote fp32 corrections back. Rows are contiguous spans of nx
/// elements — batched planes convert by passing the widened row length
/// nx*nb.
template <typename D, typename S>
void convert(int nx, int ny, const S* x, std::ptrdiff_t xs, D* y,
             std::ptrdiff_t ys);

// ---------------------------------------------------------------------
// Batched multi-RHS API (the dynamic-width face of the core, templated
// on the storage scalar — fp32 batches halve the bytes per point just
// like the scalar fp32 path). nb == 1 dispatches to the B = 1
// instantiation, so a width-1 batch runs the scalar code path.
// ---------------------------------------------------------------------

/// y = A x for all nb members. 9*nb flops/point.
template <typename T>
void apply9_batch(const Stencil9T<T>& c, int nb, int nx, int ny, const T* x,
                  std::ptrdiff_t xs, T* y, std::ptrdiff_t ys);

/// r = b - A x for all nb members. 10*nb flops/point.
template <typename T>
void residual9_batch(const Stencil9T<T>& c, int nb, int nx, int ny,
                     const T* b, std::ptrdiff_t bs, const T* x,
                     std::ptrdiff_t xs, T* r, std::ptrdiff_t rs);

/// Fused residual + per-member masked norm²: r = b - A x and
/// sums[m] += sum_{mask} r_m² — accumulation CONTINUES from the caller's
/// sums[] (threaded across a rank's blocks, like the scalar kernels).
template <typename T>
void residual_norm2_9_batch(const Stencil9T<T>& c, const unsigned char* mask,
                            std::ptrdiff_t ms, int nb, int nx, int ny,
                            const T* b, std::ptrdiff_t bs, const T* x,
                            std::ptrdiff_t xs, T* r, std::ptrdiff_t rs,
                            double* sums);

/// Per-member masked dots: sums[m] += sum_{mask} a_m * b_m in one pass.
template <typename T>
void dot_batch(const unsigned char* mask, std::ptrdiff_t ms, int nb, int nx,
               int ny, const T* a, std::ptrdiff_t as, const T* b,
               std::ptrdiff_t bs, double* sums);

/// Per-member fused ChronGear dots, grouped for ONE vector allreduce:
///   out[m]        += <r_m, rp_m>        (rho)
///   out[nb + m]   += <z_m, rp_m>        (delta)
///   out[2nb + m]  += <r_m, r_m>         (norm, only if with_norm)
template <typename T>
void dot3_batch(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                int nx, int ny, const T* r, std::ptrdiff_t rs, const T* rp,
                std::ptrdiff_t ps, const T* z, std::ptrdiff_t zs,
                bool with_norm, double* out);

/// Per-member masked sums: sums[m] += sum_{mask} a_m.
template <typename T>
void masked_sum_batch(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                      int nx, int ny, const T* a, std::ptrdiff_t as,
                      double* sums);

/// Per-member dots against one shared double plane:
/// sums[m] += sum_{mask} c * a_m.
template <typename T>
void dot_shared_batch(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                      int nx, int ny, const double* c, std::ptrdiff_t cs,
                      const T* a, std::ptrdiff_t as, double* sums);

/// Per-member fused update pair: for each active m,
/// y_m = a[m]*x_m + b[m]*y_m followed by z_m += c[m]*y_m.
template <typename T>
void lincomb_axpy_batch(int nb, int nx, int ny, const T* a, const T* x,
                        std::ptrdiff_t xs, const T* b, T* y,
                        std::ptrdiff_t ys, const T* c, T* z,
                        std::ptrdiff_t zs, const unsigned char* active);

/// y_m += a[m]*x_m for each active m.
template <typename T>
void axpy_batch(int nb, int nx, int ny, const T* a, const T* x,
                std::ptrdiff_t xs, T* y, std::ptrdiff_t ys,
                const unsigned char* active);

/// x_m *= a[m] for each active m.
template <typename T>
void scale_batch(int nb, int nx, int ny, const T* a, T* x,
                 std::ptrdiff_t xs, const unsigned char* active);

/// y = x, all members (row-wise memcpy over the widened rows).
template <typename T>
void copy_batch(int nb, int nx, int ny, const T* x, std::ptrdiff_t xs, T* y,
                std::ptrdiff_t ys);

/// x = v, all members.
template <typename T>
void fill_batch(int nb, int nx, int ny, T v, T* x, std::ptrdiff_t xs);

/// x = 0 on land cells, all members.
template <typename T>
void mask_zero_batch(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                     int nx, int ny, T* x, std::ptrdiff_t xs);

/// out_m = inv * in_m (diagonal preconditioner, shared inverse-diagonal
/// plane at storage precision). nb flops/point.
template <typename T>
void diag_apply_batch(const T* inv, std::ptrdiff_t is, int nb, int nx,
                      int ny, const T* in, std::ptrdiff_t ins, T* out,
                      std::ptrdiff_t outs);

/// out_m = mask ? in_m : 0 (identity preconditioner).
template <typename T>
void masked_copy_batch(const unsigned char* mask, std::ptrdiff_t ms,
                       int nb, int nx, int ny, const T* in,
                       std::ptrdiff_t ins, T* out, std::ptrdiff_t outs);

/// y64_m += a[m] * (double) x32_m for each active m — the batched
/// refinement update across the precision boundary.
void axpy_promoted_batch(int nb, int nx, int ny, const double* a,
                         const float* x, std::ptrdiff_t xs, double* y,
                         std::ptrdiff_t ys, const unsigned char* active);

// ---------------------------------------------------------------------
// Span API: land-skipping variants of the sweeps above, driven by a
// per-row ocean-span list instead of the mask (DESIGN.md §14). Spans for
// row j are spans[row_offset[j] .. row_offset[j+1]); every listed cell
// is ocean, every gap is land. Semantics per kernel class:
//   * Stencil sweeps (apply9/residual9/residual+norm²) and vector
//     updates (lincomb/axpy/lincomb_axpy/scale) SKIP land cells: land
//     values of the output are left untouched instead of rewritten.
//     Under the solver invariant that land cells of every iterate hold
//     +0.0 (established by mask_interior / the masked preconditioners,
//     preserved because every coupling toward land is exactly +0.0),
//     the skipped writes would have deposited the value already there —
//     except that an update with a negative coefficient can write -0.0
//     at land where the skip keeps +0.0. That sign never propagates:
//     coastline couplings multiply it by +0.0 and every reduction is
//     masked, so ocean cells and all reduced scalars stay bit-identical
//     (see DESIGN.md §14 for the full argument).
//   * Reductions (dot/dot3/sum/dot_shared, and the norm² part of
//     residual_norm2_9_span) iterate ocean cells only. Bit-identical to
//     the masked forms: the masked loops add a selected 0.0 per land
//     cell, and an IEEE accumulator is invariant under adding +0.0 (a
//     round-to-nearest sum can only produce -0.0 from two -0.0
//     operands, which a +0.0-seeded accumulator never presents).
//   * Pointwise mask-enforcing kernels (mask_zero/diag_apply/
//     masked_copy) write 0 in the gaps exactly like their masked twins,
//     so they stay UNCONDITIONALLY bit-identical and keep establishing
//     the land-zero invariant the skip kernels rely on.
// ---------------------------------------------------------------------

template <typename T>
void apply9_span(const Stencil9T<T>& c, const int* row_offset,
                 const Span* spans, int ny, const T* x, std::ptrdiff_t xs,
                 T* y, std::ptrdiff_t ys);

template <typename T>
void residual9_span(const Stencil9T<T>& c, const int* row_offset,
                    const Span* spans, int ny, const T* b,
                    std::ptrdiff_t bs, const T* x, std::ptrdiff_t xs, T* r,
                    std::ptrdiff_t rs);

template <typename T>
double residual_norm2_9_span(const Stencil9T<T>& c, const int* row_offset,
                             const Span* spans, int ny, const T* b,
                             std::ptrdiff_t bs, const T* x,
                             std::ptrdiff_t xs, T* r, std::ptrdiff_t rs,
                             double sum0);

template <typename T>
double dot_span(const int* row_offset, const Span* spans, int ny,
                const T* a, std::ptrdiff_t as, const T* b,
                std::ptrdiff_t bs, double sum0);

template <typename T>
void dot3_span(const int* row_offset, const Span* spans, int ny, const T* r,
               std::ptrdiff_t rs, const T* rp, std::ptrdiff_t ps,
               const T* z, std::ptrdiff_t zs, bool with_norm,
               double out[3]);

template <typename T>
double sum_span(const int* row_offset, const Span* spans, int ny,
                const T* a, std::ptrdiff_t as, double sum0);

template <typename T>
double dot_shared_span(const int* row_offset, const Span* spans, int ny,
                       const double* c, std::ptrdiff_t cs, const T* a,
                       std::ptrdiff_t as, double sum0);

template <typename T>
void lincomb_span(const int* row_offset, const Span* spans, int ny, T a,
                  const T* x, std::ptrdiff_t xs, T b, T* y,
                  std::ptrdiff_t ys);

template <typename T>
void axpy_span(const int* row_offset, const Span* spans, int ny, T a,
               const T* x, std::ptrdiff_t xs, T* y, std::ptrdiff_t ys);

template <typename T>
void lincomb_axpy_span(const int* row_offset, const Span* spans, int ny,
                       T a, const T* x, std::ptrdiff_t xs, T b, T* y,
                       std::ptrdiff_t ys, T c, T* z, std::ptrdiff_t zs);

template <typename T>
void scale_span(const int* row_offset, const Span* spans, int ny, T a,
                T* x, std::ptrdiff_t xs);

/// Gap-zeroing kernels need the row width `nx` to zero the trailing gap.
template <typename T>
void mask_zero_span(const int* row_offset, const Span* spans, int nx,
                    int ny, T* x, std::ptrdiff_t xs);

template <typename T>
void diag_apply_span(const T* inv, std::ptrdiff_t is, const int* row_offset,
                     const Span* spans, int nx, int ny, const T* in,
                     std::ptrdiff_t ins, T* out, std::ptrdiff_t outs);

template <typename T>
void masked_copy_span(const int* row_offset, const Span* spans, int nx,
                      int ny, const T* in, std::ptrdiff_t ins, T* out,
                      std::ptrdiff_t outs);

// Batched span forms (member-fastest interleaved planes, same contracts
// as the *_batch kernels; `active` masks members of the update kernels).

template <typename T>
void apply9_span_batch(const Stencil9T<T>& c, const int* row_offset,
                       const Span* spans, int nb, int ny, const T* x,
                       std::ptrdiff_t xs, T* y, std::ptrdiff_t ys);

template <typename T>
void residual9_span_batch(const Stencil9T<T>& c, const int* row_offset,
                          const Span* spans, int nb, int ny, const T* b,
                          std::ptrdiff_t bs, const T* x, std::ptrdiff_t xs,
                          T* r, std::ptrdiff_t rs);

template <typename T>
void residual_norm2_9_span_batch(const Stencil9T<T>& c,
                                 const int* row_offset, const Span* spans,
                                 int nb, int ny, const T* b,
                                 std::ptrdiff_t bs, const T* x,
                                 std::ptrdiff_t xs, T* r, std::ptrdiff_t rs,
                                 double* sums);

template <typename T>
void dot_span_batch(const int* row_offset, const Span* spans, int nb,
                    int ny, const T* a, std::ptrdiff_t as, const T* b,
                    std::ptrdiff_t bs, double* sums);

template <typename T>
void dot3_span_batch(const int* row_offset, const Span* spans, int nb,
                     int ny, const T* r, std::ptrdiff_t rs, const T* rp,
                     std::ptrdiff_t ps, const T* z, std::ptrdiff_t zs,
                     bool with_norm, double* out);

template <typename T>
void sum_span_batch(const int* row_offset, const Span* spans, int nb,
                    int ny, const T* a, std::ptrdiff_t as, double* sums);

template <typename T>
void dot_shared_span_batch(const int* row_offset, const Span* spans,
                           int nb, int ny, const double* c,
                           std::ptrdiff_t cs, const T* a, std::ptrdiff_t as,
                           double* sums);

template <typename T>
void lincomb_span_batch(const int* row_offset, const Span* spans, int nb,
                        int ny, const T* a, const T* x, std::ptrdiff_t xs,
                        const T* b, T* y, std::ptrdiff_t ys,
                        const unsigned char* active);

template <typename T>
void axpy_span_batch(const int* row_offset, const Span* spans, int nb,
                     int ny, const T* a, const T* x, std::ptrdiff_t xs,
                     T* y, std::ptrdiff_t ys, const unsigned char* active);

template <typename T>
void lincomb_axpy_span_batch(const int* row_offset, const Span* spans,
                             int nb, int ny, const T* a, const T* x,
                             std::ptrdiff_t xs, const T* b, T* y,
                             std::ptrdiff_t ys, const T* c, T* z,
                             std::ptrdiff_t zs,
                             const unsigned char* active);

template <typename T>
void scale_span_batch(const int* row_offset, const Span* spans, int nb,
                      int ny, const T* a, T* x, std::ptrdiff_t xs,
                      const unsigned char* active);

template <typename T>
void mask_zero_span_batch(const int* row_offset, const Span* spans, int nb,
                          int nx, int ny, T* x, std::ptrdiff_t xs);

template <typename T>
void diag_apply_span_batch(const T* inv, std::ptrdiff_t is,
                           const int* row_offset, const Span* spans,
                           int nb, int nx, int ny, const T* in,
                           std::ptrdiff_t ins, T* out, std::ptrdiff_t outs);

template <typename T>
void masked_copy_span_batch(const int* row_offset, const Span* spans,
                            int nb, int nx, int ny, const T* in,
                            std::ptrdiff_t ins, T* out,
                            std::ptrdiff_t outs);

#define MINIPOP_KERNELS_SPAN_EXTERN(T)                                     \
  extern template void apply9_span<T>(const Stencil9T<T>&, const int*,     \
                                      const Span*, int, const T*,          \
                                      std::ptrdiff_t, T*, std::ptrdiff_t); \
  extern template void residual9_span<T>(                                  \
      const Stencil9T<T>&, const int*, const Span*, int, const T*,         \
      std::ptrdiff_t, const T*, std::ptrdiff_t, T*, std::ptrdiff_t);       \
  extern template double residual_norm2_9_span<T>(                         \
      const Stencil9T<T>&, const int*, const Span*, int, const T*,         \
      std::ptrdiff_t, const T*, std::ptrdiff_t, T*, std::ptrdiff_t,        \
      double);                                                             \
  extern template double dot_span<T>(const int*, const Span*, int,         \
                                     const T*, std::ptrdiff_t, const T*,   \
                                     std::ptrdiff_t, double);              \
  extern template void dot3_span<T>(const int*, const Span*, int,          \
                                    const T*, std::ptrdiff_t, const T*,    \
                                    std::ptrdiff_t, const T*,              \
                                    std::ptrdiff_t, bool, double[3]);      \
  extern template double sum_span<T>(const int*, const Span*, int,         \
                                     const T*, std::ptrdiff_t, double);    \
  extern template double dot_shared_span<T>(                               \
      const int*, const Span*, int, const double*, std::ptrdiff_t,         \
      const T*, std::ptrdiff_t, double);                                   \
  extern template void lincomb_span<T>(const int*, const Span*, int, T,    \
                                       const T*, std::ptrdiff_t, T, T*,    \
                                       std::ptrdiff_t);                    \
  extern template void axpy_span<T>(const int*, const Span*, int, T,       \
                                    const T*, std::ptrdiff_t, T*,          \
                                    std::ptrdiff_t);                       \
  extern template void lincomb_axpy_span<T>(                               \
      const int*, const Span*, int, T, const T*, std::ptrdiff_t, T, T*,    \
      std::ptrdiff_t, T, T*, std::ptrdiff_t);                              \
  extern template void scale_span<T>(const int*, const Span*, int, T, T*,  \
                                     std::ptrdiff_t);                      \
  extern template void mask_zero_span<T>(const int*, const Span*, int,     \
                                         int, T*, std::ptrdiff_t);         \
  extern template void diag_apply_span<T>(                                 \
      const T*, std::ptrdiff_t, const int*, const Span*, int, int,         \
      const T*, std::ptrdiff_t, T*, std::ptrdiff_t);                       \
  extern template void masked_copy_span<T>(const int*, const Span*, int,   \
                                           int, const T*, std::ptrdiff_t,  \
                                           T*, std::ptrdiff_t);            \
  extern template void apply9_span_batch<T>(                               \
      const Stencil9T<T>&, const int*, const Span*, int, int, const T*,    \
      std::ptrdiff_t, T*, std::ptrdiff_t);                                 \
  extern template void residual9_span_batch<T>(                            \
      const Stencil9T<T>&, const int*, const Span*, int, int, const T*,    \
      std::ptrdiff_t, const T*, std::ptrdiff_t, T*, std::ptrdiff_t);       \
  extern template void residual_norm2_9_span_batch<T>(                     \
      const Stencil9T<T>&, const int*, const Span*, int, int, const T*,    \
      std::ptrdiff_t, const T*, std::ptrdiff_t, T*, std::ptrdiff_t,        \
      double*);                                                            \
  extern template void dot_span_batch<T>(const int*, const Span*, int,     \
                                         int, const T*, std::ptrdiff_t,    \
                                         const T*, std::ptrdiff_t,         \
                                         double*);                         \
  extern template void dot3_span_batch<T>(                                 \
      const int*, const Span*, int, int, const T*, std::ptrdiff_t,         \
      const T*, std::ptrdiff_t, const T*, std::ptrdiff_t, bool, double*);  \
  extern template void sum_span_batch<T>(const int*, const Span*, int,     \
                                         int, const T*, std::ptrdiff_t,    \
                                         double*);                         \
  extern template void dot_shared_span_batch<T>(                           \
      const int*, const Span*, int, int, const double*, std::ptrdiff_t,    \
      const T*, std::ptrdiff_t, double*);                                  \
  extern template void lincomb_span_batch<T>(                              \
      const int*, const Span*, int, int, const T*, const T*,               \
      std::ptrdiff_t, const T*, T*, std::ptrdiff_t,                        \
      const unsigned char*);                                               \
  extern template void axpy_span_batch<T>(                                 \
      const int*, const Span*, int, int, const T*, const T*,               \
      std::ptrdiff_t, T*, std::ptrdiff_t, const unsigned char*);           \
  extern template void lincomb_axpy_span_batch<T>(                         \
      const int*, const Span*, int, int, const T*, const T*,               \
      std::ptrdiff_t, const T*, T*, std::ptrdiff_t, const T*, T*,          \
      std::ptrdiff_t, const unsigned char*);                               \
  extern template void scale_span_batch<T>(const int*, const Span*, int,   \
                                           int, const T*, T*,              \
                                           std::ptrdiff_t,                 \
                                           const unsigned char*);          \
  extern template void mask_zero_span_batch<T>(const int*, const Span*,    \
                                               int, int, int, T*,          \
                                               std::ptrdiff_t);            \
  extern template void diag_apply_span_batch<T>(                           \
      const T*, std::ptrdiff_t, const int*, const Span*, int, int, int,    \
      const T*, std::ptrdiff_t, T*, std::ptrdiff_t);                       \
  extern template void masked_copy_span_batch<T>(                          \
      const int*, const Span*, int, int, int, const T*, std::ptrdiff_t,    \
      T*, std::ptrdiff_t);

MINIPOP_KERNELS_SPAN_EXTERN(double)
MINIPOP_KERNELS_SPAN_EXTERN(float)
#undef MINIPOP_KERNELS_SPAN_EXTERN

// The instantiations live in kernels.cpp; only float and double exist,
// and only core widths B in {0, 1}.
#define MINIPOP_KERNELS_EXTERN(T)                                          \
  extern template void apply9<T>(const Stencil9T<T>&, int, int, const T*,  \
                                 std::ptrdiff_t, T*, std::ptrdiff_t);      \
  extern template void residual9<T>(const Stencil9T<T>&, int, int,         \
                                    const T*, std::ptrdiff_t, const T*,    \
                                    std::ptrdiff_t, T*, std::ptrdiff_t);   \
  extern template double residual_norm2_9<T>(                              \
      const Stencil9T<T>&, const unsigned char*, std::ptrdiff_t, int, int, \
      const T*, std::ptrdiff_t, const T*, std::ptrdiff_t, T*,              \
      std::ptrdiff_t, double);                                             \
  extern template double masked_dot<T>(const unsigned char*,               \
                                       std::ptrdiff_t, int, int, const T*, \
                                       std::ptrdiff_t, const T*,           \
                                       std::ptrdiff_t, double);            \
  extern template void masked_dot3<T>(const unsigned char*, std::ptrdiff_t,\
                                      int, int, const T*, std::ptrdiff_t,  \
                                      const T*, std::ptrdiff_t, const T*,  \
                                      std::ptrdiff_t, bool, double[3]);    \
  extern template double masked_sum<T>(const unsigned char*,               \
                                       std::ptrdiff_t, int, int, const T*, \
                                       std::ptrdiff_t, double);            \
  extern template double dot_shared<T>(const unsigned char*,               \
                                       std::ptrdiff_t, int, int,           \
                                       const double*, std::ptrdiff_t,      \
                                       const T*, std::ptrdiff_t, double);  \
  extern template void lincomb<T>(int, int, T, const T*, std::ptrdiff_t,   \
                                  T, T*, std::ptrdiff_t);                  \
  extern template void axpy<T>(int, int, T, const T*, std::ptrdiff_t, T*,  \
                               std::ptrdiff_t);                            \
  extern template void lincomb_axpy<T>(int, int, T, const T*,              \
                                       std::ptrdiff_t, T, T*,              \
                                       std::ptrdiff_t, T, T*,              \
                                       std::ptrdiff_t);                    \
  extern template void scale<T>(int, int, T, T*, std::ptrdiff_t);          \
  extern template void copy<T>(int, int, const T*, std::ptrdiff_t, T*,     \
                               std::ptrdiff_t);                            \
  extern template void fill<T>(int, int, T, T*, std::ptrdiff_t);           \
  extern template void mask_zero<T>(const unsigned char*, std::ptrdiff_t,  \
                                    int, int, T*, std::ptrdiff_t);         \
  extern template void apply9_batch<T>(const Stencil9T<T>&, int, int, int, \
                                       const T*, std::ptrdiff_t, T*,       \
                                       std::ptrdiff_t);                    \
  extern template void residual9_batch<T>(const Stencil9T<T>&, int, int,   \
                                          int, const T*, std::ptrdiff_t,   \
                                          const T*, std::ptrdiff_t, T*,    \
                                          std::ptrdiff_t);                 \
  extern template void residual_norm2_9_batch<T>(                          \
      const Stencil9T<T>&, const unsigned char*, std::ptrdiff_t, int, int, \
      int, const T*, std::ptrdiff_t, const T*, std::ptrdiff_t, T*,         \
      std::ptrdiff_t, double*);                                            \
  extern template void dot_batch<T>(const unsigned char*, std::ptrdiff_t,  \
                                    int, int, int, const T*,               \
                                    std::ptrdiff_t, const T*,              \
                                    std::ptrdiff_t, double*);              \
  extern template void dot3_batch<T>(const unsigned char*, std::ptrdiff_t, \
                                     int, int, int, const T*,              \
                                     std::ptrdiff_t, const T*,             \
                                     std::ptrdiff_t, const T*,             \
                                     std::ptrdiff_t, bool, double*);       \
  extern template void masked_sum_batch<T>(const unsigned char*,           \
                                           std::ptrdiff_t, int, int, int,  \
                                           const T*, std::ptrdiff_t,       \
                                           double*);                       \
  extern template void dot_shared_batch<T>(                                \
      const unsigned char*, std::ptrdiff_t, int, int, int, const double*,  \
      std::ptrdiff_t, const T*, std::ptrdiff_t, double*);                  \
  extern template void lincomb_axpy_batch<T>(int, int, int, const T*,      \
                                             const T*, std::ptrdiff_t,     \
                                             const T*, T*, std::ptrdiff_t, \
                                             const T*, T*, std::ptrdiff_t, \
                                             const unsigned char*);        \
  extern template void axpy_batch<T>(int, int, int, const T*, const T*,    \
                                     std::ptrdiff_t, T*, std::ptrdiff_t,   \
                                     const unsigned char*);                \
  extern template void scale_batch<T>(int, int, int, const T*, T*,         \
                                      std::ptrdiff_t,                      \
                                      const unsigned char*);               \
  extern template void copy_batch<T>(int, int, int, const T*,              \
                                     std::ptrdiff_t, T*, std::ptrdiff_t);  \
  extern template void fill_batch<T>(int, int, int, T, T*,                 \
                                     std::ptrdiff_t);                      \
  extern template void mask_zero_batch<T>(const unsigned char*,            \
                                          std::ptrdiff_t, int, int, int,   \
                                          T*, std::ptrdiff_t);             \
  extern template void diag_apply_batch<T>(const T*, std::ptrdiff_t, int,  \
                                           int, int, const T*,             \
                                           std::ptrdiff_t, T*,             \
                                           std::ptrdiff_t);                \
  extern template void masked_copy_batch<T>(const unsigned char*,          \
                                            std::ptrdiff_t, int, int, int, \
                                            const T*, std::ptrdiff_t, T*,  \
                                            std::ptrdiff_t);

MINIPOP_KERNELS_EXTERN(double)
MINIPOP_KERNELS_EXTERN(float)
#undef MINIPOP_KERNELS_EXTERN

extern template void convert<float, double>(int, int, const double*,
                                            std::ptrdiff_t, float*,
                                            std::ptrdiff_t);
extern template void convert<double, float>(int, int, const float*,
                                            std::ptrdiff_t, double*,
                                            std::ptrdiff_t);

}  // namespace minipop::solver::kernels
