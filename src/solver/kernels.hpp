// Hot-path kernels of the barotropic solvers.
//
// Both ChronGear (Alg. 1) and P-CSI (Alg. 2) spend their rank-local time
// in the same few sweeps: the nine-point matvec, the residual update, the
// masked inner products and the vector updates. These are memory-bound
// stencil/streaming loops, so the kernels here are written to (a) touch
// each field exactly once per logical operation — fused residual, fused
// residual+norm², fused triple dot, fused lincomb+axpy — and (b) present
// the compiler with raw, restrict-qualified row pointers so the inner
// loops vectorize without runtime alias checks or per-element index
// arithmetic.
//
// Every kernel is templated on the storage scalar T (explicitly
// instantiated for float and double; nothing else links). Element
// arithmetic runs at storage precision — fp32 storage exists to halve
// bytes per point, and widening every operand would forfeit half the
// vector lanes — but every REDUCTION accumulates in double regardless of
// T: a float accumulator over a 0.1-degree block (~10^5 points) loses
// ~5 digits to cancellation, which is exactly the failure mode the
// mixed-precision refinement loop must be able to measure, not suffer.
//
// Contracts shared by every kernel:
//   * All pointers address the FIRST INTERIOR element of a block-local
//     row-major array; `*_stride` is the padded row pitch in elements.
//     A padded field's interior pointer is `base + h*pitch + h`.
//   * Distinct array arguments must not alias (they are restrict-
//     qualified); rows of one padded array never overlap because the
//     pitch exceeds the interior width.
//   * For T = double, floating-point evaluation order is IDENTICAL to
//     the naive scalar loops these kernels replace (same per-element
//     expression order, same row-major reduction order), so results are
//     bit-for-bit equal to the pre-kernel implementation and
//     deterministic across runs. The float instantiation keeps the same
//     order at float precision (and double reduction accumulators), so
//     it too is deterministic and matches a naive fp32 scalar loop.
//   * No bounds checks: callers guarantee shapes. (Bounds checking in the
//     object wrappers is governed by MINIPOP_BOUNDS_CHECK; the kernels
//     never had any.)
#pragma once

#include <cstddef>

#if defined(_MSC_VER)
#define MINIPOP_RESTRICT __restrict
#else
#define MINIPOP_RESTRICT __restrict__
#endif

namespace minipop::solver::kernels {

/// Base pointers of one block's nine coefficient arrays (unpadded,
/// bnx-pitch, row-major — the layout DistOperator stores). Order follows
/// grid::Dir. `stride` is the coefficient row pitch (= block nx).
template <typename T>
struct Stencil9T {
  const T* c0;   ///< center
  const T* ce;   ///< east
  const T* cw;   ///< west
  const T* cn;   ///< north
  const T* cs;   ///< south
  const T* cne;  ///< north-east
  const T* cnw;  ///< north-west
  const T* cse;  ///< south-east
  const T* csw;  ///< south-west
  std::ptrdiff_t stride;
};

using Stencil9 = Stencil9T<double>;
using Stencil9f = Stencil9T<float>;

/// y = A x over an nx*ny interior. x must have valid halo rows/columns
/// around the interior (pitch xs); y is written interior-only.
/// 9 flops/point by the paper's counting convention.
template <typename T>
void apply9(const Stencil9T<T>& c, int nx, int ny, const T* x,
            std::ptrdiff_t xs, T* y, std::ptrdiff_t ys);

/// Fused residual r = b - A x in ONE sweep (the seed code swept twice:
/// apply, then subtract). 10 flops/point.
template <typename T>
void residual9(const Stencil9T<T>& c, int nx, int ny, const T* b,
               std::ptrdiff_t bs, const T* x, std::ptrdiff_t xs, T* r,
               std::ptrdiff_t rs);

/// Fused residual + masked norm²: r = b - A x and return
/// sum0 + sum_{mask} r², all in ONE sweep — the solvers' convergence
/// check at zero extra field passes. Accumulation CONTINUES from `sum0`
/// (one running scalar across a rank's blocks, like the seed loops), so
/// the result matches masked_dot over the same cells bit-for-bit. The
/// accumulator is double for every T (each r element is widened before
/// squaring).
template <typename T>
double residual_norm2_9(const Stencil9T<T>& c, const unsigned char* mask,
                        std::ptrdiff_t ms, int nx, int ny, const T* b,
                        std::ptrdiff_t bs, const T* x, std::ptrdiff_t xs,
                        T* r, std::ptrdiff_t rs, double sum0);

/// Masked inner product sum0 + sum_{mask} a*b, row-major accumulation
/// continuing from `sum0` — callers thread one running accumulator
/// through all local blocks (FP association matters; starting each block
/// at zero and adding partials would perturb the last bits). Operands
/// are widened to double BEFORE the multiply, so for T = float the
/// product itself is exact and only storage rounding remains.
template <typename T>
double masked_dot(const unsigned char* mask, std::ptrdiff_t ms, int nx,
                  int ny, const T* a, std::ptrdiff_t as, const T* b,
                  std::ptrdiff_t bs, double sum0);

/// Fused masked dots of ChronGear steps 7-9 in ONE sweep:
///   out[0] += <r, rp>, out[1] += <z, rp>, and if with_norm
///   out[2] += <r, r>.
/// Each accumulator is double (widen-then-multiply) and its add order
/// matches the equivalent masked_dot call.
template <typename T>
void masked_dot3(const unsigned char* mask, std::ptrdiff_t ms, int nx,
                 int ny, const T* r, std::ptrdiff_t rs, const T* rp,
                 std::ptrdiff_t ps, const T* z, std::ptrdiff_t zs,
                 bool with_norm, double out[3]);

/// y = a*x + b*y.
template <typename T>
void lincomb(int nx, int ny, T a, const T* x, std::ptrdiff_t xs, T b, T* y,
             std::ptrdiff_t ys);

/// y += a*x.
template <typename T>
void axpy(int nx, int ny, T a, const T* x, std::ptrdiff_t xs, T* y,
          std::ptrdiff_t ys);

/// Fused vector update pair (P-CSI steps 7-8; ChronGear steps 13-16 as
/// two calls): y = a*x + b*y followed by z += c*y, in ONE sweep.
template <typename T>
void lincomb_axpy(int nx, int ny, T a, const T* x, std::ptrdiff_t xs, T b,
                  T* y, std::ptrdiff_t ys, T c, T* z, std::ptrdiff_t zs);

/// x *= a.
template <typename T>
void scale(int nx, int ny, T a, T* x, std::ptrdiff_t xs);

/// y = x (row-wise memcpy).
template <typename T>
void copy(int nx, int ny, const T* x, std::ptrdiff_t xs, T* y,
          std::ptrdiff_t ys);

/// x = v.
template <typename T>
void fill(int nx, int ny, T v, T* x, std::ptrdiff_t xs);

/// x = 0 on land (mask == 0) cells.
template <typename T>
void mask_zero(const unsigned char* mask, std::ptrdiff_t ms, int nx, int ny,
               T* x, std::ptrdiff_t xs);

/// Precision converters: y (dst scalar) = x (src scalar), value-converted
/// per element. Used to demote fp64 residuals into the fp32 inner solve
/// and promote fp32 corrections back.
template <typename D, typename S>
void convert(int nx, int ny, const S* x, std::ptrdiff_t xs, D* y,
             std::ptrdiff_t ys);

// ---------------------------------------------------------------------
// Batched multi-RHS kernels (double-only — batching composes with the
// fp64 solver path; see DESIGN.md §10).
//
// Batched fields are member-fastest interleaved SoA planes: member m of
// interior cell (i, j) lives at base[j*stride + i*nb + m], neighbors of
// cell i sit nb elements away. Each kernel loads a cell's nine stencil
// coefficients (or its mask byte) ONCE and reuses them across all nb
// members — coefficient bytes are read once per point instead of once
// per point per member, which is the batching bandwidth win.
//
// Bit-for-bit contract: for every member m the per-element expression
// order and the row-major reduction order are IDENTICAL to the scalar
// kernels above, so member m of any batched result equals the scalar
// kernel run on member m's plane exactly.
//
// Reductions write/continue per-member accumulators in a caller array
// (sums[m]); update kernels take per-member coefficients and an
// optional `active` mask of nb bytes — members with active[m] == 0 are
// not written (their planes stay frozen), which implements per-member
// convergence masking in the batched solvers. A null `active` means all
// members are active.
// ---------------------------------------------------------------------

/// y = A x for all nb members. 9*nb flops/point.
void apply9_batch(const Stencil9& c, int nb, int nx, int ny,
                  const double* x, std::ptrdiff_t xs, double* y,
                  std::ptrdiff_t ys);

/// r = b - A x for all nb members. 10*nb flops/point.
void residual9_batch(const Stencil9& c, int nb, int nx, int ny,
                     const double* b, std::ptrdiff_t bs, const double* x,
                     std::ptrdiff_t xs, double* r, std::ptrdiff_t rs);

/// Fused residual + per-member masked norm²: r = b - A x and
/// sums[m] += sum_{mask} r_m² — accumulation CONTINUES from the caller's
/// sums[] (threaded across a rank's blocks, like the scalar kernels).
void residual_norm2_9_batch(const Stencil9& c, const unsigned char* mask,
                            std::ptrdiff_t ms, int nb, int nx, int ny,
                            const double* b, std::ptrdiff_t bs,
                            const double* x, std::ptrdiff_t xs, double* r,
                            std::ptrdiff_t rs, double* sums);

/// Per-member masked dots: sums[m] += sum_{mask} a_m * b_m in one pass.
void dot_batch(const unsigned char* mask, std::ptrdiff_t ms, int nb,
               int nx, int ny, const double* a, std::ptrdiff_t as,
               const double* b, std::ptrdiff_t bs, double* sums);

/// Per-member fused ChronGear dots, grouped for ONE vector allreduce:
///   out[m]        += <r_m, rp_m>        (rho)
///   out[nb + m]   += <z_m, rp_m>        (delta)
///   out[2nb + m]  += <r_m, r_m>         (norm, only if with_norm)
void dot3_batch(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                int nx, int ny, const double* r, std::ptrdiff_t rs,
                const double* rp, std::ptrdiff_t ps, const double* z,
                std::ptrdiff_t zs, bool with_norm, double* out);

/// Per-member fused update pair: for each active m,
/// y_m = a[m]*x_m + b[m]*y_m followed by z_m += c[m]*y_m.
void lincomb_axpy_batch(int nb, int nx, int ny, const double* a,
                        const double* x, std::ptrdiff_t xs,
                        const double* b, double* y, std::ptrdiff_t ys,
                        const double* c, double* z, std::ptrdiff_t zs,
                        const unsigned char* active);

/// y_m += a[m]*x_m for each active m.
void axpy_batch(int nb, int nx, int ny, const double* a, const double* x,
                std::ptrdiff_t xs, double* y, std::ptrdiff_t ys,
                const unsigned char* active);

/// x_m *= a[m] for each active m.
void scale_batch(int nb, int nx, int ny, const double* a, double* x,
                 std::ptrdiff_t xs, const unsigned char* active);

/// y = x, all members (row-wise memcpy over the widened rows).
void copy_batch(int nb, int nx, int ny, const double* x, std::ptrdiff_t xs,
                double* y, std::ptrdiff_t ys);

/// x = v, all members.
void fill_batch(int nb, int nx, int ny, double v, double* x,
                std::ptrdiff_t xs);

/// x = 0 on land cells, all members.
void mask_zero_batch(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                     int nx, int ny, double* x, std::ptrdiff_t xs);

/// out_m = inv * in_m (diagonal preconditioner, shared inverse-diagonal
/// plane). nb flops/point.
void diag_apply_batch(const double* inv, std::ptrdiff_t is, int nb, int nx,
                      int ny, const double* in, std::ptrdiff_t ins,
                      double* out, std::ptrdiff_t outs);

/// out_m = mask ? in_m : 0 (identity preconditioner).
void masked_copy_batch(const unsigned char* mask, std::ptrdiff_t ms,
                       int nb, int nx, int ny, const double* in,
                       std::ptrdiff_t ins, double* out,
                       std::ptrdiff_t outs);

// The instantiations live in kernels.cpp; only float and double exist.
#define MINIPOP_KERNELS_EXTERN(T)                                          \
  extern template void apply9<T>(const Stencil9T<T>&, int, int, const T*,  \
                                 std::ptrdiff_t, T*, std::ptrdiff_t);      \
  extern template void residual9<T>(const Stencil9T<T>&, int, int,         \
                                    const T*, std::ptrdiff_t, const T*,    \
                                    std::ptrdiff_t, T*, std::ptrdiff_t);   \
  extern template double residual_norm2_9<T>(                              \
      const Stencil9T<T>&, const unsigned char*, std::ptrdiff_t, int, int, \
      const T*, std::ptrdiff_t, const T*, std::ptrdiff_t, T*,              \
      std::ptrdiff_t, double);                                             \
  extern template double masked_dot<T>(const unsigned char*,               \
                                       std::ptrdiff_t, int, int, const T*, \
                                       std::ptrdiff_t, const T*,           \
                                       std::ptrdiff_t, double);            \
  extern template void masked_dot3<T>(const unsigned char*, std::ptrdiff_t,\
                                      int, int, const T*, std::ptrdiff_t,  \
                                      const T*, std::ptrdiff_t, const T*,  \
                                      std::ptrdiff_t, bool, double[3]);    \
  extern template void lincomb<T>(int, int, T, const T*, std::ptrdiff_t,   \
                                  T, T*, std::ptrdiff_t);                  \
  extern template void axpy<T>(int, int, T, const T*, std::ptrdiff_t, T*,  \
                               std::ptrdiff_t);                            \
  extern template void lincomb_axpy<T>(int, int, T, const T*,              \
                                       std::ptrdiff_t, T, T*,              \
                                       std::ptrdiff_t, T, T*,              \
                                       std::ptrdiff_t);                    \
  extern template void scale<T>(int, int, T, T*, std::ptrdiff_t);          \
  extern template void copy<T>(int, int, const T*, std::ptrdiff_t, T*,     \
                               std::ptrdiff_t);                            \
  extern template void fill<T>(int, int, T, T*, std::ptrdiff_t);           \
  extern template void mask_zero<T>(const unsigned char*, std::ptrdiff_t,  \
                                    int, int, T*, std::ptrdiff_t);

MINIPOP_KERNELS_EXTERN(double)
MINIPOP_KERNELS_EXTERN(float)
#undef MINIPOP_KERNELS_EXTERN

extern template void convert<float, double>(int, int, const double*,
                                            std::ptrdiff_t, float*,
                                            std::ptrdiff_t);
extern template void convert<double, float>(int, int, const float*,
                                            std::ptrdiff_t, double*,
                                            std::ptrdiff_t);

}  // namespace minipop::solver::kernels
