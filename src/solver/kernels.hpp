// Hot-path kernels of the barotropic solvers.
//
// Both ChronGear (Alg. 1) and P-CSI (Alg. 2) spend their rank-local time
// in the same few sweeps: the nine-point matvec, the residual update, the
// masked inner products and the vector updates. These are memory-bound
// stencil/streaming loops, so the kernels here are written to (a) touch
// each field exactly once per logical operation — fused residual, fused
// residual+norm², fused triple dot, fused lincomb+axpy — and (b) present
// the compiler with raw, restrict-qualified row pointers so the inner
// loops vectorize without runtime alias checks or per-element index
// arithmetic.
//
// Contracts shared by every kernel:
//   * All pointers address the FIRST INTERIOR element of a block-local
//     row-major array; `*_stride` is the padded row pitch in elements.
//     A padded field's interior pointer is `base + h*pitch + h`.
//   * Distinct array arguments must not alias (they are restrict-
//     qualified); rows of one padded array never overlap because the
//     pitch exceeds the interior width.
//   * Floating-point evaluation order is IDENTICAL to the naive scalar
//     loops these kernels replace (same per-element expression order,
//     same row-major reduction order), so results are bit-for-bit equal
//     to the pre-kernel implementation and deterministic across runs.
//   * No bounds checks: callers guarantee shapes. (Bounds checking in the
//     object wrappers is governed by MINIPOP_BOUNDS_CHECK; the kernels
//     never had any.)
#pragma once

#include <cstddef>

#if defined(_MSC_VER)
#define MINIPOP_RESTRICT __restrict
#else
#define MINIPOP_RESTRICT __restrict__
#endif

namespace minipop::solver::kernels {

/// Base pointers of one block's nine coefficient arrays (unpadded,
/// bnx-pitch, row-major — the layout DistOperator stores). Order follows
/// grid::Dir. `stride` is the coefficient row pitch (= block nx).
struct Stencil9 {
  const double* c0;   ///< center
  const double* ce;   ///< east
  const double* cw;   ///< west
  const double* cn;   ///< north
  const double* cs;   ///< south
  const double* cne;  ///< north-east
  const double* cnw;  ///< north-west
  const double* cse;  ///< south-east
  const double* csw;  ///< south-west
  std::ptrdiff_t stride;
};

/// y = A x over an nx*ny interior. x must have valid halo rows/columns
/// around the interior (pitch xs); y is written interior-only.
/// 9 flops/point by the paper's counting convention.
void apply9(const Stencil9& c, int nx, int ny, const double* x,
            std::ptrdiff_t xs, double* y, std::ptrdiff_t ys);

/// Fused residual r = b - A x in ONE sweep (the seed code swept twice:
/// apply, then subtract). 10 flops/point.
void residual9(const Stencil9& c, int nx, int ny, const double* b,
               std::ptrdiff_t bs, const double* x, std::ptrdiff_t xs,
               double* r, std::ptrdiff_t rs);

/// Fused residual + masked norm²: r = b - A x and return
/// sum0 + sum_{mask} r², all in ONE sweep — the solvers' convergence
/// check at zero extra field passes. Accumulation CONTINUES from `sum0`
/// (one running scalar across a rank's blocks, like the seed loops), so
/// the result matches masked_dot over the same cells bit-for-bit.
double residual_norm2_9(const Stencil9& c, const unsigned char* mask,
                        std::ptrdiff_t ms, int nx, int ny, const double* b,
                        std::ptrdiff_t bs, const double* x,
                        std::ptrdiff_t xs, double* r, std::ptrdiff_t rs,
                        double sum0);

/// Masked inner product sum0 + sum_{mask} a*b, row-major accumulation
/// continuing from `sum0` — callers thread one running accumulator
/// through all local blocks (FP association matters; starting each block
/// at zero and adding partials would perturb the last bits).
double masked_dot(const unsigned char* mask, std::ptrdiff_t ms, int nx,
                  int ny, const double* a, std::ptrdiff_t as,
                  const double* b, std::ptrdiff_t bs, double sum0);

/// Fused masked dots of ChronGear steps 7-9 in ONE sweep:
///   out[0] += <r, rp>, out[1] += <z, rp>, and if with_norm
///   out[2] += <r, r>.
/// Each accumulator's order matches the equivalent masked_dot call.
void masked_dot3(const unsigned char* mask, std::ptrdiff_t ms, int nx,
                 int ny, const double* r, std::ptrdiff_t rs,
                 const double* rp, std::ptrdiff_t ps, const double* z,
                 std::ptrdiff_t zs, bool with_norm, double out[3]);

/// y = a*x + b*y.
void lincomb(int nx, int ny, double a, const double* x, std::ptrdiff_t xs,
             double b, double* y, std::ptrdiff_t ys);

/// y += a*x.
void axpy(int nx, int ny, double a, const double* x, std::ptrdiff_t xs,
          double* y, std::ptrdiff_t ys);

/// Fused vector update pair (P-CSI steps 7-8; ChronGear steps 13-16 as
/// two calls): y = a*x + b*y followed by z += c*y, in ONE sweep.
void lincomb_axpy(int nx, int ny, double a, const double* x,
                  std::ptrdiff_t xs, double b, double* y, std::ptrdiff_t ys,
                  double c, double* z, std::ptrdiff_t zs);

/// x *= a.
void scale(int nx, int ny, double a, double* x, std::ptrdiff_t xs);

/// y = x (row-wise memcpy).
void copy(int nx, int ny, const double* x, std::ptrdiff_t xs, double* y,
          std::ptrdiff_t ys);

/// x = v.
void fill(int nx, int ny, double v, double* x, std::ptrdiff_t xs);

/// x = 0 on land (mask == 0) cells.
void mask_zero(const unsigned char* mask, std::ptrdiff_t ms, int nx, int ny,
               double* x, std::ptrdiff_t xs);

}  // namespace minipop::solver::kernels
