// Decorators over the batched execution core, mirroring the scalar
// decorator stack so SolverConfig composes identically at any batch
// width:
//
//   BatchedMixedPrecisionSolver — fp32/mixed arithmetic over batched
//     lockstep sweeps. kFp32 demotes the whole batch and runs the
//     core's fp32 storage path; kMixed runs an fp64 outer refinement
//     loop whose per-sweep correction is ONE batched fp32 inner solve
//     (members that have reached the fp64 tolerance get their residual
//     plane zeroed, so the inner solve's zero-RHS early-out freezes
//     them instantly and the batch stops paying for them after the
//     next retirement compaction).
//
//   BatchedResilientSolver — detect → recover → fall back with
//     per-member recovery: each attempt ends with one B-element kMax
//     agreement allreduce of the members' failure codes; members that
//     converged are final, and ONLY the failed members are gathered
//     into a narrow recovery sub-batch that walks the scalar
//     decorator's chain (escalate precision → checkpoint restart →
//     Lanczos re-estimation → batched fallback solvers → scalar demux
//     as last resort). One diverging member therefore never freezes or
//     restarts the healthy rest of the batch.
//
//   SequentialBatchedSolver — adapts the fully decorated SCALAR solver
//     stack to the BatchedSolver interface by solving members one at a
//     time. This is the composition path for solvers without a lockstep
//     batched core (PCG, pipelined CG): every SolverConfig keeps a
//     working solve_batch, just without the fused-lane amortization.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/solver/batched_solver.hpp"
#include "src/solver/resilient_solver.hpp"

namespace minipop::solver {

/// Batched twin of MixedPrecisionSolver. `fp64_twin` must be a
/// BatchedPcsiSolver or BatchedChronGearSolver; it defines the lockstep
/// iteration run at every precision and is the escalation target.
class BatchedMixedPrecisionSolver final : public BatchedSolver {
 public:
  BatchedMixedPrecisionSolver(std::unique_ptr<BatchedSolver> fp64_twin,
                              const SolverOptions& options);

  BatchSolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m,
      const comm::DistFieldBatch& b, comm::DistFieldBatch& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) override;

  /// fp32 storage entry point: delegate straight to the twin's fp32
  /// core (the decorator's own job — choosing the arithmetic — is
  /// already decided by the caller here).
  BatchSolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m,
      const comm::DistFieldBatch32& b, comm::DistFieldBatch32& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) override;

  /// e.g. "mixed(batched_pcsi)"; the precision prefix names the
  /// configured mode even while escalation forces fp64.
  std::string name() const override;

  Precision precision() const { return opt_.precision; }
  /// Escalation switch (BatchedResilientSolver): true routes solves
  /// through the fp64 twin until reset.
  void set_forced_fp64(bool forced) { forced_fp64_ = forced; }
  bool forced_fp64() const { return forced_fp64_; }

  BatchedSolver& fp64_twin() { return *twin_; }
  /// The wrapped batched P-CSI, or nullptr for a ChronGear twin (bounds
  /// re-estimation reaches through this; the fp32/mixed paths read the
  /// twin's bounds at solve time, so set_bounds needs no mirroring).
  BatchedPcsiSolver* pcsi() { return pcsi_; }

 private:
  BatchSolveStats solve_fp32(comm::Communicator& comm,
                             const comm::HaloExchanger& halo,
                             const DistOperator& a, Preconditioner& m,
                             const comm::DistFieldBatch& b,
                             comm::DistFieldBatch& x);
  BatchSolveStats solve_mixed(comm::Communicator& comm,
                              const comm::HaloExchanger& halo,
                              const DistOperator& a, Preconditioner& m,
                              const comm::DistFieldBatch& b,
                              comm::DistFieldBatch& x,
                              comm::HaloFreshness x_fresh);
  /// Fresh inner core for one refinement solve, configured with the
  /// refine_* knobs and the twin's CURRENT eigenvalue bounds.
  std::unique_ptr<BatchedSolver> make_inner() const;

  std::unique_ptr<BatchedSolver> twin_;
  BatchedPcsiSolver* pcsi_ = nullptr;     ///< view into twin_, if P-CSI
  BatchedChronGearSolver* cg_ = nullptr;  ///< view into twin_, if ChronGear
  SolverOptions opt_;
  bool forced_fp64_ = false;
};

/// Batched twin of ResilientSolver with per-member recovery (see the
/// file comment). Recovery policy, event vocabulary and chain order are
/// shared with the scalar decorator; RecoveryEvent::members records how
/// many members entered each transition.
class BatchedResilientSolver final : public BatchedSolver {
 public:
  explicit BatchedResilientSolver(std::unique_ptr<BatchedSolver> primary,
                                  RecoveryPolicy policy = {});

  /// Append a batched fallback stage (tried in order).
  void add_fallback(std::unique_ptr<BatchedSolver> solver,
                    bool use_diagonal_precond = false);

  /// Append a SCALAR fallback stage: the failed members are solved one
  /// at a time through `solver` — the last-resort configuration that
  /// shares no code with the lockstep batched engine.
  void add_scalar_fallback(std::unique_ptr<IterativeSolver> solver,
                           bool use_diagonal_precond = false);

  BatchSolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m,
      const comm::DistFieldBatch& b, comm::DistFieldBatch& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) override;

  std::string name() const override;

  /// Recovery transitions recorded over this solver's lifetime.
  const std::vector<RecoveryEvent>& events() const { return events_; }
  void clear_events() { events_.clear(); }

  BatchedSolver& primary() { return *chain_.front().batched; }

 private:
  /// One stage of the recovery chain: a batched solver, or a scalar
  /// solver run member-by-member (exactly one of the two is set).
  struct Stage {
    std::unique_ptr<BatchedSolver> batched;
    std::unique_ptr<IterativeSolver> scalar;
    bool use_diagonal_precond = false;
  };

  /// Push a snapshot of the full-width x onto the checkpoint ring
  /// (keeps 2, like the scalar decorator's entry snapshots).
  void checkpoint(const comm::DistFieldBatch& x);
  /// Run `stage` on the working batch (member demux for scalar stages).
  BatchSolveStats run_stage(Stage& st, comm::Communicator& comm,
                            const comm::HaloExchanger& halo,
                            const DistOperator& a, Preconditioner& m,
                            const comm::DistFieldBatch& bw,
                            comm::DistFieldBatch& xw,
                            comm::HaloFreshness fresh);

  std::vector<Stage> chain_;
  RecoveryPolicy policy_;
  std::vector<RecoveryEvent> events_;
  std::deque<comm::DistFieldBatch> ring_;  ///< [0] = newest entry snapshot
};

/// Adapter: the decorated scalar stack as a BatchedSolver, one member
/// at a time. Non-owning — the factory keeps the scalar stack alive for
/// BarotropicSolver::solve(); this view shares it.
class SequentialBatchedSolver final : public BatchedSolver {
 public:
  explicit SequentialBatchedSolver(IterativeSolver* scalar);

  BatchSolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m,
      const comm::DistFieldBatch& b, comm::DistFieldBatch& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) override;

  std::string name() const override;

 private:
  IterativeSolver* scalar_;  ///< non-owning; outlives this adapter
};

}  // namespace minipop::solver
