// Land-span execution plans (DESIGN.md §14).
//
// The block decomposition eliminates all-land *blocks*, but inside every
// surviving block the fused kernels still sweep full rows and pay a
// per-cell mask load + select — on POP-like bathymetries 30–50% of the
// swept points are land, so a third of the hot-path bandwidth moves
// zeros. A BlockSpans compresses a block's ocean mask into, per row, a
// compact list of contiguous ocean runs ("spans"); the *_span kernels in
// kernels.hpp then iterate mask-free and unit-stride over those runs.
//
// The plan is computed once per operator (and once per comm-avoid
// extension depth) from exactly the mask the masked kernels read, so the
// span sweeps visit precisely the cells whose masked contribution is
// non-trivial today — the bitwise-identity argument lives with the span
// kernel declarations in kernels.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "src/solver/kernels.hpp"

namespace minipop::solver {

/// Per-block compressed ocean geometry: for each row j of an nx × ny
/// region, the contiguous ocean spans, stored flat with a CSR-style
/// row_offset table (row j's spans are spans()[row_offset()[j] ..
/// row_offset()[j+1])). Rows with no ocean have zero spans; a full-ocean
/// row degenerates to a single span of length nx, so dense blocks run
/// the span kernels at dense-kernel speed.
class BlockSpans {
 public:
  BlockSpans() = default;

  /// Build from a raw mask plane: mask[j * mask_stride + i] != 0 marks
  /// ocean. The plane may be a sub-window of a larger field (stride >
  /// nx), which is how the comm-avoid engine derives per-depth plans
  /// from its padded planes.
  BlockSpans(const unsigned char* mask, std::ptrdiff_t mask_stride, int nx,
             int ny);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  /// Total ocean cells covered by the spans.
  long active_points() const { return active_points_; }
  int num_spans() const { return static_cast<int>(spans_.size()); }
  /// True when every cell is ocean (one full-width span per row).
  bool full() const { return active_points_ == long(nx_) * ny_; }

  /// CSR row table, size ny()+1.
  const int* row_offset() const { return row_offset_.data(); }
  const kernels::Span* spans() const { return spans_.data(); }

  /// Plan for the sub-rectangle [i0, i0+ni) × [j0, j0+nj), with spans
  /// re-based so i0 maps to 0 — usable with field pointers already
  /// offset to the sub-rect origin (interior and rim sweeps).
  BlockSpans clipped(int i0, int j0, int ni, int nj) const;

  /// Structural audit (used by MINIPOP_BOUNDS_CHECK builds): throws
  /// unless the spans exactly cover the mask-true cells of the given
  /// plane. O(nx*ny); never called from hot paths in release builds.
  void validate(const unsigned char* mask, std::ptrdiff_t mask_stride)
      const;

 private:
  int nx_ = 0;
  int ny_ = 0;
  long active_points_ = 0;
  std::vector<int> row_offset_;  // size ny_+1
  std::vector<kernels::Span> spans_;
};

/// One BlockSpans per local block, indexed like the operator's local
/// block arrays.
using SpanPlan = std::vector<BlockSpans>;

}  // namespace minipop::solver
