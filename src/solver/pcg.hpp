// Textbook Preconditioned Conjugate Gradient. Two global reductions per
// iteration — the historical POP solver that ChronGear improves on; kept
// as a baseline for the communication-count comparisons.
#pragma once

#include "src/solver/iterative_solver.hpp"

namespace minipop::solver {

class PcgSolver final : public IterativeSolver {
 public:
  explicit PcgSolver(const SolverOptions& options = {}) : opt_(options) {}

  SolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m, const comm::DistField& b,
      comm::DistField& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) override;

  std::string name() const override { return "pcg"; }

 private:
  SolverOptions opt_;
};

}  // namespace minipop::solver
