#include "src/solver/preconditioner.hpp"

#include "src/solver/kernels.hpp"
#include "src/util/error.hpp"

namespace minipop::solver {

void Preconditioner::apply(comm::Communicator& /*comm*/,
                           const comm::DistField32& /*in*/,
                           comm::DistField32& /*out*/) {
  MINIPOP_REQUIRE(false, "preconditioner '" << name()
                                            << "' has no fp32 path");
}

void Preconditioner::apply_batch(comm::Communicator& comm,
                                 const comm::DistFieldBatch& in,
                                 comm::DistFieldBatch& out) {
  // Demux fallback: per-member scratch planes through the scalar apply.
  // Bit-exact (each member sees exactly the scalar code path); the fused
  // overrides below only change how many passes memory takes.
  MINIPOP_REQUIRE(in.compatible_with(out), "precond batch mismatch");
  comm::DistField in_m(in.decomposition(), in.rank(), in.halo());
  comm::DistField out_m(in.decomposition(), in.rank(), in.halo());
  for (int m = 0; m < in.nb(); ++m) {
    in.store_member(m, in_m);
    apply(comm, in_m, out_m);
    out.load_member(m, out_m);
  }
}

void Preconditioner::apply_batch(comm::Communicator& comm,
                                 const comm::DistFieldBatch32& in,
                                 comm::DistFieldBatch32& out) {
  // fp32 demux: same per-member fallback through the scalar fp32 apply,
  // so every preconditioner with an fp32 path composes with batching
  // (one without it fails loudly in the scalar apply).
  MINIPOP_REQUIRE(in.compatible_with(out), "precond batch mismatch");
  comm::DistField32 in_m(in.decomposition(), in.rank(), in.halo());
  comm::DistField32 out_m(in.decomposition(), in.rank(), in.halo());
  for (int m = 0; m < in.nb(); ++m) {
    in.store_member(m, in_m);
    apply(comm, in_m, out_m);
    out.load_member(m, out_m);
  }
}

void IdentityPreconditioner::apply(comm::Communicator& /*comm*/,
                                   const comm::DistField& in,
                                   comm::DistField& out) {
  MINIPOP_REQUIRE(in.compatible_with(out), "identity precond field mismatch");
  const SpanPlan* plan = op_->span_plan();
  for (int lb = 0; lb < in.num_local_blocks(); ++lb) {
    const auto& info = in.info(lb);
    const auto& mask = op_->block_mask(lb);
    // Gap-zero kernel: writes in at ocean and 0 at land exactly like the
    // masked copy, so the two paths are unconditionally bit-identical.
    if (plan)
      kernels::masked_copy_span((*plan)[lb].row_offset(),
                                (*plan)[lb].spans(), info.nx, info.ny,
                                in.interior(lb), in.stride(lb),
                                out.interior(lb), out.stride(lb));
    else
      for (int j = 0; j < info.ny; ++j)
        for (int i = 0; i < info.nx; ++i)
          out.at(lb, i, j) = mask(i, j) ? in.at(lb, i, j) : 0.0;
  }
}

void IdentityPreconditioner::apply(comm::Communicator& /*comm*/,
                                   const comm::DistField32& in,
                                   comm::DistField32& out) {
  MINIPOP_REQUIRE(in.compatible_with(out), "identity precond field mismatch");
  const SpanPlan* plan = op_->span_plan();
  for (int lb = 0; lb < in.num_local_blocks(); ++lb) {
    const auto& info = in.info(lb);
    const auto& mask = op_->block_mask(lb);
    if (plan)
      kernels::masked_copy_span((*plan)[lb].row_offset(),
                                (*plan)[lb].spans(), info.nx, info.ny,
                                in.interior(lb), in.stride(lb),
                                out.interior(lb), out.stride(lb));
    else
      for (int j = 0; j < info.ny; ++j)
        for (int i = 0; i < info.nx; ++i)
          out.at(lb, i, j) = mask(i, j) ? in.at(lb, i, j) : 0.0f;
  }
}

void IdentityPreconditioner::apply_batch(comm::Communicator& /*comm*/,
                                         const comm::DistFieldBatch& in,
                                         comm::DistFieldBatch& out) {
  MINIPOP_REQUIRE(in.compatible_with(out), "identity precond batch mismatch");
  const SpanPlan* plan = op_->span_plan();
  for (int lb = 0; lb < in.num_local_blocks(); ++lb) {
    const auto& info = in.info(lb);
    const auto& mask = op_->block_mask(lb);
    if (plan)
      kernels::masked_copy_span_batch(
          (*plan)[lb].row_offset(), (*plan)[lb].spans(), in.nb(), info.nx,
          info.ny, in.interior(lb), in.stride(lb), out.interior(lb),
          out.stride(lb));
    else
      kernels::masked_copy_batch(mask.data(), mask.nx(), in.nb(), info.nx,
                                 info.ny, in.interior(lb), in.stride(lb),
                                 out.interior(lb), out.stride(lb));
  }
}

void IdentityPreconditioner::apply_batch(comm::Communicator& /*comm*/,
                                         const comm::DistFieldBatch32& in,
                                         comm::DistFieldBatch32& out) {
  MINIPOP_REQUIRE(in.compatible_with(out), "identity precond batch mismatch");
  const SpanPlan* plan = op_->span_plan();
  for (int lb = 0; lb < in.num_local_blocks(); ++lb) {
    const auto& info = in.info(lb);
    const auto& mask = op_->block_mask(lb);
    if (plan)
      kernels::masked_copy_span_batch(
          (*plan)[lb].row_offset(), (*plan)[lb].spans(), in.nb(), info.nx,
          info.ny, in.interior(lb), in.stride(lb), out.interior(lb),
          out.stride(lb));
    else
      kernels::masked_copy_batch(mask.data(), mask.nx(), in.nb(), info.nx,
                                 info.ny, in.interior(lb), in.stride(lb),
                                 out.interior(lb), out.stride(lb));
  }
}

DiagonalPreconditioner::DiagonalPreconditioner(const DistOperator& op)
    : op_(&op) {
  inv_diag_.reserve(op.num_local_blocks());
  for (int lb = 0; lb < op.num_local_blocks(); ++lb) {
    const auto& diag = op.block_diagonal(lb);
    const auto& mask = op.block_mask(lb);
    util::Field inv(diag.nx(), diag.ny(), 0.0);
    for (int j = 0; j < diag.ny(); ++j)
      for (int i = 0; i < diag.nx(); ++i) {
        if (!mask(i, j)) continue;
        MINIPOP_REQUIRE(diag(i, j) > 0.0, "non-positive diagonal at block "
                                              << lb << " (" << i << "," << j
                                              << ")");
        inv(i, j) = 1.0 / diag(i, j);
      }
    inv_diag_.push_back(std::move(inv));
  }
}

void DiagonalPreconditioner::apply(comm::Communicator& comm,
                                   const comm::DistField& in,
                                   comm::DistField& out) {
  MINIPOP_REQUIRE(in.compatible_with(out), "diagonal precond field mismatch");
  const SpanPlan* plan = op_->span_plan();
  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < in.num_local_blocks(); ++lb) {
    const auto& info = in.info(lb);
    const auto& inv = inv_diag_[lb];
    // Span path: inv*in over ocean, literal 0 in the gaps — the masked
    // loop multiplies by the stored inv = 0.0 there, which is the same
    // +0.0 because solver iterates are +0.0 on land.
    if (plan)
      kernels::diag_apply_span(inv.data(), inv.nx(),
                               (*plan)[lb].row_offset(),
                               (*plan)[lb].spans(), info.nx, info.ny,
                               in.interior(lb), in.stride(lb),
                               out.interior(lb), out.stride(lb));
    else
      for (int j = 0; j < info.ny; ++j)
        for (int i = 0; i < info.nx; ++i)
          out.at(lb, i, j) = inv(i, j) * in.at(lb, i, j);
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
    active +=
        static_cast<std::uint64_t>(op_->block_spans()[lb].active_points());
  }
  // Paper convention: diagonal preconditioning is 1 op/point (T_p).
  comm.costs().add_flops(points);
  comm.costs().add_points(active, points);
}

void DiagonalPreconditioner::apply(comm::Communicator& comm,
                                   const comm::DistField32& in,
                                   comm::DistField32& out) {
  MINIPOP_REQUIRE(in.compatible_with(out), "diagonal precond field mismatch");
  ensure_inv_diag32();
  const SpanPlan* plan = op_->span_plan();
  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < in.num_local_blocks(); ++lb) {
    const auto& info = in.info(lb);
    const auto& inv = inv_diag32_[lb];
    if (plan)
      kernels::diag_apply_span(inv.data(), inv.nx(),
                               (*plan)[lb].row_offset(),
                               (*plan)[lb].spans(), info.nx, info.ny,
                               in.interior(lb), in.stride(lb),
                               out.interior(lb), out.stride(lb));
    else
      for (int j = 0; j < info.ny; ++j)
        for (int i = 0; i < info.nx; ++i)
          out.at(lb, i, j) = inv(i, j) * in.at(lb, i, j);
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
    active +=
        static_cast<std::uint64_t>(op_->block_spans()[lb].active_points());
  }
  comm.costs().add_flops(points);
  comm.costs().add_points(active, points);
}

void DiagonalPreconditioner::ensure_inv_diag32() {
  if (!inv_diag32_.empty()) return;
  inv_diag32_.reserve(inv_diag_.size());
  for (const auto& inv : inv_diag_) {
    util::Array2D<float> inv32(inv.nx(), inv.ny());
    for (int j = 0; j < inv.ny(); ++j)
      for (int i = 0; i < inv.nx(); ++i)
        inv32(i, j) = static_cast<float>(inv(i, j));
    inv_diag32_.push_back(std::move(inv32));
  }
}

void DiagonalPreconditioner::apply_batch(comm::Communicator& comm,
                                         const comm::DistFieldBatch& in,
                                         comm::DistFieldBatch& out) {
  MINIPOP_REQUIRE(in.compatible_with(out), "diagonal precond batch mismatch");
  const SpanPlan* plan = op_->span_plan();
  const int nb = in.nb();
  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < in.num_local_blocks(); ++lb) {
    const auto& info = in.info(lb);
    const auto& inv = inv_diag_[lb];
    if (plan)
      kernels::diag_apply_span_batch(
          inv.data(), inv.nx(), (*plan)[lb].row_offset(),
          (*plan)[lb].spans(), nb, info.nx, info.ny, in.interior(lb),
          in.stride(lb), out.interior(lb), out.stride(lb));
    else
      kernels::diag_apply_batch(inv.data(), inv.nx(), nb, info.nx, info.ny,
                                in.interior(lb), in.stride(lb),
                                out.interior(lb), out.stride(lb));
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
    active +=
        static_cast<std::uint64_t>(op_->block_spans()[lb].active_points());
  }
  comm.costs().add_flops(points * nb);
  comm.costs().add_points(active * nb, points * nb);
}

void DiagonalPreconditioner::apply_batch(comm::Communicator& comm,
                                         const comm::DistFieldBatch32& in,
                                         comm::DistFieldBatch32& out) {
  MINIPOP_REQUIRE(in.compatible_with(out), "diagonal precond batch mismatch");
  ensure_inv_diag32();
  const SpanPlan* plan = op_->span_plan();
  const int nb = in.nb();
  std::uint64_t points = 0, active = 0;
  for (int lb = 0; lb < in.num_local_blocks(); ++lb) {
    const auto& info = in.info(lb);
    const auto& inv = inv_diag32_[lb];
    if (plan)
      kernels::diag_apply_span_batch(
          inv.data(), inv.nx(), (*plan)[lb].row_offset(),
          (*plan)[lb].spans(), nb, info.nx, info.ny, in.interior(lb),
          in.stride(lb), out.interior(lb), out.stride(lb));
    else
      kernels::diag_apply_batch(inv.data(), inv.nx(), nb, info.nx, info.ny,
                                in.interior(lb), in.stride(lb),
                                out.interior(lb), out.stride(lb));
    points += static_cast<std::uint64_t>(info.nx) * info.ny;
    active +=
        static_cast<std::uint64_t>(op_->block_spans()[lb].active_points());
  }
  comm.costs().add_flops(points * nb);
  comm.costs().add_points(active * nb, points * nb);
}

}  // namespace minipop::solver
