// Silent-data-corruption defense helpers shared by the solver stack
// (DESIGN.md §12): guarded (duplicated) allreduce contributions, the
// ABFT operator-checksum verdict, and the recurrence-vs-true-residual
// drift audit. Everything here is gated by IntegrityOptions and is a
// plain pass-through when the corresponding knob is off — the reduced
// values are bitwise identical either way (the guarded form reduces
// each duplicated slot through the same deterministic fixed-rank-order
// combination, so the primary half equals the unguarded result exactly).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/comm/communicator.hpp"
#include "src/solver/dist_operator.hpp"
#include "src/solver/iterative_solver.hpp"

namespace minipop::solver {

/// Split-phase sum-allreduce with optional duplication guard, for the
/// overlapped solvers' in-flight reductions. post() arms the
/// reduction-corruption fault hook on the local contribution and posts
/// either `values` directly (guard off) or a [v|v] doubled buffer
/// (guard on; the hook corrupts only the primary half — duplicated
/// state is what the guard exists to cross-check). wait() completes
/// the reduction; with the guard on it compares the two reduced halves
/// bitwise, copies the primary half back into the caller's span,
/// counts one integrity check, and returns true on any mismatch
/// (appending mismatched slot indices to *bad). A mismatch verdict is
/// identical on every rank — all ranks compare the same reduced
/// buffer — so recovery needs no resync, just a typed
/// kCorruptReduction failure.
class GuardedReduction {
 public:
  /// `values` must stay alive until wait(); one post per wait.
  void post(comm::Communicator& comm, const IntegrityOptions& integrity,
            std::span<double> values);
  bool wait(std::vector<int>* bad = nullptr);

 private:
  comm::Communicator* comm_ = nullptr;
  std::span<double> values_;
  bool guarded_ = false;
  // dup_ must be declared before req_: an abandoned Request's destructor
  // makes one completion attempt that can still deliver into the buffer.
  std::vector<double> dup_;
  comm::Request req_;
};

/// Blocking guarded sum-allreduce of `values` in place: post + wait.
bool allreduce_sum_guarded(comm::Communicator& comm,
                           const IntegrityOptions& integrity,
                           std::span<double> values,
                           std::vector<int>* bad = nullptr);

/// Verdict of one ABFT operator audit, from the ALREADY-REDUCED global
/// sums: true when |(sum(b) - sum(r)) - dot(c, x)| exceeds
/// abft_tolerance * (sqrt(N_ocean * ||b||²) + |dot(c, x)|). The
/// sqrt(N·||b||²) term is the Cauchy-Schwarz bound on a masked sum, so
/// the scale stays meaningful near convergence where dot(c, x) can be
/// small. Non-finite sums (a flipped exponent bit breeding NaN/Inf)
/// count as a mismatch.
bool abft_mismatch(const IntegrityOptions& integrity, double sum_b,
                   double sum_r, double dot_cx, double n_ocean,
                   double b_norm2);

/// Verdict of one true-residual audit, from the already-reduced
/// relative residuals: true when |rel_true - rel_recurrence| exceeds
/// drift_tolerance * (1 + rel_recurrence). Non-finite gaps count as a
/// mismatch.
bool drift_mismatch(const IntegrityOptions& integrity, double rel_true,
                    double rel_recurrence);

/// Per-solve audit driver for the SCALAR fp64 solvers: owns the audit
/// cadence (every abft_interval / true_residual_interval convergence
/// checks, plus the accepting check for the drift audit) and the
/// scratch residual field, and leaves the solve state untouched —
/// audits only read b/r/x (the true-residual sweep refreshes x's halo,
/// which no scalar solver's subsequent arithmetic reads). Constructed
/// once per solve; at_check() is collective (the audit reductions are
/// themselves routed through the guarded allreduce).
class IntegrityAuditor {
 public:
  explicit IntegrityAuditor(const SolverOptions& options)
      : integrity_(options.integrity) {}

  /// Run whatever audits are due at this convergence check.
  /// `r_norm2` is the reduced squared residual norm the check used;
  /// `r_is_true` says r holds the true residual b - Ax (P-CSI) rather
  /// than a recurrence (ChronGear) — the drift audit only applies to
  /// recurrences. `accepting` marks the check that is about to declare
  /// convergence, which always drift-audits a recurrence (that is what
  /// turns "converged" from a claim into a verified statement).
  /// Returns kNone, kCorruptOperator, kSilentDrift, or
  /// kCorruptReduction (when the audit's own guarded reduction
  /// mismatches).
  FailureKind at_check(comm::Communicator& comm,
                       const comm::HaloExchanger& halo,
                       const DistOperator& a, const comm::DistField& b,
                       const comm::DistField& r, comm::DistField& x,
                       double b_norm2, double r_norm2, bool r_is_true,
                       bool accepting);

 private:
  const IntegrityOptions& integrity_;
  int checks_ = 0;
  /// Scratch for the true-residual audit, allocated on first use.
  std::unique_ptr<comm::DistField> scratch_;
};

/// Per-solve audit driver for the BATCHED fp64 engines (and the batched
/// mixed-precision outer loop): one ABFT sweep and/or one true-residual
/// sweep covers every lane of the current batch, verdicts applied per
/// member. fp64 batches only — the fp32 batch path is guarded by the
/// fp64 outer loop of the mixed solver instead (DESIGN.md §12).
class BatchIntegrityAuditor {
 public:
  explicit BatchIntegrityAuditor(const SolverOptions& options)
      : integrity_(options.integrity) {}

  /// Run whatever audits are due at this convergence check, writing a
  /// verdict (kNone, kCorruptOperator, kSilentDrift, or
  /// kCorruptReduction when an audit's own guarded reduction
  /// mismatches) into fail[s] for each of the cur_nb slots. Slot
  /// bookkeeping arrives as raw arrays so both the batched cores
  /// (compacting slots, member_of indirection) and the batched mixed
  /// outer loop (identity mapping) can share the driver:
  /// `b_norm2_by_member` is indexed by member_of[s]; `active[s]` skips
  /// frozen lanes; `r_norm2[s]` is each slot's reduced recurrence norm
  /// (ignored when r_is_true). The drift audit SWEEPS when any slot is
  /// accepting or the cadence is due, but its verdict only applies to
  /// slots that are themselves accepting or cadence-due — the scalar
  /// auditor's per-check gating, member by member. Collective.
  void at_check(comm::Communicator& comm, const comm::HaloExchanger& halo,
                const DistOperator& a, const comm::DistFieldBatch& b,
                const comm::DistFieldBatch& r, comm::DistFieldBatch& x,
                const double* b_norm2_by_member, const int* member_of,
                const unsigned char* active, int cur_nb,
                const double* r_norm2, bool r_is_true,
                const unsigned char* accept, bool any_accept,
                FailureKind* fail);

 private:
  const IntegrityOptions& integrity_;
  int checks_ = 0;
  std::vector<double> abft_sums_;  // 3*cur_nb + 1 (piggybacked N_ocean)
  std::vector<double> true_sums_;  // cur_nb
};

}  // namespace minipop::solver
