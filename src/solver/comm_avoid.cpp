#include "src/solver/comm_avoid.hpp"

#include <type_traits>

#include "src/solver/kernels.hpp"
#include "src/util/error.hpp"

namespace minipop::solver {

namespace {

/// Value of a global coefficient plane at (gi, gj): periodic wrap in x,
/// identically zero outside the domain (the stencil has no coupling
/// across the domain edge, so a zero ghost coefficient reproduces the
/// physical boundary exactly — and makes out-of-domain ghost arithmetic
/// inert: 0 * anything contributes +/-0 to every sum).
double global_at(const util::Field& g, int gi, int gj, bool periodic_x) {
  if (gj < 0 || gj >= g.ny()) return 0.0;
  if (periodic_x) {
    gi %= g.nx();
    if (gi < 0) gi += g.nx();
  } else if (gi < 0 || gi >= g.nx()) {
    return 0.0;
  }
  return g(gi, gj);
}

unsigned char mask_at(const util::MaskArray& m, int gi, int gj,
                      bool periodic_x) {
  if (gj < 0 || gj >= m.ny()) return 0;
  if (periodic_x) {
    gi %= m.nx();
    if (gi < 0) gi += m.nx();
  } else if (gi < 0 || gi >= m.nx()) {
    return 0;
  }
  return m(gi, gj);
}

/// Pointer to the (-e, -e) corner of the extension-e region inside a
/// width-w padded plane (row pitch = plane.nx()).
template <typename T>
const T* plane_at(const util::Array2D<T>& p, int w, int e) {
  return p.data() + static_cast<std::ptrdiff_t>(w - e) * p.nx() + (w - e);
}

/// Pointer to the (-e, -e) corner of the extension-e region of local
/// block lb of a scalar field (halo >= e).
template <typename T>
const T* field_at(const comm::DistFieldT<T>& f, int lb, int e) {
  const util::Array2D<T>& a = f.data(lb);
  return a.data() +
         static_cast<std::ptrdiff_t>(f.halo() - e) * a.nx() +
         (f.halo() - e);
}
template <typename T>
T* field_at(comm::DistFieldT<T>& f, int lb, int e) {
  util::Array2D<T>& a = f.data(lb);
  return a.data() +
         static_cast<std::ptrdiff_t>(f.halo() - e) * a.nx() +
         (f.halo() - e);
}

/// Batched counterpart (member-interleaved columns: corner cell's
/// member 0).
template <typename T>
const T* field_at(const comm::DistFieldBatchT<T>& f, int lb, int e) {
  const util::Array2D<T>& a = f.data(lb);
  return a.data() +
         static_cast<std::ptrdiff_t>(f.halo() - e) * a.nx() +
         static_cast<std::ptrdiff_t>(f.halo() - e) * f.nb();
}
template <typename T>
T* field_at(comm::DistFieldBatchT<T>& f, int lb, int e) {
  util::Array2D<T>& a = f.data(lb);
  return a.data() +
         static_cast<std::ptrdiff_t>(f.halo() - e) * a.nx() +
         static_cast<std::ptrdiff_t>(f.halo() - e) * f.nb();
}

/// Stencil view over the extended coefficient planes at extension e
/// (order matches grid::Dir, the layout Stencil9T documents).
template <typename T>
kernels::Stencil9T<T> stencil_at(
    const std::array<util::Array2D<T>, grid::kNumDirs>& c, int w, int e) {
  return {plane_at(c[0], w, e), plane_at(c[1], w, e), plane_at(c[2], w, e),
          plane_at(c[3], w, e), plane_at(c[4], w, e), plane_at(c[5], w, e),
          plane_at(c[6], w, e), plane_at(c[7], w, e), plane_at(c[8], w, e),
          c[0].nx()};
}

}  // namespace

CommAvoidEngine::CommAvoidEngine(const DistOperator& op, int width)
    : op_(&op), decomp_(&op.decomposition()), width_(width) {
  MINIPOP_REQUIRE(width >= 1 && width <= decomp_->max_halo_width(),
                  "comm-avoid ghost width " << width << " outside [1, "
                                            << decomp_->max_halo_width()
                                            << "]");
  const grid::NinePointStencil& st = op.stencil();
  const bool px = decomp_->periodic_x();
  const auto& blocks = decomp_->blocks_of_rank(op.rank());
  planes_.reserve(blocks.size());
  for (int id : blocks) {
    const auto& b = decomp_->block(id);
    const int exnx = b.nx + 2 * width;
    const int exny = b.ny + 2 * width;
    BlockPlanes p;
    for (int d = 0; d < grid::kNumDirs; ++d) {
      const util::Field& g = st.coeff(static_cast<grid::Dir>(d));
      util::Field c(exnx, exny, 0.0);
      for (int j = 0; j < exny; ++j)
        for (int i = 0; i < exnx; ++i)
          c(i, j) = global_at(g, b.i0 + i - width, b.j0 + j - width, px);
      p.coeff[d] = std::move(c);
    }
    p.mask = util::MaskArray(exnx, exny, 0);
    for (int j = 0; j < exny; ++j)
      for (int i = 0; i < exnx; ++i)
        p.mask(i, j) =
            mask_at(st.mask(), b.i0 + i - width, b.j0 + j - width, px);
    // The diagonal preconditioner's exact expression, extended: ghost
    // cells divide the SAME double diagonal value the owning rank
    // divides, so the quotients are bit-equal.
    const util::Field& diag = p.coeff[static_cast<int>(grid::Dir::kCenter)];
    p.inv_diag = util::Field(exnx, exny, 0.0);
    for (int j = 0; j < exny; ++j)
      for (int i = 0; i < exnx; ++i)
        if (p.mask(i, j)) p.inv_diag(i, j) = 1.0 / diag(i, j);
    // Span plans for every extension the engine can sweep (e = 0 is
    // the plain interior; e = width is the full padded plane). Built
    // from the extended mask so ghost-rim land is skipped exactly like
    // interior land.
    std::vector<BlockSpans> per_e;
    per_e.reserve(width + 1);
    for (int e = 0; e <= width; ++e) {
      const int nxe = b.nx + 2 * e;
      const int nye = b.ny + 2 * e;
      BlockSpans bs(plane_at(p.mask, width, e), p.mask.nx(), nxe, nye);
#if MINIPOP_BOUNDS_CHECK
      bs.validate(plane_at(p.mask, width, e), p.mask.nx());
#endif
      per_e.push_back(std::move(bs));
    }
    ext_spans_.push_back(std::move(per_e));
    planes_.push_back(std::move(p));
  }
  ext_active_.assign(static_cast<std::size_t>(width) + 1, 0);
  for (int e = 0; e <= width; ++e)
    for (const auto& per_e : ext_spans_)
      ext_active_[e] +=
          static_cast<std::uint64_t>(per_e[e].active_points());
}

void CommAvoidEngine::ensure_planes32() const {
  if (!planes32_.empty()) return;
  planes32_.reserve(planes_.size());
  for (const BlockPlanes& p : planes_) {
    BlockPlanes32 q;
    for (int d = 0; d < grid::kNumDirs; ++d) {
      util::Array2D<float> c(p.coeff[d].nx(), p.coeff[d].ny());
      for (int j = 0; j < c.ny(); ++j)
        for (int i = 0; i < c.nx(); ++i)
          c(i, j) = static_cast<float>(p.coeff[d](i, j));
      q.coeff[d] = std::move(c);
    }
    q.inv_diag =
        util::Array2D<float>(p.inv_diag.nx(), p.inv_diag.ny());
    for (int j = 0; j < q.inv_diag.ny(); ++j)
      for (int i = 0; i < q.inv_diag.nx(); ++i)
        q.inv_diag(i, j) = static_cast<float>(p.inv_diag(i, j));
    planes32_.push_back(std::move(q));
  }
}

void CommAvoidEngine::count(comm::Communicator& comm, int e, int nb,
                            std::uint64_t per_point) const {
  if (per_point == 0) return;
  std::uint64_t ext = 0, interior = 0;
  for (int id : decomp_->blocks_of_rank(op_->rank())) {
    const auto& b = decomp_->block(id);
    ext += static_cast<std::uint64_t>(b.nx + 2 * e) * (b.ny + 2 * e);
    interior += static_cast<std::uint64_t>(b.nx) * b.ny;
  }
  comm.costs().add_flops(ext * nb * per_point);
  comm.costs().add_redundant_flops((ext - interior) * nb * per_point);
  comm.costs().add_points(ext_active_[e] * nb, ext * nb);
}

template <typename T>
void CommAvoidEngine::precond(comm::Communicator& comm, CaPrecond kind,
                              const comm::DistFieldT<T>& r,
                              comm::DistFieldT<T>& z, int e) const {
  MINIPOP_REQUIRE(e >= 0 && e <= width_ && e <= r.halo(),
                  "precond extension " << e);
  if constexpr (std::is_same_v<T, float>) ensure_planes32();
  for (int lb = 0; lb < r.num_local_blocks(); ++lb) {
    const auto& info = r.info(lb);
    const int nxe = info.nx + 2 * e;
    const int nye = info.ny + 2 * e;
    const BlockSpans* sp =
        op_->span_plan() ? &ext_spans_[lb][e] : nullptr;
    if (kind == CaPrecond::kDiagonal) {
      const auto& inv = [&]() -> const auto& {
        if constexpr (std::is_same_v<T, float>)
          return planes32_[lb].inv_diag;
        else
          return planes_[lb].inv_diag;
      }();
      if (sp)
        kernels::diag_apply_span(plane_at(inv, width_, e), inv.nx(),
                                 sp->row_offset(), sp->spans(), nxe, nye,
                                 field_at(r, lb, e), r.stride(lb),
                                 field_at(z, lb, e), z.stride(lb));
      else
        kernels::diag_apply_batch(plane_at(inv, width_, e), inv.nx(), 1,
                                  nxe, nye, field_at(r, lb, e),
                                  r.stride(lb), field_at(z, lb, e),
                                  z.stride(lb));
    } else {
      const util::MaskArray& m = planes_[lb].mask;
      if (sp)
        kernels::masked_copy_span(sp->row_offset(), sp->spans(), nxe, nye,
                                  field_at(r, lb, e), r.stride(lb),
                                  field_at(z, lb, e), z.stride(lb));
      else
        kernels::masked_copy_batch(plane_at(m, width_, e), m.nx(), 1, nxe,
                                   nye, field_at(r, lb, e), r.stride(lb),
                                   field_at(z, lb, e), z.stride(lb));
    }
  }
  // Flop convention matches the baseline preconditioners: diagonal is
  // 1 op/point, identity is free.
  count(comm, e, 1, kind == CaPrecond::kDiagonal ? 1 : 0);
}

template <typename T>
void CommAvoidEngine::precond_batch(comm::Communicator& comm,
                                    CaPrecond kind,
                                    const comm::DistFieldBatchT<T>& r,
                                    comm::DistFieldBatchT<T>& z,
                                    int e) const {
  MINIPOP_REQUIRE(e >= 0 && e <= width_ && e <= r.halo(),
                  "precond extension " << e);
  if constexpr (std::is_same_v<T, float>) ensure_planes32();
  const int nb = r.nb();
  for (int lb = 0; lb < r.num_local_blocks(); ++lb) {
    const auto& info = r.info(lb);
    const int nxe = info.nx + 2 * e;
    const int nye = info.ny + 2 * e;
    const BlockSpans* sp =
        op_->span_plan() ? &ext_spans_[lb][e] : nullptr;
    if (kind == CaPrecond::kDiagonal) {
      const auto& inv = [&]() -> const auto& {
        if constexpr (std::is_same_v<T, float>)
          return planes32_[lb].inv_diag;
        else
          return planes_[lb].inv_diag;
      }();
      if (sp)
        kernels::diag_apply_span_batch(plane_at(inv, width_, e), inv.nx(),
                                       sp->row_offset(), sp->spans(), nb,
                                       nxe, nye, field_at(r, lb, e),
                                       r.stride(lb), field_at(z, lb, e),
                                       z.stride(lb));
      else
        kernels::diag_apply_batch(plane_at(inv, width_, e), inv.nx(), nb,
                                  nxe, nye, field_at(r, lb, e),
                                  r.stride(lb), field_at(z, lb, e),
                                  z.stride(lb));
    } else {
      const util::MaskArray& m = planes_[lb].mask;
      if (sp)
        kernels::masked_copy_span_batch(sp->row_offset(), sp->spans(), nb,
                                        nxe, nye, field_at(r, lb, e),
                                        r.stride(lb), field_at(z, lb, e),
                                        z.stride(lb));
      else
        kernels::masked_copy_batch(plane_at(m, width_, e), m.nx(), nb, nxe,
                                   nye, field_at(r, lb, e), r.stride(lb),
                                   field_at(z, lb, e), z.stride(lb));
    }
  }
  count(comm, e, nb, kind == CaPrecond::kDiagonal ? 1 : 0);
}

template <typename T>
void CommAvoidEngine::update(comm::Communicator& comm, T a,
                             const comm::DistFieldT<T>& z, T b,
                             comm::DistFieldT<T>& dx,
                             comm::DistFieldT<T>& x, int e) const {
  MINIPOP_REQUIRE(e >= 0 && e <= width_ && e <= z.halo(),
                  "update extension " << e);
  for (int lb = 0; lb < z.num_local_blocks(); ++lb) {
    const auto& info = z.info(lb);
    if (op_->span_plan()) {
      const BlockSpans& sp = ext_spans_[lb][e];
      kernels::lincomb_axpy_span(sp.row_offset(), sp.spans(),
                                 info.ny + 2 * e, a, field_at(z, lb, e),
                                 z.stride(lb), b, field_at(dx, lb, e),
                                 dx.stride(lb), T(1), field_at(x, lb, e),
                                 x.stride(lb));
    } else {
      kernels::lincomb_axpy(info.nx + 2 * e, info.ny + 2 * e, a,
                            field_at(z, lb, e), z.stride(lb), b,
                            field_at(dx, lb, e), dx.stride(lb), T(1),
                            field_at(x, lb, e), x.stride(lb));
    }
  }
  count(comm, e, 1, 4);
}

template <typename T>
void CommAvoidEngine::update_batch(comm::Communicator& comm, const T* a,
                                   const comm::DistFieldBatchT<T>& z,
                                   const T* b,
                                   comm::DistFieldBatchT<T>& dx,
                                   const T* c, comm::DistFieldBatchT<T>& x,
                                   const unsigned char* active, int n_act,
                                   int e) const {
  MINIPOP_REQUIRE(e >= 0 && e <= width_ && e <= z.halo(),
                  "update extension " << e);
  for (int lb = 0; lb < z.num_local_blocks(); ++lb) {
    const auto& info = z.info(lb);
    if (op_->span_plan()) {
      const BlockSpans& sp = ext_spans_[lb][e];
      kernels::lincomb_axpy_span_batch(
          sp.row_offset(), sp.spans(), z.nb(), info.ny + 2 * e, a,
          field_at(z, lb, e), z.stride(lb), b, field_at(dx, lb, e),
          dx.stride(lb), c, field_at(x, lb, e), x.stride(lb), active);
    } else {
      kernels::lincomb_axpy_batch(z.nb(), info.nx + 2 * e, info.ny + 2 * e,
                                  a, field_at(z, lb, e), z.stride(lb), b,
                                  field_at(dx, lb, e), dx.stride(lb), c,
                                  field_at(x, lb, e), x.stride(lb),
                                  active);
    }
  }
  count(comm, e, n_act, 4);
}

template <typename T>
void CommAvoidEngine::residual(comm::Communicator& comm,
                               const comm::DistFieldT<T>& b,
                               const comm::DistFieldT<T>& x,
                               comm::DistFieldT<T>& r, int e) const {
  // The stencil reads x one cell beyond the written region.
  MINIPOP_REQUIRE(e >= 0 && e <= width_ && e + 1 <= x.halo(),
                  "residual extension " << e);
  if constexpr (std::is_same_v<T, float>) ensure_planes32();
  for (int lb = 0; lb < b.num_local_blocks(); ++lb) {
    const auto& info = b.info(lb);
    const auto c9 = [&] {
      if constexpr (std::is_same_v<T, float>)
        return stencil_at(planes32_[lb].coeff, width_, e);
      else
        return stencil_at(planes_[lb].coeff, width_, e);
    }();
    if (op_->span_plan()) {
      const BlockSpans& sp = ext_spans_[lb][e];
      kernels::residual9_span(c9, sp.row_offset(), sp.spans(),
                              info.ny + 2 * e, field_at(b, lb, e),
                              b.stride(lb), field_at(x, lb, e),
                              x.stride(lb), field_at(r, lb, e),
                              r.stride(lb));
    } else {
      kernels::residual9(c9, info.nx + 2 * e, info.ny + 2 * e,
                         field_at(b, lb, e), b.stride(lb),
                         field_at(x, lb, e), x.stride(lb),
                         field_at(r, lb, e), r.stride(lb));
    }
  }
  count(comm, e, 1, 10);
}

template <typename T>
void CommAvoidEngine::residual_batch(comm::Communicator& comm,
                                     const comm::DistFieldBatchT<T>& b,
                                     const comm::DistFieldBatchT<T>& x,
                                     comm::DistFieldBatchT<T>& r,
                                     int e) const {
  MINIPOP_REQUIRE(e >= 0 && e <= width_ && e + 1 <= x.halo(),
                  "residual extension " << e);
  if constexpr (std::is_same_v<T, float>) ensure_planes32();
  const int nb = b.nb();
  for (int lb = 0; lb < b.num_local_blocks(); ++lb) {
    const auto& info = b.info(lb);
    const auto c9 = [&] {
      if constexpr (std::is_same_v<T, float>)
        return stencil_at(planes32_[lb].coeff, width_, e);
      else
        return stencil_at(planes_[lb].coeff, width_, e);
    }();
    if (op_->span_plan()) {
      const BlockSpans& sp = ext_spans_[lb][e];
      kernels::residual9_span_batch(c9, sp.row_offset(), sp.spans(), nb,
                                    info.ny + 2 * e, field_at(b, lb, e),
                                    b.stride(lb), field_at(x, lb, e),
                                    x.stride(lb), field_at(r, lb, e),
                                    r.stride(lb));
    } else {
      kernels::residual9_batch(c9, nb, info.nx + 2 * e, info.ny + 2 * e,
                               field_at(b, lb, e), b.stride(lb),
                               field_at(x, lb, e), x.stride(lb),
                               field_at(r, lb, e), r.stride(lb));
    }
  }
  count(comm, e, nb, 10);
}

#define MINIPOP_COMM_AVOID_INSTANTIATE(T)                                  \
  template void CommAvoidEngine::precond<T>(                               \
      comm::Communicator&, CaPrecond, const comm::DistFieldT<T>&,          \
      comm::DistFieldT<T>&, int) const;                                    \
  template void CommAvoidEngine::precond_batch<T>(                         \
      comm::Communicator&, CaPrecond, const comm::DistFieldBatchT<T>&,     \
      comm::DistFieldBatchT<T>&, int) const;                               \
  template void CommAvoidEngine::update<T>(                                \
      comm::Communicator&, T, const comm::DistFieldT<T>&, T,               \
      comm::DistFieldT<T>&, comm::DistFieldT<T>&, int) const;              \
  template void CommAvoidEngine::update_batch<T>(                          \
      comm::Communicator&, const T*, const comm::DistFieldBatchT<T>&,      \
      const T*, comm::DistFieldBatchT<T>&, const T*,                       \
      comm::DistFieldBatchT<T>&, const unsigned char*, int, int) const;    \
  template void CommAvoidEngine::residual<T>(                              \
      comm::Communicator&, const comm::DistFieldT<T>&,                     \
      const comm::DistFieldT<T>&, comm::DistFieldT<T>&, int) const;        \
  template void CommAvoidEngine::residual_batch<T>(                        \
      comm::Communicator&, const comm::DistFieldBatchT<T>&,                \
      const comm::DistFieldBatchT<T>&, comm::DistFieldBatchT<T>&, int)     \
      const;
MINIPOP_COMM_AVOID_INSTANTIATE(double)
MINIPOP_COMM_AVOID_INSTANTIATE(float)
#undef MINIPOP_COMM_AVOID_INSTANTIATE

}  // namespace minipop::solver
