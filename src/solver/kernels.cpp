// Implementation notes
//
// Every core function hoists its row pointers once per j and hands the
// dense inner loop to a per-row helper whose pointers are restrict-
// qualified PARAMETERS: GCC honors restrict reliably on parameters (and
// keeps the no-alias guarantee when the helper inlines back into the j
// loop), but largely ignores it on local pointer variables — with locals
// the stencil loops stay scalar.
//
// There is ONE body per kernel, templated `<typename T, int B>` (see
// kernels.hpp for the width semantics). The nine-point expression keeps
// the exact term order of the original scalar code (center, E, W, N, S,
// NE, NW, SE, SW); the nine coefficients of a cell are hoisted into
// scalars once and reused across the member loop. At B = 1 the member
// loop collapses (w = 1, m = 0) and the expression is term-for-term the
// scalar kernels' MINIPOP_POINT9 — hoisting a coefficient load into a
// named scalar does not change its value, so the B = 1 instantiations
// are bit-identical to the pre-unification scalar kernels.
//
// Reductions accumulate scalar, row-major, per member, continuing from
// the caller's running sums — so the fused kernels are bit-identical to
// the loops they replace; only the number of passes over memory changes.
// Masked reductions use a select (`mask ? term : 0.0`) instead of a
// branch: adding +0.0 cannot change the accumulator, so the select is
// bitwise equivalent to the branchy form while staying if-convertible.
//
// Reduction accumulators are double for both storage scalars; reduction
// operands are widened BEFORE multiplying so fp32 products enter the
// accumulator exactly. For T = double the widening casts are no-ops and
// the double instantiations generate EXACTLY the code of the
// pre-template kernels, preserving the bit-for-bit contract.
#include "src/solver/kernels.hpp"

#include <cstring>

namespace minipop::solver::kernels {

namespace {

/// The scalar nine-point row expression over the south/center/north
/// interior rows xm/x0/xp — the exact term order of the original scalar
/// code; it defines the result bit pattern. A macro, not a helper
/// function: GCC's restrict tracking does not survive passing the
/// pointers through another call (even a fully inlined one), and the
/// row loops then refuse to vectorize.
#define MINIPOP_POINT9(i)                                              \
  (c0[i] * x0[i] + ce[i] * x0[(i) + 1] + cw[i] * x0[(i)-1] +           \
   cn[i] * xp[i] + cs[i] * xm[i] + cne[i] * xp[(i) + 1] +              \
   cnw[i] * xp[(i)-1] + cse[i] * xm[(i) + 1] + csw[i] * xm[(i)-1])

/// The same expression for member m of cell i in an interleaved row
/// (ib = i*w): east/west neighbors sit a full member group (w) away.
/// Identical term order to MINIPOP_POINT9, with the nine coefficients
/// pre-hoisted into the scalars of MINIPOP_LOAD9 (hoisting a load into
/// a named scalar does not change its value, so the two expressions are
/// bit-identical for any member).
#define MINIPOP_POINT9B(ib, m, w)                                        \
  (w0 * x0[(ib) + (m)] + we * x0[(ib) + (w) + (m)] +                     \
   ww * x0[(ib) - (w) + (m)] + wn * xp[(ib) + (m)] +                     \
   ws * xm[(ib) + (m)] + wne * xp[(ib) + (w) + (m)] +                    \
   wnw * xp[(ib) - (w) + (m)] + wse * xm[(ib) + (w) + (m)] +             \
   wsw * xm[(ib) - (w) + (m)])

/// Hoists the nine coefficients of cell i into scalars; the member loop
/// then re-reads only field lanes.
#define MINIPOP_LOAD9(i)                                                 \
  const T w0 = c0[i], we = ce[i], ww = cw[i], wn = cn[i], ws = cs[i],    \
          wne = cne[i], wnw = cnw[i], wse = cse[i], wsw = csw[i]

/// Effective member width of a row: compile-time B when fixed, runtime
/// nb when B == 0 (the dynamic instantiation).
template <int B>
inline int eff_width(int nb) {
  return B > 0 ? B : nb;
}

// Each row helper below carries a `if constexpr (B == 1)` width-1 fast
// path that is the VERBATIM loop of the pre-unification scalar kernels:
// the generic member-loop body computes the same bits at w = 1, but its
// memory-resident accumulators and runtime `active`/coefficient-array
// indirections defeat GCC's reduction vectorizer, costing 1.2-2.5x on
// the scalar hot paths. The fast path keeps accumulators and
// coefficients in locals (registers) exactly as before; `active` is
// resolved once per row (it cannot change mid-row).

template <typename T, int B>
inline void row_apply9(const T* MINIPOP_RESTRICT c0,
                       const T* MINIPOP_RESTRICT ce,
                       const T* MINIPOP_RESTRICT cw,
                       const T* MINIPOP_RESTRICT cn,
                       const T* MINIPOP_RESTRICT cs,
                       const T* MINIPOP_RESTRICT cne,
                       const T* MINIPOP_RESTRICT cnw,
                       const T* MINIPOP_RESTRICT cse,
                       const T* MINIPOP_RESTRICT csw,
                       const T* MINIPOP_RESTRICT xm,
                       const T* MINIPOP_RESTRICT x0,
                       const T* MINIPOP_RESTRICT xp,
                       T* MINIPOP_RESTRICT y, int nx, int nb) {
  if constexpr (B == 1) {
    for (int i = 0; i < nx; ++i) y[i] = MINIPOP_POINT9(i);
  } else {
    const int w = eff_width<B>(nb);
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
      MINIPOP_LOAD9(i);
      for (int m = 0; m < w; ++m) y[ib + m] = MINIPOP_POINT9B(ib, m, w);
    }
  }
}

template <typename T, int B>
inline void row_residual9(const T* MINIPOP_RESTRICT c0,
                          const T* MINIPOP_RESTRICT ce,
                          const T* MINIPOP_RESTRICT cw,
                          const T* MINIPOP_RESTRICT cn,
                          const T* MINIPOP_RESTRICT cs,
                          const T* MINIPOP_RESTRICT cne,
                          const T* MINIPOP_RESTRICT cnw,
                          const T* MINIPOP_RESTRICT cse,
                          const T* MINIPOP_RESTRICT csw,
                          const T* MINIPOP_RESTRICT b,
                          const T* MINIPOP_RESTRICT xm,
                          const T* MINIPOP_RESTRICT x0,
                          const T* MINIPOP_RESTRICT xp,
                          T* MINIPOP_RESTRICT r, int nx, int nb) {
  if constexpr (B == 1) {
    for (int i = 0; i < nx; ++i) r[i] = b[i] - MINIPOP_POINT9(i);
  } else {
    const int w = eff_width<B>(nb);
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
      MINIPOP_LOAD9(i);
      for (int m = 0; m < w; ++m)
        r[ib + m] = b[ib + m] - MINIPOP_POINT9B(ib, m, w);
    }
  }
}

template <typename T, int B>
inline void row_residual_norm2(const T* MINIPOP_RESTRICT c0,
                               const T* MINIPOP_RESTRICT ce,
                               const T* MINIPOP_RESTRICT cw,
                               const T* MINIPOP_RESTRICT cn,
                               const T* MINIPOP_RESTRICT cs,
                               const T* MINIPOP_RESTRICT cne,
                               const T* MINIPOP_RESTRICT cnw,
                               const T* MINIPOP_RESTRICT cse,
                               const T* MINIPOP_RESTRICT csw,
                               const unsigned char* MINIPOP_RESTRICT m,
                               const T* MINIPOP_RESTRICT b,
                               const T* MINIPOP_RESTRICT xm,
                               const T* MINIPOP_RESTRICT x0,
                               const T* MINIPOP_RESTRICT xp,
                               T* MINIPOP_RESTRICT r,
                               double* MINIPOP_RESTRICT sums, int nx,
                               int nb) {
  if constexpr (B == 1) {
    double sum = sums[0];
    for (int i = 0; i < nx; ++i) {
      const T rv = b[i] - MINIPOP_POINT9(i);
      r[i] = rv;
      sum += m[i] ? static_cast<double>(rv) * static_cast<double>(rv) : 0.0;
    }
    sums[0] = sum;
  } else {
    const int w = eff_width<B>(nb);
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
      MINIPOP_LOAD9(i);
      const unsigned char sel = m[i];
      for (int mm = 0; mm < w; ++mm) {
        const T rv = b[ib + mm] - MINIPOP_POINT9B(ib, mm, w);
        r[ib + mm] = rv;
        sums[mm] +=
            sel ? static_cast<double>(rv) * static_cast<double>(rv) : 0.0;
      }
    }
  }
}

template <typename T, int B>
inline void row_dot(const unsigned char* MINIPOP_RESTRICT m,
                    const T* MINIPOP_RESTRICT a,
                    const T* MINIPOP_RESTRICT b,
                    double* MINIPOP_RESTRICT sums, int nx, int nb) {
  if constexpr (B == 1) {
    double sum = sums[0];
    for (int i = 0; i < nx; ++i)
      sum += m[i] ? static_cast<double>(a[i]) * static_cast<double>(b[i])
                  : 0.0;
    sums[0] = sum;
  } else {
    const int w = eff_width<B>(nb);
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
      const unsigned char sel = m[i];
      for (int mm = 0; mm < w; ++mm)
        sums[mm] += sel ? static_cast<double>(a[ib + mm]) *
                              static_cast<double>(b[ib + mm])
                        : 0.0;
    }
  }
}

template <typename T, int B>
inline void row_dot3(const unsigned char* MINIPOP_RESTRICT mr,
                     const T* MINIPOP_RESTRICT rr,
                     const T* MINIPOP_RESTRICT pr,
                     const T* MINIPOP_RESTRICT zr, bool with_norm,
                     double* MINIPOP_RESTRICT s0,
                     double* MINIPOP_RESTRICT s1,
                     double* MINIPOP_RESTRICT s2, int nx, int nb) {
  const int w = eff_width<B>(nb);
  for (int i = 0; i < nx; ++i) {
    const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
    const unsigned char sel = mr[i];
    for (int m = 0; m < w; ++m) {
      s0[m] += sel ? static_cast<double>(rr[ib + m]) *
                         static_cast<double>(pr[ib + m])
                   : 0.0;
      s1[m] += sel ? static_cast<double>(zr[ib + m]) *
                         static_cast<double>(pr[ib + m])
                   : 0.0;
      if (with_norm)
        s2[m] += sel ? static_cast<double>(rr[ib + m]) *
                           static_cast<double>(rr[ib + m])
                     : 0.0;
    }
  }
}

template <typename T, int B>
inline void row_lincomb(const T* MINIPOP_RESTRICT a,
                        const T* MINIPOP_RESTRICT x,
                        const T* MINIPOP_RESTRICT b, T* MINIPOP_RESTRICT y,
                        const unsigned char* MINIPOP_RESTRICT active,
                        int nx, int nb) {
  if constexpr (B == 1) {
    if (active && !active[0]) return;
    const T av = a[0], bv = b[0];
    for (int i = 0; i < nx; ++i) y[i] = av * x[i] + bv * y[i];
  } else {
    const int w = eff_width<B>(nb);
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
      for (int m = 0; m < w; ++m) {
        if (active && !active[m]) continue;
        y[ib + m] = a[m] * x[ib + m] + b[m] * y[ib + m];
      }
    }
  }
}

template <typename T, int B>
inline void row_axpy(const T* MINIPOP_RESTRICT a,
                     const T* MINIPOP_RESTRICT x, T* MINIPOP_RESTRICT y,
                     const unsigned char* MINIPOP_RESTRICT active, int nx,
                     int nb) {
  if constexpr (B == 1) {
    if (active && !active[0]) return;
    const T av = a[0];
    for (int i = 0; i < nx; ++i) y[i] += av * x[i];
  } else {
    const int w = eff_width<B>(nb);
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
      for (int m = 0; m < w; ++m) {
        if (active && !active[m]) continue;
        y[ib + m] += a[m] * x[ib + m];
      }
    }
  }
}

template <typename T, int B>
inline void row_lincomb_axpy(const T* MINIPOP_RESTRICT a,
                             const T* MINIPOP_RESTRICT x,
                             const T* MINIPOP_RESTRICT b,
                             T* MINIPOP_RESTRICT y,
                             const T* MINIPOP_RESTRICT c,
                             T* MINIPOP_RESTRICT z,
                             const unsigned char* MINIPOP_RESTRICT active,
                             int nx, int nb) {
  if constexpr (B == 1) {
    if (active && !active[0]) return;
    const T av = a[0], bv = b[0], cv = c[0];
    for (int i = 0; i < nx; ++i) {
      const T v = av * x[i] + bv * y[i];
      y[i] = v;
      z[i] += cv * v;
    }
  } else {
    const int w = eff_width<B>(nb);
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
      for (int m = 0; m < w; ++m) {
        if (active && !active[m]) continue;
        const T v = a[m] * x[ib + m] + b[m] * y[ib + m];
        y[ib + m] = v;
        z[ib + m] += c[m] * v;
      }
    }
  }
}

template <typename T, int B>
inline void row_scale(const T* MINIPOP_RESTRICT a, T* MINIPOP_RESTRICT x,
                      const unsigned char* MINIPOP_RESTRICT active, int nx,
                      int nb) {
  if constexpr (B == 1) {
    if (active && !active[0]) return;
    const T av = a[0];
    for (int i = 0; i < nx; ++i) x[i] *= av;
  } else {
    const int w = eff_width<B>(nb);
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
      for (int m = 0; m < w; ++m) {
        if (active && !active[m]) continue;
        x[ib + m] *= a[m];
      }
    }
  }
}

template <typename T, int B>
inline void row_fill(T v, T* MINIPOP_RESTRICT x, int nx, int nb) {
  const std::ptrdiff_t row =
      static_cast<std::ptrdiff_t>(nx) * eff_width<B>(nb);
  for (std::ptrdiff_t i = 0; i < row; ++i) x[i] = v;
}

template <typename T, int B>
inline void row_mask_zero(const unsigned char* MINIPOP_RESTRICT mr,
                          T* MINIPOP_RESTRICT x, int nx, int nb) {
  const int w = eff_width<B>(nb);
  for (int i = 0; i < nx; ++i) {
    const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
    const unsigned char sel = mr[i];
    for (int m = 0; m < w; ++m) x[ib + m] = sel ? x[ib + m] : T(0);
  }
}

template <typename T, int B>
inline void row_diag_apply(const T* MINIPOP_RESTRICT vr,
                           const T* MINIPOP_RESTRICT ir,
                           T* MINIPOP_RESTRICT orr, int nx, int nb) {
  const int w = eff_width<B>(nb);
  for (int i = 0; i < nx; ++i) {
    const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
    const T v = vr[i];
    for (int m = 0; m < w; ++m) orr[ib + m] = v * ir[ib + m];
  }
}

template <typename T, int B>
inline void row_masked_copy(const unsigned char* MINIPOP_RESTRICT mr,
                            const T* MINIPOP_RESTRICT ir,
                            T* MINIPOP_RESTRICT orr, int nx, int nb) {
  const int w = eff_width<B>(nb);
  for (int i = 0; i < nx; ++i) {
    const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
    const unsigned char sel = mr[i];
    for (int m = 0; m < w; ++m) orr[ib + m] = sel ? ir[ib + m] : T(0);
  }
}

template <int B>
inline void row_axpy_promoted(const double* MINIPOP_RESTRICT a,
                              const float* MINIPOP_RESTRICT x,
                              double* MINIPOP_RESTRICT y,
                              const unsigned char* MINIPOP_RESTRICT active,
                              int nx, int nb) {
  if constexpr (B == 1) {
    if (active && !active[0]) return;
    const double av = a[0];
    for (int i = 0; i < nx; ++i) y[i] += av * static_cast<double>(x[i]);
  } else {
    const int w = eff_width<B>(nb);
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
      for (int m = 0; m < w; ++m) {
        if (active && !active[m]) continue;
        y[ib + m] += a[m] * static_cast<double>(x[ib + m]);
      }
    }
  }
}

template <typename D, typename S>
inline void row_convert(const S* MINIPOP_RESTRICT x, D* MINIPOP_RESTRICT y,
                        int nx) {
  for (int i = 0; i < nx; ++i) y[i] = static_cast<D>(x[i]);
}

// Mask-free reduction row helpers for the span kernels: every cell they
// see is ocean, so the select collapses to an unconditional accumulate.
// Bit-identical to the masked helpers over the same cells because the
// masked forms add a literal 0.0 at land, and adding +0.0 never changes
// an IEEE accumulator (nor can it flip a +0.0-seeded sum to -0.0).

template <typename T, int B>
inline void row_residual_norm2_span(const T* MINIPOP_RESTRICT c0,
                                    const T* MINIPOP_RESTRICT ce,
                                    const T* MINIPOP_RESTRICT cw,
                                    const T* MINIPOP_RESTRICT cn,
                                    const T* MINIPOP_RESTRICT cs,
                                    const T* MINIPOP_RESTRICT cne,
                                    const T* MINIPOP_RESTRICT cnw,
                                    const T* MINIPOP_RESTRICT cse,
                                    const T* MINIPOP_RESTRICT csw,
                                    const T* MINIPOP_RESTRICT b,
                                    const T* MINIPOP_RESTRICT xm,
                                    const T* MINIPOP_RESTRICT x0,
                                    const T* MINIPOP_RESTRICT xp,
                                    T* MINIPOP_RESTRICT r,
                                    double* MINIPOP_RESTRICT sums, int nx,
                                    int nb) {
  if constexpr (B == 1) {
    double sum = sums[0];
    for (int i = 0; i < nx; ++i) {
      const T rv = b[i] - MINIPOP_POINT9(i);
      r[i] = rv;
      sum += static_cast<double>(rv) * static_cast<double>(rv);
    }
    sums[0] = sum;
  } else {
    const int w = eff_width<B>(nb);
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
      MINIPOP_LOAD9(i);
      for (int mm = 0; mm < w; ++mm) {
        const T rv = b[ib + mm] - MINIPOP_POINT9B(ib, mm, w);
        r[ib + mm] = rv;
        sums[mm] += static_cast<double>(rv) * static_cast<double>(rv);
      }
    }
  }
}

template <typename T, int B>
inline void row_dot_span(const T* MINIPOP_RESTRICT a,
                         const T* MINIPOP_RESTRICT b,
                         double* MINIPOP_RESTRICT sums, int nx, int nb) {
  if constexpr (B == 1) {
    double sum = sums[0];
    for (int i = 0; i < nx; ++i)
      sum += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    sums[0] = sum;
  } else {
    const int w = eff_width<B>(nb);
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
      for (int mm = 0; mm < w; ++mm)
        sums[mm] += static_cast<double>(a[ib + mm]) *
                    static_cast<double>(b[ib + mm]);
    }
  }
}

template <typename T, int B>
inline void row_dot3_span(const T* MINIPOP_RESTRICT rr,
                          const T* MINIPOP_RESTRICT pr,
                          const T* MINIPOP_RESTRICT zr, bool with_norm,
                          double* MINIPOP_RESTRICT s0,
                          double* MINIPOP_RESTRICT s1,
                          double* MINIPOP_RESTRICT s2, int nx, int nb) {
  const int w = eff_width<B>(nb);
  for (int i = 0; i < nx; ++i) {
    const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
    for (int m = 0; m < w; ++m) {
      s0[m] += static_cast<double>(rr[ib + m]) *
               static_cast<double>(pr[ib + m]);
      s1[m] += static_cast<double>(zr[ib + m]) *
               static_cast<double>(pr[ib + m]);
      if (with_norm)
        s2[m] += static_cast<double>(rr[ib + m]) *
                 static_cast<double>(rr[ib + m]);
    }
  }
}

template <typename T, int B>
inline void row_sum_span(const T* MINIPOP_RESTRICT a,
                         double* MINIPOP_RESTRICT sums, int nx, int nb) {
  if constexpr (B == 1) {
    double sum = sums[0];
    for (int i = 0; i < nx; ++i) sum += static_cast<double>(a[i]);
    sums[0] = sum;
  } else {
    const int w = eff_width<B>(nb);
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
      for (int mm = 0; mm < w; ++mm)
        sums[mm] += static_cast<double>(a[ib + mm]);
    }
  }
}

template <typename T, int B>
inline void row_dot_shared_span(const double* MINIPOP_RESTRICT cr,
                                const T* MINIPOP_RESTRICT ar,
                                double* MINIPOP_RESTRICT sums, int nx,
                                int nb) {
  if constexpr (B == 1) {
    double sum = sums[0];
    for (int i = 0; i < nx; ++i)
      sum += cr[i] * static_cast<double>(ar[i]);
    sums[0] = sum;
  } else {
    const int w = eff_width<B>(nb);
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
      const double cv = cr[i];
      for (int mm = 0; mm < w; ++mm)
        sums[mm] += cv * static_cast<double>(ar[ib + mm]);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------
// Core definitions (block drivers: hoist row pointers, delegate to the
// restrict-parameter row helpers above).
// ---------------------------------------------------------------------

namespace core {

template <typename T, int B>
void apply9(const Stencil9T<T>& c, int nb, int nx, int ny, const T* x,
            std::ptrdiff_t xs, T* y, std::ptrdiff_t ys) {
  for (int j = 0; j < ny; ++j) {
    const std::ptrdiff_t cj = j * c.stride;
    const T* x0 = x + j * xs;
    row_apply9<T, B>(c.c0 + cj, c.ce + cj, c.cw + cj, c.cn + cj, c.cs + cj,
                     c.cne + cj, c.cnw + cj, c.cse + cj, c.csw + cj,
                     x0 - xs, x0, x0 + xs, y + j * ys, nx, nb);
  }
}

template <typename T, int B>
void residual9(const Stencil9T<T>& c, int nb, int nx, int ny, const T* b,
               std::ptrdiff_t bs, const T* x, std::ptrdiff_t xs, T* r,
               std::ptrdiff_t rs) {
  for (int j = 0; j < ny; ++j) {
    const std::ptrdiff_t cj = j * c.stride;
    const T* x0 = x + j * xs;
    row_residual9<T, B>(c.c0 + cj, c.ce + cj, c.cw + cj, c.cn + cj,
                        c.cs + cj, c.cne + cj, c.cnw + cj, c.cse + cj,
                        c.csw + cj, b + j * bs, x0 - xs, x0, x0 + xs,
                        r + j * rs, nx, nb);
  }
}

template <typename T, int B>
void residual_norm2_9(const Stencil9T<T>& c, const unsigned char* mask,
                      std::ptrdiff_t ms, int nb, int nx, int ny, const T* b,
                      std::ptrdiff_t bs, const T* x, std::ptrdiff_t xs,
                      T* r, std::ptrdiff_t rs, double* sums) {
  for (int j = 0; j < ny; ++j) {
    const std::ptrdiff_t cj = j * c.stride;
    const T* x0 = x + j * xs;
    row_residual_norm2<T, B>(c.c0 + cj, c.ce + cj, c.cw + cj, c.cn + cj,
                             c.cs + cj, c.cne + cj, c.cnw + cj, c.cse + cj,
                             c.csw + cj, mask + j * ms, b + j * bs, x0 - xs,
                             x0, x0 + xs, r + j * rs, sums, nx, nb);
  }
}

template <typename T, int B>
void dot(const unsigned char* mask, std::ptrdiff_t ms, int nb, int nx,
         int ny, const T* a, std::ptrdiff_t as, const T* b,
         std::ptrdiff_t bs, double* sums) {
  for (int j = 0; j < ny; ++j)
    row_dot<T, B>(mask + j * ms, a + j * as, b + j * bs, sums, nx, nb);
}

template <typename T, int B>
void dot3(const unsigned char* mask, std::ptrdiff_t ms, int nb, int nx,
          int ny, const T* r, std::ptrdiff_t rs, const T* rp,
          std::ptrdiff_t ps, const T* z, std::ptrdiff_t zs, bool with_norm,
          double* out) {
  // Grouped accumulators [rho x w][delta x w][norm x w]; per-member add
  // order equals separate dot calls, so the fusion is bitwise-neutral.
  if constexpr (B == 1) {
    // Width-1 fast path: all three accumulators live in registers
    // across the whole block and the with_norm branch is hoisted out of
    // the sweep (adds to s2 happen only when with_norm, so both forms
    // produce the same bits).
    double s0 = out[0], s1 = out[1], s2 = out[2];
    if (with_norm) {
      for (int j = 0; j < ny; ++j) {
        const unsigned char* MINIPOP_RESTRICT mr = mask + j * ms;
        const T* MINIPOP_RESTRICT rr = r + j * rs;
        const T* MINIPOP_RESTRICT pr = rp + j * ps;
        const T* MINIPOP_RESTRICT zr = z + j * zs;
        for (int i = 0; i < nx; ++i) {
          s0 += mr[i]
                    ? static_cast<double>(rr[i]) * static_cast<double>(pr[i])
                    : 0.0;
          s1 += mr[i]
                    ? static_cast<double>(zr[i]) * static_cast<double>(pr[i])
                    : 0.0;
          s2 += mr[i]
                    ? static_cast<double>(rr[i]) * static_cast<double>(rr[i])
                    : 0.0;
        }
      }
    } else {
      for (int j = 0; j < ny; ++j) {
        const unsigned char* MINIPOP_RESTRICT mr = mask + j * ms;
        const T* MINIPOP_RESTRICT rr = r + j * rs;
        const T* MINIPOP_RESTRICT pr = rp + j * ps;
        const T* MINIPOP_RESTRICT zr = z + j * zs;
        for (int i = 0; i < nx; ++i) {
          s0 += mr[i]
                    ? static_cast<double>(rr[i]) * static_cast<double>(pr[i])
                    : 0.0;
          s1 += mr[i]
                    ? static_cast<double>(zr[i]) * static_cast<double>(pr[i])
                    : 0.0;
        }
      }
    }
    out[0] = s0;
    out[1] = s1;
    out[2] = s2;
  } else {
    const int w = eff_width<B>(nb);
    double* s0 = out;
    double* s1 = out + w;
    double* s2 = out + 2 * w;
    for (int j = 0; j < ny; ++j)
      row_dot3<T, B>(mask + j * ms, r + j * rs, rp + j * ps, z + j * zs,
                     with_norm, s0, s1, s2, nx, nb);
  }
}

template <typename T, int B>
void masked_sum(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                int nx, int ny, const T* a, std::ptrdiff_t as,
                double* sums) {
  if constexpr (B == 1) {
    double sum = sums[0];
    for (int j = 0; j < ny; ++j) {
      const unsigned char* MINIPOP_RESTRICT mr = mask + j * ms;
      const T* MINIPOP_RESTRICT ar = a + j * as;
      for (int i = 0; i < nx; ++i)
        sum += mr[i] ? static_cast<double>(ar[i]) : 0.0;
    }
    sums[0] = sum;
  } else {
    const int w = eff_width<B>(nb);
    for (int j = 0; j < ny; ++j) {
      const unsigned char* MINIPOP_RESTRICT mr = mask + j * ms;
      const T* MINIPOP_RESTRICT ar = a + j * as;
      for (int i = 0; i < nx; ++i) {
        const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
        const unsigned char sel = mr[i];
        for (int mm = 0; mm < w; ++mm)
          sums[mm] += sel ? static_cast<double>(ar[ib + mm]) : 0.0;
      }
    }
  }
}

template <typename T, int B>
void dot_shared(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                int nx, int ny, const double* c, std::ptrdiff_t cs,
                const T* a, std::ptrdiff_t as, double* sums) {
  if constexpr (B == 1) {
    double sum = sums[0];
    for (int j = 0; j < ny; ++j) {
      const unsigned char* MINIPOP_RESTRICT mr = mask + j * ms;
      const double* MINIPOP_RESTRICT cr = c + j * cs;
      const T* MINIPOP_RESTRICT ar = a + j * as;
      for (int i = 0; i < nx; ++i)
        sum += mr[i] ? cr[i] * static_cast<double>(ar[i]) : 0.0;
    }
    sums[0] = sum;
  } else {
    const int w = eff_width<B>(nb);
    for (int j = 0; j < ny; ++j) {
      const unsigned char* MINIPOP_RESTRICT mr = mask + j * ms;
      const double* MINIPOP_RESTRICT cr = c + j * cs;
      const T* MINIPOP_RESTRICT ar = a + j * as;
      for (int i = 0; i < nx; ++i) {
        const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * w;
        const unsigned char sel = mr[i];
        const double cv = cr[i];
        for (int mm = 0; mm < w; ++mm)
          sums[mm] += sel ? cv * static_cast<double>(ar[ib + mm]) : 0.0;
      }
    }
  }
}

template <typename T, int B>
void lincomb(int nb, int nx, int ny, const T* a, const T* x,
             std::ptrdiff_t xs, const T* b, T* y, std::ptrdiff_t ys,
             const unsigned char* active) {
  for (int j = 0; j < ny; ++j)
    row_lincomb<T, B>(a, x + j * xs, b, y + j * ys, active, nx, nb);
}

template <typename T, int B>
void axpy(int nb, int nx, int ny, const T* a, const T* x,
          std::ptrdiff_t xs, T* y, std::ptrdiff_t ys,
          const unsigned char* active) {
  for (int j = 0; j < ny; ++j)
    row_axpy<T, B>(a, x + j * xs, y + j * ys, active, nx, nb);
}

template <typename T, int B>
void lincomb_axpy(int nb, int nx, int ny, const T* a, const T* x,
                  std::ptrdiff_t xs, const T* b, T* y, std::ptrdiff_t ys,
                  const T* c, T* z, std::ptrdiff_t zs,
                  const unsigned char* active) {
  for (int j = 0; j < ny; ++j)
    row_lincomb_axpy<T, B>(a, x + j * xs, b, y + j * ys, c, z + j * zs,
                           active, nx, nb);
}

template <typename T, int B>
void scale(int nb, int nx, int ny, const T* a, T* x, std::ptrdiff_t xs,
           const unsigned char* active) {
  for (int j = 0; j < ny; ++j)
    row_scale<T, B>(a, x + j * xs, active, nx, nb);
}

template <typename T, int B>
void copy(int nb, int nx, int ny, const T* x, std::ptrdiff_t xs, T* y,
          std::ptrdiff_t ys) {
  const std::size_t row =
      static_cast<std::size_t>(nx) * eff_width<B>(nb) * sizeof(T);
  for (int j = 0; j < ny; ++j) std::memcpy(y + j * ys, x + j * xs, row);
}

template <typename T, int B>
void fill(int nb, int nx, int ny, T v, T* x, std::ptrdiff_t xs) {
  for (int j = 0; j < ny; ++j) row_fill<T, B>(v, x + j * xs, nx, nb);
}

template <typename T, int B>
void mask_zero(const unsigned char* mask, std::ptrdiff_t ms, int nb,
               int nx, int ny, T* x, std::ptrdiff_t xs) {
  for (int j = 0; j < ny; ++j)
    row_mask_zero<T, B>(mask + j * ms, x + j * xs, nx, nb);
}

template <typename T, int B>
void diag_apply(const T* inv, std::ptrdiff_t is, int nb, int nx, int ny,
                const T* in, std::ptrdiff_t ins, T* out,
                std::ptrdiff_t outs) {
  for (int j = 0; j < ny; ++j)
    row_diag_apply<T, B>(inv + j * is, in + j * ins, out + j * outs, nx,
                         nb);
}

template <typename T, int B>
void masked_copy(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                 int nx, int ny, const T* in, std::ptrdiff_t ins, T* out,
                 std::ptrdiff_t outs) {
  for (int j = 0; j < ny; ++j)
    row_masked_copy<T, B>(mask + j * ms, in + j * ins, out + j * outs, nx,
                          nb);
}

template <int B>
void axpy_promoted(int nb, int nx, int ny, const double* a, const float* x,
                   std::ptrdiff_t xs, double* y, std::ptrdiff_t ys,
                   const unsigned char* active) {
  for (int j = 0; j < ny; ++j)
    row_axpy_promoted<B>(a, x + j * xs, y + j * ys, active, nx, nb);
}

// The four (T, B) core instantiations. B = 1 is the scalar code path
// (bit-identical to the pre-unification kernels); B = 0 is the dynamic
// batch width.
#define MINIPOP_KERNELS_CORE_INSTANTIATE(T, B)                             \
  template void apply9<T, B>(const Stencil9T<T>&, int, int, int, const T*, \
                             std::ptrdiff_t, T*, std::ptrdiff_t);          \
  template void residual9<T, B>(const Stencil9T<T>&, int, int, int,        \
                                const T*, std::ptrdiff_t, const T*,        \
                                std::ptrdiff_t, T*, std::ptrdiff_t);       \
  template void residual_norm2_9<T, B>(                                    \
      const Stencil9T<T>&, const unsigned char*, std::ptrdiff_t, int, int, \
      int, const T*, std::ptrdiff_t, const T*, std::ptrdiff_t, T*,         \
      std::ptrdiff_t, double*);                                            \
  template void dot<T, B>(const unsigned char*, std::ptrdiff_t, int, int,  \
                          int, const T*, std::ptrdiff_t, const T*,         \
                          std::ptrdiff_t, double*);                        \
  template void dot3<T, B>(const unsigned char*, std::ptrdiff_t, int, int, \
                           int, const T*, std::ptrdiff_t, const T*,        \
                           std::ptrdiff_t, const T*, std::ptrdiff_t, bool, \
                           double*);                                       \
  template void masked_sum<T, B>(const unsigned char*, std::ptrdiff_t,     \
                                 int, int, int, const T*, std::ptrdiff_t,  \
                                 double*);                                 \
  template void dot_shared<T, B>(const unsigned char*, std::ptrdiff_t,     \
                                 int, int, int, const double*,             \
                                 std::ptrdiff_t, const T*, std::ptrdiff_t, \
                                 double*);                                 \
  template void lincomb<T, B>(int, int, int, const T*, const T*,           \
                              std::ptrdiff_t, const T*, T*,                \
                              std::ptrdiff_t, const unsigned char*);       \
  template void axpy<T, B>(int, int, int, const T*, const T*,              \
                           std::ptrdiff_t, T*, std::ptrdiff_t,             \
                           const unsigned char*);                          \
  template void lincomb_axpy<T, B>(int, int, int, const T*, const T*,      \
                                   std::ptrdiff_t, const T*, T*,           \
                                   std::ptrdiff_t, const T*, T*,           \
                                   std::ptrdiff_t, const unsigned char*);  \
  template void scale<T, B>(int, int, int, const T*, T*, std::ptrdiff_t,   \
                            const unsigned char*);                         \
  template void copy<T, B>(int, int, int, const T*, std::ptrdiff_t, T*,    \
                           std::ptrdiff_t);                                \
  template void fill<T, B>(int, int, int, T, T*, std::ptrdiff_t);          \
  template void mask_zero<T, B>(const unsigned char*, std::ptrdiff_t, int, \
                                int, int, T*, std::ptrdiff_t);             \
  template void diag_apply<T, B>(const T*, std::ptrdiff_t, int, int, int,  \
                                 const T*, std::ptrdiff_t, T*,             \
                                 std::ptrdiff_t);                          \
  template void masked_copy<T, B>(const unsigned char*, std::ptrdiff_t,    \
                                  int, int, int, const T*, std::ptrdiff_t, \
                                  T*, std::ptrdiff_t);

MINIPOP_KERNELS_CORE_INSTANTIATE(double, 1)
MINIPOP_KERNELS_CORE_INSTANTIATE(double, 0)
MINIPOP_KERNELS_CORE_INSTANTIATE(float, 1)
MINIPOP_KERNELS_CORE_INSTANTIATE(float, 0)
#undef MINIPOP_KERNELS_CORE_INSTANTIATE

template void axpy_promoted<1>(int, int, int, const double*, const float*,
                               std::ptrdiff_t, double*, std::ptrdiff_t,
                               const unsigned char*);
template void axpy_promoted<0>(int, int, int, const double*, const float*,
                               std::ptrdiff_t, double*, std::ptrdiff_t,
                               const unsigned char*);

}  // namespace core

// ---------------------------------------------------------------------
// Span core (file-local): block drivers over per-row ocean-span lists.
// Each driver hoists row pointers per j exactly like the core drivers,
// then delegates each span to the SAME restrict-parameter row helpers
// (or their mask-free reduction twins) with the pointers advanced to the
// span start and nx = span length — the per-cell expression and the
// row-major accumulation order over ocean cells are therefore identical
// to the masked core, which is the whole bitwise-identity story.
// ---------------------------------------------------------------------

namespace {
namespace spancore {

template <typename T, int B>
void apply9(const Stencil9T<T>& c, const int* ro, const Span* sp, int nb,
            int ny, const T* x, std::ptrdiff_t xs, T* y,
            std::ptrdiff_t ys) {
  const int w = eff_width<B>(nb);
  for (int j = 0; j < ny; ++j) {
    const std::ptrdiff_t cj = j * c.stride;
    const T* x0 = x + j * xs;
    T* yr = y + j * ys;
    for (int s = ro[j]; s < ro[j + 1]; ++s) {
      const std::ptrdiff_t ci = cj + sp[s].i0;
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(sp[s].i0) * w;
      row_apply9<T, B>(c.c0 + ci, c.ce + ci, c.cw + ci, c.cn + ci,
                       c.cs + ci, c.cne + ci, c.cnw + ci, c.cse + ci,
                       c.csw + ci, x0 - xs + ib, x0 + ib, x0 + xs + ib,
                       yr + ib, sp[s].len, nb);
    }
  }
}

template <typename T, int B>
void residual9(const Stencil9T<T>& c, const int* ro, const Span* sp,
               int nb, int ny, const T* b, std::ptrdiff_t bs, const T* x,
               std::ptrdiff_t xs, T* r, std::ptrdiff_t rs) {
  const int w = eff_width<B>(nb);
  for (int j = 0; j < ny; ++j) {
    const std::ptrdiff_t cj = j * c.stride;
    const T* x0 = x + j * xs;
    const T* br = b + j * bs;
    T* rr = r + j * rs;
    for (int s = ro[j]; s < ro[j + 1]; ++s) {
      const std::ptrdiff_t ci = cj + sp[s].i0;
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(sp[s].i0) * w;
      row_residual9<T, B>(c.c0 + ci, c.ce + ci, c.cw + ci, c.cn + ci,
                          c.cs + ci, c.cne + ci, c.cnw + ci, c.cse + ci,
                          c.csw + ci, br + ib, x0 - xs + ib, x0 + ib,
                          x0 + xs + ib, rr + ib, sp[s].len, nb);
    }
  }
}

template <typename T, int B>
void residual_norm2_9(const Stencil9T<T>& c, const int* ro, const Span* sp,
                      int nb, int ny, const T* b, std::ptrdiff_t bs,
                      const T* x, std::ptrdiff_t xs, T* r,
                      std::ptrdiff_t rs, double* sums) {
  const int w = eff_width<B>(nb);
  for (int j = 0; j < ny; ++j) {
    const std::ptrdiff_t cj = j * c.stride;
    const T* x0 = x + j * xs;
    const T* br = b + j * bs;
    T* rr = r + j * rs;
    for (int s = ro[j]; s < ro[j + 1]; ++s) {
      const std::ptrdiff_t ci = cj + sp[s].i0;
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(sp[s].i0) * w;
      row_residual_norm2_span<T, B>(
          c.c0 + ci, c.ce + ci, c.cw + ci, c.cn + ci, c.cs + ci, c.cne + ci,
          c.cnw + ci, c.cse + ci, c.csw + ci, br + ib, x0 - xs + ib,
          x0 + ib, x0 + xs + ib, rr + ib, sums, sp[s].len, nb);
    }
  }
}

template <typename T, int B>
void dot(const int* ro, const Span* sp, int nb, int ny, const T* a,
         std::ptrdiff_t as, const T* b, std::ptrdiff_t bs, double* sums) {
  const int w = eff_width<B>(nb);
  for (int j = 0; j < ny; ++j) {
    const T* ar = a + j * as;
    const T* br = b + j * bs;
    for (int s = ro[j]; s < ro[j + 1]; ++s) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(sp[s].i0) * w;
      row_dot_span<T, B>(ar + ib, br + ib, sums, sp[s].len, nb);
    }
  }
}

template <typename T, int B>
void dot3(const int* ro, const Span* sp, int nb, int ny, const T* r,
          std::ptrdiff_t rs, const T* rp, std::ptrdiff_t ps, const T* z,
          std::ptrdiff_t zs, bool with_norm, double* out) {
  if constexpr (B == 1) {
    // Width-1 fast path mirrors core::dot3: register accumulators and
    // the with_norm branch hoisted out of the sweep.
    double s0 = out[0], s1 = out[1], s2 = out[2];
    if (with_norm) {
      for (int j = 0; j < ny; ++j) {
        for (int s = ro[j]; s < ro[j + 1]; ++s) {
          const T* MINIPOP_RESTRICT rr = r + j * rs + sp[s].i0;
          const T* MINIPOP_RESTRICT pr = rp + j * ps + sp[s].i0;
          const T* MINIPOP_RESTRICT zr = z + j * zs + sp[s].i0;
          const int len = sp[s].len;
          for (int i = 0; i < len; ++i) {
            s0 += static_cast<double>(rr[i]) * static_cast<double>(pr[i]);
            s1 += static_cast<double>(zr[i]) * static_cast<double>(pr[i]);
            s2 += static_cast<double>(rr[i]) * static_cast<double>(rr[i]);
          }
        }
      }
    } else {
      for (int j = 0; j < ny; ++j) {
        for (int s = ro[j]; s < ro[j + 1]; ++s) {
          const T* MINIPOP_RESTRICT rr = r + j * rs + sp[s].i0;
          const T* MINIPOP_RESTRICT pr = rp + j * ps + sp[s].i0;
          const T* MINIPOP_RESTRICT zr = z + j * zs + sp[s].i0;
          const int len = sp[s].len;
          for (int i = 0; i < len; ++i) {
            s0 += static_cast<double>(rr[i]) * static_cast<double>(pr[i]);
            s1 += static_cast<double>(zr[i]) * static_cast<double>(pr[i]);
          }
        }
      }
    }
    out[0] = s0;
    out[1] = s1;
    out[2] = s2;
  } else {
    const int w = eff_width<B>(nb);
    double* s0 = out;
    double* s1 = out + w;
    double* s2 = out + 2 * w;
    for (int j = 0; j < ny; ++j)
      for (int s = ro[j]; s < ro[j + 1]; ++s) {
        const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(sp[s].i0) * w;
        row_dot3_span<T, B>(r + j * rs + ib, rp + j * ps + ib,
                            z + j * zs + ib, with_norm, s0, s1, s2,
                            sp[s].len, nb);
      }
  }
}

template <typename T, int B>
void sum(const int* ro, const Span* sp, int nb, int ny, const T* a,
         std::ptrdiff_t as, double* sums) {
  const int w = eff_width<B>(nb);
  for (int j = 0; j < ny; ++j) {
    const T* ar = a + j * as;
    for (int s = ro[j]; s < ro[j + 1]; ++s) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(sp[s].i0) * w;
      row_sum_span<T, B>(ar + ib, sums, sp[s].len, nb);
    }
  }
}

template <typename T, int B>
void dot_shared(const int* ro, const Span* sp, int nb, int ny,
                const double* c, std::ptrdiff_t cs, const T* a,
                std::ptrdiff_t as, double* sums) {
  const int w = eff_width<B>(nb);
  for (int j = 0; j < ny; ++j) {
    const double* cr = c + j * cs;
    const T* ar = a + j * as;
    for (int s = ro[j]; s < ro[j + 1]; ++s) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(sp[s].i0) * w;
      row_dot_shared_span<T, B>(cr + sp[s].i0, ar + ib, sums, sp[s].len,
                                nb);
    }
  }
}

template <typename T, int B>
void lincomb(const int* ro, const Span* sp, int nb, int ny, const T* a,
             const T* x, std::ptrdiff_t xs, const T* b, T* y,
             std::ptrdiff_t ys, const unsigned char* active) {
  const int w = eff_width<B>(nb);
  for (int j = 0; j < ny; ++j)
    for (int s = ro[j]; s < ro[j + 1]; ++s) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(sp[s].i0) * w;
      row_lincomb<T, B>(a, x + j * xs + ib, b, y + j * ys + ib, active,
                        sp[s].len, nb);
    }
}

template <typename T, int B>
void axpy(const int* ro, const Span* sp, int nb, int ny, const T* a,
          const T* x, std::ptrdiff_t xs, T* y, std::ptrdiff_t ys,
          const unsigned char* active) {
  const int w = eff_width<B>(nb);
  for (int j = 0; j < ny; ++j)
    for (int s = ro[j]; s < ro[j + 1]; ++s) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(sp[s].i0) * w;
      row_axpy<T, B>(a, x + j * xs + ib, y + j * ys + ib, active,
                     sp[s].len, nb);
    }
}

template <typename T, int B>
void lincomb_axpy(const int* ro, const Span* sp, int nb, int ny, const T* a,
                  const T* x, std::ptrdiff_t xs, const T* b, T* y,
                  std::ptrdiff_t ys, const T* c, T* z, std::ptrdiff_t zs,
                  const unsigned char* active) {
  const int w = eff_width<B>(nb);
  for (int j = 0; j < ny; ++j)
    for (int s = ro[j]; s < ro[j + 1]; ++s) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(sp[s].i0) * w;
      row_lincomb_axpy<T, B>(a, x + j * xs + ib, b, y + j * ys + ib, c,
                             z + j * zs + ib, active, sp[s].len, nb);
    }
}

template <typename T, int B>
void scale(const int* ro, const Span* sp, int nb, int ny, const T* a, T* x,
           std::ptrdiff_t xs, const unsigned char* active) {
  const int w = eff_width<B>(nb);
  for (int j = 0; j < ny; ++j)
    for (int s = ro[j]; s < ro[j + 1]; ++s) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(sp[s].i0) * w;
      row_scale<T, B>(a, x + j * xs + ib, active, sp[s].len, nb);
    }
}

/// Zero every gap (land run) of row j of `x`; the spans themselves are
/// left untouched. Shared by the three gap-zeroing span kernels.
template <typename T, int B>
inline void zero_gaps(const int* ro, const Span* sp, int nb, int nx, int j,
                      T* xr) {
  const int w = eff_width<B>(nb);
  int prev = 0;
  for (int s = ro[j]; s < ro[j + 1]; ++s) {
    if (sp[s].i0 > prev)
      row_fill<T, B>(T(0), xr + static_cast<std::ptrdiff_t>(prev) * w,
                     sp[s].i0 - prev, nb);
    prev = sp[s].i0 + sp[s].len;
  }
  if (nx > prev)
    row_fill<T, B>(T(0), xr + static_cast<std::ptrdiff_t>(prev) * w,
                   nx - prev, nb);
}

template <typename T, int B>
void mask_zero(const int* ro, const Span* sp, int nb, int nx, int ny, T* x,
               std::ptrdiff_t xs) {
  // Strictly cheaper than the masked kernel: ocean cells keep their
  // value by NOT being rewritten (bit-identical to the masked rewrite).
  for (int j = 0; j < ny; ++j)
    zero_gaps<T, B>(ro, sp, nb, nx, j, x + j * xs);
}

template <typename T, int B>
void diag_apply(const T* inv, std::ptrdiff_t is, const int* ro,
                const Span* sp, int nb, int nx, int ny, const T* in,
                std::ptrdiff_t ins, T* out, std::ptrdiff_t outs) {
  // inv is 0 on land, so the masked kernel writes exact zeros in the
  // gaps — zero_gaps reproduces them without loading inv or in there.
  const int w = eff_width<B>(nb);
  for (int j = 0; j < ny; ++j) {
    T* orow = out + j * outs;
    for (int s = ro[j]; s < ro[j + 1]; ++s) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(sp[s].i0) * w;
      row_diag_apply<T, B>(inv + j * is + sp[s].i0, in + j * ins + ib,
                           orow + ib, sp[s].len, nb);
    }
    zero_gaps<T, B>(ro, sp, nb, nx, j, orow);
  }
}

template <typename T, int B>
void masked_copy(const int* ro, const Span* sp, int nb, int nx, int ny,
                 const T* in, std::ptrdiff_t ins, T* out,
                 std::ptrdiff_t outs) {
  const int w = eff_width<B>(nb);
  for (int j = 0; j < ny; ++j) {
    const T* irow = in + j * ins;
    T* orow = out + j * outs;
    for (int s = ro[j]; s < ro[j + 1]; ++s) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(sp[s].i0) * w;
      std::memcpy(orow + ib, irow + ib,
                  static_cast<std::size_t>(sp[s].len) * w * sizeof(T));
    }
    zero_gaps<T, B>(ro, sp, nb, nx, j, orow);
  }
}

}  // namespace spancore
}  // namespace

// ---------------------------------------------------------------------
// Scalar API: thin wrappers over the B = 1 core instantiations.
// ---------------------------------------------------------------------

template <typename T>
void apply9(const Stencil9T<T>& c, int nx, int ny, const T* x,
            std::ptrdiff_t xs, T* y, std::ptrdiff_t ys) {
  core::apply9<T, 1>(c, 1, nx, ny, x, xs, y, ys);
}

template <typename T>
void residual9(const Stencil9T<T>& c, int nx, int ny, const T* b,
               std::ptrdiff_t bs, const T* x, std::ptrdiff_t xs, T* r,
               std::ptrdiff_t rs) {
  core::residual9<T, 1>(c, 1, nx, ny, b, bs, x, xs, r, rs);
}

template <typename T>
double residual_norm2_9(const Stencil9T<T>& c, const unsigned char* mask,
                        std::ptrdiff_t ms, int nx, int ny, const T* b,
                        std::ptrdiff_t bs, const T* x, std::ptrdiff_t xs,
                        T* r, std::ptrdiff_t rs, double sum0) {
  double sum = sum0;
  core::residual_norm2_9<T, 1>(c, mask, ms, 1, nx, ny, b, bs, x, xs, r, rs,
                               &sum);
  return sum;
}

template <typename T>
double masked_dot(const unsigned char* mask, std::ptrdiff_t ms, int nx,
                  int ny, const T* a, std::ptrdiff_t as, const T* b,
                  std::ptrdiff_t bs, double sum0) {
  double sum = sum0;
  core::dot<T, 1>(mask, ms, 1, nx, ny, a, as, b, bs, &sum);
  return sum;
}

template <typename T>
void masked_dot3(const unsigned char* mask, std::ptrdiff_t ms, int nx,
                 int ny, const T* r, std::ptrdiff_t rs, const T* rp,
                 std::ptrdiff_t ps, const T* z, std::ptrdiff_t zs,
                 bool with_norm, double out[3]) {
  // At w = 1 the grouped core layout [rho][delta][norm] IS out[3].
  core::dot3<T, 1>(mask, ms, 1, nx, ny, r, rs, rp, ps, z, zs, with_norm,
                   out);
}

template <typename T>
double masked_sum(const unsigned char* mask, std::ptrdiff_t ms, int nx,
                  int ny, const T* a, std::ptrdiff_t as, double sum0) {
  double sum = sum0;
  core::masked_sum<T, 1>(mask, ms, 1, nx, ny, a, as, &sum);
  return sum;
}

template <typename T>
double dot_shared(const unsigned char* mask, std::ptrdiff_t ms, int nx,
                  int ny, const double* c, std::ptrdiff_t cs, const T* a,
                  std::ptrdiff_t as, double sum0) {
  double sum = sum0;
  core::dot_shared<T, 1>(mask, ms, 1, nx, ny, c, cs, a, as, &sum);
  return sum;
}

template <typename T>
void lincomb(int nx, int ny, T a, const T* x, std::ptrdiff_t xs, T b, T* y,
             std::ptrdiff_t ys) {
  const T av[1] = {a}, bv[1] = {b};
  core::lincomb<T, 1>(1, nx, ny, av, x, xs, bv, y, ys, nullptr);
}

template <typename T>
void axpy(int nx, int ny, T a, const T* x, std::ptrdiff_t xs, T* y,
          std::ptrdiff_t ys) {
  const T av[1] = {a};
  core::axpy<T, 1>(1, nx, ny, av, x, xs, y, ys, nullptr);
}

template <typename T>
void lincomb_axpy(int nx, int ny, T a, const T* x, std::ptrdiff_t xs, T b,
                  T* y, std::ptrdiff_t ys, T c, T* z, std::ptrdiff_t zs) {
  const T av[1] = {a}, bv[1] = {b}, cv[1] = {c};
  core::lincomb_axpy<T, 1>(1, nx, ny, av, x, xs, bv, y, ys, cv, z, zs,
                           nullptr);
}

template <typename T>
void scale(int nx, int ny, T a, T* x, std::ptrdiff_t xs) {
  const T av[1] = {a};
  core::scale<T, 1>(1, nx, ny, av, x, xs, nullptr);
}

template <typename T>
void copy(int nx, int ny, const T* x, std::ptrdiff_t xs, T* y,
          std::ptrdiff_t ys) {
  core::copy<T, 1>(1, nx, ny, x, xs, y, ys);
}

template <typename T>
void fill(int nx, int ny, T v, T* x, std::ptrdiff_t xs) {
  core::fill<T, 1>(1, nx, ny, v, x, xs);
}

template <typename T>
void mask_zero(const unsigned char* mask, std::ptrdiff_t ms, int nx, int ny,
               T* x, std::ptrdiff_t xs) {
  core::mask_zero<T, 1>(mask, ms, 1, nx, ny, x, xs);
}

template <typename D, typename S>
void convert(int nx, int ny, const S* x, std::ptrdiff_t xs, D* y,
             std::ptrdiff_t ys) {
  for (int j = 0; j < ny; ++j) row_convert(x + j * xs, y + j * ys, nx);
}

// ---------------------------------------------------------------------
// Batched API: dynamic-width wrappers; nb == 1 runs the scalar (B = 1)
// instantiation.
// ---------------------------------------------------------------------

template <typename T>
void apply9_batch(const Stencil9T<T>& c, int nb, int nx, int ny, const T* x,
                  std::ptrdiff_t xs, T* y, std::ptrdiff_t ys) {
  if (nb == 1) return core::apply9<T, 1>(c, 1, nx, ny, x, xs, y, ys);
  core::apply9<T, 0>(c, nb, nx, ny, x, xs, y, ys);
}

template <typename T>
void residual9_batch(const Stencil9T<T>& c, int nb, int nx, int ny,
                     const T* b, std::ptrdiff_t bs, const T* x,
                     std::ptrdiff_t xs, T* r, std::ptrdiff_t rs) {
  if (nb == 1)
    return core::residual9<T, 1>(c, 1, nx, ny, b, bs, x, xs, r, rs);
  core::residual9<T, 0>(c, nb, nx, ny, b, bs, x, xs, r, rs);
}

template <typename T>
void residual_norm2_9_batch(const Stencil9T<T>& c, const unsigned char* mask,
                            std::ptrdiff_t ms, int nb, int nx, int ny,
                            const T* b, std::ptrdiff_t bs, const T* x,
                            std::ptrdiff_t xs, T* r, std::ptrdiff_t rs,
                            double* sums) {
  if (nb == 1)
    return core::residual_norm2_9<T, 1>(c, mask, ms, 1, nx, ny, b, bs, x,
                                        xs, r, rs, sums);
  core::residual_norm2_9<T, 0>(c, mask, ms, nb, nx, ny, b, bs, x, xs, r,
                               rs, sums);
}

template <typename T>
void dot_batch(const unsigned char* mask, std::ptrdiff_t ms, int nb, int nx,
               int ny, const T* a, std::ptrdiff_t as, const T* b,
               std::ptrdiff_t bs, double* sums) {
  if (nb == 1)
    return core::dot<T, 1>(mask, ms, 1, nx, ny, a, as, b, bs, sums);
  core::dot<T, 0>(mask, ms, nb, nx, ny, a, as, b, bs, sums);
}

template <typename T>
void dot3_batch(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                int nx, int ny, const T* r, std::ptrdiff_t rs, const T* rp,
                std::ptrdiff_t ps, const T* z, std::ptrdiff_t zs,
                bool with_norm, double* out) {
  if (nb == 1)
    return core::dot3<T, 1>(mask, ms, 1, nx, ny, r, rs, rp, ps, z, zs,
                            with_norm, out);
  core::dot3<T, 0>(mask, ms, nb, nx, ny, r, rs, rp, ps, z, zs, with_norm,
                   out);
}

template <typename T>
void masked_sum_batch(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                      int nx, int ny, const T* a, std::ptrdiff_t as,
                      double* sums) {
  if (nb == 1) return core::masked_sum<T, 1>(mask, ms, 1, nx, ny, a, as, sums);
  core::masked_sum<T, 0>(mask, ms, nb, nx, ny, a, as, sums);
}

template <typename T>
void dot_shared_batch(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                      int nx, int ny, const double* c, std::ptrdiff_t cs,
                      const T* a, std::ptrdiff_t as, double* sums) {
  if (nb == 1)
    return core::dot_shared<T, 1>(mask, ms, 1, nx, ny, c, cs, a, as, sums);
  core::dot_shared<T, 0>(mask, ms, nb, nx, ny, c, cs, a, as, sums);
}

template <typename T>
void lincomb_axpy_batch(int nb, int nx, int ny, const T* a, const T* x,
                        std::ptrdiff_t xs, const T* b, T* y,
                        std::ptrdiff_t ys, const T* c, T* z,
                        std::ptrdiff_t zs, const unsigned char* active) {
  if (nb == 1)
    return core::lincomb_axpy<T, 1>(1, nx, ny, a, x, xs, b, y, ys, c, z,
                                    zs, active);
  core::lincomb_axpy<T, 0>(nb, nx, ny, a, x, xs, b, y, ys, c, z, zs,
                           active);
}

template <typename T>
void axpy_batch(int nb, int nx, int ny, const T* a, const T* x,
                std::ptrdiff_t xs, T* y, std::ptrdiff_t ys,
                const unsigned char* active) {
  if (nb == 1)
    return core::axpy<T, 1>(1, nx, ny, a, x, xs, y, ys, active);
  core::axpy<T, 0>(nb, nx, ny, a, x, xs, y, ys, active);
}

template <typename T>
void scale_batch(int nb, int nx, int ny, const T* a, T* x,
                 std::ptrdiff_t xs, const unsigned char* active) {
  if (nb == 1) return core::scale<T, 1>(1, nx, ny, a, x, xs, active);
  core::scale<T, 0>(nb, nx, ny, a, x, xs, active);
}

template <typename T>
void copy_batch(int nb, int nx, int ny, const T* x, std::ptrdiff_t xs, T* y,
                std::ptrdiff_t ys) {
  core::copy<T, 0>(nb, nx, ny, x, xs, y, ys);
}

template <typename T>
void fill_batch(int nb, int nx, int ny, T v, T* x, std::ptrdiff_t xs) {
  core::fill<T, 0>(nb, nx, ny, v, x, xs);
}

template <typename T>
void mask_zero_batch(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                     int nx, int ny, T* x, std::ptrdiff_t xs) {
  if (nb == 1) return core::mask_zero<T, 1>(mask, ms, 1, nx, ny, x, xs);
  core::mask_zero<T, 0>(mask, ms, nb, nx, ny, x, xs);
}

template <typename T>
void diag_apply_batch(const T* inv, std::ptrdiff_t is, int nb, int nx,
                      int ny, const T* in, std::ptrdiff_t ins, T* out,
                      std::ptrdiff_t outs) {
  if (nb == 1)
    return core::diag_apply<T, 1>(inv, is, 1, nx, ny, in, ins, out, outs);
  core::diag_apply<T, 0>(inv, is, nb, nx, ny, in, ins, out, outs);
}

template <typename T>
void masked_copy_batch(const unsigned char* mask, std::ptrdiff_t ms,
                       int nb, int nx, int ny, const T* in,
                       std::ptrdiff_t ins, T* out, std::ptrdiff_t outs) {
  if (nb == 1)
    return core::masked_copy<T, 1>(mask, ms, 1, nx, ny, in, ins, out,
                                   outs);
  core::masked_copy<T, 0>(mask, ms, nb, nx, ny, in, ins, out, outs);
}

void axpy_promoted_batch(int nb, int nx, int ny, const double* a,
                         const float* x, std::ptrdiff_t xs, double* y,
                         std::ptrdiff_t ys, const unsigned char* active) {
  if (nb == 1)
    return core::axpy_promoted<1>(1, nx, ny, a, x, xs, y, ys, active);
  core::axpy_promoted<0>(nb, nx, ny, a, x, xs, y, ys, active);
}

#define MINIPOP_KERNELS_INSTANTIATE(T)                                     \
  template void apply9<T>(const Stencil9T<T>&, int, int, const T*,         \
                          std::ptrdiff_t, T*, std::ptrdiff_t);             \
  template void residual9<T>(const Stencil9T<T>&, int, int, const T*,      \
                             std::ptrdiff_t, const T*, std::ptrdiff_t, T*, \
                             std::ptrdiff_t);                              \
  template double residual_norm2_9<T>(                                     \
      const Stencil9T<T>&, const unsigned char*, std::ptrdiff_t, int, int, \
      const T*, std::ptrdiff_t, const T*, std::ptrdiff_t, T*,              \
      std::ptrdiff_t, double);                                             \
  template double masked_dot<T>(const unsigned char*, std::ptrdiff_t, int, \
                                int, const T*, std::ptrdiff_t, const T*,   \
                                std::ptrdiff_t, double);                   \
  template void masked_dot3<T>(const unsigned char*, std::ptrdiff_t, int,  \
                               int, const T*, std::ptrdiff_t, const T*,    \
                               std::ptrdiff_t, const T*, std::ptrdiff_t,   \
                               bool, double[3]);                           \
  template double masked_sum<T>(const unsigned char*, std::ptrdiff_t, int, \
                                int, const T*, std::ptrdiff_t, double);    \
  template double dot_shared<T>(const unsigned char*, std::ptrdiff_t, int, \
                                int, const double*, std::ptrdiff_t,        \
                                const T*, std::ptrdiff_t, double);         \
  template void lincomb<T>(int, int, T, const T*, std::ptrdiff_t, T, T*,   \
                           std::ptrdiff_t);                                \
  template void axpy<T>(int, int, T, const T*, std::ptrdiff_t, T*,         \
                        std::ptrdiff_t);                                   \
  template void lincomb_axpy<T>(int, int, T, const T*, std::ptrdiff_t, T,  \
                                T*, std::ptrdiff_t, T, T*, std::ptrdiff_t);\
  template void scale<T>(int, int, T, T*, std::ptrdiff_t);                 \
  template void copy<T>(int, int, const T*, std::ptrdiff_t, T*,            \
                        std::ptrdiff_t);                                   \
  template void fill<T>(int, int, T, T*, std::ptrdiff_t);                  \
  template void mask_zero<T>(const unsigned char*, std::ptrdiff_t, int,    \
                             int, T*, std::ptrdiff_t);                     \
  template void apply9_batch<T>(const Stencil9T<T>&, int, int, int,        \
                                const T*, std::ptrdiff_t, T*,              \
                                std::ptrdiff_t);                           \
  template void residual9_batch<T>(const Stencil9T<T>&, int, int, int,     \
                                   const T*, std::ptrdiff_t, const T*,     \
                                   std::ptrdiff_t, T*, std::ptrdiff_t);    \
  template void residual_norm2_9_batch<T>(                                 \
      const Stencil9T<T>&, const unsigned char*, std::ptrdiff_t, int, int, \
      int, const T*, std::ptrdiff_t, const T*, std::ptrdiff_t, T*,         \
      std::ptrdiff_t, double*);                                            \
  template void dot_batch<T>(const unsigned char*, std::ptrdiff_t, int,    \
                             int, int, const T*, std::ptrdiff_t, const T*, \
                             std::ptrdiff_t, double*);                     \
  template void dot3_batch<T>(const unsigned char*, std::ptrdiff_t, int,   \
                              int, int, const T*, std::ptrdiff_t,          \
                              const T*, std::ptrdiff_t, const T*,          \
                              std::ptrdiff_t, bool, double*);              \
  template void masked_sum_batch<T>(const unsigned char*, std::ptrdiff_t,  \
                                    int, int, int, const T*,               \
                                    std::ptrdiff_t, double*);              \
  template void dot_shared_batch<T>(const unsigned char*, std::ptrdiff_t,  \
                                    int, int, int, const double*,          \
                                    std::ptrdiff_t, const T*,              \
                                    std::ptrdiff_t, double*);              \
  template void lincomb_axpy_batch<T>(int, int, int, const T*, const T*,   \
                                      std::ptrdiff_t, const T*, T*,        \
                                      std::ptrdiff_t, const T*, T*,        \
                                      std::ptrdiff_t,                      \
                                      const unsigned char*);               \
  template void axpy_batch<T>(int, int, int, const T*, const T*,           \
                              std::ptrdiff_t, T*, std::ptrdiff_t,          \
                              const unsigned char*);                       \
  template void scale_batch<T>(int, int, int, const T*, T*,                \
                               std::ptrdiff_t, const unsigned char*);      \
  template void copy_batch<T>(int, int, int, const T*, std::ptrdiff_t,     \
                              T*, std::ptrdiff_t);                         \
  template void fill_batch<T>(int, int, int, T, T*, std::ptrdiff_t);       \
  template void mask_zero_batch<T>(const unsigned char*, std::ptrdiff_t,   \
                                   int, int, int, T*, std::ptrdiff_t);     \
  template void diag_apply_batch<T>(const T*, std::ptrdiff_t, int, int,    \
                                    int, const T*, std::ptrdiff_t, T*,     \
                                    std::ptrdiff_t);                       \
  template void masked_copy_batch<T>(const unsigned char*, std::ptrdiff_t, \
                                     int, int, int, const T*,              \
                                     std::ptrdiff_t, T*, std::ptrdiff_t);

MINIPOP_KERNELS_INSTANTIATE(double)
MINIPOP_KERNELS_INSTANTIATE(float)
#undef MINIPOP_KERNELS_INSTANTIATE

template void convert<float, double>(int, int, const double*,
                                     std::ptrdiff_t, float*, std::ptrdiff_t);
template void convert<double, float>(int, int, const float*, std::ptrdiff_t,
                                     double*, std::ptrdiff_t);

// ---------------------------------------------------------------------
// Span API: scalar wrappers over the B = 1 span core, batched wrappers
// dispatching nb == 1 to the scalar code path like the *_batch kernels.
// ---------------------------------------------------------------------

template <typename T>
void apply9_span(const Stencil9T<T>& c, const int* row_offset,
                 const Span* spans, int ny, const T* x, std::ptrdiff_t xs,
                 T* y, std::ptrdiff_t ys) {
  spancore::apply9<T, 1>(c, row_offset, spans, 1, ny, x, xs, y, ys);
}

template <typename T>
void residual9_span(const Stencil9T<T>& c, const int* row_offset,
                    const Span* spans, int ny, const T* b,
                    std::ptrdiff_t bs, const T* x, std::ptrdiff_t xs, T* r,
                    std::ptrdiff_t rs) {
  spancore::residual9<T, 1>(c, row_offset, spans, 1, ny, b, bs, x, xs, r,
                            rs);
}

template <typename T>
double residual_norm2_9_span(const Stencil9T<T>& c, const int* row_offset,
                             const Span* spans, int ny, const T* b,
                             std::ptrdiff_t bs, const T* x,
                             std::ptrdiff_t xs, T* r, std::ptrdiff_t rs,
                             double sum0) {
  double sum = sum0;
  spancore::residual_norm2_9<T, 1>(c, row_offset, spans, 1, ny, b, bs, x,
                                   xs, r, rs, &sum);
  return sum;
}

template <typename T>
double dot_span(const int* row_offset, const Span* spans, int ny,
                const T* a, std::ptrdiff_t as, const T* b,
                std::ptrdiff_t bs, double sum0) {
  double sum = sum0;
  spancore::dot<T, 1>(row_offset, spans, 1, ny, a, as, b, bs, &sum);
  return sum;
}

template <typename T>
void dot3_span(const int* row_offset, const Span* spans, int ny, const T* r,
               std::ptrdiff_t rs, const T* rp, std::ptrdiff_t ps,
               const T* z, std::ptrdiff_t zs, bool with_norm,
               double out[3]) {
  spancore::dot3<T, 1>(row_offset, spans, 1, ny, r, rs, rp, ps, z, zs,
                       with_norm, out);
}

template <typename T>
double sum_span(const int* row_offset, const Span* spans, int ny,
                const T* a, std::ptrdiff_t as, double sum0) {
  double sum = sum0;
  spancore::sum<T, 1>(row_offset, spans, 1, ny, a, as, &sum);
  return sum;
}

template <typename T>
double dot_shared_span(const int* row_offset, const Span* spans, int ny,
                       const double* c, std::ptrdiff_t cs, const T* a,
                       std::ptrdiff_t as, double sum0) {
  double sum = sum0;
  spancore::dot_shared<T, 1>(row_offset, spans, 1, ny, c, cs, a, as, &sum);
  return sum;
}

template <typename T>
void lincomb_span(const int* row_offset, const Span* spans, int ny, T a,
                  const T* x, std::ptrdiff_t xs, T b, T* y,
                  std::ptrdiff_t ys) {
  const T av[1] = {a}, bv[1] = {b};
  spancore::lincomb<T, 1>(row_offset, spans, 1, ny, av, x, xs, bv, y, ys,
                          nullptr);
}

template <typename T>
void axpy_span(const int* row_offset, const Span* spans, int ny, T a,
               const T* x, std::ptrdiff_t xs, T* y, std::ptrdiff_t ys) {
  const T av[1] = {a};
  spancore::axpy<T, 1>(row_offset, spans, 1, ny, av, x, xs, y, ys, nullptr);
}

template <typename T>
void lincomb_axpy_span(const int* row_offset, const Span* spans, int ny,
                       T a, const T* x, std::ptrdiff_t xs, T b, T* y,
                       std::ptrdiff_t ys, T c, T* z, std::ptrdiff_t zs) {
  const T av[1] = {a}, bv[1] = {b}, cv[1] = {c};
  spancore::lincomb_axpy<T, 1>(row_offset, spans, 1, ny, av, x, xs, bv, y,
                               ys, cv, z, zs, nullptr);
}

template <typename T>
void scale_span(const int* row_offset, const Span* spans, int ny, T a,
                T* x, std::ptrdiff_t xs) {
  const T av[1] = {a};
  spancore::scale<T, 1>(row_offset, spans, 1, ny, av, x, xs, nullptr);
}

template <typename T>
void mask_zero_span(const int* row_offset, const Span* spans, int nx,
                    int ny, T* x, std::ptrdiff_t xs) {
  spancore::mask_zero<T, 1>(row_offset, spans, 1, nx, ny, x, xs);
}

template <typename T>
void diag_apply_span(const T* inv, std::ptrdiff_t is, const int* row_offset,
                     const Span* spans, int nx, int ny, const T* in,
                     std::ptrdiff_t ins, T* out, std::ptrdiff_t outs) {
  spancore::diag_apply<T, 1>(inv, is, row_offset, spans, 1, nx, ny, in,
                             ins, out, outs);
}

template <typename T>
void masked_copy_span(const int* row_offset, const Span* spans, int nx,
                      int ny, const T* in, std::ptrdiff_t ins, T* out,
                      std::ptrdiff_t outs) {
  spancore::masked_copy<T, 1>(row_offset, spans, 1, nx, ny, in, ins, out,
                              outs);
}

template <typename T>
void apply9_span_batch(const Stencil9T<T>& c, const int* row_offset,
                       const Span* spans, int nb, int ny, const T* x,
                       std::ptrdiff_t xs, T* y, std::ptrdiff_t ys) {
  if (nb == 1)
    return spancore::apply9<T, 1>(c, row_offset, spans, 1, ny, x, xs, y,
                                  ys);
  spancore::apply9<T, 0>(c, row_offset, spans, nb, ny, x, xs, y, ys);
}

template <typename T>
void residual9_span_batch(const Stencil9T<T>& c, const int* row_offset,
                          const Span* spans, int nb, int ny, const T* b,
                          std::ptrdiff_t bs, const T* x, std::ptrdiff_t xs,
                          T* r, std::ptrdiff_t rs) {
  if (nb == 1)
    return spancore::residual9<T, 1>(c, row_offset, spans, 1, ny, b, bs, x,
                                     xs, r, rs);
  spancore::residual9<T, 0>(c, row_offset, spans, nb, ny, b, bs, x, xs, r,
                            rs);
}

template <typename T>
void residual_norm2_9_span_batch(const Stencil9T<T>& c,
                                 const int* row_offset, const Span* spans,
                                 int nb, int ny, const T* b,
                                 std::ptrdiff_t bs, const T* x,
                                 std::ptrdiff_t xs, T* r, std::ptrdiff_t rs,
                                 double* sums) {
  if (nb == 1)
    return spancore::residual_norm2_9<T, 1>(c, row_offset, spans, 1, ny, b,
                                            bs, x, xs, r, rs, sums);
  spancore::residual_norm2_9<T, 0>(c, row_offset, spans, nb, ny, b, bs, x,
                                   xs, r, rs, sums);
}

template <typename T>
void dot_span_batch(const int* row_offset, const Span* spans, int nb,
                    int ny, const T* a, std::ptrdiff_t as, const T* b,
                    std::ptrdiff_t bs, double* sums) {
  if (nb == 1)
    return spancore::dot<T, 1>(row_offset, spans, 1, ny, a, as, b, bs,
                               sums);
  spancore::dot<T, 0>(row_offset, spans, nb, ny, a, as, b, bs, sums);
}

template <typename T>
void dot3_span_batch(const int* row_offset, const Span* spans, int nb,
                     int ny, const T* r, std::ptrdiff_t rs, const T* rp,
                     std::ptrdiff_t ps, const T* z, std::ptrdiff_t zs,
                     bool with_norm, double* out) {
  if (nb == 1)
    return spancore::dot3<T, 1>(row_offset, spans, 1, ny, r, rs, rp, ps, z,
                                zs, with_norm, out);
  spancore::dot3<T, 0>(row_offset, spans, nb, ny, r, rs, rp, ps, z, zs,
                       with_norm, out);
}

template <typename T>
void sum_span_batch(const int* row_offset, const Span* spans, int nb,
                    int ny, const T* a, std::ptrdiff_t as, double* sums) {
  if (nb == 1)
    return spancore::sum<T, 1>(row_offset, spans, 1, ny, a, as, sums);
  spancore::sum<T, 0>(row_offset, spans, nb, ny, a, as, sums);
}

template <typename T>
void dot_shared_span_batch(const int* row_offset, const Span* spans,
                           int nb, int ny, const double* c,
                           std::ptrdiff_t cs, const T* a, std::ptrdiff_t as,
                           double* sums) {
  if (nb == 1)
    return spancore::dot_shared<T, 1>(row_offset, spans, 1, ny, c, cs, a,
                                      as, sums);
  spancore::dot_shared<T, 0>(row_offset, spans, nb, ny, c, cs, a, as,
                             sums);
}

template <typename T>
void lincomb_span_batch(const int* row_offset, const Span* spans, int nb,
                        int ny, const T* a, const T* x, std::ptrdiff_t xs,
                        const T* b, T* y, std::ptrdiff_t ys,
                        const unsigned char* active) {
  if (nb == 1)
    return spancore::lincomb<T, 1>(row_offset, spans, 1, ny, a, x, xs, b,
                                   y, ys, active);
  spancore::lincomb<T, 0>(row_offset, spans, nb, ny, a, x, xs, b, y, ys,
                          active);
}

template <typename T>
void axpy_span_batch(const int* row_offset, const Span* spans, int nb,
                     int ny, const T* a, const T* x, std::ptrdiff_t xs,
                     T* y, std::ptrdiff_t ys, const unsigned char* active) {
  if (nb == 1)
    return spancore::axpy<T, 1>(row_offset, spans, 1, ny, a, x, xs, y, ys,
                                active);
  spancore::axpy<T, 0>(row_offset, spans, nb, ny, a, x, xs, y, ys, active);
}

template <typename T>
void lincomb_axpy_span_batch(const int* row_offset, const Span* spans,
                             int nb, int ny, const T* a, const T* x,
                             std::ptrdiff_t xs, const T* b, T* y,
                             std::ptrdiff_t ys, const T* c, T* z,
                             std::ptrdiff_t zs,
                             const unsigned char* active) {
  if (nb == 1)
    return spancore::lincomb_axpy<T, 1>(row_offset, spans, 1, ny, a, x, xs,
                                        b, y, ys, c, z, zs, active);
  spancore::lincomb_axpy<T, 0>(row_offset, spans, nb, ny, a, x, xs, b, y,
                               ys, c, z, zs, active);
}

template <typename T>
void scale_span_batch(const int* row_offset, const Span* spans, int nb,
                      int ny, const T* a, T* x, std::ptrdiff_t xs,
                      const unsigned char* active) {
  if (nb == 1)
    return spancore::scale<T, 1>(row_offset, spans, 1, ny, a, x, xs,
                                 active);
  spancore::scale<T, 0>(row_offset, spans, nb, ny, a, x, xs, active);
}

template <typename T>
void mask_zero_span_batch(const int* row_offset, const Span* spans, int nb,
                          int nx, int ny, T* x, std::ptrdiff_t xs) {
  if (nb == 1)
    return spancore::mask_zero<T, 1>(row_offset, spans, 1, nx, ny, x, xs);
  spancore::mask_zero<T, 0>(row_offset, spans, nb, nx, ny, x, xs);
}

template <typename T>
void diag_apply_span_batch(const T* inv, std::ptrdiff_t is,
                           const int* row_offset, const Span* spans,
                           int nb, int nx, int ny, const T* in,
                           std::ptrdiff_t ins, T* out,
                           std::ptrdiff_t outs) {
  if (nb == 1)
    return spancore::diag_apply<T, 1>(inv, is, row_offset, spans, 1, nx,
                                      ny, in, ins, out, outs);
  spancore::diag_apply<T, 0>(inv, is, row_offset, spans, nb, nx, ny, in,
                             ins, out, outs);
}

template <typename T>
void masked_copy_span_batch(const int* row_offset, const Span* spans,
                            int nb, int nx, int ny, const T* in,
                            std::ptrdiff_t ins, T* out,
                            std::ptrdiff_t outs) {
  if (nb == 1)
    return spancore::masked_copy<T, 1>(row_offset, spans, 1, nx, ny, in,
                                       ins, out, outs);
  spancore::masked_copy<T, 0>(row_offset, spans, nb, nx, ny, in, ins, out,
                              outs);
}

#define MINIPOP_KERNELS_SPAN_INSTANTIATE(T)                                \
  template void apply9_span<T>(const Stencil9T<T>&, const int*,            \
                               const Span*, int, const T*, std::ptrdiff_t, \
                               T*, std::ptrdiff_t);                        \
  template void residual9_span<T>(const Stencil9T<T>&, const int*,         \
                                  const Span*, int, const T*,              \
                                  std::ptrdiff_t, const T*,                \
                                  std::ptrdiff_t, T*, std::ptrdiff_t);     \
  template double residual_norm2_9_span<T>(                                \
      const Stencil9T<T>&, const int*, const Span*, int, const T*,         \
      std::ptrdiff_t, const T*, std::ptrdiff_t, T*, std::ptrdiff_t,        \
      double);                                                             \
  template double dot_span<T>(const int*, const Span*, int, const T*,      \
                              std::ptrdiff_t, const T*, std::ptrdiff_t,    \
                              double);                                     \
  template void dot3_span<T>(const int*, const Span*, int, const T*,       \
                             std::ptrdiff_t, const T*, std::ptrdiff_t,     \
                             const T*, std::ptrdiff_t, bool, double[3]);   \
  template double sum_span<T>(const int*, const Span*, int, const T*,      \
                              std::ptrdiff_t, double);                     \
  template double dot_shared_span<T>(const int*, const Span*, int,         \
                                     const double*, std::ptrdiff_t,        \
                                     const T*, std::ptrdiff_t, double);    \
  template void lincomb_span<T>(const int*, const Span*, int, T, const T*, \
                                std::ptrdiff_t, T, T*, std::ptrdiff_t);    \
  template void axpy_span<T>(const int*, const Span*, int, T, const T*,    \
                             std::ptrdiff_t, T*, std::ptrdiff_t);          \
  template void lincomb_axpy_span<T>(const int*, const Span*, int, T,      \
                                     const T*, std::ptrdiff_t, T, T*,      \
                                     std::ptrdiff_t, T, T*,                \
                                     std::ptrdiff_t);                      \
  template void scale_span<T>(const int*, const Span*, int, T, T*,         \
                              std::ptrdiff_t);                             \
  template void mask_zero_span<T>(const int*, const Span*, int, int, T*,   \
                                  std::ptrdiff_t);                         \
  template void diag_apply_span<T>(const T*, std::ptrdiff_t, const int*,   \
                                   const Span*, int, int, const T*,        \
                                   std::ptrdiff_t, T*, std::ptrdiff_t);    \
  template void masked_copy_span<T>(const int*, const Span*, int, int,     \
                                    const T*, std::ptrdiff_t, T*,          \
                                    std::ptrdiff_t);                       \
  template void apply9_span_batch<T>(const Stencil9T<T>&, const int*,      \
                                     const Span*, int, int, const T*,      \
                                     std::ptrdiff_t, T*, std::ptrdiff_t);  \
  template void residual9_span_batch<T>(                                   \
      const Stencil9T<T>&, const int*, const Span*, int, int, const T*,    \
      std::ptrdiff_t, const T*, std::ptrdiff_t, T*, std::ptrdiff_t);       \
  template void residual_norm2_9_span_batch<T>(                            \
      const Stencil9T<T>&, const int*, const Span*, int, int, const T*,    \
      std::ptrdiff_t, const T*, std::ptrdiff_t, T*, std::ptrdiff_t,        \
      double*);                                                            \
  template void dot_span_batch<T>(const int*, const Span*, int, int,       \
                                  const T*, std::ptrdiff_t, const T*,      \
                                  std::ptrdiff_t, double*);                \
  template void dot3_span_batch<T>(const int*, const Span*, int, int,      \
                                   const T*, std::ptrdiff_t, const T*,     \
                                   std::ptrdiff_t, const T*,               \
                                   std::ptrdiff_t, bool, double*);         \
  template void sum_span_batch<T>(const int*, const Span*, int, int,       \
                                  const T*, std::ptrdiff_t, double*);      \
  template void dot_shared_span_batch<T>(const int*, const Span*, int,     \
                                         int, const double*,               \
                                         std::ptrdiff_t, const T*,         \
                                         std::ptrdiff_t, double*);         \
  template void lincomb_span_batch<T>(const int*, const Span*, int, int,   \
                                      const T*, const T*, std::ptrdiff_t,  \
                                      const T*, T*, std::ptrdiff_t,        \
                                      const unsigned char*);               \
  template void axpy_span_batch<T>(const int*, const Span*, int, int,      \
                                   const T*, const T*, std::ptrdiff_t, T*, \
                                   std::ptrdiff_t, const unsigned char*);  \
  template void lincomb_axpy_span_batch<T>(                                \
      const int*, const Span*, int, int, const T*, const T*,               \
      std::ptrdiff_t, const T*, T*, std::ptrdiff_t, const T*, T*,          \
      std::ptrdiff_t, const unsigned char*);                               \
  template void scale_span_batch<T>(const int*, const Span*, int, int,     \
                                    const T*, T*, std::ptrdiff_t,          \
                                    const unsigned char*);                 \
  template void mask_zero_span_batch<T>(const int*, const Span*, int,      \
                                        int, int, T*, std::ptrdiff_t);     \
  template void diag_apply_span_batch<T>(                                  \
      const T*, std::ptrdiff_t, const int*, const Span*, int, int, int,    \
      const T*, std::ptrdiff_t, T*, std::ptrdiff_t);                       \
  template void masked_copy_span_batch<T>(const int*, const Span*, int,    \
                                          int, int, const T*,              \
                                          std::ptrdiff_t, T*,              \
                                          std::ptrdiff_t);

MINIPOP_KERNELS_SPAN_INSTANTIATE(double)
MINIPOP_KERNELS_SPAN_INSTANTIATE(float)
#undef MINIPOP_KERNELS_SPAN_INSTANTIATE

}  // namespace minipop::solver::kernels
