// Implementation notes
//
// Every kernel hoists its row pointers once per j and hands the dense
// inner loop to a per-row helper whose pointers are restrict-qualified
// PARAMETERS: GCC honors restrict reliably on parameters (and keeps the
// no-alias guarantee when the helper inlines back into the j loop), but
// largely ignores it on local pointer variables — with locals the
// stencil loops stay scalar. The nine-point expression keeps the exact
// term order of the original scalar code (center, E, W, N, S, NE, NW,
// SE, SW) and reductions accumulate scalar, row-major, continuing from
// the caller's running sum — so the fused kernels are bit-identical to
// the loops they replace; only the number of passes over memory changes.
//
// Masked reductions use a select (`mask ? term : 0.0`) instead of a
// branch: adding +0.0 cannot change the accumulator, so the select is
// bitwise equivalent to the branchy form while staying if-convertible.
//
// Everything is a template over the storage scalar T, explicitly
// instantiated for double and float at the bottom of this file. The
// double instantiation generates EXACTLY the code of the pre-template
// kernels (the widening casts in the reduction helpers are no-ops for
// T = double), preserving the bit-for-bit contract. Reduction
// accumulators are double for both instantiations; reduction operands
// are widened BEFORE multiplying so fp32 products enter the accumulator
// exactly.
#include "src/solver/kernels.hpp"

#include <cstring>

namespace minipop::solver::kernels {

namespace {

/// The shared nine-point row expression over the south/center/north
/// interior rows xm/x0/xp. A macro, not a helper function: GCC's
/// restrict tracking does not survive passing the pointers through
/// another call (even a fully inlined one), and the row loops then
/// refuse to vectorize. The term order is fixed — it defines the result
/// bit pattern.
#define MINIPOP_POINT9(i)                                              \
  (c0[i] * x0[i] + ce[i] * x0[(i) + 1] + cw[i] * x0[(i)-1] +           \
   cn[i] * xp[i] + cs[i] * xm[i] + cne[i] * xp[(i) + 1] +              \
   cnw[i] * xp[(i)-1] + cse[i] * xm[(i) + 1] + csw[i] * xm[(i)-1])

template <typename T>
inline void row_apply9(const T* MINIPOP_RESTRICT c0,
                       const T* MINIPOP_RESTRICT ce,
                       const T* MINIPOP_RESTRICT cw,
                       const T* MINIPOP_RESTRICT cn,
                       const T* MINIPOP_RESTRICT cs,
                       const T* MINIPOP_RESTRICT cne,
                       const T* MINIPOP_RESTRICT cnw,
                       const T* MINIPOP_RESTRICT cse,
                       const T* MINIPOP_RESTRICT csw,
                       const T* MINIPOP_RESTRICT xm,
                       const T* MINIPOP_RESTRICT x0,
                       const T* MINIPOP_RESTRICT xp,
                       T* MINIPOP_RESTRICT y, int nx) {
  for (int i = 0; i < nx; ++i) y[i] = MINIPOP_POINT9(i);
}

template <typename T>
inline void row_residual9(const T* MINIPOP_RESTRICT c0,
                          const T* MINIPOP_RESTRICT ce,
                          const T* MINIPOP_RESTRICT cw,
                          const T* MINIPOP_RESTRICT cn,
                          const T* MINIPOP_RESTRICT cs,
                          const T* MINIPOP_RESTRICT cne,
                          const T* MINIPOP_RESTRICT cnw,
                          const T* MINIPOP_RESTRICT cse,
                          const T* MINIPOP_RESTRICT csw,
                          const T* MINIPOP_RESTRICT b,
                          const T* MINIPOP_RESTRICT xm,
                          const T* MINIPOP_RESTRICT x0,
                          const T* MINIPOP_RESTRICT xp,
                          T* MINIPOP_RESTRICT r, int nx) {
  for (int i = 0; i < nx; ++i) r[i] = b[i] - MINIPOP_POINT9(i);
}

template <typename T>
inline double row_residual_norm2(const T* MINIPOP_RESTRICT c0,
                                 const T* MINIPOP_RESTRICT ce,
                                 const T* MINIPOP_RESTRICT cw,
                                 const T* MINIPOP_RESTRICT cn,
                                 const T* MINIPOP_RESTRICT cs,
                                 const T* MINIPOP_RESTRICT cne,
                                 const T* MINIPOP_RESTRICT cnw,
                                 const T* MINIPOP_RESTRICT cse,
                                 const T* MINIPOP_RESTRICT csw,
                                 const unsigned char* MINIPOP_RESTRICT m,
                                 const T* MINIPOP_RESTRICT b,
                                 const T* MINIPOP_RESTRICT xm,
                                 const T* MINIPOP_RESTRICT x0,
                                 const T* MINIPOP_RESTRICT xp,
                                 T* MINIPOP_RESTRICT r, int nx,
                                 double sum) {
  for (int i = 0; i < nx; ++i) {
    const T rv = b[i] - MINIPOP_POINT9(i);
    r[i] = rv;
    sum += m[i] ? static_cast<double>(rv) * static_cast<double>(rv) : 0.0;
  }
  return sum;
}

#undef MINIPOP_POINT9

template <typename T>
inline double row_masked_dot(const unsigned char* MINIPOP_RESTRICT m,
                             const T* MINIPOP_RESTRICT a,
                             const T* MINIPOP_RESTRICT b, int nx,
                             double sum) {
  for (int i = 0; i < nx; ++i)
    sum += m[i] ? static_cast<double>(a[i]) * static_cast<double>(b[i])
                : 0.0;
  return sum;
}

template <typename T>
inline void row_lincomb(T a, const T* MINIPOP_RESTRICT x, T b,
                        T* MINIPOP_RESTRICT y, int nx) {
  for (int i = 0; i < nx; ++i) y[i] = a * x[i] + b * y[i];
}

template <typename T>
inline void row_axpy(T a, const T* MINIPOP_RESTRICT x,
                     T* MINIPOP_RESTRICT y, int nx) {
  for (int i = 0; i < nx; ++i) y[i] += a * x[i];
}

template <typename T>
inline void row_lincomb_axpy(T a, const T* MINIPOP_RESTRICT x, T b,
                             T* MINIPOP_RESTRICT y, T c,
                             T* MINIPOP_RESTRICT z, int nx) {
  for (int i = 0; i < nx; ++i) {
    const T v = a * x[i] + b * y[i];
    y[i] = v;
    z[i] += c * v;
  }
}

template <typename D, typename S>
inline void row_convert(const S* MINIPOP_RESTRICT x, D* MINIPOP_RESTRICT y,
                        int nx) {
  for (int i = 0; i < nx; ++i) y[i] = static_cast<D>(x[i]);
}

}  // namespace

template <typename T>
void apply9(const Stencil9T<T>& c, int nx, int ny, const T* x,
            std::ptrdiff_t xs, T* y, std::ptrdiff_t ys) {
  for (int j = 0; j < ny; ++j) {
    const std::ptrdiff_t cj = j * c.stride;
    const T* x0 = x + j * xs;
    row_apply9(c.c0 + cj, c.ce + cj, c.cw + cj, c.cn + cj, c.cs + cj,
               c.cne + cj, c.cnw + cj, c.cse + cj, c.csw + cj, x0 - xs, x0,
               x0 + xs, y + j * ys, nx);
  }
}

template <typename T>
void residual9(const Stencil9T<T>& c, int nx, int ny, const T* b,
               std::ptrdiff_t bs, const T* x, std::ptrdiff_t xs, T* r,
               std::ptrdiff_t rs) {
  for (int j = 0; j < ny; ++j) {
    const std::ptrdiff_t cj = j * c.stride;
    const T* x0 = x + j * xs;
    row_residual9(c.c0 + cj, c.ce + cj, c.cw + cj, c.cn + cj, c.cs + cj,
                  c.cne + cj, c.cnw + cj, c.cse + cj, c.csw + cj,
                  b + j * bs, x0 - xs, x0, x0 + xs, r + j * rs, nx);
  }
}

template <typename T>
double residual_norm2_9(const Stencil9T<T>& c, const unsigned char* mask,
                        std::ptrdiff_t ms, int nx, int ny, const T* b,
                        std::ptrdiff_t bs, const T* x, std::ptrdiff_t xs,
                        T* r, std::ptrdiff_t rs, double sum0) {
  double sum = sum0;
  for (int j = 0; j < ny; ++j) {
    const std::ptrdiff_t cj = j * c.stride;
    const T* x0 = x + j * xs;
    sum = row_residual_norm2(c.c0 + cj, c.ce + cj, c.cw + cj, c.cn + cj,
                             c.cs + cj, c.cne + cj, c.cnw + cj, c.cse + cj,
                             c.csw + cj, mask + j * ms, b + j * bs, x0 - xs,
                             x0, x0 + xs, r + j * rs, nx, sum);
  }
  return sum;
}

template <typename T>
double masked_dot(const unsigned char* mask, std::ptrdiff_t ms, int nx,
                  int ny, const T* a, std::ptrdiff_t as, const T* b,
                  std::ptrdiff_t bs, double sum0) {
  double sum = sum0;
  for (int j = 0; j < ny; ++j)
    sum = row_masked_dot(mask + j * ms, a + j * as, b + j * bs, nx, sum);
  return sum;
}

template <typename T>
void masked_dot3(const unsigned char* mask, std::ptrdiff_t ms, int nx,
                 int ny, const T* r, std::ptrdiff_t rs, const T* rp,
                 std::ptrdiff_t ps, const T* z, std::ptrdiff_t zs,
                 bool with_norm, double out[3]) {
  // One pass per row with all accumulators live (each field element is
  // loaded once); per-accumulator add order equals separate masked_dot
  // calls, so fusing stays bitwise-neutral.
  double s0 = out[0], s1 = out[1], s2 = out[2];
  if (with_norm) {
    for (int j = 0; j < ny; ++j) {
      const unsigned char* MINIPOP_RESTRICT mr = mask + j * ms;
      const T* MINIPOP_RESTRICT rr = r + j * rs;
      const T* MINIPOP_RESTRICT pr = rp + j * ps;
      const T* MINIPOP_RESTRICT zr = z + j * zs;
      for (int i = 0; i < nx; ++i) {
        s0 += mr[i] ? static_cast<double>(rr[i]) * static_cast<double>(pr[i])
                    : 0.0;
        s1 += mr[i] ? static_cast<double>(zr[i]) * static_cast<double>(pr[i])
                    : 0.0;
        s2 += mr[i] ? static_cast<double>(rr[i]) * static_cast<double>(rr[i])
                    : 0.0;
      }
    }
  } else {
    for (int j = 0; j < ny; ++j) {
      const unsigned char* MINIPOP_RESTRICT mr = mask + j * ms;
      const T* MINIPOP_RESTRICT rr = r + j * rs;
      const T* MINIPOP_RESTRICT pr = rp + j * ps;
      const T* MINIPOP_RESTRICT zr = z + j * zs;
      for (int i = 0; i < nx; ++i) {
        s0 += mr[i] ? static_cast<double>(rr[i]) * static_cast<double>(pr[i])
                    : 0.0;
        s1 += mr[i] ? static_cast<double>(zr[i]) * static_cast<double>(pr[i])
                    : 0.0;
      }
    }
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
}

template <typename T>
void lincomb(int nx, int ny, T a, const T* x, std::ptrdiff_t xs, T b, T* y,
             std::ptrdiff_t ys) {
  for (int j = 0; j < ny; ++j)
    row_lincomb(a, x + j * xs, b, y + j * ys, nx);
}

template <typename T>
void axpy(int nx, int ny, T a, const T* x, std::ptrdiff_t xs, T* y,
          std::ptrdiff_t ys) {
  for (int j = 0; j < ny; ++j) row_axpy(a, x + j * xs, y + j * ys, nx);
}

template <typename T>
void lincomb_axpy(int nx, int ny, T a, const T* x, std::ptrdiff_t xs, T b,
                  T* y, std::ptrdiff_t ys, T c, T* z, std::ptrdiff_t zs) {
  for (int j = 0; j < ny; ++j)
    row_lincomb_axpy(a, x + j * xs, b, y + j * ys, c, z + j * zs, nx);
}

template <typename T>
void scale(int nx, int ny, T a, T* x, std::ptrdiff_t xs) {
  for (int j = 0; j < ny; ++j) {
    T* MINIPOP_RESTRICT xr = x + j * xs;
    for (int i = 0; i < nx; ++i) xr[i] *= a;
  }
}

template <typename T>
void copy(int nx, int ny, const T* x, std::ptrdiff_t xs, T* y,
          std::ptrdiff_t ys) {
  for (int j = 0; j < ny; ++j)
    std::memcpy(y + j * ys, x + j * xs,
                static_cast<std::size_t>(nx) * sizeof(T));
}

template <typename T>
void fill(int nx, int ny, T v, T* x, std::ptrdiff_t xs) {
  for (int j = 0; j < ny; ++j) {
    T* MINIPOP_RESTRICT xr = x + j * xs;
    for (int i = 0; i < nx; ++i) xr[i] = v;
  }
}

template <typename T>
void mask_zero(const unsigned char* mask, std::ptrdiff_t ms, int nx, int ny,
               T* x, std::ptrdiff_t xs) {
  for (int j = 0; j < ny; ++j) {
    const unsigned char* MINIPOP_RESTRICT mr = mask + j * ms;
    T* MINIPOP_RESTRICT xr = x + j * xs;
    for (int i = 0; i < nx; ++i) xr[i] = mr[i] ? xr[i] : T(0);
  }
}

template <typename D, typename S>
void convert(int nx, int ny, const S* x, std::ptrdiff_t xs, D* y,
             std::ptrdiff_t ys) {
  for (int j = 0; j < ny; ++j) row_convert(x + j * xs, y + j * ys, nx);
}

// ---------------------------------------------------------------------
// Batched multi-RHS kernels. Same structure as the scalar kernels —
// row helpers with restrict-qualified parameters, fixed nine-point term
// order — plus an inner member loop over the interleaved lanes. Each
// coefficient is hoisted into a scalar once per cell and reused across
// the member loop; member m's expression and reduction order match the
// scalar kernels exactly (the bit-for-bit contract in kernels.hpp).
// ---------------------------------------------------------------------

namespace {

/// The nine-point expression for member m of cell i in an interleaved
/// row (ib = i*nb): east/west neighbors sit a full member group (nb)
/// away. Term order identical to MINIPOP_POINT9.
#define MINIPOP_POINT9B(ib, m, nb)                                       \
  (w0 * x0[(ib) + (m)] + we * x0[(ib) + (nb) + (m)] +                    \
   ww * x0[(ib) - (nb) + (m)] + wn * xp[(ib) + (m)] +                    \
   ws * xm[(ib) + (m)] + wne * xp[(ib) + (nb) + (m)] +                   \
   wnw * xp[(ib) - (nb) + (m)] + wse * xm[(ib) + (nb) + (m)] +           \
   wsw * xm[(ib) - (nb) + (m)])

/// Hoists the nine coefficients of cell i into scalars; the member loop
/// then re-reads only field lanes.
#define MINIPOP_LOAD9(i)                                                 \
  const double w0 = c0[i], we = ce[i], ww = cw[i], wn = cn[i],           \
               ws = cs[i], wne = cne[i], wnw = cnw[i], wse = cse[i],     \
               wsw = csw[i]

inline void row_apply9_batch(const double* MINIPOP_RESTRICT c0,
                             const double* MINIPOP_RESTRICT ce,
                             const double* MINIPOP_RESTRICT cw,
                             const double* MINIPOP_RESTRICT cn,
                             const double* MINIPOP_RESTRICT cs,
                             const double* MINIPOP_RESTRICT cne,
                             const double* MINIPOP_RESTRICT cnw,
                             const double* MINIPOP_RESTRICT cse,
                             const double* MINIPOP_RESTRICT csw,
                             const double* MINIPOP_RESTRICT xm,
                             const double* MINIPOP_RESTRICT x0,
                             const double* MINIPOP_RESTRICT xp,
                             double* MINIPOP_RESTRICT y, int nx, int nb) {
  for (int i = 0; i < nx; ++i) {
    const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * nb;
    MINIPOP_LOAD9(i);
    for (int m = 0; m < nb; ++m) y[ib + m] = MINIPOP_POINT9B(ib, m, nb);
  }
}

inline void row_residual9_batch(const double* MINIPOP_RESTRICT c0,
                                const double* MINIPOP_RESTRICT ce,
                                const double* MINIPOP_RESTRICT cw,
                                const double* MINIPOP_RESTRICT cn,
                                const double* MINIPOP_RESTRICT cs,
                                const double* MINIPOP_RESTRICT cne,
                                const double* MINIPOP_RESTRICT cnw,
                                const double* MINIPOP_RESTRICT cse,
                                const double* MINIPOP_RESTRICT csw,
                                const double* MINIPOP_RESTRICT b,
                                const double* MINIPOP_RESTRICT xm,
                                const double* MINIPOP_RESTRICT x0,
                                const double* MINIPOP_RESTRICT xp,
                                double* MINIPOP_RESTRICT r, int nx,
                                int nb) {
  for (int i = 0; i < nx; ++i) {
    const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * nb;
    MINIPOP_LOAD9(i);
    for (int m = 0; m < nb; ++m)
      r[ib + m] = b[ib + m] - MINIPOP_POINT9B(ib, m, nb);
  }
}

inline void row_residual_norm2_batch(
    const double* MINIPOP_RESTRICT c0, const double* MINIPOP_RESTRICT ce,
    const double* MINIPOP_RESTRICT cw, const double* MINIPOP_RESTRICT cn,
    const double* MINIPOP_RESTRICT cs, const double* MINIPOP_RESTRICT cne,
    const double* MINIPOP_RESTRICT cnw, const double* MINIPOP_RESTRICT cse,
    const double* MINIPOP_RESTRICT csw,
    const unsigned char* MINIPOP_RESTRICT m,
    const double* MINIPOP_RESTRICT b, const double* MINIPOP_RESTRICT xm,
    const double* MINIPOP_RESTRICT x0, const double* MINIPOP_RESTRICT xp,
    double* MINIPOP_RESTRICT r, double* MINIPOP_RESTRICT sums, int nx,
    int nb) {
  for (int i = 0; i < nx; ++i) {
    const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * nb;
    MINIPOP_LOAD9(i);
    const unsigned char sel = m[i];
    for (int mm = 0; mm < nb; ++mm) {
      const double rv = b[ib + mm] - MINIPOP_POINT9B(ib, mm, nb);
      r[ib + mm] = rv;
      sums[mm] += sel ? rv * rv : 0.0;
    }
  }
}

inline void row_dot_batch(const unsigned char* MINIPOP_RESTRICT m,
                          const double* MINIPOP_RESTRICT a,
                          const double* MINIPOP_RESTRICT b,
                          double* MINIPOP_RESTRICT sums, int nx, int nb) {
  for (int i = 0; i < nx; ++i) {
    const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * nb;
    const unsigned char sel = m[i];
    for (int mm = 0; mm < nb; ++mm)
      sums[mm] += sel ? a[ib + mm] * b[ib + mm] : 0.0;
  }
}

#undef MINIPOP_LOAD9
#undef MINIPOP_POINT9B

}  // namespace

void apply9_batch(const Stencil9& c, int nb, int nx, int ny,
                  const double* x, std::ptrdiff_t xs, double* y,
                  std::ptrdiff_t ys) {
  for (int j = 0; j < ny; ++j) {
    const std::ptrdiff_t cj = j * c.stride;
    const double* x0 = x + j * xs;
    row_apply9_batch(c.c0 + cj, c.ce + cj, c.cw + cj, c.cn + cj,
                     c.cs + cj, c.cne + cj, c.cnw + cj, c.cse + cj,
                     c.csw + cj, x0 - xs, x0, x0 + xs, y + j * ys, nx, nb);
  }
}

void residual9_batch(const Stencil9& c, int nb, int nx, int ny,
                     const double* b, std::ptrdiff_t bs, const double* x,
                     std::ptrdiff_t xs, double* r, std::ptrdiff_t rs) {
  for (int j = 0; j < ny; ++j) {
    const std::ptrdiff_t cj = j * c.stride;
    const double* x0 = x + j * xs;
    row_residual9_batch(c.c0 + cj, c.ce + cj, c.cw + cj, c.cn + cj,
                        c.cs + cj, c.cne + cj, c.cnw + cj, c.cse + cj,
                        c.csw + cj, b + j * bs, x0 - xs, x0, x0 + xs,
                        r + j * rs, nx, nb);
  }
}

void residual_norm2_9_batch(const Stencil9& c, const unsigned char* mask,
                            std::ptrdiff_t ms, int nb, int nx, int ny,
                            const double* b, std::ptrdiff_t bs,
                            const double* x, std::ptrdiff_t xs, double* r,
                            std::ptrdiff_t rs, double* sums) {
  for (int j = 0; j < ny; ++j) {
    const std::ptrdiff_t cj = j * c.stride;
    const double* x0 = x + j * xs;
    row_residual_norm2_batch(c.c0 + cj, c.ce + cj, c.cw + cj, c.cn + cj,
                             c.cs + cj, c.cne + cj, c.cnw + cj,
                             c.cse + cj, c.csw + cj, mask + j * ms,
                             b + j * bs, x0 - xs, x0, x0 + xs, r + j * rs,
                             sums, nx, nb);
  }
}

void dot_batch(const unsigned char* mask, std::ptrdiff_t ms, int nb,
               int nx, int ny, const double* a, std::ptrdiff_t as,
               const double* b, std::ptrdiff_t bs, double* sums) {
  for (int j = 0; j < ny; ++j)
    row_dot_batch(mask + j * ms, a + j * as, b + j * bs, sums, nx, nb);
}

void dot3_batch(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                int nx, int ny, const double* r, std::ptrdiff_t rs,
                const double* rp, std::ptrdiff_t ps, const double* z,
                std::ptrdiff_t zs, bool with_norm, double* out) {
  // Grouped accumulators [rho x nb][delta x nb][norm x nb]; per-member
  // add order equals separate dot_batch calls, matching masked_dot3's
  // bitwise-neutral fusion contract.
  double* MINIPOP_RESTRICT s0 = out;
  double* MINIPOP_RESTRICT s1 = out + nb;
  double* MINIPOP_RESTRICT s2 = out + 2 * nb;
  for (int j = 0; j < ny; ++j) {
    const unsigned char* MINIPOP_RESTRICT mr = mask + j * ms;
    const double* MINIPOP_RESTRICT rr = r + j * rs;
    const double* MINIPOP_RESTRICT pr = rp + j * ps;
    const double* MINIPOP_RESTRICT zr = z + j * zs;
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * nb;
      const unsigned char sel = mr[i];
      for (int m = 0; m < nb; ++m) {
        s0[m] += sel ? rr[ib + m] * pr[ib + m] : 0.0;
        s1[m] += sel ? zr[ib + m] * pr[ib + m] : 0.0;
        if (with_norm) s2[m] += sel ? rr[ib + m] * rr[ib + m] : 0.0;
      }
    }
  }
}

void lincomb_axpy_batch(int nb, int nx, int ny, const double* a,
                        const double* x, std::ptrdiff_t xs,
                        const double* b, double* y, std::ptrdiff_t ys,
                        const double* c, double* z, std::ptrdiff_t zs,
                        const unsigned char* active) {
  for (int j = 0; j < ny; ++j) {
    const double* MINIPOP_RESTRICT xr = x + j * xs;
    double* MINIPOP_RESTRICT yr = y + j * ys;
    double* MINIPOP_RESTRICT zr = z + j * zs;
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * nb;
      for (int m = 0; m < nb; ++m) {
        if (active && !active[m]) continue;
        const double v = a[m] * xr[ib + m] + b[m] * yr[ib + m];
        yr[ib + m] = v;
        zr[ib + m] += c[m] * v;
      }
    }
  }
}

void axpy_batch(int nb, int nx, int ny, const double* a, const double* x,
                std::ptrdiff_t xs, double* y, std::ptrdiff_t ys,
                const unsigned char* active) {
  for (int j = 0; j < ny; ++j) {
    const double* MINIPOP_RESTRICT xr = x + j * xs;
    double* MINIPOP_RESTRICT yr = y + j * ys;
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * nb;
      for (int m = 0; m < nb; ++m) {
        if (active && !active[m]) continue;
        yr[ib + m] += a[m] * xr[ib + m];
      }
    }
  }
}

void scale_batch(int nb, int nx, int ny, const double* a, double* x,
                 std::ptrdiff_t xs, const unsigned char* active) {
  for (int j = 0; j < ny; ++j) {
    double* MINIPOP_RESTRICT xr = x + j * xs;
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * nb;
      for (int m = 0; m < nb; ++m) {
        if (active && !active[m]) continue;
        xr[ib + m] *= a[m];
      }
    }
  }
}

void copy_batch(int nb, int nx, int ny, const double* x, std::ptrdiff_t xs,
                double* y, std::ptrdiff_t ys) {
  for (int j = 0; j < ny; ++j)
    std::memcpy(y + j * ys, x + j * xs,
                static_cast<std::size_t>(nx) * nb * sizeof(double));
}

void fill_batch(int nb, int nx, int ny, double v, double* x,
                std::ptrdiff_t xs) {
  const std::ptrdiff_t row = static_cast<std::ptrdiff_t>(nx) * nb;
  for (int j = 0; j < ny; ++j) {
    double* MINIPOP_RESTRICT xr = x + j * xs;
    for (std::ptrdiff_t i = 0; i < row; ++i) xr[i] = v;
  }
}

void mask_zero_batch(const unsigned char* mask, std::ptrdiff_t ms, int nb,
                     int nx, int ny, double* x, std::ptrdiff_t xs) {
  for (int j = 0; j < ny; ++j) {
    const unsigned char* MINIPOP_RESTRICT mr = mask + j * ms;
    double* MINIPOP_RESTRICT xr = x + j * xs;
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * nb;
      const unsigned char sel = mr[i];
      for (int m = 0; m < nb; ++m) xr[ib + m] = sel ? xr[ib + m] : 0.0;
    }
  }
}

void diag_apply_batch(const double* inv, std::ptrdiff_t is, int nb, int nx,
                      int ny, const double* in, std::ptrdiff_t ins,
                      double* out, std::ptrdiff_t outs) {
  for (int j = 0; j < ny; ++j) {
    const double* MINIPOP_RESTRICT vr = inv + j * is;
    const double* MINIPOP_RESTRICT ir = in + j * ins;
    double* MINIPOP_RESTRICT orr = out + j * outs;
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * nb;
      const double v = vr[i];
      for (int m = 0; m < nb; ++m) orr[ib + m] = v * ir[ib + m];
    }
  }
}

void masked_copy_batch(const unsigned char* mask, std::ptrdiff_t ms,
                       int nb, int nx, int ny, const double* in,
                       std::ptrdiff_t ins, double* out,
                       std::ptrdiff_t outs) {
  for (int j = 0; j < ny; ++j) {
    const unsigned char* MINIPOP_RESTRICT mr = mask + j * ms;
    const double* MINIPOP_RESTRICT ir = in + j * ins;
    double* MINIPOP_RESTRICT orr = out + j * outs;
    for (int i = 0; i < nx; ++i) {
      const std::ptrdiff_t ib = static_cast<std::ptrdiff_t>(i) * nb;
      const unsigned char sel = mr[i];
      for (int m = 0; m < nb; ++m) orr[ib + m] = sel ? ir[ib + m] : 0.0;
    }
  }
}

#define MINIPOP_KERNELS_INSTANTIATE(T)                                     \
  template void apply9<T>(const Stencil9T<T>&, int, int, const T*,         \
                          std::ptrdiff_t, T*, std::ptrdiff_t);             \
  template void residual9<T>(const Stencil9T<T>&, int, int, const T*,      \
                             std::ptrdiff_t, const T*, std::ptrdiff_t, T*, \
                             std::ptrdiff_t);                              \
  template double residual_norm2_9<T>(                                     \
      const Stencil9T<T>&, const unsigned char*, std::ptrdiff_t, int, int, \
      const T*, std::ptrdiff_t, const T*, std::ptrdiff_t, T*,              \
      std::ptrdiff_t, double);                                             \
  template double masked_dot<T>(const unsigned char*, std::ptrdiff_t, int, \
                                int, const T*, std::ptrdiff_t, const T*,   \
                                std::ptrdiff_t, double);                   \
  template void masked_dot3<T>(const unsigned char*, std::ptrdiff_t, int,  \
                               int, const T*, std::ptrdiff_t, const T*,    \
                               std::ptrdiff_t, const T*, std::ptrdiff_t,   \
                               bool, double[3]);                           \
  template void lincomb<T>(int, int, T, const T*, std::ptrdiff_t, T, T*,   \
                           std::ptrdiff_t);                                \
  template void axpy<T>(int, int, T, const T*, std::ptrdiff_t, T*,         \
                        std::ptrdiff_t);                                   \
  template void lincomb_axpy<T>(int, int, T, const T*, std::ptrdiff_t, T,  \
                                T*, std::ptrdiff_t, T, T*, std::ptrdiff_t);\
  template void scale<T>(int, int, T, T*, std::ptrdiff_t);                 \
  template void copy<T>(int, int, const T*, std::ptrdiff_t, T*,            \
                        std::ptrdiff_t);                                   \
  template void fill<T>(int, int, T, T*, std::ptrdiff_t);                  \
  template void mask_zero<T>(const unsigned char*, std::ptrdiff_t, int,    \
                             int, T*, std::ptrdiff_t);

MINIPOP_KERNELS_INSTANTIATE(double)
MINIPOP_KERNELS_INSTANTIATE(float)
#undef MINIPOP_KERNELS_INSTANTIATE

template void convert<float, double>(int, int, const double*,
                                     std::ptrdiff_t, float*, std::ptrdiff_t);
template void convert<double, float>(int, int, const float*, std::ptrdiff_t,
                                     double*, std::ptrdiff_t);

}  // namespace minipop::solver::kernels
