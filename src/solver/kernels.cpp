// Implementation notes
//
// Every kernel hoists its row pointers once per j and hands the dense
// inner loop to a per-row helper whose pointers are restrict-qualified
// PARAMETERS: GCC honors restrict reliably on parameters (and keeps the
// no-alias guarantee when the helper inlines back into the j loop), but
// largely ignores it on local pointer variables — with locals the
// stencil loops stay scalar. The nine-point expression keeps the exact
// term order of the original scalar code (center, E, W, N, S, NE, NW,
// SE, SW) and reductions accumulate scalar, row-major, continuing from
// the caller's running sum — so the fused kernels are bit-identical to
// the loops they replace; only the number of passes over memory changes.
//
// Masked reductions use a select (`mask ? term : 0.0`) instead of a
// branch: adding +0.0 cannot change the accumulator, so the select is
// bitwise equivalent to the branchy form while staying if-convertible.
#include "src/solver/kernels.hpp"

#include <cstring>

namespace minipop::solver::kernels {

namespace {

/// The shared nine-point row expression over the south/center/north
/// interior rows xm/x0/xp. A macro, not a helper function: GCC's
/// restrict tracking does not survive passing the pointers through
/// another call (even a fully inlined one), and the row loops then
/// refuse to vectorize. The term order is fixed — it defines the result
/// bit pattern.
#define MINIPOP_POINT9(i)                                              \
  (c0[i] * x0[i] + ce[i] * x0[(i) + 1] + cw[i] * x0[(i)-1] +           \
   cn[i] * xp[i] + cs[i] * xm[i] + cne[i] * xp[(i) + 1] +              \
   cnw[i] * xp[(i)-1] + cse[i] * xm[(i) + 1] + csw[i] * xm[(i)-1])

inline void row_apply9(const double* MINIPOP_RESTRICT c0,
                       const double* MINIPOP_RESTRICT ce,
                       const double* MINIPOP_RESTRICT cw,
                       const double* MINIPOP_RESTRICT cn,
                       const double* MINIPOP_RESTRICT cs,
                       const double* MINIPOP_RESTRICT cne,
                       const double* MINIPOP_RESTRICT cnw,
                       const double* MINIPOP_RESTRICT cse,
                       const double* MINIPOP_RESTRICT csw,
                       const double* MINIPOP_RESTRICT xm,
                       const double* MINIPOP_RESTRICT x0,
                       const double* MINIPOP_RESTRICT xp,
                       double* MINIPOP_RESTRICT y, int nx) {
  for (int i = 0; i < nx; ++i) y[i] = MINIPOP_POINT9(i);
}

inline void row_residual9(const double* MINIPOP_RESTRICT c0,
                          const double* MINIPOP_RESTRICT ce,
                          const double* MINIPOP_RESTRICT cw,
                          const double* MINIPOP_RESTRICT cn,
                          const double* MINIPOP_RESTRICT cs,
                          const double* MINIPOP_RESTRICT cne,
                          const double* MINIPOP_RESTRICT cnw,
                          const double* MINIPOP_RESTRICT cse,
                          const double* MINIPOP_RESTRICT csw,
                          const double* MINIPOP_RESTRICT b,
                          const double* MINIPOP_RESTRICT xm,
                          const double* MINIPOP_RESTRICT x0,
                          const double* MINIPOP_RESTRICT xp,
                          double* MINIPOP_RESTRICT r, int nx) {
  for (int i = 0; i < nx; ++i) r[i] = b[i] - MINIPOP_POINT9(i);
}

inline double row_residual_norm2(const double* MINIPOP_RESTRICT c0,
                                 const double* MINIPOP_RESTRICT ce,
                                 const double* MINIPOP_RESTRICT cw,
                                 const double* MINIPOP_RESTRICT cn,
                                 const double* MINIPOP_RESTRICT cs,
                                 const double* MINIPOP_RESTRICT cne,
                                 const double* MINIPOP_RESTRICT cnw,
                                 const double* MINIPOP_RESTRICT cse,
                                 const double* MINIPOP_RESTRICT csw,
                                 const unsigned char* MINIPOP_RESTRICT m,
                                 const double* MINIPOP_RESTRICT b,
                                 const double* MINIPOP_RESTRICT xm,
                                 const double* MINIPOP_RESTRICT x0,
                                 const double* MINIPOP_RESTRICT xp,
                                 double* MINIPOP_RESTRICT r, int nx,
                                 double sum) {
  for (int i = 0; i < nx; ++i) {
    const double rv = b[i] - MINIPOP_POINT9(i);
    r[i] = rv;
    sum += m[i] ? rv * rv : 0.0;
  }
  return sum;
}

#undef MINIPOP_POINT9

inline double row_masked_dot(const unsigned char* MINIPOP_RESTRICT m,
                             const double* MINIPOP_RESTRICT a,
                             const double* MINIPOP_RESTRICT b, int nx,
                             double sum) {
  for (int i = 0; i < nx; ++i) sum += m[i] ? a[i] * b[i] : 0.0;
  return sum;
}

inline void row_lincomb(double a, const double* MINIPOP_RESTRICT x,
                        double b, double* MINIPOP_RESTRICT y, int nx) {
  for (int i = 0; i < nx; ++i) y[i] = a * x[i] + b * y[i];
}

inline void row_axpy(double a, const double* MINIPOP_RESTRICT x,
                     double* MINIPOP_RESTRICT y, int nx) {
  for (int i = 0; i < nx; ++i) y[i] += a * x[i];
}

inline void row_lincomb_axpy(double a, const double* MINIPOP_RESTRICT x,
                             double b, double* MINIPOP_RESTRICT y, double c,
                             double* MINIPOP_RESTRICT z, int nx) {
  for (int i = 0; i < nx; ++i) {
    const double v = a * x[i] + b * y[i];
    y[i] = v;
    z[i] += c * v;
  }
}

}  // namespace

void apply9(const Stencil9& c, int nx, int ny, const double* x,
            std::ptrdiff_t xs, double* y, std::ptrdiff_t ys) {
  for (int j = 0; j < ny; ++j) {
    const std::ptrdiff_t cj = j * c.stride;
    const double* x0 = x + j * xs;
    row_apply9(c.c0 + cj, c.ce + cj, c.cw + cj, c.cn + cj, c.cs + cj,
               c.cne + cj, c.cnw + cj, c.cse + cj, c.csw + cj, x0 - xs, x0,
               x0 + xs, y + j * ys, nx);
  }
}

void residual9(const Stencil9& c, int nx, int ny, const double* b,
               std::ptrdiff_t bs, const double* x, std::ptrdiff_t xs,
               double* r, std::ptrdiff_t rs) {
  for (int j = 0; j < ny; ++j) {
    const std::ptrdiff_t cj = j * c.stride;
    const double* x0 = x + j * xs;
    row_residual9(c.c0 + cj, c.ce + cj, c.cw + cj, c.cn + cj, c.cs + cj,
                  c.cne + cj, c.cnw + cj, c.cse + cj, c.csw + cj,
                  b + j * bs, x0 - xs, x0, x0 + xs, r + j * rs, nx);
  }
}

double residual_norm2_9(const Stencil9& c, const unsigned char* mask,
                        std::ptrdiff_t ms, int nx, int ny, const double* b,
                        std::ptrdiff_t bs, const double* x,
                        std::ptrdiff_t xs, double* r, std::ptrdiff_t rs,
                        double sum0) {
  double sum = sum0;
  for (int j = 0; j < ny; ++j) {
    const std::ptrdiff_t cj = j * c.stride;
    const double* x0 = x + j * xs;
    sum = row_residual_norm2(c.c0 + cj, c.ce + cj, c.cw + cj, c.cn + cj,
                             c.cs + cj, c.cne + cj, c.cnw + cj, c.cse + cj,
                             c.csw + cj, mask + j * ms, b + j * bs, x0 - xs,
                             x0, x0 + xs, r + j * rs, nx, sum);
  }
  return sum;
}

double masked_dot(const unsigned char* mask, std::ptrdiff_t ms, int nx,
                  int ny, const double* a, std::ptrdiff_t as,
                  const double* b, std::ptrdiff_t bs, double sum0) {
  double sum = sum0;
  for (int j = 0; j < ny; ++j)
    sum = row_masked_dot(mask + j * ms, a + j * as, b + j * bs, nx, sum);
  return sum;
}

void masked_dot3(const unsigned char* mask, std::ptrdiff_t ms, int nx,
                 int ny, const double* r, std::ptrdiff_t rs,
                 const double* rp, std::ptrdiff_t ps, const double* z,
                 std::ptrdiff_t zs, bool with_norm, double out[3]) {
  // One pass per row with all accumulators live (each field element is
  // loaded once); per-accumulator add order equals separate masked_dot
  // calls, so fusing stays bitwise-neutral.
  double s0 = out[0], s1 = out[1], s2 = out[2];
  if (with_norm) {
    for (int j = 0; j < ny; ++j) {
      const unsigned char* MINIPOP_RESTRICT mr = mask + j * ms;
      const double* MINIPOP_RESTRICT rr = r + j * rs;
      const double* MINIPOP_RESTRICT pr = rp + j * ps;
      const double* MINIPOP_RESTRICT zr = z + j * zs;
      for (int i = 0; i < nx; ++i) {
        s0 += mr[i] ? rr[i] * pr[i] : 0.0;
        s1 += mr[i] ? zr[i] * pr[i] : 0.0;
        s2 += mr[i] ? rr[i] * rr[i] : 0.0;
      }
    }
  } else {
    for (int j = 0; j < ny; ++j) {
      const unsigned char* MINIPOP_RESTRICT mr = mask + j * ms;
      const double* MINIPOP_RESTRICT rr = r + j * rs;
      const double* MINIPOP_RESTRICT pr = rp + j * ps;
      const double* MINIPOP_RESTRICT zr = z + j * zs;
      for (int i = 0; i < nx; ++i) {
        s0 += mr[i] ? rr[i] * pr[i] : 0.0;
        s1 += mr[i] ? zr[i] * pr[i] : 0.0;
      }
    }
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
}

void lincomb(int nx, int ny, double a, const double* x, std::ptrdiff_t xs,
             double b, double* y, std::ptrdiff_t ys) {
  for (int j = 0; j < ny; ++j)
    row_lincomb(a, x + j * xs, b, y + j * ys, nx);
}

void axpy(int nx, int ny, double a, const double* x, std::ptrdiff_t xs,
          double* y, std::ptrdiff_t ys) {
  for (int j = 0; j < ny; ++j) row_axpy(a, x + j * xs, y + j * ys, nx);
}

void lincomb_axpy(int nx, int ny, double a, const double* x,
                  std::ptrdiff_t xs, double b, double* y, std::ptrdiff_t ys,
                  double c, double* z, std::ptrdiff_t zs) {
  for (int j = 0; j < ny; ++j)
    row_lincomb_axpy(a, x + j * xs, b, y + j * ys, c, z + j * zs, nx);
}

void scale(int nx, int ny, double a, double* x, std::ptrdiff_t xs) {
  for (int j = 0; j < ny; ++j) {
    double* MINIPOP_RESTRICT xr = x + j * xs;
    for (int i = 0; i < nx; ++i) xr[i] *= a;
  }
}

void copy(int nx, int ny, const double* x, std::ptrdiff_t xs, double* y,
          std::ptrdiff_t ys) {
  for (int j = 0; j < ny; ++j)
    std::memcpy(y + j * ys, x + j * xs,
                static_cast<std::size_t>(nx) * sizeof(double));
}

void fill(int nx, int ny, double v, double* x, std::ptrdiff_t xs) {
  for (int j = 0; j < ny; ++j) {
    double* MINIPOP_RESTRICT xr = x + j * xs;
    for (int i = 0; i < nx; ++i) xr[i] = v;
  }
}

void mask_zero(const unsigned char* mask, std::ptrdiff_t ms, int nx, int ny,
               double* x, std::ptrdiff_t xs) {
  for (int j = 0; j < ny; ++j) {
    const unsigned char* MINIPOP_RESTRICT mr = mask + j * ms;
    double* MINIPOP_RESTRICT xr = x + j * xs;
    for (int i = 0; i < nx; ++i) xr[i] = mr[i] ? xr[i] : 0.0;
  }
}

}  // namespace minipop::solver::kernels
