// Mixed-precision decorator: fp32 inner sweeps under an fp64 guard.
//
// Wraps a P-CSI or ChronGear solver and, per SolverOptions::precision,
// runs its iteration in one of three ways:
//
//   kFp64  — delegate to the wrapped solver untouched (bit-identical).
//   kFp32  — the whole solve in float: fp32 fields, fp32 stencil
//            coefficients, half-size halo messages. Reductions still
//            accumulate in double (the kernels widen per element), so
//            the convergence check measures the true fp32 residual.
//            fp32 round-off floors the relative residual near 1e-7;
//            a tighter tolerance stalls there and the ConvergenceGuard's
//            stagnation window reports kStagnated.
//   kMixed — iterative refinement: an fp64 outer loop computes the true
//            residual r = b - A x and checks convergence against the
//            caller's fp64 tolerance; each sweep demotes r, solves
//            A d = r in fp32 to a loose inner tolerance, and applies
//            x += d in fp64 (axpy_promoted). The inner solve does the
//            heavy iterating at fp32 bandwidth; the fp64 outer residual
//            is what lets the combination converge to fp64 tolerance.
//
// The outer check reuses the solvers' existing fused residual+norm sweep
// and costs one reduction per refinement sweep — the same reduction the
// inner iteration would have spent on a convergence check at that point,
// so mixed mode adds no new collectives over the fp64 solver at equal
// check frequency.
//
// ResilientSolver escalates a failing fp32/mixed solve to the wrapped
// fp64 solver (set_forced_fp64) before trying solver-swap fallbacks.
#pragma once

#include <memory>

#include "src/solver/chron_gear.hpp"
#include "src/solver/iterative_solver.hpp"
#include "src/solver/pcsi.hpp"

namespace minipop::solver {

class CommAvoidEngine;
class DistOperator;

class MixedPrecisionSolver final : public IterativeSolver {
 public:
  /// `fp64_twin` must be a PcsiSolver or ChronGearSolver; it defines the
  /// iteration run at every precision and is the escalation target.
  MixedPrecisionSolver(std::unique_ptr<IterativeSolver> fp64_twin,
                       const SolverOptions& options);
  ~MixedPrecisionSolver() override;

  SolveStats solve(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const DistOperator& a, Preconditioner& m, const comm::DistField& b,
      comm::DistField& x,
      comm::HaloFreshness x_fresh = comm::HaloFreshness::kStale) override;

  /// e.g. "mixed(pcsi)"; the precision prefix names the configured mode
  /// even while escalation forces fp64.
  std::string name() const override;

  Precision precision() const { return opt_.precision; }
  /// Escalation switch (ResilientSolver): true routes solves through the
  /// fp64 twin until reset.
  void set_forced_fp64(bool forced) { forced_fp64_ = forced; }
  bool forced_fp64() const { return forced_fp64_; }

  IterativeSolver& fp64_twin() { return *twin_; }
  /// The wrapped P-CSI, or nullptr for a ChronGear twin (bounds
  /// re-estimation reaches through this; the fp32 loop reads the twin's
  /// bounds at solve time, so set_bounds needs no mirroring).
  PcsiSolver* pcsi() { return pcsi_; }

 private:
  /// Depth-k ghost-zone engine for the fp32 P-CSI inner loops, or
  /// nullptr when comm-avoiding doesn't apply (depth 1, ChronGear twin,
  /// or a non-pointwise preconditioner). Cached across refinement
  /// sweeps — the engine's fp32 coefficient mirrors are built once.
  const CommAvoidEngine* ca_engine(const DistOperator& a, Preconditioner& m);

  SolveStats solve_fp32(comm::Communicator& comm,
                        const comm::HaloExchanger& halo,
                        const DistOperator& a, Preconditioner& m,
                        const comm::DistField& b, comm::DistField& x);
  SolveStats solve_mixed(comm::Communicator& comm,
                         const comm::HaloExchanger& halo,
                         const DistOperator& a, Preconditioner& m,
                         const comm::DistField& b, comm::DistField& x,
                         comm::HaloFreshness x_fresh);

  std::unique_ptr<IterativeSolver> twin_;
  PcsiSolver* pcsi_ = nullptr;          ///< view into twin_, if P-CSI
  ChronGearSolver* cg_ = nullptr;       ///< view into twin_, if ChronGear
  SolverOptions opt_;
  bool forced_fp64_ = false;
  std::unique_ptr<CommAvoidEngine> ca_engine_;
  const DistOperator* ca_op_ = nullptr;
};

}  // namespace minipop::solver
