// Rank-local (distributed) view of the nine-point barotropic operator.
//
// Holds per-block copies of the stencil coefficients and land mask for
// the blocks this rank owns, and applies the operator matrix-free. The
// halo of the input vector is refreshed immediately before the stencil
// sweep, so each matvec costs exactly one boundary update — the same
// per-iteration communication the paper's Algorithms 1 and 2 have. (The
// paper places the update after the matvec on the *result*; placing it on
// the *input* is communication-equivalent and stays correct for block
// preconditioners, whose output cannot be extended into the halo
// locally.)
#pragma once

#include <array>
#include <vector>

#include "src/comm/communicator.hpp"
#include "src/comm/dist_field.hpp"
#include "src/comm/halo.hpp"
#include "src/grid/stencil.hpp"
#include "src/solver/span_plan.hpp"

namespace minipop::solver {

class DistOperator {
 public:
  DistOperator(const grid::NinePointStencil& stencil,
               const grid::Decomposition& decomp, int rank);

  const grid::Decomposition& decomposition() const { return *decomp_; }
  /// Construction-time stencil (global coefficient planes). The deep-halo
  /// engine gathers its EXTENDED per-block planes from these — the same
  /// source the per-block copies came from, so ghost-zone coefficients are
  /// bitwise equal to the owning block's interior coefficients.
  const grid::NinePointStencil& stencil() const { return *stencil_; }
  int rank() const { return rank_; }
  int num_local_blocks() const {
    return static_cast<int>(block_coeff_.size());
  }
  long local_ocean_cells() const { return local_ocean_cells_; }
  double phi() const { return phi_; }

  // -------------------------------------------------------------------
  // Land-span execution (DESIGN.md §14). The per-block span plans are
  // always built (cost accounting reads their active-point counts);
  // use_spans() gates whether the sweeps run the mask-free span kernels
  // (bitwise-identical at ocean cells; a MINIPOP_BOUNDS_CHECK build
  // cross-runs the masked kernels and compares) or the masked originals.

  bool use_spans() const { return use_spans_; }
  void set_use_spans(bool on) { use_spans_ = on; }
  /// Whole-interior span plan, indexed by local block — the plan the
  /// preconditioners, field ops, and batched core share. nullptr when
  /// span execution is disabled, so consumers fall back to the masked
  /// kernels with one check.
  const SpanPlan* span_plan() const {
    return use_spans_ ? &span_full_ : nullptr;
  }
  /// Span plan regardless of the use_spans() gate (cost accounting).
  const SpanPlan& block_spans() const { return span_full_; }

  // -------------------------------------------------------------------
  // ABFT operator checksums (DESIGN.md §12). The column-sum field
  // c = A·1 (per block, one pointwise sum of the nine coefficient
  // planes — equal to the column sums because the barotropic operator
  // is symmetric, and local == global because coefficients are
  // identically zero across coastlines and rank boundaries carry the
  // same values both ways) is built once at construction and after
  // every repair. A solve can then audit the identity
  //   sum(A x) == dot(c, x)   i.e.   sum(b) - sum(r) == dot(c, x)
  // over all ocean cells for ~one masked dot, catching silent
  // corruption of the coefficient planes: the sweeps use the (possibly
  // corrupted) coefficients while c keeps the construction-time truth.

  /// Local (this rank's) terms of the ABFT identity, grouped for one
  /// vector allreduce: out[0] = masked sum(b), out[1] = masked sum(r),
  /// out[2] = masked dot(c, x). The identity only holds after BOTH
  /// sides are reduced across ranks — boundary-crossing stencil legs
  /// are counted on the row side by the owner of the row and on the
  /// column side by the owner of the column.
  void abft_local_sums(comm::Communicator& comm, const comm::DistField& b,
                       const comm::DistField& r, const comm::DistField& x,
                       double out[3]) const;

  /// Batched ABFT terms: out[0..nb) = sum(b_m), out[nb..2nb) =
  /// sum(r_m), out[2nb..3nb) = dot(c, x_m); out[0..3nb) OVERWRITTEN.
  void abft_local_sums_batch(comm::Communicator& comm,
                             const comm::DistFieldBatch& b,
                             const comm::DistFieldBatch& r,
                             const comm::DistFieldBatch& x,
                             double* out) const;

  /// Column-sum (checksum) field of local block lb, for tests.
  const util::Field& block_column_sum(int lb) const {
    return column_sum_[lb];
  }

  /// Restore the coefficient planes from the construction-time stencil
  /// (which recovery trusts: it lives in the model's read-only setup,
  /// not in solver working state), rebuild the column sums, and drop
  /// the fp32 mirror so it rebuilds from the repaired values. Recovery
  /// calls this on a kCorruptOperator verdict before restarting from a
  /// checkpoint; a no-op on healthy coefficients (same values copied).
  void repair_coefficients() const;

  /// y = A x over block interiors. Refreshes x's halo first (one
  /// boundary update) unless the caller attests kFresh, so callers never
  /// manage halos themselves.
  void apply(comm::Communicator& comm, const comm::HaloExchanger& halo,
             comm::DistField& x, comm::DistField& y,
             comm::HaloFreshness fresh = comm::HaloFreshness::kStale) const;

  /// r = b - A x (same halo refresh of x), fused into one sweep.
  void residual(comm::Communicator& comm, const comm::HaloExchanger& halo,
                const comm::DistField& b, comm::DistField& x,
                comm::DistField& r,
                comm::HaloFreshness fresh = comm::HaloFreshness::kStale) const;

  /// Fused r = b - A x AND local masked ||r||² in the same sweep — the
  /// solvers' convergence check at zero extra field passes. Returns the
  /// LOCAL sum; combine across ranks with an allreduce. Bit-identical to
  /// residual() followed by local_dot(r, r).
  double residual_local_norm2(comm::Communicator& comm,
                              const comm::HaloExchanger& halo,
                              const comm::DistField& b, comm::DistField& x,
                              comm::DistField& r,
                              comm::HaloFreshness fresh =
                                  comm::HaloFreshness::kStale) const;

  // Split-phase variants: halo.begin() -> sweep the halo-independent
  // interior of each block -> halo.finish() -> sweep the 1-wide boundary
  // rim whose stencil reads the halo. Per-cell outputs are bitwise
  // identical to the blocking sweeps (the 9-point stencil writes each
  // cell independently), and the overlapped norm² accumulates via
  // residual + local_dot, whose order is contractually bit-identical to
  // the fused kernel. With kFresh they skip the exchange and degrade to
  // the plain sweeps.

  /// y = A x with the halo exchange of x hidden behind the interior
  /// sweep.
  void apply_overlapped(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      comm::DistField& x, comm::DistField& y,
      comm::HaloFreshness fresh = comm::HaloFreshness::kStale) const;

  /// r = b - A x with the halo exchange of x hidden behind the interior
  /// sweep.
  void residual_overlapped(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const comm::DistField& b, comm::DistField& x, comm::DistField& r,
      comm::HaloFreshness fresh = comm::HaloFreshness::kStale) const;

  /// Overlapped r = b - A x plus local masked ||r||²; bit-identical to
  /// residual_local_norm2 (and to residual + local_dot).
  double residual_local_norm2_overlapped(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const comm::DistField& b, comm::DistField& x, comm::DistField& r,
      comm::HaloFreshness fresh = comm::HaloFreshness::kStale) const;

  /// Local (this rank's) masked inner product over block interiors;
  /// combine across ranks with an allreduce.
  double local_dot(comm::Communicator& comm, const comm::DistField& a,
                   const comm::DistField& b) const;

  /// Fused local dots of the CG-type iterations in one sweep:
  /// out[0] = <r, rp>, out[1] = <z, rp>, out[2] = <r, r> (only if
  /// with_norm; else out[2] = 0). Bit-identical to three local_dot calls.
  void local_dot3(comm::Communicator& comm, const comm::DistField& r,
                  const comm::DistField& rp, const comm::DistField& z,
                  bool with_norm, double out[3]) const;

  /// Convenience: global masked dot (one reduction).
  double global_dot(comm::Communicator& comm, const comm::DistField& a,
                    const comm::DistField& b) const;

  /// Zero out land cells of the interiors (keeps iterates masked).
  void mask_interior(comm::DistField& x) const;

  // -------------------------------------------------------------------
  // Batched multi-RHS sweeps, templated on the storage scalar exactly
  // like the scalar surface: DistFieldBatch (double) carries the fp64
  // lockstep solves, DistFieldBatch32 (float) the fp32 inner sweeps of
  // the batched mixed-precision path — half the halo bytes in the same
  // aggregated messages. Same structure as the scalar sweeps over an
  // nb-member interleaved batch: ONE aggregated halo exchange and one
  // coefficient pass serve all members, flop counts scale by nb, and
  // member m of every result is bit-identical to the scalar sweep on
  // member m's plane (kernels.hpp contract). Reductions fill per-member
  // fp64 arrays the caller combines in ONE vector allreduce. The
  // solver-vector fault hooks are NOT armed here — those sites corrupt
  // scalar fp64 state; a batch member that diverges recovers through
  // the per-member sub-batch path of the resilient decorator (DESIGN.md
  // §11). Coefficient fault sites DO arm (shared fp64 planes).

  /// y = A x, all members. sums-free; 9*nb flops/point.
  template <typename T>
  void apply_batch(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      comm::DistFieldBatchT<T>& x, comm::DistFieldBatchT<T>& y,
      comm::HaloFreshness fresh = comm::HaloFreshness::kStale) const;

  /// r = b - A x, all members.
  template <typename T>
  void residual_batch(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const comm::DistFieldBatchT<T>& b, comm::DistFieldBatchT<T>& x,
      comm::DistFieldBatchT<T>& r,
      comm::HaloFreshness fresh = comm::HaloFreshness::kStale) const;

  /// Fused r = b - A x AND local masked ||r_m||² for every member:
  /// sums[0..nb) is OVERWRITTEN with the local sums (always fp64, also
  /// on the fp32 batch — the kernels accumulate in double).
  template <typename T>
  void residual_local_norm2_batch(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const comm::DistFieldBatchT<T>& b, comm::DistFieldBatchT<T>& x,
      comm::DistFieldBatchT<T>& r, double* sums,
      comm::HaloFreshness fresh = comm::HaloFreshness::kStale) const;

  // Overlapped batch variants: the scalar interior/rim split over the
  // aggregated batch exchange — halo.begin() on the batch, interior
  // member sweeps while all B rims are on the wire, finish(), rim
  // sweeps. Per-cell outputs bitwise match the blocking batch sweeps;
  // the overlapped batch norm² accumulates via residual + dot, whose
  // order is contractually bit-identical to the fused batch kernel.

  /// y = A x, all members, exchange hidden behind the interior sweep.
  template <typename T>
  void apply_overlapped_batch(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      comm::DistFieldBatchT<T>& x, comm::DistFieldBatchT<T>& y,
      comm::HaloFreshness fresh = comm::HaloFreshness::kStale) const;

  /// r = b - A x, all members, exchange hidden behind the interior
  /// sweep.
  template <typename T>
  void residual_overlapped_batch(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const comm::DistFieldBatchT<T>& b, comm::DistFieldBatchT<T>& x,
      comm::DistFieldBatchT<T>& r,
      comm::HaloFreshness fresh = comm::HaloFreshness::kStale) const;

  /// Overlapped r = b - A x plus local masked ||r_m||² per member;
  /// bit-identical to residual_local_norm2_batch (and to
  /// residual_batch + local_dot_batch). sums[0..nb) is OVERWRITTEN.
  template <typename T>
  void residual_local_norm2_overlapped_batch(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const comm::DistFieldBatchT<T>& b, comm::DistFieldBatchT<T>& x,
      comm::DistFieldBatchT<T>& r, double* sums,
      comm::HaloFreshness fresh = comm::HaloFreshness::kStale) const;

  /// Local masked per-member dots: sums[0..nb) is OVERWRITTEN.
  template <typename T>
  void local_dot_batch(comm::Communicator& comm,
                       const comm::DistFieldBatchT<T>& a,
                       const comm::DistFieldBatchT<T>& b,
                       double* sums) const;

  /// Fused per-member ChronGear dots, grouped for one vector allreduce:
  /// out[0..nb) = <r, rp>, out[nb..2nb) = <z, rp>, out[2nb..3nb) =
  /// <r, r> (zeros unless with_norm). out[0..3nb) is OVERWRITTEN.
  template <typename T>
  void local_dot3_batch(comm::Communicator& comm,
                        const comm::DistFieldBatchT<T>& r,
                        const comm::DistFieldBatchT<T>& rp,
                        const comm::DistFieldBatchT<T>& z, bool with_norm,
                        double* out) const;

  /// Zero out land cells of all members' interiors.
  template <typename T>
  void mask_interior_batch(comm::DistFieldBatchT<T>& x) const;

  // -------------------------------------------------------------------
  // fp32 mirror path. Same sweeps over a lazily-built float copy of the
  // stencil coefficients: half the bytes per point, half the halo
  // traffic, identical structure (including the interior/rim overlap
  // split). Reductions still return double — the kernels accumulate
  // fp32 operands in fp64, so convergence checks on the fp32 path
  // measure the true fp32 residual rather than fp32 round-off of it.
  // The fault-injection hooks only arm the fp64 path: injected state
  // corruption is caught by the fp64 refinement guard above any fp32
  // inner solve.

  void apply(comm::Communicator& comm, const comm::HaloExchanger& halo,
             comm::DistField32& x, comm::DistField32& y,
             comm::HaloFreshness fresh = comm::HaloFreshness::kStale) const;
  void residual(comm::Communicator& comm, const comm::HaloExchanger& halo,
                const comm::DistField32& b, comm::DistField32& x,
                comm::DistField32& r,
                comm::HaloFreshness fresh = comm::HaloFreshness::kStale) const;
  double residual_local_norm2(comm::Communicator& comm,
                              const comm::HaloExchanger& halo,
                              const comm::DistField32& b,
                              comm::DistField32& x, comm::DistField32& r,
                              comm::HaloFreshness fresh =
                                  comm::HaloFreshness::kStale) const;
  void apply_overlapped(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      comm::DistField32& x, comm::DistField32& y,
      comm::HaloFreshness fresh = comm::HaloFreshness::kStale) const;
  void residual_overlapped(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const comm::DistField32& b, comm::DistField32& x,
      comm::DistField32& r,
      comm::HaloFreshness fresh = comm::HaloFreshness::kStale) const;
  double residual_local_norm2_overlapped(
      comm::Communicator& comm, const comm::HaloExchanger& halo,
      const comm::DistField32& b, comm::DistField32& x,
      comm::DistField32& r,
      comm::HaloFreshness fresh = comm::HaloFreshness::kStale) const;
  double local_dot(comm::Communicator& comm, const comm::DistField32& a,
                   const comm::DistField32& b) const;
  void local_dot3(comm::Communicator& comm, const comm::DistField32& r,
                  const comm::DistField32& rp, const comm::DistField32& z,
                  bool with_norm, double out[3]) const;
  double global_dot(comm::Communicator& comm, const comm::DistField32& a,
                    const comm::DistField32& b) const;
  void mask_interior(comm::DistField32& x) const;

  /// fp32 coefficient field of direction d for local block lb (builds
  /// the mirror on first use; preconditioners read it for their own
  /// fp32 setups).
  const util::Array2D<float>& block_coeff32(int lb, grid::Dir d) const;

  /// Operator diagonal of local block lb (interior coordinates).
  const util::Field& block_diagonal(int lb) const {
    return block_coeff_[lb][static_cast<int>(grid::Dir::kCenter)];
  }
  /// Coefficient field of direction d for local block lb.
  const util::Field& block_coeff(int lb, grid::Dir d) const {
    return block_coeff_[lb][static_cast<int>(d)];
  }
  const util::MaskArray& block_mask(int lb) const { return block_mask_[lb]; }

 private:
  /// Fault-injection point: offer each block interior of `v` (a sweep's
  /// freshly written output) to the installed FaultInjector. Compiles to
  /// nothing when MINIPOP_FAULTS is off (and to nothing for fp32 fields;
  /// fault sites live on the fp64 state).
  void offer_fault_sites(comm::DistField& v) const;
  void offer_fault_sites(comm::DistField32&) const {}

  /// Fault-injection point: offer the fp64 coefficient planes to the
  /// installed FaultInjector (kCoeffBitFlip) at the entry of every fp64
  /// sweep — scalar and batched, since both read the same planes. The
  /// corrupted sweep output rides into the iterates; the ABFT audit
  /// must catch it. Compiles to nothing when MINIPOP_FAULTS is off.
  void offer_coeff_fault_sites() const;

  /// Rebuild column_sum_ from the current block_coeff_ (construction
  /// and repair).
  void build_column_sums() const;

  // Shared sweep bodies: one template instantiated at double (the
  // pre-existing code, bit-identical) and float (the mirror).
  template <typename T>
  void apply_t(comm::Communicator& comm, const comm::HaloExchanger& halo,
               comm::DistFieldT<T>& x, comm::DistFieldT<T>& y,
               comm::HaloFreshness fresh) const;
  template <typename T>
  void residual_t(comm::Communicator& comm,
                  const comm::HaloExchanger& halo,
                  const comm::DistFieldT<T>& b, comm::DistFieldT<T>& x,
                  comm::DistFieldT<T>& r, comm::HaloFreshness fresh) const;
  template <typename T>
  double residual_local_norm2_t(comm::Communicator& comm,
                                const comm::HaloExchanger& halo,
                                const comm::DistFieldT<T>& b,
                                comm::DistFieldT<T>& x,
                                comm::DistFieldT<T>& r,
                                comm::HaloFreshness fresh) const;
  template <typename T>
  void apply_overlapped_t(comm::Communicator& comm,
                          const comm::HaloExchanger& halo,
                          comm::DistFieldT<T>& x, comm::DistFieldT<T>& y,
                          comm::HaloFreshness fresh) const;
  template <typename T>
  void residual_overlapped_t(comm::Communicator& comm,
                             const comm::HaloExchanger& halo,
                             const comm::DistFieldT<T>& b,
                             comm::DistFieldT<T>& x, comm::DistFieldT<T>& r,
                             comm::HaloFreshness fresh) const;
  template <typename T>
  double local_dot_t(comm::Communicator& comm,
                     const comm::DistFieldT<T>& a,
                     const comm::DistFieldT<T>& b) const;
  template <typename T>
  void local_dot3_t(comm::Communicator& comm, const comm::DistFieldT<T>& r,
                    const comm::DistFieldT<T>& rp,
                    const comm::DistFieldT<T>& z, bool with_norm,
                    double out[3]) const;
  template <typename T>
  void mask_interior_t(comm::DistFieldT<T>& x) const;

  /// Coefficient storage for scalar T: the double original or the
  /// lazily-built float mirror.
  template <typename T>
  const std::vector<std::array<util::Array2D<T>, grid::kNumDirs>>& coeffs()
      const;
  void ensure_coeff32() const;

  bool use_spans_ = true;
  /// Span plans over the full block interiors plus the interior/rim
  /// decomposition the overlapped sweeps use: span_interior_[lb] covers
  /// interior_rect (empty when the block is too thin to have one),
  /// span_rim_[lb][0..span_num_rim_[lb]) the rim strips, all with spans
  /// re-based to the sub-rect origin like the shifted field pointers.
  SpanPlan span_full_;
  SpanPlan span_interior_;
  std::vector<std::array<BlockSpans, 4>> span_rim_;
  std::vector<int> span_num_rim_;

  const grid::Decomposition* decomp_;
  /// Kept for repair_coefficients(): the model's stencil outlives the
  /// operator (same ownership as decomp_).
  const grid::NinePointStencil* stencil_;
  int rank_;
  double phi_;
  long local_ocean_cells_ = 0;
  /// mutable: repair_coefficients() restores the planes through the
  /// const reference the solvers hold; each rank owns its DistOperator,
  /// so no two threads share one.
  mutable std::vector<std::array<util::Field, grid::kNumDirs>> block_coeff_;
  std::vector<util::MaskArray> block_mask_;
  /// ABFT column sums c = A·1 per block (see abft_local_sums); rebuilt
  /// by repair_coefficients().
  mutable std::vector<util::Field> column_sum_;
  /// fp32 mirror of block_coeff_, built on first fp32 sweep. mutable +
  /// lazily built is safe: each rank owns its DistOperator, so no two
  /// threads share one.
  mutable std::vector<std::array<util::Array2D<float>, grid::kNumDirs>>
      block_coeff32_;
};

#define MINIPOP_DIST_OPERATOR_BATCH_EXTERN(T)                                \
  extern template void DistOperator::apply_batch<T>(                         \
      comm::Communicator&, const comm::HaloExchanger&,                       \
      comm::DistFieldBatchT<T>&, comm::DistFieldBatchT<T>&,                  \
      comm::HaloFreshness) const;                                            \
  extern template void DistOperator::residual_batch<T>(                      \
      comm::Communicator&, const comm::HaloExchanger&,                       \
      const comm::DistFieldBatchT<T>&, comm::DistFieldBatchT<T>&,            \
      comm::DistFieldBatchT<T>&, comm::HaloFreshness) const;                 \
  extern template void DistOperator::residual_local_norm2_batch<T>(          \
      comm::Communicator&, const comm::HaloExchanger&,                       \
      const comm::DistFieldBatchT<T>&, comm::DistFieldBatchT<T>&,            \
      comm::DistFieldBatchT<T>&, double*, comm::HaloFreshness) const;        \
  extern template void DistOperator::apply_overlapped_batch<T>(              \
      comm::Communicator&, const comm::HaloExchanger&,                       \
      comm::DistFieldBatchT<T>&, comm::DistFieldBatchT<T>&,                  \
      comm::HaloFreshness) const;                                            \
  extern template void DistOperator::residual_overlapped_batch<T>(           \
      comm::Communicator&, const comm::HaloExchanger&,                       \
      const comm::DistFieldBatchT<T>&, comm::DistFieldBatchT<T>&,            \
      comm::DistFieldBatchT<T>&, comm::HaloFreshness) const;                 \
  extern template void                                                       \
  DistOperator::residual_local_norm2_overlapped_batch<T>(                    \
      comm::Communicator&, const comm::HaloExchanger&,                       \
      const comm::DistFieldBatchT<T>&, comm::DistFieldBatchT<T>&,            \
      comm::DistFieldBatchT<T>&, double*, comm::HaloFreshness) const;        \
  extern template void DistOperator::local_dot_batch<T>(                     \
      comm::Communicator&, const comm::DistFieldBatchT<T>&,                  \
      const comm::DistFieldBatchT<T>&, double*) const;                       \
  extern template void DistOperator::local_dot3_batch<T>(                    \
      comm::Communicator&, const comm::DistFieldBatchT<T>&,                  \
      const comm::DistFieldBatchT<T>&, const comm::DistFieldBatchT<T>&,      \
      bool, double*) const;                                                  \
  extern template void DistOperator::mask_interior_batch<T>(                 \
      comm::DistFieldBatchT<T>&) const;
MINIPOP_DIST_OPERATOR_BATCH_EXTERN(double)
MINIPOP_DIST_OPERATOR_BATCH_EXTERN(float)
#undef MINIPOP_DIST_OPERATOR_BATCH_EXTERN

}  // namespace minipop::solver
