#include "src/solver/pipelined_cg.hpp"

#include <cmath>

#include "src/solver/field_ops.hpp"
#include "src/util/error.hpp"

namespace minipop::solver {

namespace {
/// Recompute r/u/w from their definitions every this many iterations.
constexpr int kReplacementFrequency = 25;
}  // namespace

SolveStats PipelinedCgSolver::solve(comm::Communicator& comm,
                                    const comm::HaloExchanger& halo,
                                    const DistOperator& a, Preconditioner& m,
                                    const comm::DistField& b,
                                    comm::DistField& x,
                                    comm::HaloFreshness x_fresh) {
  const auto snapshot = comm.costs().counters();
  SolveStats stats;

  const auto& d = a.decomposition();
  const int rank = a.rank();
  const int h = x.halo();
  comm::DistField r(d, rank, h), u(d, rank, h), w(d, rank, h);
  comm::DistField mm(d, rank, h), nn(d, rank, h);
  comm::DistField z(d, rank, h), q(d, rank, h), s(d, rank, h),
      p(d, rank, h);

  const double b_norm2 = a.global_dot(comm, b, b);
  if (b_norm2 == 0.0) {
    fill_interior(x, 0.0);
    stats.converged = true;
    stats.costs = comm.costs().since(snapshot);
    return stats;
  }
  const double threshold2 =
      opt_.rel_tolerance * opt_.rel_tolerance * b_norm2;

  if (opt_.overlap) {
    a.residual_overlapped(comm, halo, b, x, r, x_fresh);  // r0 = b - A x0
    m.apply(comm, r, u);                                  // u0 = M^-1 r0
    a.apply_overlapped(comm, halo, u, w);                 // w0 = A u0
  } else {
    a.residual(comm, halo, b, x, r, x_fresh);
    m.apply(comm, r, u);
    a.apply(comm, halo, u, w);
  }

  double gamma_old = 0.0;
  double alpha_old = 0.0;
  ConvergenceGuard guard(opt_);

  for (int k = 1; k <= opt_.max_iterations; ++k) {
    stats.iterations = k;

    // The single fused reduction of the iteration (local dots in one
    // sweep). With SolverOptions::overlap it is a real iallreduce that
    // flies behind the precond+matvec — the Ghysels & Vanroose point of
    // the pipelined formulation; m_k and n_k depend only on w_k, never
    // on the reduction result. (On the final converged check the
    // overlap path has already computed the scratch m/n pair — one
    // speculative precond+matvec more than blocking; x, r, iteration
    // counts and residuals are still bitwise identical.)
    const bool check = (k % opt_.check_frequency == 0);
    double local[3];
    a.local_dot3(comm, r, u, w, check, local);
    if (opt_.overlap) {
      comm::Request red = comm.iallreduce(
          std::span<double>(local, check ? 3 : 2), comm::ReduceOp::kSum);
      m.apply(comm, w, mm);                  // m_k = M^-1 w_k
      a.apply_overlapped(comm, halo, mm, nn);  // n_k = A m_k
      red.wait();
    } else {
      comm.allreduce(std::span<double>(local, check ? 3 : 2),
                     comm::ReduceOp::kSum);
    }
    const double gamma = local[0];
    const double delta = local[1];
    if (check) {
      const double rel = std::sqrt(local[2] / b_norm2);
      if (opt_.record_residuals) stats.residual_history.emplace_back(k, rel);
      if (local[2] <= threshold2) {
        stats.converged = true;
        stats.relative_residual = rel;
        break;
      }
      stats.failure = guard.check(rel);
      if (stats.failure != FailureKind::kNone) break;
    }

    // Work that overlaps the reduction in the pipelined formulation
    // (already issued above when overlap is on).
    if (!opt_.overlap) {
      m.apply(comm, w, mm);        // m_k = M^-1 w_k
      a.apply(comm, halo, mm, nn);  // n_k = A m_k
    }

    if (!ConvergenceGuard::finite(gamma) ||
        !ConvergenceGuard::finite(delta)) {
      stats.failure = FailureKind::kNanDetected;
      break;
    }
    double beta, alpha;
    if (k == 1) {
      beta = 0.0;
      if (delta == 0.0) {
        stats.failure = FailureKind::kBreakdown;
        break;
      }
      alpha = gamma / delta;
    } else {
      beta = gamma / gamma_old;
      const double denom = delta - beta * gamma / alpha_old;
      if (denom == 0.0 || !ConvergenceGuard::finite(denom)) {
        stats.failure = FailureKind::kBreakdown;
        break;
      }
      alpha = gamma / denom;
    }

    if (k == 1) {
      copy_interior(nn, z);
      copy_interior(mm, q);
      copy_interior(w, s);
      copy_interior(u, p);
    } else {
      lincomb(comm, 1.0, nn, beta, z);  // z = n + beta z
      lincomb(comm, 1.0, mm, beta, q);  // q = m + beta q
      lincomb(comm, 1.0, w, beta, s);   // s = w + beta s
      lincomb(comm, 1.0, u, beta, p);   // p = u + beta p
    }
    axpy(comm, alpha, p, x, a.span_plan());
    axpy(comm, -alpha, s, r, a.span_plan());
    axpy(comm, -alpha, q, u, a.span_plan());
    axpy(comm, -alpha, z, w, a.span_plan());

    // Residual replacement (Cools & Vanroose): the auxiliary
    // recurrences accumulate rounding error much faster than plain CG —
    // badly so with a strong preconditioner — and the attainable
    // accuracy stagnates. Periodically recompute r, u, w from their
    // definitions; the search-direction recurrences continue unchanged.
    if (k % kReplacementFrequency == 0) {
      if (opt_.overlap) {
        a.residual_overlapped(comm, halo, b, x, r);
        m.apply(comm, r, u);
        a.apply_overlapped(comm, halo, u, w);
      } else {
        a.residual(comm, halo, b, x, r);
        m.apply(comm, r, u);
        a.apply(comm, halo, u, w);
      }
    }

    gamma_old = gamma;
    alpha_old = alpha;
  }

  if (!stats.converged) {
    if (stats.failure == FailureKind::kNone)
      stats.failure = FailureKind::kMaxIters;
    stats.relative_residual =
        std::sqrt(a.global_dot(comm, r, r) / b_norm2);
  }
  stats.costs = comm.costs().since(snapshot);
  return stats;
}

}  // namespace minipop::solver
